// Package gpucmp's top-level benchmarks regenerate every table and figure
// of the paper under `go test -bench`. Each benchmark family maps to one
// artifact of the evaluation section (see DESIGN.md §3) and reports the
// paper's metric via testing.B custom metrics:
//
//	BenchmarkFig1_Bandwidth  — achieved peak GB/s per toolchain (Fig. 1)
//	BenchmarkFig2_Flops      — achieved peak GFlops/s per toolchain (Fig. 2)
//	BenchmarkFig3_PR         — PerformanceRatio per benchmark/device (Fig. 3)
//	BenchmarkFig4_Texture    — texture-memory impact on the CUDA MD/SPMV (Fig. 4)
//	BenchmarkFig5_TexturePR  — PR after removing texture memory (Fig. 5)
//	BenchmarkFig6_Unroll     — pragma-unroll impact on the CUDA FDTD (Fig. 6)
//	BenchmarkFig7_UnrollPR   — PR under matching unroll placements (Fig. 7)
//	BenchmarkFig8_Constant   — constant-memory impact on Sobel (Fig. 8)
//	BenchmarkTable5_PTX      — front-end instruction census of the FFT (Table V)
//	BenchmarkTable6_Port     — OpenCL throughput on the non-NVIDIA devices (Table VI)
package gpucmp

import (
	"fmt"
	"testing"

	"gpucmp/internal/arch"
	"gpucmp/internal/bench"
	"gpucmp/internal/core"
	"gpucmp/internal/ptx"
)

// benchScale divides problem sizes so a full -bench=. sweep stays tractable.
const benchScale = 2

func nvidiaDevices() []*arch.Device {
	return []*arch.Device{arch.GTX280(), arch.GTX480()}
}

func BenchmarkFig1_Bandwidth(b *testing.B) {
	for _, dev := range nvidiaDevices() {
		b.Run(dev.Microarch.String(), func(b *testing.B) {
			var r core.PeakResult
			var err error
			for i := 0; i < b.N; i++ {
				r, err = core.PeakBandwidth(dev, benchScale)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.CUDA, "cuda-GB/s")
			b.ReportMetric(r.OpenCL, "opencl-GB/s")
			b.ReportMetric(r.OpenCL/r.CUDA, "opencl/cuda")
			b.ReportMetric(100*r.FractionOpenCL(), "opencl-%TP")
		})
	}
}

func BenchmarkFig2_Flops(b *testing.B) {
	for _, dev := range nvidiaDevices() {
		b.Run(dev.Microarch.String(), func(b *testing.B) {
			var r core.PeakResult
			var err error
			for i := 0; i < b.N; i++ {
				r, err = core.PeakFlops(dev, benchScale)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.CUDA, "cuda-GFlops/s")
			b.ReportMetric(r.OpenCL, "opencl-GFlops/s")
			b.ReportMetric(100*r.FractionOpenCL(), "opencl-%TP")
		})
	}
}

func BenchmarkFig3_PR(b *testing.B) {
	for _, dev := range nvidiaDevices() {
		for _, spec := range core.Fig3Benchmarks() {
			spec := spec
			dev := dev
			b.Run(fmt.Sprintf("%s/%s", dev.Microarch, spec.Name), func(b *testing.B) {
				var c *core.Comparison
				var err error
				for i := 0; i < b.N; i++ {
					c, err = core.CompareNative(dev, spec, benchScale)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(c.PR, "PR")
				b.ReportMetric(c.CUDA.Value, "cuda-"+spec.Metric)
				b.ReportMetric(c.OpenCL.Value, "opencl-"+spec.Metric)
			})
		}
	}
}

func BenchmarkFig4_Texture(b *testing.B) {
	for _, dev := range nvidiaDevices() {
		dev := dev
		b.Run(dev.Microarch.String(), func(b *testing.B) {
			var impacts []core.TextureImpact
			var err error
			for i := 0; i < b.N; i++ {
				impacts, err = core.TextureStudy(dev, benchScale)
				if err != nil {
					b.Fatal(err)
				}
			}
			for _, im := range impacts {
				b.ReportMetric(100*im.Ratio(), im.Benchmark+"-notex-%")
			}
		})
	}
}

func BenchmarkFig5_TexturePR(b *testing.B) {
	for _, dev := range nvidiaDevices() {
		dev := dev
		b.Run(dev.Microarch.String(), func(b *testing.B) {
			var rows []*core.Comparison
			var err error
			for i := 0; i < b.N; i++ {
				rows, err = core.TexturePRStudy(dev, benchScale)
				if err != nil {
					b.Fatal(err)
				}
			}
			for _, c := range rows {
				b.ReportMetric(c.PR, c.Benchmark+"-PR")
			}
		})
	}
}

func BenchmarkFig6_Unroll(b *testing.B) {
	for _, dev := range nvidiaDevices() {
		dev := dev
		b.Run(dev.Microarch.String(), func(b *testing.B) {
			var u core.UnrollImpact
			var err error
			for i := 0; i < b.N; i++ {
				u, err = core.UnrollStudyCUDA(dev, benchScale)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(u.With, "with-MPoints/s")
			b.ReportMetric(u.WithoutA, "without-MPoints/s")
			b.ReportMetric(100*u.Ratio(), "without-%")
		})
	}
}

func BenchmarkFig7_UnrollPR(b *testing.B) {
	for _, dev := range nvidiaDevices() {
		dev := dev
		b.Run(dev.Microarch.String(), func(b *testing.B) {
			var combos []core.UnrollCombo
			var err error
			for i := 0; i < b.N; i++ {
				combos, err = core.UnrollCombos(dev, benchScale)
				if err != nil {
					b.Fatal(err)
				}
			}
			for _, c := range combos {
				b.ReportMetric(c.PR, c.Label+"-PR")
			}
		})
	}
}

func BenchmarkFig8_Constant(b *testing.B) {
	for _, dev := range nvidiaDevices() {
		dev := dev
		b.Run(dev.Microarch.String(), func(b *testing.B) {
			var c core.ConstantImpact
			var err error
			for i := 0; i < b.N; i++ {
				c, err = core.ConstantStudy(dev, benchScale)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(c.Speedup(), "const-speedup")
		})
	}
}

func BenchmarkTable5_PTX(b *testing.B) {
	var cu, cl *ptx.Stats
	var err error
	for i := 0; i < b.N; i++ {
		cu, cl, _, err = core.PTXStudy()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cu.Total), "cuda-instrs")
	b.ReportMetric(float64(cl.Total), "opencl-instrs")
	b.ReportMetric(float64(cu.Get(ptx.OpMov, ptx.SpaceNone)), "cuda-mov")
	b.ReportMetric(float64(cl.Class(ptx.ClassLogicShift)), "opencl-logicshift")
	b.ReportMetric(float64(cl.Class(ptx.ClassFlowControl)), "opencl-flowctl")
}

func BenchmarkTable6_Port(b *testing.B) {
	devices := []*arch.Device{arch.HD5870(), arch.Intel920(), arch.CellBE()}
	for _, dev := range devices {
		for _, spec := range core.Fig3Benchmarks() {
			dev := dev
			spec := spec
			b.Run(fmt.Sprintf("%s/%s", dev.Microarch, spec.Name), func(b *testing.B) {
				var res *bench.Result
				for i := 0; i < b.N; i++ {
					d, err := bench.NewOpenCLDriver(dev)
					if err != nil {
						b.Fatal(err)
					}
					cfg := bench.NativeConfig("opencl")
					cfg.Scale = benchScale * 2
					res, err = spec.Run(d, cfg)
					if err != nil {
						b.Fatal(err)
					}
				}
				switch res.Status() {
				case "OK":
					b.ReportMetric(res.Value, spec.Metric)
				case "FL":
					b.ReportMetric(-1, "FL")
				case "ABT":
					b.ReportMetric(-2, "ABT")
				}
			})
		}
	}
}
