// Command ptxstat regenerates Table V of the paper: the static PTX
// instruction census of the FFT "forward" kernel as emitted by the two
// front-end compilers, before the shared back end optimises it.
package main

import (
	"flag"
	"fmt"
	"log"

	"gpucmp/internal/bench"
	"gpucmp/internal/compiler"
	"gpucmp/internal/core"
)

func main() {
	disasm := flag.Bool("disasm", false, "also dump both PTX listings")
	flag.Parse()

	_, _, report, err := core.PTXStudy()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Table V — PTX instruction statistics for the FFT forward kernel")
	fmt.Println()
	fmt.Println(report)
	fmt.Println("Paper reference: the OpenCL front-end emits far more logic/shift and")
	fmt.Println("flow-control instructions and fetches arguments through ld.const, while")
	fmt.Println("NVOPENCC is mov-heavy; the time-consuming ld.global/st.global and bar")
	fmt.Println("counts are the same on both sides.")

	if *disasm {
		k := bench.FFTKernel()
		for _, p := range []compiler.Personality{compiler.CUDA(), compiler.OpenCL()} {
			pk, err := compiler.Compile(k, p)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\n===== %s =====\n%s\n", p.Name, pk.Disassemble())
		}
	}
}
