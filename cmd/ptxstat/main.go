// Command ptxstat regenerates Table V of the paper: the static PTX
// instruction census of the FFT "forward" kernel as emitted by the two
// front-end compilers, before the shared back end optimises it. With
// -passes it instead walks the back-end pass pipeline and prints the
// instruction-mix delta each pass is responsible for, per toolchain.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"gpucmp/internal/bench"
	"gpucmp/internal/compiler"
	"gpucmp/internal/core"
	"gpucmp/internal/ptx"
)

func main() {
	disasm := flag.Bool("disasm", false, "also dump both PTX listings")
	passes := flag.Bool("passes", false, "print per-pass before/after instruction-mix deltas instead of Table V")
	flag.Parse()

	if *passes {
		if err := passReport(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}

	_, _, report, err := core.PTXStudy()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Table V — PTX instruction statistics for the FFT forward kernel")
	fmt.Println()
	fmt.Println(report)
	fmt.Println("Paper reference: the OpenCL front-end emits far more logic/shift and")
	fmt.Println("flow-control instructions and fetches arguments through ld.const, while")
	fmt.Println("NVOPENCC is mov-heavy; the time-consuming ld.global/st.global and bar")
	fmt.Println("counts are the same on both sides.")

	if *disasm {
		k := bench.FFTKernel()
		for _, p := range []compiler.Personality{compiler.CUDA(), compiler.OpenCL()} {
			pk, err := compiler.Compile(k, p)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\n===== %s =====\n%s\n", p.Name, pk.Disassemble())
		}
	}
}

// passReport compiles the FFT forward kernel under both personalities with
// the pipeline observer attached and renders, for every back-end pass, the
// instruction-mix rows it changed. Output is deterministic: identical
// configs compile to bit-identical PTX, so this is golden-file tested.
func passReport(w io.Writer) error {
	k := bench.FFTKernel()
	for _, p := range []compiler.Personality{compiler.CUDA(), compiler.OpenCL()} {
		fmt.Fprintf(w, "===== %s: back-end pass deltas for the FFT forward kernel =====\n", p.Name)
		var obsErr error
		cfg := compiler.Config{
			Personality: p,
			Observer: func(pass compiler.Pass, before, after *ptx.Stats) {
				if _, err := fmt.Fprintf(w, "\npass %s — %s\n", pass.Name, pass.Description); err != nil {
					obsErr = err
					return
				}
				if _, err := io.WriteString(w, ptx.DiffTable(before, after)); err != nil {
					obsErr = err
				}
			},
		}
		pk, err := compiler.CompileWithConfig(k, cfg)
		if err != nil {
			return err
		}
		if obsErr != nil {
			return obsErr
		}
		fmt.Fprintf(w, "\nper-pass summary\n")
		for _, st := range pk.PassStats {
			fmt.Fprintf(w, "  %s\n", st)
		}
		fmt.Fprintf(w, "remarks (%d total, deduplicated)\n", len(pk.Remarks))
		// The remark stream repeats per unrolled trip; collapse identical
		// messages to a count in first-seen order to keep the report readable.
		counts := map[string]int{}
		var order []string
		for _, r := range pk.Remarks {
			s := r.String()
			if counts[s] == 0 {
				order = append(order, s)
			}
			counts[s]++
		}
		for _, s := range order {
			if n := counts[s]; n > 1 {
				fmt.Fprintf(w, "  %s  (x%d)\n", s, n)
			} else {
				fmt.Fprintf(w, "  %s\n", s)
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}
