package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// TestPassReportGolden pins the -passes report byte-for-byte. The report is
// a pure function of the compiler: if it drifts, either a pass changed
// behaviour (inspect the diff, then regenerate with -update) or determinism
// broke (same config must compile to bit-identical PTX).
func TestPassReportGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := passReport(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "passes.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("pass report drifted from %s (run with -update after verifying the change)\ngot:\n%s", golden, buf.String())
	}
}

// TestPassReportStable runs the report twice in-process: identical configs
// must produce identical reports, pass deltas included.
func TestPassReportStable(t *testing.T) {
	var a, b bytes.Buffer
	if err := passReport(&a); err != nil {
		t.Fatal(err)
	}
	if err := passReport(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("pass report differs between identical runs")
	}
}
