// Command profile runs one benchmark and prints the simulator's full
// profile: per-launch timing decomposition (launch/issue/memory/latency),
// occupancy, the dynamic instruction mix, and the memory-system counters.
// This is the drill-down view behind every analysis in the paper's
// Section IV.
package main

import (
	"flag"
	"fmt"
	"log"

	"gpucmp/internal/arch"
	"gpucmp/internal/bench"
	"gpucmp/internal/ptx"
	"gpucmp/internal/stats"
)

func main() {
	name := flag.String("bench", "FFT", "benchmark to profile (see Table II names)")
	toolchain := flag.String("toolchain", "opencl", "cuda or opencl")
	device := flag.String("device", arch.GTX480().Name, "device name")
	scale := flag.Int("scale", 1, "problem-size divisor")
	flag.Parse()

	a, err := arch.Resolve(*device)
	if err != nil {
		log.Fatal(err)
	}
	spec, err := bench.SpecByName(*name)
	if err != nil {
		log.Fatal(err)
	}
	d, err := bench.NewDriver(*toolchain, a)
	if err != nil {
		log.Fatal(err)
	}
	cfg := bench.NativeConfig(*toolchain)
	cfg.Scale = *scale
	res, err := spec.Run(d, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if res.Err != nil {
		log.Fatalf("benchmark aborted: %v", res.Err)
	}

	fmt.Printf("%s on %s via %s: %.4g %s (status %s)\n\n",
		res.Benchmark, res.Device, res.Toolchain, res.Value, res.Metric, res.Status())

	lt := stats.NewTable("per-launch timing (microseconds)",
		"kernel", "grid", "block", "occupancy", "launch", "issue", "memory", "latency", "total", "bound")
	breakdowns := bench.Breakdowns(d)
	for i, tr := range res.Traces {
		b := breakdowns[i]
		bound := "issue"
		if b.Memory >= b.Issue && b.Memory >= b.Latency {
			bound = "memory"
		} else if b.Latency >= b.Issue {
			bound = "latency"
		}
		lt.Add(tr.Kernel,
			fmt.Sprintf("%dx%d", tr.Grid.X, tr.Grid.Y),
			fmt.Sprintf("%dx%d", tr.Block.X, tr.Block.Y),
			tr.ResidentGroups,
			fmt.Sprintf("%.1f", b.Launch*1e6),
			fmt.Sprintf("%.1f", b.Issue*1e6),
			fmt.Sprintf("%.1f", b.Memory*1e6),
			fmt.Sprintf("%.1f", b.Latency*1e6),
			fmt.Sprintf("%.1f", b.Total*1e6),
			bound)
		if i >= 15 {
			lt.Add("...", "", "", "", "", "", "", "", "", "")
			break
		}
	}
	fmt.Println(lt)

	// Aggregate dynamic instruction mix.
	dyn := ptx.NewStats()
	for _, tr := range res.Traces {
		dyn.Merge(tr.Dyn)
	}
	it := stats.NewTable("dynamic warp-instruction mix", "class", "count", "share")
	for c := ptx.Class(0); c < ptx.NumClasses; c++ {
		if dyn.Class(c) == 0 {
			continue
		}
		it.Add(c.String(), dyn.Class(c), stats.Pct(float64(dyn.Class(c))/float64(dyn.Total)))
	}
	it.Add("TOTAL", dyn.Total, "100.0%")
	fmt.Println(it)

	mt := stats.NewTable("memory system", "counter", "value")
	var m = res.Traces[0].Mem
	for _, tr := range res.Traces[1:] {
		c := tr.Mem
		m.GlobalLoadTrans += c.GlobalLoadTrans
		m.GlobalStoreTrans += c.GlobalStoreTrans
		m.L1Hits += c.L1Hits
		m.L1Misses += c.L1Misses
		m.TexHits += c.TexHits
		m.TexMisses += c.TexMisses
		m.TexTrans += c.TexTrans
		m.ConstAccesses += c.ConstAccesses
		m.SharedAccesses += c.SharedAccesses
		m.SharedSerial += c.SharedSerial
		m.LocalTrans += c.LocalTrans
		m.AtomicOps += c.AtomicOps
	}
	mt.Add("global load transactions (DRAM)", m.GlobalLoadTrans)
	mt.Add("global store transactions (DRAM)", m.GlobalStoreTrans)
	if m.L1Hits+m.L1Misses > 0 {
		mt.Add("L1 hit rate", stats.Pct(float64(m.L1Hits)/float64(m.L1Hits+m.L1Misses)))
	}
	if m.TexHits+m.TexMisses > 0 {
		mt.Add("texture cache hit rate", stats.Pct(float64(m.TexHits)/float64(m.TexHits+m.TexMisses)))
		mt.Add("texture DRAM fetches", m.TexTrans)
	}
	mt.Add("constant accesses", m.ConstAccesses)
	if m.SharedAccesses > 0 {
		mt.Add("shared accesses", m.SharedAccesses)
		mt.Add("shared serialization factor", fmt.Sprintf("%.2f", float64(m.SharedSerial)/float64(m.SharedAccesses)))
	}
	mt.Add("local-memory DRAM transactions", m.LocalTrans)
	mt.Add("atomic operations", m.AtomicOps)
	mt.Add("total DRAM bytes", m.DRAMBytes(a.GlobalSegmentSize))
	fmt.Println(mt)
}
