// Command autotune runs the auto-tuner the paper proposes as future work:
// for one benchmark, sweep its variant space on every device the toolchain
// supports and report the per-device winner. Benchmarks with hand-exposed
// step-4 knobs (MD, SPMV, Sobel, FDTD, TranP) sweep those; pattern-portable
// benchmarks (MxM, Reduce, Scan, St2D, Sobel) sweep the rewrite-rule
// schedule space of their pattern program instead. The winning variant
// differs across devices — the performance-portability gap the tuner
// closes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"gpucmp/internal/bench"
	"gpucmp/internal/stats"
	"gpucmp/internal/tune"
)

func main() {
	name := flag.String("bench", "SPMV", "benchmark to tune (any with knobs or a pattern program)")
	toolchain := flag.String("toolchain", "opencl", "cuda or opencl")
	scale := flag.Int("scale", 2, "problem-size divisor")
	workers := flag.Int("workers", 4, "concurrent candidate evaluations (pattern spaces)")
	jsonOut := flag.Bool("json", false, "emit the reports as a JSON array on stdout")
	flag.Parse()

	if tune.RelevantKnobs(*name) == nil && !bench.IsPatternBench(*name) {
		log.Fatalf("benchmark %q has neither variant knobs nor a pattern program", *name)
	}
	reports, err := tune.TuneAnyEverywhere(*toolchain, *name, *scale, *workers)
	if err != nil {
		log.Fatal(err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			log.Fatal(err)
		}
		return
	}

	for _, rep := range reports {
		tb := stats.NewTable(
			fmt.Sprintf("%s on %s (%s, %s space, metric %s)", rep.Benchmark, rep.Device, rep.Toolchain, rep.Space, rep.Metric),
			"variant", "metric", "status")
		for _, p := range rep.Points {
			val := "-"
			if p.Status == "OK" {
				val = fmt.Sprintf("%.4g", p.Raw)
			}
			tb.Add(p.Label(), val, p.Status)
		}
		fmt.Println(tb)
		if best, ok := rep.Best(); ok {
			fmt.Printf("  winner: %s\n\n", best.Label())
		} else {
			fmt.Printf("  no runnable variant on this device\n\n")
		}
	}
}
