// Command autotune runs the auto-tuner the paper proposes as future work:
// for one benchmark, sweep its implementation variants (the step-4 knobs of
// the fair-comparison pipeline) on every device the toolchain supports and
// report the per-device winner. The winning variant differs across
// devices — the performance-portability gap the tuner closes.
package main

import (
	"flag"
	"fmt"
	"log"

	"gpucmp/internal/stats"
	"gpucmp/internal/tune"
)

func main() {
	name := flag.String("bench", "SPMV", "benchmark to tune (MD, SPMV, Sobel, FDTD)")
	toolchain := flag.String("toolchain", "opencl", "cuda or opencl")
	scale := flag.Int("scale", 2, "problem-size divisor")
	flag.Parse()

	if tune.RelevantKnobs(*name) == nil {
		log.Fatalf("benchmark %q has no variant knobs to tune", *name)
	}
	reports, err := tune.TuneEverywhere(*toolchain, *name, *scale)
	if err != nil {
		log.Fatal(err)
	}

	for _, rep := range reports {
		tb := stats.NewTable(
			fmt.Sprintf("%s on %s (%s, metric %s)", rep.Benchmark, rep.Device, rep.Toolchain, rep.Metric),
			"variant", "metric", "status")
		for _, p := range rep.Points {
			val := "-"
			if p.Status == "OK" {
				val = fmt.Sprintf("%.4g", p.Raw)
			}
			tb.Add(p.Label(), val, p.Status)
		}
		fmt.Println(tb)
		if best, ok := rep.Best(); ok {
			fmt.Printf("  winner: %s\n\n", best.Label())
		} else {
			fmt.Printf("  no runnable variant on this device\n\n")
		}
	}
}
