// Command texmem regenerates Fig. 4 and Fig. 5 of the paper: the impact of
// texture memory on the CUDA MD and SPMV implementations, and the
// PerformanceRatio after removing texture memory from both sides (a fair
// step-4 comparison).
package main

import (
	"flag"
	"fmt"
	"log"

	"gpucmp/internal/arch"
	"gpucmp/internal/core"
	"gpucmp/internal/stats"
)

func main() {
	scale := flag.Int("scale", 1, "problem-size divisor (1 = full size)")
	flag.Parse()

	devices := []*arch.Device{arch.GTX280(), arch.GTX480()}

	t4 := stats.NewTable("Fig. 4 — CUDA performance with/without texture memory (GFlops/s)",
		"device", "benchmark", "with tex", "without tex", "without/with")
	for _, a := range devices {
		impacts, err := core.TextureStudy(a, *scale)
		if err != nil {
			log.Fatal(err)
		}
		for _, im := range impacts {
			t4.Add(im.Device, im.Benchmark, im.With, im.Without, stats.Pct(im.Ratio()))
		}
	}
	fmt.Println(t4)
	fmt.Println("Paper reference: removal drops MD/SPMV to 87.6%/65.1% on GTX280 and")
	fmt.Println("59.6%/44.3% on GTX480 of the texture-memory performance.")
	fmt.Println()

	t5 := stats.NewTable("Fig. 5 — PR after removing texture memory from both implementations",
		"device", "benchmark", "CUDA", "OpenCL", "PR", "verdict")
	for _, a := range devices {
		rows, err := core.TexturePRStudy(a, *scale)
		if err != nil {
			log.Fatal(err)
		}
		for _, c := range rows {
			verdict := "similar"
			if !core.Similar(c.PR) {
				verdict = "different"
			}
			t5.Add(c.Device, c.Benchmark, c.CUDA.Value, c.OpenCL.Value,
				fmt.Sprintf("%.3f", c.PR), verdict)
		}
	}
	fmt.Println(t5)
	fmt.Println("Paper reference: after removal CUDA and OpenCL show similar performance.")
}
