// Command gpucmpd serves the experiment matrix over HTTP: POST /run
// executes one (benchmark, device, toolchain, config) cell through the
// concurrent scheduler, GET /figures/{fig1..fig8,tableV,tableVI}
// regenerates any paper artifact on demand, and /metrics exposes the
// scheduler's counters and latency histograms. Identical requests are
// deduplicated while in flight and served from the result cache
// afterwards; kernels are compiled once per front-end, not once per
// launch. POST /coexec splits one workload across several modelled
// devices with transfer-inclusive scheduling and survives mid-run
// device loss (see -inject-transfer-rate / -inject-device-lost-rate).
// -sim-engine selects the interpreter implementation (threaded, fast or
// reference — all bit-identical, threaded fastest) for live A/B runs;
// /metrics reports per-engine retirement and fusion counters either way.
//
//	gpucmpd -addr :8480 &
//	curl localhost:8480/healthz
//	curl -X POST localhost:8480/run -d '{"benchmark":"FFT","device":"GeForce GTX480","toolchain":"opencl","config":{"scale":4}}'
//	curl localhost:8480/figures/fig3?scale=4
//	curl localhost:8480/metrics
//
// With -chaos the daemon does not serve: it runs a one-shot chaos smoke
// test — the benchmark matrix under a 30% injected transient-failure rate
// plus occasional hangs — and exits 0 only if every job either succeeded
// or failed with a typed permanent error and no goroutines leaked. CI
// runs this as a post-build smoke check.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the DefaultServeMux for -pprof
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"gpucmp/internal/cluster"
	"gpucmp/internal/fault"
	"gpucmp/internal/sched"
	"gpucmp/internal/server"
	"gpucmp/internal/sim"
	"gpucmp/internal/submit"
)

func main() {
	addr := flag.String("addr", ":8480", "listen address")
	workers := flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
	cacheSize := flag.Int("cache-size", 4096, "result-cache entries (negative disables caching)")
	jobTimeout := flag.Duration("job-timeout", 5*time.Minute, "per-job execution timeout (0 = unbounded)")
	figureScale := flag.Int("figure-scale", 4, "default problem-size divisor for /figures/*")
	chaos := flag.Bool("chaos", false, "run the one-shot chaos smoke test and exit instead of serving")
	chaosSeed := flag.Uint64("chaos-seed", 1, "fault-injection seed for -chaos")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables")
	quotaRate := flag.Float64("quota-rate", 0, "POST /kernels: accepted submissions per second per tenant (0 = unlimited)")
	quotaBurst := flag.Float64("quota-burst", 0, "POST /kernels: per-tenant burst capacity (0 = max(rate, 1))")
	tenantCache := flag.Int("tenant-cache-size", 64, "POST /kernels: per-tenant result-cache entries (negative disables)")
	stepBudget := flag.Uint64("submit-step-budget", 0, "POST /kernels: watchdog warp-instruction budget per work group (0 = default)")
	coordinator := flag.Bool("coordinator", false, "run as fleet coordinator: admit and route requests to -shards instead of executing locally")
	shards := flag.String("shards", "", "coordinator mode: comma-separated worker base URLs (e.g. http://127.0.0.1:8481,http://127.0.0.1:8482)")
	hedgeQuantile := flag.Float64("hedge-quantile", 0.95, "coordinator mode: latency quantile that arms the hedge timer")
	hedgeMin := flag.Duration("hedge-min", 20*time.Millisecond, "coordinator mode: hedge-delay floor")
	hedgeMax := flag.Duration("hedge-max", 2*time.Second, "coordinator mode: hedge-delay cap")
	noHedge := flag.Bool("no-hedge", false, "coordinator mode: disable request hedging (failover still applies)")
	maxInFlight := flag.Int("max-inflight", 512, "coordinator mode: shed with 503 above this many in-flight requests (negative disables)")
	probeInterval := flag.Duration("probe-interval", time.Second, "coordinator mode: worker readiness-probe period (negative disables)")
	vnodes := flag.Int("ring-vnodes", cluster.DefaultVirtualNodes, "coordinator mode: virtual nodes per ring member")
	injectSeed := flag.Uint64("inject-seed", 1, "serving mode: fault-injection seed (with -inject-slow-rate and the coexec rates)")
	injectSlowRate := flag.Float64("inject-slow-rate", 0, "serving mode: fraction of kernel launches stalled by an injected straggler delay (0 disables)")
	injectSlowDelay := flag.Duration("inject-slow-delay", 300*time.Millisecond, "serving mode: straggler delay for -inject-slow-rate")
	injectTransferRate := flag.Float64("inject-transfer-rate", 0, "serving mode: fraction of POST /coexec shard launches failed with a transfer error (0 disables)")
	injectDeviceLostRate := flag.Float64("inject-device-lost-rate", 0, "serving mode: fraction of POST /coexec shard launches that kill the whole device (0 disables)")
	injectMaxPerKey := flag.Int("inject-max-per-key", 3, "serving mode: per-shard cap on injected coexec transfer errors (device losses are never capped)")
	drainNotice := flag.Duration("drain-notice", 0, "on SIGINT/SIGTERM, hold readiness down this long before closing listeners (lets coordinator probes evict us first)")
	simEngine := flag.String("sim-engine", sim.DefaultEngine().String(), "interpreter engine for simulated devices: threaded, fast or reference (all bit-identical; threaded is fastest)")
	flag.Parse()

	eng, ok := sim.ParseEngine(*simEngine)
	if !ok {
		log.Fatalf("gpucmpd: -sim-engine %q: want threaded, fast or reference", *simEngine)
	}
	sim.SetDefaultEngine(eng)

	if *pprofAddr != "" {
		// pprof gets its own listener so profiling endpoints never ride on
		// the public API address (and the DefaultServeMux registration that
		// importing net/http/pprof performs stays off the main handler).
		go func() {
			log.Printf("gpucmpd: pprof on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("gpucmpd: pprof server: %v", err)
			}
		}()
	}

	if *chaos {
		os.Exit(runChaos(*chaosSeed, *workers))
	}

	if *coordinator {
		os.Exit(runCoordinator(*addr, *shards, cluster.Config{
			VirtualNodes:  *vnodes,
			HedgeQuantile: *hedgeQuantile,
			HedgeMinDelay: *hedgeMin,
			HedgeMaxDelay: *hedgeMax,
			HedgeDisabled: *noHedge,
			MaxInFlight:   *maxInFlight,
			Quota:         sched.QuotaConfig{Rate: *quotaRate, Burst: *quotaBurst},
			ProbeInterval: *probeInterval,
		}, *drainNotice))
	}

	var inj *fault.Injector
	if *injectSlowRate > 0 {
		// A straggler-only schedule: launches stall but still succeed, which
		// is exactly the slow-shard shape request hedging is built to beat.
		inj = fault.New(*injectSeed, fault.Schedule{
			SlowRate:  *injectSlowRate,
			SlowDelay: *injectSlowDelay,
		})
		log.Printf("gpucmpd: injecting %.0f%% slow launches (+%v, seed %d)",
			*injectSlowRate*100, *injectSlowDelay, *injectSeed)
	}

	s := sched.New(sched.Options{
		Workers:         *workers,
		CacheSize:       *cacheSize,
		JobTimeout:      *jobTimeout,
		Quota:           sched.QuotaConfig{Rate: *quotaRate, Burst: *quotaBurst},
		TenantCacheSize: *tenantCache,
		Injector:        inj,
	})
	defer s.Close()

	// The write timeout must outlast the slowest legitimate response — a
	// cache-miss /run or /figures request that executes jobs — so derive
	// it from the job timeout rather than guessing.
	writeTimeout := 15 * time.Minute
	if *jobTimeout > 0 {
		writeTimeout = *jobTimeout + time.Minute
	}
	limits := submit.DefaultLimits()
	if *stepBudget > 0 {
		limits.StepBudget = *stepBudget
	}
	opts := []server.Option{server.WithFigureScale(*figureScale), server.WithSubmitLimits(limits)}
	if *injectTransferRate > 0 || *injectDeviceLostRate > 0 {
		// A separate injector for the co-execution path: shard-granular
		// transfer errors (capped per shard so recovery terminates) and
		// device losses, deterministic in (seed, device, shard).
		opts = append(opts, server.WithCoexecFaults(fault.New(*injectSeed, fault.Schedule{
			TransferRate:   *injectTransferRate,
			DeviceLostRate: *injectDeviceLostRate,
			MaxPerKey:      *injectMaxPerKey,
		})))
		log.Printf("gpucmpd: injecting coexec faults: %.0f%% transfer errors, %.0f%% device losses (seed %d)",
			*injectTransferRate*100, *injectDeviceLostRate*100, *injectSeed)
	}
	srv := server.New(s, opts...)
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := <-stop
		log.Printf("gpucmpd: %v received, draining in-flight requests", sig)
		signal.Stop(stop) // a second signal kills the process immediately
		// Fail readiness first so load balancers and the fleet
		// coordinator's probes stop sending new work, optionally holding
		// that state before closing listeners.
		srv.SetReady(false)
		if *drainNotice > 0 {
			time.Sleep(*drainNotice)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("gpucmpd: shutdown: %v", err)
		} else {
			log.Printf("gpucmpd: drained cleanly")
		}
	}()

	log.Printf("gpucmpd: serving on %s", *addr)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	<-done
}

// runCoordinator serves the fleet-coordinator role: no local execution,
// just admission control and routing over the worker shards. Returns the
// process exit code.
func runCoordinator(addr, shards string, cfg cluster.Config, drainNotice time.Duration) int {
	for _, s := range strings.Split(shards, ",") {
		if s = strings.TrimSpace(s); s != "" {
			cfg.Workers = append(cfg.Workers, strings.TrimRight(s, "/"))
		}
	}
	if len(cfg.Workers) == 0 {
		log.Print("gpucmpd: -coordinator requires -shards with at least one worker URL")
		return 2
	}
	coord := cluster.New(cfg)
	coord.Start()
	defer coord.Close()

	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           coord.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      16 * time.Minute, // must outlast the slowest worker response
		IdleTimeout:       2 * time.Minute,
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := <-stop
		log.Printf("gpucmpd: %v received, draining coordinator", sig)
		signal.Stop(stop)
		coord.SetReady(false)
		if drainNotice > 0 {
			time.Sleep(drainNotice)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("gpucmpd: shutdown: %v", err)
		}
	}()

	log.Printf("gpucmpd: coordinating %d workers on %s", len(cfg.Workers), addr)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Print(err)
		return 1
	}
	<-done
	return 0
}

// runChaos executes the chaos smoke: the cheap cross-toolchain benchmark
// matrix under injected faults. Returns the process exit code.
func runChaos(seed uint64, workers int) int {
	inj := fault.New(seed, fault.Schedule{TransientRate: 0.3, HangRate: 0.05})
	before := runtime.NumGoroutine()
	s := sched.New(sched.Options{
		Workers:    workers,
		JobTimeout: 15 * time.Second,
		Injector:   inj,
	})

	var jobs []sched.Job
	for _, b := range []string{"Reduce", "Scan", "Sobel", "TranP"} {
		for _, tc := range []string{"cuda", "opencl"} {
			j := sched.Job{Benchmark: b, Device: "GeForce GTX480", Toolchain: tc}
			j.Config.Scale = 16
			jobs = append(jobs, j)
		}
	}

	log.Printf("chaos: running %d jobs at 30%% transient / 5%% hang rate (seed %d)", len(jobs), seed)
	start := time.Now()
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j sched.Job) {
			defer wg.Done()
			_, errs[i] = s.Run(context.Background(), j)
		}(i, j)
	}
	wg.Wait()
	elapsed := time.Since(start)

	bad, ok := 0, 0
	for i, jerr := range errs {
		switch {
		case jerr == nil:
			ok++
		case errors.Is(jerr, sched.ErrPermanent), errors.Is(jerr, sched.ErrWatchdog):
			log.Printf("chaos: job %s failed typed (%s): %v", jobs[i].Key(), sched.ClassOf(jerr), jerr)
			ok++
		default:
			log.Printf("chaos: FAIL job %s returned untyped error: %v", jobs[i].Key(), jerr)
			bad++
		}
	}

	snap := s.Metrics().Snapshot()
	s.Close()

	// Goroutine-leak check: everything the scheduler spawned must exit.
	leakDeadline := time.Now().Add(10 * time.Second)
	leaked := true
	for time.Now().Before(leakDeadline) {
		if runtime.NumGoroutine() <= before+2 {
			leaked = false
			break
		}
		time.Sleep(50 * time.Millisecond)
	}

	log.Printf("chaos: %d/%d jobs ok in %v; retries=%d timeouts=%d reclaims=%d leaks=%d faults=%v",
		ok, len(jobs), elapsed.Round(time.Millisecond),
		snap.Retries, snap.Timeouts, snap.WatchdogReclaims, snap.WatchdogLeaks, inj.Counts())

	if bad > 0 {
		log.Printf("chaos: FAIL: %d jobs returned untyped errors", bad)
		return 1
	}
	if snap.WatchdogLeaks > 0 {
		log.Printf("chaos: FAIL: %d watchdog kills failed to reclaim their worker", snap.WatchdogLeaks)
		return 1
	}
	if leaked {
		log.Printf("chaos: FAIL: goroutines leaked (%d before, %d after)", before, runtime.NumGoroutine())
		return 1
	}
	fmt.Println("chaos: PASS")
	return 0
}
