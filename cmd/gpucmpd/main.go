// Command gpucmpd serves the experiment matrix over HTTP: POST /run
// executes one (benchmark, device, toolchain, config) cell through the
// concurrent scheduler, GET /figures/{fig1..fig8,tableV,tableVI}
// regenerates any paper artifact on demand, and /metrics exposes the
// scheduler's counters and latency histograms. Identical requests are
// deduplicated while in flight and served from the result cache
// afterwards; kernels are compiled once per front-end, not once per
// launch.
//
//	gpucmpd -addr :8480 &
//	curl localhost:8480/healthz
//	curl -X POST localhost:8480/run -d '{"benchmark":"FFT","device":"GeForce GTX480","toolchain":"opencl","config":{"scale":4}}'
//	curl localhost:8480/figures/fig3?scale=4
//	curl localhost:8480/metrics
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gpucmp/internal/sched"
	"gpucmp/internal/server"
)

func main() {
	addr := flag.String("addr", ":8480", "listen address")
	workers := flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
	cacheSize := flag.Int("cache-size", 4096, "result-cache entries (negative disables caching)")
	jobTimeout := flag.Duration("job-timeout", 5*time.Minute, "per-job execution timeout (0 = unbounded)")
	figureScale := flag.Int("figure-scale", 4, "default problem-size divisor for /figures/*")
	flag.Parse()

	s := sched.New(sched.Options{
		Workers:    *workers,
		CacheSize:  *cacheSize,
		JobTimeout: *jobTimeout,
	})
	defer s.Close()

	srv := server.New(s, server.WithFigureScale(*figureScale))
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-stop
		log.Printf("gpucmpd: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("gpucmpd: shutdown: %v", err)
		}
	}()

	log.Printf("gpucmpd: serving on %s", *addr)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	<-done
}
