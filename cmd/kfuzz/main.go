// Command kfuzz runs the differential kernel fuzzer from the command
// line: seeded random KIR programs are executed on the reference
// interpreter and, compiled with both toolchain personalities, on every
// modelled device, and all outputs are compared bit-for-bit.
//
// Usage:
//
//	kfuzz -seed 1 -n 50             # seeds 1..50, all devices
//	kfuzz -seed 7 -n 1 -v           # one seed, print the kernel
//	kfuzz -device hd5870 -n 200     # one device by (substring) name
//	kfuzz -n 100000 -max-time 30s   # bounded CI smoke campaign
//	kfuzz -seed 3 -minimize         # shrink any failure before reporting
//	kfuzz -seed 3 -bisect           # name the compiler pass/feature at fault
//	kfuzz -seed 3 -dump corpus/     # write the program as corpus JSON
//
// Attack mode targets a running gpucmpd instead of the in-process oracle:
//
//	kfuzz -attack http://localhost:8080 -n 500
//
// generates programs, mutates a fraction into hostile submissions
// (malformed encodings, oversized shapes, unbounded loops, divergent
// barriers, watchdog bait, unknown devices) and POSTs them to /kernels,
// asserting every response is classified (ok / gauntlet-reject /
// watchdog / quota) and no request crashes or hangs the server.
//
// Exit status is 0 when every execution agreed with the reference (or,
// in attack mode, every response was classified) and nonzero otherwise.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"gpucmp/internal/arch"
	"gpucmp/internal/fuzz"
	"gpucmp/internal/kir"
)

func main() {
	var (
		seed     = flag.Uint64("seed", 1, "first seed of the campaign")
		n        = flag.Int("n", 50, "number of seeds to run")
		device   = flag.String("device", "", "restrict to one device (case-insensitive substring of its name)")
		minimize = flag.Bool("minimize", false, "shrink failing kernels before reporting")
		bisect   = flag.Bool("bisect", false, "on divergence, disable compiler passes/features one at a time to name the culprit")
		maxTime  = flag.Duration("max-time", 0, "stop starting new seeds after this long (0 = no limit)")
		dump     = flag.String("dump", "", "write each generated program as JSON into this directory")
		verbose  = flag.Bool("v", false, "print each kernel before running it")

		attack  = flag.String("attack", "", "adversarial HTTP campaign against this gpucmpd base URL (e.g. http://localhost:8080)")
		tenants = flag.String("tenants", "attacker", "comma-separated tenant names rotated across attack requests")
		conc    = flag.Int("concurrency", 8, "parallel submitters in attack mode")
	)
	flag.Parse()

	if *attack != "" {
		runAttack(*attack, *seed, *n, *tenants, *conc, *verbose)
		return
	}

	devices, err := pickDevices(*device)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	cfg := fuzz.DefaultConfig()
	camp := &fuzz.Campaign{}
	start := time.Now()
	deadline := time.Time{}
	if *maxTime > 0 {
		deadline = start.Add(*maxTime)
	}

	failed := false
	ran := 0
	for s := *seed; s < *seed+uint64(*n); s++ {
		if !deadline.IsZero() && time.Now().After(deadline) {
			fmt.Printf("time limit reached after %d seed(s)\n", ran)
			break
		}
		p := fuzz.Generate(s, cfg)
		if *verbose {
			fmt.Printf("seed %d:\n%s", s, kir.Format(p.Kernel))
		}
		if *dump != "" {
			if err := dumpProgram(*dump, p); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
		}
		res, err := fuzz.Check(p, devices)
		if err != nil {
			fmt.Fprintf(os.Stderr, "seed %d: %v\n", s, err)
			os.Exit(2)
		}
		ran++
		camp.Add(res)
		if res.Divergence != nil {
			failed = true
			report(p, res.Divergence, devices, *minimize, *bisect, *dump)
		}
	}

	fmt.Printf("kfuzz: seeds %d..%d (%d run) in %.1fs\n",
		*seed, *seed+uint64(*n)-1, ran, time.Since(start).Seconds())
	fmt.Print(camp.Summary())
	if failed {
		os.Exit(1)
	}
}

// runAttack drives the adversarial HTTP campaign and exits with the
// campaign's verdict.
func runAttack(baseURL string, seed uint64, n int, tenants string, conc int, verbose bool) {
	opts := fuzz.AttackOptions{
		Tenants:     strings.Split(tenants, ","),
		Concurrency: conc,
	}
	if verbose {
		opts.Verbose = os.Stdout
	}
	start := time.Now()
	rep, err := fuzz.Attack(baseURL, seed, n, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Printf("kfuzz -attack %s: %d request(s) in %.1fs\n", baseURL, rep.Requests, time.Since(start).Seconds())
	fmt.Print(rep.Summary())
	if rep.Failed() {
		os.Exit(1)
	}
}

func pickDevices(pattern string) ([]*arch.Device, error) {
	if pattern == "" {
		return arch.All(), nil
	}
	var out []*arch.Device
	for _, d := range arch.All() {
		if strings.Contains(strings.ToLower(d.Name), strings.ToLower(pattern)) {
			out = append(out, d)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("kfuzz: no device matches %q; known devices: %s",
			pattern, strings.Join(arch.Names(), ", "))
	}
	return out, nil
}

func report(p *fuzz.Program, d *fuzz.Divergence, devices []*arch.Device, minimize, bisect bool, dump string) {
	fmt.Printf("DIVERGENCE\n%s\n", d.Error())
	if bisect {
		rep, err := fuzz.BisectDivergence(p, d)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bisect: %v\n", err)
		} else {
			fmt.Print(rep)
		}
	}
	if !minimize {
		return
	}
	small := fuzz.Shrink(p, func(cand *fuzz.Program) bool {
		r, err := fuzz.Check(cand, devices)
		return err == nil && r.Divergence != nil
	})
	r, err := fuzz.Check(small, devices)
	if err != nil || r.Divergence == nil {
		fmt.Println("minimization lost the failure; reporting the original")
		return
	}
	fmt.Printf("MINIMIZED (%d nodes -> %d)\n%s\n",
		kir.CountNodes(p.Kernel.Body), kir.CountNodes(small.Kernel.Body), r.Divergence.Error())
	if dump != "" {
		if err := dumpProgram(dump, small); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}
}

func dumpProgram(dir string, p *fuzz.Program) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := fuzz.Encode(p)
	if err != nil {
		return err
	}
	path := filepath.Join(dir, fmt.Sprintf("%s.json", p.Kernel.Name))
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
