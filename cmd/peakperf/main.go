// Command peakperf regenerates Fig. 1 and Fig. 2 of the paper: theoretical
// versus achieved peak device-memory bandwidth (DeviceMemory) and peak
// floating-point throughput (MaxFlops) on the GTX280 and GTX480, under
// both CUDA and OpenCL.
package main

import (
	"flag"
	"fmt"
	"log"

	"gpucmp/internal/arch"
	"gpucmp/internal/core"
	"gpucmp/internal/stats"
)

func main() {
	scale := flag.Int("scale", 1, "problem-size divisor (1 = full size)")
	flag.Parse()

	devices := []*arch.Device{arch.GTX280(), arch.GTX480()}

	bw := stats.NewTable("Fig. 1 — peak device-memory bandwidth (GB/s)",
		"device", "theoretical", "CUDA", "OpenCL", "CUDA %TP", "OpenCL %TP", "OpenCL/CUDA")
	for _, a := range devices {
		r, err := core.PeakBandwidth(a, *scale)
		if err != nil {
			log.Fatal(err)
		}
		bw.Add(r.Device, r.Theoretical, r.CUDA, r.OpenCL,
			stats.Pct(r.FractionCUDA()), stats.Pct(r.FractionOpenCL()),
			fmt.Sprintf("%.3f", r.OpenCL/r.CUDA))
	}
	fmt.Println(bw)

	fl := stats.NewTable("Fig. 2 — peak floating-point throughput (GFlops/s)",
		"device", "theoretical", "CUDA", "OpenCL", "CUDA %TP", "OpenCL %TP")
	for _, a := range devices {
		r, err := core.PeakFlops(a, *scale)
		if err != nil {
			log.Fatal(err)
		}
		fl.Add(r.Device, r.Theoretical, r.CUDA, r.OpenCL,
			stats.Pct(r.FractionCUDA()), stats.Pct(r.FractionOpenCL()))
	}
	fmt.Println(fl)
	fmt.Println("Paper reference: OpenCL reaches 68.6% / 87.7% of TP_BW and ~71.5% / ~97.7%")
	fmt.Println("of TP_FLOPS on GTX280 / GTX480, outrunning CUDA's bandwidth by 8.5% / 2.4%.")
}
