// Command portability regenerates Table VI of the paper: every real-world
// benchmark, ported with minor modifications only (the CL device type),
// run through OpenCL on the HD5870, the Intel i7 920, and the Cell/BE.
// "FL" marks runs that finish with wrong results (the warp-width
// assumption of RdxS on 64-wide wavefront devices); "ABT" marks aborted
// runs (CL_OUT_OF_RESOURCES on the Cell/BE local store).
package main

import (
	"flag"
	"fmt"
	"log"

	"gpucmp/internal/core"
	"gpucmp/internal/stats"
)

func main() {
	scale := flag.Int("scale", 2, "problem-size divisor (1 = full size)")
	flag.Parse()

	cells, err := core.PortabilityStudy(*scale)
	if err != nil {
		log.Fatal(err)
	}

	// Pivot: rows = devices, columns = benchmarks (the paper's layout).
	order := []string{}
	byDev := map[string]map[string]core.PortabilityCell{}
	for _, c := range cells {
		if byDev[c.Device] == nil {
			byDev[c.Device] = map[string]core.PortabilityCell{}
			order = append(order, c.Device)
		}
		byDev[c.Device][c.Benchmark] = c
	}
	benches := []string{}
	for _, c := range cells {
		if c.Device == order[0] {
			benches = append(benches, c.Benchmark)
		}
	}

	headers := append([]string{"device"}, benches...)
	tb := stats.NewTable("Table VI — OpenCL performance on prevailing platforms (units per Table II)", headers...)
	for _, dev := range order {
		row := make([]any, 0, len(benches)+1)
		row = append(row, dev)
		for _, b := range benches {
			c := byDev[dev][b]
			if c.Status == "OK" {
				row = append(row, fmt.Sprintf("%.4g", c.Value))
			} else {
				row = append(row, c.Status)
			}
		}
		tb.Add(row...)
	}
	fmt.Println(tb)
	fmt.Println("Paper reference: RdxS fails ('FL') on the 64-wide wavefront devices because")
	fmt.Println("its implementation bakes in warp-size 32; FFT, DXTC, RdxS and STNW abort")
	fmt.Println("('ABT', CL_OUT_OF_RESOURCES) on the Cell/BE; everything else runs.")
	fmt.Println()

	// Performance portability: the same code, normalised per device peak.
	effs, err := core.EfficiencyStudy(*scale)
	if err != nil {
		log.Fatal(err)
	}
	et := stats.NewTable("performance portability (achieved fraction of each device's peak, OpenCL)",
		"benchmark", "device", "%peak", "status")
	seen := map[string]bool{}
	var names []string
	for _, e := range effs {
		et.Add(e.Benchmark, e.Device, stats.Pct(e.Fraction), e.Status)
		if !seen[e.Benchmark] {
			seen[e.Benchmark] = true
			names = append(names, e.Benchmark)
		}
	}
	fmt.Println(et)
	st := stats.NewTable("portability score (geomean of fractions / best fraction; 1.0 = fully portable)",
		"benchmark", "score")
	for _, n := range names {
		st.Add(n, fmt.Sprintf("%.3f", core.PortabilityScore(effs, n)))
	}
	fmt.Println(st)
	fmt.Println("Low scores are the performance-portability gap the paper's proposed")
	fmt.Println("auto-tuner (cmd/autotune) exists to close.")
}
