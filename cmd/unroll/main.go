// Command unroll regenerates Fig. 6 and Fig. 7 of the paper: the effect of
// "#pragma unroll" at FDTD's two unroll points — CUDA-only with and
// without the pragma at point a (Fig. 6), and CUDA-vs-OpenCL under the
// same pragma placements (Fig. 7).
package main

import (
	"flag"
	"fmt"
	"log"

	"gpucmp/internal/arch"
	"gpucmp/internal/core"
	"gpucmp/internal/stats"
)

func main() {
	scale := flag.Int("scale", 1, "problem-size divisor (1 = full size)")
	flag.Parse()

	devices := []*arch.Device{arch.GTX280(), arch.GTX480()}

	t6 := stats.NewTable("Fig. 6 — CUDA FDTD with/without pragma unroll at point a (MPoints/s)",
		"device", "unroll@a,b", "unroll@b only", "without/with")
	for _, a := range devices {
		u, err := core.UnrollStudyCUDA(a, *scale)
		if err != nil {
			log.Fatal(err)
		}
		t6.Add(u.Device, u.With, u.WithoutA, stats.Pct(u.Ratio()))
	}
	fmt.Println(t6)
	fmt.Println("Paper reference: without the pragma CUDA drops to 85.1% / 82.6% on GTX280 / GTX480.")
	fmt.Println()

	t7 := stats.NewTable("Fig. 7 — FDTD under matching unroll-point placements (MPoints/s)",
		"device", "placement", "CUDA", "OpenCL", "PR")
	for _, a := range devices {
		combos, err := core.UnrollCombos(a, *scale)
		if err != nil {
			log.Fatal(err)
		}
		for _, c := range combos {
			t7.Add(c.Device, c.Label, c.CUDA, c.OpenCL, fmt.Sprintf("%.3f", c.PR))
		}
	}
	fmt.Println(t7)
	fmt.Println("Paper reference: with the pragma only at b the two are similar (OpenCL +15.1%")
	fmt.Println("on GTX280); unrolling point a in OpenCL degrades it to 48.3% / 66.1% of CUDA.")
}
