// Command benchall runs the complete measurement grid — every benchmark on
// every device with every toolchain that supports it — and emits the raw
// results as JSON (for downstream analysis) plus a human-readable summary.
// This is the union of the data behind Fig. 3 and Table VI.
//
// With -parallel N the grid runs on an N-worker scheduler
// (internal/sched). The simulator is deterministic, so the parallel run
// reproduces the sequential numbers bit for bit; only the wall-clock time
// changes.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"gpucmp/internal/bench"
	"gpucmp/internal/sched"
	"gpucmp/internal/stats"
)

// Record is one cell of the grid in the JSON output. The transfer fields
// are filled in -transfers mode: TransferSec is the simulated host<->device
// copy time of the cell and TotalSec the transfer-inclusive end-to-end
// time — the paper's kernel-only comparison plus what it leaves out.
type Record struct {
	Benchmark   string  `json:"benchmark"`
	Device      string  `json:"device"`
	Toolchain   string  `json:"toolchain"`
	Metric      string  `json:"metric"`
	Value       float64 `json:"value,omitempty"`
	KernelSec   float64 `json:"kernel_seconds,omitempty"`
	TransferSec float64 `json:"transfer_seconds,omitempty"`
	TotalSec    float64 `json:"total_seconds,omitempty"`
	Status      string  `json:"status"`
	Error       string  `json:"error,omitempty"`
}

func main() {
	scale := flag.Int("scale", 2, "problem-size divisor (1 = full size)")
	parallel := flag.Int("parallel", 1, "worker-pool size (1 = sequential)")
	jsonPath := flag.String("json", "", "write raw results as JSON to this file ('-' for stdout)")
	transfers := flag.Bool("transfers", false, "transfer-inclusive mode: report host<->device copy time and end-to-end totals per cell")
	flag.Parse()

	jobs := sched.GridJobs(*scale)
	s := sched.New(sched.Options{Workers: *parallel})
	defer s.Close()
	// RunAll returns partial results: failed cells are nil in the slice and
	// their errors arrive joined. Emit every successful cell and mark the
	// failures instead of aborting the whole grid.
	results, runErr := s.RunAll(context.Background(), jobs)
	if runErr != nil {
		log.Printf("benchall: some cells failed (continuing with partial grid):\n%v", runErr)
	}

	records := make([]Record, len(jobs))
	for i, res := range results {
		spec, _ := bench.SpecByName(jobs[i].Benchmark)
		rec := Record{
			Benchmark: jobs[i].Benchmark,
			Device:    jobs[i].Device,
			Toolchain: jobs[i].Toolchain,
			Metric:    spec.Metric,
		}
		switch {
		case res == nil:
			rec.Status = "ERR"
			rec.Error = "job failed; see joined error log"
		case res.Err != nil:
			rec.Status = res.Status()
			rec.Error = res.Err.Error()
		default:
			rec.Status = res.Status()
			rec.Value = res.Value
			rec.KernelSec = res.KernelSeconds
			if *transfers {
				rec.TransferSec = res.TransferSeconds
				rec.TotalSec = res.KernelSeconds + res.TransferSeconds
			}
		}
		records[i] = rec
	}

	title := fmt.Sprintf("full grid at scale %d (%d cells)", *scale, len(records))
	var tb *stats.Table
	if *transfers {
		tb = stats.NewTable(title+", transfer-inclusive",
			"benchmark", "device", "toolchain", "value", "kernel_s", "transfer_s", "total_s", "status")
		for _, r := range records {
			val := "-"
			if r.Status == "OK" {
				val = fmt.Sprintf("%.4g", r.Value)
			}
			tb.Add(r.Benchmark, r.Device, r.Toolchain, val,
				fmt.Sprintf("%.3g", r.KernelSec), fmt.Sprintf("%.3g", r.TransferSec),
				fmt.Sprintf("%.3g", r.TotalSec), r.Status)
		}
	} else {
		tb = stats.NewTable(title,
			"benchmark", "device", "toolchain", "value", "metric", "status")
		for _, r := range records {
			val := "-"
			if r.Status == "OK" {
				val = fmt.Sprintf("%.4g", r.Value)
			}
			tb.Add(r.Benchmark, r.Device, r.Toolchain, val, r.Metric, r.Status)
		}
	}
	fmt.Println(tb)

	if *jsonPath != "" {
		out := os.Stdout
		if *jsonPath != "-" {
			f, err := os.Create(*jsonPath)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			out = f
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(records); err != nil {
			log.Fatal(err)
		}
	}
	if runErr != nil {
		os.Exit(1)
	}
}
