// Command benchall runs the complete measurement grid — every benchmark on
// every device with every toolchain that supports it — and emits the raw
// results as JSON (for downstream analysis) plus a human-readable summary.
// This is the union of the data behind Fig. 3 and Table VI.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"gpucmp/internal/arch"
	"gpucmp/internal/bench"
	"gpucmp/internal/stats"
)

// Record is one cell of the grid in the JSON output.
type Record struct {
	Benchmark string  `json:"benchmark"`
	Device    string  `json:"device"`
	Toolchain string  `json:"toolchain"`
	Metric    string  `json:"metric"`
	Value     float64 `json:"value,omitempty"`
	KernelSec float64 `json:"kernel_seconds,omitempty"`
	Status    string  `json:"status"`
	Error     string  `json:"error,omitempty"`
}

func main() {
	scale := flag.Int("scale", 2, "problem-size divisor (1 = full size)")
	jsonPath := flag.String("json", "", "write raw results as JSON to this file ('-' for stdout)")
	flag.Parse()

	var records []Record
	for _, a := range arch.All() {
		for _, tc := range []string{"cuda", "opencl"} {
			if tc == "cuda" && a.Vendor != "NVIDIA" {
				continue
			}
			for _, spec := range bench.Registry() {
				d, err := bench.NewDriver(tc, a)
				if err != nil {
					log.Fatal(err)
				}
				cfg := bench.NativeConfig(tc)
				cfg.Scale = *scale
				res, err := spec.Run(d, cfg)
				if err != nil {
					log.Fatal(err)
				}
				rec := Record{
					Benchmark: spec.Name,
					Device:    a.Name,
					Toolchain: tc,
					Metric:    spec.Metric,
					Status:    res.Status(),
				}
				if res.Err != nil {
					rec.Error = res.Err.Error()
				} else {
					rec.Value = res.Value
					rec.KernelSec = res.KernelSeconds
				}
				records = append(records, rec)
			}
		}
	}

	tb := stats.NewTable(fmt.Sprintf("full grid at scale %d (%d cells)", *scale, len(records)),
		"benchmark", "device", "toolchain", "value", "metric", "status")
	for _, r := range records {
		val := "-"
		if r.Status == "OK" {
			val = fmt.Sprintf("%.4g", r.Value)
		}
		tb.Add(r.Benchmark, r.Device, r.Toolchain, val, r.Metric, r.Status)
	}
	fmt.Println(tb)

	if *jsonPath != "" {
		out := os.Stdout
		if *jsonPath != "-" {
			f, err := os.Create(*jsonPath)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			out = f
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(records); err != nil {
			log.Fatal(err)
		}
	}
}
