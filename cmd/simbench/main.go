// Command simbench measures the simulator's own execution speed — not the
// modelled GPU performance, but how fast the host interprets kernels. Each
// paper benchmark runs twice per device, once on the predecoded fast
// engine (the default) and once on the retained reference interpreter
// (sim.Device.Reference), and the wall-clock time, warp-instruction
// throughput and heap-allocation cost of both are recorded. The output is
// the evidence file for the interpreter-optimisation work: BENCH_sim.json
// carries per-cell numbers plus the geometric-mean speedup.
//
// CI runs a short profile (-scale 8 -reps 1) as a smoke gate with
// -minspeedup and -maxallocs thresholds; the committed BENCH_sim.json is
// produced by the default profile.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"runtime"
	"strings"

	"gpucmp/internal/arch"
	"gpucmp/internal/bench"
)

// Record is one (benchmark, device, engine) cell.
type Record struct {
	Benchmark string `json:"benchmark"`
	Device    string `json:"device"`
	Engine    string `json:"engine"` // "fast" or "reference"

	WallSeconds  float64 `json:"wall_seconds"`  // best of -reps runs
	WarpInstrs   int64   `json:"warp_instrs"`   // per run
	MWIPerSec    float64 `json:"mwi_per_sec"`   // warp-instruction throughput
	AllocsPerRun uint64  `json:"allocs_per_run"`
	AllocsPerMWI float64 `json:"allocs_per_mwi"` // heap allocations per million warp-instrs
}

// Summary aggregates the grid: per-cell speedups and their geometric mean.
type Summary struct {
	Profile        string             `json:"profile"`
	GeomeanSpeedup float64            `json:"geomean_speedup"`
	Speedups       map[string]float64 `json:"speedups"` // "Bench/Device" -> fast speedup
	FastAllocsGeo  float64            `json:"fast_allocs_per_mwi_geomean"`
}

// Output is the BENCH_sim.json document.
type Output struct {
	Summary Summary  `json:"summary"`
	Records []Record `json:"records"`
}

// toolchain picks the runtime a device supports (the AMD part only speaks
// OpenCL); the engine comparison is toolchain-agnostic either way.
func toolchain(dev *arch.Device) string {
	if dev.Vendor == "AMD" {
		return "opencl"
	}
	return "cuda"
}

// run executes one benchmark once on a fresh driver and returns the
// interpreter's wall time (sim.Device.ExecNanos — launches only, so the
// engines are compared without the identical host-side compile, staging
// and verification work), the warp-instruction count, and the heap
// allocations of the whole run.
func run(spec bench.Spec, dev *arch.Device, cfg bench.Config, reference bool) (float64, int64, uint64, error) {
	d, err := bench.NewDriver(toolchain(dev), dev)
	if err != nil {
		return 0, 0, 0, err
	}
	sd := bench.SimDevice(d)
	if sd == nil {
		return 0, 0, 0, fmt.Errorf("driver exposes no simulated device")
	}
	sd.Reference = reference
	sd.Parallel = false // single-threaded: measure the interpreter, not the host's cores
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	res, err := spec.Run(d, cfg)
	runtime.ReadMemStats(&after)
	if err != nil {
		return 0, 0, 0, err
	}
	if res.Err != nil {
		return 0, 0, 0, res.Err
	}
	var wi int64
	for _, tr := range res.Traces {
		wi += tr.Dyn.Total
	}
	return float64(sd.ExecNanos()) / 1e9, wi, after.Mallocs - before.Mallocs, nil
}

func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

func main() {
	scale := flag.Int("scale", 2, "problem-size divisor (1 = full size)")
	reps := flag.Int("reps", 3, "runs per cell; best wall time wins")
	out := flag.String("out", "BENCH_sim.json", "output path ('-' for stdout)")
	only := flag.String("benchmarks", "", "comma-separated benchmark subset (default: all)")
	minSpeedup := flag.Float64("minspeedup", 0, "fail if the geomean fast/reference speedup is below this (0 = off)")
	maxAllocs := flag.Float64("maxallocs", 0, "fail if the fast engine's geomean allocs per million warp-instrs exceeds this (0 = off)")
	flag.Parse()

	want := map[string]bool{}
	for _, n := range strings.Split(*only, ",") {
		if n = strings.TrimSpace(n); n != "" {
			want[n] = true
		}
	}
	devices := []*arch.Device{arch.GTX280(), arch.GTX480(), arch.HD5870()}

	var o Output
	o.Summary.Profile = fmt.Sprintf("scale=%d reps=%d engine-parallelism=off", *scale, *reps)
	o.Summary.Speedups = map[string]float64{}
	var speedups, fastAllocRates []float64

	for _, spec := range bench.Registry() {
		if len(want) > 0 && !want[spec.Name] {
			continue
		}
		for _, dev := range devices {
			cfg := bench.NativeConfig(toolchain(dev))
			cfg.Scale = *scale
			var cell [2]Record // [0]=fast, [1]=reference
			ok := true
			for ei, reference := range []bool{false, true} {
				best := math.Inf(1)
				var wi int64
				var allocs uint64
				for r := 0; r < *reps; r++ {
					wall, w, a, err := run(spec, dev, cfg, reference)
					if err != nil {
						log.Printf("simbench: %s/%s (%s): %v — skipping cell",
							spec.Name, dev.Name, engineName(reference), err)
						ok = false
						break
					}
					if wall < best {
						best, wi, allocs = wall, w, a
					}
				}
				if !ok {
					break
				}
				cell[ei] = Record{
					Benchmark:    spec.Name,
					Device:       dev.Name,
					Engine:       engineName(reference),
					WallSeconds:  best,
					WarpInstrs:   wi,
					MWIPerSec:    float64(wi) / best / 1e6,
					AllocsPerRun: allocs,
					AllocsPerMWI: float64(allocs) / (float64(wi) / 1e6),
				}
			}
			if !ok {
				continue
			}
			o.Records = append(o.Records, cell[0], cell[1])
			sp := cell[1].WallSeconds / cell[0].WallSeconds
			key := spec.Name + "/" + dev.Name
			o.Summary.Speedups[key] = math.Round(sp*100) / 100
			speedups = append(speedups, sp)
			fastAllocRates = append(fastAllocRates, math.Max(cell[0].AllocsPerMWI, 1e-9))
			fmt.Printf("%-14s %-8s fast %8.1f MWI/s  ref %8.1f MWI/s  speedup %5.2fx  allocs/MWI %8.1f\n",
				spec.Name, dev.Name, cell[0].MWIPerSec, cell[1].MWIPerSec, sp, cell[0].AllocsPerMWI)
		}
	}
	if len(speedups) == 0 {
		log.Fatal("simbench: no cells completed")
	}
	o.Summary.GeomeanSpeedup = math.Round(geomean(speedups)*1000) / 1000
	o.Summary.FastAllocsGeo = math.Round(geomean(fastAllocRates)*10) / 10
	fmt.Printf("\ngeomean speedup: %.3fx over %d cells; fast-engine allocs/MWI geomean %.1f\n",
		o.Summary.GeomeanSpeedup, len(speedups), o.Summary.FastAllocsGeo)

	data, err := json.MarshalIndent(&o, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}

	if *minSpeedup > 0 && o.Summary.GeomeanSpeedup < *minSpeedup {
		log.Fatalf("simbench: geomean speedup %.3fx below the %.2fx floor — interpreter performance regressed",
			o.Summary.GeomeanSpeedup, *minSpeedup)
	}
	if *maxAllocs > 0 && o.Summary.FastAllocsGeo > *maxAllocs {
		log.Fatalf("simbench: fast-engine allocations %.1f/MWI above the %.1f ceiling — arena recycling regressed",
			o.Summary.FastAllocsGeo, *maxAllocs)
	}
}

func engineName(reference bool) string {
	if reference {
		return "reference"
	}
	return "fast"
}
