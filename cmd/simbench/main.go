// Command simbench measures the simulator's own execution speed — not the
// modelled GPU performance, but how fast the host interprets kernels. Each
// paper benchmark runs per device under a grid of interpreter profiles:
// the retained reference interpreter, the predecoded fast engine and the
// threaded (superinstruction-fusing, block-compiling) engine, the latter
// two both sequentially and with per-CU engine parallelism. Wall time,
// warp-instruction throughput, heap-allocation cost and the threaded
// engine's superinstruction hit rate are recorded per cell. The output is
// the evidence file for the interpreter-optimisation work: BENCH_sim.json
// (schema v2) carries per-cell numbers plus per-profile geometric means.
//
// CI runs a short profile (-scale 4 -engine threaded -reps 1) as a smoke
// gate with -minspeedup and -maxallocs thresholds; the committed
// BENCH_sim.json is produced by the default profile.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"gpucmp/internal/arch"
	"gpucmp/internal/bench"
	"gpucmp/internal/sim"
)

// profile is one engine x parallelism configuration of the interpreter.
type profile struct {
	name     string
	engine   sim.Engine
	parallel bool
}

var allProfiles = []profile{
	{"reference", sim.EngineReference, false},
	{"fast-seq", sim.EngineFast, false},
	{"fast-par", sim.EngineFast, true},
	{"threaded-seq", sim.EngineThreaded, false},
	{"threaded-par", sim.EngineThreaded, true},
}

// Record is one (benchmark, device, profile) cell.
type Record struct {
	Benchmark string `json:"benchmark"`
	Device    string `json:"device"`
	Profile   string `json:"profile"`  // e.g. "threaded-seq"
	Engine    string `json:"engine"`   // "reference", "fast" or "threaded"
	Parallel  bool   `json:"parallel"` // per-CU engine parallelism

	WallSeconds  float64 `json:"wall_seconds"`  // best of -reps runs
	WarpInstrs   int64   `json:"warp_instrs"`   // per run
	MWIPerSec    float64 `json:"mwi_per_sec"`   // warp-instruction throughput
	AllocsPerRun uint64  `json:"allocs_per_run"`
	AllocsPerMWI float64 `json:"allocs_per_mwi"` // heap allocations per million warp-instrs

	// SuperinstrHitRate is the fraction of warp instructions retired inside
	// fused superinstruction segments (threaded profiles only).
	SuperinstrHitRate float64 `json:"superinstr_hit_rate,omitempty"`
	// SuperinstrOpsPerDispatch is the mean fused-segment length actually
	// executed (ops covered / fused dispatches; threaded profiles only).
	SuperinstrOpsPerDispatch float64 `json:"superinstr_ops_per_dispatch,omitempty"`
}

// Summary aggregates the grid per profile.
type Summary struct {
	Schema   int    `json:"schema"` // 2
	Profile  string `json:"profile"`
	HostCPUs int    `json:"host_cpus"`

	// GeomeanSpeedup is each profile's geometric-mean speedup over the
	// reference interpreter across all completed cells.
	GeomeanSpeedup map[string]float64 `json:"geomean_speedup"`
	// ThreadedOverFast is the headline ratio: threaded-seq geomean speedup
	// divided by fast-seq geomean speedup (only when both profiles ran).
	ThreadedOverFast float64 `json:"threaded_over_fast_geomean,omitempty"`
	// Speedups holds per-cell speedups over reference: profile -> cell.
	Speedups map[string]map[string]float64 `json:"speedups"`
	// AllocsGeo is each profile's geomean heap allocations per million
	// warp-instructions.
	AllocsGeo map[string]float64 `json:"allocs_per_mwi_geomean"`
	// SuperinstrHitRateMean is the plain mean fused coverage across cells,
	// per threaded profile.
	SuperinstrHitRateMean map[string]float64 `json:"superinstr_hit_rate_mean,omitempty"`
}

// Output is the BENCH_sim.json document (schema v2).
type Output struct {
	Summary Summary  `json:"summary"`
	Records []Record `json:"records"`
}

// toolchain picks the runtime a device supports (the AMD part only speaks
// OpenCL); the engine comparison is toolchain-agnostic either way.
func toolchain(dev *arch.Device) string {
	if dev.Vendor == "AMD" {
		return "opencl"
	}
	return "cuda"
}

// run executes one benchmark once on a fresh driver and returns the
// interpreter's wall time (sim.Device.ExecNanos — launches only, so the
// engines are compared without the identical host-side compile, staging
// and verification work), the warp-instruction count, the heap allocations
// of the run, and the device's superinstruction counters.
func run(spec bench.Spec, dev *arch.Device, cfg bench.Config, p profile) (float64, int64, uint64, [3]int64, error) {
	var super [3]int64
	d, err := bench.NewDriver(toolchain(dev), dev)
	if err != nil {
		return 0, 0, 0, super, err
	}
	sd := bench.SimDevice(d)
	if sd == nil {
		return 0, 0, 0, super, fmt.Errorf("driver exposes no simulated device")
	}
	sd.Engine = p.engine
	sd.Reference = p.engine == sim.EngineReference
	sd.Parallel = p.parallel
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	res, err := spec.Run(d, cfg)
	runtime.ReadMemStats(&after)
	if err != nil {
		return 0, 0, 0, super, err
	}
	if res.Err != nil {
		return 0, 0, 0, super, res.Err
	}
	var wi int64
	for _, tr := range res.Traces {
		wi += tr.Dyn.Total
	}
	super[0], super[1], super[2] = sd.DeviceEngineStats()
	return float64(sd.ExecNanos()) / 1e9, wi, after.Mallocs - before.Mallocs, super, nil
}

func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// gateSpec is a per-profile threshold flag: either a bare number applied
// to the headline profile (threaded-seq when it runs, else fast-seq), or a
// comma list of profile=value pairs.
type gateSpec map[string]float64

func parseGates(s, headline string) (gateSpec, error) {
	g := gateSpec{}
	if s == "" || s == "0" {
		return g, nil
	}
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		if v > 0 {
			g[headline] = v
		}
		return g, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad gate %q (want profile=value)", part)
		}
		v, err := strconv.ParseFloat(kv[1], 64)
		if err != nil {
			return nil, fmt.Errorf("bad gate %q: %v", part, err)
		}
		g[kv[0]] = v
	}
	return g, nil
}

func main() {
	scale := flag.Int("scale", 2, "problem-size divisor (1 = full size)")
	reps := flag.Int("reps", 3, "runs per cell; best wall time wins")
	out := flag.String("out", "BENCH_sim.json", "output path ('-' for stdout)")
	only := flag.String("benchmarks", "", "comma-separated benchmark subset (default: all)")
	engine := flag.String("engine", "", "restrict to one optimised engine: fast or threaded (reference always runs as the baseline)")
	par := flag.String("engine-parallelism", "", "restrict parallelism: on or off (default: both)")
	minSpeedup := flag.String("minspeedup", "", "fail if a profile's geomean speedup over reference is below this; bare number gates the headline profile, or profile=value,...")
	maxAllocs := flag.String("maxallocs", "", "fail if a profile's geomean allocs per million warp-instrs exceeds this; same syntax as -minspeedup")
	requirePar := flag.Bool("requirepar", false, "fail unless threaded-par beats threaded-seq (geomean wall time); skipped with a warning on a single-CPU host")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	want := map[string]bool{}
	for _, n := range strings.Split(*only, ",") {
		if n = strings.TrimSpace(n); n != "" {
			want[n] = true
		}
	}

	profiles := []profile{allProfiles[0]} // reference is always the baseline
	for _, p := range allProfiles[1:] {
		if *engine != "" && p.engine.String() != *engine {
			continue
		}
		if *par == "off" && p.parallel || *par == "on" && !p.parallel {
			continue
		}
		profiles = append(profiles, p)
	}
	if len(profiles) == 1 {
		log.Fatalf("simbench: no optimised profiles selected (engine=%q, engine-parallelism=%q)", *engine, *par)
	}
	headline := "fast-seq"
	for _, p := range profiles {
		if p.name == "threaded-seq" || p.name == "threaded-par" && headline == "fast-seq" {
			headline = p.name
		}
	}
	minGate, err := parseGates(*minSpeedup, headline)
	if err != nil {
		log.Fatalf("simbench: -minspeedup: %v", err)
	}
	maxGate, err := parseGates(*maxAllocs, headline)
	if err != nil {
		log.Fatalf("simbench: -maxallocs: %v", err)
	}

	devices := []*arch.Device{arch.GTX280(), arch.GTX480(), arch.HD5870()}

	var o Output
	o.Summary.Schema = 2
	o.Summary.Profile = fmt.Sprintf("scale=%d reps=%d", *scale, *reps)
	o.Summary.HostCPUs = runtime.NumCPU()
	o.Summary.GeomeanSpeedup = map[string]float64{}
	o.Summary.Speedups = map[string]map[string]float64{}
	o.Summary.AllocsGeo = map[string]float64{}
	speedups := map[string][]float64{}
	allocRates := map[string][]float64{}
	hitRates := map[string][]float64{}

	for _, spec := range bench.Registry() {
		if len(want) > 0 && !want[spec.Name] {
			continue
		}
		for _, dev := range devices {
			cfg := bench.NativeConfig(toolchain(dev))
			cfg.Scale = *scale
			cells := map[string]Record{}
			ok := true
			for _, p := range profiles {
				best := math.Inf(1)
				var wi int64
				var allocs uint64
				var super [3]int64
				for r := 0; r < *reps; r++ {
					wall, w, a, su, err := run(spec, dev, cfg, p)
					if err != nil {
						log.Printf("simbench: %s/%s (%s): %v — skipping cell",
							spec.Name, dev.Name, p.name, err)
						ok = false
						break
					}
					if wall < best {
						best, wi, allocs, super = wall, w, a, su
					}
				}
				if !ok {
					break
				}
				rec := Record{
					Benchmark:    spec.Name,
					Device:       dev.Name,
					Profile:      p.name,
					Engine:       p.engine.String(),
					Parallel:     p.parallel,
					WallSeconds:  best,
					WarpInstrs:   wi,
					MWIPerSec:    float64(wi) / best / 1e6,
					AllocsPerRun: allocs,
					AllocsPerMWI: float64(allocs) / (float64(wi) / 1e6),
				}
				if p.engine == sim.EngineThreaded && wi > 0 {
					// One run's counters: the driver (and so the device) is
					// fresh per run, so the best run's totals divide by one
					// run's warp instructions.
					rec.SuperinstrHitRate = float64(super[1]) / float64(wi)
					if super[0] > 0 {
						rec.SuperinstrOpsPerDispatch = float64(super[1]) / float64(super[0])
					}
					hitRates[p.name] = append(hitRates[p.name], rec.SuperinstrHitRate)
				}
				cells[p.name] = rec
			}
			if !ok {
				continue
			}
			ref := cells["reference"]
			key := spec.Name + "/" + dev.Name
			line := fmt.Sprintf("%-14s %-8s", spec.Name, dev.Name)
			for _, p := range profiles {
				rec := cells[p.name]
				o.Records = append(o.Records, rec)
				if p.name == "reference" {
					continue
				}
				sp := ref.WallSeconds / rec.WallSeconds
				if o.Summary.Speedups[p.name] == nil {
					o.Summary.Speedups[p.name] = map[string]float64{}
				}
				o.Summary.Speedups[p.name][key] = math.Round(sp*100) / 100
				speedups[p.name] = append(speedups[p.name], sp)
				allocRates[p.name] = append(allocRates[p.name], math.Max(rec.AllocsPerMWI, 1e-9))
				line += fmt.Sprintf("  %s %5.2fx", p.name, sp)
			}
			if t, ok := cells["threaded-seq"]; ok {
				line += fmt.Sprintf("  fuse %3.0f%%", t.SuperinstrHitRate*100)
			}
			fmt.Println(line)
		}
	}
	if len(speedups) == 0 {
		log.Fatal("simbench: no cells completed")
	}
	o.Summary.SuperinstrHitRateMean = map[string]float64{}
	for name, xs := range speedups {
		o.Summary.GeomeanSpeedup[name] = math.Round(geomean(xs)*1000) / 1000
		o.Summary.AllocsGeo[name] = math.Round(geomean(allocRates[name])*10) / 10
	}
	for name, xs := range hitRates {
		o.Summary.SuperinstrHitRateMean[name] = math.Round(mean(xs)*1000) / 1000
	}
	if f, t := o.Summary.GeomeanSpeedup["fast-seq"], o.Summary.GeomeanSpeedup["threaded-seq"]; f > 0 && t > 0 {
		o.Summary.ThreadedOverFast = math.Round(t/f*1000) / 1000
	}

	fmt.Println()
	for _, p := range profiles[1:] {
		n := len(speedups[p.name])
		fmt.Printf("%-13s geomean speedup %6.3fx over %d cells; allocs/MWI geomean %.1f\n",
			p.name, o.Summary.GeomeanSpeedup[p.name], n, o.Summary.AllocsGeo[p.name])
	}
	if o.Summary.ThreadedOverFast > 0 {
		fmt.Printf("threaded-seq over fast-seq: %.3fx\n", o.Summary.ThreadedOverFast)
	}

	data, err := json.MarshalIndent(&o, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}

	failed := false
	for name, floor := range minGate {
		got, ok := o.Summary.GeomeanSpeedup[name]
		if !ok {
			log.Printf("simbench: -minspeedup names profile %q which did not run", name)
			failed = true
			continue
		}
		if got < floor {
			log.Printf("simbench: %s geomean speedup %.3fx below the %.2fx floor — interpreter performance regressed",
				name, got, floor)
			failed = true
		}
	}
	for name, ceil := range maxGate {
		got, ok := o.Summary.AllocsGeo[name]
		if !ok {
			log.Printf("simbench: -maxallocs names profile %q which did not run", name)
			failed = true
			continue
		}
		if got > ceil {
			log.Printf("simbench: %s allocations %.1f/MWI above the %.1f ceiling — arena recycling regressed",
				name, got, ceil)
			failed = true
		}
	}
	if *requirePar {
		seq, okS := o.Summary.GeomeanSpeedup["threaded-seq"]
		parG, okP := o.Summary.GeomeanSpeedup["threaded-par"]
		switch {
		case runtime.NumCPU() <= 1:
			log.Printf("simbench: -requirepar skipped: single-CPU host (engine parallelism cannot win)")
		case !okS || !okP:
			log.Printf("simbench: -requirepar needs both threaded-seq and threaded-par profiles")
			failed = true
		case parG <= seq:
			log.Printf("simbench: threaded-par (%.3fx) does not beat threaded-seq (%.3fx) on a %d-CPU host",
				parG, seq, runtime.NumCPU())
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
