// Command faircompare demonstrates the paper's eight-step fair-comparison
// methodology (Section IV-C, Fig. 9) on one benchmark: it audits the
// native (unfair) configuration pair, reports where the eight steps
// diverge and who is responsible, then equalises the programmer-controlled
// steps and shows how the PerformanceRatio moves toward parity. With
// -ablate it also runs the Section-V gap-closing study, porting each
// missing NVOPENCC optimisation into the OpenCL front-end one named knob
// at a time and reporting how much of the residual step-5 gap each closes.
package main

import (
	"flag"
	"fmt"
	"log"

	"gpucmp/internal/arch"
	"gpucmp/internal/bench"
	"gpucmp/internal/core"
)

func main() {
	name := flag.String("bench", "MD", "benchmark to audit (see Table II names)")
	scale := flag.Int("scale", 1, "problem-size divisor")
	device := flag.String("device", arch.GTX280().Name, "device name")
	ablate := flag.Bool("ablate", true, "run the Section-V pass-level gap-closing study")
	verbose := flag.Bool("v", false, "print per-step pass statistics and remark counts")
	flag.Parse()

	a, err := arch.Resolve(*device)
	if err != nil {
		log.Fatal(err)
	}
	spec, err := bench.SpecByName(*name)
	if err != nil {
		log.Fatal(err)
	}

	// Step A: the native comparison, as a Fig. 3 user would run it.
	cuCfg := bench.NativeConfig("cuda")
	cuCfg.Scale = *scale
	clCfg := bench.NativeConfig("opencl")
	clCfg.Scale = *scale

	fmt.Printf("=== native (unmodified) comparison of %s on %s ===\n", *name, a.Name)
	audit := core.Audit(
		core.DescribeSetup("cuda", *name, a.Name, cuCfg, 128),
		core.DescribeSetup("opencl", *name, a.Name, clCfg, 128))
	fmt.Print(audit)
	native, err := core.Compare(a, spec, cuCfg, clCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("native PR = %.3f\n\n", native.PR)

	// Step B: equalise the programmer-controlled steps (same step-4
	// optimisation choices on both sides).
	fair := cuCfg
	fmt.Printf("=== fair comparison: identical step-4 optimisations on both sides ===\n")
	audit = core.Audit(
		core.DescribeSetup("cuda", *name, a.Name, fair, 128),
		core.DescribeSetup("opencl", *name, a.Name, fair, 128))
	fmt.Print(audit)
	if !audit.ProgrammerFair() {
		log.Fatal("internal error: equalised setups should be programmer-fair")
	}
	fairCmp, err := core.Compare(a, spec, fair, fair)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fair PR = %.3f", fairCmp.PR)
	if core.Similar(fairCmp.PR) {
		fmt.Print("  (|1-PR| < 0.1: the programming models perform alike)")
	}
	fmt.Println()
	fmt.Println()
	fmt.Println("The remaining mismatch is step 5 — the front-end compilers themselves —")
	fmt.Println("which is the paper's residual explanation for gaps like the FFT's.")

	if !*ablate {
		return
	}

	// Step C: close the step-5 gap itself. Each NVOPENCC optimisation the
	// OpenCL front-end lacks is a named knob; port them across one at a
	// time and re-measure after every step (Section V).
	fmt.Println()
	fmt.Printf("=== Section-V gap closing: porting front-end optimisations one knob at a time ===\n")
	study, err := core.GapClosingStudy(a)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(study)
	if *verbose {
		for _, step := range study.Steps {
			fmt.Printf("\n+%s: %s\n", step.Knob, step.Description)
			fmt.Printf("  solo effect: %.2f us (vs base %.2f us)\n",
				step.SoloSeconds*1e6, study.BaseSeconds*1e6)
			fmt.Printf("  front-end remarks: %d\n", step.Remarks)
			for _, ps := range step.PassStats {
				fmt.Printf("  %s\n", ps)
			}
		}
	}
}
