// Command faircompare demonstrates the paper's eight-step fair-comparison
// methodology (Section IV-C, Fig. 9) on one benchmark: it audits the
// native (unfair) configuration pair, reports where the eight steps
// diverge and who is responsible, then equalises the programmer-controlled
// steps and shows how the PerformanceRatio moves toward parity.
package main

import (
	"flag"
	"fmt"
	"log"

	"gpucmp/internal/arch"
	"gpucmp/internal/bench"
	"gpucmp/internal/core"
)

func main() {
	name := flag.String("bench", "MD", "benchmark to audit (see Table II names)")
	scale := flag.Int("scale", 1, "problem-size divisor")
	device := flag.String("device", arch.GTX280().Name, "device name")
	flag.Parse()

	a, err := arch.Resolve(*device)
	if err != nil {
		log.Fatal(err)
	}
	spec, err := bench.SpecByName(*name)
	if err != nil {
		log.Fatal(err)
	}

	// Step A: the native comparison, as a Fig. 3 user would run it.
	cuCfg := bench.NativeConfig("cuda")
	cuCfg.Scale = *scale
	clCfg := bench.NativeConfig("opencl")
	clCfg.Scale = *scale

	fmt.Printf("=== native (unmodified) comparison of %s on %s ===\n", *name, a.Name)
	audit := core.Audit(
		core.DescribeSetup("cuda", *name, a.Name, cuCfg, 128),
		core.DescribeSetup("opencl", *name, a.Name, clCfg, 128))
	fmt.Print(audit)
	native, err := core.Compare(a, spec, cuCfg, clCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("native PR = %.3f\n\n", native.PR)

	// Step B: equalise the programmer-controlled steps (same step-4
	// optimisation choices on both sides).
	fair := cuCfg
	fmt.Printf("=== fair comparison: identical step-4 optimisations on both sides ===\n")
	audit = core.Audit(
		core.DescribeSetup("cuda", *name, a.Name, fair, 128),
		core.DescribeSetup("opencl", *name, a.Name, fair, 128))
	fmt.Print(audit)
	if !audit.ProgrammerFair() {
		log.Fatal("internal error: equalised setups should be programmer-fair")
	}
	fairCmp, err := core.Compare(a, spec, fair, fair)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fair PR = %.3f", fairCmp.PR)
	if core.Similar(fairCmp.PR) {
		fmt.Print("  (|1-PR| < 0.1: the programming models perform alike)")
	}
	fmt.Println()
	fmt.Println()
	fmt.Println("The remaining mismatch is step 5 — the front-end compilers themselves —")
	fmt.Println("which is the paper's residual explanation for gaps like the FFT's.")
}
