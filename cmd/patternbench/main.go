// Command patternbench is the evidence run for the pattern DSL: for every
// benchmark with a pattern program (MxM, Reduce, Scan, St2D, Sobel) on
// every modelled device it (1) checks the canonical lowering bit-identical
// against the frozen hand-written kernels, (2) autotunes the rewrite-rule
// schedule space, and (3) records the autotuned-vs-hand performance ratio.
// The output document, BENCH_pattern.json, is the parity claim in file
// form: per-cell ratios, per-device geometric means, and the per-device
// winning schedules — which differ across devices, the performance-
// portability effect the paper's Section V attributes to hand tuning.
//
// CI runs a reduced-scale profile gated with -maxratio (geomean slowdown
// ceiling per device); the committed BENCH_pattern.json is produced by the
// default profile with -requireflip, which additionally fails unless at
// least one benchmark's winning schedule differs across devices.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"sort"
	"strings"

	"gpucmp/internal/arch"
	"gpucmp/internal/bench"
	"gpucmp/internal/tune"
)

// Record is one (benchmark, device, toolchain) cell.
type Record struct {
	Benchmark string `json:"benchmark"`
	Device    string `json:"device"`
	Toolchain string `json:"toolchain"`
	Metric    string `json:"metric"`

	Hand      float64 `json:"hand"`      // hand-written kernel metric
	Canonical float64 `json:"canonical"` // pattern kernel, canonical schedule
	Best      float64 `json:"best"`      // pattern kernel, autotuned winner
	Winner    string  `json:"winner"`    // winning schedule mangle

	// Ratio is the autotuned-vs-hand slowdown: >1 means the generated
	// kernel is slower than the hand-written one, <1 faster, regardless
	// of whether the metric is a time or a rate.
	Ratio float64 `json:"ratio"`

	// ParityWords is the output length verified bit-identical between the
	// hand kernels and the canonical lowering on this cell.
	ParityWords int `json:"parity_words"`
}

// Summary aggregates the grid for the gates.
type Summary struct {
	Profile string `json:"profile"`

	// GeomeanRatio maps device name -> geometric-mean autotuned-vs-hand
	// slowdown over its cells (the -maxratio gate).
	GeomeanRatio map[string]float64 `json:"geomean_ratio"`

	// Winners maps benchmark -> device -> winning schedule mangle.
	Winners map[string]map[string]string `json:"winners"`

	// WinnerFlips lists benchmarks whose winning schedule differs across
	// devices — the rewrite rules changing the answer per device.
	WinnerFlips []string `json:"winner_flips"`
}

// Output is the BENCH_pattern.json document.
type Output struct {
	Summary Summary  `json:"summary"`
	Records []Record `json:"records"`
}

// toolchains lists the runtimes a device supports (the AMD part only
// speaks OpenCL).
func toolchains(dev *arch.Device) []string {
	if dev.Vendor == "NVIDIA" {
		return []string{"cuda", "opencl"}
	}
	return []string{"opencl"}
}

// measure runs one benchmark variant on a fresh driver and returns its raw
// metric. An empty mangle selects the hand-written kernels.
func measure(spec bench.Spec, toolchain string, dev *arch.Device, scale int, mangle string) (float64, error) {
	d, err := bench.NewDriver(toolchain, dev)
	if err != nil {
		return 0, err
	}
	res, err := spec.Run(d, bench.Config{Scale: scale, Pattern: mangle})
	if err != nil {
		return 0, err
	}
	if res.Err != nil {
		return 0, res.Err
	}
	if !res.Correct {
		return 0, fmt.Errorf("output failed verification")
	}
	return res.Value, nil
}

func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

func main() {
	scale := flag.Int("scale", 8, "problem-size divisor")
	workers := flag.Int("workers", 4, "concurrent schedule evaluations")
	out := flag.String("out", "BENCH_pattern.json", "output path ('-' for stdout)")
	only := flag.String("benchmarks", "", "comma-separated benchmark subset (default: all pattern benchmarks)")
	maxRatio := flag.Float64("maxratio", 0, "fail if any device's geomean autotuned-vs-hand slowdown exceeds this (0 = off)")
	requireFlip := flag.Bool("requireflip", false, "fail unless some benchmark's winning schedule differs across devices")
	flag.Parse()

	want := map[string]bool{}
	for _, n := range strings.Split(*only, ",") {
		if n = strings.TrimSpace(n); n != "" {
			want[n] = true
		}
	}
	devices := []*arch.Device{arch.GTX280(), arch.GTX480(), arch.HD5870()}

	var o Output
	o.Summary.Profile = fmt.Sprintf("scale=%d", *scale)
	o.Summary.GeomeanRatio = map[string]float64{}
	o.Summary.Winners = map[string]map[string]string{}
	ratios := map[string][]float64{} // device -> cell ratios

	for _, name := range bench.PatternBenchNames() {
		if len(want) > 0 && !want[name] {
			continue
		}
		spec, err := bench.SpecByName(name)
		if err != nil {
			log.Fatal(err)
		}
		o.Summary.Winners[name] = map[string]string{}
		for _, dev := range devices {
			for _, tc := range toolchains(dev) {
				// Gate 1: the canonical lowering must reproduce the
				// hand-written kernels' output words exactly.
				handWords, patWords, err := bench.PatternParity(tc, dev, name, bench.Config{Scale: *scale})
				if err != nil {
					log.Fatalf("patternbench: %s/%s (%s): parity harness: %v", name, dev.Name, tc, err)
				}
				if len(handWords) != len(patWords) {
					log.Fatalf("patternbench: %s/%s (%s): hand output has %d words, pattern %d",
						name, dev.Name, tc, len(handWords), len(patWords))
				}
				for i := range handWords {
					if handWords[i] != patWords[i] {
						log.Fatalf("patternbench: %s/%s (%s): outputs diverge at word %d: hand %#x, pattern %#x",
							name, dev.Name, tc, i, handWords[i], patWords[i])
					}
				}

				// Gate 2: sweep the schedule space and compare the winner
				// against the hand-written kernels on the paper's metric.
				rep, err := tune.TunePatternParallel(tc, dev, name, *scale, *workers)
				if err != nil {
					log.Fatalf("patternbench: %s/%s (%s): %v", name, dev.Name, tc, err)
				}
				best, ok := rep.Best()
				if !ok {
					log.Fatalf("patternbench: %s/%s (%s): no schedule ran OK", name, dev.Name, tc)
				}
				canonMangle, _ := bench.PatternCanonical(name)
				var canonical float64
				for _, p := range rep.Points {
					if p.Pattern == canonMangle && p.Status == "OK" {
						canonical = p.Raw
					}
				}
				hand, err := measure(spec, tc, dev, *scale, "")
				if err != nil {
					log.Fatalf("patternbench: %s/%s (%s): hand run: %v", name, dev.Name, tc, err)
				}
				ratio := best.Raw / hand
				if !spec.LowerIsBetter {
					ratio = hand / best.Raw
				}

				o.Records = append(o.Records, Record{
					Benchmark: name, Device: dev.Name, Toolchain: tc, Metric: spec.Metric,
					Hand: hand, Canonical: canonical, Best: best.Raw, Winner: best.Pattern,
					Ratio:       math.Round(ratio*1000) / 1000,
					ParityWords: len(handWords),
				})
				ratios[dev.Name] = append(ratios[dev.Name], ratio)
				if prev, seen := o.Summary.Winners[name][dev.Name]; !seen || prev == best.Pattern {
					o.Summary.Winners[name][dev.Name] = best.Pattern
				}
				fmt.Printf("%-7s %-15s %-7s parity %7d words  hand %10.4g  tuned %10.4g %s  ratio %5.3f  winner %s\n",
					name, dev.Name, tc, len(handWords), hand, best.Raw, spec.Metric, ratio, best.Pattern)
			}
		}
	}
	if len(o.Records) == 0 {
		log.Fatal("patternbench: no cells completed")
	}

	for dev, rs := range ratios {
		o.Summary.GeomeanRatio[dev] = math.Round(geomean(rs)*1000) / 1000
	}
	for name, byDev := range o.Summary.Winners {
		distinct := map[string]bool{}
		for _, m := range byDev {
			distinct[m] = true
		}
		if len(distinct) > 1 {
			o.Summary.WinnerFlips = append(o.Summary.WinnerFlips, name)
		}
	}
	sort.Strings(o.Summary.WinnerFlips)

	fmt.Println()
	for _, dev := range devices {
		if g, ok := o.Summary.GeomeanRatio[dev.Name]; ok {
			fmt.Printf("%-15s geomean autotuned-vs-hand slowdown %.3fx\n", dev.Name, g)
		}
	}
	fmt.Printf("winner flips across devices: %v\n", o.Summary.WinnerFlips)

	data, err := json.MarshalIndent(&o, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}

	if *maxRatio > 0 {
		for dev, g := range o.Summary.GeomeanRatio {
			if g > *maxRatio {
				log.Fatalf("patternbench: %s geomean slowdown %.3fx above the %.2fx ceiling — generated kernels regressed",
					dev, g, *maxRatio)
			}
		}
	}
	if *requireFlip && len(o.Summary.WinnerFlips) == 0 {
		log.Fatal("patternbench: every device picked the same winning schedule for every benchmark — no rewrite rule changed an answer")
	}
}
