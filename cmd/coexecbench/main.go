// Command coexecbench is the transfer-inclusive companion to benchall: the
// paper's Section IV compares devices by kernel time alone, and this tool
// reruns that comparison with host<->device transfers included ("Section
// IV'"), then measures what co-executing one launch across several devices
// buys — and what recovering from a device lost mid-run costs.
//
// Three result sections land in the JSON output:
//
//   - section_iv_prime: per-workload device rankings by compute-only and by
//     transfer-inclusive time, with the pairs whose order flips. The CPU's
//     host-resident buffers (no PCIe crossing) are what make flips happen
//     on transfer-bound workloads.
//   - coexec: 2- and 3-device co-execution makespans against the best
//     single device, with and without copy/compute overlap.
//   - recovery: the same splits with one device deterministically killed
//     mid-run; overhead is the extra simulated makespan paid for reclaiming
//     and redistributing the dead device's shards.
//
// Every co-execution merge is checked bit-identical to the single-device
// oracle before anything is written; a mismatch is a hard failure. This is
// the gate CI runs at reduced scale with -requireflip.
package main

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"log"
	"os"
	"sort"

	"gpucmp/internal/arch"
	"gpucmp/internal/coexec"
)

// baseSizes is the scale-1 problem size per workload; -scale divides it.
var baseSizes = map[string]int{"vecadd": 512, "sobel": 256, "mxm": 192}

// deviceRow is one device's entry in a Section IV' ranking.
type deviceRow struct {
	Device          string  `json:"device"`
	Toolchain       string  `json:"toolchain"`
	KernelSeconds   float64 `json:"kernel_seconds"`
	TransferSeconds float64 `json:"transfer_seconds"` // h2d + d2h + setup copies
	TotalSeconds    float64 `json:"total_seconds"`    // overlapped span incl. setup
	RankCompute     int     `json:"rank_compute"`
	RankTotal       int     `json:"rank_total"`
}

// flip is one device pair whose order differs between the two rankings.
type flip struct {
	Faster string `json:"faster_compute_only"` // wins on kernel time...
	Slower string `json:"faster_transfer_incl"` // ...but loses once copies count
}

type sectionIVPrime struct {
	Workload string      `json:"workload"`
	Size     int         `json:"size"`
	Devices  []deviceRow `json:"devices"`
	Flips    []flip      `json:"flips"`
}

type coexecResult struct {
	Workload         string   `json:"workload"`
	Devices          []string `json:"devices"`
	MakespanSeconds  float64  `json:"makespan_seconds"`
	NoOverlapSeconds float64  `json:"no_overlap_seconds"`
	BestSingleDevice string   `json:"best_single_device"`
	BestSingleSecs   float64  `json:"best_single_seconds"`
	Speedup          float64  `json:"speedup"`      // best single / coexec makespan
	OverlapGain      float64  `json:"overlap_gain"` // no-overlap / makespan
}

type recoveryResult struct {
	Workload            string         `json:"workload"`
	Devices             []string       `json:"devices"`
	Kill                map[string]int `json:"kill"`
	CleanSeconds        float64        `json:"clean_makespan_seconds"`
	KillSeconds         float64        `json:"kill_makespan_seconds"`
	OverheadRatio       float64        `json:"overhead_ratio"` // kill/clean - 1
	Redistributions     int            `json:"redistributions"`
	Lost                []string       `json:"lost"`
	BitIdenticalToClean bool           `json:"bit_identical_to_clean"`
}

type output struct {
	Tool     string           `json:"tool"`
	Scale    int              `json:"scale"`
	Sections []sectionIVPrime `json:"section_iv_prime"`
	Coexec   []coexecResult   `json:"coexec"`
	Recovery []recoveryResult `json:"recovery"`
}

func checksum(words []uint32) string {
	h := fnv.New64a()
	var buf [4]byte
	for _, w := range words {
		binary.LittleEndian.PutUint32(buf[:], w)
		h.Write(buf[:]) //nolint:errcheck // fnv never fails
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// singleRun co-executes on exactly one device: same accounting as the
// multi-device runs (setup + overlap), so the comparison is apples-to-apples.
func singleRun(w coexec.Workload, a *arch.Device) ([]uint32, *coexec.DeviceReport, error) {
	out, rep, err := coexec.Run(context.Background(), w, coexec.Options{
		Devices: []*arch.Device{a}, StragglerAfter: -1,
	})
	if err != nil {
		return nil, nil, err
	}
	return out, &rep.Devices[0], nil
}

func main() {
	scale := flag.Int("scale", 1, "problem-size divisor (1 = full size)")
	jsonPath := flag.String("json", "BENCH_coexec.json", "output path ('-' for stdout)")
	requireFlip := flag.Bool("requireflip", false, "exit non-zero unless at least one ranking flip is found")
	flag.Parse()
	if *scale < 1 {
		log.Fatal("coexecbench: -scale must be >= 1")
	}

	devices := []*arch.Device{
		arch.GTX480(), arch.GTX280(), arch.HD5870(), arch.Intel920(), arch.CellBE(),
	}
	out := output{Tool: "coexecbench", Scale: *scale}

	// ---- Section IV': compute-only vs transfer-inclusive rankings -------
	totalFlips := 0
	oracles := map[string][]uint32{} // workload -> reference words
	for _, name := range coexec.NamedWorkloads() {
		size := baseSizes[name] / *scale
		if size < 16 {
			size = 16
		}
		w, err := coexec.Named(name, size)
		if err != nil {
			log.Fatal(err)
		}
		sec := sectionIVPrime{Workload: name, Size: size}
		for _, a := range devices {
			words, dr, err := singleRun(w, a)
			if err != nil {
				log.Fatalf("coexecbench: %s on %s: %v", name, a.Name, err)
			}
			if ref, ok := oracles[name]; !ok {
				oracles[name] = words
			} else if checksum(ref) != checksum(words) {
				log.Fatalf("coexecbench: %s on %s: output differs from oracle — simulator determinism broken", name, a.Name)
			}
			sec.Devices = append(sec.Devices, deviceRow{
				Device:          a.Name,
				Toolchain:       dr.Toolchain,
				KernelSeconds:   dr.KernelSeconds,
				TransferSeconds: dr.H2DSeconds + dr.D2HSeconds + dr.SetupSeconds,
				TotalSeconds:    dr.SpanSeconds,
			})
		}
		rank := func(key func(deviceRow) float64, assign func(*deviceRow, int)) {
			idx := make([]int, len(sec.Devices))
			for i := range idx {
				idx[i] = i
			}
			sort.SliceStable(idx, func(a, b int) bool {
				return key(sec.Devices[idx[a]]) < key(sec.Devices[idx[b]])
			})
			for r, i := range idx {
				assign(&sec.Devices[i], r+1)
			}
		}
		rank(func(d deviceRow) float64 { return d.KernelSeconds },
			func(d *deviceRow, r int) { d.RankCompute = r })
		rank(func(d deviceRow) float64 { return d.TotalSeconds },
			func(d *deviceRow, r int) { d.RankTotal = r })
		for i := range sec.Devices {
			for j := range sec.Devices {
				di, dj := sec.Devices[i], sec.Devices[j]
				if di.RankCompute < dj.RankCompute && di.RankTotal > dj.RankTotal {
					sec.Flips = append(sec.Flips, flip{Faster: di.Device, Slower: dj.Device})
				}
			}
		}
		totalFlips += len(sec.Flips)
		out.Sections = append(out.Sections, sec)
	}

	// ---- Co-execution speedup over the best single device ---------------
	splits := [][]*arch.Device{
		{arch.GTX480(), arch.GTX280()},
		{arch.GTX480(), arch.GTX280(), arch.Intel920()},
	}
	for _, name := range coexec.NamedWorkloads() {
		size := baseSizes[name] / *scale
		if size < 16 {
			size = 16
		}
		w, _ := coexec.Named(name, size)
		singleSpan := map[string]float64{}
		for _, sec := range out.Sections {
			if sec.Workload != name {
				continue
			}
			for _, dr := range sec.Devices {
				singleSpan[dr.Device] = dr.TotalSeconds
			}
		}
		for _, split := range splits {
			// Transfer-inclusive scheduling: the static shard split is
			// weighted by each device's end-to-end (copies included)
			// single-device speed, so the partitions finish together.
			weights := make([]float64, len(split))
			for i, a := range split {
				weights[i] = 1 / singleSpan[a.Name]
			}
			words, rep, err := coexec.Run(context.Background(), w, coexec.Options{
				Devices: split, Weights: weights, StragglerAfter: -1,
			})
			if err != nil {
				log.Fatalf("coexecbench: coexec %s: %v", name, err)
			}
			if checksum(words) != checksum(oracles[name]) {
				log.Fatalf("coexecbench: coexec %s on %d devices: merge differs from oracle", name, len(split))
			}
			res := coexecResult{
				Workload:         name,
				MakespanSeconds:  rep.MakespanSeconds,
				NoOverlapSeconds: rep.NoOverlapSeconds,
				OverlapGain:      rep.NoOverlapSeconds / rep.MakespanSeconds,
			}
			best := -1.0
			for _, a := range split {
				res.Devices = append(res.Devices, a.Name)
				if span := singleSpan[a.Name]; best < 0 || span < best {
					best, res.BestSingleDevice = span, a.Name
				}
			}
			res.BestSingleSecs = best
			res.Speedup = best / rep.MakespanSeconds
			out.Coexec = append(out.Coexec, res)
		}
	}

	// ---- Recovery overhead: lose a device mid-run ------------------------
	kill := map[string]int{"GeForce GTX280": 1}
	for _, name := range coexec.NamedWorkloads() {
		size := baseSizes[name] / *scale
		if size < 16 {
			size = 16
		}
		w, _ := coexec.Named(name, size)
		split := []*arch.Device{arch.GTX480(), arch.GTX280(), arch.Intel920()}
		weights := make([]float64, len(split))
		for _, sec := range out.Sections {
			if sec.Workload != name {
				continue
			}
			for i, a := range split {
				for _, dr := range sec.Devices {
					if dr.Device == a.Name {
						weights[i] = 1 / dr.TotalSeconds
					}
				}
			}
		}
		opts := coexec.Options{Devices: split, Weights: weights, ShardsPerDevice: 8, StragglerAfter: -1}
		cleanWords, cleanRep, err := coexec.Run(context.Background(), w, opts)
		if err != nil {
			log.Fatalf("coexecbench: clean %s: %v", name, err)
		}
		opts.Kill = kill
		killWords, killRep, err := coexec.Run(context.Background(), w, opts)
		if err != nil {
			log.Fatalf("coexecbench: kill %s: %v", name, err)
		}
		identical := checksum(cleanWords) == checksum(killWords) &&
			checksum(killWords) == checksum(oracles[name])
		if !identical {
			log.Fatalf("coexecbench: %s: mid-run device loss changed output bits", name)
		}
		if !killRep.Degraded || len(killRep.Lost) == 0 {
			log.Fatalf("coexecbench: %s: kill run not marked degraded: %+v", name, killRep)
		}
		rec := recoveryResult{
			Workload:            name,
			Kill:                kill,
			CleanSeconds:        cleanRep.MakespanSeconds,
			KillSeconds:         killRep.MakespanSeconds,
			OverheadRatio:       killRep.MakespanSeconds/cleanRep.MakespanSeconds - 1,
			Redistributions:     killRep.Redistributions,
			Lost:                killRep.Lost,
			BitIdenticalToClean: identical,
		}
		for _, a := range split {
			rec.Devices = append(rec.Devices, a.Name)
		}
		out.Recovery = append(out.Recovery, rec)
	}

	// ---- Report ----------------------------------------------------------
	for _, sec := range out.Sections {
		fmt.Printf("%s (size %d): %d ranking flips once transfers count\n",
			sec.Workload, sec.Size, len(sec.Flips))
		for _, f := range sec.Flips {
			fmt.Printf("  %s beats %s on kernel time, loses end-to-end\n", f.Faster, f.Slower)
		}
	}
	for _, c := range out.Coexec {
		fmt.Printf("%s on %d devices: %.2fx vs best single (%s), overlap gain %.2fx\n",
			c.Workload, len(c.Devices), c.Speedup, c.BestSingleDevice, c.OverlapGain)
	}
	for _, r := range out.Recovery {
		fmt.Printf("%s recovery: +%.1f%% makespan after losing %v mid-run (%d shards redistributed)\n",
			r.Workload, 100*r.OverheadRatio, r.Lost, r.Redistributions)
	}

	w := os.Stdout
	if *jsonPath != "-" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		log.Fatal(err)
	}

	if *requireFlip && totalFlips == 0 {
		log.Fatal("coexecbench: -requireflip: no ranking flip found — transfer parameters are not doing their job")
	}
}
