// Command constmem regenerates Fig. 8 of the paper: Sobel kernel execution
// time with and without constant memory for the filter, on the GTX280
// (no general-purpose cache: the constant cache matters) and the GTX480
// (the Fermi L1 hides the difference).
package main

import (
	"flag"
	"fmt"
	"log"

	"gpucmp/internal/arch"
	"gpucmp/internal/core"
	"gpucmp/internal/stats"
)

func main() {
	scale := flag.Int("scale", 1, "problem-size divisor (1 = full size)")
	flag.Parse()

	tb := stats.NewTable("Fig. 8 — Sobel kernel time with/without constant memory",
		"device", "with const (s)", "without const (s)", "const speedup")
	for _, a := range []*arch.Device{arch.GTX280(), arch.GTX480()} {
		c, err := core.ConstantStudy(a, *scale)
		if err != nil {
			log.Fatal(err)
		}
		tb.Add(c.Device, fmt.Sprintf("%.6f", c.WithConst), fmt.Sprintf("%.6f", c.WithoutConst),
			fmt.Sprintf("%.2fx", c.Speedup()))
	}
	fmt.Println(tb)
	fmt.Println("Paper reference: on GTX280 the kernel time with constant memory drops to a")
	fmt.Println("quarter of the global-memory version; on GTX480 there are few changes.")
}
