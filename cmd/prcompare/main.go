// Command prcompare regenerates Fig. 3 of the paper: the PerformanceRatio
// (Eq. 1) of every real-world benchmark, comparing each toolchain's native
// unmodified implementation on the GTX280 and GTX480.
package main

import (
	"flag"
	"fmt"
	"log"

	"gpucmp/internal/arch"
	"gpucmp/internal/core"
	"gpucmp/internal/stats"
)

func main() {
	scale := flag.Int("scale", 2, "problem-size divisor (1 = full size)")
	device := flag.String("device", "", "restrict to one device name (default: both NVIDIA GPUs)")
	flag.Parse()

	devices := []*arch.Device{arch.GTX280(), arch.GTX480()}
	if *device != "" {
		d, err := arch.Resolve(*device)
		if err != nil {
			log.Fatal(err)
		}
		devices = []*arch.Device{d}
	}

	for _, a := range devices {
		rows, err := core.NativePRSeries(a, *scale)
		if err != nil {
			log.Fatal(err)
		}
		tb := stats.NewTable(fmt.Sprintf("Fig. 3 — PerformanceRatio on %s (PR>1: OpenCL faster)", a.Name),
			"benchmark", "metric", "CUDA", "OpenCL", "PR", "verdict")
		var prs []float64
		for _, c := range rows {
			verdict := "CUDA faster"
			switch {
			case core.Similar(c.PR):
				verdict = "similar"
			case c.PR > 1:
				verdict = "OpenCL faster"
			}
			tb.Add(c.Benchmark, c.Metric, c.CUDA.Value, c.OpenCL.Value,
				fmt.Sprintf("%.3f", c.PR), verdict)
			prs = append(prs, c.PR)
		}
		fmt.Println(tb)
		var bars []stats.Bar
		for _, c := range rows {
			bars = append(bars, stats.Bar{Label: c.Benchmark, Value: c.PR})
		}
		fmt.Println(stats.BarChart(
			fmt.Sprintf("PR on %s ('|' marks PR = 1; '#' past it means OpenCL wins)", a.Name),
			bars, 60, 1.0))
		fmt.Printf("geometric-mean PR on %s: %.3f\n\n", a.Name, stats.GeoMean(prs))
	}
}
