// Command loadgen replays a mixed gpucmpd workload against a coordinator
// (or a single worker) at a configurable request rate and scores the
// fleet against latency/throughput SLOs. The mix mirrors real traffic:
// cache-hot repeated /run cells, grid sweeps that fan out over distinct
// content keys, paper-figure regenerations, and hostile /kernels
// submissions that must come back typed, never as untyped 5xx.
//
//	loadgen -target http://127.0.0.1:8480 -rps 80 -duration 20s \
//	  -out BENCH_serve.json -maxp99 2s -minrps 40 -maxerr 0
//
// The run writes BENCH_serve.json — offered vs achieved RPS, p50/p99/p999
// latency, error/shed/reject rates, cache hit rate, and the
// coordinator's hedge/failover/dedup counters — and exits nonzero when
// any SLO gate fails, so CI can gate merges on serving behaviour.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"gpucmp/internal/cluster"
	"gpucmp/internal/kir"
)

// sample is one completed request's accounting.
type sample struct {
	class     string // ok | reject | shed | error
	latency   time.Duration
	cacheHit  bool
	cacheInfo bool // X-Cache was present (hit/miss/shared)
}

// Report is the BENCH_serve.json schema.
type Report struct {
	Target          string  `json:"target"`
	Seed            int64   `json:"seed"`
	DurationSeconds float64 `json:"duration_seconds"`
	OfferedRPS      float64 `json:"offered_rps"`
	AchievedRPS     float64 `json:"achieved_rps"` // completed (non-error) responses per second

	Requests int `json:"requests"`
	OK       int `json:"ok"`       // 2xx
	Rejected int `json:"rejected"` // typed 4xx (hostile traffic answered correctly)
	Shed     int `json:"shed"`     // typed 429/503 admission refusals
	Errors   int `json:"errors"`   // transport failures and untyped 5xx — SLO-gated

	LatencyMS    Percentiles `json:"latency_ms"`     // over OK responses
	CacheHitRate float64     `json:"cache_hit_rate"` // hit+shared over responses carrying X-Cache

	Coordinator *cluster.Snapshot `json:"coordinator,omitempty"`

	SLO SLO `json:"slo"`
}

type Percentiles struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	Max  float64 `json:"max"`
}

type SLO struct {
	MaxP99MS float64  `json:"maxp99_ms,omitempty"`
	MinRPS   float64  `json:"minrps,omitempty"`
	MaxErr   float64  `json:"maxerr"` // error fraction ceiling (negative = ungated)
	Pass     bool     `json:"pass"`
	Failures []string `json:"failures,omitempty"`
}

func main() {
	target := flag.String("target", "http://127.0.0.1:8480", "coordinator (or worker) base URL")
	duration := flag.Duration("duration", 20*time.Second, "how long to offer load")
	rps := flag.Float64("rps", 50, "offered requests per second (open loop)")
	concurrency := flag.Int("concurrency", 256, "max in-flight requests (open loop degrades to closed beyond this)")
	seed := flag.Int64("seed", 1, "workload-mix seed")
	tenants := flag.Int("tenants", 4, "distinct X-Tenant values to spread /kernels across")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request timeout")
	out := flag.String("out", "BENCH_serve.json", "report path (empty = stdout only)")
	maxP99 := flag.Duration("maxp99", 0, "SLO gate: fail if p99 latency exceeds this (0 = ungated)")
	minRPS := flag.Float64("minrps", 0, "SLO gate: fail if achieved RPS falls below this (0 = ungated)")
	maxErr := flag.Float64("maxerr", -1, "SLO gate: fail if the error fraction exceeds this (negative = ungated; 0 = no errors allowed)")
	flag.Parse()

	client := &http.Client{
		Timeout: *timeout,
		Transport: &http.Transport{
			MaxIdleConnsPerHost: *concurrency,
			IdleConnTimeout:     30 * time.Second,
		},
	}
	g := &generator{
		target:  *target,
		client:  client,
		rng:     rand.New(rand.NewSource(*seed)),
		tenants: *tenants,
		kernel:  kernelBody(),
	}

	log.Printf("loadgen: %v of %.0f rps against %s (seed %d)", *duration, *rps, *target, *seed)
	samples := g.run(*duration, *rps, *concurrency)

	rep := score(samples, *target, *seed, *duration, *rps)
	rep.Coordinator = fetchCoordinatorMetrics(client, *target)
	gate(&rep, *maxP99, *minRPS, *maxErr)

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	blob = append(blob, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("loadgen: wrote %s", *out)
	}
	os.Stdout.Write(blob)

	if !rep.SLO.Pass {
		log.Printf("loadgen: SLO FAIL: %v", rep.SLO.Failures)
		os.Exit(1)
	}
	log.Printf("loadgen: SLO PASS (ok=%d reject=%d shed=%d err=%d p99=%.1fms rps=%.1f)",
		rep.OK, rep.Rejected, rep.Shed, rep.Errors, rep.LatencyMS.P99, rep.AchievedRPS)
}

// generator owns the workload mix. All randomness flows from one seeded
// source (guarded by mu: request goroutines draw their request shape
// before launching).
type generator struct {
	target  string
	client  *http.Client
	mu      sync.Mutex
	rng     *rand.Rand
	tenants int
	kernel  []byte
}

// request is one drawn unit of traffic.
type request struct {
	method string
	path   string
	body   []byte
	tenant string
}

// cacheHotJobs is the small repeated working set: these keys recur
// constantly, so after warmup they should be served from worker caches.
var cacheHotJobs = []string{
	`{"benchmark":"Reduce","device":"GeForce GTX480","toolchain":"cuda","config":{"scale":16}}`,
	`{"benchmark":"Reduce","device":"GeForce GTX480","toolchain":"opencl","config":{"scale":16}}`,
	`{"benchmark":"Scan","device":"GeForce GTX480","toolchain":"cuda","config":{"scale":16}}`,
	`{"benchmark":"Sobel","device":"GeForce GTX480","toolchain":"opencl","config":{"scale":16}}`,
	`{"benchmark":"TranP","device":"GeForce GTX480","toolchain":"cuda","config":{"scale":16}}`,
}

// sweepBenchmarks x sweepScales is the grid-sweep population: distinct
// content keys that exercise routing spread across shards.
var sweepBenchmarks = []string{"Reduce", "Scan", "Sobel", "TranP"}
var sweepScales = []int{8, 16, 32, 64}

var hostileBodies = [][]byte{
	[]byte(`]]]not json`),
	[]byte(`{"grid":-1,"block":4,"out":"out"}`),
	[]byte(`{"grid":1,"block":4,"out":"nope","buffers":{"out":[0]},"kernel":{"name":"x"}}`),
}

// draw picks the next request from the traffic mix:
//
//	55% cache-hot /run repeats    (dedup + cache path)
//	20% /run grid sweep           (distinct keys, routing spread)
//	10% figure regeneration       (expensive artifact path)
//	10% well-formed /kernels      (tenant quota + submission pipeline)
//	 5% hostile /kernels          (must come back typed 4xx)
func (g *generator) draw() request {
	g.mu.Lock()
	defer g.mu.Unlock()
	tenant := fmt.Sprintf("tenant-%d", g.rng.Intn(g.tenants))
	switch p := g.rng.Float64(); {
	case p < 0.55:
		return request{"POST", "/run", []byte(cacheHotJobs[g.rng.Intn(len(cacheHotJobs))]), tenant}
	case p < 0.75:
		b := sweepBenchmarks[g.rng.Intn(len(sweepBenchmarks))]
		sc := sweepScales[g.rng.Intn(len(sweepScales))]
		body := fmt.Sprintf(`{"benchmark":%q,"device":"GeForce GTX480","toolchain":"opencl","config":{"scale":%d}}`, b, sc)
		return request{"POST", "/run", []byte(body), tenant}
	case p < 0.85:
		// Large scale divisor = small problem: regeneration stays cheap
		// enough to repeat under load.
		figs := []string{"fig1", "fig7", "tableV"}
		return request{"GET", "/figures/" + figs[g.rng.Intn(len(figs))] + "?scale=64", nil, tenant}
	case p < 0.95:
		return request{"POST", "/kernels", g.kernel, tenant}
	default:
		return request{"POST", "/kernels", hostileBodies[g.rng.Intn(len(hostileBodies))], tenant}
	}
}

// run offers load open-loop at rps for the duration and returns every
// completed sample.
func (g *generator) run(duration time.Duration, rps float64, concurrency int) []sample {
	if rps <= 0 {
		log.Fatal("loadgen: -rps must be positive")
	}
	interval := time.Duration(float64(time.Second) / rps)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	deadline := time.After(duration)

	var (
		mu      sync.Mutex
		samples []sample
		wg      sync.WaitGroup
	)
	sem := make(chan struct{}, concurrency)
loop:
	for {
		select {
		case <-deadline:
			break loop
		case <-ticker.C:
			req := g.draw()
			sem <- struct{}{}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				s := g.do(req)
				mu.Lock()
				samples = append(samples, s)
				mu.Unlock()
			}()
		}
	}
	wg.Wait()
	return samples
}

// do issues one request and classifies the outcome.
func (g *generator) do(r request) sample {
	start := time.Now()
	var rd io.Reader
	if r.body != nil {
		rd = bytes.NewReader(r.body)
	}
	req, err := http.NewRequestWithContext(context.Background(), r.method, g.target+r.path, rd)
	if err != nil {
		return sample{class: "error", latency: time.Since(start)}
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Tenant", r.tenant)
	resp, err := g.client.Do(req)
	if err != nil {
		return sample{class: "error", latency: time.Since(start)}
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	s := sample{latency: time.Since(start)}
	if xc := resp.Header.Get("X-Cache"); xc != "" {
		s.cacheInfo = true
		s.cacheHit = xc == "hit" || xc == "shared"
	}
	s.class = classify(resp.StatusCode, body)
	return s
}

// classify buckets a response. The contract under test: every refusal the
// fleet issues is typed (carries a machine-readable code), so an untyped
// 5xx is an error, full stop.
func classify(status int, body []byte) string {
	switch {
	case status >= 200 && status < 300:
		return "ok"
	case status == http.StatusTooManyRequests:
		return "shed" // quota refusal, typed by construction (Retry-After)
	case status == http.StatusServiceUnavailable:
		var e struct {
			Code string `json:"code"`
		}
		if json.Unmarshal(body, &e) == nil && e.Code != "" {
			return "shed" // typed admission refusal (shedding/draining/unavailable/no-workers)
		}
		return "error"
	case status >= 400 && status < 500:
		return "reject"
	default:
		return "error"
	}
}

// score folds samples into the report (SLO fields are filled by gate).
func score(samples []sample, target string, seed int64, duration time.Duration, rps float64) Report {
	rep := Report{
		Target:          target,
		Seed:            seed,
		DurationSeconds: duration.Seconds(),
		OfferedRPS:      rps,
		Requests:        len(samples),
	}
	var okLat []time.Duration
	var hits, withInfo int
	for _, s := range samples {
		switch s.class {
		case "ok":
			rep.OK++
			okLat = append(okLat, s.latency)
		case "reject":
			rep.Rejected++
		case "shed":
			rep.Shed++
		default:
			rep.Errors++
		}
		if s.cacheInfo {
			withInfo++
			if s.cacheHit {
				hits++
			}
		}
	}
	rep.AchievedRPS = float64(rep.OK+rep.Rejected+rep.Shed) / duration.Seconds()
	if withInfo > 0 {
		rep.CacheHitRate = float64(hits) / float64(withInfo)
	}
	if len(okLat) > 0 {
		sort.Slice(okLat, func(i, j int) bool { return okLat[i] < okLat[j] })
		ms := func(q float64) float64 {
			i := int(q * float64(len(okLat)))
			if i >= len(okLat) {
				i = len(okLat) - 1
			}
			return float64(okLat[i]) / float64(time.Millisecond)
		}
		rep.LatencyMS = Percentiles{
			P50: ms(0.50), P90: ms(0.90), P99: ms(0.99), P999: ms(0.999),
			Max: float64(okLat[len(okLat)-1]) / float64(time.Millisecond),
		}
	}
	return rep
}

// gate applies the SLO thresholds.
func gate(rep *Report, maxP99 time.Duration, minRPS, maxErr float64) {
	rep.SLO = SLO{
		MaxP99MS: float64(maxP99) / float64(time.Millisecond),
		MinRPS:   minRPS,
		MaxErr:   maxErr,
		Pass:     true,
	}
	fail := func(format string, args ...any) {
		rep.SLO.Pass = false
		rep.SLO.Failures = append(rep.SLO.Failures, fmt.Sprintf(format, args...))
	}
	if rep.OK == 0 {
		fail("no successful responses at all")
	}
	if maxP99 > 0 && rep.LatencyMS.P99 > rep.SLO.MaxP99MS {
		fail("p99 %.1fms exceeds SLO %.1fms", rep.LatencyMS.P99, rep.SLO.MaxP99MS)
	}
	if minRPS > 0 && rep.AchievedRPS < minRPS {
		fail("achieved %.1f rps below SLO %.1f", rep.AchievedRPS, minRPS)
	}
	if maxErr >= 0 && rep.Requests > 0 {
		frac := float64(rep.Errors) / float64(rep.Requests)
		if frac > maxErr {
			fail("error fraction %.4f exceeds SLO %.4f (%d errors)", frac, maxErr, rep.Errors)
		}
	}
}

// fetchCoordinatorMetrics pulls the fleet snapshot; nil when the target
// is a bare worker (different JSON shape) or unreachable.
func fetchCoordinatorMetrics(client *http.Client, target string) *cluster.Snapshot {
	resp, err := client.Get(target + "/metrics?format=json")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil || resp.StatusCode != http.StatusOK {
		return nil
	}
	var snap cluster.Snapshot
	if json.Unmarshal(body, &snap) != nil || snap.RingMembers == 0 {
		return nil
	}
	return &snap
}

// kernelBody builds the canonical well-behaved /kernels submission:
// out[gid] = gid across a 2x4 launch. Every draw submits the same body,
// so the fleet's content-keyed dedup and tenant caches get exercised.
func kernelBody() []byte {
	b := kir.NewKernel("store")
	out := b.GlobalBuffer("out", kir.U32)
	gid := b.Declare("gid", b.GlobalIDX())
	b.Store(out, gid, gid)
	k, err := b.Build()
	if err != nil {
		log.Fatalf("loadgen: building submission kernel: %v", err)
	}
	body, err := json.Marshal(map[string]any{
		"grid": 2, "block": 4, "out": "out",
		"buffers": map[string][]uint32{"out": make([]uint32, 8)},
		"kernel":  kir.EncodeKernelJSON(k),
	})
	if err != nil {
		log.Fatalf("loadgen: marshalling submission: %v", err)
	}
	return body
}
