package gpucmp

// Ablation benchmarks for the compiler-personality design choices that
// DESIGN.md calls out: each benchmark takes the OpenCL front-end, toggles
// exactly one personality feature toward its NVOPENCC setting, and reports
// how the FFT forward kernel's simulated execution time moves. This
// quantifies how much of the paper's FFT front-end gap each compiler
// difference is responsible for in the model.

import (
	"math"
	"testing"

	"gpucmp/internal/arch"
	"gpucmp/internal/bench"
	"gpucmp/internal/compiler"
	"gpucmp/internal/perfmodel"
	"gpucmp/internal/sim"
	"gpucmp/internal/workload"
)

// runFFTWith compiles the FFT forward kernel with the given personality and
// returns its simulated kernel seconds on a GTX480.
func runFFTWith(b *testing.B, p compiler.Personality) float64 {
	b.Helper()
	const batch = 128
	k, err := compiler.Compile(bench.FFTKernel(), p)
	if err != nil {
		b.Fatal(err)
	}
	dev, err := sim.NewDevice(arch.GTX480())
	if err != nil {
		b.Fatal(err)
	}
	re, im := workload.SignalBatch(batch, 512, 17)
	upload := func(f []float32) uint32 {
		words := make([]uint32, len(f))
		for i := range f {
			words[i] = f32bits(f[i])
		}
		addr, err := dev.Global.Alloc(uint32(4 * len(words)))
		if err != nil {
			b.Fatal(err)
		}
		if err := dev.Global.WriteWords(addr, words); err != nil {
			b.Fatal(err)
		}
		return addr
	}
	inRe, inIm := upload(re), upload(im)
	outRe, _ := dev.Global.Alloc(4 * batch * 512)
	outIm, _ := dev.Global.Alloc(4 * batch * 512)
	tr, err := dev.Launch(k, sim.Dim3{X: batch, Y: 1}, sim.Dim3{X: 64, Y: 1},
		[]uint32{inRe, inIm, outRe, outIm})
	if err != nil {
		b.Fatal(err)
	}
	tc := perfmodel.ToolchainFor(p.Name)
	return perfmodel.KernelTime(dev.Arch, tc, tr).Total
}

// ablate runs base vs. modified and reports the speed ratio.
func ablate(b *testing.B, name string, mutate func(*compiler.Personality)) {
	b.Run(name, func(b *testing.B) {
		var base, mod float64
		for i := 0; i < b.N; i++ {
			p := compiler.OpenCL()
			base = runFFTWith(b, p)
			mutate(&p)
			mod = runFFTWith(b, p)
		}
		b.ReportMetric(base*1e6, "base-us")
		b.ReportMetric(mod*1e6, "ablated-us")
		b.ReportMetric(base/mod, "speedup")
	})
}

// BenchmarkAblation_FFTFrontEnd toggles one OpenCL front-end limitation at
// a time toward the NVOPENCC behaviour.
func BenchmarkAblation_FFTFrontEnd(b *testing.B) {
	ablate(b, "wide-cse-window", func(p *compiler.Personality) {
		p.MaxCSERegs = compiler.CUDA().MaxCSERegs
	})
	ablate(b, "aggressive-auto-unroll", func(p *compiler.Personality) {
		p.AutoUnrollTrips = compiler.CUDA().AutoUnrollTrips
		p.AutoUnrollMaxNodes = compiler.CUDA().AutoUnrollMaxNodes
	})
	ablate(b, "no-strength-reduction", func(p *compiler.Personality) {
		p.StrengthReduce = false
	})
	ablate(b, "guard-predication", func(p *compiler.Personality) {
		p.SelpPureIf = false
		p.GuardSmallIf = true
		p.MaxGuardInstrs = compiler.CUDA().MaxGuardInstrs
	})
	b.Run("full-nvopencc", func(b *testing.B) {
		var base, cudaT float64
		for i := 0; i < b.N; i++ {
			base = runFFTWith(b, compiler.OpenCL())
			cudaT = runFFTWith(b, compiler.CUDA())
		}
		b.ReportMetric(base*1e6, "opencl-us")
		b.ReportMetric(cudaT*1e6, "cuda-us")
		b.ReportMetric(base/cudaT, "gap")
	})
}

// BenchmarkAblation_LaunchOverhead isolates the runtime-launch component of
// the BFS gap by re-pricing the same traces under both toolchains' launch
// costs.
func BenchmarkAblation_LaunchOverhead(b *testing.B) {
	d, err := bench.NewOpenCLDriver(arch.GTX280())
	if err != nil {
		b.Fatal(err)
	}
	var res *bench.Result
	for i := 0; i < b.N; i++ {
		res, err = bench.RunBFS(d, bench.Config{Scale: 4})
		if err != nil || res.Err != nil {
			b.Fatal(err, res.Err)
		}
		d.ResetTimer()
	}
	cu := perfmodel.CUDAToolchain()
	cl := perfmodel.OpenCLToolchain()
	launches := float64(len(res.Traces))
	diff := launches * (cl.LaunchOverhead - cu.LaunchOverhead)
	b.ReportMetric(launches, "launches")
	b.ReportMetric(diff*1e6, "launch-gap-us")
	b.ReportMetric(res.KernelSeconds*1e6, "total-us")
	b.ReportMetric(diff/res.KernelSeconds, "launch-share-of-total")
}

func f32bits(f float32) uint32 { return math.Float32bits(f) }
