package kir

// CloneExpr deep-copies an expression tree.
func CloneExpr(e Expr) Expr {
	switch e := e.(type) {
	case nil:
		return nil
	case *ConstInt:
		c := *e
		return &c
	case *ConstFloat:
		c := *e
		return &c
	case *ParamRef:
		c := *e
		return &c
	case *VarRef:
		c := *e
		return &c
	case *Builtin:
		c := *e
		return &c
	case *Bin:
		return &Bin{Op: e.Op, L: CloneExpr(e.L), R: CloneExpr(e.R)}
	case *Un:
		return &Un{Op: e.Op, X: CloneExpr(e.X)}
	case *Sel:
		return &Sel{Cond: CloneExpr(e.Cond), A: CloneExpr(e.A), B: CloneExpr(e.B)}
	case *Cast:
		return &Cast{To: e.To, X: CloneExpr(e.X)}
	case *Load:
		return &Load{Buf: e.Buf, Index: CloneExpr(e.Index), T: e.T}
	default:
		panic("kir: CloneExpr: unknown expression")
	}
}

// CloneStmts deep-copies a statement list.
func CloneStmts(stmts []Stmt) []Stmt {
	out := make([]Stmt, len(stmts))
	for i, s := range stmts {
		out[i] = cloneStmt(s)
	}
	return out
}

func cloneStmt(s Stmt) Stmt {
	switch s := s.(type) {
	case *DeclStmt:
		return &DeclStmt{Name: s.Name, T: s.T, Init: CloneExpr(s.Init)}
	case *AssignStmt:
		return &AssignStmt{Name: s.Name, Value: CloneExpr(s.Value)}
	case *StoreStmt:
		return &StoreStmt{Buf: s.Buf, Index: CloneExpr(s.Index), Value: CloneExpr(s.Value)}
	case *AtomicStmt:
		return &AtomicStmt{Buf: s.Buf, Index: CloneExpr(s.Index), Value: CloneExpr(s.Value), Op: s.Op, Result: s.Result}
	case *IfStmt:
		return &IfStmt{Cond: CloneExpr(s.Cond), Then: CloneStmts(s.Then), Else: CloneStmts(s.Else)}
	case *ForStmt:
		return &ForStmt{Var: s.Var, T: s.T, Init: CloneExpr(s.Init), Limit: CloneExpr(s.Limit),
			Step: CloneExpr(s.Step), Body: CloneStmts(s.Body), Unroll: s.Unroll}
	case *BarrierStmt:
		return &BarrierStmt{}
	default:
		panic("kir: cloneStmt: unknown statement")
	}
}

// SubstVar returns a deep copy of stmts with every read of variable name
// replaced by a copy of repl. Inner declarations or loop variables that
// shadow the name stop the substitution in their scope.
func SubstVar(stmts []Stmt, name string, repl Expr) []Stmt {
	out := make([]Stmt, len(stmts))
	shadowed := false
	for i, s := range stmts {
		if shadowed {
			out[i] = cloneStmt(s)
			continue
		}
		switch s := s.(type) {
		case *DeclStmt:
			out[i] = &DeclStmt{Name: s.Name, T: s.T, Init: substExpr(s.Init, name, repl)}
			if s.Name == name {
				shadowed = true
			}
		case *AssignStmt:
			out[i] = &AssignStmt{Name: s.Name, Value: substExpr(s.Value, name, repl)}
		case *StoreStmt:
			out[i] = &StoreStmt{Buf: s.Buf, Index: substExpr(s.Index, name, repl), Value: substExpr(s.Value, name, repl)}
		case *AtomicStmt:
			out[i] = &AtomicStmt{Buf: s.Buf, Index: substExpr(s.Index, name, repl), Value: substExpr(s.Value, name, repl), Op: s.Op, Result: s.Result}
		case *IfStmt:
			out[i] = &IfStmt{Cond: substExpr(s.Cond, name, repl), Then: SubstVar(s.Then, name, repl), Else: SubstVar(s.Else, name, repl)}
		case *ForStmt:
			f := &ForStmt{Var: s.Var, T: s.T,
				Init:   substExpr(s.Init, name, repl),
				Limit:  substExpr(s.Limit, name, repl),
				Step:   substExpr(s.Step, name, repl),
				Unroll: s.Unroll}
			if s.Var == name {
				f.Body = CloneStmts(s.Body) // inner loop shadows
			} else {
				f.Body = SubstVar(s.Body, name, repl)
			}
			out[i] = f
		case *BarrierStmt:
			out[i] = &BarrierStmt{}
		default:
			panic("kir: SubstVar: unknown statement")
		}
	}
	return out
}

// SubstExpr returns a deep copy of e with every read of variable name
// replaced by a copy of repl.
func SubstExpr(e Expr, name string, repl Expr) Expr { return substExpr(e, name, repl) }

func substExpr(e Expr, name string, repl Expr) Expr {
	switch e := e.(type) {
	case nil:
		return nil
	case *VarRef:
		if e.Name == name {
			return CloneExpr(repl)
		}
		c := *e
		return &c
	case *Bin:
		return &Bin{Op: e.Op, L: substExpr(e.L, name, repl), R: substExpr(e.R, name, repl)}
	case *Un:
		return &Un{Op: e.Op, X: substExpr(e.X, name, repl)}
	case *Sel:
		return &Sel{Cond: substExpr(e.Cond, name, repl), A: substExpr(e.A, name, repl), B: substExpr(e.B, name, repl)}
	case *Cast:
		return &Cast{To: e.To, X: substExpr(e.X, name, repl)}
	case *Load:
		return &Load{Buf: e.Buf, Index: substExpr(e.Index, name, repl), T: e.T}
	default:
		return CloneExpr(e)
	}
}

// AssignsVar reports whether any statement in the tree assigns the named
// variable (which forbids unrolling over it).
func AssignsVar(stmts []Stmt, name string) bool {
	for _, s := range stmts {
		switch s := s.(type) {
		case *AssignStmt:
			if s.Name == name {
				return true
			}
		case *AtomicStmt:
			if s.Result == name {
				return true
			}
		case *IfStmt:
			if AssignsVar(s.Then, name) || AssignsVar(s.Else, name) {
				return true
			}
		case *ForStmt:
			if s.Var != name && AssignsVar(s.Body, name) {
				return true
			}
		}
	}
	return false
}

// CountNodes estimates the size of a statement list (used by front-ends to
// bound automatic unrolling).
func CountNodes(stmts []Stmt) int {
	n := 0
	for _, s := range stmts {
		n++
		switch s := s.(type) {
		case *DeclStmt:
			n += countExpr(s.Init)
		case *AssignStmt:
			n += countExpr(s.Value)
		case *StoreStmt:
			n += countExpr(s.Index) + countExpr(s.Value)
		case *AtomicStmt:
			n += countExpr(s.Index) + countExpr(s.Value)
		case *IfStmt:
			n += countExpr(s.Cond) + CountNodes(s.Then) + CountNodes(s.Else)
		case *ForStmt:
			n += CountNodes(s.Body) + 3
		}
	}
	return n
}

func countExpr(e Expr) int {
	switch e := e.(type) {
	case nil:
		return 0
	case *Bin:
		return 1 + countExpr(e.L) + countExpr(e.R)
	case *Un:
		return 1 + countExpr(e.X)
	case *Sel:
		return 1 + countExpr(e.Cond) + countExpr(e.A) + countExpr(e.B)
	case *Cast:
		return 1 + countExpr(e.X)
	case *Load:
		return 1 + countExpr(e.Index)
	default:
		return 1
	}
}

// ReadVars collects the names of scalar variables an expression reads.
func ReadVars(e Expr, into map[string]bool) {
	switch e := e.(type) {
	case nil:
	case *VarRef:
		into[e.Name] = true
	case *Bin:
		ReadVars(e.L, into)
		ReadVars(e.R, into)
	case *Un:
		ReadVars(e.X, into)
	case *Sel:
		ReadVars(e.Cond, into)
		ReadVars(e.A, into)
		ReadVars(e.B, into)
	case *Cast:
		ReadVars(e.X, into)
	case *Load:
		ReadVars(e.Index, into)
	}
}
