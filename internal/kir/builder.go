package kir

import "fmt"

// Buf is a handle to a buffer (parameter or on-chip array) usable with
// Builder.Load and Builder.Store.
type Buf struct {
	name string
	t    Type
}

// Name returns the buffer's declared name.
func (b Buf) Name() string { return b.name }

// Elem returns the buffer's element type.
func (b Buf) Elem() Type { return b.t }

// Builder assembles a Kernel with structured-block scoping. Statement
// methods append to the innermost open block; If/For take closures that
// populate their bodies.
type Builder struct {
	k      *Kernel
	blocks []*[]Stmt
	err    error
	nvar   int
}

// NewKernel starts building a kernel.
func NewKernel(name string) *Builder {
	k := &Kernel{Name: name}
	b := &Builder{k: k}
	b.blocks = []*[]Stmt{&k.Body}
	return b
}

func (b *Builder) setErr(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("kir: kernel %s: "+format, append([]any{b.k.Name}, args...)...)
	}
}

func (b *Builder) cur() *[]Stmt { return b.blocks[len(b.blocks)-1] }

func (b *Builder) push(block *[]Stmt) { b.blocks = append(b.blocks, block) }
func (b *Builder) pop()               { b.blocks = b.blocks[:len(b.blocks)-1] }

// GlobalBuffer declares a global-memory buffer parameter.
func (b *Builder) GlobalBuffer(name string, t Type) Buf { return b.buffer(name, t, Global) }

// ConstBuffer declares a constant-memory buffer parameter (the Sobel filter
// placement of Section IV-B3).
func (b *Builder) ConstBuffer(name string, t Type) Buf { return b.buffer(name, t, Const) }

// TexBuffer declares a read-only global buffer fetched through the texture
// cache (the MD/SPMV placement of Section IV-B1).
func (b *Builder) TexBuffer(name string, t Type) Buf { return b.buffer(name, t, Texture) }

func (b *Builder) buffer(name string, t Type, space MemSpace) Buf {
	if b.k.Param(name) != nil {
		b.setErr("duplicate parameter %q", name)
	}
	b.k.Params = append(b.k.Params, Param{Name: name, T: t, Buffer: true, Space: space})
	return Buf{name: name, t: t}
}

// ScalarParam declares a scalar kernel parameter and returns an expression
// reading it.
func (b *Builder) ScalarParam(name string, t Type) Expr {
	if b.k.Param(name) != nil {
		b.setErr("duplicate parameter %q", name)
	}
	b.k.Params = append(b.k.Params, Param{Name: name, T: t})
	return &ParamRef{Name: name, T: t}
}

// SharedArray declares an on-chip shared array of count elements.
func (b *Builder) SharedArray(name string, t Type, count int) Buf {
	b.k.SharedArrays = append(b.k.SharedArrays, Array{Name: name, T: t, Count: count})
	return Buf{name: name, t: t}
}

// LocalArray declares a per-thread local array of count elements.
func (b *Builder) LocalArray(name string, t Type, count int) Buf {
	b.k.LocalArrays = append(b.k.LocalArrays, Array{Name: name, T: t, Count: count})
	return Buf{name: name, t: t}
}

// AssumeWarpWidth records a warp-width assumption baked into the algorithm.
func (b *Builder) AssumeWarpWidth(w int) { b.k.WarpWidthAssumption = w }

// Declare introduces a scalar variable initialised to init and returns a
// reference to it.
func (b *Builder) Declare(name string, init Expr) Expr {
	if init == nil {
		b.setErr("Declare(%q) with nil init", name)
		return &VarRef{Name: name}
	}
	*b.cur() = append(*b.cur(), &DeclStmt{Name: name, T: init.Type(), Init: init})
	return &VarRef{Name: name, T: init.Type()}
}

// Temp declares a fresh uniquely named variable.
func (b *Builder) Temp(init Expr) Expr {
	b.nvar++
	return b.Declare(fmt.Sprintf("_t%d", b.nvar), init)
}

// Assign overwrites a declared variable; dst must come from Declare or a
// For loop variable.
func (b *Builder) Assign(dst Expr, value Expr) {
	v, ok := dst.(*VarRef)
	if !ok {
		b.setErr("Assign target is not a variable reference")
		return
	}
	*b.cur() = append(*b.cur(), &AssignStmt{Name: v.Name, Value: value})
}

// Load reads buf[idx].
func (b *Builder) Load(buf Buf, idx Expr) Expr {
	return &Load{Buf: buf.name, Index: idx, T: buf.t}
}

// Store writes buf[idx] = val.
func (b *Builder) Store(buf Buf, idx Expr, val Expr) {
	*b.cur() = append(*b.cur(), &StoreStmt{Buf: buf.name, Index: idx, Value: val})
}

// Atomic applies op read-modify-write to buf[idx].
func (b *Builder) Atomic(buf Buf, idx Expr, op AtomicOp, val Expr) {
	*b.cur() = append(*b.cur(), &AtomicStmt{Buf: buf.name, Index: idx, Value: val, Op: op})
}

// AtomicResult is Atomic with the old value captured into a previously
// declared variable.
func (b *Builder) AtomicResult(buf Buf, idx Expr, op AtomicOp, val Expr, result Expr) {
	v, ok := result.(*VarRef)
	if !ok {
		b.setErr("AtomicResult target is not a variable reference")
		return
	}
	*b.cur() = append(*b.cur(), &AtomicStmt{Buf: buf.name, Index: idx, Value: val, Op: op, Result: v.Name})
}

// If appends a one-armed conditional whose body is built by fn.
func (b *Builder) If(cond Expr, fn func()) {
	s := &IfStmt{Cond: cond}
	*b.cur() = append(*b.cur(), s)
	b.push(&s.Then)
	fn()
	b.pop()
}

// IfElse appends a two-armed conditional.
func (b *Builder) IfElse(cond Expr, thenFn, elseFn func()) {
	s := &IfStmt{Cond: cond}
	*b.cur() = append(*b.cur(), s)
	b.push(&s.Then)
	thenFn()
	b.pop()
	b.push(&s.Else)
	elseFn()
	b.pop()
}

// For appends a counted loop `for v := init; v < limit; v += step` and
// builds its body with fn, which receives the loop variable.
func (b *Builder) For(name string, init, limit, step Expr, fn func(v Expr)) {
	b.forLoop(name, init, limit, step, 0, fn)
}

// ForUnroll is For with a "#pragma unroll factor" attached (UnrollFull for
// complete unrolling).
func (b *Builder) ForUnroll(name string, init, limit, step Expr, factor int, fn func(v Expr)) {
	b.forLoop(name, init, limit, step, factor, fn)
}

func (b *Builder) forLoop(name string, init, limit, step Expr, unroll int, fn func(v Expr)) {
	t := U32
	if init != nil {
		t = init.Type()
	}
	s := &ForStmt{Var: name, T: t, Init: init, Limit: limit, Step: step, Unroll: unroll}
	*b.cur() = append(*b.cur(), s)
	b.push(&s.Body)
	fn(&VarRef{Name: name, T: t})
	b.pop()
}

// Barrier appends a work-group barrier.
func (b *Builder) Barrier() {
	*b.cur() = append(*b.cur(), &BarrierStmt{})
}

// GlobalIDX returns blockIdx.x*blockDim.x + threadIdx.x.
func (b *Builder) GlobalIDX() Expr {
	return Add(Mul(Bi(CtaidX), Bi(NtidX)), Bi(TidX))
}

// GlobalIDY returns blockIdx.y*blockDim.y + threadIdx.y.
func (b *Builder) GlobalIDY() Expr {
	return Add(Mul(Bi(CtaidY), Bi(NtidY)), Bi(TidY))
}

// Build finalises the kernel, running the type checker.
func (b *Builder) Build() (*Kernel, error) {
	if len(b.blocks) != 1 {
		b.setErr("unbalanced blocks")
	}
	if b.err != nil {
		return nil, b.err
	}
	if err := Check(b.k); err != nil {
		return nil, err
	}
	return b.k, nil
}

// MustBuild is Build that panics on error; benchmark kernels are static so
// a failure is a programming bug.
func (b *Builder) MustBuild() *Kernel {
	k, err := b.Build()
	if err != nil {
		panic(err)
	}
	return k
}

// ---- Expression helper constructors ----

// U returns a U32 literal.
func U(v uint32) Expr { return &ConstInt{T: U32, V: int64(v)} }

// I returns an I32 literal.
func I(v int32) Expr { return &ConstInt{T: I32, V: int64(v)} }

// F returns an F32 literal.
func F(v float32) Expr { return &ConstFloat{V: v} }

// Bi reads a builtin work-item register.
func Bi(k BuiltinKind) Expr { return &Builtin{Kind: k} }

// Add returns l + r.
func Add(l, r Expr) Expr { return &Bin{Op: OpAdd, L: l, R: r} }

// Sub returns l - r.
func Sub(l, r Expr) Expr { return &Bin{Op: OpSub, L: l, R: r} }

// Mul returns l * r.
func Mul(l, r Expr) Expr { return &Bin{Op: OpMul, L: l, R: r} }

// Div returns l / r.
func Div(l, r Expr) Expr { return &Bin{Op: OpDiv, L: l, R: r} }

// Rem returns l % r.
func Rem(l, r Expr) Expr { return &Bin{Op: OpRem, L: l, R: r} }

// Min returns min(l, r).
func Min(l, r Expr) Expr { return &Bin{Op: OpMin, L: l, R: r} }

// Max returns max(l, r).
func Max(l, r Expr) Expr { return &Bin{Op: OpMax, L: l, R: r} }

// And returns l & r.
func And(l, r Expr) Expr { return &Bin{Op: OpAnd, L: l, R: r} }

// Or returns l | r.
func Or(l, r Expr) Expr { return &Bin{Op: OpOr, L: l, R: r} }

// Xor returns l ^ r.
func Xor(l, r Expr) Expr { return &Bin{Op: OpXor, L: l, R: r} }

// Shl returns l << r.
func Shl(l, r Expr) Expr { return &Bin{Op: OpShl, L: l, R: r} }

// Shr returns l >> r.
func Shr(l, r Expr) Expr { return &Bin{Op: OpShr, L: l, R: r} }

// Eq returns l == r.
func Eq(l, r Expr) Expr { return &Bin{Op: OpEq, L: l, R: r} }

// Ne returns l != r.
func Ne(l, r Expr) Expr { return &Bin{Op: OpNe, L: l, R: r} }

// Lt returns l < r.
func Lt(l, r Expr) Expr { return &Bin{Op: OpLt, L: l, R: r} }

// Le returns l <= r.
func Le(l, r Expr) Expr { return &Bin{Op: OpLe, L: l, R: r} }

// Gt returns l > r.
func Gt(l, r Expr) Expr { return &Bin{Op: OpGt, L: l, R: r} }

// Ge returns l >= r.
func Ge(l, r Expr) Expr { return &Bin{Op: OpGe, L: l, R: r} }

// LAnd returns l && r (non-short-circuit, as in predicated GPU code).
func LAnd(l, r Expr) Expr { return &Bin{Op: OpLAnd, L: l, R: r} }

// LOr returns l || r.
func LOr(l, r Expr) Expr { return &Bin{Op: OpLOr, L: l, R: r} }

// Neg returns -x.
func Neg(x Expr) Expr { return &Un{Op: OpNeg, X: x} }

// Not returns ^x (or !x for Bool).
func Not(x Expr) Expr { return &Un{Op: OpNot, X: x} }

// Abs returns |x|.
func Abs(x Expr) Expr { return &Un{Op: OpAbs, X: x} }

// Sqrt returns sqrt(x).
func Sqrt(x Expr) Expr { return &Un{Op: OpSqrt, X: x} }

// Rsqrt returns 1/sqrt(x).
func Rsqrt(x Expr) Expr { return &Un{Op: OpRsqrt, X: x} }

// Sin returns sin(x).
func Sin(x Expr) Expr { return &Un{Op: OpSin, X: x} }

// Cos returns cos(x).
func Cos(x Expr) Expr { return &Un{Op: OpCos, X: x} }

// Exp2 returns 2^x.
func Exp2(x Expr) Expr { return &Un{Op: OpExp2, X: x} }

// Log2 returns log2(x).
func Log2(x Expr) Expr { return &Un{Op: OpLog2, X: x} }

// Select returns cond ? a : b.
func Select(cond, a, b Expr) Expr { return &Sel{Cond: cond, A: a, B: b} }

// CastTo converts x to type t (numeric conversion; bit patterns for
// B-style reinterpretation are not needed by the benchmarks).
func CastTo(t Type, x Expr) Expr { return &Cast{To: t, X: x} }
