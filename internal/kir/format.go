package kir

import (
	"fmt"
	"strings"
)

// Format renders a kernel as CUDA-flavoured pseudo-source, used by the
// tooling to show what a benchmark kernel looks like and by tests as a
// structural golden.
func Format(k *Kernel) string {
	var b strings.Builder
	fmt.Fprintf(&b, "__global__ void %s(", k.Name)
	for i, p := range k.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		if p.Buffer {
			fmt.Fprintf(&b, "%s %s*%s", p.Space, p.T, p.Name)
		} else {
			fmt.Fprintf(&b, "%s %s", p.T, p.Name)
		}
	}
	b.WriteString(") {\n")
	for _, a := range k.SharedArrays {
		fmt.Fprintf(&b, "  __shared__ %s %s[%d];\n", a.T, a.Name, a.Count)
	}
	for _, a := range k.LocalArrays {
		fmt.Fprintf(&b, "  %s %s[%d]; // per-thread local\n", a.T, a.Name, a.Count)
	}
	formatStmts(&b, k.Body, 1)
	b.WriteString("}\n")
	return b.String()
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

func formatStmts(b *strings.Builder, stmts []Stmt, depth int) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *DeclStmt:
			indent(b, depth)
			fmt.Fprintf(b, "%s %s = %s;\n", s.T, s.Name, FormatExpr(s.Init))
		case *AssignStmt:
			indent(b, depth)
			fmt.Fprintf(b, "%s = %s;\n", s.Name, FormatExpr(s.Value))
		case *StoreStmt:
			indent(b, depth)
			fmt.Fprintf(b, "%s[%s] = %s;\n", s.Buf, FormatExpr(s.Index), FormatExpr(s.Value))
		case *AtomicStmt:
			indent(b, depth)
			op := map[AtomicOp]string{AtomicAdd: "atomicAdd", AtomicOr: "atomicOr",
				AtomicMax: "atomicMax", AtomicExch: "atomicExch"}[s.Op]
			if s.Result != "" {
				fmt.Fprintf(b, "%s = ", s.Result)
			}
			fmt.Fprintf(b, "%s(&%s[%s], %s);\n", op, s.Buf, FormatExpr(s.Index), FormatExpr(s.Value))
		case *IfStmt:
			indent(b, depth)
			fmt.Fprintf(b, "if (%s) {\n", FormatExpr(s.Cond))
			formatStmts(b, s.Then, depth+1)
			if len(s.Else) > 0 {
				indent(b, depth)
				b.WriteString("} else {\n")
				formatStmts(b, s.Else, depth+1)
			}
			indent(b, depth)
			b.WriteString("}\n")
		case *ForStmt:
			indent(b, depth)
			switch {
			case s.Unroll == UnrollFull:
				b.WriteString("#pragma unroll\n")
				indent(b, depth)
			case s.Unroll > 0:
				fmt.Fprintf(b, "#pragma unroll %d\n", s.Unroll)
				indent(b, depth)
			}
			fmt.Fprintf(b, "for (%s %s = %s; %s < %s; %s += %s) {\n",
				s.T, s.Var, FormatExpr(s.Init), s.Var, FormatExpr(s.Limit), s.Var, FormatExpr(s.Step))
			formatStmts(b, s.Body, depth+1)
			indent(b, depth)
			b.WriteString("}\n")
		case *BarrierStmt:
			indent(b, depth)
			b.WriteString("__syncthreads();\n")
		}
	}
}

// FormatExpr renders one expression.
func FormatExpr(e Expr) string {
	switch e := e.(type) {
	case nil:
		return "<nil>"
	case *ConstInt:
		if e.T == I32 {
			return fmt.Sprintf("%d", int32(e.V))
		}
		return fmt.Sprintf("%du", uint32(e.V))
	case *ConstFloat:
		return fmt.Sprintf("%gf", e.V)
	case *ParamRef:
		return e.Name
	case *VarRef:
		return e.Name
	case *Builtin:
		return e.Kind.String()
	case *Bin:
		if e.Op == OpMin || e.Op == OpMax {
			return fmt.Sprintf("%s(%s, %s)", e.Op, FormatExpr(e.L), FormatExpr(e.R))
		}
		return fmt.Sprintf("(%s %s %s)", FormatExpr(e.L), e.Op, FormatExpr(e.R))
	case *Un:
		switch e.Op {
		case OpNeg:
			return fmt.Sprintf("(-%s)", FormatExpr(e.X))
		case OpNot:
			if e.X.Type() == Bool {
				return fmt.Sprintf("(!%s)", FormatExpr(e.X))
			}
			return fmt.Sprintf("(~%s)", FormatExpr(e.X))
		default:
			return fmt.Sprintf("%s(%s)", e.Op, FormatExpr(e.X))
		}
	case *Sel:
		return fmt.Sprintf("(%s ? %s : %s)", FormatExpr(e.Cond), FormatExpr(e.A), FormatExpr(e.B))
	case *Cast:
		return fmt.Sprintf("(%s)%s", e.To, FormatExpr(e.X))
	case *Load:
		return fmt.Sprintf("%s[%s]", e.Buf, FormatExpr(e.Index))
	default:
		return fmt.Sprintf("<%T>", e)
	}
}
