package kir

import (
	"strings"
	"testing"
)

// buildVecAdd builds the canonical guarded vector-add kernel used across
// the test suite.
func buildVecAdd(t *testing.T) *Kernel {
	t.Helper()
	b := NewKernel("vadd")
	a := b.GlobalBuffer("a", F32)
	bb := b.GlobalBuffer("b", F32)
	c := b.GlobalBuffer("c", F32)
	n := b.ScalarParam("n", U32)
	gid := b.Declare("gid", b.GlobalIDX())
	b.If(Lt(gid, n), func() {
		b.Store(c, gid, Add(b.Load(a, gid), b.Load(bb, gid)))
	})
	k, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return k
}

func TestBuilderVecAdd(t *testing.T) {
	k := buildVecAdd(t)
	if len(k.Params) != 4 {
		t.Errorf("params = %d, want 4", len(k.Params))
	}
	if sp, err := k.SpaceOf("a"); err != nil || sp != Global {
		t.Errorf("SpaceOf(a) = %v, %v", sp, err)
	}
	if et, err := k.ElemType("c"); err != nil || et != F32 {
		t.Errorf("ElemType(c) = %v, %v", et, err)
	}
	if len(k.Body) != 2 {
		t.Errorf("body statements = %d, want 2 (decl + if)", len(k.Body))
	}
}

func TestBuilderStructuredNesting(t *testing.T) {
	b := NewKernel("nest")
	out := b.GlobalBuffer("out", U32)
	acc := b.Declare("acc", U(0))
	b.For("i", U(0), U(4), U(1), func(i Expr) {
		b.If(Eq(Rem(i, U(2)), U(0)), func() {
			b.Assign(acc, Add(acc, i))
		})
	})
	b.Store(out, b.GlobalIDX(), acc)
	k, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	f, ok := k.Body[1].(*ForStmt)
	if !ok {
		t.Fatalf("body[1] is %T, want *ForStmt", k.Body[1])
	}
	if len(f.Body) != 1 {
		t.Fatalf("for body = %d stmts, want 1", len(f.Body))
	}
	if _, ok := f.Body[0].(*IfStmt); !ok {
		t.Fatalf("for body[0] is %T, want *IfStmt", f.Body[0])
	}
}

func TestBuilderUnrollPragma(t *testing.T) {
	b := NewKernel("unroll")
	out := b.GlobalBuffer("out", F32)
	s := b.Declare("s", F(0))
	b.ForUnroll("i", U(0), U(9), U(1), 9, func(i Expr) {
		b.Assign(s, Add(s, F(1)))
	})
	b.ForUnroll("j", U(0), U(4), U(1), UnrollFull, func(j Expr) {
		b.Assign(s, Add(s, F(2)))
	})
	b.Store(out, U(0), s)
	k, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if k.Body[1].(*ForStmt).Unroll != 9 {
		t.Error("unroll factor 9 not recorded")
	}
	if k.Body[2].(*ForStmt).Unroll != UnrollFull {
		t.Error("full unroll not recorded")
	}
}

func TestCheckRejections(t *testing.T) {
	cases := []struct {
		name    string
		build   func() (*Kernel, error)
		errPart string
	}{
		{
			"undeclared variable",
			func() (*Kernel, error) {
				b := NewKernel("k")
				out := b.GlobalBuffer("out", U32)
				b.Store(out, U(0), &VarRef{Name: "ghost", T: U32})
				return b.Build()
			},
			"undeclared",
		},
		{
			"type mismatch in store",
			func() (*Kernel, error) {
				b := NewKernel("k")
				out := b.GlobalBuffer("out", F32)
				b.Store(out, U(0), U(1))
				return b.Build()
			},
			"store",
		},
		{
			"store to constant buffer",
			func() (*Kernel, error) {
				b := NewKernel("k")
				cb := b.ConstBuffer("filter", F32)
				b.Store(cb, U(0), F(1))
				return b.Build()
			},
			"read-only",
		},
		{
			"store to texture buffer",
			func() (*Kernel, error) {
				b := NewKernel("k")
				tb := b.TexBuffer("vec", F32)
				b.Store(tb, U(0), F(1))
				return b.Build()
			},
			"read-only",
		},
		{
			"float loop bound",
			func() (*Kernel, error) {
				b := NewKernel("k")
				out := b.GlobalBuffer("out", F32)
				b.For("i", U(0), &ConstFloat{V: 3}, U(1), func(i Expr) {
					b.Store(out, U(0), F(0))
				})
				return b.Build()
			},
			"integer",
		},
		{
			"non-bool if condition",
			func() (*Kernel, error) {
				b := NewKernel("k")
				out := b.GlobalBuffer("out", F32)
				b.If(U(1), func() { b.Store(out, U(0), F(0)) })
				return b.Build()
			},
			"bool",
		},
		{
			"mixed float/int arithmetic",
			func() (*Kernel, error) {
				b := NewKernel("k")
				out := b.GlobalBuffer("out", F32)
				b.Store(out, U(0), Add(F(1), U(2)))
				return b.Build()
			},
			"mixes",
		},
		{
			"unknown buffer",
			func() (*Kernel, error) {
				b := NewKernel("k")
				b.GlobalBuffer("out", F32)
				b.Store(Buf{name: "nope", t: F32}, U(0), F(1))
				return b.Build()
			},
			"unknown buffer",
		},
		{
			"duplicate param",
			func() (*Kernel, error) {
				b := NewKernel("k")
				b.GlobalBuffer("x", F32)
				b.GlobalBuffer("x", F32)
				return b.Build()
			},
			"duplicate",
		},
		{
			"redeclaration",
			func() (*Kernel, error) {
				b := NewKernel("k")
				b.GlobalBuffer("out", F32)
				b.Declare("v", U(0))
				b.Declare("v", U(1))
				return b.Build()
			},
			"redeclaration",
		},
		{
			"sqrt of int",
			func() (*Kernel, error) {
				b := NewKernel("k")
				out := b.GlobalBuffer("out", U32)
				b.Store(out, U(0), Sqrt(U(4)))
				return b.Build()
			},
			"f32",
		},
		{
			"atomic on float buffer",
			func() (*Kernel, error) {
				b := NewKernel("k")
				out := b.GlobalBuffer("out", F32)
				b.Atomic(out, U(0), AtomicAdd, U(1))
				return b.Build()
			},
			"integer",
		},
	}
	for _, tc := range cases {
		_, err := tc.build()
		if err == nil {
			t.Errorf("%s: Build accepted invalid kernel", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.errPart) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.errPart)
		}
	}
}

func TestSharedAndLocalArrays(t *testing.T) {
	b := NewKernel("tile")
	in := b.GlobalBuffer("in", F32)
	out := b.GlobalBuffer("out", F32)
	tile := b.SharedArray("tile", F32, 16*17)
	scratch := b.LocalArray("scratch", F32, 8)
	gid := b.Declare("gid", b.GlobalIDX())
	b.Store(tile, Bi(TidX), b.Load(in, gid))
	b.Barrier()
	b.Store(scratch, U(0), b.Load(tile, Bi(TidX)))
	b.Store(out, gid, b.Load(scratch, U(0)))
	k, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if sp, _ := k.SpaceOf("tile"); sp != Shared {
		t.Errorf("tile space = %v, want Shared", sp)
	}
	if sp, _ := k.SpaceOf("scratch"); sp != Local {
		t.Errorf("scratch space = %v, want Local", sp)
	}
	if k.SharedArray("tile").Count != 16*17 {
		t.Error("shared array count lost")
	}
}

func TestSelectAndCast(t *testing.T) {
	b := NewKernel("selcast")
	out := b.GlobalBuffer("out", F32)
	x := b.Declare("x", Select(Lt(Bi(TidX), U(16)), F(1), F(-1)))
	y := b.Declare("y", CastTo(F32, Bi(TidX)))
	b.Store(out, Bi(TidX), Mul(x, y))
	if _, err := b.Build(); err != nil {
		t.Fatalf("Build: %v", err)
	}
	if Select(Lt(U(0), U(1)), F(1), F(2)).Type() != F32 {
		t.Error("select type should follow arms")
	}
	if CastTo(I32, F(1.5)).Type() != I32 {
		t.Error("cast type should be target type")
	}
}

func TestTypeStringsAndOps(t *testing.T) {
	if U32.String() != "u32" || F32.String() != "f32" || Bool.String() != "bool" {
		t.Error("type strings wrong")
	}
	if !OpLt.IsCompare() || OpAdd.IsCompare() {
		t.Error("IsCompare wrong")
	}
	if !OpLAnd.IsLogical() || OpLt.IsLogical() {
		t.Error("IsLogical wrong")
	}
	if Global.String() != "global" || Texture.String() != "texture" {
		t.Error("space strings wrong")
	}
	if TidX.String() != "threadIdx.x" || NctaidY.String() != "gridDim.y" {
		t.Error("builtin strings wrong")
	}
}

func TestWarpWidthAssumption(t *testing.T) {
	b := NewKernel("radix")
	out := b.GlobalBuffer("out", U32)
	b.AssumeWarpWidth(32)
	b.Store(out, Bi(TidX), And(Bi(TidX), U(31)))
	k, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if k.WarpWidthAssumption != 32 {
		t.Error("warp width assumption lost")
	}
}

func TestBinTypePropagation(t *testing.T) {
	e := Add(Mul(Bi(CtaidX), Bi(NtidX)), Bi(TidX))
	if e.Type() != U32 {
		t.Errorf("global-id expression type = %v, want U32", e.Type())
	}
	if Lt(U(1), U(2)).Type() != Bool {
		t.Error("comparison should be Bool")
	}
	if Add(F(1), F(2)).Type() != F32 {
		t.Error("float add should be F32")
	}
}
