package kir

// A host reference executor: runs a kernel directly from the IR, one
// goroutine per work-item with a cyclic barrier, no compiler or simulator
// involved. It defines the semantics of the IR — the compiled+simulated
// pipeline is differentially tested against it — and doubles as a plain
// CPU fallback for running kernels.

import (
	"errors"
	"fmt"
	"sync"
)

// ErrWatchdog is returned when a work-item exceeds RunConfig.StepBudget:
// the reference executor's equivalent of the display watchdog killing a
// runaway kernel instead of hanging the host.
var ErrWatchdog = errors.New("kir: watchdog: step budget exceeded")

// RunConfig describes one launch for the reference executor.
type RunConfig struct {
	GridX, GridY   int
	BlockX, BlockY int
	// Buffers maps buffer-parameter names to their backing storage
	// (global, constant and texture buffers all live host-side here).
	Buffers map[string][]uint32
	// Scalars maps value-parameter names to their 32-bit values.
	Scalars map[string]uint32
	// WarpSize is the value the WarpSize builtin reports (default 32).
	WarpSize int
	// StepBudget bounds the statements one work-item may execute before the
	// run is killed with an error wrapping ErrWatchdog (0 = unbounded). Set
	// it when running untrusted kernels — a non-terminating loop otherwise
	// hangs the executor.
	StepBudget uint64
}

// Run executes the kernel over the whole grid. Blocks run sequentially;
// the work-items of a block run concurrently and synchronise at barriers.
func Run(k *Kernel, cfg RunConfig) error {
	if cfg.GridX <= 0 || cfg.GridY <= 0 || cfg.BlockX <= 0 || cfg.BlockY <= 0 {
		return fmt.Errorf("kir: Run: non-positive launch dimensions")
	}
	if cfg.WarpSize == 0 {
		cfg.WarpSize = 32
	}
	for _, p := range k.Params {
		if p.Buffer {
			if _, ok := cfg.Buffers[p.Name]; !ok {
				return fmt.Errorf("kir: Run: missing buffer %q", p.Name)
			}
		} else if _, ok := cfg.Scalars[p.Name]; !ok {
			return fmt.Errorf("kir: Run: missing scalar %q", p.Name)
		}
	}

	threads := cfg.BlockX * cfg.BlockY
	for by := 0; by < cfg.GridY; by++ {
		for bx := 0; bx < cfg.GridX; bx++ {
			shared := map[string][]uint32{}
			for _, a := range k.SharedArrays {
				shared[a.Name] = make([]uint32, a.Count)
			}
			bar := newHostBarrier(threads)
			errs := make([]error, threads)
			var wg sync.WaitGroup
			// mu serialises shared/global writes and atomics; the barrier's
			// turnstile additionally fixes their order, so a block always
			// executes as the same sequential interleaving.
			var mu sync.Mutex
			for t := 0; t < threads; t++ {
				wg.Add(1)
				go func(t int) {
					defer wg.Done()
					ev := &runEval{
						k: k, cfg: cfg, shared: shared, bar: bar, mu: &mu, tIdx: t,
						tidX: uint32(t % cfg.BlockX), tidY: uint32(t / cfg.BlockX),
						ctaX: uint32(bx), ctaY: uint32(by),
						vars: map[string]uint32{},
						local: func() map[string][]uint32 {
							m := map[string][]uint32{}
							for _, a := range k.LocalArrays {
								m[a.Name] = make([]uint32, a.Count)
							}
							return m
						}(),
					}
					ev.budget = cfg.StepBudget
					defer func() {
						if r := recover(); r != nil {
							if err, ok := r.(error); ok && errors.Is(err, ErrWatchdog) {
								errs[t] = fmt.Errorf("kir: Run: block (%d,%d) thread %d (tid %d,%d) killed after %d steps: %w",
									bx, by, t, ev.tidX, ev.tidY, ev.steps, ErrWatchdog)
							} else {
								errs[t] = fmt.Errorf("kir: Run: block (%d,%d) thread %d (tid %d,%d): %v",
									bx, by, t, ev.tidX, ev.tidY, r)
							}
							bar.abort(t, fmt.Sprint(r))
						} else {
							bar.leave(t)
						}
					}()
					bar.start(t)
					ev.stmts(k.Body)
				}(t)
			}
			wg.Wait()
			// Prefer the error of the thread that broke the barrier: the
			// victims' "barrier abandoned" panics only restate it.
			if at := bar.abortedBy(); at >= 0 && errs[at] != nil {
				return errs[at]
			}
			for _, err := range errs {
				if err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// hostBarrier is a reusable (cyclic) barrier for n goroutines that
// doubles as a deterministic turnstile: exactly one thread holds the
// execution floor at any moment, and the floor passes in thread order —
// a thread runs until it arrives at a barrier, returns from the kernel,
// or dies, then the lowest-numbered runnable thread goes next. A block
// therefore executes as one fixed sequential interleaving, which makes
// the host oracle deterministic even for kernels with data races (the
// runEval mutex serialises individual accesses; the turnstile fixes
// their order) — racing writes get a defined, reproducible result
// instead of a scheduler-dependent one, so differential comparisons and
// the shrinker's predicate re-checks never flap. Barrier divergence —
// some threads waiting at a barrier the others already returned past —
// is detected and reported instead of deadlocking.
type hostBarrier struct {
	mu       sync.Mutex
	conds    []sync.Cond // one per thread: handoffs wake exactly the floor-taker
	n        int
	turn     int // thread currently holding the floor
	gen      int
	arrived  []bool // arrived at the barrier this generation
	waiting  int
	gone     []bool // returned from the kernel body (or died)
	departed int
	broken   bool
	breaker  int    // thread that broke the barrier, -1 if none
	cause    string // why the barrier broke
}

func newHostBarrier(n int) *hostBarrier {
	b := &hostBarrier{n: n, breaker: -1,
		arrived: make([]bool, n), gone: make([]bool, n),
		conds: make([]sync.Cond, n)}
	for i := range b.conds {
		b.conds[i].L = &b.mu
	}
	return b
}

// start blocks thread t until it is handed the floor for the first time
// (thread 0 holds it initially).
func (b *hostBarrier) start(t int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for b.turn != t && !b.broken {
		b.conds[t].Wait()
	}
	if b.broken {
		panic(b.cause)
	}
}

// nextRunnableLocked returns the smallest thread index >= from that has
// neither departed nor arrived at the current generation, or -1. Within
// a generation the floor only ever moves upward, so scanning from the
// caller's successor is exhaustive.
func (b *hostBarrier) nextRunnableLocked(from int) int {
	for i := from; i < b.n; i++ {
		if !b.gone[i] && !b.arrived[i] {
			return i
		}
	}
	return -1
}

// wait is the barrier arrival of thread t, which must hold the floor.
// The floor passes to the next runnable thread; once every live thread
// has arrived the generation flips and the floor returns to the lowest
// live thread.
func (b *hostBarrier) wait(t int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.broken {
		panic(b.cause)
	}
	gen := b.gen
	b.arrived[t] = true
	b.waiting++
	if b.waiting+b.departed == b.n {
		if b.departed > 0 {
			// Everyone still alive is at the barrier but departed threads
			// will never arrive: classic barrier divergence.
			b.breakLocked(-1, fmt.Sprintf(
				"barrier divergence: %d thread(s) wait at a barrier that %d thread(s) already exited the kernel without reaching",
				b.waiting, b.departed))
			panic(b.cause)
		}
		b.waiting = 0
		for i := range b.arrived {
			b.arrived[i] = false
		}
		b.gen++
		b.turn = b.nextRunnableLocked(0)
		if b.turn == t {
			return // lowest live thread: keep the floor into the new generation
		}
		b.conds[b.turn].Signal()
	} else {
		b.turn = b.nextRunnableLocked(t + 1)
		b.conds[b.turn].Signal()
	}
	for !(gen != b.gen && b.turn == t) && !b.broken {
		b.conds[t].Wait()
	}
	if b.broken {
		panic(b.cause)
	}
}

// leave records that a thread returned from the kernel body and passes
// the floor on. If the remaining threads are all parked at a barrier,
// they can never be released, so the barrier breaks naming the diverging
// thread.
func (b *hostBarrier) leave(t int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.gone[t] = true
	b.departed++
	if b.broken {
		return
	}
	if b.waiting > 0 && b.waiting+b.departed == b.n {
		b.breakLocked(t, fmt.Sprintf(
			"barrier divergence: thread %d returned from the kernel while %d thread(s) wait at a barrier",
			t, b.waiting))
		return
	}
	if next := b.nextRunnableLocked(t + 1); next >= 0 {
		b.turn = next
		b.conds[next].Signal()
	}
}

// abort releases everyone after a thread dies so Run can report the error
// instead of deadlocking. t is the failing thread, cause its panic value.
func (b *hostBarrier) abort(t int, cause string) {
	b.mu.Lock()
	b.breakLocked(t, fmt.Sprintf("barrier abandoned by thread %d: %s", t, cause))
	b.mu.Unlock()
}

// breakLocked marks the barrier broken (first breaker wins) and wakes all
// waiters. Callers must hold b.mu.
func (b *hostBarrier) breakLocked(t int, cause string) {
	if b.broken {
		return
	}
	b.broken = true
	b.breaker = t
	b.cause = cause
	for i := range b.conds {
		b.conds[i].Signal()
	}
}

// abortedBy returns the thread index that broke the barrier, or -1.
func (b *hostBarrier) abortedBy() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.breaker
}

type runEval struct {
	k      *Kernel
	cfg    RunConfig
	shared map[string][]uint32
	local  map[string][]uint32
	bar    *hostBarrier
	mu     *sync.Mutex
	tIdx   int // block-local thread index (the turnstile identity)

	tidX, tidY uint32
	ctaX, ctaY uint32
	vars       map[string]uint32

	steps  uint64
	budget uint64 // 0 = unbounded
}

// step charges one executed statement (or loop iteration) against the
// budget, panicking with ErrWatchdog once it is exhausted; the per-thread
// recover in Run converts the panic into a typed error.
func (e *runEval) step() {
	e.steps++
	if e.budget > 0 && e.steps > e.budget {
		panic(ErrWatchdog)
	}
}

func (e *runEval) buffer(name string) []uint32 {
	if buf, ok := e.shared[name]; ok {
		return buf
	}
	if buf, ok := e.local[name]; ok {
		return buf
	}
	return e.cfg.Buffers[name]
}

func (e *runEval) isSharedOrGlobal(name string) bool {
	if _, ok := e.local[name]; ok {
		return false
	}
	return true
}

func (e *runEval) stmts(stmts []Stmt) {
	for _, s := range stmts {
		e.step()
		switch s := s.(type) {
		case *DeclStmt:
			e.vars[s.Name] = e.expr(s.Init)
		case *AssignStmt:
			e.vars[s.Name] = e.expr(s.Value)
		case *StoreStmt:
			buf := e.buffer(s.Buf)
			idx := e.expr(s.Index)
			val := e.expr(s.Value)
			if int(idx) >= len(buf) {
				panic(fmt.Sprintf("store to %s[%d] out of range (%d)", s.Buf, idx, len(buf)))
			}
			if e.isSharedOrGlobal(s.Buf) {
				e.mu.Lock()
				buf[idx] = val
				e.mu.Unlock()
			} else {
				buf[idx] = val
			}
		case *AtomicStmt:
			buf := e.buffer(s.Buf)
			idx := e.expr(s.Index)
			val := e.expr(s.Value)
			if int(idx) >= len(buf) {
				panic(fmt.Sprintf("atomic on %s[%d] out of range (%d)", s.Buf, idx, len(buf)))
			}
			e.mu.Lock()
			old := buf[idx]
			switch s.Op {
			case AtomicAdd:
				buf[idx] = old + val
			case AtomicOr:
				buf[idx] = old | val
			case AtomicMax:
				if val > old {
					buf[idx] = val
				}
			case AtomicExch:
				buf[idx] = val
			}
			e.mu.Unlock()
			if s.Result != "" {
				e.vars[s.Result] = old
			}
		case *IfStmt:
			if e.expr(s.Cond) != 0 {
				e.stmts(s.Then)
			} else {
				e.stmts(s.Else)
			}
		case *ForStmt:
			e.vars[s.Var] = e.expr(s.Init)
			for e.less(s.T, e.vars[s.Var], e.expr(s.Limit)) {
				e.step() // charge empty-body iterations too (step 0 never terminates)
				e.stmts(s.Body)
				e.vars[s.Var] += e.expr(s.Step)
			}
			delete(e.vars, s.Var)
		case *BarrierStmt:
			e.bar.wait(e.tIdx)
		default:
			panic(fmt.Sprintf("unknown statement %T", s))
		}
	}
}

func (e *runEval) less(t Type, a, b uint32) bool {
	if t == I32 {
		return int32(a) < int32(b)
	}
	return a < b
}

// expr delegates to the shared EvalExpr interpreter: runEval is the
// EvalEnv that binds variables, parameters, work-item identity and memory
// for one thread of one launch.
func (e *runEval) expr(x Expr) uint32 { return EvalExpr(x, e) }

// Var resolves a declared variable (EvalEnv).
func (e *runEval) Var(name string) (uint32, bool) {
	v, ok := e.vars[name]
	return v, ok
}

// Param resolves a scalar kernel parameter (EvalEnv).
func (e *runEval) Param(name string) uint32 { return e.cfg.Scalars[name] }

// BuiltinVal resolves a work-item identification register (EvalEnv).
func (e *runEval) BuiltinVal(k BuiltinKind) uint32 {
	switch k {
	case TidX:
		return e.tidX
	case TidY:
		return e.tidY
	case NtidX:
		return uint32(e.cfg.BlockX)
	case NtidY:
		return uint32(e.cfg.BlockY)
	case CtaidX:
		return e.ctaX
	case CtaidY:
		return e.ctaY
	case NctaidX:
		return uint32(e.cfg.GridX)
	case NctaidY:
		return uint32(e.cfg.GridY)
	case WarpSize:
		return uint32(e.cfg.WarpSize)
	}
	return 0
}

// LoadWord resolves Buf[idx], taking the block lock for shared and global
// memory (EvalEnv).
func (e *runEval) LoadWord(bufName string, idx uint32) uint32 {
	buf := e.buffer(bufName)
	if int(idx) >= len(buf) {
		panic(fmt.Sprintf("load from %s[%d] out of range (%d)", bufName, idx, len(buf)))
	}
	if e.isSharedOrGlobal(bufName) {
		e.mu.Lock()
		v := buf[idx]
		e.mu.Unlock()
		return v
	}
	return buf[idx]
}
