package kir

// Typed gauntlet errors. Every rejection the static gauntlet (Check,
// CheckUniformBarriers, CheckBoundedLoops) or the JSON decoder can produce
// matches exactly one of these sentinels under errors.Is, so API layers can
// map a failure to a stable machine-readable code without parsing message
// text. The human-readable message is unchanged — the sentinel rides along
// the chain.

import (
	"errors"
	"fmt"
)

var (
	// ErrBadOperand: an operand or operator was applied at the wrong type
	// (the checker's type errors).
	ErrBadOperand = errors.New("kir: bad operand")
	// ErrUndeclared: a variable, parameter or buffer name is not in scope.
	ErrUndeclared = errors.New("kir: undeclared name")
	// ErrRedeclared: a declaration shadows an existing name.
	ErrRedeclared = errors.New("kir: redeclaration")
	// ErrReadOnlyStore: a store or atomic targets a const/texture buffer.
	ErrReadOnlyStore = errors.New("kir: store to read-only space")
	// ErrBadNode: the AST contains a node kind the checker does not know —
	// a malformed tree, not a type error.
	ErrBadNode = errors.New("kir: malformed AST node")
	// ErrNonUniformBarrier: a barrier sits under thread-divergent control
	// flow (CheckUniformBarriers).
	ErrNonUniformBarrier = errors.New("kir: barrier under non-uniform control flow")
	// ErrUnboundedLoop: a loop provably never terminates
	// (CheckBoundedLoops).
	ErrUnboundedLoop = errors.New("kir: provably unbounded loop")
)

// CheckError is a gauntlet rejection: it renders the detailed message and
// matches its sentinel (and only its sentinel) under errors.Is.
type CheckError struct {
	Kernel   string // kernel name, best effort
	sentinel error
	msg      string
	cause    error // optional underlying error (e.g. from SpaceOf)
}

func (e *CheckError) Error() string { return e.msg }

// Is matches the sentinel the error was classified under.
func (e *CheckError) Is(target error) bool { return target == e.sentinel }

// Unwrap exposes the underlying cause, when there is one.
func (e *CheckError) Unwrap() error { return e.cause }

// checkErrf builds a CheckError with the standard "kir: kernel <name>:"
// message prefix.
func checkErrf(k *Kernel, sentinel error, format string, args ...any) error {
	return &CheckError{
		Kernel:   k.Name,
		sentinel: sentinel,
		msg:      fmt.Sprintf("kir: kernel %s: "+format, append([]any{k.Name}, args...)...),
	}
}

// checkWrap classifies an existing error under a sentinel, keeping its
// message and chain.
func checkWrap(k *Kernel, sentinel error, err error) error {
	return &CheckError{Kernel: k.Name, sentinel: sentinel, msg: err.Error(), cause: err}
}

// ErrCode returns the stable machine-readable code for a gauntlet or
// decode failure, or "" when the error carries none. These strings are
// API-visible (the "code" field of kernel-submission rejections): never
// change one, only add.
func ErrCode(err error) string {
	switch {
	case errors.Is(err, ErrBadEncoding):
		return "bad-encoding"
	case errors.Is(err, ErrBadOperand):
		return "bad-operand"
	case errors.Is(err, ErrUndeclared):
		return "undeclared"
	case errors.Is(err, ErrRedeclared):
		return "redeclared"
	case errors.Is(err, ErrReadOnlyStore):
		return "read-only-store"
	case errors.Is(err, ErrBadNode):
		return "bad-node"
	case errors.Is(err, ErrNonUniformBarrier):
		return "nonuniform-barrier"
	case errors.Is(err, ErrUnboundedLoop):
		return "unbounded-loop"
	case errors.Is(err, ErrWatchdog):
		return "watchdog"
	default:
		return ""
	}
}
