// Package kir defines the kernel intermediate representation: a small typed
// kernel language in which every benchmark of the paper is written exactly
// once. The two front-ends in internal/compiler lower the same KIR to the
// ptx ISA with different code-generation personalities, which is how the
// repository reproduces the paper's compiler-difference analysis (Table V)
// without maintaining two hand-written copies of every kernel.
//
// The language is deliberately CUDA/OpenCL-shaped: scalar 32-bit types,
// work-item/work-group builtins, counted for-loops with optional unroll
// pragmas, structured if/else, barriers, and loads/stores against buffers
// that live in an explicit memory space (global, constant, texture, shared,
// or per-thread local).
package kir

import "fmt"

// Type is a KIR scalar type. All types are 32 bits wide; Bool is the
// predicate type produced by comparisons and consumed by If/Select.
type Type int

const (
	U32 Type = iota
	I32
	F32
	Bool
)

// String returns the source-level name of the type.
func (t Type) String() string {
	switch t {
	case U32:
		return "u32"
	case I32:
		return "i32"
	case F32:
		return "f32"
	case Bool:
		return "bool"
	default:
		return fmt.Sprintf("type(%d)", int(t))
	}
}

// MemSpace is where a buffer lives.
type MemSpace int

const (
	// Global is ordinary device memory.
	Global MemSpace = iota
	// Const is the read-only constant bank (cached, broadcast-friendly).
	Const
	// Texture is read-only global memory fetched through the texture cache.
	Texture
	// Shared is on-chip per-work-group memory (OpenCL "local").
	Shared
	// Local is per-work-item spill memory (PTX ".local").
	Local
)

// String returns the CUDA-flavoured space name.
func (s MemSpace) String() string {
	switch s {
	case Global:
		return "global"
	case Const:
		return "constant"
	case Texture:
		return "texture"
	case Shared:
		return "shared"
	case Local:
		return "local"
	default:
		return fmt.Sprintf("space(%d)", int(s))
	}
}

// BinOp enumerates binary operators.
type BinOp int

const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpRem
	OpMin
	OpMax
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	// Comparisons produce Bool.
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	// Logical combinators over Bool.
	OpLAnd
	OpLOr
)

// IsCompare reports whether the operator yields a Bool.
func (o BinOp) IsCompare() bool { return o >= OpEq && o <= OpGe }

// IsLogical reports whether the operator combines Bools.
func (o BinOp) IsLogical() bool { return o == OpLAnd || o == OpLOr }

// String returns the operator token.
func (o BinOp) String() string {
	switch o {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpRem:
		return "%"
	case OpMin:
		return "min"
	case OpMax:
		return "max"
	case OpAnd:
		return "&"
	case OpOr:
		return "|"
	case OpXor:
		return "^"
	case OpShl:
		return "<<"
	case OpShr:
		return ">>"
	case OpEq:
		return "=="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpLAnd:
		return "&&"
	case OpLOr:
		return "||"
	default:
		return fmt.Sprintf("binop(%d)", int(o))
	}
}

// UnOp enumerates unary operators and intrinsic functions.
type UnOp int

const (
	OpNeg UnOp = iota
	OpNot      // bitwise complement (logical not on Bool)
	OpAbs
	OpSqrt
	OpRsqrt
	OpSin
	OpCos
	OpExp2
	OpLog2
)

// String returns the operator name.
func (o UnOp) String() string {
	switch o {
	case OpNeg:
		return "neg"
	case OpNot:
		return "not"
	case OpAbs:
		return "abs"
	case OpSqrt:
		return "sqrt"
	case OpRsqrt:
		return "rsqrt"
	case OpSin:
		return "sin"
	case OpCos:
		return "cos"
	case OpExp2:
		return "exp2"
	case OpLog2:
		return "log2"
	default:
		return fmt.Sprintf("unop(%d)", int(o))
	}
}

// BuiltinKind enumerates the work-item identification builtins, in CUDA
// terms (the OpenCL mapping is Table I of the paper: threadIdx ↔
// get_local_id, blockDim ↔ get_local_size, and so on).
type BuiltinKind int

const (
	TidX BuiltinKind = iota
	TidY
	NtidX // blockDim.x
	NtidY
	CtaidX // blockIdx.x
	CtaidY
	NctaidX // gridDim.x
	NctaidY
	WarpSize // the device warp/wavefront width as a compile-time constant
)

// String returns the CUDA-style name.
func (b BuiltinKind) String() string {
	switch b {
	case TidX:
		return "threadIdx.x"
	case TidY:
		return "threadIdx.y"
	case NtidX:
		return "blockDim.x"
	case NtidY:
		return "blockDim.y"
	case CtaidX:
		return "blockIdx.x"
	case CtaidY:
		return "blockIdx.y"
	case NctaidX:
		return "gridDim.x"
	case NctaidY:
		return "gridDim.y"
	case WarpSize:
		return "warpSize"
	default:
		return fmt.Sprintf("builtin(%d)", int(b))
	}
}
