package kir

// CheckBoundedLoops is the static loop-termination guard, the third rung of
// the gauntlet untrusted kernels pass through (after Check and
// CheckUniformBarriers). Promoted here from the fuzzer so the submission
// API can reject provably non-terminating kernels without importing
// internal/fuzz; what the guard cannot prove is left to the step-budget
// watchdog at execution time.

// CheckBoundedLoops rejects kernels containing a loop that provably never
// terminates: a counted loop whose step is the constant 0. (Loops with a
// nonzero constant step always terminate under the pipelines' wraparound
// semantics; data-dependent steps are not provably bad and are left to the
// watchdog.) The returned error wraps ErrUnboundedLoop.
func CheckBoundedLoops(k *Kernel) error {
	return boundsWalk(k, k.Body)
}

func boundsWalk(k *Kernel, stmts []Stmt) error {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ForStmt:
			if c, ok := s.Step.(*ConstInt); ok && c.V == 0 {
				return checkErrf(k, ErrUnboundedLoop,
					"loop %q has constant step 0 and never terminates", s.Var)
			}
			if err := boundsWalk(k, s.Body); err != nil {
				return err
			}
		case *IfStmt:
			if err := boundsWalk(k, s.Then); err != nil {
				return err
			}
			if err := boundsWalk(k, s.Else); err != nil {
				return err
			}
		}
	}
	return nil
}
