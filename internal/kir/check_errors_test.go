package kir

import (
	"errors"
	"testing"
)

// outKernel returns a minimal kernel skeleton with one global out buffer,
// ready to have a hostile body attached.
func outKernel(body ...Stmt) *Kernel {
	return &Kernel{
		Name:   "hostile",
		Params: []Param{{Name: "out", T: U32, Buffer: true, Space: Global}},
		Body:   body,
	}
}

// TestCheckTypedErrors: every class of static rejection matches its
// sentinel under errors.Is and maps to a stable machine code — the
// contract the kernel-submission API builds its error responses on.
func TestCheckTypedErrors(t *testing.T) {
	cases := []struct {
		name     string
		kernel   *Kernel
		check    func(*Kernel) error
		sentinel error
		code     string
	}{
		{
			name:     "store of float into u32 buffer",
			kernel:   outKernel(&StoreStmt{Buf: "out", Index: U(0), Value: F(1.5)}),
			check:    Check,
			sentinel: ErrBadOperand,
			code:     "bad-operand",
		},
		{
			name:     "use of undeclared variable",
			kernel:   outKernel(&StoreStmt{Buf: "out", Index: &VarRef{Name: "ghost", T: U32}, Value: U(1)}),
			check:    Check,
			sentinel: ErrUndeclared,
			code:     "undeclared",
		},
		{
			name:     "store to unknown buffer",
			kernel:   outKernel(&StoreStmt{Buf: "nosuch", Index: U(0), Value: U(1)}),
			check:    Check,
			sentinel: ErrUndeclared,
			code:     "undeclared",
		},
		{
			name: "redeclaration",
			kernel: outKernel(
				&DeclStmt{Name: "x", T: U32, Init: U(1)},
				&DeclStmt{Name: "x", T: U32, Init: U(2)},
			),
			check:    Check,
			sentinel: ErrRedeclared,
			code:     "redeclared",
		},
		{
			name: "store to read-only const buffer",
			kernel: &Kernel{
				Name: "hostile",
				Params: []Param{
					{Name: "coef", T: U32, Buffer: true, Space: Const},
					{Name: "out", T: U32, Buffer: true, Space: Global},
				},
				Body: []Stmt{&StoreStmt{Buf: "coef", Index: U(0), Value: U(1)}},
			},
			check:    Check,
			sentinel: ErrReadOnlyStore,
			code:     "read-only-store",
		},
		{
			name:     "nil expression",
			kernel:   outKernel(&StoreStmt{Buf: "out", Index: nil, Value: U(1)}),
			check:    Check,
			sentinel: ErrBadNode,
			code:     "bad-node",
		},
		{
			name: "barrier under divergent if",
			kernel: outKernel(&IfStmt{
				Cond: &Bin{Op: OpLt, L: &Builtin{Kind: TidX}, R: U(3)},
				Then: []Stmt{&BarrierStmt{}},
			}),
			check:    CheckUniformBarriers,
			sentinel: ErrNonUniformBarrier,
			code:     "nonuniform-barrier",
		},
		{
			name: "constant zero-step loop",
			kernel: outKernel(&ForStmt{
				Var: "i", T: U32, Init: U(0), Limit: U(10), Step: U(0),
			}),
			check:    CheckBoundedLoops,
			sentinel: ErrUnboundedLoop,
			code:     "unbounded-loop",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.check(tc.kernel)
			if err == nil {
				t.Fatal("hostile kernel accepted")
			}
			if !errors.Is(err, tc.sentinel) {
				t.Errorf("errors.Is(%v, %v) = false", err, tc.sentinel)
			}
			if got := ErrCode(err); got != tc.code {
				t.Errorf("ErrCode = %q, want %q", got, tc.code)
			}
			// A rejection must match exactly its own sentinel: no error may
			// be ambiguous between two codes.
			all := []error{ErrBadOperand, ErrUndeclared, ErrRedeclared,
				ErrReadOnlyStore, ErrBadNode, ErrNonUniformBarrier, ErrUnboundedLoop}
			matches := 0
			for _, s := range all {
				if errors.Is(err, s) {
					matches++
				}
			}
			if matches != 1 {
				t.Errorf("error matches %d sentinels, want exactly 1", matches)
			}
		})
	}
}

// TestDecodeTypedErrors: malformed encodings reject with ErrBadEncoding.
func TestDecodeTypedErrors(t *testing.T) {
	cases := []struct {
		name string
		kj   KernelJSON
	}{
		{"unknown param type", KernelJSON{Name: "k",
			Params: []ParamJSON{{Name: "p", Type: "u64"}}}},
		{"unknown space", KernelJSON{Name: "k",
			Params: []ParamJSON{{Name: "p", Type: "u32", Buffer: true, Space: "flash"}}}},
		{"unknown stmt kind", KernelJSON{Name: "k",
			Body: []StmtJSON{{Kind: "goto"}}}},
		{"unknown expr kind", KernelJSON{Name: "k",
			Body: []StmtJSON{{Kind: "decl", Name: "x", Value: &ExprJSON{Kind: "lambda"}}}}},
		{"unknown op", KernelJSON{Name: "k",
			Body: []StmtJSON{{Kind: "decl", Name: "x", Value: &ExprJSON{
				Kind: "bin", Op: "**",
				L:    &ExprJSON{Kind: "int", Type: "u32"},
				R:    &ExprJSON{Kind: "int", Type: "u32"}}}}}},
		{"missing subtree", KernelJSON{Name: "k",
			Body: []StmtJSON{{Kind: "store", Buf: "out"}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			kj := tc.kj
			_, err := DecodeKernelJSON(&kj)
			if err == nil {
				t.Fatal("malformed encoding accepted")
			}
			if !errors.Is(err, ErrBadEncoding) {
				t.Errorf("errors.Is(%v, ErrBadEncoding) = false", err)
			}
			if got := ErrCode(err); got != "bad-encoding" {
				t.Errorf("ErrCode = %q, want bad-encoding", got)
			}
		})
	}
}

// TestJSONRoundTrip: encode→decode is the identity on a kernel exercising
// every statement and expression kind.
func TestJSONRoundTrip(t *testing.T) {
	b := NewKernel("rt")
	in := b.GlobalBuffer("in", U32)
	out := b.GlobalBuffer("out", U32)
	s := b.ScalarParam("s", U32)
	sh := b.SharedArray("sh", U32, 64)
	gid := b.Declare("gid", b.GlobalIDX())
	b.Store(sh, gid, b.Load(in, gid))
	b.Barrier()
	v := b.Declare("v", &Sel{Cond: &Bin{Op: OpLt, L: gid, R: s}, A: U(1), B: U(2)})
	b.For("i", U(0), U(4), U(1), func(i Expr) {
		b.Assign(v, &Bin{Op: OpAdd, L: v, R: i})
	})
	b.Atomic(out, U(0), AtomicAdd, v)
	b.Store(out, gid, &Un{Op: OpNot, X: b.Load(sh, gid)})
	k, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	kj := EncodeKernelJSON(k)
	k2, err := DecodeKernelJSON(&kj)
	if err != nil {
		t.Fatal(err)
	}
	if Format(k) != Format(k2) {
		t.Errorf("round trip changed the kernel:\n%s\nvs\n%s", Format(k), Format(k2))
	}
}
