package kir

import (
	"math"
	"testing"
)

func f32s(fs ...float32) []uint32 {
	out := make([]uint32, len(fs))
	for i, f := range fs {
		out[i] = math.Float32bits(f)
	}
	return out
}

// TestRunVecAdd: basic global loads/stores and guards.
func TestRunVecAdd(t *testing.T) {
	b := NewKernel("vadd")
	a := b.GlobalBuffer("a", F32)
	bb := b.GlobalBuffer("b", F32)
	c := b.GlobalBuffer("c", F32)
	n := b.ScalarParam("n", U32)
	gid := b.Declare("gid", b.GlobalIDX())
	b.If(Lt(gid, n), func() {
		b.Store(c, gid, Add(b.Load(a, gid), b.Load(bb, gid)))
	})
	k := b.MustBuild()

	const nn = 100
	av := make([]uint32, 128)
	bv := make([]uint32, 128)
	cv := make([]uint32, 128)
	for i := range av {
		av[i] = math.Float32bits(float32(i))
		bv[i] = math.Float32bits(2 * float32(i))
	}
	err := Run(k, RunConfig{
		GridX: 2, GridY: 1, BlockX: 64, BlockY: 1,
		Buffers: map[string][]uint32{"a": av, "b": bv, "c": cv},
		Scalars: map[string]uint32{"n": nn},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 128; i++ {
		want := float32(0)
		if i < nn {
			want = 3 * float32(i)
		}
		if math.Float32frombits(cv[i]) != want {
			t.Fatalf("c[%d] = %g, want %g", i, math.Float32frombits(cv[i]), want)
		}
	}
}

// TestRunBarrierReduction: cross-thread communication through shared memory
// with barriers works under the goroutine executor.
func TestRunBarrierReduction(t *testing.T) {
	const blockSize = 64
	b := NewKernel("reduce")
	in := b.GlobalBuffer("in", U32)
	out := b.GlobalBuffer("out", U32)
	tile := b.SharedArray("tile", U32, blockSize)
	tid := Bi(TidX)
	b.Store(tile, tid, b.Load(in, b.GlobalIDX()))
	b.Barrier()
	b.For("p", U(0), U(6), U(1), func(p Expr) {
		stride := Shr(U(blockSize/2), p)
		b.If(Lt(tid, stride), func() {
			b.Store(tile, tid, Add(b.Load(tile, tid), b.Load(tile, Add(tid, stride))))
		})
		b.Barrier()
	})
	b.If(Eq(tid, U(0)), func() {
		b.Store(out, Bi(CtaidX), b.Load(tile, U(0)))
	})
	k := b.MustBuild()

	const blocks = 4
	in32 := make([]uint32, blocks*blockSize)
	want := make([]uint32, blocks)
	for i := range in32 {
		in32[i] = uint32(i % 17)
		want[i/blockSize] += in32[i]
	}
	out32 := make([]uint32, blocks)
	err := Run(k, RunConfig{
		GridX: blocks, GridY: 1, BlockX: blockSize, BlockY: 1,
		Buffers: map[string][]uint32{"in": in32, "out": out32},
		Scalars: map[string]uint32{},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if out32[i] != want[i] {
			t.Fatalf("block %d sum = %d, want %d", i, out32[i], want[i])
		}
	}
}

// TestRunAtomics: tickets are a permutation under concurrent execution.
func TestRunAtomics(t *testing.T) {
	b := NewKernel("tickets")
	ctr := b.GlobalBuffer("ctr", U32)
	out := b.GlobalBuffer("out", U32)
	old := b.Declare("old", U(0))
	b.AtomicResult(ctr, U(0), AtomicAdd, U(1), old)
	b.Store(out, b.GlobalIDX(), old)
	k := b.MustBuild()

	ctr32 := make([]uint32, 1)
	out32 := make([]uint32, 64)
	if err := Run(k, RunConfig{GridX: 1, GridY: 1, BlockX: 64, BlockY: 1,
		Buffers: map[string][]uint32{"ctr": ctr32, "out": out32},
		Scalars: map[string]uint32{}}); err != nil {
		t.Fatal(err)
	}
	if ctr32[0] != 64 {
		t.Errorf("counter = %d, want 64", ctr32[0])
	}
	seen := map[uint32]bool{}
	for _, v := range out32 {
		if v >= 64 || seen[v] {
			t.Fatalf("tickets not a permutation: %v", out32)
		}
		seen[v] = true
	}
}

// TestRunErrorPaths: missing inputs, bad dimensions, and out-of-range
// accesses surface as errors (not deadlocks).
func TestRunErrorPaths(t *testing.T) {
	b := NewKernel("oops")
	out := b.GlobalBuffer("out", U32)
	b.Barrier()
	b.Store(out, U(1000), U(1))
	k := b.MustBuild()

	if err := Run(k, RunConfig{GridX: 0, GridY: 1, BlockX: 1, BlockY: 1}); err == nil {
		t.Error("bad dimensions accepted")
	}
	if err := Run(k, RunConfig{GridX: 1, GridY: 1, BlockX: 1, BlockY: 1,
		Buffers: map[string][]uint32{}}); err == nil {
		t.Error("missing buffer accepted")
	}
	// Out-of-range store with 64 threads: every thread must unwind (the
	// broken barrier must not deadlock the rest).
	err := Run(k, RunConfig{GridX: 1, GridY: 1, BlockX: 64, BlockY: 1,
		Buffers: map[string][]uint32{"out": make([]uint32, 4)},
		Scalars: map[string]uint32{}})
	if err == nil {
		t.Error("out-of-range store accepted")
	}
}

// TestRunFloatMath: float intrinsics agree with the math package.
func TestRunFloatMath(t *testing.T) {
	b := NewKernel("fm")
	out := b.GlobalBuffer("out", F32)
	x := b.Declare("x", F(2.25))
	b.Store(out, U(0), Sqrt(x))
	b.Store(out, U(1), Rsqrt(x))
	b.Store(out, U(2), Abs(Neg(x)))
	b.Store(out, U(3), Min(x, F(1)))
	b.Store(out, U(4), Max(x, F(10)))
	b.Store(out, U(5), Select(Ge(x, F(2)), F(1), F(0)))
	k := b.MustBuild()
	out32 := make([]uint32, 6)
	if err := Run(k, RunConfig{GridX: 1, GridY: 1, BlockX: 1, BlockY: 1,
		Buffers: map[string][]uint32{"out": out32},
		Scalars: map[string]uint32{}}); err != nil {
		t.Fatal(err)
	}
	want := []float32{1.5, 1 / 1.5, 2.25, 1, 10, 1}
	for i, w := range want {
		if got := math.Float32frombits(out32[i]); got != w {
			t.Errorf("out[%d] = %g, want %g", i, got, w)
		}
	}
	_ = f32s
}
