package kir

import "fmt"

// Expr is a typed expression tree node.
type Expr interface {
	Type() Type
	exprNode()
}

// ConstInt is an integer literal (U32 or I32).
type ConstInt struct {
	T Type
	V int64
}

// ConstFloat is an F32 literal.
type ConstFloat struct{ V float32 }

// ParamRef reads a scalar kernel parameter.
type ParamRef struct {
	Name string
	T    Type
}

// VarRef reads a kernel-local scalar variable.
type VarRef struct {
	Name string
	T    Type
}

// Builtin reads a work-item identification register.
type Builtin struct{ Kind BuiltinKind }

// Bin applies a binary operator.
type Bin struct {
	Op   BinOp
	L, R Expr
}

// Un applies a unary operator or intrinsic.
type Un struct {
	Op UnOp
	X  Expr
}

// Sel is a conditional select: Cond ? A : B.
type Sel struct {
	Cond Expr // Bool
	A, B Expr
}

// Cast reinterprets or converts between scalar types.
type Cast struct {
	To Type
	X  Expr
}

// Load reads Buf[Index]. Buf names either a buffer parameter or a
// shared/local array declared on the kernel; its element type and space come
// from that declaration.
type Load struct {
	Buf   string
	Index Expr
	T     Type // element type, filled by the builder
}

func (e *ConstInt) Type() Type   { return e.T }
func (e *ConstFloat) Type() Type { return F32 }
func (e *ParamRef) Type() Type   { return e.T }
func (e *VarRef) Type() Type     { return e.T }
func (e *Builtin) Type() Type    { return U32 }
func (e *Cast) Type() Type       { return e.To }
func (e *Load) Type() Type       { return e.T }
func (e *Sel) Type() Type        { return e.A.Type() }

// Type of a binary expression: comparisons/logicals are Bool, otherwise the
// operand type.
func (e *Bin) Type() Type {
	if e.Op.IsCompare() || e.Op.IsLogical() {
		return Bool
	}
	return e.L.Type()
}

// Type of a unary expression follows the operand.
func (e *Un) Type() Type { return e.X.Type() }

func (*ConstInt) exprNode()   {}
func (*ConstFloat) exprNode() {}
func (*ParamRef) exprNode()   {}
func (*VarRef) exprNode()     {}
func (*Builtin) exprNode()    {}
func (*Bin) exprNode()        {}
func (*Un) exprNode()         {}
func (*Sel) exprNode()        {}
func (*Cast) exprNode()       {}
func (*Load) exprNode()       {}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// DeclStmt declares a scalar variable with an initial value.
type DeclStmt struct {
	Name string
	T    Type
	Init Expr
}

// AssignStmt overwrites a previously declared variable.
type AssignStmt struct {
	Name  string
	Value Expr
}

// StoreStmt writes Buf[Index] = Value.
type StoreStmt struct {
	Buf   string
	Index Expr
	Value Expr
}

// AtomicStmt applies a read-modify-write to Buf[Index]. Result, when
// non-empty, names a previously declared variable receiving the old value.
type AtomicStmt struct {
	Buf    string
	Index  Expr
	Value  Expr
	Op     AtomicOp
	Result string
}

// AtomicOp enumerates KIR atomic operations.
type AtomicOp int

const (
	AtomicAdd AtomicOp = iota
	AtomicOr
	AtomicMax
	AtomicExch
)

// IfStmt is structured two-way branching.
type IfStmt struct {
	Cond Expr // Bool
	Then []Stmt
	Else []Stmt
}

// ForStmt is a canonical counted loop:
//
//	for Var := Init; Var < Limit; Var += Step { Body }
//
// Unroll carries the source-level pragma: 0 means none, UnrollFull requests
// full unrolling, and a positive value requests that factor — exactly the
// "#pragma unroll N" of the paper's FDTD analysis (Fig. 6/7). How the
// pragma is honoured is a front-end personality decision.
type ForStmt struct {
	Var    string
	T      Type // U32 or I32
	Init   Expr
	Limit  Expr
	Step   Expr
	Body   []Stmt
	Unroll int
}

// UnrollFull requests complete unrolling of a constant-trip loop.
const UnrollFull = -1

// BarrierStmt is __syncthreads() / barrier(CLK_LOCAL_MEM_FENCE).
type BarrierStmt struct{}

func (*DeclStmt) stmtNode()    {}
func (*AssignStmt) stmtNode()  {}
func (*StoreStmt) stmtNode()   {}
func (*AtomicStmt) stmtNode()  {}
func (*IfStmt) stmtNode()      {}
func (*ForStmt) stmtNode()     {}
func (*BarrierStmt) stmtNode() {}

// Param is a kernel parameter: a scalar value or a typed buffer pointer.
type Param struct {
	Name   string
	T      Type
	Buffer bool
	Space  MemSpace // Global, Const or Texture for buffers
}

// Array declares a shared or local array on a kernel.
type Array struct {
	Name  string
	T     Type
	Count int // elements
}

// Kernel is one complete KIR kernel.
type Kernel struct {
	Name         string
	Params       []Param
	SharedArrays []Array
	LocalArrays  []Array
	Body         []Stmt

	// WarpWidthAssumption, when non-zero, records that the algorithm bakes
	// a warp width into its logic (RdxS assumes 32); the runtimes propagate
	// it so Table VI can detect silent wrong results on 64-wide devices.
	WarpWidthAssumption int
}

// Param returns the named parameter, or nil.
func (k *Kernel) Param(name string) *Param {
	for i := range k.Params {
		if k.Params[i].Name == name {
			return &k.Params[i]
		}
	}
	return nil
}

// SharedArray returns the named shared array, or nil.
func (k *Kernel) SharedArray(name string) *Array {
	for i := range k.SharedArrays {
		if k.SharedArrays[i].Name == name {
			return &k.SharedArrays[i]
		}
	}
	return nil
}

// LocalArray returns the named local array, or nil.
func (k *Kernel) LocalArray(name string) *Array {
	for i := range k.LocalArrays {
		if k.LocalArrays[i].Name == name {
			return &k.LocalArrays[i]
		}
	}
	return nil
}

// SpaceOf resolves the memory space of a buffer name used in Load/Store: a
// buffer parameter's declared space, or Shared/Local for kernel arrays.
func (k *Kernel) SpaceOf(buf string) (MemSpace, error) {
	if p := k.Param(buf); p != nil {
		if !p.Buffer {
			return 0, fmt.Errorf("kir: %s: %q is a scalar parameter, not a buffer", k.Name, buf)
		}
		return p.Space, nil
	}
	if k.SharedArray(buf) != nil {
		return Shared, nil
	}
	if k.LocalArray(buf) != nil {
		return Local, nil
	}
	return 0, fmt.Errorf("kir: %s: unknown buffer %q", k.Name, buf)
}

// ElemType resolves the element type of a buffer name.
func (k *Kernel) ElemType(buf string) (Type, error) {
	if p := k.Param(buf); p != nil {
		return p.T, nil
	}
	if a := k.SharedArray(buf); a != nil {
		return a.T, nil
	}
	if a := k.LocalArray(buf); a != nil {
		return a.T, nil
	}
	return 0, fmt.Errorf("kir: %s: unknown buffer %q", k.Name, buf)
}
