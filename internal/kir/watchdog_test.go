package kir

import (
	"errors"
	"testing"
)

// hangKernel loops forever: step 0 keeps the induction variable below the
// limit on every iteration.
func hangKernel() *Kernel {
	b := NewKernel("hang")
	out := b.GlobalBuffer("out", U32)
	b.For("i", U(0), U(1), U(0), func(i Expr) {
		b.Store(out, U(0), i)
	})
	return b.MustBuild()
}

func TestRunStepBudget(t *testing.T) {
	err := Run(hangKernel(), RunConfig{
		GridX: 1, GridY: 1, BlockX: 2, BlockY: 1,
		Buffers:    map[string][]uint32{"out": make([]uint32, 1)},
		StepBudget: 10_000,
	})
	if !errors.Is(err, ErrWatchdog) {
		t.Fatalf("Run of non-terminating kernel: err = %v, want ErrWatchdog", err)
	}
}

func TestRunStepBudgetSparesTerminatingKernels(t *testing.T) {
	b := NewKernel("sum")
	out := b.GlobalBuffer("out", U32)
	acc := b.Declare("acc", U(0))
	b.For("i", U(0), U(64), U(1), func(i Expr) {
		b.Assign(acc, Add(acc, i))
	})
	b.Store(out, U(0), acc)
	k := b.MustBuild()

	buf := make([]uint32, 1)
	err := Run(k, RunConfig{
		GridX: 1, GridY: 1, BlockX: 1, BlockY: 1,
		Buffers:    map[string][]uint32{"out": buf},
		StepBudget: 10_000,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if want := uint32(64 * 63 / 2); buf[0] != want {
		t.Fatalf("out = %d, want %d", buf[0], want)
	}
}
