package kir

// JSON serialisation of kernel ASTs as a tagged union. This is the wire
// format shared by the fuzz corpus (internal/fuzz), the kernel-submission
// API (POST /kernels via internal/submit) and any external tool that wants
// to hand the service a kernel. It lives here, next to the AST it encodes,
// so consumers of untrusted kernels (the HTTP server in particular) do not
// have to import the fuzzer to parse one.
//
// Decoding is defensive: every name (types, spaces, ops, builtins,
// statement and expression kinds) is looked up in a closed table and
// anything unknown is rejected with an error wrapping ErrBadEncoding —
// never a panic. Structural sanity (declared names, operand types, loop
// bounds, barrier uniformity) is NOT checked here; that is the static
// gauntlet's job (Check, CheckUniformBarriers, CheckBoundedLoops).

import (
	"errors"
	"fmt"
)

// ErrBadEncoding is the errors.Is sentinel for every malformed-kernel
// decode failure: unknown kinds, ops, types, spaces or missing subtrees.
var ErrBadEncoding = errors.New("kir: bad kernel encoding")

// jerrf builds a decode error that wraps ErrBadEncoding.
func jerrf(format string, args ...any) error {
	return fmt.Errorf("kir: json: "+format+": %w", append(args, ErrBadEncoding)...)
}

// KernelJSON is the serialised form of one kernel.
type KernelJSON struct {
	Name   string      `json:"name"`
	Params []ParamJSON `json:"params"`
	Shared []ArrayJSON `json:"shared,omitempty"`
	Local  []ArrayJSON `json:"local,omitempty"`
	Warp   int         `json:"warpAssumption,omitempty"`
	Body   []StmtJSON  `json:"body"`
}

// ParamJSON is one kernel parameter.
type ParamJSON struct {
	Name   string `json:"name"`
	Type   string `json:"type"`
	Buffer bool   `json:"buffer,omitempty"`
	Space  string `json:"space,omitempty"`
}

// ArrayJSON is one shared or local array declaration.
type ArrayJSON struct {
	Name  string `json:"name"`
	Type  string `json:"type"`
	Count int    `json:"count"`
}

// StmtJSON is the tagged union over statements.
type StmtJSON struct {
	Kind   string     `json:"kind"`
	Name   string     `json:"name,omitempty"`
	Buf    string     `json:"buf,omitempty"`
	Op     string     `json:"op,omitempty"`
	Cond   *ExprJSON  `json:"cond,omitempty"`
	Index  *ExprJSON  `json:"index,omitempty"`
	Value  *ExprJSON  `json:"value,omitempty"`
	Init   *ExprJSON  `json:"init,omitempty"`
	Limit  *ExprJSON  `json:"limit,omitempty"`
	Step   *ExprJSON  `json:"step,omitempty"`
	Unroll int        `json:"unroll,omitempty"`
	Then   []StmtJSON `json:"then,omitempty"`
	Else   []StmtJSON `json:"else,omitempty"`
	Body   []StmtJSON `json:"body,omitempty"`
}

// ExprJSON is the tagged union over expressions.
type ExprJSON struct {
	Kind  string    `json:"kind"`
	Type  string    `json:"type,omitempty"`
	Int   int64     `json:"int,omitempty"`
	Float float64   `json:"float,omitempty"`
	Name  string    `json:"name,omitempty"`
	Op    string    `json:"op,omitempty"`
	L     *ExprJSON `json:"l,omitempty"`
	R     *ExprJSON `json:"r,omitempty"`
	X     *ExprJSON `json:"x,omitempty"`
	Cond  *ExprJSON `json:"cond,omitempty"`
	A     *ExprJSON `json:"a,omitempty"`
	B     *ExprJSON `json:"b,omitempty"`
	Index *ExprJSON `json:"index,omitempty"`
}

// ---- enum <-> string tables, keyed by the kir String() forms ----

var typeNames = map[Type]string{
	U32: U32.String(), I32: I32.String(),
	F32: F32.String(), Bool: Bool.String(),
}

var spaceNames = map[MemSpace]string{
	Global: Global.String(), Const: Const.String(),
	Texture: Texture.String(), Shared: Shared.String(),
	Local: Local.String(),
}

var jsonBinOps = []BinOp{
	OpAdd, OpSub, OpMul, OpDiv, OpRem, OpMin,
	OpMax, OpAnd, OpOr, OpXor, OpShl, OpShr,
	OpEq, OpNe, OpLt, OpLe, OpGt, OpGe,
	OpLAnd, OpLOr,
}

var jsonUnOps = []UnOp{
	OpNeg, OpNot, OpAbs, OpSqrt, OpRsqrt, OpSin,
	OpCos, OpExp2, OpLog2,
}

var jsonBuiltins = []BuiltinKind{
	TidX, TidY, NtidX, NtidY, CtaidX, CtaidY,
	NctaidX, NctaidY, WarpSize,
}

var atomicNames = map[AtomicOp]string{
	AtomicAdd: "add", AtomicOr: "or",
	AtomicMax: "max", AtomicExch: "exch",
}

func reverseNames[K comparable](m map[K]string) map[string]K {
	r := make(map[string]K, len(m))
	for k, v := range m {
		r[v] = k
	}
	return r
}

func stringerMap[T fmt.Stringer](vals []T) map[string]T {
	r := make(map[string]T, len(vals))
	for _, v := range vals {
		r[v.String()] = v
	}
	return r
}

var (
	typeByName    = reverseNames(typeNames)
	spaceByName   = reverseNames(spaceNames)
	binOpByName   = stringerMap(jsonBinOps)
	unOpByName    = stringerMap(jsonUnOps)
	builtinByName = stringerMap(jsonBuiltins)
	atomicByName  = reverseNames(atomicNames)
)

// EncodeKernelJSON renders a kernel into its serialised form.
func EncodeKernelJSON(k *Kernel) KernelJSON {
	kj := KernelJSON{Name: k.Name, Warp: k.WarpWidthAssumption}
	for _, p := range k.Params {
		pj := ParamJSON{Name: p.Name, Type: typeNames[p.T], Buffer: p.Buffer}
		if p.Buffer {
			pj.Space = spaceNames[p.Space]
		}
		kj.Params = append(kj.Params, pj)
	}
	for _, a := range k.SharedArrays {
		kj.Shared = append(kj.Shared, ArrayJSON{Name: a.Name, Type: typeNames[a.T], Count: a.Count})
	}
	for _, a := range k.LocalArrays {
		kj.Local = append(kj.Local, ArrayJSON{Name: a.Name, Type: typeNames[a.T], Count: a.Count})
	}
	kj.Body = encodeStmts(k.Body)
	return kj
}

// DecodeKernelJSON rebuilds the kernel AST from its serialised form. Any
// malformed node fails with an error wrapping ErrBadEncoding; the result is
// structurally well-formed but NOT yet checked — run the static gauntlet
// before trusting it.
func DecodeKernelJSON(kj *KernelJSON) (*Kernel, error) {
	k := &Kernel{Name: kj.Name, WarpWidthAssumption: kj.Warp}
	for _, pj := range kj.Params {
		t, ok := typeByName[pj.Type]
		if !ok {
			return nil, jerrf("param %s: unknown type %q", pj.Name, pj.Type)
		}
		p := Param{Name: pj.Name, T: t, Buffer: pj.Buffer}
		if pj.Buffer {
			sp, ok := spaceByName[pj.Space]
			if !ok {
				return nil, jerrf("param %s: unknown space %q", pj.Name, pj.Space)
			}
			p.Space = sp
		}
		k.Params = append(k.Params, p)
	}
	var err error
	if k.SharedArrays, err = decodeArrays(kj.Shared); err != nil {
		return nil, err
	}
	if k.LocalArrays, err = decodeArrays(kj.Local); err != nil {
		return nil, err
	}
	if k.Body, err = decodeStmts(kj.Body); err != nil {
		return nil, err
	}
	return k, nil
}

func decodeArrays(ajs []ArrayJSON) ([]Array, error) {
	var out []Array
	for _, aj := range ajs {
		t, ok := typeByName[aj.Type]
		if !ok {
			return nil, jerrf("array %s: unknown type %q", aj.Name, aj.Type)
		}
		out = append(out, Array{Name: aj.Name, T: t, Count: aj.Count})
	}
	return out, nil
}

func encodeStmts(stmts []Stmt) []StmtJSON {
	var out []StmtJSON
	for _, s := range stmts {
		out = append(out, encodeStmt(s))
	}
	return out
}

func encodeStmt(s Stmt) StmtJSON {
	switch s := s.(type) {
	case *DeclStmt:
		return StmtJSON{Kind: "decl", Name: s.Name, Value: encodeExpr(s.Init)}
	case *AssignStmt:
		return StmtJSON{Kind: "assign", Name: s.Name, Value: encodeExpr(s.Value)}
	case *StoreStmt:
		return StmtJSON{Kind: "store", Buf: s.Buf, Index: encodeExpr(s.Index), Value: encodeExpr(s.Value)}
	case *AtomicStmt:
		return StmtJSON{Kind: "atomic", Buf: s.Buf, Op: atomicNames[s.Op],
			Index: encodeExpr(s.Index), Value: encodeExpr(s.Value), Name: s.Result}
	case *IfStmt:
		return StmtJSON{Kind: "if", Cond: encodeExpr(s.Cond),
			Then: encodeStmts(s.Then), Else: encodeStmts(s.Else)}
	case *ForStmt:
		return StmtJSON{Kind: "for", Name: s.Var,
			Init: encodeExpr(s.Init), Limit: encodeExpr(s.Limit), Step: encodeExpr(s.Step),
			Unroll: s.Unroll, Body: encodeStmts(s.Body)}
	case *BarrierStmt:
		return StmtJSON{Kind: "barrier"}
	default:
		panic(fmt.Sprintf("kir: json: encode: unknown statement %T", s))
	}
}

func decodeStmts(sjs []StmtJSON) ([]Stmt, error) {
	var out []Stmt
	for i := range sjs {
		s, err := decodeStmt(&sjs[i])
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func decodeStmt(sj *StmtJSON) (Stmt, error) {
	switch sj.Kind {
	case "decl":
		init, err := decodeExpr(sj.Value)
		if err != nil {
			return nil, err
		}
		return &DeclStmt{Name: sj.Name, T: init.Type(), Init: init}, nil
	case "assign":
		v, err := decodeExpr(sj.Value)
		if err != nil {
			return nil, err
		}
		return &AssignStmt{Name: sj.Name, Value: v}, nil
	case "store":
		idx, err := decodeExpr(sj.Index)
		if err != nil {
			return nil, err
		}
		v, err := decodeExpr(sj.Value)
		if err != nil {
			return nil, err
		}
		return &StoreStmt{Buf: sj.Buf, Index: idx, Value: v}, nil
	case "atomic":
		op, ok := atomicByName[sj.Op]
		if !ok {
			return nil, jerrf("unknown atomic op %q", sj.Op)
		}
		idx, err := decodeExpr(sj.Index)
		if err != nil {
			return nil, err
		}
		v, err := decodeExpr(sj.Value)
		if err != nil {
			return nil, err
		}
		return &AtomicStmt{Buf: sj.Buf, Op: op, Index: idx, Value: v, Result: sj.Name}, nil
	case "if":
		cond, err := decodeExpr(sj.Cond)
		if err != nil {
			return nil, err
		}
		then, err := decodeStmts(sj.Then)
		if err != nil {
			return nil, err
		}
		els, err := decodeStmts(sj.Else)
		if err != nil {
			return nil, err
		}
		return &IfStmt{Cond: cond, Then: then, Else: els}, nil
	case "for":
		init, err := decodeExpr(sj.Init)
		if err != nil {
			return nil, err
		}
		limit, err := decodeExpr(sj.Limit)
		if err != nil {
			return nil, err
		}
		step, err := decodeExpr(sj.Step)
		if err != nil {
			return nil, err
		}
		body, err := decodeStmts(sj.Body)
		if err != nil {
			return nil, err
		}
		return &ForStmt{Var: sj.Name, T: init.Type(), Init: init, Limit: limit,
			Step: step, Body: body, Unroll: sj.Unroll}, nil
	case "barrier":
		return &BarrierStmt{}, nil
	default:
		return nil, jerrf("unknown statement kind %q", sj.Kind)
	}
}

// EncodeExprJSON renders a single expression tree into its serialised
// form, for codecs (the pattern layer's element functions) that embed
// expressions outside a whole kernel.
func EncodeExprJSON(e Expr) *ExprJSON { return encodeExpr(e) }

// DecodeExprJSON rebuilds an expression from its serialised form. Like
// DecodeKernelJSON, the result is structurally well-formed but unchecked.
func DecodeExprJSON(ej *ExprJSON) (Expr, error) { return decodeExpr(ej) }

// TypeName renders a type the way the JSON codec spells it.
func TypeName(t Type) string { return typeNames[t] }

// TypeFromName inverts TypeName.
func TypeFromName(name string) (Type, bool) {
	t, ok := typeByName[name]
	return t, ok
}

func encodeExpr(e Expr) *ExprJSON {
	if e == nil {
		return nil
	}
	switch e := e.(type) {
	case *ConstInt:
		return &ExprJSON{Kind: "int", Type: typeNames[e.T], Int: e.V}
	case *ConstFloat:
		return &ExprJSON{Kind: "float", Float: float64(e.V)}
	case *ParamRef:
		return &ExprJSON{Kind: "param", Name: e.Name, Type: typeNames[e.T]}
	case *VarRef:
		return &ExprJSON{Kind: "var", Name: e.Name, Type: typeNames[e.T]}
	case *Builtin:
		return &ExprJSON{Kind: "builtin", Name: e.Kind.String()}
	case *Bin:
		return &ExprJSON{Kind: "bin", Op: e.Op.String(), L: encodeExpr(e.L), R: encodeExpr(e.R)}
	case *Un:
		return &ExprJSON{Kind: "un", Op: e.Op.String(), X: encodeExpr(e.X)}
	case *Sel:
		return &ExprJSON{Kind: "sel", Cond: encodeExpr(e.Cond), A: encodeExpr(e.A), B: encodeExpr(e.B)}
	case *Cast:
		return &ExprJSON{Kind: "cast", Type: typeNames[e.To], X: encodeExpr(e.X)}
	case *Load:
		return &ExprJSON{Kind: "load", Name: e.Buf, Type: typeNames[e.T], Index: encodeExpr(e.Index)}
	default:
		panic(fmt.Sprintf("kir: json: encode: unknown expression %T", e))
	}
}

func decodeExpr(ej *ExprJSON) (Expr, error) {
	if ej == nil {
		return nil, jerrf("missing expression")
	}
	t, typeOK := typeByName[ej.Type]
	switch ej.Kind {
	case "int":
		if !typeOK {
			return nil, jerrf("int literal with type %q", ej.Type)
		}
		return &ConstInt{T: t, V: ej.Int}, nil
	case "float":
		return &ConstFloat{V: float32(ej.Float)}, nil
	case "param":
		if !typeOK {
			return nil, jerrf("param %s with type %q", ej.Name, ej.Type)
		}
		return &ParamRef{Name: ej.Name, T: t}, nil
	case "var":
		if !typeOK {
			return nil, jerrf("var %s with type %q", ej.Name, ej.Type)
		}
		return &VarRef{Name: ej.Name, T: t}, nil
	case "builtin":
		b, ok := builtinByName[ej.Name]
		if !ok {
			return nil, jerrf("unknown builtin %q", ej.Name)
		}
		return &Builtin{Kind: b}, nil
	case "bin":
		op, ok := binOpByName[ej.Op]
		if !ok {
			return nil, jerrf("unknown binary op %q", ej.Op)
		}
		l, err := decodeExpr(ej.L)
		if err != nil {
			return nil, err
		}
		r, err := decodeExpr(ej.R)
		if err != nil {
			return nil, err
		}
		return &Bin{Op: op, L: l, R: r}, nil
	case "un":
		op, ok := unOpByName[ej.Op]
		if !ok {
			return nil, jerrf("unknown unary op %q", ej.Op)
		}
		x, err := decodeExpr(ej.X)
		if err != nil {
			return nil, err
		}
		return &Un{Op: op, X: x}, nil
	case "sel":
		cond, err := decodeExpr(ej.Cond)
		if err != nil {
			return nil, err
		}
		a, err := decodeExpr(ej.A)
		if err != nil {
			return nil, err
		}
		b, err := decodeExpr(ej.B)
		if err != nil {
			return nil, err
		}
		return &Sel{Cond: cond, A: a, B: b}, nil
	case "cast":
		if !typeOK {
			return nil, jerrf("cast to unknown type %q", ej.Type)
		}
		x, err := decodeExpr(ej.X)
		if err != nil {
			return nil, err
		}
		return &Cast{To: t, X: x}, nil
	case "load":
		if !typeOK {
			return nil, jerrf("load from %s with type %q", ej.Name, ej.Type)
		}
		idx, err := decodeExpr(ej.Index)
		if err != nil {
			return nil, err
		}
		return &Load{Buf: ej.Name, Index: idx, T: t}, nil
	default:
		return nil, jerrf("unknown expression kind %q", ej.Kind)
	}
}
