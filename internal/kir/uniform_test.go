package kir

import (
	"strings"
	"testing"
)

// TestUniformBarriersAccepted: barriers at top level, under uniform
// conditions, and inside uniform-bound loops all pass.
func TestUniformBarriersAccepted(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Kernel
	}{
		{"top-level", func() *Kernel {
			b := NewKernel("k")
			out := b.GlobalBuffer("out", U32)
			b.Barrier()
			b.Store(out, b.GlobalIDX(), U(1))
			return b.MustBuild()
		}},
		{"uniform-if", func() *Kernel {
			b := NewKernel("k")
			out := b.GlobalBuffer("out", U32)
			s := b.ScalarParam("s", U32)
			b.If(Gt(s, U(4)), func() { b.Barrier() })
			b.Store(out, b.GlobalIDX(), U(1))
			return b.MustBuild()
		}},
		{"uniform-block-id-if", func() *Kernel {
			b := NewKernel("k")
			out := b.GlobalBuffer("out", U32)
			b.If(Eq(Bi(CtaidX), U(0)), func() { b.Barrier() })
			b.Store(out, b.GlobalIDX(), U(1))
			return b.MustBuild()
		}},
		{"uniform-loop", func() *Kernel {
			b := NewKernel("k")
			out := b.GlobalBuffer("out", U32)
			s := b.ScalarParam("s", U32)
			b.For("i", U(0), s, U(1), func(i Expr) { b.Barrier() })
			b.Store(out, b.GlobalIDX(), U(1))
			return b.MustBuild()
		}},
		{"uniform-var-guard", func() *Kernel {
			b := NewKernel("k")
			out := b.GlobalBuffer("out", U32)
			s := b.ScalarParam("s", U32)
			v := b.Declare("v", Mul(s, U(3)))
			b.If(Lt(v, U(100)), func() { b.Barrier() })
			b.Store(out, b.GlobalIDX(), U(1))
			return b.MustBuild()
		}},
	}
	for _, tc := range cases {
		if err := CheckUniformBarriers(tc.build()); err != nil {
			t.Errorf("%s: unexpected rejection: %v", tc.name, err)
		}
	}
}

// TestUniformBarriersRejected: thread-dependent guards around a barrier
// are flagged, including through data flow and loop-carried mutation.
func TestUniformBarriersRejected(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Kernel
	}{
		{"tid-if", func() *Kernel {
			b := NewKernel("k")
			out := b.GlobalBuffer("out", U32)
			b.If(Lt(Bi(TidX), U(16)), func() { b.Barrier() })
			b.Store(out, b.GlobalIDX(), U(1))
			return b.MustBuild()
		}},
		{"tid-through-var", func() *Kernel {
			b := NewKernel("k")
			out := b.GlobalBuffer("out", U32)
			v := b.Declare("v", Add(Bi(TidX), U(1)))
			b.If(Lt(v, U(7)), func() { b.Barrier() })
			b.Store(out, b.GlobalIDX(), U(1))
			return b.MustBuild()
		}},
		{"load-guard", func() *Kernel {
			b := NewKernel("k")
			in := b.GlobalBuffer("in", U32)
			out := b.GlobalBuffer("out", U32)
			b.If(Gt(b.Load(in, U(0)), U(4)), func() { b.Barrier() })
			b.Store(out, b.GlobalIDX(), U(1))
			return b.MustBuild()
		}},
		{"tid-loop-bound", func() *Kernel {
			b := NewKernel("k")
			out := b.GlobalBuffer("out", U32)
			b.For("i", U(0), Bi(TidX), U(1), func(i Expr) { b.Barrier() })
			b.Store(out, b.GlobalIDX(), U(1))
			return b.MustBuild()
		}},
		{"uniform-var-mutated-in-loop", func() *Kernel {
			// v starts uniform but a loop assigns it a thread-dependent
			// value; a barrier guarded by v after the first iteration can
			// diverge, so the conservative analysis must demote v before
			// walking the body.
			b := NewKernel("k")
			out := b.GlobalBuffer("out", U32)
			s := b.ScalarParam("s", U32)
			v := b.Declare("v", s)
			b.For("i", U(0), U(4), U(1), func(i Expr) {
				b.If(Lt(v, U(10)), func() { b.Barrier() })
				b.Assign(v, Bi(TidX))
			})
			b.Store(out, b.GlobalIDX(), U(1))
			return b.MustBuild()
		}},
	}
	for _, tc := range cases {
		err := CheckUniformBarriers(tc.build())
		if err == nil {
			t.Errorf("%s: divergent barrier accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), "barrier under non-uniform control flow") {
			t.Errorf("%s: unexpected error text: %v", tc.name, err)
		}
	}
}

// TestRunBarrierDivergenceReported: when threads disagree about reaching
// a barrier, Run must fail (not deadlock) and say which thread broke the
// contract.
func TestRunBarrierDivergenceReported(t *testing.T) {
	b := NewKernel("div")
	out := b.GlobalBuffer("out", U32)
	b.If(Lt(Bi(TidX), U(8)), func() { b.Barrier() })
	b.Store(out, b.GlobalIDX(), U(1))
	k := b.MustBuild()

	err := Run(k, RunConfig{GridX: 1, GridY: 1, BlockX: 32, BlockY: 1,
		Buffers: map[string][]uint32{"out": make([]uint32, 32)},
		Scalars: map[string]uint32{}})
	if err == nil {
		t.Fatal("divergent barrier did not fail")
	}
	if !strings.Contains(err.Error(), "barrier divergence") {
		t.Fatalf("error does not identify barrier divergence: %v", err)
	}
	if !strings.Contains(err.Error(), "thread") {
		t.Fatalf("error does not name a thread: %v", err)
	}
}

// TestRunBarrierDivergenceOtherWay: the majority exits while a minority
// waits — the waiters must detect the departure and report it.
func TestRunBarrierDivergenceOtherWay(t *testing.T) {
	b := NewKernel("div2")
	out := b.GlobalBuffer("out", U32)
	b.If(Eq(Bi(TidX), U(0)), func() { b.Barrier() })
	b.Store(out, b.GlobalIDX(), U(1))
	k := b.MustBuild()

	err := Run(k, RunConfig{GridX: 1, GridY: 1, BlockX: 64, BlockY: 1,
		Buffers: map[string][]uint32{"out": make([]uint32, 64)},
		Scalars: map[string]uint32{}})
	if err == nil {
		t.Fatal("divergent barrier did not fail")
	}
	if !strings.Contains(err.Error(), "barrier divergence") {
		t.Fatalf("error does not identify barrier divergence: %v", err)
	}
}
