package kir

// Check type-checks and scope-checks a kernel. The compiler front-ends rely
// on Check having passed: they do not re-validate. Every rejection is a
// *CheckError classified under one of the typed sentinels in
// check_errors.go (ErrBadOperand, ErrUndeclared, ...), so callers can map
// failures to stable machine-readable codes with errors.Is / ErrCode.
func Check(k *Kernel) error {
	c := &checker{k: k, env: make(map[string]Type)}
	for _, p := range k.Params {
		if !p.Buffer {
			c.env["param:"+p.Name] = p.T
		}
	}
	return c.block(k.Body)
}

type checker struct {
	k   *Kernel
	env map[string]Type // declared scalar variables
}

func (c *checker) errf(sentinel error, format string, args ...any) error {
	return checkErrf(c.k, sentinel, format, args...)
}

func isInt(t Type) bool { return t == U32 || t == I32 }

// compatible reports whether two operand types can be combined; the two
// integer types are interchangeable (as in C with implicit conversion).
func compatible(a, b Type) bool {
	if a == b {
		return true
	}
	return isInt(a) && isInt(b)
}

func (c *checker) block(stmts []Stmt) error {
	declared := []string{}
	defer func() {
		for _, name := range declared {
			delete(c.env, name)
		}
	}()
	for _, s := range stmts {
		switch s := s.(type) {
		case *DeclStmt:
			if _, ok := c.env[s.Name]; ok {
				return c.errf(ErrRedeclared, "redeclaration of %q", s.Name)
			}
			t, err := c.expr(s.Init)
			if err != nil {
				return err
			}
			if t != s.T {
				return c.errf(ErrBadOperand, "declaration of %q: init type %v != declared %v", s.Name, t, s.T)
			}
			c.env[s.Name] = s.T
			declared = append(declared, s.Name)
		case *AssignStmt:
			vt, ok := c.env[s.Name]
			if !ok {
				return c.errf(ErrUndeclared, "assignment to undeclared variable %q", s.Name)
			}
			t, err := c.expr(s.Value)
			if err != nil {
				return err
			}
			if !compatible(vt, t) {
				return c.errf(ErrBadOperand, "assignment to %q: %v value into %v variable", s.Name, t, vt)
			}
		case *StoreStmt:
			if err := c.checkAccess(s.Buf, s.Index, true); err != nil {
				return err
			}
			et, _ := c.k.ElemType(s.Buf)
			vt, err := c.expr(s.Value)
			if err != nil {
				return err
			}
			if !compatible(et, vt) {
				return c.errf(ErrBadOperand, "store to %q: %v value into %v buffer", s.Buf, vt, et)
			}
		case *AtomicStmt:
			if err := c.checkAccess(s.Buf, s.Index, true); err != nil {
				return err
			}
			et, _ := c.k.ElemType(s.Buf)
			if !isInt(et) {
				return c.errf(ErrBadOperand, "atomic on %q: element type %v is not integer", s.Buf, et)
			}
			vt, err := c.expr(s.Value)
			if err != nil {
				return err
			}
			if !isInt(vt) {
				return c.errf(ErrBadOperand, "atomic on %q: operand type %v is not integer", s.Buf, vt)
			}
			if s.Result != "" {
				if _, ok := c.env[s.Result]; !ok {
					return c.errf(ErrUndeclared, "atomic result variable %q undeclared", s.Result)
				}
			}
		case *IfStmt:
			t, err := c.expr(s.Cond)
			if err != nil {
				return err
			}
			if t != Bool {
				return c.errf(ErrBadOperand, "if condition has type %v, want bool", t)
			}
			if err := c.block(s.Then); err != nil {
				return err
			}
			if err := c.block(s.Else); err != nil {
				return err
			}
		case *ForStmt:
			for what, e := range map[string]Expr{"init": s.Init, "limit": s.Limit, "step": s.Step} {
				t, err := c.expr(e)
				if err != nil {
					return err
				}
				if !isInt(t) {
					return c.errf(ErrBadOperand, "for %q: %s has type %v, want integer", s.Var, what, t)
				}
			}
			if _, ok := c.env[s.Var]; ok {
				return c.errf(ErrRedeclared, "for variable %q shadows an existing variable", s.Var)
			}
			c.env[s.Var] = s.T
			err := c.block(s.Body)
			delete(c.env, s.Var)
			if err != nil {
				return err
			}
		case *BarrierStmt:
		default:
			return c.errf(ErrBadNode, "unknown statement %T", s)
		}
	}
	return nil
}

func (c *checker) checkAccess(buf string, idx Expr, write bool) error {
	space, err := c.k.SpaceOf(buf)
	if err != nil {
		return checkWrap(c.k, ErrUndeclared, err)
	}
	if write && (space == Const || space == Texture) {
		return c.errf(ErrReadOnlyStore, "store to read-only %v buffer %q", space, buf)
	}
	t, err := c.expr(idx)
	if err != nil {
		return err
	}
	if !isInt(t) {
		return c.errf(ErrBadOperand, "index into %q has type %v, want integer", buf, t)
	}
	return nil
}

func (c *checker) expr(e Expr) (Type, error) {
	switch e := e.(type) {
	case nil:
		return 0, c.errf(ErrBadNode, "nil expression")
	case *ConstInt:
		if !isInt(e.T) {
			return 0, c.errf(ErrBadOperand, "integer literal with type %v", e.T)
		}
		return e.T, nil
	case *ConstFloat:
		return F32, nil
	case *ParamRef:
		p := c.k.Param(e.Name)
		if p == nil {
			return 0, c.errf(ErrUndeclared, "reference to unknown parameter %q", e.Name)
		}
		if p.Buffer {
			return 0, c.errf(ErrBadOperand, "buffer parameter %q used as a scalar", e.Name)
		}
		return p.T, nil
	case *VarRef:
		t, ok := c.env[e.Name]
		if !ok {
			return 0, c.errf(ErrUndeclared, "use of undeclared variable %q", e.Name)
		}
		return t, nil
	case *Builtin:
		return U32, nil
	case *Bin:
		lt, err := c.expr(e.L)
		if err != nil {
			return 0, err
		}
		rt, err := c.expr(e.R)
		if err != nil {
			return 0, err
		}
		switch {
		case e.Op.IsLogical():
			if lt != Bool || rt != Bool {
				return 0, c.errf(ErrBadOperand, "%v applied to %v, %v", e.Op, lt, rt)
			}
			return Bool, nil
		case e.Op.IsCompare():
			if !compatible(lt, rt) {
				return 0, c.errf(ErrBadOperand, "%v compares %v with %v", e.Op, lt, rt)
			}
			return Bool, nil
		case e.Op == OpShl || e.Op == OpShr || e.Op == OpAnd || e.Op == OpOr ||
			e.Op == OpXor || e.Op == OpRem:
			if !isInt(lt) || !isInt(rt) {
				return 0, c.errf(ErrBadOperand, "%v needs integer operands, got %v, %v", e.Op, lt, rt)
			}
			return lt, nil
		default:
			if !compatible(lt, rt) {
				return 0, c.errf(ErrBadOperand, "%v mixes %v with %v", e.Op, lt, rt)
			}
			if lt == Bool {
				return 0, c.errf(ErrBadOperand, "%v applied to bool", e.Op)
			}
			return lt, nil
		}
	case *Un:
		t, err := c.expr(e.X)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case OpSqrt, OpRsqrt, OpSin, OpCos, OpExp2, OpLog2:
			if t != F32 {
				return 0, c.errf(ErrBadOperand, "%v needs f32, got %v", e.Op, t)
			}
		case OpNot:
			if t == F32 {
				return 0, c.errf(ErrBadOperand, "not applied to f32")
			}
		case OpNeg, OpAbs:
			if t == Bool {
				return 0, c.errf(ErrBadOperand, "%v applied to bool", e.Op)
			}
		}
		return t, nil
	case *Sel:
		ct, err := c.expr(e.Cond)
		if err != nil {
			return 0, err
		}
		if ct != Bool {
			return 0, c.errf(ErrBadOperand, "select condition has type %v", ct)
		}
		at, err := c.expr(e.A)
		if err != nil {
			return 0, err
		}
		bt, err := c.expr(e.B)
		if err != nil {
			return 0, err
		}
		if !compatible(at, bt) {
			return 0, c.errf(ErrBadOperand, "select arms have types %v, %v", at, bt)
		}
		return at, nil
	case *Cast:
		if _, err := c.expr(e.X); err != nil {
			return 0, err
		}
		return e.To, nil
	case *Load:
		space, err := c.k.SpaceOf(e.Buf)
		if err != nil {
			return 0, checkWrap(c.k, ErrUndeclared, err)
		}
		_ = space
		t, err := c.expr(e.Index)
		if err != nil {
			return 0, err
		}
		if !isInt(t) {
			return 0, c.errf(ErrBadOperand, "index into %q has type %v, want integer", e.Buf, t)
		}
		et, err := c.k.ElemType(e.Buf)
		if err != nil {
			return 0, checkWrap(c.k, ErrUndeclared, err)
		}
		if e.T != et {
			return 0, c.errf(ErrBadOperand, "load from %q typed %v, buffer elements are %v", e.Buf, e.T, et)
		}
		return et, nil
	default:
		return 0, c.errf(ErrBadNode, "unknown expression %T", e)
	}
}
