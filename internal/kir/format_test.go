package kir

import (
	"strings"
	"testing"
)

func TestFormatKernel(t *testing.T) {
	b := NewKernel("demo")
	in := b.GlobalBuffer("in", F32)
	filt := b.ConstBuffer("filt", F32)
	out := b.GlobalBuffer("out", F32)
	n := b.ScalarParam("n", U32)
	tile := b.SharedArray("tile", F32, 64)
	scratch := b.LocalArray("scratch", U32, 4)
	_ = scratch
	gid := b.Declare("gid", b.GlobalIDX())
	b.If(Lt(gid, n), func() {
		acc := b.Declare("acc", F(0))
		b.ForUnroll("i", U(0), U(3), U(1), UnrollFull, func(i Expr) {
			b.Assign(acc, Add(acc, Mul(b.Load(in, Add(gid, i)), b.Load(filt, i))))
		})
		b.Store(tile, Bi(TidX), acc)
		b.Barrier()
		b.Store(out, gid, b.Load(tile, Bi(TidX)))
	})
	k := b.MustBuild()
	src := Format(k)
	for _, want := range []string{
		"__global__ void demo(",
		"global f32*in",
		"constant f32*filt",
		"u32 n",
		"__shared__ f32 tile[64]",
		"scratch[4]; // per-thread local",
		"u32 gid = ((blockIdx.x * blockDim.x) + threadIdx.x);",
		"if ((gid < n)) {",
		"#pragma unroll",
		"for (u32 i = 0u; i < 3u; i += 1u) {",
		"acc = (acc + (in[(gid + i)] * filt[i]));",
		"tile[threadIdx.x] = acc;",
		"__syncthreads();",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("formatted source missing %q:\n%s", want, src)
		}
	}
}

func TestFormatExprVariants(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{I(-3), "-3"},
		{U(7), "7u"},
		{F(1.5), "1.5f"},
		{Min(U(1), U(2)), "min(1u, 2u)"},
		{Max(U(1), U(2)), "max(1u, 2u)"},
		{Neg(F(1)), "(-1f)"},
		{Not(U(1)), "(~1u)"},
		{Not(Lt(U(0), U(1))), "(!(0u < 1u))"},
		{Sqrt(F(2)), "sqrt(2f)"},
		{Select(Lt(U(0), U(1)), F(1), F(2)), "((0u < 1u) ? 1f : 2f)"},
		{CastTo(F32, U(3)), "(f32)3u"},
		{Bi(WarpSize), "warpSize"},
	}
	for _, tc := range cases {
		if got := FormatExpr(tc.e); got != tc.want {
			t.Errorf("FormatExpr = %q, want %q", got, tc.want)
		}
	}
}

func TestFormatAtomicAndPartialPragma(t *testing.T) {
	b := NewKernel("atomics")
	ctr := b.GlobalBuffer("ctr", U32)
	nn := b.ScalarParam("n", U32)
	b.ForUnroll("i", U(0), nn, U(1), 9, func(i Expr) {
		b.Atomic(ctr, U(0), AtomicAdd, U(1))
	})
	k := b.MustBuild()
	src := Format(k)
	for _, want := range []string{"#pragma unroll 9", "atomicAdd(&ctr[0u], 1u);"} {
		if !strings.Contains(src, want) {
			t.Errorf("missing %q in:\n%s", want, src)
		}
	}
}
