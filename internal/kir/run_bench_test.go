package kir

// Benchmark of the host reference executor. It is not expected to be fast
// — one goroutine per work-item and a tree-walking evaluator — but its
// throughput is the baseline that puts the simulator's interpreter numbers
// (internal/sim benchmarks, cmd/simbench) in context.

import "testing"

func BenchmarkRunReferenceExecutor(b *testing.B) {
	bb := NewKernel("spin")
	out := bb.GlobalBuffer("out", U32)
	gid := bb.Declare("gid", bb.GlobalIDX())
	acc := bb.Declare("acc", gid)
	bb.For("i", U(0), U(64), U(1), func(i Expr) {
		bb.Assign(acc, Add(Mul(acc, U(3)), U(1)))
	})
	bb.Store(out, gid, acc)
	k := bb.MustBuild()

	const threads = 1024
	buf := make([]uint32, threads)
	cfg := RunConfig{
		GridX: threads / 64, GridY: 1, BlockX: 64, BlockY: 1,
		Buffers: map[string][]uint32{"out": buf},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Run(k, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(threads*66)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mstmt/s")
}
