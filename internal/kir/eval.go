package kir

// The expression interpreter behind kir.Run, factored out so other layers
// can evaluate KIR expression trees with exactly the reference semantics.
// internal/pattern's sequential evaluator runs combinator element functions
// through EvalExpr: because the pattern evaluator and the kernel executor
// share this single implementation, a lowered pattern kernel and its host
// reference cannot drift apart in arithmetic (float rounding, shift
// masking, division-by-zero results, cast truncation).

import (
	"fmt"
	"math"
)

// EvalEnv resolves the leaves of an expression during evaluation. Resolvers
// may panic to abort evaluation (kir.Run converts panics into errors; pure
// callers should recover themselves or pre-validate the tree).
type EvalEnv interface {
	// Var resolves a scalar variable read; ok=false for an unbound name.
	Var(name string) (v uint32, ok bool)
	// Param resolves a scalar kernel parameter.
	Param(name string) uint32
	// BuiltinVal resolves a work-item identification register.
	BuiltinVal(k BuiltinKind) uint32
	// LoadWord resolves Buf[idx].
	LoadWord(buf string, idx uint32) uint32
}

func bitsOf(f float32) uint32  { return math.Float32bits(f) }
func floatOf(b uint32) float32 { return math.Float32frombits(b) }
func runBool(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// EvalExpr evaluates one expression tree against env. This is the
// definition of KIR expression semantics: all values are 32-bit words,
// floats are evaluated in float32 with Go's rounding, integer division by
// zero yields all-ones (unsigned) / the dividend (rem), and shift counts
// are masked to 5 bits.
func EvalExpr(x Expr, env EvalEnv) uint32 {
	switch x := x.(type) {
	case *ConstInt:
		return uint32(x.V)
	case *ConstFloat:
		return bitsOf(x.V)
	case *ParamRef:
		return env.Param(x.Name)
	case *VarRef:
		v, ok := env.Var(x.Name)
		if !ok {
			panic(fmt.Sprintf("unbound variable %q", x.Name))
		}
		return v
	case *Builtin:
		return env.BuiltinVal(x.Kind)
	case *Load:
		idx := EvalExpr(x.Index, env)
		return env.LoadWord(x.Buf, idx)
	case *Sel:
		if EvalExpr(x.Cond, env) != 0 {
			return EvalExpr(x.A, env)
		}
		return EvalExpr(x.B, env)
	case *Cast:
		v := EvalExpr(x.X, env)
		from, to := x.X.Type(), x.To
		switch {
		case from == to:
			return v
		case to == F32 && from == U32:
			return bitsOf(float32(v))
		case to == F32 && from == I32:
			return bitsOf(float32(int32(v)))
		case to == U32 && from == F32:
			return uint32(int64(floatOf(v)))
		case to == I32 && from == F32:
			return uint32(int32(floatOf(v)))
		default:
			return v
		}
	case *Un:
		v := EvalExpr(x.X, env)
		isF := x.X.Type() == F32
		switch x.Op {
		case OpNeg:
			if isF {
				return bitsOf(-floatOf(v))
			}
			return -v
		case OpNot:
			if x.X.Type() == Bool {
				return v ^ 1
			}
			return ^v
		case OpAbs:
			if isF {
				return bitsOf(float32(math.Abs(float64(floatOf(v)))))
			}
			if int32(v) < 0 {
				return uint32(-int32(v))
			}
			return v
		case OpSqrt:
			return bitsOf(float32(math.Sqrt(float64(floatOf(v)))))
		case OpRsqrt:
			return bitsOf(float32(1 / math.Sqrt(float64(floatOf(v)))))
		case OpSin:
			return bitsOf(float32(math.Sin(float64(floatOf(v)))))
		case OpCos:
			return bitsOf(float32(math.Cos(float64(floatOf(v)))))
		case OpExp2:
			return bitsOf(float32(math.Exp2(float64(floatOf(v)))))
		case OpLog2:
			return bitsOf(float32(math.Log2(float64(floatOf(v)))))
		}
		panic("unknown unary op")
	case *Bin:
		a := EvalExpr(x.L, env)
		b := EvalExpr(x.R, env)
		lt := x.L.Type()
		switch lt {
		case F32:
			fa, fb := floatOf(a), floatOf(b)
			switch x.Op {
			case OpAdd:
				return bitsOf(fa + fb)
			case OpSub:
				return bitsOf(fa - fb)
			case OpMul:
				return bitsOf(fa * fb)
			case OpDiv:
				return bitsOf(fa / fb)
			case OpMin:
				return bitsOf(float32(math.Min(float64(fa), float64(fb))))
			case OpMax:
				return bitsOf(float32(math.Max(float64(fa), float64(fb))))
			case OpEq:
				return runBool(fa == fb)
			case OpNe:
				return runBool(fa != fb)
			case OpLt:
				return runBool(fa < fb)
			case OpLe:
				return runBool(fa <= fb)
			case OpGt:
				return runBool(fa > fb)
			case OpGe:
				return runBool(fa >= fb)
			}
		case I32:
			sa, sb := int32(a), int32(b)
			switch x.Op {
			case OpAdd:
				return uint32(sa + sb)
			case OpSub:
				return uint32(sa - sb)
			case OpMul:
				return uint32(sa * sb)
			case OpDiv:
				if sb == 0 {
					return ^uint32(0)
				}
				return uint32(sa / sb)
			case OpRem:
				if sb == 0 {
					return a
				}
				return uint32(sa % sb)
			case OpMin:
				if sa < sb {
					return a
				}
				return b
			case OpMax:
				if sa > sb {
					return a
				}
				return b
			case OpAnd:
				return a & b
			case OpOr:
				return a | b
			case OpXor:
				return a ^ b
			case OpShl:
				return a << (b & 31)
			case OpShr:
				return uint32(sa >> (b & 31))
			case OpEq:
				return runBool(sa == sb)
			case OpNe:
				return runBool(sa != sb)
			case OpLt:
				return runBool(sa < sb)
			case OpLe:
				return runBool(sa <= sb)
			case OpGt:
				return runBool(sa > sb)
			case OpGe:
				return runBool(sa >= sb)
			}
		default: // U32 and Bool
			switch x.Op {
			case OpAdd:
				return a + b
			case OpSub:
				return a - b
			case OpMul:
				return a * b
			case OpDiv:
				if b == 0 {
					return ^uint32(0)
				}
				return a / b
			case OpRem:
				if b == 0 {
					return a
				}
				return a % b
			case OpMin:
				if a < b {
					return a
				}
				return b
			case OpMax:
				if a > b {
					return a
				}
				return b
			case OpAnd:
				return a & b
			case OpOr:
				return a | b
			case OpXor:
				return a ^ b
			case OpShl:
				return a << (b & 31)
			case OpShr:
				return a >> (b & 31)
			case OpEq:
				return runBool(a == b)
			case OpNe:
				return runBool(a != b)
			case OpLt:
				return runBool(a < b)
			case OpLe:
				return runBool(a <= b)
			case OpGt:
				return runBool(a > b)
			case OpGe:
				return runBool(a >= b)
			case OpLAnd:
				return runBool(a != 0 && b != 0)
			case OpLOr:
				return runBool(a != 0 || b != 0)
			}
		}
		panic("unknown binary op")
	default:
		panic(fmt.Sprintf("unknown expression %T", x))
	}
}

// PureEnv evaluates expressions whose only leaves are constants and the
// variables bound in Vars — no parameters, builtins or memory. It is the
// environment internal/pattern uses to evaluate combinator element
// functions on the host.
type PureEnv struct {
	Vars map[string]uint32
}

// Var resolves a bound variable.
func (e PureEnv) Var(name string) (uint32, bool) { v, ok := e.Vars[name]; return v, ok }

// Param panics: pure expressions have no kernel parameters.
func (e PureEnv) Param(name string) uint32 {
	panic(fmt.Sprintf("kir: PureEnv: parameter %q in a pure expression", name))
}

// BuiltinVal panics: pure expressions have no work-item identity.
func (e PureEnv) BuiltinVal(k BuiltinKind) uint32 {
	panic(fmt.Sprintf("kir: PureEnv: builtin %s in a pure expression", k))
}

// LoadWord panics: pure expressions do not touch memory.
func (e PureEnv) LoadWord(buf string, idx uint32) uint32 {
	panic(fmt.Sprintf("kir: PureEnv: load from %q in a pure expression", buf))
}
