package kir

import (
	"testing"
)

func sampleBody() []Stmt {
	// acc = acc + in[i]*2; if (i < 4) { acc = acc ^ i } ; for j := 0; j < i; j++ { acc = acc + j }
	return []Stmt{
		&AssignStmt{Name: "acc", Value: Add(&VarRef{Name: "acc", T: U32},
			Mul(&Load{Buf: "in", Index: &VarRef{Name: "i", T: U32}, T: U32}, U(2)))},
		&IfStmt{Cond: Lt(&VarRef{Name: "i", T: U32}, U(4)),
			Then: []Stmt{&AssignStmt{Name: "acc", Value: Xor(&VarRef{Name: "acc", T: U32}, &VarRef{Name: "i", T: U32})}}},
		&ForStmt{Var: "j", T: U32, Init: U(0), Limit: &VarRef{Name: "i", T: U32}, Step: U(1),
			Body: []Stmt{&AssignStmt{Name: "acc", Value: Add(&VarRef{Name: "acc", T: U32}, &VarRef{Name: "j", T: U32})}}},
	}
}

func countRefs(stmts []Stmt, name string) int {
	n := 0
	var walkE func(Expr)
	walkE = func(e Expr) {
		switch e := e.(type) {
		case *VarRef:
			if e.Name == name {
				n++
			}
		case *Bin:
			walkE(e.L)
			walkE(e.R)
		case *Un:
			walkE(e.X)
		case *Sel:
			walkE(e.Cond)
			walkE(e.A)
			walkE(e.B)
		case *Cast:
			walkE(e.X)
		case *Load:
			walkE(e.Index)
		}
	}
	var walkS func([]Stmt)
	walkS = func(ss []Stmt) {
		for _, s := range ss {
			switch s := s.(type) {
			case *DeclStmt:
				walkE(s.Init)
			case *AssignStmt:
				walkE(s.Value)
			case *StoreStmt:
				walkE(s.Index)
				walkE(s.Value)
			case *AtomicStmt:
				walkE(s.Index)
				walkE(s.Value)
			case *IfStmt:
				walkE(s.Cond)
				walkS(s.Then)
				walkS(s.Else)
			case *ForStmt:
				walkE(s.Init)
				walkE(s.Limit)
				walkE(s.Step)
				walkS(s.Body)
			}
		}
	}
	walkS(stmts)
	return n
}

func TestSubstVarReplacesAllReads(t *testing.T) {
	body := sampleBody()
	before := countRefs(body, "i")
	if before == 0 {
		t.Fatal("sample body should reference i")
	}
	out := SubstVar(body, "i", U(7))
	if got := countRefs(out, "i"); got != 0 {
		t.Errorf("%d references to i survived substitution", got)
	}
	// The original is untouched (deep copy).
	if countRefs(body, "i") != before {
		t.Error("SubstVar mutated its input")
	}
}

func TestSubstVarStopsAtShadowing(t *testing.T) {
	body := []Stmt{
		&AssignStmt{Name: "x", Value: &VarRef{Name: "v", T: U32}},
		&DeclStmt{Name: "v", T: U32, Init: U(1)}, // shadows from here on
		&AssignStmt{Name: "x", Value: &VarRef{Name: "v", T: U32}},
	}
	out := SubstVar(body, "v", U(9))
	if countRefs(out, "v") != 1 {
		t.Errorf("substitution should stop at the shadowing declaration: %d refs left", countRefs(out, "v"))
	}
	// A loop over the same name shadows its body.
	loop := []Stmt{&ForStmt{Var: "v", T: U32, Init: U(0), Limit: U(3), Step: U(1),
		Body: []Stmt{&AssignStmt{Name: "x", Value: &VarRef{Name: "v", T: U32}}}}}
	out = SubstVar(loop, "v", U(9))
	if countRefs(out, "v") != 1 {
		t.Error("loop variable should shadow substitution inside its body")
	}
}

func TestCloneStmtsIsDeep(t *testing.T) {
	body := sampleBody()
	cl := CloneStmts(body)
	// Mutate the clone, original must not change.
	cl[0].(*AssignStmt).Value = U(0)
	if _, ok := body[0].(*AssignStmt).Value.(*Bin); !ok {
		t.Error("clone shares expression nodes with the original")
	}
	iff := cl[1].(*IfStmt)
	iff.Then[0].(*AssignStmt).Name = "other"
	if body[1].(*IfStmt).Then[0].(*AssignStmt).Name != "acc" {
		t.Error("clone shares nested statements")
	}
}

func TestAssignsVar(t *testing.T) {
	body := sampleBody()
	if !AssignsVar(body, "acc") {
		t.Error("acc is assigned")
	}
	if AssignsVar(body, "i") {
		t.Error("i is never assigned")
	}
	atomic := []Stmt{&AtomicStmt{Buf: "b", Index: U(0), Value: U(1), Op: AtomicAdd, Result: "r"}}
	if !AssignsVar(atomic, "r") {
		t.Error("atomic result counts as an assignment")
	}
	inner := []Stmt{&ForStmt{Var: "k", T: U32, Init: U(0), Limit: U(2), Step: U(1),
		Body: []Stmt{&AssignStmt{Name: "k2", Value: U(0)}}}}
	if !AssignsVar(inner, "k2") {
		t.Error("assignments inside loops count")
	}
	if AssignsVar(inner, "k") {
		t.Error("the loop's own variable update does not count as a body assignment")
	}
}

func TestReadVars(t *testing.T) {
	e := Add(Mul(&VarRef{Name: "a", T: U32}, U(2)),
		Select(Lt(&VarRef{Name: "b", T: U32}, U(1)),
			&Load{Buf: "buf", Index: &VarRef{Name: "c", T: U32}, T: U32},
			CastTo(U32, Neg(&VarRef{Name: "d", T: I32}))))
	got := map[string]bool{}
	ReadVars(e, got)
	for _, want := range []string{"a", "b", "c", "d"} {
		if !got[want] {
			t.Errorf("ReadVars missed %q", want)
		}
	}
	if len(got) != 4 {
		t.Errorf("ReadVars found extras: %v", got)
	}
}

func TestCountNodesGrowsWithBody(t *testing.T) {
	small := []Stmt{&AssignStmt{Name: "x", Value: U(1)}}
	big := sampleBody()
	if CountNodes(small) >= CountNodes(big) {
		t.Error("CountNodes should grow with statement complexity")
	}
	if CountNodes(nil) != 0 {
		t.Error("empty body counts zero")
	}
}

func TestBuilderErrorPaths(t *testing.T) {
	b := NewKernel("err")
	out := b.GlobalBuffer("out", U32)
	b.Assign(U(1), U(2)) // not a variable reference
	if _, err := b.Build(); err == nil {
		t.Error("Assign to non-variable should fail the build")
	}

	b2 := NewKernel("err2")
	b2.GlobalBuffer("out", U32)
	b2.Declare("x", nil)
	if _, err := b2.Build(); err == nil {
		t.Error("Declare with nil init should fail the build")
	}

	b3 := NewKernel("err3")
	o3 := b3.GlobalBuffer("out", U32)
	b3.AtomicResult(o3, U(0), AtomicAdd, U(1), U(5))
	if _, err := b3.Build(); err == nil {
		t.Error("AtomicResult with non-variable target should fail the build")
	}

	defer func() {
		if recover() == nil {
			t.Error("MustBuild should panic on an invalid kernel")
		}
	}()
	b4 := NewKernel("err4")
	b4.GlobalBuffer("x", U32)
	b4.GlobalBuffer("x", U32)
	b4.MustBuild()
	_ = out
}
