package kir

// CheckUniformBarriers verifies, conservatively, that every barrier in the
// kernel is reached by all threads of a work group: barriers may not appear
// under control flow whose condition or trip count can differ between
// threads. A kernel that passes is schedule-independent at its barriers on
// any warp width, which is the property the differential fuzzer
// (internal/fuzz) relies on and Table VI's "FL" entries show real kernels
// violating.
//
// The analysis tracks a set of provably work-group-uniform scalar
// variables: an expression is uniform when it reads only literals, kernel
// parameters, block-uniform builtins (block ids, block/grid dimensions,
// warp size — never thread ids) and uniform variables. Memory loads are
// never considered uniform. The check is sound but incomplete: it may
// reject a kernel whose divergent-looking guard is in fact uniform at run
// time, but it never accepts a kernel that can diverge at a barrier.
func CheckUniformBarriers(k *Kernel) error {
	u := &uniformChecker{k: k, uniform: map[string]bool{}}
	return u.block(k.Body, "")
}

type uniformChecker struct {
	k       *Kernel
	uniform map[string]bool
}

// block walks stmts; divergedBy is empty at uniform control flow, or a
// human-readable description of the enclosing non-uniform construct.
func (u *uniformChecker) block(stmts []Stmt, divergedBy string) error {
	for _, s := range stmts {
		switch s := s.(type) {
		case *DeclStmt:
			u.uniform[s.Name] = divergedBy == "" && u.exprUniform(s.Init)
		case *AssignStmt:
			if divergedBy != "" || !u.exprUniform(s.Value) {
				u.uniform[s.Name] = false
			}
		case *IfStmt:
			inner := divergedBy
			if inner == "" && !u.exprUniform(s.Cond) {
				inner = "if (" + FormatExpr(s.Cond) + ")"
			}
			if err := u.block(s.Then, inner); err != nil {
				return err
			}
			if err := u.block(s.Else, inner); err != nil {
				return err
			}
		case *ForStmt:
			inner := divergedBy
			if inner == "" &&
				!(u.exprUniform(s.Init) && u.exprUniform(s.Limit) && u.exprUniform(s.Step)) {
				inner = "for " + s.Var + " with thread-dependent bounds"
			}
			// Any variable assigned in the body may take a different value
			// per thread on later iterations; demote them all before
			// walking so uses inside the loop see the conservative state.
			u.demoteAssigned(s.Body)
			u.uniform[s.Var] = inner == ""
			if err := u.block(s.Body, inner); err != nil {
				return err
			}
			delete(u.uniform, s.Var)
		case *BarrierStmt:
			if divergedBy != "" {
				return checkErrf(u.k, ErrNonUniformBarrier,
					"barrier under non-uniform control flow (%s)", divergedBy)
			}
		}
	}
	return nil
}

func (u *uniformChecker) demoteAssigned(stmts []Stmt) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *AssignStmt:
			u.uniform[s.Name] = false
		case *AtomicStmt:
			if s.Result != "" {
				u.uniform[s.Result] = false
			}
		case *IfStmt:
			u.demoteAssigned(s.Then)
			u.demoteAssigned(s.Else)
		case *ForStmt:
			u.demoteAssigned(s.Body)
		}
	}
}

func (u *uniformChecker) exprUniform(e Expr) bool {
	switch e := e.(type) {
	case nil:
		return false
	case *ConstInt, *ConstFloat, *ParamRef:
		return true
	case *VarRef:
		return u.uniform[e.Name]
	case *Builtin:
		switch e.Kind {
		case TidX, TidY:
			return false
		default: // block ids and dimensions are the same for every thread
			return true
		}
	case *Bin:
		return u.exprUniform(e.L) && u.exprUniform(e.R)
	case *Un:
		return u.exprUniform(e.X)
	case *Sel:
		return u.exprUniform(e.Cond) && u.exprUniform(e.A) && u.exprUniform(e.B)
	case *Cast:
		return u.exprUniform(e.X)
	case *Load:
		return false
	default:
		return false
	}
}
