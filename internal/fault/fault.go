// Package fault is a deterministic, seeded fault injector modelling the
// failure modes of the paper-era (2010) GPU driver stacks the measurements
// were taken on: transient kernel-launch failures, CL_OUT_OF_RESOURCES
// aborts, runaway kernels killed by the display watchdog, and corrupted
// cached results. The injector plugs into the scheduler at the device seam
// (sched.Options.Injector), so every layer above — retry, circuit breaker,
// graceful degradation — can be exercised under chaos.
//
// Faults are deterministic per (seed, job key, attempt number): two runs
// with the same seed and the same job stream inject exactly the same
// faults, which makes chaos failures reproducible and bisectable the same
// way fuzzer failures are.
package fault

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"
)

// Kind enumerates the modelled failure modes.
type Kind int

const (
	// KindTransientLaunch is a launch that fails once and succeeds on
	// retry — the spurious CL_INVALID_COMMAND_QUEUE / launch-timeout
	// class of 2010-era driver bugs.
	KindTransientLaunch Kind = iota
	// KindOutOfResources is a launch rejected with an out-of-resources
	// error (the Table VI "ABT" mechanism happening spuriously).
	KindOutOfResources
	// KindHang is a kernel that never completes: the attempt blocks until
	// the scheduler's watchdog cancels it.
	KindHang
	// KindCorruptCache flips the checksum of a stored cache entry, so the
	// next read detects the corruption and must re-execute.
	KindCorruptCache
	// KindSlowLaunch is a launch that completes correctly but only after
	// an injected delay — the straggler-shard failure mode request
	// hedging exists for. The scheduler sleeps Fault.Delay (interruptibly)
	// before running the attempt for real.
	KindSlowLaunch
	// KindTransferError is a host<->device copy that fails for one shard
	// attempt — the co-execution analogue of KindTransientLaunch. The
	// shard is retried (possibly on another device).
	KindTransferError
	// KindDeviceLost is a whole device disappearing mid-run (driver reset,
	// Xid, hot unplug). Every unfinished shard on the device must be
	// redistributed to the survivors.
	KindDeviceLost

	numKinds
)

// String returns the metric-friendly name of the kind.
func (k Kind) String() string {
	switch k {
	case KindTransientLaunch:
		return "transient_launch"
	case KindOutOfResources:
		return "out_of_resources"
	case KindHang:
		return "hang"
	case KindCorruptCache:
		return "corrupt_cache"
	case KindSlowLaunch:
		return "slow_launch"
	case KindTransferError:
		return "transfer_error"
	case KindDeviceLost:
		return "device_lost"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Typed errors for the injected failures. The scheduler's taxonomy
// classifies ErrTransientLaunch as retryable and ErrOutOfResources as
// permanent; both are errors.Is-able.
var (
	ErrTransientLaunch = errors.New("fault: injected transient launch failure")
	ErrOutOfResources  = errors.New("fault: injected out of resources")
	// ErrTransfer is the typed error for an injected host<->device copy
	// failure; the co-execution scheduler classifies it retryable.
	ErrTransfer = errors.New("fault: injected transfer error")
	// ErrDeviceLost is the typed error for an injected device loss; the
	// co-execution scheduler redistributes rather than retries in place.
	ErrDeviceLost = errors.New("fault: injected device lost")
)

// Schedule sets the per-attempt injection probabilities. The rates are
// evaluated as a ladder (transient, then OOR, then hang) against one
// uniform draw, so their sum must be ≤ 1.
type Schedule struct {
	// TransientRate is the probability a launch attempt fails with
	// ErrTransientLaunch.
	TransientRate float64
	// OORRate is the probability a launch attempt fails with
	// ErrOutOfResources.
	OORRate float64
	// HangRate is the probability a launch attempt hangs until the
	// watchdog cancels it.
	HangRate float64
	// CorruptRate is the probability a cache store is corrupted.
	CorruptRate float64
	// SlowRate is the probability a launch attempt is delayed by
	// SlowDelay before executing normally — a straggler, not a failure.
	// It rides the same probability ladder as the launch faults.
	SlowRate float64
	// SlowDelay is how long a slow launch stalls (default 100ms when
	// SlowRate > 0 and SlowDelay is zero).
	SlowDelay time.Duration
	// MaxPerKey caps how many launch faults are injected for one job key
	// (0 = unlimited). Setting it below the scheduler's retry budget
	// guarantees every job eventually succeeds, which is what the
	// bit-identical chaos comparison needs.
	MaxPerKey int

	// TransferRate is the probability one co-execution shard attempt fails
	// its host<->device copy with ErrTransfer. Shard faults ride their own
	// probability ladder (ShardLaunch), separate from the launch ladder.
	TransferRate float64
	// DeviceLostRate is the probability one shard attempt takes its whole
	// device down with ErrDeviceLost.
	DeviceLostRate float64
}

// Validate reports whether the rates form a probability ladder.
func (s Schedule) Validate() error {
	for _, r := range []float64{s.TransientRate, s.OORRate, s.HangRate, s.CorruptRate, s.SlowRate, s.TransferRate, s.DeviceLostRate} {
		if r < 0 || r > 1 {
			return fmt.Errorf("fault: rate %v out of [0,1]", r)
		}
	}
	if sum := s.TransientRate + s.OORRate + s.HangRate + s.SlowRate; sum > 1 {
		return fmt.Errorf("fault: launch-fault rates sum to %v > 1", sum)
	}
	if sum := s.TransferRate + s.DeviceLostRate; sum > 1 {
		return fmt.Errorf("fault: shard-fault rates sum to %v > 1", sum)
	}
	if s.SlowDelay < 0 {
		return fmt.Errorf("fault: negative SlowDelay %v", s.SlowDelay)
	}
	if s.MaxPerKey < 0 {
		return fmt.Errorf("fault: negative MaxPerKey %d", s.MaxPerKey)
	}
	return nil
}

// A Fault is one injected failure decision.
type Fault struct {
	Kind Kind
	// Err is the typed error for TransientLaunch / OutOfResources faults;
	// nil for Hang (the caller owns the blocking-until-cancelled part)
	// and for SlowLaunch (the attempt still runs, after Delay).
	Err error
	// Delay is how long a SlowLaunch fault stalls the attempt.
	Delay time.Duration
}

// Injector decides, deterministically, which attempts fail. A nil
// *Injector is valid and injects nothing, so callers can hold one
// unconditionally.
type Injector struct {
	seed uint64
	sch  Schedule

	mu       sync.Mutex
	launches map[string]uint64 // per-key launch-attempt counter
	stores   map[string]uint64 // per-key cache-store counter
	faults   map[string]int    // per-key injected launch-fault count

	counts [numKinds]atomic.Uint64
}

// New builds an injector for the seed and schedule. It panics on an
// invalid schedule — an injector is test/chaos plumbing, and a bad
// schedule is a programming error.
func New(seed uint64, sch Schedule) *Injector {
	if err := sch.Validate(); err != nil {
		panic(err)
	}
	return &Injector{
		seed:     seed,
		sch:      sch,
		launches: map[string]uint64{},
		stores:   map[string]uint64{},
		faults:   map[string]int{},
	}
}

// Seed returns the injector's seed (for logging chaos runs).
func (in *Injector) Seed() uint64 {
	if in == nil {
		return 0
	}
	return in.seed
}

// Launch is called once per launch attempt for the job key and returns
// the fault to inject, or nil to let the attempt run for real. The
// decision depends only on (seed, key, attempt number), never on timing.
func (in *Injector) Launch(key string) *Fault {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	n := in.launches[key]
	in.launches[key] = n + 1
	capped := in.sch.MaxPerKey > 0 && in.faults[key] >= in.sch.MaxPerKey
	if !capped {
		// Decide while still holding the lock so the per-key fault count
		// stays consistent with the decision.
		u := in.uniform(key, n, saltLaunch)
		var f *Fault
		switch {
		case u < in.sch.TransientRate:
			f = &Fault{Kind: KindTransientLaunch,
				Err: fmt.Errorf("fault: %s attempt %d: %w", key, n, ErrTransientLaunch)}
		case u < in.sch.TransientRate+in.sch.OORRate:
			f = &Fault{Kind: KindOutOfResources,
				Err: fmt.Errorf("fault: %s attempt %d: %w", key, n, ErrOutOfResources)}
		case u < in.sch.TransientRate+in.sch.OORRate+in.sch.HangRate:
			f = &Fault{Kind: KindHang}
		case u < in.sch.TransientRate+in.sch.OORRate+in.sch.HangRate+in.sch.SlowRate:
			delay := in.sch.SlowDelay
			if delay <= 0 {
				delay = 100 * time.Millisecond
			}
			f = &Fault{Kind: KindSlowLaunch, Delay: delay}
		}
		if f != nil {
			if f.Kind != KindSlowLaunch {
				// Slow launches still succeed, so they don't count against
				// MaxPerKey — the cap exists to guarantee retried jobs
				// eventually get a clean attempt.
				in.faults[key]++
			}
			in.mu.Unlock()
			in.counts[f.Kind].Add(1)
			return f
		}
	}
	in.mu.Unlock()
	return nil
}

// ShardLaunch is called once per co-execution shard attempt and returns
// the fault to inject, or nil for a clean attempt. The decision depends
// only on (seed, device, shard, per-device attempt number) — the
// "deterministic per-(seed,device,shard) schedule" contract — so the same
// seed kills the same devices at the same points in every run.
//
// MaxPerKey accounting is keyed by the shard alone, not by (device,
// shard): when a shard is redistributed to a fresh device after a loss,
// the retries there do NOT restart the cap count — the same exemption
// hedged requests get. Without this, a chaos schedule could starve
// recovery into a spurious permanent error by drawing fresh faults on
// every survivor. Device losses never count against the cap either: they
// are device-level events, and charging them to whichever shard happened
// to observe them first would make the cap's guarantee depend on
// scheduling order.
func (in *Injector) ShardLaunch(device, shard string) *Fault {
	if in == nil {
		return nil
	}
	dk := device + "\x00" + shard
	in.mu.Lock()
	n := in.launches[dk]
	in.launches[dk] = n + 1
	capped := in.sch.MaxPerKey > 0 && in.faults[shard] >= in.sch.MaxPerKey
	var f *Fault
	if !capped {
		u := in.uniform(dk, n, saltShard)
		switch {
		case u < in.sch.TransferRate:
			f = &Fault{Kind: KindTransferError,
				Err: fmt.Errorf("fault: %s shard %s attempt %d: %w", device, shard, n, ErrTransfer)}
			in.faults[shard]++
		case u < in.sch.TransferRate+in.sch.DeviceLostRate:
			f = &Fault{Kind: KindDeviceLost,
				Err: fmt.Errorf("fault: %s shard %s attempt %d: %w", device, shard, n, ErrDeviceLost)}
		}
	}
	in.mu.Unlock()
	if f != nil {
		in.counts[f.Kind].Add(1)
	}
	return f
}

// CorruptStore is called once per cache store for the job key and reports
// whether this stored entry should be corrupted.
func (in *Injector) CorruptStore(key string) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	n := in.stores[key]
	in.stores[key] = n + 1
	u := in.uniform(key, n, saltStore)
	in.mu.Unlock()
	if u < in.sch.CorruptRate {
		in.counts[KindCorruptCache].Add(1)
		return true
	}
	return false
}

// Counts returns how many faults of each kind have been injected so far,
// keyed by Kind.String().
func (in *Injector) Counts() map[string]uint64 {
	out := map[string]uint64{}
	if in == nil {
		return out
	}
	for k := Kind(0); k < numKinds; k++ {
		out[k.String()] = in.counts[k].Load()
	}
	return out
}

// Total returns the total number of injected faults.
func (in *Injector) Total() uint64 {
	if in == nil {
		return 0
	}
	var t uint64
	for k := Kind(0); k < numKinds; k++ {
		t += in.counts[k].Load()
	}
	return t
}

// Domain-separation salts so launch and store decisions for the same
// (key, n) are independent.
const (
	saltLaunch = 0x1cebe1a9
	saltStore  = 0x5ca1ab1e
	saltShard  = 0xc0e8ec5d
)

// uniform maps (seed, key, n, salt) to a uniform draw in [0,1) via an
// fnv64a hash mixed through splitmix64 — the same style of stateless
// hashing the workload generators use, so runs are position-independent.
func (in *Injector) uniform(key string, n, salt uint64) float64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	x := in.seed ^ h.Sum64() ^ (n * 0x9e3779b97f4a7c15) ^ salt
	// splitmix64 finaliser.
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}
