package fault

import (
	"errors"
	"fmt"
	"math"
	"testing"
)

// replay collects the fault decisions for nAttempts launches of each key.
func replay(in *Injector, keys []string, nAttempts int) []string {
	var out []string
	for _, k := range keys {
		for i := 0; i < nAttempts; i++ {
			f := in.Launch(k)
			if f == nil {
				out = append(out, "-")
			} else {
				out = append(out, f.Kind.String())
			}
		}
	}
	return out
}

func TestDeterministicPerSeedAndKey(t *testing.T) {
	sch := Schedule{TransientRate: 0.3, OORRate: 0.05, HangRate: 0.1, CorruptRate: 0.2}
	keys := []string{"job-a", "job-b", "job-c"}

	a := replay(New(42, sch), keys, 20)
	b := replay(New(42, sch), keys, 20)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("same seed produced different fault schedules")
	}

	c := replay(New(43, sch), keys, 20)
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatal("different seeds produced identical fault schedules")
	}

	// Interleaving order must not matter: decisions depend only on the
	// per-key attempt number.
	in1, in2 := New(7, sch), New(7, sch)
	var inter, seq []string
	for i := 0; i < 10; i++ {
		for _, k := range keys {
			if f := in1.Launch(k); f != nil {
				inter = append(inter, k+":"+f.Kind.String())
			} else {
				inter = append(inter, k+":-")
			}
		}
	}
	for _, k := range keys {
		for i := 0; i < 10; i++ {
			if f := in2.Launch(k); f != nil {
				seq = append(seq, k+":"+f.Kind.String())
			} else {
				seq = append(seq, k+":-")
			}
		}
	}
	// Compare per-key subsequences.
	count := func(s []string, k string) string {
		var got string
		for _, e := range s {
			if len(e) > len(k) && e[:len(k)] == k {
				got += e
			}
		}
		return got
	}
	for _, k := range keys {
		if count(inter, k) != count(seq, k) {
			t.Fatalf("key %s: interleaved and sequential replays diverge", k)
		}
	}
}

func TestRatesApproximatelyHonoured(t *testing.T) {
	sch := Schedule{TransientRate: 0.3, OORRate: 0.05, HangRate: 0.05}
	in := New(1, sch)
	const n = 20000
	var transient, oor, hang int
	for i := 0; i < n; i++ {
		switch f := in.Launch(fmt.Sprintf("key-%d", i)); {
		case f == nil:
		case f.Kind == KindTransientLaunch:
			transient++
			if !errors.Is(f.Err, ErrTransientLaunch) {
				t.Fatal("transient fault error is not ErrTransientLaunch")
			}
		case f.Kind == KindOutOfResources:
			oor++
			if !errors.Is(f.Err, ErrOutOfResources) {
				t.Fatal("OOR fault error is not ErrOutOfResources")
			}
		case f.Kind == KindHang:
			hang++
			if f.Err != nil {
				t.Fatal("hang fault must carry no error (the seam blocks instead)")
			}
		}
	}
	check := func(name string, got int, want float64) {
		frac := float64(got) / n
		if math.Abs(frac-want) > 0.02 {
			t.Errorf("%s rate = %.3f, want ~%.2f", name, frac, want)
		}
	}
	check("transient", transient, 0.3)
	check("oor", oor, 0.05)
	check("hang", hang, 0.05)

	counts := in.Counts()
	if counts["transient_launch"] != uint64(transient) || counts["hang"] != uint64(hang) {
		t.Fatalf("Counts() = %v, want transient=%d hang=%d", counts, transient, hang)
	}
	if in.Total() != uint64(transient+oor+hang) {
		t.Fatalf("Total() = %d, want %d", in.Total(), transient+oor+hang)
	}
}

func TestMaxPerKeyBoundsFaults(t *testing.T) {
	in := New(99, Schedule{TransientRate: 1.0, MaxPerKey: 3})
	var faults int
	for i := 0; i < 10; i++ {
		if in.Launch("only-key") != nil {
			faults++
		}
	}
	if faults != 3 {
		t.Fatalf("injected %d faults, want exactly MaxPerKey=3", faults)
	}
}

func TestCorruptStoreIndependentOfLaunch(t *testing.T) {
	in := New(5, Schedule{CorruptRate: 1.0})
	if f := in.Launch("k"); f != nil {
		t.Fatalf("launch fault injected with zero launch rates: %v", f.Kind)
	}
	if !in.CorruptStore("k") {
		t.Fatal("CorruptStore = false with CorruptRate 1.0")
	}
	if got := in.Counts()["corrupt_cache"]; got != 1 {
		t.Fatalf("corrupt_cache count = %d, want 1", got)
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.Launch("k") != nil || in.CorruptStore("k") || in.Total() != 0 || in.Seed() != 0 {
		t.Fatal("nil injector must inject nothing")
	}
	if len(in.Counts()) != 0 {
		t.Fatal("nil injector Counts must be empty")
	}
}

func TestScheduleValidate(t *testing.T) {
	bad := []Schedule{
		{TransientRate: -0.1},
		{TransientRate: 1.1},
		{TransientRate: 0.5, OORRate: 0.4, HangRate: 0.3},
		{MaxPerKey: -1},
	}
	for i, s := range bad {
		if s.Validate() == nil {
			t.Errorf("schedule %d: Validate() = nil, want error", i)
		}
	}
	if err := (Schedule{TransientRate: 0.3, OORRate: 0.1, HangRate: 0.1, CorruptRate: 0.5}).Validate(); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
}
