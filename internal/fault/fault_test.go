package fault

import (
	"errors"
	"fmt"
	"math"
	"testing"
)

// replay collects the fault decisions for nAttempts launches of each key.
func replay(in *Injector, keys []string, nAttempts int) []string {
	var out []string
	for _, k := range keys {
		for i := 0; i < nAttempts; i++ {
			f := in.Launch(k)
			if f == nil {
				out = append(out, "-")
			} else {
				out = append(out, f.Kind.String())
			}
		}
	}
	return out
}

func TestDeterministicPerSeedAndKey(t *testing.T) {
	sch := Schedule{TransientRate: 0.3, OORRate: 0.05, HangRate: 0.1, CorruptRate: 0.2}
	keys := []string{"job-a", "job-b", "job-c"}

	a := replay(New(42, sch), keys, 20)
	b := replay(New(42, sch), keys, 20)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("same seed produced different fault schedules")
	}

	c := replay(New(43, sch), keys, 20)
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatal("different seeds produced identical fault schedules")
	}

	// Interleaving order must not matter: decisions depend only on the
	// per-key attempt number.
	in1, in2 := New(7, sch), New(7, sch)
	var inter, seq []string
	for i := 0; i < 10; i++ {
		for _, k := range keys {
			if f := in1.Launch(k); f != nil {
				inter = append(inter, k+":"+f.Kind.String())
			} else {
				inter = append(inter, k+":-")
			}
		}
	}
	for _, k := range keys {
		for i := 0; i < 10; i++ {
			if f := in2.Launch(k); f != nil {
				seq = append(seq, k+":"+f.Kind.String())
			} else {
				seq = append(seq, k+":-")
			}
		}
	}
	// Compare per-key subsequences.
	count := func(s []string, k string) string {
		var got string
		for _, e := range s {
			if len(e) > len(k) && e[:len(k)] == k {
				got += e
			}
		}
		return got
	}
	for _, k := range keys {
		if count(inter, k) != count(seq, k) {
			t.Fatalf("key %s: interleaved and sequential replays diverge", k)
		}
	}
}

func TestRatesApproximatelyHonoured(t *testing.T) {
	sch := Schedule{TransientRate: 0.3, OORRate: 0.05, HangRate: 0.05}
	in := New(1, sch)
	const n = 20000
	var transient, oor, hang int
	for i := 0; i < n; i++ {
		switch f := in.Launch(fmt.Sprintf("key-%d", i)); {
		case f == nil:
		case f.Kind == KindTransientLaunch:
			transient++
			if !errors.Is(f.Err, ErrTransientLaunch) {
				t.Fatal("transient fault error is not ErrTransientLaunch")
			}
		case f.Kind == KindOutOfResources:
			oor++
			if !errors.Is(f.Err, ErrOutOfResources) {
				t.Fatal("OOR fault error is not ErrOutOfResources")
			}
		case f.Kind == KindHang:
			hang++
			if f.Err != nil {
				t.Fatal("hang fault must carry no error (the seam blocks instead)")
			}
		}
	}
	check := func(name string, got int, want float64) {
		frac := float64(got) / n
		if math.Abs(frac-want) > 0.02 {
			t.Errorf("%s rate = %.3f, want ~%.2f", name, frac, want)
		}
	}
	check("transient", transient, 0.3)
	check("oor", oor, 0.05)
	check("hang", hang, 0.05)

	counts := in.Counts()
	if counts["transient_launch"] != uint64(transient) || counts["hang"] != uint64(hang) {
		t.Fatalf("Counts() = %v, want transient=%d hang=%d", counts, transient, hang)
	}
	if in.Total() != uint64(transient+oor+hang) {
		t.Fatalf("Total() = %d, want %d", in.Total(), transient+oor+hang)
	}
}

func TestMaxPerKeyBoundsFaults(t *testing.T) {
	in := New(99, Schedule{TransientRate: 1.0, MaxPerKey: 3})
	var faults int
	for i := 0; i < 10; i++ {
		if in.Launch("only-key") != nil {
			faults++
		}
	}
	if faults != 3 {
		t.Fatalf("injected %d faults, want exactly MaxPerKey=3", faults)
	}
}

func TestCorruptStoreIndependentOfLaunch(t *testing.T) {
	in := New(5, Schedule{CorruptRate: 1.0})
	if f := in.Launch("k"); f != nil {
		t.Fatalf("launch fault injected with zero launch rates: %v", f.Kind)
	}
	if !in.CorruptStore("k") {
		t.Fatal("CorruptStore = false with CorruptRate 1.0")
	}
	if got := in.Counts()["corrupt_cache"]; got != 1 {
		t.Fatalf("corrupt_cache count = %d, want 1", got)
	}
}

func TestShardLaunchDeterministicPerDeviceShard(t *testing.T) {
	sch := Schedule{TransferRate: 0.3, DeviceLostRate: 0.1}
	shard := func(in *Injector) []string {
		var out []string
		for _, dev := range []string{"gpu0", "gpu1"} {
			for s := 0; s < 10; s++ {
				for a := 0; a < 3; a++ {
					f := in.ShardLaunch(dev, fmt.Sprintf("shard-%d", s))
					if f == nil {
						out = append(out, "-")
					} else {
						out = append(out, f.Kind.String())
					}
				}
			}
		}
		return out
	}
	a, b := shard(New(11, sch)), shard(New(11, sch))
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("same seed produced different shard fault schedules")
	}
	if fmt.Sprint(a) == fmt.Sprint(shard(New(12, sch))) {
		t.Fatal("different seeds produced identical shard fault schedules")
	}

	// The two fault kinds must appear and carry their typed errors.
	in := New(3, Schedule{TransferRate: 0.5, DeviceLostRate: 0.5})
	var sawTransfer, sawLost bool
	for s := 0; s < 50; s++ {
		switch f := in.ShardLaunch("dev", fmt.Sprintf("s%d", s)); {
		case f == nil:
			t.Fatal("rates sum to 1 but no fault injected")
		case f.Kind == KindTransferError:
			sawTransfer = true
			if !errors.Is(f.Err, ErrTransfer) {
				t.Fatal("transfer fault error is not ErrTransfer")
			}
		case f.Kind == KindDeviceLost:
			sawLost = true
			if !errors.Is(f.Err, ErrDeviceLost) {
				t.Fatal("device-lost fault error is not ErrDeviceLost")
			}
		}
	}
	if !sawTransfer || !sawLost {
		t.Fatalf("fault mix not exercised: transfer=%v lost=%v", sawTransfer, sawLost)
	}
}

// TestShardCapSharedAcrossDevices is the redistribution exemption: the
// MaxPerKey budget for a shard is spent once, globally — moving the shard
// to a fresh device must not grant the chaos schedule a fresh budget to
// starve recovery with.
func TestShardCapSharedAcrossDevices(t *testing.T) {
	in := New(99, Schedule{TransferRate: 1.0, MaxPerKey: 3})
	var faults int
	for _, dev := range []string{"gpu0", "gpu1", "cpu0"} {
		for i := 0; i < 5; i++ {
			if in.ShardLaunch(dev, "shard-7") != nil {
				faults++
			}
		}
	}
	if faults != 3 {
		t.Fatalf("injected %d transfer faults across devices, want exactly MaxPerKey=3", faults)
	}
}

// TestDeviceLostExemptFromCap: device losses never consume the shard's
// fault budget, and keep firing past it — the cap's guarantee is about
// per-shard attempts, not device health.
func TestDeviceLostExemptFromCap(t *testing.T) {
	in := New(4, Schedule{DeviceLostRate: 1.0, MaxPerKey: 1})
	for i := 0; i < 5; i++ {
		f := in.ShardLaunch("gpu0", "s0")
		if f == nil || f.Kind != KindDeviceLost {
			t.Fatalf("attempt %d: want KindDeviceLost, got %v", i, f)
		}
	}
	if got := in.Counts()["device_lost"]; got != 5 {
		t.Fatalf("device_lost count = %d, want 5", got)
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.Launch("k") != nil || in.CorruptStore("k") || in.Total() != 0 || in.Seed() != 0 {
		t.Fatal("nil injector must inject nothing")
	}
	if in.ShardLaunch("d", "s") != nil {
		t.Fatal("nil injector ShardLaunch must inject nothing")
	}
	if len(in.Counts()) != 0 {
		t.Fatal("nil injector Counts must be empty")
	}
}

func TestScheduleValidate(t *testing.T) {
	bad := []Schedule{
		{TransientRate: -0.1},
		{TransientRate: 1.1},
		{TransientRate: 0.5, OORRate: 0.4, HangRate: 0.3},
		{MaxPerKey: -1},
		{TransferRate: -0.1},
		{TransferRate: 0.7, DeviceLostRate: 0.7},
	}
	for i, s := range bad {
		if s.Validate() == nil {
			t.Errorf("schedule %d: Validate() = nil, want error", i)
		}
	}
	if err := (Schedule{TransientRate: 0.3, OORRate: 0.1, HangRate: 0.1, CorruptRate: 0.5}).Validate(); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
}
