package fault_test

// Chaos suite: drives the real scheduler + simulator stack through the
// fault injector at the rates the issue mandates and asserts the
// system-level guarantees hold under -race:
//
//   - at a 30% transient-failure rate every job either succeeds or fails
//     with a typed Permanent error (never an unclassified one);
//   - results that succeed after retries are bit-identical to a
//     fault-free run;
//   - hung jobs are reclaimed by the watchdog within JobTimeout plus a
//     bounded grace, and no goroutines leak once the scheduler closes.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"gpucmp/internal/fault"
	"gpucmp/internal/sched"
)

// chaosJobs is the small cross-toolchain matrix every chaos test runs:
// cheap, deterministic benchmarks spanning all three metric families.
func chaosJobs() []sched.Job {
	var jobs []sched.Job
	for _, b := range []string{"Reduce", "Scan", "Sobel", "TranP"} {
		for _, tc := range []string{"cuda", "opencl"} {
			j := sched.Job{Benchmark: b, Device: "GeForce GTX480", Toolchain: tc}
			j.Config.Scale = 16
			jobs = append(jobs, j)
		}
	}
	return jobs
}

// baseline runs the matrix fault-free and returns the canonical JSON
// encoding of each result, keyed by job key.
func baseline(t *testing.T, jobs []sched.Job) map[string][]byte {
	t.Helper()
	s := sched.New(sched.Options{Workers: 4})
	defer s.Close()
	want := make(map[string][]byte, len(jobs))
	for _, j := range jobs {
		res, _, err := s.Do(context.Background(), j)
		if err != nil {
			t.Fatalf("fault-free run of %s failed: %v", j.Key(), err)
		}
		buf, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		want[j.Key()] = buf
	}
	return want
}

// checkNoGoroutineLeak asserts the goroutine count settles back to (about)
// its pre-test level. Call with the count taken before the scheduler was
// created, after the scheduler has been closed.
func checkNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var now int
	for time.Now().Before(deadline) {
		now = runtime.NumGoroutine()
		if now <= before+2 { // tolerate runtime/test harness jitter
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after settling", before, now)
}

var fastChaosRetry = sched.RetryPolicy{
	MaxAttempts: 4,
	BaseDelay:   time.Microsecond,
	MaxDelay:    50 * time.Microsecond,
}

// TestChaosTransientRate30 is the headline acceptance test: a 30%
// transient launch-failure rate across the whole matrix. Every job must
// either succeed with a result bit-identical to the fault-free run or
// return an error typed Permanent (retry budget exhausted) — nothing may
// hang, leak, or come back with an unclassified error.
func TestChaosTransientRate30(t *testing.T) {
	jobs := chaosJobs()
	want := baseline(t, jobs)

	before := runtime.NumGoroutine()
	inj := fault.New(1, fault.Schedule{TransientRate: 0.3})
	s := sched.New(sched.Options{
		Workers:  4,
		Retry:    fastChaosRetry,
		Breaker:  sched.BreakerConfig{Disabled: true},
		Injector: inj,
	})

	type outcome struct {
		key string
		buf []byte
		err error
	}
	results := make([]outcome, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, _, err := s.Do(context.Background(), j)
			o := outcome{key: j.Key(), err: err}
			if err == nil {
				o.buf, o.err = json.Marshal(res)
			}
			results[i] = o
		}()
	}
	wg.Wait()

	succeeded, permanent := 0, 0
	for _, o := range results {
		switch {
		case o.err == nil:
			succeeded++
			if string(o.buf) != string(want[o.key]) {
				t.Errorf("job %s: post-retry result differs from fault-free run", o.key)
			}
		case errors.Is(o.err, sched.ErrPermanent):
			permanent++
			if !errors.Is(o.err, fault.ErrTransientLaunch) {
				t.Errorf("job %s: permanent error lost its injected cause: %v", o.key, o.err)
			}
		default:
			t.Errorf("job %s: untyped error under chaos: %v", o.key, o.err)
		}
	}
	if succeeded == 0 {
		t.Error("no job succeeded at a 30% transient rate; retry path is broken")
	}
	t.Logf("chaos: %d/%d succeeded, %d permanent, %d retries, faults=%v",
		succeeded, len(jobs), permanent, s.Metrics().Snapshot().Retries, inj.Counts())

	s.Close()
	checkNoGoroutineLeak(t, before)
}

// TestChaosHangsReclaimedWithinTimeout: every job hangs; the watchdog must
// hand back a typed Watchdog error within JobTimeout plus a bounded grace,
// reclaim every worker, and leak no goroutines after Close.
func TestChaosHangsReclaimedWithinTimeout(t *testing.T) {
	const (
		jobTimeout = 50 * time.Millisecond
		grace      = 2 * time.Second
	)
	jobs := chaosJobs()[:4]

	before := runtime.NumGoroutine()
	inj := fault.New(3, fault.Schedule{HangRate: 1.0})
	s := sched.New(sched.Options{
		Workers:      2,
		JobTimeout:   jobTimeout,
		ReclaimGrace: grace,
		Retry:        sched.RetryPolicy{MaxAttempts: 1},
		Breaker:      sched.BreakerConfig{Disabled: true},
		Injector:     inj,
	})

	var wg sync.WaitGroup
	errCh := make(chan error, len(jobs))
	start := time.Now()
	for _, j := range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, err := s.Do(context.Background(), j)
			errCh <- err
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errCh)

	for err := range errCh {
		if !errors.Is(err, sched.ErrWatchdog) {
			t.Errorf("hung job returned %v, want typed ErrWatchdog", err)
		}
	}
	// 4 jobs over 2 workers = 2 sequential rounds of JobTimeout each.
	if limit := 2*jobTimeout + grace; elapsed > limit {
		t.Errorf("hung jobs took %v to come back, want < %v", elapsed, limit)
	}
	m := s.Metrics().Snapshot()
	if m.Timeouts != uint64(len(jobs)) {
		t.Errorf("Timeouts = %d, want %d", m.Timeouts, len(jobs))
	}
	if m.WatchdogLeaks != 0 {
		t.Errorf("WatchdogLeaks = %d, want 0", m.WatchdogLeaks)
	}
	if m.WatchdogReclaims != uint64(len(jobs)) {
		t.Errorf("WatchdogReclaims = %d, want %d", m.WatchdogReclaims, len(jobs))
	}

	s.Close()
	checkNoGoroutineLeak(t, before)
}

// TestChaosMixedSchedule runs everything at once — transient launches,
// out-of-resources, hangs, and cache corruption — and asserts the weaker
// but universal invariant: every job terminates with either a result
// bit-identical to the fault-free run or an error typed Permanent or
// Watchdog, and the process is goroutine-clean afterwards.
func TestChaosMixedSchedule(t *testing.T) {
	jobs := chaosJobs()
	want := baseline(t, jobs)

	before := runtime.NumGoroutine()
	// Seed 7 draws every fault kind at least once across the matrix
	// (4 transients, 2 out-of-resources, 1 hang, 1 corrupted store).
	inj := fault.New(7, fault.Schedule{
		TransientRate: 0.2,
		OORRate:       0.05,
		HangRate:      0.1,
		CorruptRate:   0.2,
		MaxPerKey:     2,
	})
	// JobTimeout must exceed a real benchmark run (≲1s under -race) so
	// that normally only injected hangs — which block until killed — trip
	// the watchdog, yet stay small enough that each hang costs the test
	// just a few seconds.
	s := sched.New(sched.Options{
		Workers:    4,
		JobTimeout: 3 * time.Second,
		Retry:      fastChaosRetry,
		Breaker:    sched.BreakerConfig{Disabled: true},
		Injector:   inj,
	})

	var wg sync.WaitGroup
	var mu sync.Mutex
	var failures []string
	// Two passes per job: the second pass exercises the checksum-verified
	// cache under CorruptRate and must never serve a corrupted entry.
	for pass := 0; pass < 2; pass++ {
		for _, j := range jobs {
			wg.Add(1)
			go func() {
				defer wg.Done()
				res, _, err := s.Do(context.Background(), j)
				var problem string
				switch {
				case err == nil:
					buf, merr := json.Marshal(res)
					if merr != nil {
						problem = fmt.Sprintf("marshal: %v", merr)
					} else if string(buf) != string(want[j.Key()]) {
						problem = "result differs from fault-free run"
					}
				case errors.Is(err, sched.ErrPermanent), errors.Is(err, sched.ErrWatchdog):
					// typed failure: acceptable under chaos
				default:
					problem = fmt.Sprintf("untyped error: %v", err)
				}
				if problem != "" {
					mu.Lock()
					failures = append(failures, fmt.Sprintf("pass %d job %s: %s", pass, j.Key(), problem))
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
	}
	for _, f := range failures {
		t.Error(f)
	}
	t.Logf("mixed chaos: metrics=%+v faults=%v", s.Metrics().Snapshot(), inj.Counts())

	s.Close()
	checkNoGoroutineLeak(t, before)
}
