// Package server is the HTTP/JSON face of the experiment service: it maps
// the paper's artifact set (run one cell, list devices and benchmarks,
// regenerate any figure or table) onto a sched.Scheduler, so every request
// is cached, deduplicated and executed on the worker pool. cmd/gpucmpd is
// the daemon around it.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"gpucmp/internal/arch"
	"gpucmp/internal/bench"
	"gpucmp/internal/coexec"
	"gpucmp/internal/compiler"
	"gpucmp/internal/core"
	"gpucmp/internal/fault"
	"gpucmp/internal/perfmodel"
	"gpucmp/internal/sched"
	"gpucmp/internal/sim"
	"gpucmp/internal/submit"
)

// maxRunBody caps POST /run bodies; a sched.Job is a few hundred bytes.
const maxRunBody = 1 << 16

// Server holds the service's dependencies.
type Server struct {
	sched  *sched.Scheduler
	start  time.Time
	limits submit.Limits // POST /kernels resource bounds

	// notReady flips readiness off (true = not ready). Liveness and
	// readiness are separate probes: /healthz/live answers 200 for as
	// long as the process can serve HTTP at all, while /healthz/ready
	// answers 503 while the process is draining (SIGINT/SIGTERM) or
	// joining/leaving a cluster ring — the coordinator stops routing to
	// it without killing in-flight requests.
	notReady atomic.Bool

	// figureScale is the default problem-size divisor for /figures/*
	// (overridable per request with ?scale=N). The default keeps an
	// uncached figure regeneration interactive.
	figureScale int

	// Degradation counters: how /run requests were served when the live
	// path was unavailable.
	degradedEstimates atomic.Uint64 // perfmodel analytical estimates served
	degradedStale     atomic.Uint64 // stale last-known-good results served
	unavailable       atomic.Uint64 // 503s: nothing could be served

	// /kernels counters.
	gauntletRejects atomic.Uint64 // submissions refused before execution
	quotaDenials    atomic.Uint64 // submissions refused by tenant quota

	// POST /coexec dependencies: the (optional) fault injector and the
	// per-device shard counters exported on /metrics.
	coexecInjector *fault.Injector
	coexecMetrics  *coexec.Metrics
}

// Option customises a Server.
type Option func(*Server)

// WithFigureScale sets the default /figures/* problem-size divisor.
func WithFigureScale(scale int) Option {
	return func(s *Server) {
		if scale > 0 {
			s.figureScale = scale
		}
	}
}

// WithSubmitLimits overrides the POST /kernels resource bounds.
func WithSubmitLimits(lim submit.Limits) Option {
	return func(s *Server) { s.limits = lim }
}

// New wraps a scheduler in the HTTP service.
func New(s *sched.Scheduler, opts ...Option) *Server {
	srv := &Server{
		sched: s, start: time.Now(), figureScale: 4, limits: submit.DefaultLimits(),
		coexecMetrics: coexec.NewMetrics(),
	}
	for _, o := range opts {
		o(srv)
	}
	return srv
}

// Handler returns the routed HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/healthz/live", s.handleLive)
	mux.HandleFunc("/healthz/ready", s.handleReady)
	mux.HandleFunc("/devices", s.handleDevices)
	mux.HandleFunc("/benchmarks", s.handleBenchmarks)
	mux.HandleFunc("/run", s.handleRun)
	mux.HandleFunc("/coexec", s.handleCoexec)
	mux.HandleFunc("/kernels", s.handleKernels)
	mux.HandleFunc("/figures/", s.handleFigure)
	mux.HandleFunc("/compiler/passes", s.handleCompilerPasses)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// writeJSON writes v with status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away; nothing to do
}

// errorBody is the uniform error shape of every endpoint: a human
// message plus a stable machine code ("bad-json", "unknown-device",
// "unbounded-loop", ...). Codes are API contract: never change one, only
// add.
type errorBody struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

func writeError(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, errorBody{Error: err.Error(), Code: code})
}

// Machine codes for errors that originate in the server itself (domain
// layers carry their own: submit.Code, kir.ErrCode).
const (
	codeBadJSON          = "bad-json"
	codeBadRequest       = "bad-request"
	codeUnknownDevice    = "unknown-device"
	codeUnknownBenchmark = "unknown-benchmark"
	codeNotFound         = "not-found"
	codeMethodNotAllowed = "method-not-allowed"
	codeTooLarge         = "too-large"
	codeBadTenant        = "bad-tenant"
	codeQuota            = "quota-exceeded"
	codeInternal         = "internal"
	codeUnavailable      = "unavailable"
	codeCoexecFailed     = "coexec-failed"
)

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// /healthz reflects the per-device circuit breakers: the service is
	// "degraded" (still 200 — it serves fallbacks) while any breaker is
	// away from closed.
	breakers := s.sched.Breakers()
	status := "ok"
	for _, b := range breakers {
		if b.State != "closed" {
			status = "degraded"
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         status,
		"ready":          !s.notReady.Load(),
		"uptime_seconds": time.Since(s.start).Seconds(),
		"breakers":       breakers,
	})
}

// SetReady flips the readiness probe. cmd/gpucmpd calls SetReady(false)
// when a drain signal arrives, so cluster coordinators stop routing new
// work here while in-flight requests finish.
func (s *Server) SetReady(ready bool) { s.notReady.Store(!ready) }

// Ready reports the current readiness state.
func (s *Server) Ready() bool { return !s.notReady.Load() }

func (s *Server) handleLive(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "alive"})
}

func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if s.notReady.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
}

// deviceInfo is one /devices entry. The transfer fields parameterise the
// host<->device link (PCIe for the discrete cards, the cache hierarchy for
// the CPU) — what transfer-inclusive scheduling ranks devices by.
type deviceInfo struct {
	Name         string   `json:"name"`
	Vendor       string   `json:"vendor"`
	Kind         string   `json:"kind"`
	ComputeUnits int      `json:"compute_units"`
	PeakGFLOPS   float64  `json:"peak_gflops"`
	PeakGBs      float64  `json:"peak_gb_per_sec"`
	LinkGBs      float64  `json:"transfer_gb_per_sec"`
	LinkLatency  float64  `json:"transfer_latency_seconds"`
	Toolchains   []string `json:"toolchains"`
}

func (s *Server) handleDevices(w http.ResponseWriter, r *http.Request) {
	var out []deviceInfo
	for _, a := range arch.All() {
		tcs := []string{"opencl"}
		if a.Vendor == "NVIDIA" {
			tcs = []string{"cuda", "opencl"}
		}
		out = append(out, deviceInfo{
			Name:         a.Name,
			Vendor:       a.Vendor,
			Kind:         fmt.Sprint(a.Kind),
			ComputeUnits: a.ComputeUnits,
			PeakGFLOPS:   a.TheoreticalPeakFLOPS(),
			PeakGBs:      a.TheoreticalPeakBandwidth(),
			LinkGBs:      a.Transfer.PCIeGBps,
			LinkLatency:  a.Transfer.LatencyS,
			Toolchains:   tcs,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// benchmarkInfo is one /benchmarks entry.
type benchmarkInfo struct {
	Name          string `json:"name"`
	Metric        string `json:"metric"`
	LowerIsBetter bool   `json:"lower_is_better"`
}

func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	var out []benchmarkInfo
	for _, spec := range bench.Registry() {
		out = append(out, benchmarkInfo{Name: spec.Name, Metric: spec.Metric, LowerIsBetter: spec.LowerIsBetter})
	}
	writeJSON(w, http.StatusOK, out)
}

// passInfo is one back-end pass entry of GET /compiler/passes.
type passInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

// knobInfo is one front-end knob entry of GET /compiler/passes.
type knobInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

// compilerInfo is the GET /compiler/passes reply: the pass-pipeline and
// knob vocabulary of the compiler, for clients building ablation requests
// or interpreting the pass_stats/remarks attached to /run results.
type compilerInfo struct {
	Passes       []passInfo `json:"passes"` // back-end pipeline, in order
	GapKnobs     []knobInfo `json:"gap_knobs"`
	FeatureKnobs []knobInfo `json:"feature_knobs"`
}

func (s *Server) handleCompilerPasses(w http.ResponseWriter, r *http.Request) {
	info := compilerInfo{}
	for _, p := range compiler.DefaultPasses() {
		info.Passes = append(info.Passes, passInfo{Name: p.Name, Description: p.Description})
	}
	for _, k := range compiler.GapKnobs() {
		info.GapKnobs = append(info.GapKnobs, knobInfo{Name: k.Name, Description: k.Description})
	}
	for _, k := range compiler.FeatureKnobs() {
		info.FeatureKnobs = append(info.FeatureKnobs, knobInfo{Name: k.Name, Description: k.Description})
	}
	writeJSON(w, http.StatusOK, info)
}

// runResponse is the POST /run reply: the result plus how it was served.
// Degraded marks a result that did NOT come from a live (or cached-live)
// simulation: an analytical estimate or a stale last-known-good entry,
// served because the live path was unavailable.
type runResponse struct {
	Result *bench.Result `json:"result"`
	Cached bool          `json:"cached"`
	Served string        `json:"served"` // "miss", "hit", "shared" or "degraded"

	Degraded      bool   `json:"degraded,omitempty"`
	DegradedMode  string `json:"degraded_mode,omitempty"`  // "estimate" or "stale"
	DegradedCause string `json:"degraded_cause,omitempty"` // why the live path failed
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, codeMethodNotAllowed,
			fmt.Errorf("POST a sched.Job body to /run"))
		return
	}
	var job sched.Job
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRunBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&job); err != nil {
		status, code := http.StatusBadRequest, codeBadJSON
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			status, code = http.StatusRequestEntityTooLarge, codeTooLarge
		}
		writeError(w, status, code, fmt.Errorf("bad /run body: %w", err))
		return
	}
	if err := job.Validate(); err != nil {
		code := codeBadRequest
		if _, serr := bench.SpecByName(job.Benchmark); serr != nil {
			code = codeUnknownBenchmark
		} else if _, aerr := arch.Resolve(job.Device); aerr != nil {
			code = codeUnknownDevice
		}
		writeError(w, http.StatusBadRequest, code, err)
		return
	}
	res, outcome, err := s.sched.Do(r.Context(), job)
	if err != nil {
		if r.Context().Err() != nil {
			// The client went away; nothing sensible to serve.
			writeError(w, http.StatusInternalServerError, codeInternal, err)
			return
		}
		switch sched.ClassOf(err) {
		case sched.Permanent:
			// Deterministic failure: degrading would mask a real answer.
			writeError(w, http.StatusInternalServerError, codeInternal, err)
		default:
			// Transient, watchdog or breaker-open: walk the degradation
			// ladder instead of failing the request.
			s.serveDegraded(w, job, err)
		}
		return
	}
	w.Header().Set("X-Cache", outcome.String())
	writeJSON(w, http.StatusOK, runResponse{Result: res, Cached: outcome == sched.Hit, Served: outcome.String()})
}

// serveDegraded is the tail of the degradation ladder (retry and breaker
// already happened inside the scheduler): perfmodel analytical estimate →
// stale cache entry → 503 + Retry-After. Served results carry an explicit
// Degraded marker so clients can tell them from live measurements.
func (s *Server) serveDegraded(w http.ResponseWriter, job sched.Job, cause error) {
	// Rung 1: analytical estimate from the performance model. No
	// simulation involved — always available for rate-valued metrics.
	if spec, serr := bench.SpecByName(job.Benchmark); serr == nil {
		if a, aerr := arch.Resolve(job.Device); aerr == nil {
			tc := perfmodel.ToolchainFor(job.Toolchain)
			if v, ok := perfmodel.Estimate(a, tc, spec.Metric); ok {
				s.degradedEstimates.Add(1)
				est := &bench.Result{
					Benchmark: job.Benchmark,
					Toolchain: job.Toolchain,
					Device:    job.Device,
					Metric:    spec.Metric,
					Value:     v,
					Correct:   true,
				}
				w.Header().Set("X-Cache", "degraded")
				writeJSON(w, http.StatusOK, runResponse{
					Result: est, Served: "degraded",
					Degraded: true, DegradedMode: "estimate", DegradedCause: cause.Error(),
				})
				return
			}
		}
	}
	// Rung 2: stale last-known-good result.
	if res, ok := s.sched.Stale(job.Key()); ok {
		s.degradedStale.Add(1)
		w.Header().Set("X-Cache", "degraded")
		writeJSON(w, http.StatusOK, runResponse{
			Result: res, Served: "degraded",
			Degraded: true, DegradedMode: "stale", DegradedCause: cause.Error(),
		})
		return
	}
	// Rung 3: nothing can be served. 503 with a Retry-After hint — the
	// breaker's remaining cool-down when that is the blocker.
	s.unavailable.Add(1)
	retryAfter := 5.0
	var boe *sched.BreakerOpenError
	if errors.As(cause, &boe) && boe.RetryAfter > 0 {
		retryAfter = boe.RetryAfter.Seconds()
	}
	w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(retryAfter))))
	writeError(w, http.StatusServiceUnavailable, codeUnavailable, cause)
}

// runner adapts the scheduler to the core.Runner the study functions take.
// Every figure cell becomes a canonical job: cached across requests and
// deduplicated against identical cells of concurrent requests.
func (s *Server) runner(r *http.Request) core.Runner {
	return func(a *arch.Device, toolchain string, spec bench.Spec, cfg bench.Config) (*bench.Result, error) {
		return s.sched.Run(r.Context(), sched.Job{
			Benchmark: spec.Name,
			Device:    a.Name,
			Toolchain: toolchain,
			Config:    cfg,
		})
	}
}

func (s *Server) scaleOf(r *http.Request) (int, error) {
	q := r.URL.Query().Get("scale")
	if q == "" {
		return s.figureScale, nil
	}
	n, err := strconv.Atoi(q)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("bad scale %q: want a positive integer", q)
	}
	return n, nil
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, s.sched.Metrics().Snapshot())
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	snap := s.sched.Metrics().Snapshot()
	fmt.Fprintf(w, "# HELP gpucmpd_jobs_total Jobs executed by the worker pool.\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_jobs_total counter\n")
	fmt.Fprintf(w, "gpucmpd_jobs_total %d\n", snap.JobsRun)
	fmt.Fprintf(w, "# HELP gpucmpd_cache_hits_total Result-cache hits.\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_cache_hits_total counter\n")
	fmt.Fprintf(w, "gpucmpd_cache_hits_total %d\n", snap.CacheHits)
	fmt.Fprintf(w, "# HELP gpucmpd_cache_misses_total Result-cache misses.\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_cache_misses_total counter\n")
	fmt.Fprintf(w, "gpucmpd_cache_misses_total %d\n", snap.CacheMisses)
	fmt.Fprintf(w, "# HELP gpucmpd_dedup_shared_total Requests served by an identical in-flight job.\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_dedup_shared_total counter\n")
	fmt.Fprintf(w, "gpucmpd_dedup_shared_total %d\n", snap.DedupShared)
	fmt.Fprintf(w, "# HELP gpucmpd_panics_total Jobs that panicked (isolated, not fatal).\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_panics_total counter\n")
	fmt.Fprintf(w, "gpucmpd_panics_total %d\n", snap.Panics)
	fmt.Fprintf(w, "# HELP gpucmpd_timeouts_total Jobs that exceeded the job timeout.\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_timeouts_total counter\n")
	fmt.Fprintf(w, "gpucmpd_timeouts_total %d\n", snap.Timeouts)
	fmt.Fprintf(w, "# HELP gpucmpd_in_flight Jobs currently executing.\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_in_flight gauge\n")
	fmt.Fprintf(w, "gpucmpd_in_flight %d\n", snap.InFlight)
	fmt.Fprintf(w, "# HELP gpucmpd_queue_depth Jobs queued but not yet executing.\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_queue_depth gauge\n")
	fmt.Fprintf(w, "gpucmpd_queue_depth %d\n", snap.QueueDepth)
	fmt.Fprintf(w, "# HELP gpucmpd_retries_total Transient job failures retried.\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_retries_total counter\n")
	fmt.Fprintf(w, "gpucmpd_retries_total %d\n", snap.Retries)
	fmt.Fprintf(w, "# HELP gpucmpd_breaker_trips_total Circuit-breaker transitions to open.\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_breaker_trips_total counter\n")
	fmt.Fprintf(w, "gpucmpd_breaker_trips_total %d\n", snap.BreakerTrips)
	fmt.Fprintf(w, "# HELP gpucmpd_breaker_denials_total Jobs rejected by an open circuit breaker.\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_breaker_denials_total counter\n")
	fmt.Fprintf(w, "gpucmpd_breaker_denials_total %d\n", snap.BreakerDenials)
	fmt.Fprintf(w, "# HELP gpucmpd_watchdog_reclaims_total Timed-out attempts cancelled and reclaimed.\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_watchdog_reclaims_total counter\n")
	fmt.Fprintf(w, "gpucmpd_watchdog_reclaims_total %d\n", snap.WatchdogReclaims)
	fmt.Fprintf(w, "# HELP gpucmpd_watchdog_leaks_total Timed-out attempts abandoned after the reclaim grace.\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_watchdog_leaks_total counter\n")
	fmt.Fprintf(w, "gpucmpd_watchdog_leaks_total %d\n", snap.WatchdogLeaks)
	fmt.Fprintf(w, "# HELP gpucmpd_cache_corruptions_total Corrupted cache entries detected and evicted.\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_cache_corruptions_total counter\n")
	fmt.Fprintf(w, "gpucmpd_cache_corruptions_total %d\n", snap.CacheCorruptions)
	fmt.Fprintf(w, "# HELP gpucmpd_abandons_total Executions cancelled because every waiter went away.\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_abandons_total counter\n")
	fmt.Fprintf(w, "gpucmpd_abandons_total %d\n", snap.Abandons)
	fmt.Fprintf(w, "# HELP gpucmpd_warp_instrs_total Simulated warp instructions executed by completed jobs.\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_warp_instrs_total counter\n")
	fmt.Fprintf(w, "gpucmpd_warp_instrs_total %d\n", snap.WarpInstrs)
	fmt.Fprintf(w, "# HELP gpucmpd_lane_instrs_total Simulated lane (thread) instructions executed by completed jobs.\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_lane_instrs_total counter\n")
	fmt.Fprintf(w, "gpucmpd_lane_instrs_total %d\n", snap.LaneInstrs)
	fmt.Fprintf(w, "# HELP gpucmpd_degraded_total Requests served degraded, by fallback mode.\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_degraded_total counter\n")
	fmt.Fprintf(w, "gpucmpd_degraded_total{mode=\"estimate\"} %d\n", s.degradedEstimates.Load())
	fmt.Fprintf(w, "gpucmpd_degraded_total{mode=\"stale\"} %d\n", s.degradedStale.Load())
	fmt.Fprintf(w, "# HELP gpucmpd_unavailable_total Requests that got 503: no fallback could serve them.\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_unavailable_total counter\n")
	fmt.Fprintf(w, "gpucmpd_unavailable_total %d\n", s.unavailable.Load())
	fmt.Fprintf(w, "# HELP gpucmpd_breaker_state Per-device breaker state (0=closed, 1=half-open, 2=open).\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_breaker_state gauge\n")
	for _, b := range s.sched.Breakers() {
		v := 0
		switch b.State {
		case "half-open":
			v = 1
		case "open":
			v = 2
		}
		fmt.Fprintf(w, "gpucmpd_breaker_state{device=%q} %d\n", b.Device, v)
	}
	fmt.Fprintf(w, "# HELP gpucmpd_tasks_total Generic tenant tasks (kernel submissions) executed.\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_tasks_total counter\n")
	fmt.Fprintf(w, "gpucmpd_tasks_total %d\n", snap.TasksRun)
	fmt.Fprintf(w, "# HELP gpucmpd_gauntlet_rejects_total Kernel submissions refused before execution.\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_gauntlet_rejects_total counter\n")
	fmt.Fprintf(w, "gpucmpd_gauntlet_rejects_total %d\n", s.gauntletRejects.Load())
	fmt.Fprintf(w, "# HELP gpucmpd_quota_denials_total Kernel submissions refused by tenant quota.\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_quota_denials_total counter\n")
	fmt.Fprintf(w, "gpucmpd_quota_denials_total %d\n", s.quotaDenials.Load())
	if len(snap.Tenants) > 0 {
		fmt.Fprintf(w, "# HELP gpucmpd_tenant_tasks_total Executions submitted per tenant.\n")
		fmt.Fprintf(w, "# TYPE gpucmpd_tenant_tasks_total counter\n")
		for _, t := range snap.Tenants {
			fmt.Fprintf(w, "gpucmpd_tenant_tasks_total{tenant=%q} %d\n", t.Tenant, t.Tasks)
		}
		fmt.Fprintf(w, "# HELP gpucmpd_tenant_cache_hits_total Tenant-cache hits per tenant.\n")
		fmt.Fprintf(w, "# TYPE gpucmpd_tenant_cache_hits_total counter\n")
		for _, t := range snap.Tenants {
			fmt.Fprintf(w, "gpucmpd_tenant_cache_hits_total{tenant=%q} %d\n", t.Tenant, t.CacheHits)
		}
	}
	if quotas := s.sched.Quotas().Snapshot(); len(quotas) > 0 {
		fmt.Fprintf(w, "# HELP gpucmpd_tenant_quota_allowed_total Submissions admitted by the tenant quota.\n")
		fmt.Fprintf(w, "# TYPE gpucmpd_tenant_quota_allowed_total counter\n")
		for _, q := range quotas {
			fmt.Fprintf(w, "gpucmpd_tenant_quota_allowed_total{tenant=%q} %d\n", q.Tenant, q.Allowed)
		}
		fmt.Fprintf(w, "# HELP gpucmpd_tenant_quota_denied_total Submissions rejected by the tenant quota.\n")
		fmt.Fprintf(w, "# TYPE gpucmpd_tenant_quota_denied_total counter\n")
		for _, q := range quotas {
			fmt.Fprintf(w, "gpucmpd_tenant_quota_denied_total{tenant=%q} %d\n", q.Tenant, q.Denied)
		}
	}
	if coex := s.coexecMetrics.Snapshot(); len(coex) > 0 {
		devs := make([]string, 0, len(coex))
		for d := range coex {
			devs = append(devs, d)
		}
		sort.Strings(devs)
		fmt.Fprintf(w, "# HELP gpucmpd_coexec_shards_total Co-execution shard attempts completed per device.\n")
		fmt.Fprintf(w, "# TYPE gpucmpd_coexec_shards_total counter\n")
		for _, d := range devs {
			fmt.Fprintf(w, "gpucmpd_coexec_shards_total{device=%q} %d\n", d, coex[d].Shards)
		}
		fmt.Fprintf(w, "# HELP gpucmpd_coexec_retries_total Co-execution shard attempts retried per device.\n")
		fmt.Fprintf(w, "# TYPE gpucmpd_coexec_retries_total counter\n")
		for _, d := range devs {
			fmt.Fprintf(w, "gpucmpd_coexec_retries_total{device=%q} %d\n", d, coex[d].Retries)
		}
		fmt.Fprintf(w, "# HELP gpucmpd_coexec_redistributions_total Shards completed on a device after first trying elsewhere.\n")
		fmt.Fprintf(w, "# TYPE gpucmpd_coexec_redistributions_total counter\n")
		for _, d := range devs {
			fmt.Fprintf(w, "gpucmpd_coexec_redistributions_total{device=%q} %d\n", d, coex[d].Redistributions)
		}
		fmt.Fprintf(w, "# HELP gpucmpd_coexec_transfer_errors_total Injected transfer faults observed per device.\n")
		fmt.Fprintf(w, "# TYPE gpucmpd_coexec_transfer_errors_total counter\n")
		for _, d := range devs {
			fmt.Fprintf(w, "gpucmpd_coexec_transfer_errors_total{device=%q} %d\n", d, coex[d].TransferErrors)
		}
		fmt.Fprintf(w, "# HELP gpucmpd_coexec_stragglers_total Straggler duplicates dispatched against a device.\n")
		fmt.Fprintf(w, "# TYPE gpucmpd_coexec_stragglers_total counter\n")
		for _, d := range devs {
			fmt.Fprintf(w, "gpucmpd_coexec_stragglers_total{device=%q} %d\n", d, coex[d].Stragglers)
		}
		fmt.Fprintf(w, "# HELP gpucmpd_coexec_device_lost Device was lost mid-run at least once (0/1).\n")
		fmt.Fprintf(w, "# TYPE gpucmpd_coexec_device_lost gauge\n")
		for _, d := range devs {
			fmt.Fprintf(w, "gpucmpd_coexec_device_lost{device=%q} %d\n", d, coex[d].Lost)
		}
	}
	hits, misses := compiler.CompileCacheStats()
	fmt.Fprintf(w, "# HELP gpucmpd_compile_cache_hits_total Compiled-kernel cache hits.\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_compile_cache_hits_total counter\n")
	fmt.Fprintf(w, "gpucmpd_compile_cache_hits_total %d\n", hits)
	fmt.Fprintf(w, "# HELP gpucmpd_compile_cache_misses_total Compiled-kernel cache misses.\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_compile_cache_misses_total counter\n")
	fmt.Fprintf(w, "gpucmpd_compile_cache_misses_total %d\n", misses)
	es := sim.GlobalEngineStats()
	fmt.Fprintf(w, "# HELP gpucmpd_sim_superinstr_hits_total Fused-segment dispatches executed by the threaded sim engine.\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_sim_superinstr_hits_total counter\n")
	fmt.Fprintf(w, "gpucmpd_sim_superinstr_hits_total %d\n", es.SuperinstrHits)
	fmt.Fprintf(w, "# HELP gpucmpd_sim_superinstr_ops_total Warp instructions retired inside fused segments.\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_sim_superinstr_ops_total counter\n")
	fmt.Fprintf(w, "gpucmpd_sim_superinstr_ops_total %d\n", es.SuperinstrOps)
	fmt.Fprintf(w, "# HELP gpucmpd_sim_block_compiles_total Hot fused segments compiled to micro-op form.\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_sim_block_compiles_total counter\n")
	fmt.Fprintf(w, "gpucmpd_sim_block_compiles_total %d\n", es.BlockCompiles)
	fmt.Fprintf(w, "# HELP gpucmpd_sim_threaded_cache_entries Threaded-program cache entries across live devices.\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_sim_threaded_cache_entries gauge\n")
	fmt.Fprintf(w, "gpucmpd_sim_threaded_cache_entries %d\n", es.ThreadedCacheSize)
	fmt.Fprintf(w, "# HELP gpucmpd_sim_threaded_cache_evictions_total Threaded-program cache evictions.\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_sim_threaded_cache_evictions_total counter\n")
	fmt.Fprintf(w, "gpucmpd_sim_threaded_cache_evictions_total %d\n", es.ThreadedCacheEvictions)
	fmt.Fprintf(w, "# HELP gpucmpd_sim_engine_warp_instrs_total Warp instructions retired, by interpreter engine.\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_sim_engine_warp_instrs_total counter\n")
	for _, eng := range []sim.Engine{sim.EngineThreaded, sim.EngineFast, sim.EngineReference} {
		fmt.Fprintf(w, "gpucmpd_sim_engine_warp_instrs_total{engine=%q} %d\n", eng, es.WarpInstrs[eng.String()])
	}
	fmt.Fprintf(w, "# HELP gpucmpd_sim_engine_lane_instrs_total Lane (thread) instructions retired, by interpreter engine.\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_sim_engine_lane_instrs_total counter\n")
	for _, eng := range []sim.Engine{sim.EngineThreaded, sim.EngineFast, sim.EngineReference} {
		fmt.Fprintf(w, "gpucmpd_sim_engine_lane_instrs_total{engine=%q} %d\n", eng, es.LaneInstrs[eng.String()])
	}
	fmt.Fprintf(w, "# HELP gpucmpd_job_seconds Job wall latency per benchmark.\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_job_seconds histogram\n")
	hists := s.sched.Metrics().Histograms()
	for _, l := range snap.Latency {
		h := hists[l.Benchmark]
		bounds, cum := h.Buckets()
		for i := range bounds {
			le := "+Inf"
			if i < len(bounds)-1 {
				le = strconv.FormatFloat(bounds[i], 'g', -1, 64)
			}
			fmt.Fprintf(w, "gpucmpd_job_seconds_bucket{benchmark=%q,le=%q} %d\n", l.Benchmark, le, cum[i])
		}
		fmt.Fprintf(w, "gpucmpd_job_seconds_sum{benchmark=%q} %g\n", l.Benchmark, h.Sum())
		fmt.Fprintf(w, "gpucmpd_job_seconds_count{benchmark=%q} %d\n", l.Benchmark, h.Count())
	}
	fmt.Fprintf(w, "# HELP gpucmpd_job_quantile_seconds Estimated job-latency quantiles per benchmark.\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_job_quantile_seconds gauge\n")
	for _, l := range snap.Latency {
		fmt.Fprintf(w, "gpucmpd_job_quantile_seconds{benchmark=%q,quantile=\"0.5\"} %g\n", l.Benchmark, l.P50Sec)
		fmt.Fprintf(w, "gpucmpd_job_quantile_seconds{benchmark=%q,quantile=\"0.99\"} %g\n", l.Benchmark, l.P99Sec)
	}
}
