// Package server is the HTTP/JSON face of the experiment service: it maps
// the paper's artifact set (run one cell, list devices and benchmarks,
// regenerate any figure or table) onto a sched.Scheduler, so every request
// is cached, deduplicated and executed on the worker pool. cmd/gpucmpd is
// the daemon around it.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"gpucmp/internal/arch"
	"gpucmp/internal/bench"
	"gpucmp/internal/compiler"
	"gpucmp/internal/core"
	"gpucmp/internal/sched"
)

// Server holds the service's dependencies.
type Server struct {
	sched *sched.Scheduler
	start time.Time

	// figureScale is the default problem-size divisor for /figures/*
	// (overridable per request with ?scale=N). The default keeps an
	// uncached figure regeneration interactive.
	figureScale int
}

// Option customises a Server.
type Option func(*Server)

// WithFigureScale sets the default /figures/* problem-size divisor.
func WithFigureScale(scale int) Option {
	return func(s *Server) {
		if scale > 0 {
			s.figureScale = scale
		}
	}
}

// New wraps a scheduler in the HTTP service.
func New(s *sched.Scheduler, opts ...Option) *Server {
	srv := &Server{sched: s, start: time.Now(), figureScale: 4}
	for _, o := range opts {
		o(srv)
	}
	return srv
}

// Handler returns the routed HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/devices", s.handleDevices)
	mux.HandleFunc("/benchmarks", s.handleBenchmarks)
	mux.HandleFunc("/run", s.handleRun)
	mux.HandleFunc("/figures/", s.handleFigure)
	mux.HandleFunc("/compiler/passes", s.handleCompilerPasses)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// writeJSON writes v with status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away; nothing to do
}

type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}

// deviceInfo is one /devices entry.
type deviceInfo struct {
	Name         string   `json:"name"`
	Vendor       string   `json:"vendor"`
	Kind         string   `json:"kind"`
	ComputeUnits int      `json:"compute_units"`
	PeakGFLOPS   float64  `json:"peak_gflops"`
	PeakGBs      float64  `json:"peak_gb_per_sec"`
	Toolchains   []string `json:"toolchains"`
}

func (s *Server) handleDevices(w http.ResponseWriter, r *http.Request) {
	var out []deviceInfo
	for _, a := range arch.All() {
		tcs := []string{"opencl"}
		if a.Vendor == "NVIDIA" {
			tcs = []string{"cuda", "opencl"}
		}
		out = append(out, deviceInfo{
			Name:         a.Name,
			Vendor:       a.Vendor,
			Kind:         fmt.Sprint(a.Kind),
			ComputeUnits: a.ComputeUnits,
			PeakGFLOPS:   a.TheoreticalPeakFLOPS(),
			PeakGBs:      a.TheoreticalPeakBandwidth(),
			Toolchains:   tcs,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// benchmarkInfo is one /benchmarks entry.
type benchmarkInfo struct {
	Name          string `json:"name"`
	Metric        string `json:"metric"`
	LowerIsBetter bool   `json:"lower_is_better"`
}

func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	var out []benchmarkInfo
	for _, spec := range bench.Registry() {
		out = append(out, benchmarkInfo{Name: spec.Name, Metric: spec.Metric, LowerIsBetter: spec.LowerIsBetter})
	}
	writeJSON(w, http.StatusOK, out)
}

// passInfo is one back-end pass entry of GET /compiler/passes.
type passInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

// knobInfo is one front-end knob entry of GET /compiler/passes.
type knobInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

// compilerInfo is the GET /compiler/passes reply: the pass-pipeline and
// knob vocabulary of the compiler, for clients building ablation requests
// or interpreting the pass_stats/remarks attached to /run results.
type compilerInfo struct {
	Passes       []passInfo `json:"passes"` // back-end pipeline, in order
	GapKnobs     []knobInfo `json:"gap_knobs"`
	FeatureKnobs []knobInfo `json:"feature_knobs"`
}

func (s *Server) handleCompilerPasses(w http.ResponseWriter, r *http.Request) {
	info := compilerInfo{}
	for _, p := range compiler.DefaultPasses() {
		info.Passes = append(info.Passes, passInfo{Name: p.Name, Description: p.Description})
	}
	for _, k := range compiler.GapKnobs() {
		info.GapKnobs = append(info.GapKnobs, knobInfo{Name: k.Name, Description: k.Description})
	}
	for _, k := range compiler.FeatureKnobs() {
		info.FeatureKnobs = append(info.FeatureKnobs, knobInfo{Name: k.Name, Description: k.Description})
	}
	writeJSON(w, http.StatusOK, info)
}

// runResponse is the POST /run reply: the result plus how it was served.
type runResponse struct {
	Result *bench.Result `json:"result"`
	Cached bool          `json:"cached"`
	Served string        `json:"served"` // "miss", "hit" or "shared"
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST a sched.Job body to /run"))
		return
	}
	var job sched.Job
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&job); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad /run body: %w", err))
		return
	}
	if err := job.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, outcome, err := s.sched.Do(r.Context(), job)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("X-Cache", outcome.String())
	writeJSON(w, http.StatusOK, runResponse{Result: res, Cached: outcome == sched.Hit, Served: outcome.String()})
}

// runner adapts the scheduler to the core.Runner the study functions take.
// Every figure cell becomes a canonical job: cached across requests and
// deduplicated against identical cells of concurrent requests.
func (s *Server) runner(r *http.Request) core.Runner {
	return func(a *arch.Device, toolchain string, spec bench.Spec, cfg bench.Config) (*bench.Result, error) {
		return s.sched.Run(r.Context(), sched.Job{
			Benchmark: spec.Name,
			Device:    a.Name,
			Toolchain: toolchain,
			Config:    cfg,
		})
	}
}

func (s *Server) scaleOf(r *http.Request) (int, error) {
	q := r.URL.Query().Get("scale")
	if q == "" {
		return s.figureScale, nil
	}
	n, err := strconv.Atoi(q)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("bad scale %q: want a positive integer", q)
	}
	return n, nil
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, s.sched.Metrics().Snapshot())
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	snap := s.sched.Metrics().Snapshot()
	fmt.Fprintf(w, "# HELP gpucmpd_jobs_total Jobs executed by the worker pool.\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_jobs_total counter\n")
	fmt.Fprintf(w, "gpucmpd_jobs_total %d\n", snap.JobsRun)
	fmt.Fprintf(w, "# HELP gpucmpd_cache_hits_total Result-cache hits.\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_cache_hits_total counter\n")
	fmt.Fprintf(w, "gpucmpd_cache_hits_total %d\n", snap.CacheHits)
	fmt.Fprintf(w, "# HELP gpucmpd_cache_misses_total Result-cache misses.\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_cache_misses_total counter\n")
	fmt.Fprintf(w, "gpucmpd_cache_misses_total %d\n", snap.CacheMisses)
	fmt.Fprintf(w, "# HELP gpucmpd_dedup_shared_total Requests served by an identical in-flight job.\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_dedup_shared_total counter\n")
	fmt.Fprintf(w, "gpucmpd_dedup_shared_total %d\n", snap.DedupShared)
	fmt.Fprintf(w, "# HELP gpucmpd_panics_total Jobs that panicked (isolated, not fatal).\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_panics_total counter\n")
	fmt.Fprintf(w, "gpucmpd_panics_total %d\n", snap.Panics)
	fmt.Fprintf(w, "# HELP gpucmpd_timeouts_total Jobs that exceeded the job timeout.\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_timeouts_total counter\n")
	fmt.Fprintf(w, "gpucmpd_timeouts_total %d\n", snap.Timeouts)
	fmt.Fprintf(w, "# HELP gpucmpd_in_flight Jobs currently executing.\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_in_flight gauge\n")
	fmt.Fprintf(w, "gpucmpd_in_flight %d\n", snap.InFlight)
	fmt.Fprintf(w, "# HELP gpucmpd_queue_depth Jobs queued but not yet executing.\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_queue_depth gauge\n")
	fmt.Fprintf(w, "gpucmpd_queue_depth %d\n", snap.QueueDepth)
	hits, misses := compiler.CompileCacheStats()
	fmt.Fprintf(w, "# HELP gpucmpd_compile_cache_hits_total Compiled-kernel cache hits.\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_compile_cache_hits_total counter\n")
	fmt.Fprintf(w, "gpucmpd_compile_cache_hits_total %d\n", hits)
	fmt.Fprintf(w, "# HELP gpucmpd_compile_cache_misses_total Compiled-kernel cache misses.\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_compile_cache_misses_total counter\n")
	fmt.Fprintf(w, "gpucmpd_compile_cache_misses_total %d\n", misses)
	fmt.Fprintf(w, "# HELP gpucmpd_job_seconds Job wall latency per benchmark.\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_job_seconds histogram\n")
	hists := s.sched.Metrics().Histograms()
	for _, l := range snap.Latency {
		h := hists[l.Benchmark]
		bounds, cum := h.Buckets()
		for i := range bounds {
			le := "+Inf"
			if i < len(bounds)-1 {
				le = strconv.FormatFloat(bounds[i], 'g', -1, 64)
			}
			fmt.Fprintf(w, "gpucmpd_job_seconds_bucket{benchmark=%q,le=%q} %d\n", l.Benchmark, le, cum[i])
		}
		fmt.Fprintf(w, "gpucmpd_job_seconds_sum{benchmark=%q} %g\n", l.Benchmark, h.Sum())
		fmt.Fprintf(w, "gpucmpd_job_seconds_count{benchmark=%q} %d\n", l.Benchmark, h.Count())
	}
	fmt.Fprintf(w, "# HELP gpucmpd_job_quantile_seconds Estimated job-latency quantiles per benchmark.\n")
	fmt.Fprintf(w, "# TYPE gpucmpd_job_quantile_seconds gauge\n")
	for _, l := range snap.Latency {
		fmt.Fprintf(w, "gpucmpd_job_quantile_seconds{benchmark=%q,quantile=\"0.5\"} %g\n", l.Benchmark, l.P50Sec)
		fmt.Fprintf(w, "gpucmpd_job_quantile_seconds{benchmark=%q,quantile=\"0.99\"} %g\n", l.Benchmark, l.P99Sec)
	}
}
