package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"gpucmp/internal/arch"
	"gpucmp/internal/sched"
)

func newTestServer(t *testing.T) (*httptest.Server, *sched.Scheduler) {
	t.Helper()
	s := sched.New(sched.Options{Workers: 4})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(New(s, WithFigureScale(16)).Handler())
	t.Cleanup(ts.Close)
	return ts, s
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out map[string]any
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out["status"] != "ok" {
		t.Errorf("status field = %v", out["status"])
	}
}

func TestDevicesAndBenchmarks(t *testing.T) {
	ts, _ := newTestServer(t)

	resp, body := get(t, ts.URL+"/devices")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/devices status = %d", resp.StatusCode)
	}
	var devs []deviceInfo
	if err := json.Unmarshal(body, &devs); err != nil {
		t.Fatal(err)
	}
	if len(devs) != len(arch.All()) {
		t.Errorf("%d devices, want %d", len(devs), len(arch.All()))
	}
	for _, d := range devs {
		wantCUDA := d.Vendor == "NVIDIA"
		hasCUDA := false
		for _, tc := range d.Toolchains {
			if tc == "cuda" {
				hasCUDA = true
			}
		}
		if hasCUDA != wantCUDA {
			t.Errorf("device %s: cuda toolchain = %v, want %v", d.Name, hasCUDA, wantCUDA)
		}
	}

	resp, body = get(t, ts.URL+"/benchmarks")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/benchmarks status = %d", resp.StatusCode)
	}
	var benches []benchmarkInfo
	if err := json.Unmarshal(body, &benches); err != nil {
		t.Fatal(err)
	}
	if len(benches) != 16 {
		t.Errorf("%d benchmarks, want 16", len(benches))
	}
}

func TestRunCachesSecondRequest(t *testing.T) {
	ts, s := newTestServer(t)
	body := `{"benchmark":"Reduce","device":"GeForce GTX480","toolchain":"opencl","config":{"scale":16}}`

	post := func() (int, runResponse, string) {
		resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out runResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, out, resp.Header.Get("X-Cache")
	}

	code, first, xc := post()
	if code != http.StatusOK {
		t.Fatalf("first POST status = %d", code)
	}
	if first.Cached || xc != "miss" {
		t.Errorf("first request: cached=%v X-Cache=%q, want fresh miss", first.Cached, xc)
	}
	if first.Result == nil || first.Result.Benchmark != "Reduce" || first.Result.Value <= 0 {
		t.Fatalf("bad result: %+v", first.Result)
	}

	code, second, xc := post()
	if code != http.StatusOK {
		t.Fatalf("second POST status = %d", code)
	}
	if !second.Cached || xc != "hit" {
		t.Errorf("second request: cached=%v X-Cache=%q, want cache hit", second.Cached, xc)
	}
	if second.Result.Value != first.Result.Value {
		t.Errorf("cached value %v != original %v", second.Result.Value, first.Result.Value)
	}
	if snap := s.Metrics().Snapshot(); snap.CacheHits != 1 || snap.JobsRun != 1 {
		t.Errorf("metrics after two identical POSTs: %+v", snap)
	}
}

func TestRunRejectsBadBodies(t *testing.T) {
	ts, _ := newTestServer(t)
	cases := []string{
		`{"benchmark":"NoSuch","device":"GeForce GTX480","toolchain":"cuda"}`,
		`{"benchmark":"FFT","device":"GTX9000","toolchain":"cuda"}`,
		`{"benchmark":"FFT","device":"Radeon HD5870","toolchain":"cuda"}`,
		`{"benchmark":"FFT","device":"GeForce GTX480","toolchain":"cuda","bogus":1}`,
		`not json`,
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(c))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", c, resp.StatusCode)
		}
	}
	// GET is not allowed.
	resp, err := http.Get(ts.URL + "/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /run status = %d, want 405", resp.StatusCode)
	}
}

func TestFigureEndpointsAndUnknownFigure(t *testing.T) {
	ts, s := newTestServer(t)

	// fig8 is the cheapest figure: 2 devices x 2 Sobel configs.
	resp, body := get(t, ts.URL+"/figures/fig8?scale=16")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/figures/fig8 status = %d: %s", resp.StatusCode, body)
	}
	var f struct {
		Figure string `json:"figure"`
		Scale  int    `json:"scale"`
		Data   []struct {
			Device       string  `json:"device"`
			WithConst    float64 `json:"with_const"`
			WithoutConst float64 `json:"without_const"`
		} `json:"data"`
	}
	if err := json.Unmarshal(body, &f); err != nil {
		t.Fatal(err)
	}
	if f.Figure != "fig8" || f.Scale != 16 || len(f.Data) != 2 {
		t.Fatalf("fig8 payload: %+v", f)
	}
	for _, d := range f.Data {
		if d.WithConst <= 0 || d.WithoutConst <= d.WithConst {
			t.Errorf("%s: constant memory should win: with=%v without=%v", d.Device, d.WithConst, d.WithoutConst)
		}
	}

	// A repeated figure request is served entirely from the result cache.
	jobsBefore := s.Metrics().Snapshot().JobsRun
	if resp, _ := get(t, ts.URL+"/figures/fig8?scale=16"); resp.StatusCode != http.StatusOK {
		t.Fatal("second fig8 request failed")
	}
	if jobsAfter := s.Metrics().Snapshot().JobsRun; jobsAfter != jobsBefore {
		t.Errorf("repeated figure ran %d new jobs, want 0", jobsAfter-jobsBefore)
	}

	// tableV is a static compile study.
	resp, body = get(t, ts.URL+"/figures/tableV")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/figures/tableV status = %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "ld.param") && !strings.Contains(string(body), "ld.const") {
		t.Errorf("tableV should census parameter loads: %.200s", body)
	}

	resp, _ = get(t, ts.URL+"/figures/fig99")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown figure status = %d, want 404", resp.StatusCode)
	}
	resp, _ = get(t, ts.URL+"/figures/fig1?scale=bogus")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad scale status = %d, want 400", resp.StatusCode)
	}
}

func TestMetricsExposition(t *testing.T) {
	ts, s := newTestServer(t)
	// Produce one miss and one hit.
	body := `{"benchmark":"Reduce","device":"GeForce GTX280","toolchain":"cuda","config":{"scale":16}}`
	for i := 0; i < 2; i++ {
		resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	resp, text := get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	for _, want := range []string{
		"gpucmpd_jobs_total 1",
		"gpucmpd_cache_hits_total 1",
		"gpucmpd_cache_misses_total 1",
		"gpucmpd_compile_cache_",
		`gpucmpd_job_seconds_count{benchmark="Reduce"} 1`,
		"gpucmpd_warp_instrs_total",
		"gpucmpd_lane_instrs_total",
		"gpucmpd_sim_superinstr_hits_total",
		"gpucmpd_sim_superinstr_ops_total",
		"gpucmpd_sim_block_compiles_total",
		"gpucmpd_sim_threaded_cache_entries",
		"gpucmpd_sim_threaded_cache_evictions_total",
		`gpucmpd_sim_engine_warp_instrs_total{engine="threaded"}`,
		`gpucmpd_sim_engine_lane_instrs_total{engine="reference"}`,
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("/metrics missing %q\n%s", want, text)
		}
	}
	// The executed Reduce job must have accounted real simulated work, and
	// lane instructions weight warp instructions by active lanes.
	if m := regexp.MustCompile(`gpucmpd_warp_instrs_total (\d+)`).FindStringSubmatch(string(text)); m == nil || m[1] == "0" {
		t.Errorf("gpucmpd_warp_instrs_total not positive:\n%s", text)
	}
	// The default engine is threaded, so a real job must have retired work
	// through fused-segment dispatches.
	if m := regexp.MustCompile(`gpucmpd_sim_superinstr_hits_total (\d+)`).FindStringSubmatch(string(text)); m == nil || m[1] == "0" {
		t.Errorf("gpucmpd_sim_superinstr_hits_total not positive after a threaded-engine job:\n%s", text)
	}

	resp, jsonText := get(t, ts.URL+"/metrics?format=json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics?format=json status = %d", resp.StatusCode)
	}
	var snap sched.Snapshot
	if err := json.Unmarshal(jsonText, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.JobsRun != 1 || snap.CacheHits != 1 {
		t.Errorf("json snapshot: %+v", snap)
	}
	_ = s
}
