package server

import (
	"fmt"
	"net/http"
	"strings"

	"gpucmp/internal/arch"
	"gpucmp/internal/core"
	"gpucmp/internal/ptx"
)

// figureDevices are the devices the paper's figure experiments ran on: the
// two NVIDIA testbeds (figures need the CUDA toolchain; Table VI covers
// the rest).
func figureDevices() []*arch.Device {
	return []*arch.Device{arch.GTX280(), arch.GTX480()}
}

// figure is the /figures/{id} response envelope.
type figure struct {
	Figure string `json:"figure"`
	Title  string `json:"title"`
	Scale  int    `json:"scale,omitempty"`
	Data   any    `json:"data"`
}

// handleFigure regenerates one paper artifact on demand. Every experiment
// cell goes through the scheduler, so a repeated request is served from
// the result cache and concurrent identical requests share one execution.
func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/figures/")
	if id == "" || strings.Contains(id, "/") {
		writeError(w, http.StatusNotFound, codeNotFound, fmt.Errorf("want /figures/{%s}", strings.Join(FigureIDs(), ",")))
		return
	}
	scale, err := s.scaleOf(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, err)
		return
	}
	run := s.runner(r)

	var (
		title string
		data  any
	)
	switch id {
	case "fig1", "fig2":
		title = "Fig. 1: achieved peak memory bandwidth"
		study := core.PeakBandwidthWith
		if id == "fig2" {
			title = "Fig. 2: achieved peak FLOPS"
			study = core.PeakFlopsWith
		}
		var out []core.PeakResult
		for _, a := range figureDevices() {
			p, err := study(run, a, scale)
			if err != nil {
				writeError(w, http.StatusInternalServerError, codeInternal, err)
				return
			}
			out = append(out, p)
		}
		data = out
	case "fig3":
		title = "Fig. 3: PR of the real-world benchmarks, native implementations"
		out := map[string][]*core.Comparison{}
		for _, a := range figureDevices() {
			series, err := core.NativePRSeriesWith(run, a, scale)
			if err != nil {
				writeError(w, http.StatusInternalServerError, codeInternal, err)
				return
			}
			out[a.Name] = series
		}
		data = out
	case "fig4":
		title = "Fig. 4: texture-memory impact on the CUDA MD and SPMV"
		var out []core.TextureImpact
		for _, a := range figureDevices() {
			impacts, err := core.TextureStudyWith(run, a, scale)
			if err != nil {
				writeError(w, http.StatusInternalServerError, codeInternal, err)
				return
			}
			out = append(out, impacts...)
		}
		data = out
	case "fig5":
		title = "Fig. 5: PR of MD and SPMV with texture memory removed"
		out := map[string][]*core.Comparison{}
		for _, a := range figureDevices() {
			series, err := core.TexturePRStudyWith(run, a, scale)
			if err != nil {
				writeError(w, http.StatusInternalServerError, codeInternal, err)
				return
			}
			out[a.Name] = series
		}
		data = out
	case "fig6":
		title = "Fig. 6: FDTD pragma-unroll impact, CUDA"
		var out []core.UnrollImpact
		for _, a := range figureDevices() {
			u, err := core.UnrollStudyCUDAWith(run, a, scale)
			if err != nil {
				writeError(w, http.StatusInternalServerError, codeInternal, err)
				return
			}
			out = append(out, u)
		}
		data = out
	case "fig7":
		title = "Fig. 7: FDTD under matching unroll placements"
		out := map[string][]core.UnrollCombo{}
		for _, a := range figureDevices() {
			combos, err := core.UnrollCombosWith(run, a, scale)
			if err != nil {
				writeError(w, http.StatusInternalServerError, codeInternal, err)
				return
			}
			out[a.Name] = combos
		}
		data = out
	case "fig8":
		title = "Fig. 8: Sobel constant-memory impact"
		var out []core.ConstantImpact
		for _, a := range figureDevices() {
			c, err := core.ConstantStudyWith(run, a, scale)
			if err != nil {
				writeError(w, http.StatusInternalServerError, codeInternal, err)
				return
			}
			out = append(out, c)
		}
		data = out
	case "tableV":
		title = "Table V: PTX instruction census of the FFT forward kernel"
		scale = 0 // static compile study; problem size does not apply
		cu, cl, report, err := core.PTXStudy()
		if err != nil {
			writeError(w, http.StatusInternalServerError, codeInternal, err)
			return
		}
		data = map[string]any{
			"cuda":   statRows(cu),
			"opencl": statRows(cl),
			"report": report,
		}
	case "tableVI":
		title = "Table VI: OpenCL portability across the non-NVIDIA devices"
		cells, err := core.PortabilityStudyWith(run, scale)
		if err != nil {
			writeError(w, http.StatusInternalServerError, codeInternal, err)
			return
		}
		data = cells
	default:
		writeError(w, http.StatusNotFound, codeNotFound,
			fmt.Errorf("unknown figure %q; known figures: %s", id, strings.Join(FigureIDs(), ", ")))
		return
	}
	writeJSON(w, http.StatusOK, figure{Figure: id, Title: title, Scale: scale, Data: data})
}

// FigureIDs lists every artifact /figures/ can regenerate.
func FigureIDs() []string {
	return []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "tableV", "tableVI"}
}

// statRow is a JSON-friendly ptx.StatRow (ptx.Stats itself keys a map by
// struct, which encoding/json cannot marshal).
type statRow struct {
	Instruction string `json:"instruction"`
	Class       string `json:"class"`
	Count       int64  `json:"count"`
}

func statRows(s *ptx.Stats) []statRow {
	rows := s.Rows()
	out := make([]statRow, 0, len(rows)+1)
	for _, r := range rows {
		out = append(out, statRow{Instruction: r.Key.String(), Class: r.Class.String(), Count: r.Count})
	}
	out = append(out, statRow{Instruction: "TOTAL", Class: "", Count: s.Total})
	return out
}
