package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gpucmp/internal/fault"
	"gpucmp/internal/sched"
)

func postCoexec(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/coexec", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func TestCoexecEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, body := postCoexec(t, ts.URL,
		`{"workload":"vecadd","size":16,"devices":["GeForce GTX480","Intel Core i7 920"]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var out coexecResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Report == nil || out.Report.Shards < 2 || out.Degraded {
		t.Fatalf("implausible report: %s", body)
	}
	if len(out.OutputChecksum) != 16 {
		t.Fatalf("checksum %q not 16 hex chars", out.OutputChecksum)
	}
	if out.Served != "miss" {
		t.Errorf("first request served %q, want miss", out.Served)
	}

	// Same canonical request: cache hit with the identical checksum.
	resp2, body2 := postCoexec(t, ts.URL,
		`{"workload":"vecadd","size":16,"devices":["GeForce GTX480","Intel Core i7 920"]}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second status = %d", resp2.StatusCode)
	}
	var out2 coexecResponse
	if err := json.Unmarshal(body2, &out2); err != nil {
		t.Fatal(err)
	}
	if !out2.Cached || out2.Served != "hit" {
		t.Errorf("second request served %q cached=%v, want cached hit", out2.Served, out2.Cached)
	}
	if out2.OutputChecksum != out.OutputChecksum {
		t.Errorf("checksum changed across cache: %q vs %q", out2.OutputChecksum, out.OutputChecksum)
	}
}

func TestCoexecKillDegradedMarkers(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, body := postCoexec(t, ts.URL,
		`{"workload":"mxm","size":96,"shards_per_device":8,
		  "devices":["GeForce GTX480","GeForce GTX280"],
		  "kill":{"GeForce GTX280":1}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var out coexecResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Degraded || out.DegradedMode != "device-lost" || out.DegradedCause == "" {
		t.Fatalf("degraded markers missing: %s", body)
	}
	if len(out.Report.Lost) != 1 || out.Report.Lost[0] != "GeForce GTX280" {
		t.Fatalf("lost device not named: %s", body)
	}

	// The kill run and a clean run of the same split must produce the same
	// bits — kill changes the schedule, never the answer.
	_, cleanBody := postCoexec(t, ts.URL,
		`{"workload":"mxm","size":96,"shards_per_device":8,
		  "devices":["GeForce GTX480","GeForce GTX280"]}`)
	var clean coexecResponse
	if err := json.Unmarshal(cleanBody, &clean); err != nil {
		t.Fatal(err)
	}
	if clean.OutputChecksum != out.OutputChecksum {
		t.Fatalf("mid-run kill changed output bits: %q vs %q", out.OutputChecksum, clean.OutputChecksum)
	}

	// The per-device shard counters made it to /metrics.
	mresp, mbody := get(t, ts.URL+"/metrics")
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", mresp.StatusCode)
	}
	for _, want := range []string{
		"gpucmpd_coexec_shards_total",
		`gpucmpd_coexec_device_lost{device="1:GeForce GTX280"} 1`,
	} {
		if !strings.Contains(string(mbody), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestCoexecBadRequests(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, tc := range []struct {
		name, body string
		status     int
		code       string
	}{
		{"bad workload", `{"workload":"nope","size":8,"devices":["GeForce GTX480"]}`, http.StatusBadRequest, codeBadRequest},
		{"bad device", `{"workload":"vecadd","size":8,"devices":["GTX 9090"]}`, http.StatusBadRequest, codeUnknownDevice},
		{"no devices", `{"workload":"vecadd","size":8,"devices":[]}`, http.StatusBadRequest, codeBadRequest},
		{"size too big", `{"workload":"vecadd","size":100000,"devices":["GeForce GTX480"]}`, http.StatusBadRequest, codeBadRequest},
		{"kill unknown device", `{"workload":"vecadd","size":8,"devices":["GeForce GTX480"],"kill":{"Intel Core i7 920":1}}`, http.StatusBadRequest, codeBadRequest},
		{"unknown field", `{"workload":"vecadd","size":8,"devices":["GeForce GTX480"],"frobnicate":1}`, http.StatusBadRequest, codeBadJSON},
	} {
		resp, body := postCoexec(t, ts.URL, tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.status, body)
			continue
		}
		var eb errorBody
		if err := json.Unmarshal(body, &eb); err != nil {
			t.Errorf("%s: non-JSON error body %s", tc.name, body)
			continue
		}
		if eb.Code != tc.code {
			t.Errorf("%s: code %q, want %q", tc.name, eb.Code, tc.code)
		}
	}

	resp, _ := get(t, ts.URL+"/coexec")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /coexec status = %d, want 405", resp.StatusCode)
	}
}

// TestCoexecTypedFaultFailure: a server built with an injector whose
// schedule makes every shard launch fail permanently must answer with the
// typed coexec-failed code, not a generic internal error.
func TestCoexecTypedFaultFailure(t *testing.T) {
	s := sched.New(sched.Options{Workers: 2})
	t.Cleanup(s.Close)
	in := fault.New(7, fault.Schedule{TransferRate: 1.0}) // uncapped: never recovers
	ts := httptest.NewServer(New(s, WithCoexecFaults(in)).Handler())
	t.Cleanup(ts.Close)

	resp, body := postCoexec(t, ts.URL,
		`{"workload":"vecadd","size":8,"devices":["GeForce GTX480"]}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Code != codeCoexecFailed {
		t.Fatalf("code %q, want %q: %s", eb.Code, codeCoexecFailed, body)
	}
}

// TestCoexecAbandonedNeverCached: a request whose client goes away mid-run
// is abandoned by the scheduler (typed ErrAbandoned) and its result must
// NOT be cached — the next identical request re-executes and succeeds.
func TestCoexecAbandonedNeverCached(t *testing.T) {
	ts, _ := newTestServer(t)
	body := `{"workload":"mxm","size":128,"devices":["GeForce GTX480","GeForce GTX280"]}`

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/coexec",
		bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	cancel() // client walks away immediately; the run is abandoned
	<-done

	// The identical request must not be served from cache: an abandoned
	// execution never produces a cacheable value.
	resp, respBody := postCoexec(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up status = %d: %s", resp.StatusCode, respBody)
	}
	var out coexecResponse
	if err := json.Unmarshal(respBody, &out); err != nil {
		t.Fatal(err)
	}
	if out.Cached {
		t.Fatalf("abandoned run was cached: %s", respBody)
	}
	if out.Report == nil || out.Degraded {
		t.Fatalf("follow-up run wrong: %s", respBody)
	}
}
