package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"gpucmp/internal/fuzz"
	"gpucmp/internal/sched"
	"gpucmp/internal/submit"
)

const corpusDir = "../fuzz/corpus"

// postKernel POSTs body to /kernels as tenant and decodes the classified
// response.
func postKernel(t *testing.T, url, tenant string, body []byte) (*http.Response, kernelResponse) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/kernels", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var kr kernelResponse
	if err := json.Unmarshal(raw, &kr); err != nil {
		t.Fatalf("response is not JSON (%v): %s", err, raw)
	}
	return resp, kr
}

// TestKernelsCorpusReplay POSTs every fuzz corpus program unchanged —
// the wire format IS the corpus format — and expects a fully classified
// "ok" report from each.
func TestKernelsCorpusReplay(t *testing.T) {
	ts, _ := newTestServer(t)
	files, err := filepath.Glob(filepath.Join(corpusDir, "*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus files (%v)", err)
	}
	for _, f := range files {
		t.Run(filepath.Base(f), func(t *testing.T) {
			body, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			resp, kr := postKernel(t, ts.URL, "", body)
			if resp.StatusCode != http.StatusOK || kr.Classification != ClassOK {
				t.Fatalf("status %d classification %q code %q: %s",
					resp.StatusCode, kr.Classification, kr.Code, kr.Error)
			}
			if kr.Report == nil || len(kr.Report.Compile) != 2 {
				t.Fatal("report missing the two-toolchain compile story")
			}
			for _, run := range kr.Report.Runs {
				if run.Status != "ok" {
					t.Errorf("%s/%s status %q (%s)", run.Toolchain, run.Device, run.Status, run.Reason)
				}
			}
		})
	}
}

// TestKernelsHangsReplay replays the hang corpus — programs that
// historically wedged the interpreter — and asserts each now dies a
// typed death: either the static gauntlet refuses it outright or the
// watchdog kills it. The server must answer promptly either way.
func TestKernelsHangsReplay(t *testing.T) {
	ts, _ := newTestServer(t)
	cases := []struct {
		file  string
		class string
		code  string
	}{
		// hang0's loop step is the constant 0: statically unbounded, so
		// the gauntlet refuses it before any execution.
		{"hang0.json", ClassGauntletReject, "unbounded-loop"},
		// hang1's step is loaded from memory and happens to be 0 at run
		// time: no sound static check can refuse it, so the step budget
		// must kill it.
		{"hang1.json", ClassWatchdog, "watchdog"},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			body, err := os.ReadFile(filepath.Join(corpusDir, "hangs", tc.file))
			if err != nil {
				t.Fatal(err)
			}
			start := time.Now()
			resp, kr := postKernel(t, ts.URL, "", body)
			if elapsed := time.Since(start); elapsed > 30*time.Second {
				t.Errorf("hang corpus response took %v; watchdog is not bounding work", elapsed)
			}
			if resp.StatusCode != http.StatusUnprocessableEntity {
				t.Errorf("status = %d, want 422", resp.StatusCode)
			}
			if kr.Classification != tc.class || kr.Code != tc.code {
				t.Errorf("classification %q code %q, want %q/%q (%s)",
					kr.Classification, kr.Code, tc.class, tc.code, kr.Error)
			}
			if tc.class == ClassWatchdog {
				if kr.Report == nil || !kr.Report.Watchdogged {
					t.Error("watchdog response must still carry the report")
				}
			}
		})
	}
}

// TestKernelsStructuredErrors covers the non-2xx contract of POST
// /kernels: every failure is JSON with a stable machine code and the
// right status class.
func TestKernelsStructuredErrors(t *testing.T) {
	s := sched.New(sched.Options{Workers: 2})
	t.Cleanup(s.Close)
	lim := submit.DefaultLimits()
	lim.MaxBody = 512
	ts := httptest.NewServer(New(s, WithSubmitLimits(lim)).Handler())
	t.Cleanup(ts.Close)

	cases := []struct {
		name   string
		tenant string
		body   []byte
		status int
		code   string
	}{
		{"not json", "", []byte("]]]"), http.StatusBadRequest, submit.CodeBadJSON},
		{"empty object", "", []byte("{}"), http.StatusBadRequest, submit.CodeBadShape},
		{"unknown device", "", []byte(`{"grid":1,"block":1,"out":"o",
			"buffers":{"o":[0]},
			"kernel":{"name":"k","params":[{"name":"o","type":"u32","buffer":true,"space":"global"}],
			"body":[{"kind":"store","buf":"o","index":{"kind":"int","type":"u32"},"value":{"kind":"int","type":"u32"}}]},
			"devices":["GeForce 9999"]}`), http.StatusBadRequest, submit.CodeUnknownDevice},
		{"oversized body", "", bytes.Repeat([]byte(" "), 600), http.StatusRequestEntityTooLarge, codeTooLarge},
		{"bad tenant", "no spaces allowed", []byte("{}"), http.StatusBadRequest, codeBadTenant},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, kr := postKernel(t, ts.URL, tc.tenant, tc.body)
			if resp.StatusCode != tc.status {
				t.Errorf("status = %d, want %d", resp.StatusCode, tc.status)
			}
			if kr.Code != tc.code {
				t.Errorf("code = %q, want %q (error: %s)", kr.Code, tc.code, kr.Error)
			}
			if kr.Error == "" {
				t.Error("error body missing the error field")
			}
		})
	}

	t.Run("method not allowed", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/kernels")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET status = %d, want 405", resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow != http.MethodPost {
			t.Errorf("Allow = %q, want POST", allow)
		}
	})
}

// TestRunStructuredErrors pins the same contract on the pre-existing
// POST /run endpoint: typed codes and a body-size cap.
func TestRunStructuredErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	cases := []struct {
		name   string
		body   string
		status int
		code   string
	}{
		{"not json", "]]]", http.StatusBadRequest, codeBadJSON},
		{"unknown benchmark", `{"benchmark":"NoSuch","device":"GeForce GTX480","toolchain":"opencl"}`,
			http.StatusBadRequest, codeUnknownBenchmark},
		{"unknown device", `{"benchmark":"FFT","device":"GeForce 9999","toolchain":"opencl"}`,
			http.StatusBadRequest, codeUnknownDevice},
		{"oversized body", `{"pad":"` + strings.Repeat("x", 1<<17) + `"}`,
			http.StatusRequestEntityTooLarge, codeTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var eb struct {
				Error string `json:"error"`
				Code  string `json:"code"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
				t.Fatalf("error body is not JSON: %v", err)
			}
			if resp.StatusCode != tc.status {
				t.Errorf("status = %d, want %d", resp.StatusCode, tc.status)
			}
			if eb.Code != tc.code {
				t.Errorf("code = %q, want %q (error: %s)", eb.Code, tc.code, eb.Error)
			}
		})
	}
}

// validSubmission is a small well-behaved body pinned to one device so
// the multi-tenant tests run fast.
func validSubmission(t *testing.T) []byte {
	t.Helper()
	return []byte(`{"grid":1,"block":4,"out":"o","buffers":{"o":[0,0,0,0]},
		"kernel":{"name":"k","params":[{"name":"o","type":"u32","buffer":true,"space":"global"}],
		"body":[{"kind":"store","buf":"o",
			"index":{"kind":"builtin","name":"threadIdx.x"},
			"value":{"kind":"builtin","name":"threadIdx.x"}}]},
		"devices":["GeForce GTX480"]}`)
}

// TestKernelsTenantIsolation: one tenant's cached result must never be
// served to another, while repeats within a tenant hit its cache. Run
// under -race this also exercises the tenant cache/flight locking.
func TestKernelsTenantIsolation(t *testing.T) {
	before := runtime.NumGoroutine()
	s := sched.New(sched.Options{Workers: 4})
	srv := httptest.NewServer(New(s).Handler())
	body := validSubmission(t)

	// Warm tenant A, then assert the repeat is a hit.
	_, first := postKernel(t, srv.URL, "alice", body)
	if first.Classification != ClassOK {
		t.Fatalf("first submission failed: %q %s", first.Code, first.Error)
	}
	if first.Cached {
		t.Error("first submission claims to be cached")
	}
	_, again := postKernel(t, srv.URL, "alice", body)
	if !again.Cached || again.Served != "hit" {
		t.Errorf("repeat for the same tenant: cached=%v served=%q, want a cache hit",
			again.Cached, again.Served)
	}
	if again.Key != first.Key {
		t.Errorf("same body produced different keys %q / %q", again.Key, first.Key)
	}

	// Same body from tenant B: same content key, but it must NOT see
	// alice's cache entry.
	_, other := postKernel(t, srv.URL, "bob", body)
	if other.Cached {
		t.Error("cross-tenant cache leak: bob was served alice's cached result")
	}
	if other.Key != first.Key {
		t.Errorf("content key should be tenant-independent, got %q / %q", other.Key, first.Key)
	}

	// A concurrent burst across tenants under -race: every response must
	// be classified ok and cache hits must stay within the tenant.
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			wg.Add(1)
			tenant := fmt.Sprintf("tenant%d", i)
			go func() {
				defer wg.Done()
				resp, kr := postKernel(t, srv.URL, tenant, body)
				if resp.StatusCode != http.StatusOK || kr.Classification != ClassOK {
					errs <- fmt.Sprintf("%s: status %d class %q", tenant, resp.StatusCode, kr.Classification)
				}
			}()
			_ = j
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	for i := 0; i < 4; i++ {
		if n := s.TenantCacheLen(fmt.Sprintf("tenant%d", i)); n != 1 {
			t.Errorf("tenant%d cache has %d entries, want 1", i, n)
		}
	}

	// Goroutine-leak check: tearing down the server and scheduler must
	// return us to the baseline.
	srv.Close()
	s.Close()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

// TestKernelsQuota: a rate-limited tenant gets a classified 429 with a
// Retry-After header before the server does any parsing work, and other
// tenants are unaffected.
func TestKernelsQuota(t *testing.T) {
	s := sched.New(sched.Options{
		Workers: 2,
		Quota:   sched.QuotaConfig{Rate: 0.01, Burst: 1},
	})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(New(s).Handler())
	t.Cleanup(ts.Close)
	body := validSubmission(t)

	resp, kr := postKernel(t, ts.URL, "greedy", body)
	if resp.StatusCode != http.StatusOK || kr.Classification != ClassOK {
		t.Fatalf("first request: status %d class %q", resp.StatusCode, kr.Classification)
	}
	resp, kr = postKernel(t, ts.URL, "greedy", body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request: status %d, want 429", resp.StatusCode)
	}
	if kr.Classification != ClassQuota || kr.Code != codeQuota {
		t.Errorf("classification %q code %q, want quota/%s", kr.Classification, kr.Code, codeQuota)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("Retry-After = %q, want a positive number of seconds", ra)
	}
	if kr.RetryAfterSeconds < 1 {
		t.Errorf("retry_after_seconds = %v, want >= 1", kr.RetryAfterSeconds)
	}

	// A different tenant has its own bucket.
	resp, kr = postKernel(t, ts.URL, "patient", body)
	if resp.StatusCode != http.StatusOK || kr.Classification != ClassOK {
		t.Errorf("other tenant throttled too: status %d class %q", resp.StatusCode, kr.Classification)
	}
}

// TestKernelsAttackCampaign runs the kfuzz -attack client in-process
// against a live server: every hostile submission must come back
// classified; any 5xx, hang, or unclassifiable body fails the campaign.
func TestKernelsAttackCampaign(t *testing.T) {
	ts, _ := newTestServer(t)
	// 36 requests cycle through every mutator twice (18 mutators).
	rep, err := fuzz.Attack(ts.URL, 1, 36, fuzz.AttackOptions{
		Tenants:     []string{"red", "blue"},
		Concurrency: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("unclassified responses:\n%s", strings.Join(rep.Unclassified, "\n"))
	}
	if rep.Requests != 36 {
		t.Errorf("requests = %d, want 36", rep.Requests)
	}
	if rep.ByClass[ClassGauntletReject] == 0 {
		t.Error("campaign produced no gauntlet rejections; mutators are not hostile enough")
	}
	if rep.ByClass[ClassOK]+rep.ByClass[ClassWatchdog] == 0 {
		t.Error("campaign produced no executed kernels at all")
	}
}
