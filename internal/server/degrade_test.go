package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gpucmp/internal/fault"
	"gpucmp/internal/sched"
)

func postRun(t *testing.T, url string, job sched.Job) (*http.Response, runResponse, string) {
	t.Helper()
	body, err := json.Marshal(job)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/run", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out runResponse
	raw := json.NewDecoder(resp.Body)
	var errBody string
	if resp.StatusCode == http.StatusOK {
		if err := raw.Decode(&out); err != nil {
			t.Fatal(err)
		}
	} else {
		var eb errorBody
		raw.Decode(&eb) //nolint:errcheck
		errBody = eb.Error
	}
	return resp, out, errBody
}

// TestDegradedEstimateWhenEveryJobHangs: the live path always hits the
// watchdog; a rate-valued benchmark must be served as a perfmodel estimate
// with the Degraded marker, not a 500.
func TestDegradedEstimateWhenEveryJobHangs(t *testing.T) {
	inj := fault.New(7, fault.Schedule{HangRate: 1.0})
	s := sched.New(sched.Options{Workers: 1, JobTimeout: 20 * time.Millisecond, Injector: inj})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(New(s).Handler())
	t.Cleanup(ts.Close)

	job := sched.Job{Benchmark: "Reduce", Device: "GeForce GTX480", Toolchain: "opencl"}
	job.Config.Scale = 16
	resp, out, _ := postRun(t, ts.URL, job)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 (degraded estimate)", resp.StatusCode)
	}
	if !out.Degraded || out.DegradedMode != "estimate" || out.Served != "degraded" {
		t.Fatalf("response = %+v, want degraded estimate", out)
	}
	if out.Result == nil || out.Result.Value <= 0 || out.Result.Metric != "GB/sec" {
		t.Fatalf("estimate result = %+v, want a positive GB/sec value", out.Result)
	}
	if out.DegradedCause == "" {
		t.Error("degraded response must carry the live-path failure cause")
	}
	if resp.Header.Get("X-Cache") != "degraded" {
		t.Errorf("X-Cache = %q, want degraded", resp.Header.Get("X-Cache"))
	}
}

// TestDegradationLadderStaleAnd503 drives the full ladder on a time-valued
// benchmark (no analytical estimate exists for "sec"): a breaker trip must
// route a previously-seen job to its stale result and a never-seen job to
// 503 + Retry-After, while /healthz and /metrics reflect the open breaker.
func TestDegradationLadderStaleAnd503(t *testing.T) {
	const seed = 11
	schedule := fault.Schedule{TransientRate: 0.5}
	device := "GeForce GTX480"

	mkJob := func(scale int) sched.Job {
		j := sched.Job{Benchmark: "Sobel", Device: device, Toolchain: "opencl"}
		j.Config.Scale = scale
		return j
	}
	// Replay the injector's deterministic schedule to find a job whose
	// first launch is clean (to populate the stale store) and two whose
	// first launch faults (to trip the breaker).
	probe := fault.New(seed, schedule)
	goodScale, badScales := 0, []int{}
	for scale := 16; scale < 64; scale++ {
		if probe.Launch(mkJob(scale).Key()) == nil {
			if goodScale == 0 {
				goodScale = scale
			}
		} else if len(badScales) < 2 {
			badScales = append(badScales, scale)
		}
	}
	if goodScale == 0 || len(badScales) < 2 {
		t.Fatalf("seed %d yielded no usable schedule (good=%d bad=%v)", seed, goodScale, badScales)
	}

	inj := fault.New(seed, schedule)
	s := sched.New(sched.Options{
		Workers:   1,
		CacheSize: -1, // no result cache: repeat requests exercise the live path
		Retry:     sched.RetryPolicy{MaxAttempts: 1},
		Breaker:   sched.BreakerConfig{FailureThreshold: 2, CoolDown: time.Hour},
		Injector:  inj,
	})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(New(s).Handler())
	t.Cleanup(ts.Close)

	// 1. A clean run populates the stale store.
	resp, out, _ := postRun(t, ts.URL, mkJob(goodScale))
	if resp.StatusCode != http.StatusOK || out.Degraded {
		t.Fatalf("clean run: status %d degraded %v, want live 200", resp.StatusCode, out.Degraded)
	}

	// 2. Two faulting jobs exhaust their single attempt: 500s (Permanent),
	// and the second trips the device's breaker.
	for _, scale := range badScales {
		if resp, _, _ := postRun(t, ts.URL, mkJob(scale)); resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("faulting job scale %d: status %d, want 500", scale, resp.StatusCode)
		}
	}
	if st := s.BreakerState(device); st != sched.BreakerOpen {
		t.Fatalf("breaker = %v, want open after %d failures", st, 2)
	}

	// 3. The previously-seen job is denied by the breaker; "sec" has no
	// estimate, so it is served stale with the Degraded marker.
	resp, out, _ = postRun(t, ts.URL, mkJob(goodScale))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stale rung: status %d, want 200", resp.StatusCode)
	}
	if !out.Degraded || out.DegradedMode != "stale" || out.Result == nil || out.Result.Benchmark != "Sobel" {
		t.Fatalf("stale rung: %+v, want degraded stale Sobel result", out)
	}
	if !strings.Contains(out.DegradedCause, "breaker") {
		t.Errorf("cause = %q, want the breaker denial", out.DegradedCause)
	}

	// 4. A never-seen job has no stale entry either: 503 + Retry-After.
	resp, _, errMsg := postRun(t, ts.URL, mkJob(99))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("503 rung: status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("Retry-After = %q, want the breaker cool-down", ra)
	}
	if !strings.Contains(errMsg, "breaker") {
		t.Errorf("503 body = %q, want the breaker denial", errMsg)
	}

	// 5. /healthz reflects the open breaker.
	hresp, hbody := get(t, ts.URL+"/healthz")
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status = %d", hresp.StatusCode)
	}
	var health struct {
		Status   string                  `json:"status"`
		Breakers []sched.BreakerSnapshot `json:"breakers"`
	}
	if err := json.Unmarshal(hbody, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "degraded" {
		t.Errorf("healthz status = %q, want degraded", health.Status)
	}
	if len(health.Breakers) != 1 || health.Breakers[0].Device != device || health.Breakers[0].State != "open" {
		t.Errorf("healthz breakers = %+v, want one open breaker for %s", health.Breakers, device)
	}

	// 6. /metrics exposes the resilience counters and breaker state.
	_, mbody := get(t, ts.URL+"/metrics")
	for _, want := range []string{
		`gpucmpd_degraded_total{mode="stale"} 1`,
		`gpucmpd_unavailable_total 1`,
		fmt.Sprintf("gpucmpd_breaker_state{device=%q} 2", device),
		"gpucmpd_breaker_trips_total 1",
		"gpucmpd_breaker_denials_total",
	} {
		if !strings.Contains(string(mbody), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
