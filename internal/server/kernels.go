package server

// POST /kernels: the untrusted kernel-submission endpoint — a
// compiler-explorer-style playground over the modelled CUDA/OpenCL
// toolchains. The request body is the fuzz-corpus JSON program format
// (internal/submit.Parse); the reply carries both personalities' compile
// reports, the per-device execution matrix run under a watchdog step
// budget, and a PTX diff.
//
// Defense ladder, in order (each rung runs only if the previous passed):
//
//	quota        → 429 + Retry-After   (token bucket per X-Tenant)
//	body cap     → 413                 (http.MaxBytesReader)
//	parse/limits → 400                 (shape, sizes, unknown devices)
//	gauntlet     → 422                 (kir.Check / uniform barriers / bounded loops)
//	execution    → 200, or 422 "watchdog" when the step budget killed it
//
// Every response, success or failure, carries a "classification" field —
// ok | gauntlet-reject | watchdog | quota — so adversarial clients (and
// kfuzz -attack) can assert that no submission ever produces an
// unclassified outcome.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"strconv"

	"gpucmp/internal/sched"
	"gpucmp/internal/submit"
)

// Classifications of a /kernels response.
const (
	ClassOK             = "ok"
	ClassGauntletReject = "gauntlet-reject"
	ClassWatchdog       = "watchdog"
	ClassQuota          = "quota"
)

// kernelResponse is the POST /kernels reply, for every outcome. Error
// replies reuse the errorBody field names (error, code) so generic
// clients need only one decoder.
type kernelResponse struct {
	Classification string `json:"classification"`
	Code           string `json:"code,omitempty"`
	Error          string `json:"error,omitempty"`

	Key               string  `json:"key,omitempty"`    // content key (cache identity)
	Served            string  `json:"served,omitempty"` // miss | hit | shared
	Cached            bool    `json:"cached,omitempty"`
	RetryAfterSeconds float64 `json:"retry_after_seconds,omitempty"`

	Report *submit.Report `json:"report,omitempty"`
}

// tenantRe validates the X-Tenant header: short, printable, no
// separators, so tenant names can appear raw in cache keys and metrics
// labels.
var tenantRe = regexp.MustCompile(`^[A-Za-z0-9._-]{1,64}$`)

// DefaultTenant is used when a request carries no X-Tenant header.
const DefaultTenant = "anon"

func (s *Server) handleKernels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, codeMethodNotAllowed,
			fmt.Errorf("POST a kernel program to /kernels"))
		return
	}
	tenant := r.Header.Get("X-Tenant")
	if tenant == "" {
		tenant = DefaultTenant
	}
	if !tenantRe.MatchString(tenant) {
		writeError(w, http.StatusBadRequest, codeBadTenant,
			fmt.Errorf("X-Tenant must match %s", tenantRe))
		return
	}

	// Rung 1: quota. Consulted before any parsing so a throttled tenant
	// cannot make the server do work.
	if ok, retry := s.sched.Quotas().Allow(tenant); !ok {
		secs := math.Ceil(retry.Seconds())
		w.Header().Set("Retry-After", strconv.Itoa(int(secs)))
		s.quotaDenials.Add(1)
		writeJSON(w, http.StatusTooManyRequests, kernelResponse{
			Classification:    ClassQuota,
			Code:              codeQuota,
			Error:             fmt.Sprintf("tenant %q is over its submission quota", tenant),
			RetryAfterSeconds: secs,
		})
		return
	}

	// Rung 2: body cap.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.limits.MaxBody))
	if err != nil {
		status, code := http.StatusBadRequest, codeBadRequest
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			status, code = http.StatusRequestEntityTooLarge, codeTooLarge
		}
		s.rejectKernel(w, status, code, err)
		return
	}

	// Rung 3: parse + resource limits.
	sub, err := submit.Parse(body, s.limits)
	if err != nil {
		s.rejectKernel(w, http.StatusBadRequest, submit.Code(err), err)
		return
	}

	// Rung 4: the static gauntlet.
	if err := submit.Gauntlet(sub.Kernel); err != nil {
		s.rejectKernel(w, http.StatusUnprocessableEntity, submit.Code(err), err)
		return
	}

	// Rung 5: compile + execute on the worker pool, deduplicated and
	// cached within this tenant's namespace only.
	key := sub.ContentKey()
	lim := s.limits
	v, outcome, err := s.sched.DoTask(r.Context(), tenant, "kernel-submit", key,
		func(ctx context.Context) (any, error) { return submit.Run(ctx, sub, lim) })
	if err != nil {
		if submit.Code(err) == submit.CodeCompileFailed {
			// A checked kernel the front end still refused: treat like a
			// gauntlet rejection (the gauntlet's last line of defense).
			s.rejectKernel(w, http.StatusUnprocessableEntity, submit.CodeCompileFailed, err)
			return
		}
		writeError(w, http.StatusInternalServerError, codeInternal, err)
		return
	}
	rep, ok := v.(*submit.Report)
	if !ok {
		writeError(w, http.StatusInternalServerError, codeInternal,
			fmt.Errorf("unexpected task result %T", v))
		return
	}
	resp := kernelResponse{
		Classification: ClassOK,
		Key:            key,
		Served:         outcome.String(),
		Cached:         outcome == sched.Hit,
		Report:         rep,
	}
	status := http.StatusOK
	if rep.Watchdogged {
		// The step budget killed at least one execution: the kernel does
		// not terminate (or takes unreasonably long). The report is still
		// returned — the compile story and any completed runs are valid.
		resp.Classification = ClassWatchdog
		resp.Code = "watchdog"
		status = http.StatusUnprocessableEntity
	}
	w.Header().Set("X-Cache", outcome.String())
	writeJSON(w, status, resp)
}

// rejectKernel writes a classified rejection (parse or gauntlet) in the
// kernelResponse shape.
func (s *Server) rejectKernel(w http.ResponseWriter, status int, code string, err error) {
	s.gauntletRejects.Add(1)
	writeJSON(w, status, kernelResponse{
		Classification: ClassGauntletReject,
		Code:           code,
		Error:          err.Error(),
	})
}
