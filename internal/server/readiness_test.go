package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"gpucmp/internal/sched"
)

// TestLivenessVsReadiness: /healthz/live answers 200 unconditionally
// (the process is up), while /healthz/ready flips to 503 during drain so
// load balancers and the fleet coordinator stop routing here first.
func TestLivenessVsReadiness(t *testing.T) {
	s := sched.New(sched.Options{Workers: 1})
	t.Cleanup(s.Close)
	srv := New(s)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	check := func(path string, wantStatus int, wantField, wantValue string) {
		t.Helper()
		resp, body := get(t, ts.URL+path)
		if resp.StatusCode != wantStatus {
			t.Fatalf("%s status = %d, want %d", path, resp.StatusCode, wantStatus)
		}
		var out map[string]any
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatalf("%s body: %v", path, err)
		}
		if out[wantField] != wantValue {
			t.Errorf("%s %s = %v, want %q", path, wantField, out[wantField], wantValue)
		}
	}

	check("/healthz/live", http.StatusOK, "status", "alive")
	check("/healthz/ready", http.StatusOK, "status", "ready")
	if !srv.Ready() {
		t.Error("Ready() = false before drain")
	}

	srv.SetReady(false)
	check("/healthz/live", http.StatusOK, "status", "alive") // liveness unaffected by drain
	check("/healthz/ready", http.StatusServiceUnavailable, "status", "draining")
	if srv.Ready() {
		t.Error("Ready() = true during drain")
	}

	// /healthz keeps serving during drain and reports ready=false.
	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status during drain = %d", resp.StatusCode)
	}
	var out map[string]any
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out["ready"] != false {
		t.Errorf("/healthz ready = %v during drain, want false", out["ready"])
	}

	srv.SetReady(true)
	check("/healthz/ready", http.StatusOK, "status", "ready")
}
