package server

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"sort"
	"strings"

	"gpucmp/internal/arch"
	"gpucmp/internal/coexec"
	"gpucmp/internal/fault"
	"gpucmp/internal/sched"
)

// decodeJSON decodes a strict, size-capped JSON body; on failure it writes
// the error reply itself and returns a non-nil error.
func decodeJSON[T any](w http.ResponseWriter, r *http.Request) (*T, error) {
	var v T
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRunBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&v); err != nil {
		status, code := http.StatusBadRequest, codeBadJSON
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			status, code = http.StatusRequestEntityTooLarge, codeTooLarge
		}
		writeError(w, status, code, fmt.Errorf("bad request body: %w", err))
		return nil, err
	}
	return &v, nil
}

// coexecRequest is the POST /coexec body: split one workload launch across
// several devices and return the run report. The merged output itself is
// returned as a checksum, not inline — it can be megabytes, and clients of
// this endpoint care about the schedule, not the words.
type coexecRequest struct {
	Workload        string         `json:"workload"` // vecadd | sobel | mxm
	Size            int            `json:"size"`
	Devices         []string       `json:"devices"`
	ShardsPerDevice int            `json:"shards_per_device,omitempty"`
	Kill            map[string]int `json:"kill,omitempty"` // deterministic mid-run device loss
}

// coexecResponse mirrors runResponse: the report plus how it was served,
// with the run's degraded state lifted to the top level so clients can
// treat it uniformly with /run degradation.
type coexecResponse struct {
	Report         *coexec.Report `json:"report"`
	OutputChecksum string         `json:"output_checksum"` // fnv64a over the merged words
	Cached         bool           `json:"cached"`
	Served         string         `json:"served"`

	Degraded      bool   `json:"degraded,omitempty"`
	DegradedMode  string `json:"degraded_mode,omitempty"` // "device-lost"
	DegradedCause string `json:"degraded_cause,omitempty"`
}

// coexecRun is what the scheduler caches for one coexec key.
type coexecRun struct {
	Report   *coexec.Report
	Checksum string
}

// coexecMaxSize bounds the simulated problem so one request stays
// interactive; cmd/coexecbench is the tool for big sweeps.
const coexecMaxSize = 512

func (req *coexecRequest) validate() error {
	if _, err := coexec.Named(req.Workload, 1); err != nil {
		return err
	}
	if req.Size < 1 || req.Size > coexecMaxSize {
		return fmt.Errorf("size %d out of range [1,%d]", req.Size, coexecMaxSize)
	}
	if len(req.Devices) == 0 {
		return errors.New("at least one device required")
	}
	if len(req.Devices) > len(arch.All()) {
		return fmt.Errorf("%d devices: more than exist", len(req.Devices))
	}
	for name := range req.Kill {
		found := false
		for _, d := range req.Devices {
			if d == name {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("kill names %q, which is not in devices", name)
		}
	}
	return nil
}

// key canonicalises the request into a cache key: same split, same kill
// schedule, same answer (the simulator is deterministic).
func (req *coexecRequest) key() string {
	var kills []string
	for name, n := range req.Kill {
		kills = append(kills, fmt.Sprintf("%s=%d", name, n))
	}
	sort.Strings(kills)
	return fmt.Sprintf("coexec|%s|%d|%s|%d|%s",
		strings.ToLower(req.Workload), req.Size,
		strings.Join(req.Devices, ","), req.ShardsPerDevice, strings.Join(kills, ","))
}

func (s *Server) handleCoexec(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, codeMethodNotAllowed,
			fmt.Errorf("POST a coexec request body to /coexec"))
		return
	}
	req, err := decodeJSON[coexecRequest](w, r)
	if err != nil {
		return // decodeJSON already replied
	}
	devices := make([]*arch.Device, len(req.Devices))
	for i, name := range req.Devices {
		a, err := arch.Resolve(name)
		if err != nil {
			writeError(w, http.StatusBadRequest, codeUnknownDevice, err)
			return
		}
		devices[i] = a
	}
	if err := req.validate(); err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, err)
		return
	}
	wl, err := coexec.Named(req.Workload, req.Size)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, err)
		return
	}

	// One cache/dedup entry per canonical split, under the "coexec"
	// tenant. DoTask caches only successful values, so a run abandoned by
	// its client (context cancelled -> ErrAbandoned) is never cached and
	// the next request re-executes.
	v, outcome, err := s.sched.DoTask(r.Context(), "coexec", "coexec", req.key(),
		func(ctx context.Context) (any, error) {
			out, rep, err := coexec.Run(ctx, wl, coexec.Options{
				Devices:         devices,
				ShardsPerDevice: req.ShardsPerDevice,
				Injector:        s.coexecInjector,
				Metrics:         s.coexecMetrics,
				Kill:            req.Kill,
			})
			if err != nil {
				return nil, err
			}
			h := fnv.New64a()
			var buf [4]byte
			for _, word := range out {
				binary.LittleEndian.PutUint32(buf[:], word)
				h.Write(buf[:]) //nolint:errcheck // fnv never fails
			}
			return &coexecRun{Report: rep, Checksum: fmt.Sprintf("%016x", h.Sum64())}, nil
		})
	if err != nil {
		var se *coexec.ShardError
		if errors.As(err, &se) {
			// A shard exhausted its retry budget on every device: a typed,
			// deterministic failure, not a service degradation.
			writeError(w, http.StatusInternalServerError, codeCoexecFailed, err)
			return
		}
		writeError(w, http.StatusInternalServerError, codeInternal, err)
		return
	}
	run := v.(*coexecRun)
	resp := coexecResponse{
		Report:         run.Report,
		OutputChecksum: run.Checksum,
		Cached:         outcome == sched.Hit,
		Served:         outcome.String(),
	}
	if run.Report.Degraded {
		resp.Degraded = true
		resp.DegradedMode = "device-lost"
		resp.DegradedCause = run.Report.DegradedCause
	}
	w.Header().Set("X-Cache", outcome.String())
	writeJSON(w, http.StatusOK, resp)
}

// WithCoexecFaults installs the fault injector driving POST /coexec runs
// (nil = no injected faults) — the knob cmd/gpucmpd exposes as
// -inject-transfer-rate / -inject-device-lost-rate.
func WithCoexecFaults(in *fault.Injector) Option {
	return func(s *Server) { s.coexecInjector = in }
}
