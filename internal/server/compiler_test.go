package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"gpucmp/internal/compiler"
)

// TestCompilerPassesEndpoint: GET /compiler/passes publishes the compiler's
// pass and knob vocabulary, matching the in-process registries.
func TestCompilerPassesEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, body := get(t, ts.URL+"/compiler/passes")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var info compilerInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	wantPasses := compiler.DefaultPassNames()
	if len(info.Passes) != len(wantPasses) {
		t.Fatalf("%d passes, want %d", len(info.Passes), len(wantPasses))
	}
	for i, p := range info.Passes {
		if p.Name != wantPasses[i] {
			t.Errorf("pass %d = %q, want %q (order is the pipeline order)", i, p.Name, wantPasses[i])
		}
		if p.Description == "" {
			t.Errorf("pass %q has no description", p.Name)
		}
	}
	if len(info.GapKnobs) != len(compiler.GapKnobs()) {
		t.Errorf("%d gap knobs, want %d", len(info.GapKnobs), len(compiler.GapKnobs()))
	}
	if len(info.FeatureKnobs) != len(compiler.FeatureKnobs()) {
		t.Errorf("%d feature knobs, want %d", len(info.FeatureKnobs), len(compiler.FeatureKnobs()))
	}
}

// TestRunResultCarriesKernelReports: a /run reply includes the per-kernel
// pass statistics and remarks, so service clients can see the compiler
// story without local access.
func TestRunResultCarriesKernelReports(t *testing.T) {
	ts, _ := newTestServer(t)
	body := `{"benchmark":"FFT","device":"GeForce GTX480","toolchain":"opencl","config":{"scale":16}}`
	resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out runResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if out.Result == nil || len(out.Result.Kernels) == 0 {
		t.Fatalf("/run result carries no kernel reports: %+v", out.Result)
	}
	for _, kr := range out.Result.Kernels {
		if len(kr.PassStats) == 0 {
			t.Errorf("kernel %s: no pass stats over the wire", kr.Name)
		}
		if kr.Toolchain != "opencl" {
			t.Errorf("kernel %s tagged %q", kr.Name, kr.Toolchain)
		}
	}
}
