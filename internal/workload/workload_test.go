package workload

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed must give the same stream")
		}
	}
	if NewRNG(1).Next() == NewRNG(2).Next() {
		t.Error("different seeds should diverge immediately")
	}
	if NewRNG(0).Next() == 0 {
		t.Error("zero seed must be remapped")
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		if v := r.Float32(); v < 0 || v >= 1 {
			t.Fatalf("Float32 out of range: %g", v)
		}
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	fs := r.Floats(100, -2, 3)
	for _, f := range fs {
		if f < -2 || f >= 3 {
			t.Fatalf("Floats out of range: %g", f)
		}
	}
	ks := r.Keys(100, 1000)
	for _, k := range ks {
		if k >= 1000 {
			t.Fatalf("key out of range: %d", k)
		}
	}
}

func TestRandomCSRWellFormed(t *testing.T) {
	f := func(seed uint64) bool {
		m := RandomCSR(50, 60, 5, seed)
		if len(m.RowPtr) != 51 || m.RowPtr[0] != 0 {
			return false
		}
		for r := 0; r < 50; r++ {
			if m.RowPtr[r] > m.RowPtr[r+1] {
				return false
			}
			prev := int64(-1)
			for j := m.RowPtr[r]; j < m.RowPtr[r+1]; j++ {
				c := m.ColIdx[j]
				if c >= 60 || int64(c) <= prev { // sorted, unique, in range
					return false
				}
				prev = int64(c)
			}
		}
		return int(m.RowPtr[50]) == m.NNZ() && len(m.Values) == m.NNZ()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestRandomGraphConnectedAndInRange(t *testing.T) {
	g := RandomGraph(200, 6, 3)
	if len(g.Starts) != 201 {
		t.Fatal("starts length wrong")
	}
	for i := 0; i < 200; i++ {
		if g.Starts[i] > g.Starts[i+1] {
			t.Fatal("starts not monotone")
		}
		// The ring backbone guarantees at least one out-edge per node.
		if g.Starts[i+1] == g.Starts[i] {
			t.Fatalf("node %d has no edges", i)
		}
	}
	for _, e := range g.Edges {
		if int(e) >= 200 {
			t.Fatalf("edge target out of range: %d", e)
		}
	}
	// Reachability from node 0 via the backbone.
	seen := make([]bool, 200)
	queue := []int{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for j := g.Starts[u]; j < g.Starts[u+1]; j++ {
			v := int(g.Edges[j])
			if !seen[v] {
				seen[v] = true
				count++
				queue = append(queue, v)
			}
		}
	}
	if count != 200 {
		t.Errorf("graph not fully reachable: %d/200", count)
	}
}

func TestRandomMDNeighbours(t *testing.T) {
	s := RandomMD(100, 8, 5)
	if len(s.Neighbors) != 800 || len(s.X) != 100 {
		t.Fatal("sizes wrong")
	}
	for j := 0; j < 8; j++ {
		for i := 0; i < 100; i++ {
			n := s.Neighbors[j*100+i]
			if n >= 100 {
				t.Fatalf("neighbour out of range: %d", n)
			}
			if int(n) == i {
				t.Fatalf("atom %d is its own neighbour", i)
			}
		}
	}
}

func TestImagesAndSignals(t *testing.T) {
	img := GrayImage(32, 16, 1)
	if len(img) != 512 {
		t.Fatal("gray image size wrong")
	}
	rgba := RGBAImage(16, 16, 1)
	if len(rgba) != 256 {
		t.Fatal("rgba image size wrong")
	}
	for _, p := range rgba {
		if p>>24 != 0xff {
			t.Fatal("alpha channel must be opaque")
		}
	}
	re, im := SignalBatch(4, 64, 9)
	if len(re) != 256 || len(im) != 256 {
		t.Fatal("signal batch size wrong")
	}
	for i := range re {
		if re[i] < -1 || re[i] >= 1 || im[i] < -1 || im[i] >= 1 {
			t.Fatal("signal out of range")
		}
	}
}
