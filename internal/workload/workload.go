// Package workload generates the deterministic inputs of every benchmark:
// pseudo-random arrays, gray images, CSR sparse matrices, random graphs,
// molecular-dynamics neighbour lists, and FFT signal batches. All
// generators are seeded xorshift so every run of every experiment sees the
// same data.
package workload

// RNG is a small deterministic xorshift64* generator.
type RNG struct{ s uint64 }

// NewRNG seeds a generator (zero seeds are remapped).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{s: seed}
}

// Next returns the next 64-bit value.
func (r *RNG) Next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545f4914f6cdd1d
}

// Uint32 returns a 32-bit value.
func (r *RNG) Uint32() uint32 { return uint32(r.Next() >> 32) }

// Intn returns a value in [0, n).
func (r *RNG) Intn(n int) int { return int(r.Next() % uint64(n)) }

// Float32 returns a value in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Next()>>40) / float32(1<<24)
}

// Floats returns n floats in [lo, hi).
func (r *RNG) Floats(n int, lo, hi float32) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = lo + (hi-lo)*r.Float32()
	}
	return out
}

// Keys returns n keys bounded below maxKey (for the sorting benchmarks).
func (r *RNG) Keys(n int, maxKey uint32) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = r.Uint32() % maxKey
	}
	return out
}

// GrayImage returns a w*h float image with smooth structure plus noise —
// enough variation that Sobel responses are non-trivial.
func GrayImage(w, h int, seed uint64) []float32 {
	r := NewRNG(seed)
	img := make([]float32, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := float32((x*7+y*13)%251)/251.0 + 0.1*r.Float32()
			img[y*w+x] = v
		}
	}
	return img
}

// CSR is a compressed-sparse-row matrix.
type CSR struct {
	Rows   int
	Cols   int
	RowPtr []uint32 // len Rows+1
	ColIdx []uint32 // len NNZ
	Values []float32
}

// NNZ returns the stored-element count.
func (m *CSR) NNZ() int { return len(m.ColIdx) }

// RandomCSR builds a rows x cols matrix with about nnzPerRow entries per
// row at sorted random columns.
func RandomCSR(rows, cols, nnzPerRow int, seed uint64) *CSR {
	r := NewRNG(seed)
	m := &CSR{Rows: rows, Cols: cols, RowPtr: make([]uint32, rows+1)}
	for i := 0; i < rows; i++ {
		n := nnzPerRow/2 + r.Intn(nnzPerRow+1)
		if n < 1 {
			n = 1
		}
		seen := make(map[uint32]bool, n)
		cols32 := make([]uint32, 0, n)
		for len(cols32) < n {
			c := uint32(r.Intn(cols))
			if !seen[c] {
				seen[c] = true
				cols32 = append(cols32, c)
			}
		}
		// insertion sort (n is small)
		for a := 1; a < len(cols32); a++ {
			for b := a; b > 0 && cols32[b-1] > cols32[b]; b-- {
				cols32[b-1], cols32[b] = cols32[b], cols32[b-1]
			}
		}
		for _, c := range cols32 {
			m.ColIdx = append(m.ColIdx, c)
			m.Values = append(m.Values, r.Float32()+0.1)
		}
		m.RowPtr[i+1] = uint32(len(m.ColIdx))
	}
	return m
}

// Graph is a CSR adjacency structure for BFS.
type Graph struct {
	Nodes  int
	Starts []uint32 // len Nodes+1
	Edges  []uint32
}

// RandomGraph builds a connected-ish random graph of avgDegree.
func RandomGraph(nodes, avgDegree int, seed uint64) *Graph {
	r := NewRNG(seed)
	adj := make([][]uint32, nodes)
	// A ring backbone keeps the graph connected so BFS reaches everything.
	for i := 0; i < nodes; i++ {
		adj[i] = append(adj[i], uint32((i+1)%nodes))
	}
	extra := nodes * (avgDegree - 1)
	for e := 0; e < extra; e++ {
		a := r.Intn(nodes)
		b := r.Intn(nodes)
		if a != b {
			adj[a] = append(adj[a], uint32(b))
		}
	}
	g := &Graph{Nodes: nodes, Starts: make([]uint32, nodes+1)}
	for i := 0; i < nodes; i++ {
		g.Edges = append(g.Edges, adj[i]...)
		g.Starts[i+1] = uint32(len(g.Edges))
	}
	return g
}

// MDSystem is a particle set with fixed-size neighbour lists (the SHOC MD
// shape: j-th neighbour of atom i at Neighbors[j*Atoms+i]).
type MDSystem struct {
	Atoms     int
	MaxNeigh  int
	X, Y, Z   []float32
	Neighbors []uint32
}

// RandomMD places atoms in a cube and picks random neighbour lists. Random
// neighbours make the position gather maximally irregular, which is the
// access pattern the paper's texture-memory analysis hinges on.
func RandomMD(atoms, maxNeigh int, seed uint64) *MDSystem {
	r := NewRNG(seed)
	s := &MDSystem{
		Atoms: atoms, MaxNeigh: maxNeigh,
		X: r.Floats(atoms, 0, 20), Y: r.Floats(atoms, 0, 20), Z: r.Floats(atoms, 0, 20),
		Neighbors: make([]uint32, atoms*maxNeigh),
	}
	for j := 0; j < maxNeigh; j++ {
		for i := 0; i < atoms; i++ {
			n := r.Intn(atoms)
			if n == i {
				n = (n + 1) % atoms
			}
			s.Neighbors[j*atoms+i] = uint32(n)
		}
	}
	return s
}

// SignalBatch returns batch*n complex samples as separate re/im arrays.
func SignalBatch(batch, n int, seed uint64) (re, im []float32) {
	r := NewRNG(seed)
	re = r.Floats(batch*n, -1, 1)
	im = r.Floats(batch*n, -1, 1)
	return re, im
}

// RGBAImage returns w*h packed RGBA pixels for DXTC.
func RGBAImage(w, h int, seed uint64) []uint32 {
	r := NewRNG(seed)
	img := make([]uint32, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			// Smooth gradients with noise: compressible but not constant.
			cr := uint32((x*255/w + r.Intn(32)) & 0xff)
			cg := uint32((y*255/h + r.Intn(32)) & 0xff)
			cb := uint32(((x + y) * 255 / (w + h)) & 0xff)
			img[y*w+x] = cr | cg<<8 | cb<<16 | 0xff<<24
		}
	}
	return img
}
