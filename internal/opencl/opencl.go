// Package opencl is the OpenCL-style host runtime over the simulator:
// platform/device discovery by CL device type, contexts, command queues
// with profiling, buffer objects, program building through the OpenCL
// front-end personality, and NDRange kernel launches. Unlike the cuda
// package it runs on every modelled device — the NVIDIA GPUs, the HD5870,
// the Intel920 CPU, and the Cell/BE — which is what Section V of the paper
// exercises.
package opencl

import (
	"fmt"

	"gpucmp/internal/arch"
	"gpucmp/internal/compiler"
	"gpucmp/internal/kir"
	"gpucmp/internal/perfmodel"
	"gpucmp/internal/ptx"
	"gpucmp/internal/sim"
)

// DeviceType selects devices the way clGetDeviceIDs does.
type DeviceType int

const (
	DeviceTypeGPU DeviceType = 1 << iota
	DeviceTypeCPU
	DeviceTypeAccelerator
	DeviceTypeAll DeviceType = DeviceTypeGPU | DeviceTypeCPU | DeviceTypeAccelerator
)

// String renders the CL constant name.
func (t DeviceType) String() string {
	switch t {
	case DeviceTypeGPU:
		return "CL_DEVICE_TYPE_GPU"
	case DeviceTypeCPU:
		return "CL_DEVICE_TYPE_CPU"
	case DeviceTypeAccelerator:
		return "CL_DEVICE_TYPE_ACCELERATOR"
	case DeviceTypeAll:
		return "CL_DEVICE_TYPE_ALL"
	default:
		return fmt.Sprintf("DeviceType(%d)", int(t))
	}
}

// Err is an OpenCL error code.
type Err int

// The error codes the paper's portability study runs into.
const (
	Success              Err = 0
	ErrDeviceNotFound    Err = -1
	ErrOutOfResources    Err = -5
	ErrInvalidWorkGroup  Err = -54
	ErrInvalidKernelArgs Err = -52
	ErrInvalidValue      Err = -30
)

// Error implements error.
func (e Err) Error() string {
	switch e {
	case Success:
		return "CL_SUCCESS"
	case ErrDeviceNotFound:
		return "CL_DEVICE_NOT_FOUND"
	case ErrOutOfResources:
		return "CL_OUT_OF_RESOURCES"
	case ErrInvalidWorkGroup:
		return "CL_INVALID_WORK_GROUP_SIZE"
	case ErrInvalidKernelArgs:
		return "CL_INVALID_KERNEL_ARGS"
	case ErrInvalidValue:
		return "CL_INVALID_VALUE"
	default:
		return fmt.Sprintf("CL_ERROR(%d)", int(e))
	}
}

// Device is one OpenCL device of the platform.
type Device struct {
	Arch *arch.Device
}

// Type maps the architecture kind to a CL device type.
func (d *Device) Type() DeviceType {
	switch d.Arch.Kind {
	case arch.KindGPU:
		return DeviceTypeGPU
	case arch.KindCPU:
		return DeviceTypeCPU
	default:
		return DeviceTypeAccelerator
	}
}

// GetDeviceIDs lists the platform's devices matching the requested type,
// mirroring clGetDeviceIDs. With DeviceTypeAll every modelled device is
// returned (the vendor-independent choice Section V recommends).
func GetDeviceIDs(t DeviceType) ([]*Device, error) {
	var out []*Device
	for _, a := range arch.All() {
		d := &Device{Arch: a}
		if d.Type()&t != 0 {
			out = append(out, d)
		}
	}
	if len(out) == 0 {
		return nil, ErrDeviceNotFound
	}
	return out, nil
}

// Context owns one device's simulation state.
type Context struct {
	dev *sim.Device
	tc  *perfmodel.Toolchain
}

// CreateContext builds a context on the device.
func CreateContext(d *Device) (*Context, error) {
	s, err := sim.NewDevice(d.Arch)
	if err != nil {
		return nil, err
	}
	return &Context{dev: s, tc: perfmodel.OpenCLToolchain()}, nil
}

// Device exposes the simulated device.
func (c *Context) Device() *sim.Device { return c.dev }

// Arch returns the device description.
func (c *Context) Arch() *arch.Device { return c.dev.Arch }

// Buffer is a cl_mem object.
type Buffer struct {
	Addr uint32
	Size uint32
}

// CreateBuffer allocates device memory.
func (c *Context) CreateBuffer(bytes uint32) (Buffer, error) {
	addr, err := c.dev.Global.Alloc(bytes)
	if err != nil {
		return Buffer{}, fmt.Errorf("%w: %v", ErrOutOfResources, err)
	}
	return Buffer{Addr: addr, Size: bytes}, nil
}

// Program is a set of kernels being built for one context.
type Program struct {
	ctx     *Context
	kernels []*kir.Kernel
	mod     *ptx.Module
}

// CreateProgram registers KIR source kernels (the analogue of
// clCreateProgramWithSource).
func (c *Context) CreateProgram(kernels ...*kir.Kernel) *Program {
	return &Program{ctx: c, kernels: kernels}
}

// Build compiles the program with the OpenCL front-end personality.
// Compilation is served from the process-wide compile cache: each kernel
// is lowered once per personality, not once per program build.
func (p *Program) Build() error {
	m, err := compiler.CompileModuleCached("program", p.kernels, compiler.OpenCL())
	if err != nil {
		return err
	}
	p.mod = m
	return nil
}

// Kernel is a cl_kernel with bound arguments.
type Kernel struct {
	prog *Program
	k    *ptx.Kernel
	args []argSlot
}

type argSlot struct {
	set   bool
	isBuf bool
	val   uint32
	buf   Buffer
}

// CreateKernel looks up a built kernel.
func (p *Program) CreateKernel(name string) (*Kernel, error) {
	if p.mod == nil {
		return nil, fmt.Errorf("opencl: program not built")
	}
	k, err := p.mod.Kernel(name)
	if err != nil {
		return nil, err
	}
	return &Kernel{prog: p, k: k, args: make([]argSlot, len(k.Params))}, nil
}

// PTX exposes the compiled kernel (used by the statistics tooling).
func (k *Kernel) PTX() *ptx.Kernel { return k.k }

// SetArgBuffer binds a buffer argument.
func (k *Kernel) SetArgBuffer(i int, b Buffer) error {
	if i < 0 || i >= len(k.args) {
		return ErrInvalidValue
	}
	k.args[i] = argSlot{set: true, isBuf: true, buf: b}
	return nil
}

// SetArgU32 binds a scalar argument.
func (k *Kernel) SetArgU32(i int, v uint32) error {
	if i < 0 || i >= len(k.args) {
		return ErrInvalidValue
	}
	k.args[i] = argSlot{set: true, val: v}
	return nil
}

// SetArgF32 binds a float scalar argument.
func (k *Kernel) SetArgF32(i int, v float32) error {
	return k.SetArgU32(i, floatBits(v))
}

// SetArgI32 binds a signed scalar argument.
func (k *Kernel) SetArgI32(i int, v int32) error {
	return k.SetArgU32(i, uint32(v))
}

// Event carries profiling information for one enqueued command.
type Event struct {
	// Queued->Start is the launch overhead; Start->End the execution.
	QueueTime float64
	RunTime   float64
	Trace     *sim.Trace
	Breakdown perfmodel.Breakdown
}

// Duration returns the command's execution time (CL_PROFILING_COMMAND_START
// to CL_PROFILING_COMMAND_END).
func (e *Event) Duration() float64 { return e.RunTime }

// CommandQueue serialises commands on one device and accumulates the
// simulated clock.
type CommandQueue struct {
	ctx          *Context
	elapsed      float64
	kernelTime   float64
	transferTime float64
	traces       []*sim.Trace
	breakdowns   []perfmodel.Breakdown
	constOffs    map[uint32]uint32
}

// CreateCommandQueue makes a profiling-enabled queue.
func (c *Context) CreateCommandQueue() *CommandQueue {
	return &CommandQueue{ctx: c, constOffs: make(map[uint32]uint32)}
}

// EnqueueWriteBuffer copies host words into a buffer.
func (q *CommandQueue) EnqueueWriteBuffer(dst Buffer, src []uint32) error {
	if uint32(4*len(src)) > dst.Size {
		return ErrInvalidValue
	}
	if err := q.ctx.dev.Global.WriteWords(dst.Addr, src); err != nil {
		return err
	}
	t := perfmodel.TransferTimeOn(q.ctx.dev.Arch, q.ctx.tc, int64(4*len(src)))
	q.elapsed += t
	q.transferTime += t
	return nil
}

// EnqueueReadBuffer copies a buffer back to host words.
func (q *CommandQueue) EnqueueReadBuffer(dst []uint32, src Buffer) error {
	if uint32(4*len(dst)) > src.Size {
		return ErrInvalidValue
	}
	if err := q.ctx.dev.Global.ReadWords(src.Addr, dst); err != nil {
		return err
	}
	t := perfmodel.TransferTimeOn(q.ctx.dev.Arch, q.ctx.tc, int64(4*len(dst)))
	q.elapsed += t
	q.transferTime += t
	return nil
}

// EnqueueNDRangeKernel launches the kernel. globalSize is the total
// work-item count per dimension (OpenCL semantics — the NDRange/GridDim
// distinction the paper points out in Section IV-B1); localSize divides it.
func (q *CommandQueue) EnqueueNDRangeKernel(k *Kernel, globalSize, localSize sim.Dim3) (*Event, error) {
	if localSize.X <= 0 || localSize.Y <= 0 ||
		globalSize.X%localSize.X != 0 || globalSize.Y%localSize.Y != 0 {
		return nil, ErrInvalidWorkGroup
	}
	grid := sim.Dim3{X: globalSize.X / localSize.X, Y: globalSize.Y / localSize.Y}
	raw := make([]uint32, len(k.args))
	for i, a := range k.args {
		if !a.set {
			return nil, ErrInvalidKernelArgs
		}
		p := k.k.Params[i]
		switch {
		case p.Pointer && p.Space == ptx.SpaceConst:
			if !a.isBuf {
				return nil, ErrInvalidKernelArgs
			}
			off, err := q.stageConst(a.buf)
			if err != nil {
				return nil, err
			}
			raw[i] = off
		case p.Pointer:
			if !a.isBuf {
				return nil, ErrInvalidKernelArgs
			}
			raw[i] = a.buf.Addr
		default:
			if a.isBuf {
				return nil, ErrInvalidKernelArgs
			}
			raw[i] = a.val
		}
	}
	tr, err := q.ctx.dev.Launch(k.k, grid, localSize, raw)
	if err != nil {
		return nil, mapSimError(err)
	}
	b := perfmodel.KernelTime(q.ctx.dev.Arch, q.ctx.tc, tr)
	q.traces = append(q.traces, tr)
	q.breakdowns = append(q.breakdowns, b)
	q.elapsed += b.Total
	q.kernelTime += b.Total
	return &Event{
		QueueTime: b.Launch,
		RunTime:   b.Total - b.Launch,
		Trace:     tr,
		Breakdown: b,
	}, nil
}

func (q *CommandQueue) stageConst(buf Buffer) (uint32, error) {
	off, ok := q.constOffs[buf.Addr]
	if !ok {
		var err error
		off, err = q.ctx.dev.ConstAlloc(buf.Size)
		if err != nil {
			return 0, fmt.Errorf("%w: %v", ErrOutOfResources, err)
		}
		q.constOffs[buf.Addr] = off
	}
	words := make([]uint32, buf.Size/4)
	if err := q.ctx.dev.Global.ReadWords(buf.Addr, words); err != nil {
		return 0, err
	}
	if err := q.ctx.dev.ConstWrite(off, words); err != nil {
		return 0, err
	}
	return off, nil
}

// Elapsed returns end-to-end simulated seconds since the last ResetTimer.
func (q *CommandQueue) Elapsed() float64 { return q.elapsed }

// KernelTime returns kernel-only simulated seconds.
func (q *CommandQueue) KernelTime() float64 { return q.kernelTime }

// TransferTime returns the simulated host<->device copy seconds since the
// last ResetTimer.
func (q *CommandQueue) TransferTime() float64 { return q.transferTime }

// Traces returns the launch traces since the last ResetTimer.
func (q *CommandQueue) Traces() []*sim.Trace { return q.traces }

// Breakdowns returns the per-launch timing decompositions.
func (q *CommandQueue) Breakdowns() []perfmodel.Breakdown { return q.breakdowns }

// ResetTimer clears the simulated clock and trace history.
func (q *CommandQueue) ResetTimer() {
	q.elapsed = 0
	q.kernelTime = 0
	q.transferTime = 0
	q.traces = nil
	q.breakdowns = nil
}

// DeviceInfo mirrors the clGetDeviceInfo attributes the paper's host
// programs query when selecting and configuring devices.
type DeviceInfo struct {
	Name                 string
	Vendor               string
	Type                 DeviceType
	MaxComputeUnits      int
	MaxWorkGroupSize     int
	GlobalMemSize        uint64
	LocalMemSize         uint64
	MaxConstantBufferLen uint64
	PreferredWavefront   int
}

// Info returns the device's attributes.
func (d *Device) Info() DeviceInfo {
	return DeviceInfo{
		Name:                 d.Arch.Name,
		Vendor:               d.Arch.Vendor,
		Type:                 d.Type(),
		MaxComputeUnits:      d.Arch.ComputeUnits,
		MaxWorkGroupSize:     d.Arch.MaxWorkGroupSize,
		GlobalMemSize:        uint64(d.Arch.MemoryGB * float64(1<<30)),
		LocalMemSize:         uint64(d.Arch.SharedMemPerUnit),
		MaxConstantBufferLen: 64 * 1024,
		PreferredWavefront:   d.Arch.SIMDWidth,
	}
}
