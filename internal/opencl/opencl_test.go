package opencl

import (
	"errors"
	"testing"

	"gpucmp/internal/arch"
	"gpucmp/internal/kir"
	"gpucmp/internal/sim"
)

func doubleKernel() *kir.Kernel {
	b := kir.NewKernel("double")
	in := b.GlobalBuffer("in", kir.U32)
	out := b.GlobalBuffer("out", kir.U32)
	gid := b.Declare("gid", b.GlobalIDX())
	b.Store(out, gid, kir.Mul(b.Load(in, gid), kir.U(2)))
	return b.MustBuild()
}

func TestGetDeviceIDsFilters(t *testing.T) {
	gpus, err := GetDeviceIDs(DeviceTypeGPU)
	if err != nil || len(gpus) != 3 {
		t.Fatalf("GPU devices = %d (%v), want 3", len(gpus), err)
	}
	cpus, err := GetDeviceIDs(DeviceTypeCPU)
	if err != nil || len(cpus) != 1 || cpus[0].Arch.Name != arch.Intel920().Name {
		t.Fatalf("CPU devices wrong: %v, %v", cpus, err)
	}
	accs, err := GetDeviceIDs(DeviceTypeAccelerator)
	if err != nil || len(accs) != 1 || accs[0].Arch.Name != arch.CellBE().Name {
		t.Fatalf("accelerator devices wrong: %v, %v", accs, err)
	}
	all, err := GetDeviceIDs(DeviceTypeAll)
	if err != nil || len(all) != 5 {
		t.Fatalf("ALL devices = %d, want 5", len(all))
	}
	if _, err := GetDeviceIDs(0); !errors.Is(err, ErrDeviceNotFound) {
		t.Error("empty selector should report CL_DEVICE_NOT_FOUND")
	}
}

func TestDeviceTypeStrings(t *testing.T) {
	if DeviceTypeGPU.String() != "CL_DEVICE_TYPE_GPU" ||
		DeviceTypeCPU.String() != "CL_DEVICE_TYPE_CPU" ||
		DeviceTypeAccelerator.String() != "CL_DEVICE_TYPE_ACCELERATOR" ||
		DeviceTypeAll.String() != "CL_DEVICE_TYPE_ALL" {
		t.Error("device type names wrong")
	}
}

func TestErrorStrings(t *testing.T) {
	if ErrOutOfResources.Error() != "CL_OUT_OF_RESOURCES" {
		t.Error("error string wrong")
	}
	if ErrInvalidWorkGroup.Error() != "CL_INVALID_WORK_GROUP_SIZE" {
		t.Error("error string wrong")
	}
	if Success.Error() != "CL_SUCCESS" {
		t.Error("error string wrong")
	}
}

func TestProgramBuildAndNDRange(t *testing.T) {
	devs, _ := GetDeviceIDs(DeviceTypeGPU)
	ctx, err := CreateContext(devs[0])
	if err != nil {
		t.Fatal(err)
	}
	q := ctx.CreateCommandQueue()
	prog := ctx.CreateProgram(doubleKernel())
	if _, err := prog.CreateKernel("double"); err == nil {
		t.Error("kernel creation before Build should fail")
	}
	if err := prog.Build(); err != nil {
		t.Fatal(err)
	}
	k, err := prog.CreateKernel("double")
	if err != nil {
		t.Fatal(err)
	}
	if k.PTX().Toolchain != "opencl" {
		t.Error("program must build with the OpenCL front-end")
	}

	const n = 512
	in := make([]uint32, n)
	for i := range in {
		in[i] = uint32(i)
	}
	inBuf, err := ctx.CreateBuffer(4 * n)
	if err != nil {
		t.Fatal(err)
	}
	outBuf, _ := ctx.CreateBuffer(4 * n)
	if err := q.EnqueueWriteBuffer(inBuf, in); err != nil {
		t.Fatal(err)
	}
	if err := k.SetArgBuffer(0, inBuf); err != nil {
		t.Fatal(err)
	}
	if err := k.SetArgBuffer(1, outBuf); err != nil {
		t.Fatal(err)
	}

	ev, err := q.EnqueueNDRangeKernel(k, sim.Dim3{X: n, Y: 1}, sim.Dim3{X: 128, Y: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Duration() <= 0 || ev.QueueTime <= 0 {
		t.Error("event profiling times must be positive")
	}
	if ev.Trace == nil {
		t.Error("event should carry the trace")
	}
	got := make([]uint32, n)
	if err := q.EnqueueReadBuffer(got, outBuf); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != in[i]*2 {
			t.Fatalf("out[%d] = %d, want %d", i, got[i], in[i]*2)
		}
	}
	if q.KernelTime() <= 0 || q.Elapsed() <= q.KernelTime() {
		t.Error("queue clock accounting wrong")
	}
	if len(q.Breakdowns()) != 1 {
		t.Error("breakdown bookkeeping wrong")
	}
	q.ResetTimer()
	if q.Elapsed() != 0 || len(q.Traces()) != 0 {
		t.Error("ResetTimer did not clear")
	}
}

func TestNDRangeValidation(t *testing.T) {
	devs, _ := GetDeviceIDs(DeviceTypeGPU)
	ctx, _ := CreateContext(devs[0])
	q := ctx.CreateCommandQueue()
	prog := ctx.CreateProgram(doubleKernel())
	if err := prog.Build(); err != nil {
		t.Fatal(err)
	}
	k, _ := prog.CreateKernel("double")
	buf, _ := ctx.CreateBuffer(1024)
	k.SetArgBuffer(0, buf)

	// Unset argument.
	if _, err := q.EnqueueNDRangeKernel(k, sim.Dim3{X: 128, Y: 1}, sim.Dim3{X: 128, Y: 1}); !errors.Is(err, ErrInvalidKernelArgs) {
		t.Errorf("unset arg: %v", err)
	}
	k.SetArgBuffer(1, buf)
	// Global size not divisible by local size.
	if _, err := q.EnqueueNDRangeKernel(k, sim.Dim3{X: 100, Y: 1}, sim.Dim3{X: 64, Y: 1}); !errors.Is(err, ErrInvalidWorkGroup) {
		t.Errorf("non-divisible NDRange: %v", err)
	}
	// Scalar bound to a buffer slot.
	k.SetArgU32(0, 5)
	if _, err := q.EnqueueNDRangeKernel(k, sim.Dim3{X: 128, Y: 1}, sim.Dim3{X: 128, Y: 1}); !errors.Is(err, ErrInvalidKernelArgs) {
		t.Errorf("scalar for buffer: %v", err)
	}
	// Bad argument index.
	if err := k.SetArgU32(9, 1); !errors.Is(err, ErrInvalidValue) {
		t.Errorf("bad index: %v", err)
	}
}

func TestWorkGroupTooLargeMapsToCLError(t *testing.T) {
	ctx, err := CreateContext(&Device{Arch: arch.CellBE()})
	if err != nil {
		t.Fatal(err)
	}
	q := ctx.CreateCommandQueue()
	prog := ctx.CreateProgram(doubleKernel())
	if err := prog.Build(); err != nil {
		t.Fatal(err)
	}
	k, _ := prog.CreateKernel("double")
	buf, _ := ctx.CreateBuffer(4 * 1024)
	k.SetArgBuffer(0, buf)
	k.SetArgBuffer(1, buf)
	_, err = q.EnqueueNDRangeKernel(k, sim.Dim3{X: 1024, Y: 1}, sim.Dim3{X: 1024, Y: 1})
	if !errors.Is(err, ErrInvalidWorkGroup) {
		t.Errorf("oversized work-group: %v, want CL_INVALID_WORK_GROUP_SIZE", err)
	}
}

func TestDeviceTypeOfEachArch(t *testing.T) {
	if (&Device{Arch: arch.GTX280()}).Type() != DeviceTypeGPU {
		t.Error("GTX280 should be a GPU device")
	}
	if (&Device{Arch: arch.Intel920()}).Type() != DeviceTypeCPU {
		t.Error("Intel920 should be a CPU device")
	}
	if (&Device{Arch: arch.CellBE()}).Type() != DeviceTypeAccelerator {
		t.Error("Cell/BE should be an accelerator device")
	}
}

func TestDeviceInfo(t *testing.T) {
	info := (&Device{Arch: arch.GTX280()}).Info()
	if info.Name != arch.GTX280().Name || info.Vendor != "NVIDIA" {
		t.Error("identity fields wrong")
	}
	if info.MaxComputeUnits != 30 || info.MaxWorkGroupSize != 512 {
		t.Errorf("limits wrong: %+v", info)
	}
	if info.GlobalMemSize != 1<<30 {
		t.Errorf("global mem = %d, want 1 GiB", info.GlobalMemSize)
	}
	if info.PreferredWavefront != 32 {
		t.Error("wavefront width wrong")
	}
	cpu := (&Device{Arch: arch.Intel920()}).Info()
	if cpu.Type != DeviceTypeCPU || cpu.PreferredWavefront != 64 {
		t.Errorf("CPU info wrong: %+v", cpu)
	}
}
