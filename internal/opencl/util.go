package opencl

import (
	"errors"
	"math"

	"gpucmp/internal/sim"
)

func floatBits(f float32) uint32 { return math.Float32bits(f) }

// F32Words converts a float slice to raw words for buffer transfers.
func F32Words(src []float32) []uint32 {
	out := make([]uint32, len(src))
	for i, f := range src {
		out[i] = math.Float32bits(f)
	}
	return out
}

// WordsF32 converts raw words back to floats.
func WordsF32(src []uint32) []float32 {
	out := make([]float32, len(src))
	for i, w := range src {
		out[i] = math.Float32frombits(w)
	}
	return out
}

// mapSimError translates simulator launch failures into CL error codes,
// preserving the original as wrapped context.
func mapSimError(err error) error {
	switch {
	case errors.Is(err, sim.ErrOutOfResources):
		return errors.Join(ErrOutOfResources, err)
	case errors.Is(err, sim.ErrInvalidWorkGroupSize):
		return errors.Join(ErrInvalidWorkGroup, err)
	case errors.Is(err, sim.ErrInvalidConfig):
		return errors.Join(ErrInvalidValue, err)
	default:
		return err
	}
}
