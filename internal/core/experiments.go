package core

import (
	"fmt"

	"gpucmp/internal/arch"
	"gpucmp/internal/bench"
	"gpucmp/internal/compiler"
	"gpucmp/internal/ptx"
)

// PeakResult is one bar of Fig. 1 / Fig. 2.
type PeakResult struct {
	Device      string  `json:"device"`
	Theoretical float64 `json:"theoretical"`
	CUDA        float64 `json:"cuda"`
	OpenCL      float64 `json:"opencl"`
}

// FractionCUDA returns achieved/theoretical for the CUDA bar.
func (p PeakResult) FractionCUDA() float64 { return p.CUDA / p.Theoretical }

// FractionOpenCL returns achieved/theoretical for the OpenCL bar.
func (p PeakResult) FractionOpenCL() float64 { return p.OpenCL / p.Theoretical }

func runBoth(run Runner, a *arch.Device, spec bench.Spec, scale int) (cu, cl *bench.Result, err error) {
	cfg := bench.Config{Scale: scale}
	cu, err = run(a, "cuda", spec, cfg)
	if err != nil {
		return nil, nil, err
	}
	cl, err = run(a, "opencl", spec, cfg)
	if err != nil {
		return nil, nil, err
	}
	return cu, cl, nil
}

// PeakBandwidth regenerates one device's Fig. 1 bars with the
// DeviceMemory probe.
func PeakBandwidth(a *arch.Device, scale int) (PeakResult, error) {
	return PeakBandwidthWith(Direct, a, scale)
}

// PeakBandwidthWith is PeakBandwidth through an explicit Runner.
func PeakBandwidthWith(run Runner, a *arch.Device, scale int) (PeakResult, error) {
	spec, _ := bench.SpecByName("DeviceMemory")
	cu, cl, err := runBoth(run, a, spec, scale)
	if err != nil {
		return PeakResult{}, err
	}
	return PeakResult{
		Device:      a.Name,
		Theoretical: a.TheoreticalPeakBandwidth(),
		CUDA:        cu.Value,
		OpenCL:      cl.Value,
	}, nil
}

// PeakFlops regenerates one device's Fig. 2 bars with the MaxFlops probe.
func PeakFlops(a *arch.Device, scale int) (PeakResult, error) {
	return PeakFlopsWith(Direct, a, scale)
}

// PeakFlopsWith is PeakFlops through an explicit Runner.
func PeakFlopsWith(run Runner, a *arch.Device, scale int) (PeakResult, error) {
	spec, _ := bench.SpecByName("MaxFlops")
	cu, cl, err := runBoth(run, a, spec, scale)
	if err != nil {
		return PeakResult{}, err
	}
	return PeakResult{
		Device:      a.Name,
		Theoretical: a.TheoreticalPeakFLOPS(),
		CUDA:        cu.Value,
		OpenCL:      cl.Value,
	}, nil
}

// Fig3Benchmarks lists the real-world benchmarks of the PR comparison
// (Table II order, excluding the synthetic probes).
func Fig3Benchmarks() []bench.Spec {
	var out []bench.Spec
	for _, s := range bench.Registry() {
		if s.Name == "MaxFlops" || s.Name == "DeviceMemory" {
			continue
		}
		out = append(out, s)
	}
	return out
}

// NativePRSeries regenerates Fig. 3: the PR of every real-world benchmark
// with each toolchain's native implementation on the given device.
func NativePRSeries(a *arch.Device, scale int) ([]*Comparison, error) {
	return NativePRSeriesWith(Direct, a, scale)
}

// NativePRSeriesWith is NativePRSeries through an explicit Runner.
func NativePRSeriesWith(run Runner, a *arch.Device, scale int) ([]*Comparison, error) {
	var out []*Comparison
	for _, spec := range Fig3Benchmarks() {
		c, err := CompareNativeWith(run, a, spec, scale)
		if err != nil {
			return nil, fmt.Errorf("core: %s on %s: %w", spec.Name, a.Name, err)
		}
		out = append(out, c)
	}
	return out, nil
}

// TextureImpact is one benchmark's Fig. 4 pair: the CUDA implementation
// with and without texture memory.
type TextureImpact struct {
	Benchmark string  `json:"benchmark"`
	Device    string  `json:"device"`
	With      float64 `json:"with"`
	Without   float64 `json:"without"`
}

// Ratio returns without/with — the paper's "performance drops to X%".
func (t TextureImpact) Ratio() float64 { return t.Without / t.With }

// TextureStudy regenerates Fig. 4 for MD and SPMV on one device.
func TextureStudy(a *arch.Device, scale int) ([]TextureImpact, error) {
	return TextureStudyWith(Direct, a, scale)
}

// TextureStudyWith is TextureStudy through an explicit Runner.
func TextureStudyWith(run Runner, a *arch.Device, scale int) ([]TextureImpact, error) {
	var out []TextureImpact
	for _, name := range []string{"MD", "SPMV"} {
		spec, _ := bench.SpecByName(name)
		with, err := runCUDA(run, a, spec, bench.Config{Scale: scale, UseTexture: true})
		if err != nil {
			return nil, err
		}
		without, err := runCUDA(run, a, spec, bench.Config{Scale: scale, UseTexture: false})
		if err != nil {
			return nil, err
		}
		out = append(out, TextureImpact{Benchmark: name, Device: a.Name, With: with.Value, Without: without.Value})
	}
	return out, nil
}

// TexturePRStudy regenerates Fig. 5: the PR of MD and SPMV after removing
// texture memory from the CUDA implementation (a fair step-4 comparison).
func TexturePRStudy(a *arch.Device, scale int) ([]*Comparison, error) {
	return TexturePRStudyWith(Direct, a, scale)
}

// TexturePRStudyWith is TexturePRStudy through an explicit Runner.
func TexturePRStudyWith(run Runner, a *arch.Device, scale int) ([]*Comparison, error) {
	var out []*Comparison
	for _, name := range []string{"MD", "SPMV"} {
		spec, _ := bench.SpecByName(name)
		cfg := bench.Config{Scale: scale, UseTexture: false}
		c, err := CompareWith(run, a, spec, cfg, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// runCUDA runs one CUDA cell and promotes an aborted result to an error.
func runCUDA(run Runner, a *arch.Device, spec bench.Spec, cfg bench.Config) (*bench.Result, error) {
	r, err := run(a, "cuda", spec, cfg)
	if err != nil {
		return nil, err
	}
	if r.Err != nil {
		return nil, r.Err
	}
	return r, nil
}

// UnrollImpact is Fig. 6: the CUDA FDTD with and without the pragma at
// unroll point a.
type UnrollImpact struct {
	Device   string  `json:"device"`
	With     float64 `json:"with"`      // MPoints/s, pragma at a and b
	WithoutA float64 `json:"without_a"` // pragma only at b
}

// Ratio returns without/with.
func (u UnrollImpact) Ratio() float64 { return u.WithoutA / u.With }

// UnrollStudyCUDA regenerates Fig. 6 on one device.
func UnrollStudyCUDA(a *arch.Device, scale int) (UnrollImpact, error) {
	return UnrollStudyCUDAWith(Direct, a, scale)
}

// UnrollStudyCUDAWith is UnrollStudyCUDA through an explicit Runner.
func UnrollStudyCUDAWith(run Runner, a *arch.Device, scale int) (UnrollImpact, error) {
	spec, _ := bench.SpecByName("FDTD")
	with, err := runCUDA(run, a, spec, bench.Config{Scale: scale, UnrollA: true, UnrollB: true})
	if err != nil {
		return UnrollImpact{}, err
	}
	without, err := runCUDA(run, a, spec, bench.Config{Scale: scale, UnrollA: false, UnrollB: true})
	if err != nil {
		return UnrollImpact{}, err
	}
	return UnrollImpact{Device: a.Name, With: with.Value, WithoutA: without.Value}, nil
}

// UnrollCombo is one group of Fig. 7: CUDA and OpenCL compiled with the
// same unroll-point placement.
type UnrollCombo struct {
	Label  string  `json:"label"`
	Device string  `json:"device"`
	CUDA   float64 `json:"cuda"`
	OpenCL float64 `json:"opencl"`
	PR     float64 `json:"pr"`
}

// UnrollCombos regenerates Fig. 7: pragma at b only, and pragma at both
// points, for both toolchains.
func UnrollCombos(a *arch.Device, scale int) ([]UnrollCombo, error) {
	return UnrollCombosWith(Direct, a, scale)
}

// UnrollCombosWith is UnrollCombos through an explicit Runner.
func UnrollCombosWith(run Runner, a *arch.Device, scale int) ([]UnrollCombo, error) {
	spec, _ := bench.SpecByName("FDTD")
	combos := []struct {
		label   string
		unrollA bool
	}{
		{"unroll@b", false},
		{"unroll@a,b", true},
	}
	var out []UnrollCombo
	for _, cb := range combos {
		cfg := bench.Config{Scale: scale, UnrollA: cb.unrollA, UnrollB: true}
		c, err := CompareWith(run, a, spec, cfg, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, UnrollCombo{
			Label: cb.label, Device: a.Name,
			CUDA: c.CUDA.Value, OpenCL: c.OpenCL.Value, PR: c.PR,
		})
	}
	return out, nil
}

// ConstantImpact is Fig. 8: Sobel kernel time with and without constant
// memory on one device.
type ConstantImpact struct {
	Device       string  `json:"device"`
	WithConst    float64 `json:"with_const"`    // seconds
	WithoutConst float64 `json:"without_const"` // seconds
}

// Speedup returns without/with: how much the constant cache buys.
func (c ConstantImpact) Speedup() float64 { return c.WithoutConst / c.WithConst }

// ConstantStudy regenerates Fig. 8 on one device: the same Sobel source
// compiled with the filter in constant versus global memory — the
// controlled comparison of the constant-memory choice itself.
func ConstantStudy(a *arch.Device, scale int) (ConstantImpact, error) {
	return ConstantStudyWith(Direct, a, scale)
}

// ConstantStudyWith is ConstantStudy through an explicit Runner.
func ConstantStudyWith(run Runner, a *arch.Device, scale int) (ConstantImpact, error) {
	spec, _ := bench.SpecByName("Sobel")
	with, err := runCUDA(run, a, spec, bench.Config{Scale: scale, UseConstant: true})
	if err != nil {
		return ConstantImpact{}, err
	}
	without, err := runCUDA(run, a, spec, bench.Config{Scale: scale, UseConstant: false})
	if err != nil {
		return ConstantImpact{}, err
	}
	return ConstantImpact{Device: a.Name, WithConst: with.KernelSeconds, WithoutConst: without.KernelSeconds}, nil
}

// PTXStudy regenerates Table V: the static PTX statistics of the FFT
// "forward" kernel under both front-ends.
func PTXStudy() (cuda, opencl *ptx.Stats, report string, err error) {
	k := bench.FFTKernel()
	cu, err := compiler.Compile(k, compiler.CUDA())
	if err != nil {
		return nil, nil, "", err
	}
	cl, err := compiler.Compile(k, compiler.OpenCL())
	if err != nil {
		return nil, nil, "", err
	}
	cs, ls := cu.FrontEndStats, cl.FrontEndStats
	return cs, ls, ptx.CompareTable("CUDA", cs, "OpenCL", ls), nil
}

// PortabilityCell is one entry of Table VI.
type PortabilityCell struct {
	Benchmark string  `json:"benchmark"`
	Device    string  `json:"device"`
	Metric    string  `json:"metric"`
	Value     float64 `json:"value,omitempty"`
	Status    string  `json:"status"` // OK, FL, ABT
}

// PortabilityStudy regenerates Table VI: every real-world benchmark run
// through OpenCL on the non-NVIDIA devices, with minor modifications only
// (the device-type change is inside the opencl package).
func PortabilityStudy(scale int) ([]PortabilityCell, error) {
	return PortabilityStudyWith(Direct, scale)
}

// PortabilityStudyWith is PortabilityStudy through an explicit Runner.
func PortabilityStudyWith(run Runner, scale int) ([]PortabilityCell, error) {
	devices := []*arch.Device{arch.HD5870(), arch.Intel920(), arch.CellBE()}
	var out []PortabilityCell
	for _, a := range devices {
		for _, spec := range Fig3Benchmarks() {
			if spec.Name == "TranP" && a.Kind == arch.KindCPU {
				// Section V: the CPU port drops the local-memory tile.
			}
			cfg := bench.NativeConfig("opencl")
			cfg.Scale = scale
			r, err := run(a, "opencl", spec, cfg)
			if err != nil {
				return nil, err
			}
			cell := PortabilityCell{
				Benchmark: spec.Name, Device: a.Name, Metric: spec.Metric, Status: r.Status(),
			}
			if r.Err == nil {
				cell.Value = r.Value
			}
			out = append(out, cell)
		}
	}
	return out, nil
}
