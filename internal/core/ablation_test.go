package core

import (
	"strings"
	"testing"

	"gpucmp/internal/arch"
	"gpucmp/internal/bench"
	"gpucmp/internal/compiler"
)

// TestGapClosingStudy reproduces the paper's Section-V result through the
// pass-level ablation API: porting every missing NVOPENCC optimisation into
// the OpenCL front-end closes the FFT gap into the similarity band, with
// each ported optimisation reported as its own named step.
func TestGapClosingStudy(t *testing.T) {
	rep, err := GapClosingStudy(arch.GTX280())
	if err != nil {
		t.Fatal(err)
	}
	knobs := compiler.GapKnobs()
	if len(rep.Steps) != len(knobs) {
		t.Fatalf("got %d steps, want one per gap knob (%d)", len(rep.Steps), len(knobs))
	}
	for i, s := range rep.Steps {
		if s.Knob != knobs[i].Name {
			t.Errorf("step %d: knob %q, want %q (study must follow GapKnobs order)", i, s.Knob, knobs[i].Name)
		}
		if s.Seconds <= 0 || s.SoloSeconds <= 0 {
			t.Errorf("step %q: non-positive timing (%v cumulative, %v solo)", s.Knob, s.Seconds, s.SoloSeconds)
		}
		if len(s.PassStats) == 0 {
			t.Errorf("step %q: no back-end pass statistics attached", s.Knob)
		}
	}
	if rep.BaseSeconds <= rep.CUDASeconds {
		t.Errorf("expected the native OpenCL build to be slower: base=%v cuda=%v", rep.BaseSeconds, rep.CUDASeconds)
	}
	if Similar(rep.BasePR) {
		t.Errorf("base PR %.3f already inside the similarity band; no gap to close", rep.BasePR)
	}
	if !rep.Closed {
		t.Errorf("gap not closed: final PR %.3f outside |1-PR| < 0.1", rep.FinalPR)
	}
	last := rep.Steps[len(rep.Steps)-1]
	if last.ClosedShare <= 0 {
		t.Errorf("final step closed share %.3f, want > 0", last.ClosedShare)
	}

	out := rep.String()
	for _, k := range knobs {
		if !strings.Contains(out, "+"+k.Name) {
			t.Errorf("report does not list ported optimisation %q individually:\n%s", k.Name, out)
		}
	}
	if !strings.Contains(out, "gap closed") {
		t.Errorf("report does not state the gap closed:\n%s", out)
	}
}

// TestGapKnobsCloseCompletely checks the end state of the ablation: the
// OpenCL personality with every gap knob applied generates instruction-
// identical PTX to the CUDA personality, so the residual PR is purely the
// host-side toolchain pricing, not codegen.
func TestGapKnobsCloseCompletely(t *testing.T) {
	ported := compiler.OpenCL()
	for _, k := range compiler.GapKnobs() {
		k.Apply(&ported)
	}
	want := compiler.CUDA()
	want.Name = ported.Name // only the toolchain tag may differ
	if got, w := ported.Canonical(), want.Canonical(); got != w {
		t.Errorf("fully ported personality differs from CUDA beyond the name:\n got %s\nwant %s", got, w)
	}
}

// TestAuditFlagsBackEndPassMismatch makes the pass pipeline part of the
// step-6 fairness audit: two setups that ran different back-end pipelines
// must be reported UNFAIR at second-stage compilation.
func TestAuditFlagsBackEndPassMismatch(t *testing.T) {
	left := DescribeSetup("cuda", "FFT", "dev", bench.Config{Scale: 1}, 128)
	right := DescribeSetup("opencl", "FFT", "dev", bench.Config{Scale: 1}, 128)
	right.BackEndPasses = []string{compiler.PassCopyProp, compiler.PassDCE} // mad-fuse dropped

	rep := Audit(left, right)
	found := false
	for _, m := range rep.Mismatches {
		if m.Step == StepBackEndCompile {
			found = true
			if !strings.Contains(m.Left, compiler.PassMadFuse) || strings.Contains(m.Right, compiler.PassMadFuse) {
				t.Errorf("mismatch should show the missing pass: left=%q right=%q", m.Left, m.Right)
			}
		}
	}
	if !found {
		t.Fatalf("differing back-end pipelines not flagged at step 6: %v", rep.Mismatches)
	}
}
