package core

import (
	"fmt"
	"strings"

	"gpucmp/internal/bench"
	"gpucmp/internal/compiler"
)

// Step enumerates the eight stages of the GPU-application development flow
// of Section IV-C (Fig. 9). A comparison between a CUDA and an OpenCL
// application is "fair" only when the configuration of every step matches.
type Step int

const (
	StepProblem Step = iota
	StepAlgorithm
	StepImplementation
	StepNativeOptimisation
	StepFrontEndCompile
	StepBackEndCompile
	StepConfiguration
	StepHardware

	NumSteps
)

// String names the step as the paper does.
func (s Step) String() string {
	switch s {
	case StepProblem:
		return "1. problem description"
	case StepAlgorithm:
		return "2. algorithm translation"
	case StepImplementation:
		return "3. implementation"
	case StepNativeOptimisation:
		return "4. native kernel optimisations"
	case StepFrontEndCompile:
		return "5. first-stage compilation"
	case StepBackEndCompile:
		return "6. second-stage compilation"
	case StepConfiguration:
		return "7. program configuration"
	case StepHardware:
		return "8. running on the hardware"
	default:
		return fmt.Sprintf("step(%d)", int(s))
	}
}

// Role tells who is responsible for a step (Fig. 9 groups them).
type Role int

const (
	RoleProgrammer Role = iota
	RoleCompiler
	RoleUser
)

// String names the role.
func (r Role) String() string {
	switch r {
	case RoleProgrammer:
		return "programmer"
	case RoleCompiler:
		return "compiler"
	default:
		return "user"
	}
}

// RoleOf maps each step onto its responsible party: programmers own steps
// 1-4, compilers steps 5-6, users steps 7-8.
func RoleOf(s Step) Role {
	switch {
	case s <= StepNativeOptimisation:
		return RoleProgrammer
	case s <= StepBackEndCompile:
		return RoleCompiler
	default:
		return RoleUser
	}
}

// Setup describes one application's configuration at every step.
type Setup struct {
	Toolchain string // "cuda" or "opencl"

	Problem       string // step 1
	Algorithm     string // step 2
	APIStyle      string // step 3: host API + timer discipline
	Optimisation  bench.Config
	FrontEnd      string   // step 5: NVOPENCC vs the OpenCL front-end
	BackEnd       string   // step 6: PTXAS for both
	BackEndPasses []string // step 6: the back-end pass pipeline, in order
	ProblemScale  int      // step 7: problem parameters
	WorkGroupSize int    // step 7: algorithmic parameters
	Device        string // step 8
}

// DescribeSetup builds a Setup for one toolchain's native benchmark run.
func DescribeSetup(toolchain, benchmark, device string, cfg bench.Config, wgSize int) Setup {
	fe := "nvopencc"
	if toolchain != "cuda" {
		fe = "opencl-fe"
	}
	// The paper considers two implementations "the same" when they use
	// similar APIs to access the same hardware resources and the same
	// timers; both of our host programs do, so step 3 gets a common label.
	api := "device-buffers+kernel-launch+event-timers"
	return Setup{
		Toolchain:     toolchain,
		Problem:       benchmark,
		Algorithm:     benchmark + "-reference-algorithm",
		APIStyle:      api,
		Optimisation:  cfg,
		FrontEnd:      fe,
		BackEnd:       "ptxas",
		BackEndPasses: compiler.DefaultPassNames(),
		ProblemScale:  cfg.Scale,
		WorkGroupSize: wgSize,
		Device:        device,
	}
}

// Mismatch records one step on which two setups differ.
type Mismatch struct {
	Step  Step
	Left  string
	Right string
	Role  Role
}

// FairnessReport is the result of auditing two setups against the
// eight-step definition.
type FairnessReport struct {
	Left, Right Setup
	Mismatches  []Mismatch
}

// Fair reports whether all eight steps match.
func (r *FairnessReport) Fair() bool { return len(r.Mismatches) == 0 }

// String renders the audit.
func (r *FairnessReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fairness audit: %s vs %s\n", r.Left.Toolchain, r.Right.Toolchain)
	if r.Fair() {
		b.WriteString("  FAIR: all eight steps match; a performance gap reflects the programming models themselves\n")
		return b.String()
	}
	for _, m := range r.Mismatches {
		fmt.Fprintf(&b, "  UNFAIR at %s (%s): %q vs %q\n", m.Step, m.Role, m.Left, m.Right)
	}
	return b.String()
}

func optString(c bench.Config) string {
	return fmt.Sprintf("texture=%v constant=%v unrollA=%v unrollB=%v vectorSPMV=%v",
		c.UseTexture, c.UseConstant, c.UnrollA, c.UnrollB, c.VectorSPMV)
}

// Audit compares two setups step by step. Step 5 (the front-end compiler)
// necessarily differs between CUDA and OpenCL — the paper treats that as
// part of the platform, so it is reported but attributed to the compiler
// role rather than the programmer.
func Audit(left, right Setup) *FairnessReport {
	r := &FairnessReport{Left: left, Right: right}
	add := func(s Step, l, rr string) {
		if l != rr {
			r.Mismatches = append(r.Mismatches, Mismatch{Step: s, Left: l, Right: rr, Role: RoleOf(s)})
		}
	}
	add(StepProblem, left.Problem, right.Problem)
	add(StepAlgorithm, left.Algorithm, right.Algorithm)
	add(StepImplementation, left.APIStyle, right.APIStyle)
	add(StepNativeOptimisation, optString(left.Optimisation), optString(right.Optimisation))
	add(StepFrontEndCompile, left.FrontEnd, right.FrontEnd)
	// Step 6 covers both the back-end's identity and its pass pipeline: a
	// comparison where one side skipped, say, mad-fuse is unfair even
	// though both sides nominally ran "ptxas".
	add(StepBackEndCompile,
		fmt.Sprintf("%s[%s]", left.BackEnd, strings.Join(left.BackEndPasses, ",")),
		fmt.Sprintf("%s[%s]", right.BackEnd, strings.Join(right.BackEndPasses, ",")))
	add(StepConfiguration,
		fmt.Sprintf("scale=%d wg=%d", left.ProblemScale, left.WorkGroupSize),
		fmt.Sprintf("scale=%d wg=%d", right.ProblemScale, right.WorkGroupSize))
	add(StepHardware, left.Device, right.Device)
	return r
}

// ProgrammerFair reports whether every programmer-controlled step (1-4)
// matches: the paper's practical criterion, since steps 3 and 5 differ by
// definition when the APIs differ.
func (r *FairnessReport) ProgrammerFair() bool {
	for _, m := range r.Mismatches {
		if m.Role == RoleProgrammer {
			return false
		}
	}
	return true
}
