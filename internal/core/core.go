// Package core implements the paper's methodology as a library: the
// normalised PerformanceRatio metric of Eq. (1), the similarity band used
// throughout the evaluation, the experiment harness that regenerates every
// figure and table, and the eight-step fair-comparison pipeline of
// Section IV-C (Fig. 9).
package core

import (
	"fmt"
	"math"

	"gpucmp/internal/arch"
	"gpucmp/internal/bench"
)

// PR computes Eq. (1): Performance_OpenCL / Performance_CUDA. For
// time-valued metrics (seconds, lower is better) the ratio is inverted so
// that PR > 1 always means OpenCL is faster.
func PR(opencl, cuda float64, lowerIsBetter bool) float64 {
	if lowerIsBetter {
		if opencl == 0 {
			return math.Inf(1)
		}
		return cuda / opencl
	}
	if cuda == 0 {
		return math.Inf(1)
	}
	return opencl / cuda
}

// Similar implements the paper's band: |1 - PR| < 0.1 means the two
// programming models perform alike.
func Similar(pr float64) bool { return math.Abs(1-pr) < 0.1 }

// Comparison is one benchmark compared across the two toolchains on one
// device.
type Comparison struct {
	Benchmark string
	Device    string
	Metric    string
	CUDA      *bench.Result
	OpenCL    *bench.Result
	PR        float64
}

// String renders one row of the Fig. 3 data.
func (c *Comparison) String() string {
	return fmt.Sprintf("%-8s %-16s cuda=%.4g opencl=%.4g %s  PR=%.3f",
		c.Benchmark, c.Device, c.CUDA.Value, c.OpenCL.Value, c.Metric, c.PR)
}

// Compare runs one benchmark with both toolchains on one device, using
// per-toolchain configurations (pass bench.NativeConfig values for the
// paper's unmodified Fig. 3 comparison, or identical configs for a
// controlled experiment).
func Compare(a *arch.Device, spec bench.Spec, cfgCUDA, cfgCL bench.Config) (*Comparison, error) {
	dc, err := bench.NewCUDADriver(a)
	if err != nil {
		return nil, err
	}
	rc, err := spec.Run(dc, cfgCUDA)
	if err != nil {
		return nil, err
	}
	if rc.Err != nil {
		return nil, fmt.Errorf("core: %s: CUDA run aborted: %w", spec.Name, rc.Err)
	}
	do, err := bench.NewOpenCLDriver(a)
	if err != nil {
		return nil, err
	}
	ro, err := spec.Run(do, cfgCL)
	if err != nil {
		return nil, err
	}
	if ro.Err != nil {
		return nil, fmt.Errorf("core: %s: OpenCL run aborted: %w", spec.Name, ro.Err)
	}
	return &Comparison{
		Benchmark: spec.Name,
		Device:    a.Name,
		Metric:    spec.Metric,
		CUDA:      rc,
		OpenCL:    ro,
		PR:        PR(ro.Value, rc.Value, spec.LowerIsBetter),
	}, nil
}

// CompareNative runs the paper's Fig. 3 comparison: each toolchain's
// native, unmodified implementation.
func CompareNative(a *arch.Device, spec bench.Spec, scale int) (*Comparison, error) {
	cu := bench.NativeConfig("cuda")
	cu.Scale = scale
	cl := bench.NativeConfig("opencl")
	cl.Scale = scale
	return Compare(a, spec, cu, cl)
}
