// Package core implements the paper's methodology as a library: the
// normalised PerformanceRatio metric of Eq. (1), the similarity band used
// throughout the evaluation, the experiment harness that regenerates every
// figure and table, and the eight-step fair-comparison pipeline of
// Section IV-C (Fig. 9).
package core

import (
	"fmt"
	"math"

	"gpucmp/internal/arch"
	"gpucmp/internal/bench"
)

// PR computes Eq. (1): Performance_OpenCL / Performance_CUDA. For
// time-valued metrics (seconds, lower is better) the ratio is inverted so
// that PR > 1 always means OpenCL is faster.
func PR(opencl, cuda float64, lowerIsBetter bool) float64 {
	if lowerIsBetter {
		if opencl == 0 {
			return math.Inf(1)
		}
		return cuda / opencl
	}
	if cuda == 0 {
		return math.Inf(1)
	}
	return opencl / cuda
}

// Similar implements the paper's band: |1 - PR| < 0.1 means the two
// programming models perform alike.
func Similar(pr float64) bool { return math.Abs(1-pr) < 0.1 }

// Comparison is one benchmark compared across the two toolchains on one
// device.
type Comparison struct {
	Benchmark string        `json:"benchmark"`
	Device    string        `json:"device"`
	Metric    string        `json:"metric"`
	CUDA      *bench.Result `json:"cuda"`
	OpenCL    *bench.Result `json:"opencl"`
	PR        float64       `json:"pr"`
}

// String renders one row of the Fig. 3 data.
func (c *Comparison) String() string {
	return fmt.Sprintf("%-8s %-16s cuda=%.4g opencl=%.4g %s  PR=%.3f",
		c.Benchmark, c.Device, c.CUDA.Value, c.OpenCL.Value, c.Metric, c.PR)
}

// Runner executes one experiment cell: a benchmark with one toolchain and
// configuration on one device. Direct is the in-process implementation;
// internal/server wires the study functions to a scheduler-backed Runner
// so every cell is cached, deduplicated and run on the worker pool.
type Runner func(a *arch.Device, toolchain string, spec bench.Spec, cfg bench.Config) (*bench.Result, error)

// Direct runs the cell on a freshly opened driver in the calling
// goroutine — the Runner behind every non-With study function.
func Direct(a *arch.Device, toolchain string, spec bench.Spec, cfg bench.Config) (*bench.Result, error) {
	d, err := bench.NewDriver(toolchain, a)
	if err != nil {
		return nil, err
	}
	return spec.Run(d, cfg)
}

// Compare runs one benchmark with both toolchains on one device, using
// per-toolchain configurations (pass bench.NativeConfig values for the
// paper's unmodified Fig. 3 comparison, or identical configs for a
// controlled experiment).
func Compare(a *arch.Device, spec bench.Spec, cfgCUDA, cfgCL bench.Config) (*Comparison, error) {
	return CompareWith(Direct, a, spec, cfgCUDA, cfgCL)
}

// CompareWith is Compare through an explicit Runner.
func CompareWith(run Runner, a *arch.Device, spec bench.Spec, cfgCUDA, cfgCL bench.Config) (*Comparison, error) {
	rc, err := run(a, "cuda", spec, cfgCUDA)
	if err != nil {
		return nil, err
	}
	if rc.Err != nil {
		return nil, fmt.Errorf("core: %s: CUDA run aborted: %w", spec.Name, rc.Err)
	}
	ro, err := run(a, "opencl", spec, cfgCL)
	if err != nil {
		return nil, err
	}
	if ro.Err != nil {
		return nil, fmt.Errorf("core: %s: OpenCL run aborted: %w", spec.Name, ro.Err)
	}
	return &Comparison{
		Benchmark: spec.Name,
		Device:    a.Name,
		Metric:    spec.Metric,
		CUDA:      rc,
		OpenCL:    ro,
		PR:        PR(ro.Value, rc.Value, spec.LowerIsBetter),
	}, nil
}

// CompareNative runs the paper's Fig. 3 comparison: each toolchain's
// native, unmodified implementation.
func CompareNative(a *arch.Device, spec bench.Spec, scale int) (*Comparison, error) {
	return CompareNativeWith(Direct, a, spec, scale)
}

// CompareNativeWith is CompareNative through an explicit Runner.
func CompareNativeWith(run Runner, a *arch.Device, spec bench.Spec, scale int) (*Comparison, error) {
	cu := bench.NativeConfig("cuda")
	cu.Scale = scale
	cl := bench.NativeConfig("opencl")
	cl.Scale = scale
	return CompareWith(run, a, spec, cu, cl)
}
