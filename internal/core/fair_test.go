package core

import (
	"strings"
	"testing"

	"gpucmp/internal/bench"
)

func TestAuditFairSetups(t *testing.T) {
	cu := DescribeSetup("cuda", "MD", "GeForce GTX480", bench.Config{Scale: 1, UseTexture: true}, 128)
	cl := DescribeSetup("opencl", "MD", "GeForce GTX480", bench.Config{Scale: 1, UseTexture: true}, 128)
	r := Audit(cu, cl)
	if r.Fair() {
		t.Error("the front-end compilers differ, so the full audit cannot be FAIR")
	}
	if !r.ProgrammerFair() {
		t.Errorf("identical programmer steps should be programmer-fair:\n%s", r)
	}
	// The only mismatch must be the compiler step.
	for _, m := range r.Mismatches {
		if m.Role != RoleCompiler {
			t.Errorf("unexpected mismatch at %v (%v)", m.Step, m.Role)
		}
	}
}

func TestAuditCatchesNativeDifferences(t *testing.T) {
	// The paper's Fig. 3 comparison is unfair at step 4: the CUDA MD uses
	// texture memory, the OpenCL one does not.
	cu := DescribeSetup("cuda", "MD", "GeForce GTX280", bench.NativeConfig("cuda"), 128)
	cl := DescribeSetup("opencl", "MD", "GeForce GTX280", bench.NativeConfig("opencl"), 128)
	r := Audit(cu, cl)
	if r.ProgrammerFair() {
		t.Error("native configurations differ at step 4 and must not be programmer-fair")
	}
	found := false
	for _, m := range r.Mismatches {
		if m.Step == StepNativeOptimisation {
			found = true
			if m.Role != RoleProgrammer {
				t.Error("step 4 belongs to the programmer")
			}
		}
	}
	if !found {
		t.Error("audit missed the step-4 mismatch")
	}
	if !strings.Contains(r.String(), "UNFAIR") {
		t.Error("report should flag unfairness")
	}
}

func TestAuditConfigurationAndHardware(t *testing.T) {
	left := DescribeSetup("cuda", "FFT", "GeForce GTX280", bench.Config{Scale: 1}, 64)
	right := DescribeSetup("opencl", "FFT", "GeForce GTX480", bench.Config{Scale: 2}, 128)
	r := Audit(left, right)
	var steps []Step
	for _, m := range r.Mismatches {
		steps = append(steps, m.Step)
	}
	has := func(s Step) bool {
		for _, x := range steps {
			if x == s {
				return true
			}
		}
		return false
	}
	if !has(StepConfiguration) || !has(StepHardware) {
		t.Errorf("audit missed configuration/hardware mismatches: %v", steps)
	}
}

func TestRolesAndStepNames(t *testing.T) {
	if RoleOf(StepProblem) != RoleProgrammer || RoleOf(StepNativeOptimisation) != RoleProgrammer {
		t.Error("steps 1-4 belong to the programmer")
	}
	if RoleOf(StepFrontEndCompile) != RoleCompiler || RoleOf(StepBackEndCompile) != RoleCompiler {
		t.Error("steps 5-6 belong to the compiler")
	}
	if RoleOf(StepConfiguration) != RoleUser || RoleOf(StepHardware) != RoleUser {
		t.Error("steps 7-8 belong to the user")
	}
	for s := Step(0); s < NumSteps; s++ {
		if s.String() == "" {
			t.Error("step without a name")
		}
	}
	if RoleProgrammer.String() != "programmer" || RoleCompiler.String() != "compiler" || RoleUser.String() != "user" {
		t.Error("role names wrong")
	}
}

func TestFairReportString(t *testing.T) {
	s := DescribeSetup("cuda", "X", "dev", bench.Config{}, 64)
	r := Audit(s, s)
	if !r.Fair() || !strings.Contains(r.String(), "FAIR") {
		t.Error("identical setups must audit as fair")
	}
}
