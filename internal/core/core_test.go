package core

import (
	"math"
	"strings"
	"testing"

	"gpucmp/internal/arch"
	"gpucmp/internal/bench"
	"gpucmp/internal/ptx"
)

func TestPRMetric(t *testing.T) {
	// Eq. (1) for throughput metrics.
	if got := PR(90, 100, false); got != 0.9 {
		t.Errorf("PR = %g, want 0.9", got)
	}
	// Time metrics invert so PR > 1 still means OpenCL wins.
	if got := PR(0.5, 1.0, true); got != 2.0 {
		t.Errorf("time PR = %g, want 2", got)
	}
	if !math.IsInf(PR(1, 0, false), 1) || !math.IsInf(PR(0, 1, true), 1) {
		t.Error("degenerate PRs should be +Inf")
	}
	if !Similar(1.05) || !Similar(0.95) || Similar(1.2) || Similar(0.85) {
		t.Error("similarity band wrong")
	}
}

// TestPeakFractions verifies the Fig. 1 / Fig. 2 calibration targets
// end-to-end through the benchmarks (not just the analytic model): OpenCL
// reaches about 68.6% / 87.7% of TP_BW and beats CUDA by about 8.5% / 2.4%;
// both toolchains reach the same achieved FLOPS.
func TestPeakFractions(t *testing.T) {
	bw280, err := PeakBandwidth(arch.GTX280(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if f := bw280.FractionOpenCL(); math.Abs(f-0.686) > 0.05 {
		t.Errorf("GTX280 OpenCL BW fraction = %.3f, want ~0.686", f)
	}
	if r := bw280.OpenCL / bw280.CUDA; math.Abs(r-1.085) > 0.03 {
		t.Errorf("GTX280 OpenCL/CUDA BW ratio = %.3f, want ~1.085", r)
	}
	bw480, err := PeakBandwidth(arch.GTX480(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if f := bw480.FractionOpenCL(); math.Abs(f-0.877) > 0.05 {
		t.Errorf("GTX480 OpenCL BW fraction = %.3f, want ~0.877", f)
	}
	if r := bw480.OpenCL / bw480.CUDA; math.Abs(r-1.024) > 0.03 {
		t.Errorf("GTX480 OpenCL/CUDA BW ratio = %.3f, want ~1.024", r)
	}

	fl280, err := PeakFlops(arch.GTX280(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if f := fl280.FractionOpenCL(); math.Abs(f-0.715) > 0.06 {
		t.Errorf("GTX280 FLOPS fraction = %.3f, want ~0.715", f)
	}
	fl480, err := PeakFlops(arch.GTX480(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if f := fl480.FractionOpenCL(); math.Abs(f-0.977) > 0.08 {
		t.Errorf("GTX480 FLOPS fraction = %.3f, want ~0.977", f)
	}
	// "OpenCL obtains almost the same AP_FLOPS as CUDA".
	for _, p := range []PeakResult{fl280, fl480} {
		if r := p.OpenCL / p.CUDA; math.Abs(r-1) > 0.05 {
			t.Errorf("%s: FLOPS ratio = %.3f, want ~1", p.Device, r)
		}
	}
}

// TestFig3Shape checks the headline observations of the PR comparison:
// the unmodified OpenCL Sobel beats the CUDA one on GTX280 (the constant
// memory outlier) but not on GTX480 (Fermi's cache equalises them), and
// CUDA leads most other benchmarks.
func TestFig3Shape(t *testing.T) {
	rows280, err := NativePRSeries(arch.GTX280(), 3)
	if err != nil {
		t.Fatal(err)
	}
	rows480, err := NativePRSeries(arch.GTX480(), 3)
	if err != nil {
		t.Fatal(err)
	}
	pr := func(rows []*Comparison, name string) float64 {
		for _, c := range rows {
			if c.Benchmark == name {
				return c.PR
			}
		}
		t.Fatalf("missing %s", name)
		return 0
	}
	if pr(rows280, "Sobel") <= 1 {
		t.Errorf("GTX280 Sobel PR = %.3f, want > 1 (OpenCL's constant filter wins on GT200)", pr(rows280, "Sobel"))
	}
	if pr(rows480, "Sobel") >= 1 {
		t.Errorf("GTX480 Sobel PR = %.3f, want < 1 (Fermi's cache removes the advantage)", pr(rows480, "Sobel"))
	}
	for _, rows := range [][]*Comparison{rows280, rows480} {
		if pr(rows, "FFT") >= 1 {
			t.Errorf("FFT PR = %.3f on %s, want < 1 (front-end gap)", pr(rows, "FFT"), rows[0].Device)
		}
		if pr(rows, "BFS") >= 1 {
			t.Errorf("BFS PR = %.3f on %s, want < 1 (launch overhead)", pr(rows, "BFS"), rows[0].Device)
		}
	}
	if len(rows280) != 14 || len(rows480) != 14 {
		t.Errorf("Fig. 3 should have 14 benchmarks per device")
	}
}

// TestTextureStudies checks Fig. 4 (texture removal hurts the CUDA MD and
// SPMV) and Fig. 5 (after removal the toolchains are much closer).
func TestTextureStudies(t *testing.T) {
	for _, a := range []*arch.Device{arch.GTX280(), arch.GTX480()} {
		impacts, err := TextureStudy(a, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, im := range impacts {
			if im.Ratio() >= 1.0 {
				t.Errorf("%s on %s: removing texture should not speed it up (ratio %.3f)",
					im.Benchmark, im.Device, im.Ratio())
			}
		}
	}
	// Fig. 5: with texture removed from both, MD and SPMV land near parity
	// (the paper's "similar performance" conclusion).
	prs, err := TexturePRStudy(arch.GTX280(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range prs {
		if c.PR < 0.55 || c.PR > 1.45 {
			t.Errorf("Fig. 5 %s PR = %.3f, want near parity", c.Benchmark, c.PR)
		}
	}
}

// TestUnrollStudies checks Fig. 6/7 directions: the pragma at point a does
// not hurt CUDA, and the OpenCL build is the slower side of every combo.
func TestUnrollStudies(t *testing.T) {
	u, err := UnrollStudyCUDA(arch.GTX480(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if u.Ratio() > 1.02 {
		t.Errorf("Fig. 6: removing the pragma should not speed CUDA up (ratio %.3f)", u.Ratio())
	}
	combos, err := UnrollCombos(arch.GTX480(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(combos) != 2 {
		t.Fatalf("want 2 combos, got %d", len(combos))
	}
	for _, c := range combos {
		if c.PR >= 1.1 {
			t.Errorf("Fig. 7 %s: PR = %.3f, expected OpenCL at or below CUDA", c.Label, c.PR)
		}
	}
}

// TestConstantStudy checks Fig. 8: constant memory matters on GT200 and is
// nearly irrelevant on Fermi.
func TestConstantStudy(t *testing.T) {
	c280, err := ConstantStudy(arch.GTX280(), 2)
	if err != nil {
		t.Fatal(err)
	}
	c480, err := ConstantStudy(arch.GTX480(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if c280.Speedup() < 1.1 {
		t.Errorf("GTX280 constant-memory speedup = %.3f, want > 1.1", c280.Speedup())
	}
	if math.Abs(c480.Speedup()-1) > 0.1 {
		t.Errorf("GTX480 constant-memory speedup = %.3f, want ~1 (Fermi L1)", c480.Speedup())
	}
	if c280.Speedup() <= c480.Speedup() {
		t.Error("the constant cache must matter more on GT200 than on Fermi")
	}
}

// TestTableVShape checks the front-end instruction-census contrasts of
// Table V on the FFT forward kernel.
func TestTableVShape(t *testing.T) {
	cu, cl, report, err := PTXStudy()
	if err != nil {
		t.Fatal(err)
	}
	// CUDA is mov-heavy; OpenCL is shift/flow-control-heavy.
	if cu.Get(ptx.OpMov, ptx.SpaceNone) <= cl.Get(ptx.OpMov, ptx.SpaceNone) {
		t.Errorf("mov: cuda %d should exceed opencl %d",
			cu.Get(ptx.OpMov, ptx.SpaceNone), cl.Get(ptx.OpMov, ptx.SpaceNone))
	}
	if cl.Class(ptx.ClassLogicShift) <= cu.Class(ptx.ClassLogicShift) {
		t.Errorf("logic/shift: opencl %d should exceed cuda %d",
			cl.Class(ptx.ClassLogicShift), cu.Class(ptx.ClassLogicShift))
	}
	if cl.Class(ptx.ClassFlowControl) <= cu.Class(ptx.ClassFlowControl) {
		t.Errorf("flow control: opencl %d should exceed cuda %d",
			cl.Class(ptx.ClassFlowControl), cu.Class(ptx.ClassFlowControl))
	}
	// Argument spaces: ld.param for CUDA, ld.const for OpenCL.
	if cu.Get(ptx.OpLd, ptx.SpaceParam) == 0 || cu.Get(ptx.OpLd, ptx.SpaceConst) != 0 {
		t.Error("CUDA arguments should come from the param space")
	}
	if cl.Get(ptx.OpLd, ptx.SpaceConst) == 0 || cl.Get(ptx.OpLd, ptx.SpaceParam) != 0 {
		t.Error("OpenCL arguments should come from the constant bank")
	}
	// Barriers are source-level and identical.
	if cu.Get(ptx.OpBar, ptx.SpaceNone) != cl.Get(ptx.OpBar, ptx.SpaceNone) {
		t.Error("bar counts must match")
	}
	// Both kernels still use per-thread local staging.
	for _, s := range []*ptx.Stats{cu, cl} {
		if s.Get(ptx.OpLd, ptx.SpaceLocal) == 0 || s.Get(ptx.OpSt, ptx.SpaceLocal) == 0 {
			t.Error("FFT must stage through local memory (Table V ld.local/st.local rows)")
		}
	}
	for _, want := range []string{"Arithmetic", "SUB-TOTAL", "TOTAL", "CUDA", "OpenCL"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

// TestDynamicGlobalTrafficEqual: the paper's crucial observation that "all
// time-consuming instructions such as ld.global and st.global are exactly
// the same" — true dynamically for the FFT under both toolchains.
func TestDynamicGlobalTrafficEqual(t *testing.T) {
	spec, _ := bench.SpecByName("FFT")
	var counts [2]int64
	for i, tc := range []string{"cuda", "opencl"} {
		d, err := bench.NewDriver(tc, arch.GTX480())
		if err != nil {
			t.Fatal(err)
		}
		r, err := spec.Run(d, bench.Config{Scale: 16})
		if err != nil || r.Err != nil {
			t.Fatal(err, r.Err)
		}
		for _, tr := range r.Traces {
			counts[i] += tr.Dyn.Get(ptx.OpLd, ptx.SpaceGlobal) + tr.Dyn.Get(ptx.OpSt, ptx.SpaceGlobal)
		}
	}
	if counts[0] != counts[1] {
		t.Errorf("dynamic global traffic differs: cuda %d, opencl %d", counts[0], counts[1])
	}
}

// TestPortabilityMatchesTableVI checks the status grid of Table VI.
func TestPortabilityMatchesTableVI(t *testing.T) {
	cells, err := PortabilityStudy(8)
	if err != nil {
		t.Fatal(err)
	}
	status := make(map[[2]string]string)
	for _, c := range cells {
		status[[2]string{c.Device, c.Benchmark}] = c.Status
	}
	expect := func(dev, bench, want string) {
		if got := status[[2]string{dev, bench}]; got != want {
			t.Errorf("%s / %s: status %s, want %s", dev, bench, got, want)
		}
	}
	hd, cpu, cell := arch.HD5870().Name, arch.Intel920().Name, arch.CellBE().Name
	expect(hd, "RdxS", "FL")
	expect(cpu, "RdxS", "FL")
	for _, b := range []string{"FFT", "DXTC", "RdxS", "STNW"} {
		expect(cell, b, "ABT")
	}
	for _, b := range []string{"BFS", "Sobel", "TranP", "Reduce", "MD", "SPMV", "St2D", "Scan", "MxM", "FDTD"} {
		expect(hd, b, "OK")
		expect(cpu, b, "OK")
		expect(cell, b, "OK")
	}
	if len(cells) != 3*14 {
		t.Errorf("Table VI should have 42 cells, got %d", len(cells))
	}
}

// TestComparisonStringAndCompare covers the Comparison plumbing.
func TestComparisonStringAndCompare(t *testing.T) {
	spec, _ := bench.SpecByName("TranP")
	c, err := CompareNative(arch.GTX480(), spec, 16)
	if err != nil {
		t.Fatal(err)
	}
	s := c.String()
	for _, want := range []string{"TranP", "PR="} {
		if !strings.Contains(s, want) {
			t.Errorf("comparison string missing %q: %s", want, s)
		}
	}
	if c.CUDA == nil || c.OpenCL == nil || c.PR <= 0 {
		t.Error("comparison incomplete")
	}
}

// TestEfficiencyStudy: peak-normalised fractions are in (0,1] where the
// run succeeded, and the portability score quantifies the Section V
// performance-portability gap.
func TestEfficiencyStudy(t *testing.T) {
	effs, err := EfficiencyStudy(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(effs) == 0 {
		t.Fatal("no efficiency rows")
	}
	byBench := map[string]int{}
	for _, e := range effs {
		byBench[e.Benchmark]++
		if e.Status == "OK" {
			if e.Fraction <= 0 || e.Fraction > 1 {
				t.Errorf("%s on %s: fraction %.3f out of (0,1]", e.Benchmark, e.Device, e.Fraction)
			}
		}
	}
	// Only the GFlops/GB-metric benchmarks are normalisable.
	for _, name := range []string{"TranP", "Reduce", "FFT", "MD", "SPMV", "MxM"} {
		if byBench[name] != 5 {
			t.Errorf("%s should have 5 device rows, got %d", name, byBench[name])
		}
	}
	if byBench["Sobel"] != 0 || byBench["BFS"] != 0 {
		t.Error("time-metric benchmarks have no peak normalisation")
	}

	score := PortabilityScore(effs, "MxM")
	if math.IsNaN(score) || score <= 0 || score > 1 {
		t.Errorf("MxM portability score = %.3f, want in (0,1]", score)
	}
	if !math.IsNaN(PortabilityScore(effs, "nothing")) {
		t.Error("unknown benchmark should score NaN")
	}
	// RdxS fails on two devices and aborts on one: its score uses only the
	// OK rows.
	if s := PortabilityScore(effs, "RdxS"); !math.IsNaN(s) && (s <= 0 || s > 1) {
		t.Errorf("RdxS score = %.3f", s)
	}
}

// TestDeterministicSimulation: the parallel block executor must produce
// identical traces and times across repeated runs.
func TestDeterministicSimulation(t *testing.T) {
	run := func() (int64, float64) {
		spec, _ := bench.SpecByName("FFT")
		d, err := bench.NewOpenCLDriver(arch.GTX480())
		if err != nil {
			t.Fatal(err)
		}
		r, err := spec.Run(d, bench.Config{Scale: 8})
		if err != nil || r.Err != nil {
			t.Fatal(err, r.Err)
		}
		return r.Traces[0].Dyn.Total, r.KernelSeconds
	}
	d1, t1 := run()
	d2, t2 := run()
	if d1 != d2 || t1 != t2 {
		t.Errorf("simulation not deterministic: (%d, %g) vs (%d, %g)", d1, t1, d2, t2)
	}
}
