package core

import (
	"math"

	"gpucmp/internal/arch"
	"gpucmp/internal/bench"
	"gpucmp/internal/stats"
)

// Efficiency quantifies Section V's performance-portability discussion:
// raw Table VI numbers are incomparable across devices, so this study
// normalises each run by its device's relevant theoretical peak
// (TP_FLOPS for compute metrics, TP_BW for bandwidth metrics) — the same
// normalisation the paper applies when it reports "X% of peak".
type Efficiency struct {
	Benchmark string
	Device    string
	Value     float64 // raw Table II metric
	Peak      float64 // the device peak the metric is measured against
	Fraction  float64 // Value normalised by Peak (0 when not applicable)
	Status    string
}

// peakFor picks the peak matching a benchmark metric. Time-valued metrics
// have no natural peak and report zero.
func peakFor(a *arch.Device, metric string) float64 {
	switch metric {
	case "GFlops/sec":
		return a.TheoreticalPeakFLOPS()
	case "GB/sec":
		return a.TheoreticalPeakBandwidth()
	default:
		return 0
	}
}

// EfficiencyStudy runs the peak-normalisable benchmarks through OpenCL on
// every device and reports achieved peak fractions — the quantitative form
// of "OpenCL's portability does not extend to performance portability".
func EfficiencyStudy(scale int) ([]Efficiency, error) {
	var out []Efficiency
	for _, a := range arch.All() {
		for _, spec := range Fig3Benchmarks() {
			peak := peakFor(a, spec.Metric)
			if peak == 0 {
				continue
			}
			cfg := bench.NativeConfig("opencl")
			cfg.Scale = scale
			r, err := Direct(a, "opencl", spec, cfg)
			if err != nil {
				return nil, err
			}
			e := Efficiency{
				Benchmark: spec.Name, Device: a.Name,
				Peak: peak, Status: r.Status(),
			}
			if r.Err == nil && r.Correct {
				e.Value = r.Value
				e.Fraction = r.Value / peak
			}
			out = append(out, e)
		}
	}
	return out, nil
}

// PortabilityScore summarises one benchmark's performance portability: the
// geometric mean of its peak fractions across devices, divided by its best
// fraction. 1.0 means the kernel exploits every device equally well;
// values near 0 mean it is tuned for one architecture (the situation the
// paper's proposed auto-tuner addresses).
func PortabilityScore(effs []Efficiency, benchmark string) float64 {
	var fracs []float64
	best := 0.0
	for _, e := range effs {
		if e.Benchmark != benchmark || e.Status != "OK" {
			continue
		}
		fracs = append(fracs, e.Fraction)
		if e.Fraction > best {
			best = e.Fraction
		}
	}
	if len(fracs) == 0 || best == 0 {
		return math.NaN()
	}
	return stats.GeoMean(fracs) / best
}
