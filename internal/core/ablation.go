package core

import (
	"fmt"
	"math"
	"strings"

	"gpucmp/internal/arch"
	"gpucmp/internal/bench"
	"gpucmp/internal/compiler"
	"gpucmp/internal/perfmodel"
	"gpucmp/internal/ptx"
	"gpucmp/internal/sim"
	"gpucmp/internal/workload"
)

// This file is the pass-level ablation API behind the paper's Section-V
// argument: the CUDA-vs-OpenCL gap on compiler-bound kernels is the sum of
// individually portable front-end optimisations. Each missing optimisation
// is a named compiler.Knob; GapClosingStudy applies them to the OpenCL
// personality one at a time, re-measures the FFT forward kernel after each
// step, and reports how much of the gap each knob closes — the experiment
// the paper runs by hand, as a reproducible API.

// AblationStep is one row of the gap-closing experiment: the state of the
// comparison after cumulatively applying knobs up to and including this one.
type AblationStep struct {
	Knob        string  `json:"knob"`
	Description string  `json:"description"`
	Seconds     float64 `json:"seconds"`      // OpenCL kernel seconds, knobs 0..i applied
	PR          float64 `json:"pr"`           // Eq. (1) vs the CUDA build
	ClosedShare float64 `json:"closed_share"` // fraction of the native gap closed so far
	// SoloSeconds isolates the knob: base personality plus only this knob.
	SoloSeconds float64 `json:"solo_seconds"`

	// PassStats is the back-end pipeline report for this step's compile,
	// and Remarks its front-end remark count — the observability story for
	// why the number moved.
	PassStats []ptx.PassStat `json:"pass_stats"`
	Remarks   int            `json:"remarks"`
}

// GapClosingReport is the full Section-V reproduction on one device.
type GapClosingReport struct {
	Device      string         `json:"device"`
	Kernel      string         `json:"kernel"`
	CUDASeconds float64        `json:"cuda_seconds"`
	BaseSeconds float64        `json:"base_seconds"` // unmodified OpenCL front-end
	BasePR      float64        `json:"base_pr"`
	Steps       []AblationStep `json:"steps"`
	FinalPR     float64        `json:"final_pr"`
	Closed      bool           `json:"closed"` // FinalPR inside the similarity band
}

// String renders the study as the step-by-step table faircompare prints.
func (r *GapClosingReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pass-level ablation of the %s kernel on %s\n", r.Kernel, r.Device)
	fmt.Fprintf(&b, "  %-24s %12s %8s %8s\n", "ported optimisation", "opencl-us", "PR", "closed")
	fmt.Fprintf(&b, "  %-24s %12.2f %8.3f %7.0f%%\n", "(native front-end)", r.BaseSeconds*1e6, r.BasePR, 0.0)
	for _, s := range r.Steps {
		fmt.Fprintf(&b, "  %-24s %12.2f %8.3f %7.0f%%\n", "+"+s.Knob, s.Seconds*1e6, s.PR, 100*s.ClosedShare)
	}
	fmt.Fprintf(&b, "  %-24s %12.2f %8.3f\n", "(cuda front-end)", r.CUDASeconds*1e6, 1.0)
	if r.Closed {
		fmt.Fprintf(&b, "  gap closed: |1-PR| < 0.1 after porting all %d optimisations\n", len(r.Steps))
	} else {
		fmt.Fprintf(&b, "  residual gap after all knobs: PR=%.3f\n", r.FinalPR)
	}
	return b.String()
}

// ablationLaunch describes the fixed FFT launch the study times: a 128
// batch of 512-point signals on 64-thread work-groups, the shape used by
// the paper's Table V analysis of the forward kernel.
const (
	ablationBatch  = 128
	ablationPoints = 512
	ablationBlock  = 64
)

// timeKernel compiles the FFT forward kernel under cfg and prices one
// launch on the device with the toolchain's performance model.
func timeKernel(a *arch.Device, cfg compiler.Config) (float64, *ptx.Kernel, error) {
	pk, err := compiler.CompileWithConfig(bench.FFTKernel(), cfg)
	if err != nil {
		return 0, nil, err
	}
	dev, err := sim.NewDevice(a)
	if err != nil {
		return 0, nil, err
	}
	re, im := workload.SignalBatch(ablationBatch, ablationPoints, 17)
	upload := func(f []float32) (uint32, error) {
		words := make([]uint32, len(f))
		for i := range f {
			words[i] = f32bits(f[i])
		}
		addr, err := dev.Global.Alloc(uint32(4 * len(words)))
		if err != nil {
			return 0, err
		}
		return addr, dev.Global.WriteWords(addr, words)
	}
	inRe, err := upload(re)
	if err != nil {
		return 0, nil, err
	}
	inIm, err := upload(im)
	if err != nil {
		return 0, nil, err
	}
	outRe, err := dev.Global.Alloc(4 * ablationBatch * ablationPoints)
	if err != nil {
		return 0, nil, err
	}
	outIm, err := dev.Global.Alloc(4 * ablationBatch * ablationPoints)
	if err != nil {
		return 0, nil, err
	}
	tr, err := dev.Launch(pk, sim.Dim3{X: ablationBatch, Y: 1}, sim.Dim3{X: ablationBlock, Y: 1},
		[]uint32{inRe, inIm, outRe, outIm})
	if err != nil {
		return 0, nil, err
	}
	tc := perfmodel.ToolchainFor(cfg.Personality.Name)
	return perfmodel.KernelTime(dev.Arch, tc, tr).Total, pk, nil
}

// GapClosingStudy runs the Section-V experiment on one device: starting
// from the native OpenCL front-end, port each missing NVOPENCC
// optimisation across (compiler.GapKnobs order), re-measuring the FFT
// forward kernel after every step, until the personality generates the
// same code as NVOPENCC and the PR lands inside the similarity band.
func GapClosingStudy(a *arch.Device) (*GapClosingReport, error) {
	cuda, _, err := timeKernel(a, compiler.Config{Personality: compiler.CUDA()})
	if err != nil {
		return nil, err
	}
	base, _, err := timeKernel(a, compiler.Config{Personality: compiler.OpenCL()})
	if err != nil {
		return nil, err
	}
	rep := &GapClosingReport{
		Device:      a.Name,
		Kernel:      "FFT-forward",
		CUDASeconds: cuda,
		BaseSeconds: base,
		BasePR:      PR(base, cuda, true),
	}
	cum := compiler.OpenCL()
	for _, knob := range compiler.GapKnobs() {
		knob.Apply(&cum)
		sec, pk, err := timeKernel(a, compiler.Config{Personality: cum})
		if err != nil {
			return nil, fmt.Errorf("core: ablation step %q: %w", knob.Name, err)
		}
		solo := compiler.OpenCL()
		knob.Apply(&solo)
		soloSec, _, err := timeKernel(a, compiler.Config{Personality: solo})
		if err != nil {
			return nil, fmt.Errorf("core: solo ablation %q: %w", knob.Name, err)
		}
		step := AblationStep{
			Knob:        knob.Name,
			Description: knob.Description,
			Seconds:     sec,
			PR:          PR(sec, cuda, true),
			SoloSeconds: soloSec,
			PassStats:   pk.PassStats,
			Remarks:     len(pk.Remarks),
		}
		if base != cuda {
			step.ClosedShare = (base - sec) / (base - cuda)
		}
		rep.Steps = append(rep.Steps, step)
	}
	if n := len(rep.Steps); n > 0 {
		rep.FinalPR = rep.Steps[n-1].PR
	} else {
		rep.FinalPR = rep.BasePR
	}
	rep.Closed = Similar(rep.FinalPR)
	return rep, nil
}

func f32bits(f float32) uint32 { return math.Float32bits(f) }
