package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("title", "name", "value")
	tb.Add("alpha", 1.5)
	tb.Add("beta-very-long-name", float32(2))
	out := tb.String()
	for _, want := range []string{"title", "name", "value", "alpha", "1.5", "beta-very-long-name", "2"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("table has %d lines, want 5:\n%s", len(lines), out)
	}
	// Columns align: each data row at least as wide as the header row.
	if len(lines[3]) < len(strings.TrimRight(lines[1], " ")) {
		t.Error("rows narrower than headers")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean(2,8) = %g, want 4", got)
	}
	if !math.IsNaN(GeoMean(nil)) {
		t.Error("empty GeoMean should be NaN")
	}
	if !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Error("negative values should yield NaN")
	}
}

func TestGeoMeanBetweenMinAndMax(t *testing.T) {
	f := func(raw [5]uint16) bool {
		vals := make([]float64, 0, 5)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, r := range raw {
			v := float64(r) + 1
			vals = append(vals, v)
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		g := GeoMean(vals)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPct(t *testing.T) {
	if Pct(0.686) != "68.6%" {
		t.Errorf("Pct = %q", Pct(0.686))
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart("prs", []Bar{{"FFT", 0.7}, {"Sobel", 1.4}}, 20, 1.0)
	if !strings.Contains(out, "prs") || !strings.Contains(out, "FFT") || !strings.Contains(out, "Sobel") {
		t.Fatalf("chart missing labels:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("chart rows = %d, want 3", len(lines))
	}
	// The larger value draws the longer bar.
	if strings.Count(lines[1], "#") >= strings.Count(lines[2], "#") {
		t.Errorf("bar lengths out of order:\n%s", out)
	}
	// A reference mark appears: '|' beyond the short bar, '+' within the
	// long one.
	if !strings.Contains(lines[1], "|") {
		t.Errorf("short bar missing reference mark:\n%s", out)
	}
	if !strings.Contains(lines[2], "+") {
		t.Errorf("long bar should cross the reference:\n%s", out)
	}
	if BarChart("", nil, 0, 0) != "" {
		t.Error("empty chart should be empty")
	}
}
