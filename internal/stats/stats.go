// Package stats holds small presentation helpers shared by the experiment
// harness and the command-line tools: fixed-width tables, named series, and
// ratio summaries.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Table is a fixed-width text table. The JSON form (title, headers, rows)
// is what the gpucmpd figure endpoints return for table-shaped artifacts
// and what scripting consumers parse.
type Table struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

// NewTable starts a table with the given headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; values are formatted with %v (floats with %.4g).
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// GeoMean returns the geometric mean of positive values (NaN when empty).
func GeoMean(vals []float64) float64 {
	if len(vals) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range vals {
		if v <= 0 {
			return math.NaN()
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vals)))
}

// Pct formats a ratio as a percentage string.
func Pct(ratio float64) string { return fmt.Sprintf("%.1f%%", ratio*100) }

// Bar renders a horizontal ASCII bar chart — enough to eyeball the shape
// of a figure in a terminal. Values are scaled to width characters against
// the maximum value; a reference line can be drawn at ref (e.g. PR = 1).
type Bar struct {
	Label string  `json:"label"`
	Value float64 `json:"value"`
}

// BarChart renders bars with a shared scale. When ref > 0, a '|' marks the
// reference value on every row.
func BarChart(title string, bars []Bar, width int, ref float64) string {
	if width <= 0 {
		width = 50
	}
	maxV := ref
	for _, b := range bars {
		if b.Value > maxV {
			maxV = b.Value
		}
	}
	if maxV <= 0 {
		maxV = 1
	}
	labelW := 0
	for _, b := range bars {
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
	}
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title)
		sb.WriteByte('\n')
	}
	refCol := -1
	if ref > 0 {
		refCol = int(ref / maxV * float64(width))
		if refCol >= width {
			refCol = width - 1
		}
	}
	for _, b := range bars {
		n := int(b.Value / maxV * float64(width))
		if n > width {
			n = width
		}
		row := make([]byte, width)
		for i := range row {
			switch {
			case i < n:
				row[i] = '#'
			case i == refCol:
				row[i] = '|'
			default:
				row[i] = ' '
			}
		}
		if refCol >= 0 && refCol < n {
			row[refCol] = '+'
		}
		fmt.Fprintf(&sb, "%-*s %s %.3f\n", labelW, b.Label, string(row), b.Value)
	}
	return sb.String()
}
