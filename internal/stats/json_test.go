package stats

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// TestTableJSONRoundTrip checks the wire form the gpucmpd figure endpoints
// return for table-shaped artifacts (Table V, Table VI): lower-case keys,
// cell text preserved exactly.
func TestTableJSONRoundTrip(t *testing.T) {
	in := NewTable("Table VI — portability", "benchmark", "GTX480", "HD5870", "Cell")
	in.Add("FFT", "OK", "FL", "ABT")
	in.Add("MD", 412.5, 93.125, 0.25)

	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"title"`, `"headers"`, `"rows"`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("wire form missing %s: %s", key, data)
		}
	}

	var out Table
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&out, in) {
		t.Errorf("round trip changed table:\n in: %+v\nout: %+v", in, &out)
	}
	// Add formats floats with %.4g before they ever reach the wire, so the
	// JSON rows are strings and survive re-encoding byte for byte.
	again, err := json.Marshal(&out)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(data) {
		t.Errorf("re-encoding not stable:\n first: %s\nsecond: %s", data, again)
	}
}

// TestBarJSONKeys pins the Bar wire form used by bar-chart figures.
func TestBarJSONKeys(t *testing.T) {
	data, err := json.Marshal(Bar{Label: "FFT", Value: 1.25})
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"label":"FFT","value":1.25}` {
		t.Errorf("bar wire form = %s", data)
	}
}
