// Package sched is the concurrent experiment scheduler: a worker pool over
// canonical experiment jobs (benchmark, device, toolchain, config) with a
// content-keyed LRU result cache, singleflight deduplication of identical
// in-flight jobs, per-job timeout, and panic isolation. It is the execution
// engine behind cmd/gpucmpd and `cmd/benchall -parallel`, and the layer
// every later scaling step (sharding, remote workers, batch APIs) plugs
// into.
//
// The simulator is deterministic: a job's result depends only on its key,
// never on scheduling order, so caching and deduplication are semantically
// invisible — a parallel run reproduces a sequential run bit for bit.
package sched

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"gpucmp/internal/arch"
	"gpucmp/internal/bench"
)

// Job is one canonical experiment cell. Two jobs with equal Key() are the
// same experiment and share one execution and one cache slot.
type Job struct {
	Benchmark string       `json:"benchmark"`
	Device    string       `json:"device"`
	Toolchain string       `json:"toolchain"` // "cuda" or "opencl"
	Config    bench.Config `json:"config"`
}

// Key returns the canonical content key: every field that influences the
// result, in a fixed order. (bench.Config is a flat struct of scalars, so
// the %d/%t rendering below is a total encoding of it.)
func (j Job) Key() string {
	c := j.Config
	return fmt.Sprintf("%s|%s|%s|scale=%d tex=%t const=%t ua=%t ub=%t vspmv=%t ntranp=%t",
		j.Benchmark, j.Toolchain, j.Device,
		c.Scale, c.UseTexture, c.UseConstant, c.UnrollA, c.UnrollB, c.VectorSPMV, c.NaiveTranspose)
}

// Validate resolves the job's names without running it.
func (j Job) Validate() error {
	if _, err := bench.SpecByName(j.Benchmark); err != nil {
		return err
	}
	a, err := arch.Resolve(j.Device)
	if err != nil {
		return err
	}
	switch j.Toolchain {
	case "opencl":
	case "cuda":
		if a.Vendor != "NVIDIA" {
			return fmt.Errorf("sched: device %q is %s; CUDA runs on NVIDIA devices only", j.Device, a.Vendor)
		}
	default:
		return fmt.Errorf("sched: unknown toolchain %q (want cuda or opencl)", j.Toolchain)
	}
	return nil
}

// Outcome says how a Run was served.
type Outcome int

const (
	// Miss: this call executed the job.
	Miss Outcome = iota
	// Hit: served from the result cache.
	Hit
	// Shared: attached to an identical job already in flight.
	Shared
)

// String names the outcome for logs and HTTP responses.
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Shared:
		return "shared"
	default:
		return "miss"
	}
}

// Options configures a Scheduler. The zero value is usable: GOMAXPROCS
// workers, a 4096-entry cache, no job timeout.
type Options struct {
	// Workers is the pool size (defaults to GOMAXPROCS).
	Workers int
	// CacheSize caps the result LRU (defaults to 4096; negative disables
	// caching).
	CacheSize int
	// JobTimeout bounds one job's execution (0 = unbounded). A timed-out
	// job returns context.DeadlineExceeded to its waiters; the abandoned
	// simulation finishes on its goroutine and is discarded.
	JobTimeout time.Duration
}

// task is one in-flight execution that any number of callers wait on.
type task struct {
	job  Job
	key  string
	done chan struct{} // closed when res/err are final
	res  *bench.Result
	err  error
}

// Scheduler runs jobs on a fixed worker pool with caching and dedup.
type Scheduler struct {
	opts    Options
	queue   chan *task
	wg      sync.WaitGroup // workers
	subs    sync.WaitGroup // in-progress queue submissions
	metrics *Metrics

	mu     sync.Mutex
	closed bool
	flight map[string]*task
	cache  *lruCache
}

// New starts a scheduler and its worker pool. Call Close to stop it.
func New(opts Options) *Scheduler {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.CacheSize == 0 {
		opts.CacheSize = 4096
	}
	s := &Scheduler{
		opts:    opts,
		queue:   make(chan *task, 64),
		metrics: newMetrics(),
		flight:  make(map[string]*task),
	}
	if opts.CacheSize > 0 {
		s.cache = newLRU(opts.CacheSize)
	}
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Close stops accepting jobs and waits for the workers to drain. Pending
// Run calls complete; new ones fail.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.subs.Wait() // let in-progress submissions reach the queue
	close(s.queue)
	s.wg.Wait()
}

// Run executes the job (or serves it from cache / an identical in-flight
// execution) and returns its result. The returned *bench.Result may be
// shared with other callers and with the cache: treat it as immutable.
// ctx cancels this caller's wait, not the execution itself.
func (s *Scheduler) Run(ctx context.Context, j Job) (*bench.Result, error) {
	res, _, err := s.Do(ctx, j)
	return res, err
}

// Do is Run plus how the job was served.
func (s *Scheduler) Do(ctx context.Context, j Job) (*bench.Result, Outcome, error) {
	key := j.Key()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, Miss, fmt.Errorf("sched: scheduler is closed")
	}
	if s.cache != nil {
		if res, ok := s.cache.get(key); ok {
			s.mu.Unlock()
			s.metrics.cacheHits.Add(1)
			return res, Hit, nil
		}
	}
	if t, ok := s.flight[key]; ok {
		s.mu.Unlock()
		s.metrics.dedupShared.Add(1)
		return s.wait(ctx, t, Shared)
	}
	t := &task{job: j, key: key, done: make(chan struct{})}
	s.flight[key] = t
	// Register the submission before releasing the lock so Close cannot
	// close the queue between our closed-check and the send below.
	s.subs.Add(1)
	s.mu.Unlock()

	s.metrics.cacheMisses.Add(1)
	s.metrics.queueDepth.Add(1)
	s.queue <- t
	s.subs.Done()
	return s.wait(ctx, t, Miss)
}

func (s *Scheduler) wait(ctx context.Context, t *task, o Outcome) (*bench.Result, Outcome, error) {
	select {
	case <-t.done:
		return t.res, o, t.err
	case <-ctx.Done():
		return nil, o, ctx.Err()
	}
}

// RunAll executes jobs concurrently through the pool and returns results
// in input order. The first error is returned after all jobs settle;
// results whose job failed are nil.
func (s *Scheduler) RunAll(ctx context.Context, jobs []Job) ([]*bench.Result, error) {
	results := make([]*bench.Result, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j Job) {
			defer wg.Done()
			results[i], errs[i] = s.Run(ctx, j)
		}(i, j)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// Metrics exposes the scheduler's counters.
func (s *Scheduler) Metrics() *Metrics { return s.metrics }

// CacheLen returns the number of cached results.
func (s *Scheduler) CacheLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cache == nil {
		return 0
	}
	return s.cache.len()
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for t := range s.queue {
		s.metrics.queueDepth.Add(-1)
		s.metrics.inFlight.Add(1)
		start := time.Now()
		t.res, t.err = s.execute(t.job)
		s.metrics.observe(t.job.Benchmark, time.Since(start))
		s.metrics.inFlight.Add(-1)
		s.metrics.jobsRun.Add(1)

		s.mu.Lock()
		delete(s.flight, t.key)
		// Cache every completed execution, including deterministic FL and
		// ABT outcomes (they are as reproducible as OK ones). Infra
		// errors — bad names, timeouts, panics — are not cached, so a
		// transient failure is retried on the next request.
		if t.err == nil && s.cache != nil {
			s.cache.add(t.key, t.res)
		}
		s.mu.Unlock()
		close(t.done)
	}
}

// execute resolves and runs one job, with panic isolation and the
// configured timeout. Each execution opens a fresh driver on a fresh
// simulated device, so concurrent jobs share nothing mutable.
func (s *Scheduler) execute(j Job) (*bench.Result, error) {
	if s.opts.JobTimeout <= 0 {
		return s.executeIsolated(j)
	}
	type outcome struct {
		res *bench.Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, err := s.executeIsolated(j)
		ch <- outcome{res, err}
	}()
	timer := time.NewTimer(s.opts.JobTimeout)
	defer timer.Stop()
	select {
	case o := <-ch:
		return o.res, o.err
	case <-timer.C:
		s.metrics.timeouts.Add(1)
		return nil, fmt.Errorf("sched: job %s: %w after %v", j.Key(), context.DeadlineExceeded, s.opts.JobTimeout)
	}
}

func (s *Scheduler) executeIsolated(j Job) (*bench.Result, error) {
	return s.safely(j.Key(), func() (*bench.Result, error) {
		if err := j.Validate(); err != nil {
			return nil, err
		}
		spec, _ := bench.SpecByName(j.Benchmark)
		a, _ := arch.Resolve(j.Device)
		d, err := bench.NewDriver(j.Toolchain, a)
		if err != nil {
			return nil, err
		}
		return spec.Run(d, j.Config)
	})
}

// safely runs fn with panic isolation: a panicking job becomes an error on
// that job alone instead of taking down the worker (and with it the pool).
func (s *Scheduler) safely(key string, fn func() (*bench.Result, error)) (res *bench.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.metrics.panics.Add(1)
			buf := make([]byte, 4096)
			buf = buf[:runtime.Stack(buf, false)]
			res, err = nil, fmt.Errorf("sched: job %s panicked: %v\n%s", key, r, buf)
		}
	}()
	return fn()
}
