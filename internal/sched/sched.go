// Package sched is the concurrent experiment scheduler: a worker pool over
// canonical experiment jobs (benchmark, device, toolchain, config) with a
// content-keyed LRU result cache, singleflight deduplication of identical
// in-flight jobs, per-job timeout, and panic isolation. It is the execution
// engine behind cmd/gpucmpd and `cmd/benchall -parallel`, and the layer
// every later scaling step (sharding, remote workers, batch APIs) plugs
// into.
//
// The simulator is deterministic: a job's result depends only on its key,
// never on scheduling order, so caching and deduplication are semantically
// invisible — a parallel run reproduces a sequential run bit for bit.
package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gpucmp/internal/arch"
	"gpucmp/internal/bench"
	"gpucmp/internal/fault"
	"gpucmp/internal/pattern"
	"gpucmp/internal/sim"
)

// Job is one canonical experiment cell. Two jobs with equal Key() are the
// same experiment and share one execution and one cache slot.
type Job struct {
	Benchmark string       `json:"benchmark"`
	Device    string       `json:"device"`
	Toolchain string       `json:"toolchain"` // "cuda" or "opencl"
	Config    bench.Config `json:"config"`
}

// Key returns the canonical content key: every field that influences the
// result, in a fixed order. (bench.Config is a flat struct of scalars plus
// the pattern-schedule mangle, so the rendering below is a total encoding
// of it. Mangles contain no spaces, so the encoding stays unambiguous.)
func (j Job) Key() string {
	c := j.Config
	return fmt.Sprintf("%s|%s|%s|scale=%d tex=%t const=%t ua=%t ub=%t vspmv=%t ntranp=%t pat=%s",
		j.Benchmark, j.Toolchain, j.Device,
		c.Scale, c.UseTexture, c.UseConstant, c.UnrollA, c.UnrollB, c.VectorSPMV, c.NaiveTranspose,
		c.Pattern)
}

// Validate resolves the job's names without running it.
func (j Job) Validate() error {
	if _, err := bench.SpecByName(j.Benchmark); err != nil {
		return err
	}
	a, err := arch.Resolve(j.Device)
	if err != nil {
		return err
	}
	switch j.Toolchain {
	case "opencl":
	case "cuda":
		if a.Vendor != "NVIDIA" {
			return fmt.Errorf("sched: device %q is %s; CUDA runs on NVIDIA devices only", j.Device, a.Vendor)
		}
	default:
		return fmt.Errorf("sched: unknown toolchain %q (want cuda or opencl)", j.Toolchain)
	}
	if j.Config.Pattern != "" {
		if !bench.IsPatternBench(j.Benchmark) {
			return fmt.Errorf("sched: benchmark %q has no pattern-generated variant", j.Benchmark)
		}
		if _, err := pattern.ParseSchedule(j.Config.Pattern); err != nil {
			return fmt.Errorf("sched: bad pattern schedule: %w", err)
		}
	}
	return nil
}

// Outcome says how a Run was served.
type Outcome int

const (
	// Miss: this call executed the job.
	Miss Outcome = iota
	// Hit: served from the result cache.
	Hit
	// Shared: attached to an identical job already in flight.
	Shared
)

// String names the outcome for logs and HTTP responses.
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Shared:
		return "shared"
	default:
		return "miss"
	}
}

// Options configures a Scheduler. The zero value is usable: GOMAXPROCS
// workers, a 4096-entry cache, no job timeout, default retry policy and
// circuit breakers, no fault injection.
type Options struct {
	// Workers is the pool size (defaults to GOMAXPROCS).
	Workers int
	// CacheSize caps the result LRU (defaults to 4096; negative disables
	// caching).
	CacheSize int
	// JobTimeout bounds one execution attempt (0 = unbounded). When it
	// fires, the watchdog cancels the attempt's simulated device and the
	// worker is reclaimed as soon as the warp loop hits its next
	// checkpoint; waiters get an error classified as ErrWatchdog that
	// still wraps context.DeadlineExceeded.
	JobTimeout time.Duration
	// ReclaimGrace is how long the watchdog waits for a cancelled attempt
	// to acknowledge before giving up and abandoning its goroutine
	// (default 2s; the warp loop checkpoints every sim.CheckpointInterval
	// instructions, so acknowledgement is normally immediate).
	ReclaimGrace time.Duration
	// Retry bounds the retries of Transient failures.
	Retry RetryPolicy
	// Breaker configures the per-device circuit breakers.
	Breaker BreakerConfig
	// Injector, when non-nil, injects deterministic faults at the device
	// seam (chaos testing).
	Injector *fault.Injector

	// Quota throttles untrusted per-tenant work submitted through DoTask.
	// The zero value disables throttling.
	Quota QuotaConfig
	// TenantCacheSize caps each tenant's private result cache (default 64;
	// negative disables tenant caching).
	TenantCacheSize int
	// MaxTenantCaches caps how many tenant caches exist at once (default
	// 1024); beyond it an arbitrary tenant's cache is dropped, bounding
	// memory against tenant-name flooding.
	MaxTenantCaches int
}

// task is one in-flight execution that any number of callers wait on.
// Benchmark jobs carry job and produce res; generic tenant tasks carry fn
// and produce val.
type task struct {
	job    Job
	key    string
	tenant string                             // generic tasks only
	fn     func(context.Context) (any, error) // non-nil marks a generic task
	done   chan struct{}                      // closed when res/err (or val/err) are final
	res    *bench.Result
	val    any
	err    error

	// Waiter accounting (guarded by Scheduler.mu): every Do/DoTask caller
	// attached to this task holds one reference. When the last waiter's
	// context is cancelled before the task completes, the task is
	// abandoned — abandon is closed, the in-flight execution's simulated
	// device is cancelled, and the worker is reclaimed instead of
	// computing a result nobody will read.
	waiters   int
	abandoned bool
	abandon   chan struct{}
}

// Scheduler runs jobs on a fixed worker pool with caching and dedup.
type Scheduler struct {
	opts    Options
	retry   RetryPolicy
	queue   chan *task
	wg      sync.WaitGroup // workers
	subs    sync.WaitGroup // in-progress queue submissions
	metrics *Metrics
	now     func() time.Time // injectable clock for breaker tests

	mu      sync.Mutex
	closed  bool
	flight  map[string]*task
	cache   *lruCache
	stale   *lruCache            // last known good result per key, for degraded serving
	tenants map[string]*lruCache // per-tenant result caches for DoTask
	quotas  *TenantQuotas

	brkMu    sync.Mutex
	breakers map[string]*breaker
}

// New starts a scheduler and its worker pool. Call Close to stop it.
func New(opts Options) *Scheduler {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.CacheSize == 0 {
		opts.CacheSize = 4096
	}
	if opts.ReclaimGrace <= 0 {
		opts.ReclaimGrace = 2 * time.Second
	}
	if opts.TenantCacheSize == 0 {
		opts.TenantCacheSize = 64
	}
	if opts.MaxTenantCaches <= 0 {
		opts.MaxTenantCaches = 1024
	}
	opts.Breaker = opts.Breaker.withDefaults()
	s := &Scheduler{
		opts:     opts,
		retry:    opts.Retry.withDefaults(),
		queue:    make(chan *task, 64),
		metrics:  newMetrics(),
		now:      time.Now,
		flight:   make(map[string]*task),
		tenants:  make(map[string]*lruCache),
		quotas:   NewTenantQuotas(opts.Quota),
		breakers: make(map[string]*breaker),
	}
	s.quotas.now = func() time.Time { return s.now() }
	if opts.CacheSize > 0 {
		s.cache = newLRU(opts.CacheSize)
	}
	staleCap := opts.CacheSize
	if staleCap <= 0 {
		staleCap = 4096
	}
	s.stale = newLRU(staleCap)
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Close stops accepting jobs and waits for the workers to drain. Pending
// Run calls complete; new ones fail.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.subs.Wait() // let in-progress submissions reach the queue
	close(s.queue)
	s.wg.Wait()
}

// Run executes the job (or serves it from cache / an identical in-flight
// execution) and returns its result. The returned *bench.Result may be
// shared with other callers and with the cache: treat it as immutable.
// ctx cancels this caller's wait, not the execution itself.
func (s *Scheduler) Run(ctx context.Context, j Job) (*bench.Result, error) {
	res, _, err := s.Do(ctx, j)
	return res, err
}

// Do is Run plus how the job was served.
func (s *Scheduler) Do(ctx context.Context, j Job) (*bench.Result, Outcome, error) {
	key := j.Key()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, Miss, fmt.Errorf("sched: scheduler is closed")
	}
	if s.cache != nil {
		if v, sum, ok := s.cache.get(key); ok {
			res := v.(*bench.Result)
			if sum == 0 || sum == resultChecksum(res) {
				s.mu.Unlock()
				s.metrics.cacheHits.Add(1)
				return res, Hit, nil
			}
			// Corrupted entry: evict it and fall through to re-execute.
			s.cache.remove(key)
			s.metrics.cacheCorruptions.Add(1)
		}
	}
	if t, ok := s.flight[key]; ok {
		t.waiters++
		s.mu.Unlock()
		s.metrics.dedupShared.Add(1)
		return s.wait(ctx, t, Shared)
	}
	t := &task{job: j, key: key, done: make(chan struct{}), waiters: 1, abandon: make(chan struct{})}
	s.flight[key] = t
	// Register the submission before releasing the lock so Close cannot
	// close the queue between our closed-check and the send below.
	s.subs.Add(1)
	s.mu.Unlock()

	s.metrics.cacheMisses.Add(1)
	s.metrics.queueDepth.Add(1)
	s.queue <- t
	s.subs.Done()
	return s.wait(ctx, t, Miss)
}

func (s *Scheduler) wait(ctx context.Context, t *task, o Outcome) (*bench.Result, Outcome, error) {
	select {
	case <-t.done:
		return t.res, o, t.err
	case <-ctx.Done():
		s.leave(t)
		return nil, o, ctx.Err()
	}
}

// leave drops one waiter reference from a task whose caller's context was
// cancelled. When the last waiter leaves before the task completes, the
// task is abandoned: it is removed from the flight map (so a later
// identical request starts fresh instead of attaching to a doomed
// execution) and abandon is closed, which cancels the in-flight attempt's
// simulated device. This is how client disconnects and hedge-loser
// cancellation propagate end-to-end into sim cancellation.
func (s *Scheduler) leave(t *task) {
	s.mu.Lock()
	t.waiters--
	select {
	case <-t.done:
		// Completed concurrently with the cancellation; nothing to cancel.
		s.mu.Unlock()
		return
	default:
	}
	last := t.waiters <= 0 && !t.abandoned
	if last {
		t.abandoned = true
		if s.flight[t.key] == t {
			delete(s.flight, t.key)
		}
	}
	s.mu.Unlock()
	if last {
		s.metrics.abandons.Add(1)
		close(t.abandon)
	}
}

// RunAll executes jobs concurrently through the pool and returns results
// in input order. Every job settles: successful results stay addressable
// by index even when other jobs fail, and the error (nil when all jobs
// succeeded) is the errors.Join of every failure, each annotated with its
// job index and key. Results whose job failed are nil.
func (s *Scheduler) RunAll(ctx context.Context, jobs []Job) ([]*bench.Result, error) {
	results := make([]*bench.Result, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j Job) {
			defer wg.Done()
			results[i], errs[i] = s.Run(ctx, j)
		}(i, j)
	}
	wg.Wait()
	var failures []error
	for i, err := range errs {
		if err != nil {
			failures = append(failures, fmt.Errorf("job %d (%s): %w", i, jobs[i].Key(), err))
		}
	}
	return results, errors.Join(failures...)
}

// Stale returns the last known good result for a key, if any — the
// degraded-serving fallback when the live path is unavailable. Stale
// entries carry checksums too, so a corrupted entry reads as absent.
func (s *Scheduler) Stale(key string) (*bench.Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, sum, ok := s.stale.get(key)
	if !ok {
		return nil, false
	}
	res := v.(*bench.Result)
	if sum != 0 && sum != resultChecksum(res) {
		return nil, false
	}
	return res, true
}

// DoTask runs an arbitrary deterministic function on the worker pool with
// the same singleflight deduplication and caching the benchmark path gets,
// namespaced per tenant: two tenants submitting identical work get
// separate cache entries and separate executions, so neither can observe
// (via hit/shared outcomes or timing) what the other submitted. fn runs
// with panic isolation; its return value is cached only on success.
// metric labels the latency histogram bucket the execution lands in.
//
// fn receives a context that is cancelled when every caller waiting on
// this execution has gone away (client disconnect, hedge-loser
// cancellation): fn should honour it so the worker is reclaimed instead
// of computing an abandoned result.
//
// The cached value is shared between callers: treat it as immutable.
func (s *Scheduler) DoTask(ctx context.Context, tenant, metric, key string, fn func(context.Context) (any, error)) (any, Outcome, error) {
	full := "tenant/" + tenant + "|" + key

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, Miss, fmt.Errorf("sched: scheduler is closed")
	}
	if c := s.tenants[tenant]; c != nil {
		if v, sum, ok := c.get(full); ok {
			if sum == 0 || sum == resultChecksum(v) {
				s.mu.Unlock()
				s.metrics.cacheHits.Add(1)
				s.metrics.tenantHit(tenant)
				return v, Hit, nil
			}
			c.remove(full)
			s.metrics.cacheCorruptions.Add(1)
		}
	}
	if t, ok := s.flight[full]; ok {
		t.waiters++
		s.mu.Unlock()
		s.metrics.dedupShared.Add(1)
		return s.waitTask(ctx, t, Shared)
	}
	t := &task{key: full, tenant: tenant, job: Job{Benchmark: metric}, fn: fn,
		done: make(chan struct{}), waiters: 1, abandon: make(chan struct{})}
	s.flight[full] = t
	s.subs.Add(1)
	s.mu.Unlock()

	s.metrics.cacheMisses.Add(1)
	s.metrics.tenantTask(tenant)
	s.metrics.queueDepth.Add(1)
	s.queue <- t
	s.subs.Done()
	return s.waitTask(ctx, t, Miss)
}

func (s *Scheduler) waitTask(ctx context.Context, t *task, o Outcome) (any, Outcome, error) {
	select {
	case <-t.done:
		return t.val, o, t.err
	case <-ctx.Done():
		s.leave(t)
		return nil, o, ctx.Err()
	}
}

// tenantCacheLocked returns (creating on demand) the tenant's cache.
// Caller holds s.mu.
func (s *Scheduler) tenantCacheLocked(tenant string) *lruCache {
	if s.opts.TenantCacheSize < 0 {
		return nil
	}
	c, ok := s.tenants[tenant]
	if !ok {
		if len(s.tenants) >= s.opts.MaxTenantCaches {
			// Bound memory against tenant-name flooding: drop an arbitrary
			// tenant's cache (map iteration order). Correctness is
			// unaffected — caches only save recomputation.
			for name := range s.tenants {
				delete(s.tenants, name)
				break
			}
		}
		c = newLRU(s.opts.TenantCacheSize)
		s.tenants[tenant] = c
	}
	return c
}

// Quotas returns the per-tenant submission quota table (never nil; with
// no Options.Quota configured it always allows).
func (s *Scheduler) Quotas() *TenantQuotas { return s.quotas }

// TenantCacheLen returns the number of results cached for one tenant.
func (s *Scheduler) TenantCacheLen(tenant string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.tenants[tenant]; ok {
		return c.len()
	}
	return 0
}

// Metrics exposes the scheduler's counters.
func (s *Scheduler) Metrics() *Metrics { return s.metrics }

// CacheLen returns the number of cached results.
func (s *Scheduler) CacheLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cache == nil {
		return 0
	}
	return s.cache.len()
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for t := range s.queue {
		s.metrics.queueDepth.Add(-1)
		select {
		case <-t.abandon:
			// Every waiter left while the task sat in the queue: don't
			// spend a worker on it at all.
			t.err = wrapClass(Permanent, fmt.Errorf("sched: job %s: %w", t.key, ErrAbandoned))
			close(t.done)
			continue
		default:
		}
		s.metrics.inFlight.Add(1)
		if t.fn != nil {
			s.runTenantTask(t)
			s.metrics.inFlight.Add(-1)
			continue
		}
		start := time.Now()
		t.res, t.err = s.execute(t.job, t.key, t.abandon)
		s.metrics.observe(t.job.Benchmark, time.Since(start))
		s.metrics.inFlight.Add(-1)
		s.metrics.jobsRun.Add(1)
		if t.err == nil && t.res != nil {
			var wi, li int64
			for _, tr := range t.res.Traces {
				wi += tr.Dyn.Total
				li += tr.LaneInstrs
			}
			s.metrics.warpInstrs.Add(wi)
			s.metrics.laneInstrs.Add(li)
		}

		s.mu.Lock()
		if s.flight[t.key] == t {
			// An abandoned task was already unlinked — and its key may now
			// belong to a fresh task — so only remove our own registration.
			delete(s.flight, t.key)
		}
		// Cache every completed execution, including deterministic FL and
		// ABT outcomes (they are as reproducible as OK ones). Infra
		// errors — bad names, timeouts, panics — are not cached, so a
		// transient failure is retried on the next request.
		if t.err == nil {
			sum := resultChecksum(t.res)
			if s.cache != nil {
				cached := sum
				if s.opts.Injector.CorruptStore(t.key) {
					// An injected corruption flips the stored checksum, not
					// the shared result, so waiters holding the pointer are
					// unaffected; the next cache read detects the mismatch.
					cached ^= corruptFlip
				}
				s.cache.add(t.key, t.res, cached)
			}
			// Remember the last known good result for degraded serving.
			s.stale.add(t.key, t.res, sum)
		}
		s.mu.Unlock()
		close(t.done)
	}
}

// runTenantTask executes one generic DoTask submission with panic
// isolation and caches its value — on success only — under the tenant's
// namespace. Errors are never cached: a failed submission is re-evaluated
// if resubmitted. The fn context is cancelled if every waiter abandons
// the task mid-execution, so a cooperative fn can stop early.
func (s *Scheduler) runTenantTask(t *task) {
	ctx, cancel := context.WithCancel(context.Background())
	abandonDone := make(chan struct{})
	go func() {
		select {
		case <-t.abandon:
			cancel()
		case <-abandonDone:
		}
	}()
	start := time.Now()
	func() {
		defer func() {
			if r := recover(); r != nil {
				s.metrics.panics.Add(1)
				buf := make([]byte, 4096)
				buf = buf[:runtime.Stack(buf, false)]
				t.val, t.err = nil, fmt.Errorf("sched: task %s panicked: %v\n%s", t.key, r, buf)
			}
		}()
		t.val, t.err = t.fn(ctx)
	}()
	close(abandonDone)
	cancel()
	s.metrics.observe(t.job.Benchmark, time.Since(start))
	s.metrics.tasksRun.Add(1)

	s.mu.Lock()
	if s.flight[t.key] == t {
		delete(s.flight, t.key)
	}
	if t.err == nil {
		if c := s.tenantCacheLocked(t.tenant); c != nil {
			c.add(t.key, t.val, resultChecksum(t.val))
		}
	}
	s.mu.Unlock()
	close(t.done)
}

// execute resolves and runs one job through the resilience ladder: per-
// device circuit breaker, then per-attempt execution with panic isolation
// and watchdog timeout, with capped exponential backoff between retries of
// Transient failures. The returned error, when non-nil, is classified
// (errors.Is against ErrTransient / ErrPermanent / ErrWatchdog /
// ErrBreakerOpen).
func (s *Scheduler) execute(j Job, key string, abandon <-chan struct{}) (*bench.Result, error) {
	br := s.breakerFor(j.Device)
	for attempt := 1; ; attempt++ {
		select {
		case <-abandon:
			// Nobody is waiting any more: stop before burning another
			// attempt. Abandonment says nothing about device health, so it
			// never touches the breaker.
			return nil, wrapClass(Permanent, fmt.Errorf("sched: job %s: %w", key, ErrAbandoned))
		default:
		}
		if br != nil {
			if ok, wait := br.allow(); !ok {
				s.metrics.breakerDenials.Add(1)
				return nil, &BreakerOpenError{Device: j.Device, RetryAfter: wait}
			}
		}
		res, err := s.executeAttempt(j, key, abandon)
		if err == nil {
			if br != nil {
				br.success()
			}
			return res, nil
		}
		if errors.Is(err, ErrAbandoned) {
			return nil, err
		}
		class := ClassOf(err)
		if br != nil && class != Permanent {
			// Only device-health failures (transient, watchdog) count
			// toward tripping: a malformed job says nothing about the
			// device.
			if br.failure() {
				s.metrics.breakerTrips.Add(1)
			}
		}
		if class != Transient {
			return nil, wrapClass(class, err)
		}
		if attempt >= s.retry.MaxAttempts {
			// Retry budget exhausted: the job as a whole is permanently
			// failed, with the last transient cause still in the chain.
			return nil, wrapClass(Permanent,
				fmt.Errorf("sched: job %s: %d attempts exhausted: %w", key, attempt, err))
		}
		s.metrics.retries.Add(1)
		time.Sleep(s.retry.backoff(key, attempt))
	}
}

// attemptCtl is the kill switch of one execution attempt. The attempt
// publishes its simulated device as soon as it exists; the watchdog closes
// cancel and cancels the device, and the warp loop aborts at its next
// checkpoint.
type attemptCtl struct {
	once   sync.Once
	cancel chan struct{}
	dev    atomic.Pointer[sim.Device]
}

func newAttemptCtl() *attemptCtl { return &attemptCtl{cancel: make(chan struct{})} }

// kill cancels the attempt: idempotent, safe from any goroutine.
func (c *attemptCtl) kill() {
	c.once.Do(func() { close(c.cancel) })
	if d := c.dev.Load(); d != nil {
		d.Cancel()
	}
}

// publish registers the attempt's device. Re-checking cancel afterwards
// closes the race with a kill that ran between the load in kill and this
// store: the attempt then cancels its own device.
func (c *attemptCtl) publish(d *sim.Device) {
	c.dev.Store(d)
	select {
	case <-c.cancel:
		d.Cancel()
	default:
	}
}

// executeAttempt runs one attempt under the watchdog and the abandonment
// monitor. On timeout — or when every waiter has abandoned the task — it
// cancels the attempt's device and waits up to ReclaimGrace for the
// goroutine to acknowledge: the worker is reclaimed, not leaked.
func (s *Scheduler) executeAttempt(j Job, key string, abandon <-chan struct{}) (*bench.Result, error) {
	if s.opts.JobTimeout <= 0 && abandon == nil {
		return s.executeIsolated(j, key, nil)
	}
	type outcome struct {
		res *bench.Result
		err error
	}
	ctl := newAttemptCtl()
	ch := make(chan outcome, 1)
	go func() {
		res, err := s.executeIsolated(j, key, ctl)
		ch <- outcome{res, err}
	}()
	var timeout <-chan time.Time
	if s.opts.JobTimeout > 0 {
		timer := time.NewTimer(s.opts.JobTimeout)
		defer timer.Stop()
		timeout = timer.C
	}
	reclaim := func() {
		ctl.kill()
		grace := time.NewTimer(s.opts.ReclaimGrace)
		defer grace.Stop()
		select {
		case <-ch:
			// The cancelled attempt acknowledged: its late result is
			// discarded (never cached) and the goroutine is gone.
			s.metrics.watchdogReclaims.Add(1)
		case <-grace.C:
			// The attempt ignored cancellation (e.g. stuck outside the
			// warp loop). Abandon its goroutine and record the leak.
			s.metrics.watchdogLeaks.Add(1)
		}
	}
	select {
	case o := <-ch:
		return o.res, o.err
	case <-timeout:
		s.metrics.timeouts.Add(1)
		reclaim()
		return nil, wrapClass(Watchdog,
			fmt.Errorf("sched: job %s: %w after %v", key, context.DeadlineExceeded, s.opts.JobTimeout))
	case <-abandon:
		reclaim()
		return nil, wrapClass(Permanent, fmt.Errorf("sched: job %s: %w", key, ErrAbandoned))
	}
}

func (s *Scheduler) executeIsolated(j Job, key string, ctl *attemptCtl) (*bench.Result, error) {
	return s.safely(key, func() (*bench.Result, error) {
		if err := j.Validate(); err != nil {
			return nil, err
		}
		// The fault-injection seam: chaos schedules fail, hang or reject
		// the attempt here, where the job meets the device.
		if f := s.opts.Injector.Launch(key); f != nil {
			switch f.Kind {
			case fault.KindHang:
				if ctl != nil {
					// Hang until the watchdog cancels the attempt — the
					// same reclaim path a real runaway kernel exercises.
					<-ctl.cancel
				}
				return nil, fmt.Errorf("sched: job %s: injected hang: %w", key, sim.ErrWatchdog)
			case fault.KindSlowLaunch:
				// A straggler, not a failure: stall (interruptibly, so
				// watchdog and abandonment still reclaim the worker) and
				// then run the attempt for real. This is the seam cluster
				// hedging is proven against.
				timer := time.NewTimer(f.Delay)
				if ctl != nil {
					select {
					case <-timer.C:
					case <-ctl.cancel:
						timer.Stop()
						return nil, fmt.Errorf("sched: job %s: cancelled during injected stall: %w", key, sim.ErrWatchdog)
					}
				} else {
					<-timer.C
				}
			default:
				return nil, f.Err
			}
		}
		spec, _ := bench.SpecByName(j.Benchmark)
		a, _ := arch.Resolve(j.Device)
		d, err := bench.NewDriver(j.Toolchain, a)
		if err != nil {
			return nil, err
		}
		if ctl != nil {
			if dev := bench.SimDevice(d); dev != nil {
				ctl.publish(dev)
			}
		}
		res, err := spec.Run(d, j.Config)
		// A watchdog kill surfaces from the benchmark harness as an ABT
		// result with a nil Go error (the launch-failure convention).
		// Convert it to a typed error so it is never cached as a
		// deterministic outcome and classifies as Watchdog.
		if err == nil && res != nil && res.Err != nil && errors.Is(res.Err, sim.ErrWatchdog) {
			return nil, fmt.Errorf("sched: job %s: %w", key, res.Err)
		}
		return res, err
	})
}

// safely runs fn with panic isolation: a panicking job becomes an error on
// that job alone instead of taking down the worker (and with it the pool).
func (s *Scheduler) safely(key string, fn func() (*bench.Result, error)) (res *bench.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.metrics.panics.Add(1)
			buf := make([]byte, 4096)
			buf = buf[:runtime.Stack(buf, false)]
			res, err = nil, fmt.Errorf("sched: job %s panicked: %v\n%s", key, r, buf)
		}
	}()
	return fn()
}
