package sched

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latencyBuckets are the histogram upper bounds in seconds (the last
// bucket is +Inf). They span sub-millisecond cache-adjacent work up to
// multi-minute full-scale simulations.
var latencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300,
}

// numBuckets = len(latencyBuckets) + 1 for the +Inf overflow bucket.
const numBuckets = 18

// Histogram is a fixed-bucket latency histogram.
type Histogram struct {
	counts [numBuckets]uint64
	sum    float64
	n      uint64
}

func (h *Histogram) observe(seconds float64) {
	i := sort.SearchFloat64s(latencyBuckets, seconds)
	h.counts[i]++
	h.sum += seconds
	h.n++
}

// Observe records one latency in seconds. Histogram is not safe for
// concurrent use on its own: the scheduler guards it with Metrics.mu, and
// external users (internal/cluster) wrap it in their own lock.
func (h *Histogram) Observe(seconds float64) { h.observe(seconds) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n }

// Sum returns total observed seconds.
func (h *Histogram) Sum() float64 { return h.sum }

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// within the owning bucket; NaN when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return math.NaN()
	}
	rank := q * float64(h.n)
	var seen float64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if seen+float64(c) >= rank {
			lo := 0.0
			if i > 0 {
				lo = latencyBuckets[i-1]
			}
			hi := lo * 2
			if i < len(latencyBuckets) {
				hi = latencyBuckets[i]
			}
			frac := (rank - seen) / float64(c)
			return lo + (hi-lo)*frac
		}
		seen += float64(c)
	}
	return latencyBuckets[len(latencyBuckets)-1]
}

// Buckets returns (upper bound, cumulative count) pairs in Prometheus
// style, ending with the +Inf bucket.
func (h *Histogram) Buckets() ([]float64, []uint64) {
	bounds := make([]float64, len(h.counts))
	cum := make([]uint64, len(h.counts))
	var total uint64
	for i := range h.counts {
		total += h.counts[i]
		cum[i] = total
		if i < len(latencyBuckets) {
			bounds[i] = latencyBuckets[i]
		} else {
			bounds[i] = math.Inf(1)
		}
	}
	return bounds, cum
}

// Metrics is the scheduler's observability surface: monotonic counters,
// two gauges, and a per-benchmark latency histogram.
type Metrics struct {
	jobsRun     atomic.Uint64
	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64
	dedupShared atomic.Uint64
	panics      atomic.Uint64
	timeouts    atomic.Uint64
	inFlight    atomic.Int64
	queueDepth  atomic.Int64

	// Resilience counters.
	retries          atomic.Uint64 // transient failures retried
	breakerTrips     atomic.Uint64 // breaker transitions to open
	breakerDenials   atomic.Uint64 // jobs rejected by an open breaker
	watchdogReclaims atomic.Uint64 // cancelled attempts that acknowledged
	watchdogLeaks    atomic.Uint64 // cancelled attempts abandoned after grace
	cacheCorruptions atomic.Uint64 // corrupted cache entries detected+evicted
	abandons         atomic.Uint64 // tasks whose waiters all left mid-flight

	// Throughput counters: simulated work completed, summed from the launch
	// traces of every successfully executed job (cache hits don't count —
	// they re-serve work already accounted for). Warp instructions are the
	// interpreter's unit of progress; lane instructions weight them by the
	// active lanes, so the pair exposes both simulator throughput and the
	// average SIMD efficiency of the workload.
	warpInstrs atomic.Int64
	laneInstrs atomic.Int64

	// Generic tenant tasks (the kernel-submission path).
	tasksRun atomic.Uint64

	mu        sync.Mutex
	perName   map[string]*Histogram
	perTenant map[string]*tenantCounters
}

// tenantCounters is one tenant's DoTask accounting (guarded by Metrics.mu).
type tenantCounters struct {
	tasks     uint64 // executions submitted on this tenant's behalf
	cacheHits uint64 // served from the tenant's private cache
}

func newMetrics() *Metrics {
	return &Metrics{
		perName:   make(map[string]*Histogram),
		perTenant: make(map[string]*tenantCounters),
	}
}

// maxTenantCounters bounds the accounting map against tenant-name
// flooding; past it, new tenants are folded into an "other" row.
const maxTenantCounters = 1024

func (m *Metrics) tenantCountersLocked(tenant string) *tenantCounters {
	c, ok := m.perTenant[tenant]
	if !ok {
		if len(m.perTenant) >= maxTenantCounters {
			tenant = "other"
			if c, ok = m.perTenant[tenant]; ok {
				return c
			}
		}
		c = &tenantCounters{}
		m.perTenant[tenant] = c
	}
	return c
}

func (m *Metrics) tenantTask(tenant string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tenantCountersLocked(tenant).tasks++
}

func (m *Metrics) tenantHit(tenant string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tenantCountersLocked(tenant).cacheHits++
}

func (m *Metrics) observe(benchmark string, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.perName[benchmark]
	if !ok {
		h = &Histogram{}
		m.perName[benchmark] = h
	}
	h.observe(d.Seconds())
}

// BenchmarkLatency is one benchmark's latency summary.
type BenchmarkLatency struct {
	Benchmark string  `json:"benchmark"`
	Count     uint64  `json:"count"`
	MeanSec   float64 `json:"mean_seconds"`
	P50Sec    float64 `json:"p50_seconds"`
	P99Sec    float64 `json:"p99_seconds"`
}

// Snapshot is a point-in-time copy of every metric, JSON-marshalable.
type Snapshot struct {
	JobsRun     uint64 `json:"jobs_run"`
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	DedupShared uint64 `json:"dedup_shared"`
	Panics      uint64 `json:"panics"`
	Timeouts    uint64 `json:"timeouts"`
	InFlight    int64  `json:"in_flight"`
	QueueDepth  int64  `json:"queue_depth"`

	Retries          uint64 `json:"retries"`
	BreakerTrips     uint64 `json:"breaker_trips"`
	BreakerDenials   uint64 `json:"breaker_denials"`
	WatchdogReclaims uint64 `json:"watchdog_reclaims"`
	WatchdogLeaks    uint64 `json:"watchdog_leaks"`
	CacheCorruptions uint64 `json:"cache_corruptions"`
	Abandons         uint64 `json:"abandons"`

	WarpInstrs int64 `json:"warp_instrs"`
	LaneInstrs int64 `json:"lane_instrs"`

	TasksRun uint64           `json:"tasks_run"`
	Tenants  []TenantActivity `json:"tenants,omitempty"`

	Latency []BenchmarkLatency `json:"latency"`
}

// TenantActivity is one tenant's DoTask accounting in a Snapshot.
type TenantActivity struct {
	Tenant    string `json:"tenant"`
	Tasks     uint64 `json:"tasks"`
	CacheHits uint64 `json:"cache_hits"`
}

// Snapshot copies the counters and summarises the per-benchmark
// histograms, sorted by benchmark name for stable output.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		JobsRun:     m.jobsRun.Load(),
		CacheHits:   m.cacheHits.Load(),
		CacheMisses: m.cacheMisses.Load(),
		DedupShared: m.dedupShared.Load(),
		Panics:      m.panics.Load(),
		Timeouts:    m.timeouts.Load(),
		InFlight:    m.inFlight.Load(),
		QueueDepth:  m.queueDepth.Load(),

		Retries:          m.retries.Load(),
		BreakerTrips:     m.breakerTrips.Load(),
		BreakerDenials:   m.breakerDenials.Load(),
		WatchdogReclaims: m.watchdogReclaims.Load(),
		WatchdogLeaks:    m.watchdogLeaks.Load(),
		CacheCorruptions: m.cacheCorruptions.Load(),
		Abandons:         m.abandons.Load(),

		WarpInstrs: m.warpInstrs.Load(),
		LaneInstrs: m.laneInstrs.Load(),

		TasksRun: m.tasksRun.Load(),
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	tenants := make([]string, 0, len(m.perTenant))
	for name := range m.perTenant {
		tenants = append(tenants, name)
	}
	sort.Strings(tenants)
	for _, name := range tenants {
		c := m.perTenant[name]
		s.Tenants = append(s.Tenants, TenantActivity{
			Tenant: name, Tasks: c.tasks, CacheHits: c.cacheHits,
		})
	}
	names := make([]string, 0, len(m.perName))
	for name := range m.perName {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := m.perName[name]
		mean := 0.0
		if h.n > 0 {
			mean = h.sum / float64(h.n)
		}
		s.Latency = append(s.Latency, BenchmarkLatency{
			Benchmark: name,
			Count:     h.n,
			MeanSec:   mean,
			P50Sec:    h.Quantile(0.50),
			P99Sec:    h.Quantile(0.99),
		})
	}
	return s
}

// Histograms returns a copy of the per-benchmark histograms for the
// Prometheus exposition in internal/server.
func (m *Metrics) Histograms() map[string]Histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]Histogram, len(m.perName))
	for name, h := range m.perName {
		out[name] = *h
	}
	return out
}
