package sched

import (
	"gpucmp/internal/arch"
	"gpucmp/internal/bench"
)

// GridJobs returns the full measurement grid — every benchmark on every
// device with every toolchain that supports it, each with its toolchain's
// native configuration at the given scale — in a deterministic order:
// devices in arch.All order, toolchains cuda-then-opencl, benchmarks in
// Table II order. This is the job list behind cmd/benchall (the union of
// the data behind Fig. 3 and Table VI).
func GridJobs(scale int) []Job {
	var jobs []Job
	for _, a := range arch.All() {
		for _, tc := range []string{"cuda", "opencl"} {
			if tc == "cuda" && a.Vendor != "NVIDIA" {
				continue
			}
			for _, spec := range bench.Registry() {
				cfg := bench.NativeConfig(tc)
				cfg.Scale = scale
				jobs = append(jobs, Job{Benchmark: spec.Name, Device: a.Name, Toolchain: tc, Config: cfg})
			}
		}
	}
	return jobs
}
