package sched

import (
	"sort"
	"sync"
	"time"
)

// QuotaConfig is the per-tenant token-bucket policy for untrusted
// submissions. Every tenant gets its own bucket holding up to Burst
// tokens, refilled at Rate tokens per second; one accepted submission
// spends one token. The zero value disables quotas (every request is
// allowed).
type QuotaConfig struct {
	Rate  float64 // tokens per second per tenant (0 = unlimited)
	Burst float64 // bucket capacity (defaults to max(Rate, 1))
	// MaxTenants caps the bucket map so an attacker minting tenant names
	// cannot grow it without bound (default 1024). When full, the bucket
	// with the most remaining tokens — the least-throttled tenant — is
	// evicted, so a throttled tenant cannot launder its own bucket away by
	// flooding fresh names.
	MaxTenants int
}

func (c QuotaConfig) withDefaults() QuotaConfig {
	if c.Burst <= 0 {
		c.Burst = c.Rate
		if c.Burst < 1 {
			c.Burst = 1
		}
	}
	if c.MaxTenants <= 0 {
		c.MaxTenants = 1024
	}
	return c
}

// Enabled reports whether this config throttles at all.
func (c QuotaConfig) Enabled() bool { return c.Rate > 0 }

type quotaBucket struct {
	tokens  float64
	last    time.Time
	allowed uint64
	denied  uint64
}

// TenantQuotas applies a QuotaConfig across tenants. Safe for concurrent
// use.
type TenantQuotas struct {
	cfg QuotaConfig
	now func() time.Time

	mu      sync.Mutex
	buckets map[string]*quotaBucket
}

// NewTenantQuotas builds a quota table. A zero config yields a table that
// always allows.
func NewTenantQuotas(cfg QuotaConfig) *TenantQuotas {
	return &TenantQuotas{
		cfg:     cfg.withDefaults(),
		now:     time.Now,
		buckets: make(map[string]*quotaBucket),
	}
}

// Allow spends one token from the tenant's bucket. When the bucket is
// empty it returns false and how long the tenant must wait for the next
// token (the Retry-After the server sends with its 429).
func (q *TenantQuotas) Allow(tenant string) (bool, time.Duration) {
	if !q.cfg.Enabled() {
		return true, 0
	}
	now := q.now()
	q.mu.Lock()
	defer q.mu.Unlock()
	b := q.buckets[tenant]
	if b == nil {
		b = &quotaBucket{tokens: q.cfg.Burst, last: now}
		if len(q.buckets) >= q.cfg.MaxTenants {
			q.evictFullestLocked()
		}
		q.buckets[tenant] = b
	}
	elapsed := now.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens += elapsed * q.cfg.Rate
		if b.tokens > q.cfg.Burst {
			b.tokens = q.cfg.Burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		b.allowed++
		return true, 0
	}
	b.denied++
	wait := time.Duration((1 - b.tokens) / q.cfg.Rate * float64(time.Second))
	if wait < time.Second {
		wait = time.Second // floor so Retry-After never rounds to 0
	}
	return false, wait
}

// evictFullestLocked drops the bucket with the most remaining tokens.
func (q *TenantQuotas) evictFullestLocked() {
	var victim string
	best := -1.0
	for name, b := range q.buckets {
		if b.tokens > best {
			best = b.tokens
			victim = name
		}
	}
	delete(q.buckets, victim)
}

// TenantQuotaSnapshot is one tenant's accounting for /metrics.
type TenantQuotaSnapshot struct {
	Tenant  string  `json:"tenant"`
	Allowed uint64  `json:"allowed"`
	Denied  uint64  `json:"denied"`
	Tokens  float64 `json:"tokens"` // remaining, at snapshot time
}

// Snapshot returns per-tenant quota accounting sorted by tenant name.
func (q *TenantQuotas) Snapshot() []TenantQuotaSnapshot {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]TenantQuotaSnapshot, 0, len(q.buckets))
	for name, b := range q.buckets {
		out = append(out, TenantQuotaSnapshot{
			Tenant: name, Allowed: b.allowed, Denied: b.denied, Tokens: b.tokens,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}
