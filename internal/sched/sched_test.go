package sched

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"gpucmp/internal/arch"
	"gpucmp/internal/bench"
)

// fastJob is a small, quick experiment cell used throughout the tests.
func fastJob() Job {
	return Job{
		Benchmark: "Reduce",
		Device:    arch.GTX480().Name,
		Toolchain: "opencl",
		Config:    bench.Config{Scale: 16},
	}
}

func TestKeyIsCanonicalAndComplete(t *testing.T) {
	base := fastJob()
	if base.Key() != fastJob().Key() {
		t.Fatal("identical jobs must share a key")
	}
	// Every field change must change the key.
	variants := []Job{
		{Benchmark: "Scan", Device: base.Device, Toolchain: base.Toolchain, Config: base.Config},
		{Benchmark: base.Benchmark, Device: arch.GTX280().Name, Toolchain: base.Toolchain, Config: base.Config},
		{Benchmark: base.Benchmark, Device: base.Device, Toolchain: "cuda", Config: base.Config},
		{Benchmark: base.Benchmark, Device: base.Device, Toolchain: base.Toolchain, Config: bench.Config{Scale: 8}},
		{Benchmark: base.Benchmark, Device: base.Device, Toolchain: base.Toolchain, Config: bench.Config{Scale: 16, UseTexture: true}},
		{Benchmark: base.Benchmark, Device: base.Device, Toolchain: base.Toolchain, Config: bench.Config{Scale: 16, UnrollA: true}},
		{Benchmark: base.Benchmark, Device: base.Device, Toolchain: base.Toolchain, Config: bench.Config{Scale: 16, NaiveTranspose: true}},
		{Benchmark: base.Benchmark, Device: base.Device, Toolchain: base.Toolchain, Config: bench.Config{Scale: 16, Pattern: "b256.c1.u0.f1.r1.t0.k0"}},
		{Benchmark: base.Benchmark, Device: base.Device, Toolchain: base.Toolchain, Config: bench.Config{Scale: 16, Pattern: "b128.c1.u0.f1.r1.t0.k0"}},
	}
	seen := map[string]bool{base.Key(): true}
	for _, v := range variants {
		if seen[v.Key()] {
			t.Errorf("key collision: %+v -> %s", v, v.Key())
		}
		seen[v.Key()] = true
	}
}

func TestValidate(t *testing.T) {
	if err := fastJob().Validate(); err != nil {
		t.Fatalf("valid job rejected: %v", err)
	}
	bad := []Job{
		{Benchmark: "NoSuch", Device: arch.GTX480().Name, Toolchain: "cuda"},
		{Benchmark: "FFT", Device: "NoSuch Device", Toolchain: "cuda"},
		{Benchmark: "FFT", Device: arch.GTX480().Name, Toolchain: "metal"},
		{Benchmark: "FFT", Device: arch.HD5870().Name, Toolchain: "cuda"}, // CUDA on AMD
	}
	for _, j := range bad {
		if err := j.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", j)
		}
	}
}

func TestCacheHitAndMetrics(t *testing.T) {
	s := New(Options{Workers: 2})
	defer s.Close()
	ctx := context.Background()

	r1, o1, err := s.Do(ctx, fastJob())
	if err != nil {
		t.Fatal(err)
	}
	if o1 != Miss {
		t.Fatalf("first Do outcome = %v, want miss", o1)
	}
	r2, o2, err := s.Do(ctx, fastJob())
	if err != nil {
		t.Fatal(err)
	}
	if o2 != Hit {
		t.Fatalf("second Do outcome = %v, want hit", o2)
	}
	if r1 != r2 {
		t.Error("cache hit should return the identical result pointer")
	}
	snap := s.Metrics().Snapshot()
	if snap.JobsRun != 1 || snap.CacheHits != 1 || snap.CacheMisses != 1 {
		t.Errorf("metrics = jobs %d hits %d misses %d, want 1/1/1",
			snap.JobsRun, snap.CacheHits, snap.CacheMisses)
	}
	if s.CacheLen() != 1 {
		t.Errorf("CacheLen = %d, want 1", s.CacheLen())
	}
	if len(snap.Latency) != 1 || snap.Latency[0].Benchmark != "Reduce" || snap.Latency[0].Count != 1 {
		t.Errorf("latency summary = %+v, want one Reduce entry", snap.Latency)
	}
}

func TestSingleflightDedup(t *testing.T) {
	s := New(Options{Workers: 4})
	defer s.Close()
	ctx := context.Background()

	const callers = 16
	var wg sync.WaitGroup
	results := make([]*bench.Result, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := s.Run(ctx, fastJob())
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}(i)
	}
	wg.Wait()
	snap := s.Metrics().Snapshot()
	// All callers hit the same key: exactly one execution, the rest either
	// shared the in-flight task or hit the cache after it completed.
	if snap.JobsRun != 1 {
		t.Errorf("JobsRun = %d, want 1 (singleflight)", snap.JobsRun)
	}
	if got := snap.CacheHits + snap.DedupShared; got != callers-1 {
		t.Errorf("hits+shared = %d, want %d", got, callers-1)
	}
	for _, r := range results {
		if r == nil || r.Value != results[0].Value {
			t.Fatal("deduplicated callers must all see the same result")
		}
	}
}

func TestDisabledCacheReruns(t *testing.T) {
	s := New(Options{Workers: 1, CacheSize: -1})
	defer s.Close()
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := s.Run(ctx, fastJob()); err != nil {
			t.Fatal(err)
		}
	}
	if snap := s.Metrics().Snapshot(); snap.JobsRun != 2 {
		t.Errorf("JobsRun = %d, want 2 with caching disabled", snap.JobsRun)
	}
}

func TestLRUEviction(t *testing.T) {
	c := newLRU(2)
	a, b, d := &bench.Result{Benchmark: "a"}, &bench.Result{Benchmark: "b"}, &bench.Result{Benchmark: "d"}
	c.add("a", a, 0)
	c.add("b", b, 0)
	c.get("a") // a is now most recent
	c.add("d", d, 0)
	if _, _, ok := c.get("b"); ok {
		t.Error("b should have been evicted (least recently used)")
	}
	if _, _, ok := c.get("a"); !ok {
		t.Error("a should have survived")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
}

func TestBadJobReturnsErrorAndIsNotCached(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Close()
	ctx := context.Background()
	j := Job{Benchmark: "NoSuch", Device: arch.GTX480().Name, Toolchain: "cuda"}
	if _, err := s.Run(ctx, j); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
	if s.CacheLen() != 0 {
		t.Error("failed executions must not be cached")
	}
	// An unknown device error must list the known devices (the same
	// helper the CLI -device flags use).
	j2 := Job{Benchmark: "FFT", Device: "GTX9000", Toolchain: "cuda"}
	_, err := s.Run(ctx, j2)
	if err == nil {
		t.Fatal("expected error for unknown device")
	}
	if want := arch.GTX480().Name; !strings.Contains(err.Error(), want) {
		t.Errorf("device error %q should enumerate known devices (missing %q)", err, want)
	}
}

func TestPanicIsolation(t *testing.T) {
	s := New(Options{Workers: 2})
	defer s.Close()
	ctx := context.Background()

	// There is no registry hook to inject a panicking benchmark, so drive
	// the worker's isolation wrapper directly.
	_, err := s.safely("test-job", func() (*bench.Result, error) { panic("kernel bug") })
	if err == nil || !strings.Contains(err.Error(), "kernel bug") {
		t.Fatalf("panic not converted to error: %v", err)
	}
	// The pool must still be serviceable afterwards.
	if _, err := s.Run(ctx, fastJob()); err != nil {
		t.Fatalf("scheduler unusable after panic: %v", err)
	}
	if s.Metrics().Snapshot().Panics != 1 {
		t.Error("panic counter not incremented")
	}
}

func TestCloseIsIdempotentAndRejectsNewJobs(t *testing.T) {
	s := New(Options{Workers: 1})
	s.Close()
	s.Close()
	if _, err := s.Run(context.Background(), fastJob()); err == nil {
		t.Fatal("Run after Close must fail")
	}
}

func TestContextCancelledWaiter(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Run(ctx, Job{Benchmark: "FFT", Device: arch.GTX480().Name, Toolchain: "cuda", Config: bench.Config{Scale: 16}}); err != context.Canceled {
		t.Fatalf("cancelled Run = %v, want context.Canceled", err)
	}
}

// TestParallelReproducesSequential is the determinism contract behind
// `cmd/benchall -parallel`: a grid executed on many workers must reproduce
// the sequentially-executed values bit for bit, because the simulator is
// deterministic and jobs share nothing mutable.
func TestParallelReproducesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("grid comparison is slow")
	}
	// A cross-section of the grid: every device/toolchain combination over
	// benchmarks with distinct execution shapes (tree reduction, shared
	// tiles, multi-launch scan, warp-width-sensitive radix sort).
	var jobs []Job
	for _, a := range arch.All() {
		for _, tc := range []string{"cuda", "opencl"} {
			if tc == "cuda" && a.Vendor != "NVIDIA" {
				continue
			}
			for _, name := range []string{"Reduce", "TranP", "Scan", "RdxS"} {
				cfg := bench.NativeConfig(tc)
				cfg.Scale = 16
				jobs = append(jobs, Job{Benchmark: name, Device: a.Name, Toolchain: tc, Config: cfg})
			}
		}
	}

	// Sequential reference, bypassing the scheduler entirely.
	seq := make([]*bench.Result, len(jobs))
	for i, j := range jobs {
		a, err := arch.Resolve(j.Device)
		if err != nil {
			t.Fatal(err)
		}
		spec, err := bench.SpecByName(j.Benchmark)
		if err != nil {
			t.Fatal(err)
		}
		d, err := bench.NewDriver(j.Toolchain, a)
		if err != nil {
			t.Fatal(err)
		}
		r, err := spec.Run(d, j.Config)
		if err != nil {
			t.Fatal(err)
		}
		seq[i] = r
	}

	s := New(Options{Workers: 8})
	defer s.Close()
	par, err := s.RunAll(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}

	for i := range jobs {
		a, b := seq[i], par[i]
		label := fmt.Sprintf("%s/%s/%s", jobs[i].Benchmark, jobs[i].Device, jobs[i].Toolchain)
		if (a.Err == nil) != (b.Err == nil) {
			t.Errorf("%s: abort mismatch: seq=%v par=%v", label, a.Err, b.Err)
			continue
		}
		if a.Value != b.Value {
			t.Errorf("%s: Value %v != %v (must be bit-identical)", label, a.Value, b.Value)
		}
		if a.KernelSeconds != b.KernelSeconds {
			t.Errorf("%s: KernelSeconds %v != %v", label, a.KernelSeconds, b.KernelSeconds)
		}
		if a.Correct != b.Correct {
			t.Errorf("%s: Correct %v != %v", label, a.Correct, b.Correct)
		}
	}
}

func TestJobTimeout(t *testing.T) {
	s := New(Options{Workers: 1, JobTimeout: time.Nanosecond})
	defer s.Close()
	_, err := s.Run(context.Background(), fastJob())
	if err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if s.Metrics().Snapshot().Timeouts != 1 {
		t.Error("timeout counter not incremented")
	}
	if s.CacheLen() != 0 {
		t.Error("timed-out jobs must not be cached")
	}
}

func TestGridJobsDeterministicOrder(t *testing.T) {
	a := GridJobs(2)
	b := GridJobs(2)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("grid sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("grid order not deterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	// CUDA cells exist only on NVIDIA devices.
	for _, j := range a {
		if j.Toolchain == "cuda" {
			d, err := arch.Resolve(j.Device)
			if err != nil || d.Vendor != "NVIDIA" {
				t.Fatalf("CUDA job on non-NVIDIA device: %+v", j)
			}
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	for i := 0; i < 100; i++ {
		h.observe(0.003) // lands in the (0.0025, 0.005] bucket
	}
	p50 := h.Quantile(0.50)
	if p50 < 0.0025 || p50 > 0.005 {
		t.Errorf("p50 = %v, want within the owning bucket", p50)
	}
	if h.Count() != 100 {
		t.Errorf("Count = %d", h.Count())
	}
	bounds, cum := h.Buckets()
	if len(bounds) != numBuckets || cum[len(cum)-1] != 100 {
		t.Errorf("Buckets: %d bounds, final cum %d", len(bounds), cum[len(cum)-1])
	}
}
