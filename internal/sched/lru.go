package sched

import (
	"container/list"
	"encoding/json"
	"hash/fnv"
)

// lruCache is a plain LRU over completed results, guarded by the
// scheduler's mutex (it has no locking of its own). Values are shared
// pointers (*bench.Result for benchmark jobs, the task's return value for
// generic DoTask work): callers must treat a cached value as immutable.
// Each entry carries a checksum of its result so readers can detect a
// corrupted entry and evict it instead of serving it.
type lruCache struct {
	cap   int
	order *list.List // front = most recently used; values are *lruEntry
	byKey map[string]*list.Element
}

type lruEntry struct {
	key string
	res any
	sum uint64 // resultChecksum at store time; 0 = unverifiable
}

func newLRU(capacity int) *lruCache {
	return &lruCache{cap: capacity, order: list.New(), byKey: make(map[string]*list.Element)}
}

func (c *lruCache) get(key string) (any, uint64, bool) {
	el, ok := c.byKey[key]
	if !ok {
		return nil, 0, false
	}
	c.order.MoveToFront(el)
	e := el.Value.(*lruEntry)
	return e.res, e.sum, true
}

func (c *lruCache) add(key string, res any, sum uint64) {
	if el, ok := c.byKey[key]; ok {
		e := el.Value.(*lruEntry)
		e.res, e.sum = res, sum
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&lruEntry{key: key, res: res, sum: sum})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.byKey, last.Value.(*lruEntry).key)
	}
}

func (c *lruCache) remove(key string) {
	if el, ok := c.byKey[key]; ok {
		c.order.Remove(el)
		delete(c.byKey, key)
	}
}

func (c *lruCache) len() int { return c.order.Len() }

// corruptFlip is XORed into a stored checksum by the fault injector's
// corrupt-cache fault, guaranteeing a mismatch on the next read.
const corruptFlip = 0xdeadbeefdeadbeef

// resultChecksum fingerprints a result via its canonical JSON encoding
// (results are served as JSON, so the encoding covers every field that
// reaches a client). Returns 0 — "unverifiable" — if encoding fails.
func resultChecksum(res any) uint64 {
	b, err := json.Marshal(res)
	if err != nil {
		return 0
	}
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}
