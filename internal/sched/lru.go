package sched

import (
	"container/list"

	"gpucmp/internal/bench"
)

// lruCache is a plain LRU over completed results, guarded by the
// scheduler's mutex (it has no locking of its own). Values are shared
// pointers: callers must treat a cached *bench.Result as immutable.
type lruCache struct {
	cap   int
	order *list.List // front = most recently used; values are *lruEntry
	byKey map[string]*list.Element
}

type lruEntry struct {
	key string
	res *bench.Result
}

func newLRU(capacity int) *lruCache {
	return &lruCache{cap: capacity, order: list.New(), byKey: make(map[string]*list.Element)}
}

func (c *lruCache) get(key string) (*bench.Result, bool) {
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).res, true
}

func (c *lruCache) add(key string, res *bench.Result) {
	if el, ok := c.byKey[key]; ok {
		el.Value.(*lruEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&lruEntry{key: key, res: res})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.byKey, last.Value.(*lruEntry).key)
	}
}

func (c *lruCache) len() int { return c.order.Len() }
