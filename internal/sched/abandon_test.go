package sched

import (
	"context"
	"errors"
	"testing"
	"time"

	"gpucmp/internal/fault"
)

// TestAbandonedJobReclaimsWorker: when every waiter's context is
// cancelled mid-execution, the scheduler must (a) return the context
// error promptly, (b) cancel the in-flight execution so the worker is
// reclaimed instead of riding out the stall, and (c) count the
// abandonment without tripping the breaker.
func TestAbandonedJobReclaimsWorker(t *testing.T) {
	// Every launch stalls 10s: without abandonment cancellation this test
	// cannot finish in time.
	inj := fault.New(1, fault.Schedule{SlowRate: 1.0, SlowDelay: 10 * time.Second})
	s := New(Options{Workers: 1, Injector: inj})
	defer s.Close()

	job := Job{Benchmark: "Reduce", Device: "GeForce GTX480", Toolchain: "opencl"}
	job.Config.Scale = 64

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, _, err := s.Do(ctx, job)
		errCh <- err
	}()
	time.Sleep(100 * time.Millisecond) // let the job enter its injected stall
	cancel()

	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("abandoned Do returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Do did not return after all waiters left")
	}

	// The execution itself is cancelled asynchronously; the worker must
	// come back well before the 10s stall would end.
	deadline := time.Now().Add(3 * time.Second)
	for {
		snap := s.Metrics().Snapshot()
		if snap.Abandons >= 1 && snap.WatchdogReclaims >= 1 {
			if snap.WatchdogLeaks != 0 {
				t.Fatalf("abandonment leaked %d workers", snap.WatchdogLeaks)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker not reclaimed: abandons=%d reclaims=%d leaks=%d",
				snap.Abandons, snap.WatchdogReclaims, snap.WatchdogLeaks)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Abandonment says nothing about device health: the breaker must not
	// have accumulated failures.
	for _, b := range s.Breakers() {
		if b.State != "closed" || b.ConsecutiveFails != 0 {
			t.Errorf("breaker %s = %s with %d consecutive fails after abandonment, want closed/0",
				b.Device, b.State, b.ConsecutiveFails)
		}
	}
}

// TestAbandonBeforeExecutionFastDrops: a job whose every waiter leaves
// while it is still queued must be dropped by the worker without
// executing (no stall, no breaker effect).
func TestAbandonBeforeExecutionFastDrops(t *testing.T) {
	inj := fault.New(1, fault.Schedule{SlowRate: 1.0, SlowDelay: 10 * time.Second})
	s := New(Options{Workers: 1, Injector: inj})
	defer s.Close()

	// Occupy the only worker (abandoned at test end so Close need not
	// ride out the 10s stall).
	blocker := Job{Benchmark: "Scan", Device: "GeForce GTX480", Toolchain: "opencl"}
	blocker.Config.Scale = 64
	bctx, bcancel := context.WithCancel(context.Background())
	defer bcancel()
	go s.Do(bctx, blocker) //nolint:errcheck // released via abandonment

	time.Sleep(50 * time.Millisecond)

	// Queue a second job and abandon it before a worker picks it up.
	queued := Job{Benchmark: "Sobel", Device: "GeForce GTX480", Toolchain: "opencl"}
	queued.Config.Scale = 64
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, _, err := s.Do(ctx, queued)
		errCh <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()

	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("queued abandoned Do returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued Do did not return after cancellation")
	}
	if snap := s.Metrics().Snapshot(); snap.Abandons < 1 {
		t.Errorf("abandons = %d, want >= 1", snap.Abandons)
	}
}

// TestAbandonedResultNotCached: a fresh waiter arriving after an
// abandonment must trigger a fresh execution, not observe a cached
// abandoned error.
func TestAbandonedResultNotCached(t *testing.T) {
	s := New(Options{Workers: 2})
	defer s.Close()

	job := Job{Benchmark: "Reduce", Device: "GeForce GTX480", Toolchain: "opencl"}
	job.Config.Scale = 64

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already dead: the wait abandons immediately
	if _, _, err := s.Do(ctx, job); !errors.Is(err, context.Canceled) {
		t.Fatalf("Do with dead context = %v, want context.Canceled", err)
	}

	res, _, err := s.Do(context.Background(), job)
	if err != nil {
		t.Fatalf("fresh Do after abandonment failed: %v", err)
	}
	if res == nil {
		t.Fatal("fresh Do returned nil result")
	}
}
