package sched

import (
	"context"
	"errors"
	"fmt"
	"time"

	"gpucmp/internal/fault"
	"gpucmp/internal/kir"
	"gpucmp/internal/sim"
)

// The scheduler's structured error taxonomy. Every job error the
// scheduler returns is classified into exactly one class, and the class is
// errors.Is-able against these sentinels:
//
//	errors.Is(err, sched.ErrTransient) — the failure was momentary; an
//	    identical retry may succeed (the scheduler already retried it up
//	    to the policy's budget before returning).
//	errors.Is(err, sched.ErrPermanent) — retrying cannot help: invalid
//	    job, deterministic failure, panic, or retry budget exhausted.
//	errors.Is(err, sched.ErrWatchdog) — the job was killed by the
//	    watchdog: it exceeded JobTimeout or the device's step budget.
//
// The original cause stays in the chain, so errors.Is against the
// underlying sentinel (sim.ErrWatchdog, fault.ErrTransientLaunch,
// context.DeadlineExceeded, ...) keeps working too.
var (
	ErrTransient = errors.New("sched: transient failure")
	ErrPermanent = errors.New("sched: permanent failure")
	ErrWatchdog  = errors.New("sched: watchdog killed the job")
)

// Class is the retry-relevant classification of a job error.
type Class int

const (
	// Transient failures may succeed on retry.
	Transient Class = iota
	// Permanent failures are deterministic; retrying is pointless.
	Permanent
	// Watchdog failures mean the job was killed for running too long.
	Watchdog
)

// String names the class for logs and metrics.
func (c Class) String() string {
	switch c {
	case Transient:
		return "transient"
	case Watchdog:
		return "watchdog"
	default:
		return "permanent"
	}
}

// sentinel returns the errors.Is sentinel for the class.
func (c Class) sentinel() error {
	switch c {
	case Transient:
		return ErrTransient
	case Watchdog:
		return ErrWatchdog
	default:
		return ErrPermanent
	}
}

// classified wraps a job error with its class. It matches the class
// sentinel via Is and keeps the cause reachable via Unwrap.
type classified struct {
	class Class
	err   error
}

func (e *classified) Error() string { return e.err.Error() }
func (e *classified) Unwrap() error { return e.err }
func (e *classified) Is(target error) bool {
	return target == e.class.sentinel()
}

// wrapClass attaches a class to err (idempotent on nil).
func wrapClass(c Class, err error) error {
	if err == nil {
		return nil
	}
	return &classified{class: c, err: err}
}

// ClassOf returns the class of a job error. Errors the scheduler already
// classified keep their class; raw errors are classified by their cause:
// watchdog kills and deadline expiry are Watchdog, injected transient
// launch failures are Transient, everything else — validation errors,
// panics, deterministic launch rejections — is Permanent. Unknown errors
// default to Permanent: retrying an unknown failure hides bugs.
func ClassOf(err error) Class {
	var c *classified
	if errors.As(err, &c) {
		return c.class
	}
	switch {
	case errors.Is(err, sim.ErrWatchdog), errors.Is(err, kir.ErrWatchdog),
		errors.Is(err, context.DeadlineExceeded):
		return Watchdog
	case errors.Is(err, fault.ErrTransientLaunch), errors.Is(err, ErrBreakerOpen):
		return Transient
	default:
		return Permanent
	}
}

// BreakerOpenError is returned without running the job when the target
// device's circuit breaker is open. It classifies as Transient (the device
// may recover) and carries the remaining cool-down so servers can emit
// Retry-After.
type BreakerOpenError struct {
	Device     string
	RetryAfter time.Duration
}

func (e *BreakerOpenError) Error() string {
	return fmt.Sprintf("sched: circuit breaker open for device %s (retry after %v)", e.Device, e.RetryAfter)
}

// Is matches both ErrBreakerOpen and the Transient class sentinel.
func (e *BreakerOpenError) Is(target error) bool {
	return target == ErrBreakerOpen || target == ErrTransient
}

// ErrBreakerOpen is the errors.Is sentinel for breaker denials.
var ErrBreakerOpen = errors.New("sched: circuit breaker open")

// ErrAbandoned is the errors.Is sentinel for executions cancelled because
// every waiter went away (client disconnect, hedge-loser cancellation)
// before the job completed. Abandoned results are never cached and never
// count toward circuit breakers — they say nothing about device health.
var ErrAbandoned = errors.New("sched: abandoned by all waiters")
