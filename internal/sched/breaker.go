package sched

import (
	"hash/fnv"
	"sort"
	"sync"
	"time"
)

// RetryPolicy bounds the scheduler's retries of Transient failures.
// Watchdog and Permanent failures are never retried: a watchdog kill costs
// a full JobTimeout per attempt and deterministic failures cannot heal.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts including the first
	// (<= 0 selects the default of 4; 1 disables retry).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 5ms).
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff (default 250ms).
	MaxDelay time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 5 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 250 * time.Millisecond
	}
	return p
}

// backoff returns the delay before retry number attempt (1-based): capped
// exponential growth with deterministic jitter in [0.5, 1.0) x the slot,
// derived from (key, attempt) so two runs of the same job stream sleep
// identically — chaos runs stay reproducible.
func (p RetryPolicy) backoff(key string, attempt int) time.Duration {
	slot := p.BaseDelay << uint(attempt-1)
	if slot > p.MaxDelay || slot <= 0 {
		slot = p.MaxDelay
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	x := h.Sum64() ^ (uint64(attempt) * 0x9e3779b97f4a7c15)
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	frac := 0.5 + 0.5*float64(x>>11)/(1<<53)
	return time.Duration(float64(slot) * frac)
}

// BreakerConfig configures the per-device circuit breakers.
type BreakerConfig struct {
	// FailureThreshold is how many consecutive Transient/Watchdog
	// failures open a device's breaker (<= 0 selects the default of 5).
	FailureThreshold int
	// CoolDown is how long an open breaker rejects jobs before letting
	// one probe through half-open (default 30s).
	CoolDown time.Duration
	// Disabled turns the breakers off entirely.
	Disabled bool
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.CoolDown <= 0 {
		c.CoolDown = 30 * time.Second
	}
	return c
}

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed: the device is healthy; jobs flow normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the device failed repeatedly; jobs are rejected until
	// the cool-down elapses.
	BreakerOpen
	// BreakerHalfOpen: the cool-down elapsed; one probe job is in flight
	// to decide between closing and re-opening.
	BreakerHalfOpen
)

// String names the state for /healthz and logs.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is one device's circuit breaker: closed → (threshold consecutive
// failures) → open → (cool-down) → half-open → one probe decides.
type breaker struct {
	cfg BreakerConfig
	now func() time.Time

	mu       sync.Mutex
	state    BreakerState
	fails    int       // consecutive breaker-relevant failures while closed
	openedAt time.Time // when the breaker last opened
	probing  bool      // a half-open probe is in flight
	trips    uint64    // times the breaker opened
}

// allow reports whether a job may run now. When it returns false, the
// second result is how long until the next probe is allowed.
func (b *breaker) allow() (bool, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true, 0
	case BreakerOpen:
		if wait := b.cfg.CoolDown - b.now().Sub(b.openedAt); wait > 0 {
			return false, wait
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true, 0
	default: // BreakerHalfOpen
		if b.probing {
			return false, b.cfg.CoolDown
		}
		b.probing = true
		return true, 0
	}
}

// success records a completed job: it closes a half-open breaker and
// resets the failure streak.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.fails = 0
	b.probing = false
}

// failure records a Transient/Watchdog failure and reports whether this
// call tripped the breaker open.
func (b *breaker) failure() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		// The probe failed: straight back to open for another cool-down.
		b.state = BreakerOpen
		b.openedAt = b.now()
		b.probing = false
		b.trips++
		return true
	case BreakerOpen:
		return false
	default:
		b.fails++
		if b.fails >= b.cfg.FailureThreshold {
			b.state = BreakerOpen
			b.openedAt = b.now()
			b.trips++
			return true
		}
		return false
	}
}

// BreakerSnapshot is one device's breaker state for /healthz.
type BreakerSnapshot struct {
	Device           string  `json:"device"`
	State            string  `json:"state"`
	ConsecutiveFails int     `json:"consecutive_fails"`
	Trips            uint64  `json:"trips"`
	RetryAfterSec    float64 `json:"retry_after_seconds,omitempty"`
}

func (b *breaker) snapshot(device string) BreakerSnapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := BreakerSnapshot{
		Device:           device,
		State:            b.state.String(),
		ConsecutiveFails: b.fails,
		Trips:            b.trips,
	}
	if b.state == BreakerOpen {
		if wait := b.cfg.CoolDown - b.now().Sub(b.openedAt); wait > 0 {
			s.RetryAfterSec = wait.Seconds()
		}
	}
	return s
}

// Breaker is the exported face of the per-device circuit breaker, for
// reuse outside the scheduler (internal/cluster runs one per shard with
// the same closed → open → half-open contract and the same error
// taxonomy). The zero value is not usable; construct with NewBreaker.
type Breaker struct {
	b *breaker
}

// NewBreaker builds a standalone circuit breaker with the given config
// (zero fields take the scheduler defaults).
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{b: &breaker{cfg: cfg.withDefaults(), now: time.Now}}
}

// Allow reports whether a request may proceed; when false, the duration
// is how long until the next half-open probe.
func (x *Breaker) Allow() (bool, time.Duration) { return x.b.allow() }

// Success records a completed request (closes a half-open breaker).
func (x *Breaker) Success() { x.b.success() }

// Failure records a breaker-relevant failure; true means this call
// tripped the breaker open.
func (x *Breaker) Failure() bool { return x.b.failure() }

// State returns the breaker's current position.
func (x *Breaker) State() BreakerState {
	x.b.mu.Lock()
	defer x.b.mu.Unlock()
	return x.b.state
}

// Snapshot reports the breaker's state for health/metrics endpoints,
// labelled with the given name.
func (x *Breaker) Snapshot(name string) BreakerSnapshot { return x.b.snapshot(name) }

// breakerFor returns (creating if needed) the breaker for a device, or nil
// when breakers are disabled.
func (s *Scheduler) breakerFor(device string) *breaker {
	if s.opts.Breaker.Disabled {
		return nil
	}
	s.brkMu.Lock()
	defer s.brkMu.Unlock()
	b, ok := s.breakers[device]
	if !ok {
		b = &breaker{cfg: s.opts.Breaker, now: s.now}
		s.breakers[device] = b
	}
	return b
}

// Breakers snapshots every device breaker, sorted by device name, for
// /healthz.
func (s *Scheduler) Breakers() []BreakerSnapshot {
	s.brkMu.Lock()
	names := make([]string, 0, len(s.breakers))
	for name := range s.breakers {
		names = append(names, name)
	}
	sort.Strings(names)
	brs := make([]*breaker, len(names))
	for i, name := range names {
		brs[i] = s.breakers[name]
	}
	s.brkMu.Unlock()
	out := make([]BreakerSnapshot, len(names))
	for i, b := range brs {
		out[i] = b.snapshot(names[i])
	}
	return out
}

// BreakerState returns the state of one device's breaker (BreakerClosed if
// the device has never failed or breakers are disabled).
func (s *Scheduler) BreakerState(device string) BreakerState {
	s.brkMu.Lock()
	b, ok := s.breakers[device]
	s.brkMu.Unlock()
	if !ok {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
