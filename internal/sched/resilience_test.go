package sched

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"gpucmp/internal/arch"
	"gpucmp/internal/bench"
	"gpucmp/internal/fault"
)

// scaleJob is fastJob at a chosen scale, so tests can mint distinct keys.
func scaleJob(scale int) Job {
	j := fastJob()
	j.Config.Scale = scale
	return j
}

// fastRetry is a retry policy with negligible backoff for tests.
var fastRetry = RetryPolicy{MaxAttempts: 4, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond}

func TestRetryTransientEventuallySucceeds(t *testing.T) {
	inj := fault.New(1, fault.Schedule{TransientRate: 1.0, MaxPerKey: 2})
	s := New(Options{Workers: 1, Retry: fastRetry, Injector: inj})
	defer s.Close()

	res, err := s.Run(context.Background(), fastJob())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res == nil || res.Err != nil {
		t.Fatalf("result = %+v, want a clean success after retries", res)
	}
	snap := s.Metrics().Snapshot()
	if snap.Retries != 2 {
		t.Errorf("Retries = %d, want 2 (MaxPerKey faults then success)", snap.Retries)
	}
	// The faulty run's result must be bit-identical to a fault-free run.
	clean := New(Options{Workers: 1})
	defer clean.Close()
	want, err := clean.Run(context.Background(), fastJob())
	if err != nil {
		t.Fatal(err)
	}
	if resultChecksum(res) != resultChecksum(want) {
		t.Error("post-retry result differs from the fault-free result")
	}
}

func TestRetryExhaustionBecomesPermanent(t *testing.T) {
	inj := fault.New(1, fault.Schedule{TransientRate: 1.0})
	s := New(Options{Workers: 1, Retry: fastRetry, Injector: inj, Breaker: BreakerConfig{Disabled: true}})
	defer s.Close()

	_, err := s.Run(context.Background(), fastJob())
	if !errors.Is(err, ErrPermanent) {
		t.Fatalf("err = %v, want ErrPermanent after exhausting retries", err)
	}
	if !errors.Is(err, fault.ErrTransientLaunch) {
		t.Errorf("err = %v, want the transient cause to stay in the chain", err)
	}
	if errors.Is(err, ErrTransient) {
		t.Error("an exhausted job must not classify as Transient")
	}
	if snap := s.Metrics().Snapshot(); snap.Retries != uint64(fastRetry.MaxAttempts-1) {
		t.Errorf("Retries = %d, want %d", snap.Retries, fastRetry.MaxAttempts-1)
	}
}

func TestOutOfResourcesIsPermanentAndNotRetried(t *testing.T) {
	inj := fault.New(1, fault.Schedule{OORRate: 1.0})
	s := New(Options{Workers: 1, Retry: fastRetry, Injector: inj})
	defer s.Close()

	_, err := s.Run(context.Background(), fastJob())
	if !errors.Is(err, ErrPermanent) || !errors.Is(err, fault.ErrOutOfResources) {
		t.Fatalf("err = %v, want Permanent wrapping fault.ErrOutOfResources", err)
	}
	if snap := s.Metrics().Snapshot(); snap.Retries != 0 {
		t.Errorf("Retries = %d, want 0 for a permanent failure", snap.Retries)
	}
	if s.CacheLen() != 0 {
		t.Error("failed executions must not be cached")
	}
}

func TestInjectedHangIsReclaimedByWatchdog(t *testing.T) {
	inj := fault.New(1, fault.Schedule{HangRate: 1.0})
	s := New(Options{Workers: 1, JobTimeout: 20 * time.Millisecond, Injector: inj})
	defer s.Close()

	start := time.Now()
	_, err := s.Run(context.Background(), fastJob())
	elapsed := time.Since(start)
	if !errors.Is(err, ErrWatchdog) {
		t.Fatalf("err = %v, want ErrWatchdog", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded in the chain", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("hang reclaim took %v, want ~JobTimeout", elapsed)
	}
	snap := s.Metrics().Snapshot()
	if snap.Timeouts != 1 || snap.WatchdogReclaims != 1 || snap.WatchdogLeaks != 0 {
		t.Errorf("timeouts/reclaims/leaks = %d/%d/%d, want 1/1/0",
			snap.Timeouts, snap.WatchdogReclaims, snap.WatchdogLeaks)
	}
	if s.CacheLen() != 0 {
		t.Error("watchdog-killed jobs must not be cached")
	}
}

func TestBreakerOpensAfterThresholdAndRecovers(t *testing.T) {
	inj := fault.New(1, fault.Schedule{TransientRate: 1.0, MaxPerKey: 1})
	s := New(Options{
		Workers:  1,
		Retry:    RetryPolicy{MaxAttempts: 1}, // no retry: each job fails once
		Breaker:  BreakerConfig{FailureThreshold: 2, CoolDown: time.Hour},
		Injector: inj,
	})
	defer s.Close()
	clock := time.Now()
	s.now = func() time.Time { return clock }
	ctx := context.Background()
	dev := fastJob().Device

	// Two distinct jobs fail once each (MaxPerKey=1, no retry budget):
	// the second failure trips the breaker.
	for i := 0; i < 2; i++ {
		if _, err := s.Run(ctx, scaleJob(16+i)); !errors.Is(err, ErrPermanent) {
			t.Fatalf("job %d: err = %v, want Permanent (attempts exhausted)", i, err)
		}
	}
	if st := s.BreakerState(dev); st != BreakerOpen {
		t.Fatalf("breaker state = %v, want open after %d failures", st, 2)
	}

	// While open, jobs are denied without running.
	_, err := s.Run(ctx, scaleJob(32))
	var boe *BreakerOpenError
	if !errors.As(err, &boe) || !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want BreakerOpenError", err)
	}
	if boe.Device != dev || boe.RetryAfter <= 0 {
		t.Errorf("BreakerOpenError = %+v, want device %s and positive RetryAfter", boe, dev)
	}
	if errors.Is(err, ErrTransient) == false {
		t.Error("breaker denial should classify as Transient (the device may recover)")
	}

	snaps := s.Breakers()
	if len(snaps) != 1 || snaps[0].Device != dev || snaps[0].State != "open" || snaps[0].Trips != 1 {
		t.Fatalf("Breakers() = %+v, want one open breaker for %s", snaps, dev)
	}
	if snaps[0].RetryAfterSec <= 0 {
		t.Error("open breaker snapshot must report remaining cool-down")
	}

	// After the cool-down the breaker half-opens; the probe (fault budget
	// for its key is fresh but MaxPerKey=1 consumes the first attempt...
	// use a key that already spent its fault) succeeds and closes it.
	clock = clock.Add(2 * time.Hour)
	if _, err := s.Run(ctx, scaleJob(16)); err != nil { // key 16 already spent its injected fault
		t.Fatalf("half-open probe: %v", err)
	}
	if st := s.BreakerState(dev); st != BreakerClosed {
		t.Fatalf("breaker state = %v, want closed after successful probe", st)
	}
	snap := s.Metrics().Snapshot()
	if snap.BreakerTrips != 1 || snap.BreakerDenials != 1 {
		t.Errorf("trips/denials = %d/%d, want 1/1", snap.BreakerTrips, snap.BreakerDenials)
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	b := &breaker{cfg: BreakerConfig{FailureThreshold: 1, CoolDown: time.Minute}.withDefaults()}
	clock := time.Now()
	b.now = func() time.Time { return clock }

	if ok, _ := b.allow(); !ok {
		t.Fatal("closed breaker must allow")
	}
	if !b.failure() {
		t.Fatal("threshold-1 breaker must trip on first failure")
	}
	if ok, wait := b.allow(); ok || wait <= 0 {
		t.Fatal("open breaker must deny with a positive wait")
	}
	clock = clock.Add(2 * time.Minute)
	if ok, _ := b.allow(); !ok {
		t.Fatal("breaker must half-open after cool-down")
	}
	// Only one probe at a time.
	if ok, _ := b.allow(); ok {
		t.Fatal("half-open breaker must admit a single probe")
	}
	if !b.failure() {
		t.Fatal("failed probe must re-open the breaker")
	}
	if b.state != BreakerOpen {
		t.Fatalf("state = %v, want open after failed probe", b.state)
	}
	clock = clock.Add(2 * time.Minute)
	if ok, _ := b.allow(); !ok {
		t.Fatal("breaker must half-open again")
	}
	b.success()
	if b.state != BreakerClosed || b.fails != 0 {
		t.Fatalf("state/fails = %v/%d, want closed/0 after successful probe", b.state, b.fails)
	}
}

func TestCorruptedCacheEntryDetectedAndReexecuted(t *testing.T) {
	inj := fault.New(1, fault.Schedule{CorruptRate: 1.0})
	s := New(Options{Workers: 1, Injector: inj})
	defer s.Close()
	ctx := context.Background()

	r1, o1, err := s.Do(ctx, fastJob())
	if err != nil || o1 != Miss {
		t.Fatalf("first Do = %v outcome %v, want clean miss", err, o1)
	}
	// The stored entry's checksum was flipped: the next read must detect
	// the corruption, evict, and re-execute rather than serve it.
	r2, o2, err := s.Do(ctx, fastJob())
	if err != nil {
		t.Fatal(err)
	}
	if o2 != Miss {
		t.Fatalf("second Do outcome = %v, want miss (corrupted entry evicted)", o2)
	}
	if resultChecksum(r1) != resultChecksum(r2) {
		t.Error("re-executed result must be bit-identical")
	}
	snap := s.Metrics().Snapshot()
	if snap.CacheCorruptions != 1 || snap.JobsRun != 2 {
		t.Errorf("corruptions/jobs = %d/%d, want 1/2", snap.CacheCorruptions, snap.JobsRun)
	}
}

func TestStaleStoreServesLastKnownGood(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Close()
	j := fastJob()
	if _, ok := s.Stale(j.Key()); ok {
		t.Fatal("Stale before any run must miss")
	}
	want, err := s.Run(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s.Stale(j.Key())
	if !ok || got != want {
		t.Fatalf("Stale = %v/%v, want the executed result", got, ok)
	}
}

func TestRunAllReturnsPartialResultsAndJoinedError(t *testing.T) {
	s := New(Options{Workers: 2})
	defer s.Close()
	jobs := []Job{
		fastJob(),
		{Benchmark: "NoSuch", Device: arch.GTX480().Name, Toolchain: "cuda"},
		scaleJob(32),
		{Benchmark: "FFT", Device: arch.HD5870().Name, Toolchain: "cuda"}, // CUDA on AMD
	}
	results, err := s.RunAll(context.Background(), jobs)
	if err == nil {
		t.Fatal("RunAll with bad jobs must return an error")
	}
	if results[0] == nil || results[2] == nil {
		t.Fatal("successful jobs must keep their results at their indices")
	}
	if results[1] != nil || results[3] != nil {
		t.Fatal("failed jobs must have nil results")
	}
	msg := err.Error()
	if !strings.Contains(msg, "job 1") || !strings.Contains(msg, "job 3") {
		t.Errorf("joined error %q must name both failing indices", msg)
	}
	if !errors.Is(err, ErrPermanent) {
		t.Errorf("err = %v, want errors.Is ErrPermanent through the join", err)
	}

	// All-good batch: nil error.
	good, err := s.RunAll(context.Background(), []Job{fastJob(), scaleJob(32)})
	if err != nil || good[0] == nil || good[1] == nil {
		t.Fatalf("all-good RunAll = %v, %v", good, err)
	}
}

func TestClassOfTaxonomy(t *testing.T) {
	cases := []struct {
		err  error
		want Class
	}{
		{context.DeadlineExceeded, Watchdog},
		{fault.ErrTransientLaunch, Transient},
		{fault.ErrOutOfResources, Permanent},
		{errors.New("mystery"), Permanent},
		{wrapClass(Transient, errors.New("x")), Transient},
		{&BreakerOpenError{Device: "d"}, Transient},
	}
	for i, c := range cases {
		if got := ClassOf(c.err); got != c.want {
			t.Errorf("case %d: ClassOf(%v) = %v, want %v", i, c.err, got, c.want)
		}
	}
	// Class sentinels are mutually exclusive.
	err := wrapClass(Watchdog, errors.New("killed"))
	if !errors.Is(err, ErrWatchdog) || errors.Is(err, ErrTransient) || errors.Is(err, ErrPermanent) {
		t.Error("classified error must match exactly its own sentinel")
	}
}

func TestBackoffIsCappedDeterministicAndJittered(t *testing.T) {
	p := RetryPolicy{}.withDefaults()
	if p.backoff("k", 1) != p.backoff("k", 1) {
		t.Error("backoff must be deterministic per (key, attempt)")
	}
	if p.backoff("k", 1) == p.backoff("k2", 1) {
		t.Error("backoff should differ across keys (jitter)")
	}
	for attempt := 1; attempt < 30; attempt++ {
		d := p.backoff("k", attempt)
		if d <= 0 || d > p.MaxDelay {
			t.Fatalf("backoff(%d) = %v, want in (0, %v]", attempt, d, p.MaxDelay)
		}
	}
	if p.backoff("k", 1) >= p.backoff("k", 20) && p.backoff("k", 2) >= p.backoff("k", 20) {
		t.Error("backoff should grow toward the cap")
	}
}

// TestLRUSingleflightUnderConcurrentEviction hammers a 2-entry cache from
// many goroutines over 6 distinct keys: constant eviction races against
// singleflight and cache fills. Correctness (every caller gets the right
// result) is asserted per call; -race checks the locking.
func TestLRUSingleflightUnderConcurrentEviction(t *testing.T) {
	s := New(Options{Workers: 4, CacheSize: 2})
	defer s.Close()
	ctx := context.Background()

	want := map[int]uint64{}
	for i := 0; i < 6; i++ {
		res, err := s.Run(ctx, scaleJob(16+i))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = resultChecksum(res)
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				k := (g + i) % 6
				res, err := s.Run(ctx, scaleJob(16+k))
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if resultChecksum(res) != want[k] {
					t.Errorf("goroutine %d: key %d served a wrong result", g, k)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s.CacheLen() > 2 {
		t.Errorf("CacheLen = %d, want <= 2", s.CacheLen())
	}
}

// TestPanicClassifiesPermanent checks the panic-isolation path end to end:
// a panicking job body becomes a typed Permanent error and the pool keeps
// serving.
func TestPanicClassifiesPermanent(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Close()
	_, err := s.safely("boom", func() (*bench.Result, error) {
		panic("kaboom")
	})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("safely: err = %v, want panic message", err)
	}
	if ClassOf(err) != Permanent {
		t.Errorf("ClassOf(panic error) = %v, want Permanent", ClassOf(err))
	}
	if snap := s.Metrics().Snapshot(); snap.Panics != 1 {
		t.Errorf("Panics = %d, want 1", snap.Panics)
	}
	// The pool survives and still runs jobs.
	if _, err := s.Run(context.Background(), fastJob()); err != nil {
		t.Fatalf("pool did not survive the panic: %v", err)
	}
}
