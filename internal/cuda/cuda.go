// Package cuda is the CUDA-style host runtime over the simulator: contexts
// on NVIDIA devices, device memory management, module compilation through
// the NVOPENCC front-end personality, kernel launches, and simulated-time
// accounting. Its API mirrors the CUDA driver/runtime shapes the paper's
// benchmarks use (cudaMalloc/cudaMemcpy/kernel<<<grid,block>>>), adapted to
// Go.
package cuda

import (
	"errors"
	"fmt"

	"gpucmp/internal/arch"
	"gpucmp/internal/compiler"
	"gpucmp/internal/kir"
	"gpucmp/internal/perfmodel"
	"gpucmp/internal/ptx"
	"gpucmp/internal/sim"
)

// ErrNoCUDADevice is returned when a context is requested on hardware CUDA
// does not support (anything non-NVIDIA — the reason Table VI has no CUDA
// column for HD5870, Intel920 or the Cell/BE).
var ErrNoCUDADevice = errors.New("cuda: no CUDA-capable device")

// Dim3 re-exports the simulator launch dimensions.
type Dim3 = sim.Dim3

// DevicePtr is a device allocation: base address plus size.
type DevicePtr struct {
	Addr uint32
	Size uint32
}

// Context owns a device, its allocations, and the simulated clock.
type Context struct {
	dev *sim.Device
	tc  *perfmodel.Toolchain

	elapsed         float64 // end-to-end simulated seconds
	kernelTime      float64 // kernel-only simulated seconds
	transferTime    float64 // host<->device copy simulated seconds
	streamHighWater float64 // longest unsynchronised stream
	traces          []*sim.Trace
	breakdowns      []perfmodel.Breakdown
	constOffs       map[uint32]uint32 // global addr -> const segment offset
}

// NewContext creates a CUDA context on the given device description.
func NewContext(a *arch.Device) (*Context, error) {
	if a.Vendor != "NVIDIA" {
		return nil, fmt.Errorf("%w (device %s is %s)", ErrNoCUDADevice, a.Name, a.Vendor)
	}
	d, err := sim.NewDevice(a)
	if err != nil {
		return nil, err
	}
	return &Context{dev: d, tc: perfmodel.CUDAToolchain(), constOffs: make(map[uint32]uint32)}, nil
}

// Device exposes the underlying simulated device.
func (c *Context) Device() *sim.Device { return c.dev }

// Arch returns the device description.
func (c *Context) Arch() *arch.Device { return c.dev.Arch }

// Malloc allocates device memory.
func (c *Context) Malloc(bytes uint32) (DevicePtr, error) {
	addr, err := c.dev.Global.Alloc(bytes)
	if err != nil {
		return DevicePtr{}, err
	}
	return DevicePtr{Addr: addr, Size: bytes}, nil
}

// MemcpyHtoD copies host words to the device and charges transfer time.
func (c *Context) MemcpyHtoD(dst DevicePtr, src []uint32) error {
	if uint32(4*len(src)) > dst.Size {
		return fmt.Errorf("cuda: MemcpyHtoD of %d words overflows allocation of %d bytes", len(src), dst.Size)
	}
	if err := c.dev.Global.WriteWords(dst.Addr, src); err != nil {
		return err
	}
	t := perfmodel.TransferTimeOn(c.dev.Arch, c.tc, int64(4*len(src)))
	c.elapsed += t
	c.transferTime += t
	return nil
}

// MemcpyDtoH copies device words to the host and charges transfer time.
func (c *Context) MemcpyDtoH(dst []uint32, src DevicePtr) error {
	if uint32(4*len(dst)) > src.Size {
		return fmt.Errorf("cuda: MemcpyDtoH of %d words overruns allocation of %d bytes", len(dst), src.Size)
	}
	if err := c.dev.Global.ReadWords(src.Addr, dst); err != nil {
		return err
	}
	t := perfmodel.TransferTimeOn(c.dev.Arch, c.tc, int64(4*len(dst)))
	c.elapsed += t
	c.transferTime += t
	return nil
}

// Module is a compiled set of kernels.
type Module struct {
	m *ptx.Module
}

// CompileModule builds KIR kernels with the CUDA front-end. Compilation is
// served from the process-wide compile cache: each kernel is lowered once
// per personality, not once per context.
func (c *Context) CompileModule(name string, kernels []*kir.Kernel) (*Module, error) {
	m, err := compiler.CompileModuleCached(name, kernels, compiler.CUDA())
	if err != nil {
		return nil, err
	}
	return &Module{m: m}, nil
}

// Kernel retrieves a compiled kernel handle.
func (m *Module) Kernel(name string) (*ptx.Kernel, error) { return m.m.Kernel(name) }

// Arg is one kernel launch argument.
type Arg struct {
	isPtr bool
	val   uint32
	ptr   DevicePtr
}

// Ptr passes a device allocation.
func Ptr(p DevicePtr) Arg { return Arg{isPtr: true, ptr: p} }

// U32 passes a 32-bit scalar.
func U32(v uint32) Arg { return Arg{val: v} }

// I32 passes a signed scalar.
func I32(v int32) Arg { return Arg{val: uint32(v)} }

// F32 passes a float scalar.
func F32(v float32) Arg { return Arg{val: fbits(v)} }

// resolveArgs converts launch arguments to the raw parameter words,
// staging constant-space buffers into the constant segment.
func (c *Context) resolveArgs(k *ptx.Kernel, args []Arg) ([]uint32, error) {
	if len(args) != len(k.Params) {
		return nil, fmt.Errorf("cuda: kernel %s takes %d arguments, got %d", k.Name, len(k.Params), len(args))
	}
	raw := make([]uint32, len(args))
	for i, a := range args {
		p := k.Params[i]
		switch {
		case p.Pointer && p.Space == ptx.SpaceConst:
			if !a.isPtr {
				return nil, fmt.Errorf("cuda: kernel %s argument %d (%s) must be a device pointer", k.Name, i, p.Name)
			}
			off, err := c.stageConst(a.ptr)
			if err != nil {
				return nil, err
			}
			raw[i] = off
		case p.Pointer:
			if !a.isPtr {
				return nil, fmt.Errorf("cuda: kernel %s argument %d (%s) must be a device pointer", k.Name, i, p.Name)
			}
			raw[i] = a.ptr.Addr
		default:
			if a.isPtr {
				return nil, fmt.Errorf("cuda: kernel %s argument %d (%s) must be a scalar", k.Name, i, p.Name)
			}
			raw[i] = a.val
		}
	}
	return raw, nil
}

// stageConst copies a global allocation into the constant segment
// (cudaMemcpyToSymbol semantics) and returns its constant-space offset.
func (c *Context) stageConst(p DevicePtr) (uint32, error) {
	off, ok := c.constOffs[p.Addr]
	if !ok {
		var err error
		off, err = c.dev.ConstAlloc(p.Size)
		if err != nil {
			return 0, err
		}
		c.constOffs[p.Addr] = off
	}
	words := make([]uint32, p.Size/4)
	if err := c.dev.Global.ReadWords(p.Addr, words); err != nil {
		return 0, err
	}
	if err := c.dev.ConstWrite(off, words); err != nil {
		return 0, err
	}
	return off, nil
}

// LaunchKernel executes the kernel and advances the simulated clock.
func (c *Context) LaunchKernel(k *ptx.Kernel, grid, block Dim3, args ...Arg) error {
	raw, err := c.resolveArgs(k, args)
	if err != nil {
		return err
	}
	tr, err := c.dev.Launch(k, grid, block, raw)
	if err != nil {
		return err
	}
	b := perfmodel.KernelTime(c.dev.Arch, c.tc, tr)
	c.traces = append(c.traces, tr)
	c.breakdowns = append(c.breakdowns, b)
	c.elapsed += b.Total
	c.kernelTime += b.Total
	return nil
}

// Elapsed returns the simulated end-to-end seconds (kernels + transfers)
// since the last ResetTimer.
func (c *Context) Elapsed() float64 { return c.elapsed }

// KernelTime returns the simulated kernel-only seconds.
func (c *Context) KernelTime() float64 { return c.kernelTime }

// TransferTime returns the simulated host<->device copy seconds since the
// last ResetTimer (synchronous copies only; async stream copies are
// accounted in the stream timeline).
func (c *Context) TransferTime() float64 { return c.transferTime }

// Traces returns the launch traces since the last ResetTimer.
func (c *Context) Traces() []*sim.Trace { return c.traces }

// Breakdowns returns the per-launch timing decompositions.
func (c *Context) Breakdowns() []perfmodel.Breakdown { return c.breakdowns }

// ResetTimer clears the simulated clock and trace history.
func (c *Context) ResetTimer() {
	c.elapsed = 0
	c.kernelTime = 0
	c.transferTime = 0
	c.traces = nil
	c.breakdowns = nil
}

func fbits(f float32) uint32 {
	return floatBits(f)
}

// DeviceProperties mirrors cudaGetDeviceProperties for the attributes the
// benchmarks care about.
type DeviceProperties struct {
	Name               string
	ComputeUnits       int
	WarpSize           int
	MaxThreadsPerBlock int
	SharedMemPerBlock  int
	RegsPerBlock       int
	ClockRateKHz       int
	MemoryClockRateKHz int
	MemoryBusWidthBits int
	TotalGlobalMem     uint64
	HasL1Cache         bool
}

// Properties returns the context device's attributes.
func (c *Context) Properties() DeviceProperties {
	a := c.dev.Arch
	return DeviceProperties{
		Name:               a.Name,
		ComputeUnits:       a.ComputeUnits,
		WarpSize:           a.SIMDWidth,
		MaxThreadsPerBlock: a.MaxWorkGroupSize,
		SharedMemPerBlock:  a.SharedMemPerUnit,
		RegsPerBlock:       a.RegistersPerUnit,
		ClockRateKHz:       int(a.CoreClockMHz * 1000),
		MemoryClockRateKHz: int(a.MemClockMHz * 1000),
		MemoryBusWidthBits: a.MemoryBusBits,
		TotalGlobalMem:     uint64(a.MemoryGB * float64(1<<30)),
		HasL1Cache:         a.HasL1L2,
	}
}
