package cuda

import (
	"errors"
	"math"
	"testing"

	"gpucmp/internal/arch"
	"gpucmp/internal/kir"
)

func scaleKernel() *kir.Kernel {
	b := kir.NewKernel("scale")
	in := b.GlobalBuffer("in", kir.F32)
	out := b.GlobalBuffer("out", kir.F32)
	f := b.ScalarParam("f", kir.F32)
	gid := b.Declare("gid", b.GlobalIDX())
	b.Store(out, gid, kir.Mul(b.Load(in, gid), f))
	return b.MustBuild()
}

func constKernel() *kir.Kernel {
	b := kir.NewKernel("cmul")
	coef := b.ConstBuffer("coef", kir.F32)
	out := b.GlobalBuffer("out", kir.F32)
	gid := b.Declare("gid", b.GlobalIDX())
	b.Store(out, gid, kir.Mul(b.Load(coef, kir.Rem(gid, kir.U(4))), kir.F(2)))
	return b.MustBuild()
}

func TestContextRefusesNonNVIDIA(t *testing.T) {
	for _, a := range []*arch.Device{arch.HD5870(), arch.Intel920(), arch.CellBE()} {
		if _, err := NewContext(a); !errors.Is(err, ErrNoCUDADevice) {
			t.Errorf("%s: err = %v, want ErrNoCUDADevice", a.Name, err)
		}
	}
	if _, err := NewContext(arch.GTX280()); err != nil {
		t.Errorf("GTX280 context: %v", err)
	}
}

func TestMallocMemcpyLaunchRoundTrip(t *testing.T) {
	ctx, err := NewContext(arch.GTX480())
	if err != nil {
		t.Fatal(err)
	}
	mod, err := ctx.CompileModule("m", []*kir.Kernel{scaleKernel()})
	if err != nil {
		t.Fatal(err)
	}
	k, err := mod.Kernel("scale")
	if err != nil {
		t.Fatal(err)
	}
	const n = 256
	in := make([]float32, n)
	for i := range in {
		in[i] = float32(i)
	}
	inBuf, err := ctx.Malloc(4 * n)
	if err != nil {
		t.Fatal(err)
	}
	outBuf, _ := ctx.Malloc(4 * n)
	if err := ctx.MemcpyHtoD(inBuf, F32Words(in)); err != nil {
		t.Fatal(err)
	}
	if err := ctx.LaunchKernel(k, Dim3{X: 1, Y: 1}, Dim3{X: n, Y: 1},
		Ptr(inBuf), Ptr(outBuf), F32(1.5)); err != nil {
		t.Fatal(err)
	}
	got := make([]uint32, n)
	if err := ctx.MemcpyDtoH(got, outBuf); err != nil {
		t.Fatal(err)
	}
	for i, w := range WordsF32(got) {
		if w != in[i]*1.5 {
			t.Fatalf("out[%d] = %g, want %g", i, w, in[i]*1.5)
		}
	}
	if ctx.Elapsed() <= 0 || ctx.KernelTime() <= 0 {
		t.Error("simulated clock did not advance")
	}
	if ctx.Elapsed() <= ctx.KernelTime() {
		t.Error("end-to-end time must include the transfers")
	}
	if len(ctx.Traces()) != 1 || len(ctx.Breakdowns()) != 1 {
		t.Error("trace bookkeeping wrong")
	}
	ctx.ResetTimer()
	if ctx.Elapsed() != 0 || len(ctx.Traces()) != 0 {
		t.Error("ResetTimer did not clear state")
	}
}

func TestConstantStaging(t *testing.T) {
	ctx, err := NewContext(arch.GTX280())
	if err != nil {
		t.Fatal(err)
	}
	mod, err := ctx.CompileModule("m", []*kir.Kernel{constKernel()})
	if err != nil {
		t.Fatal(err)
	}
	k, _ := mod.Kernel("cmul")
	coefs := []float32{1, 2, 3, 4}
	coefBuf, _ := ctx.Malloc(16)
	if err := ctx.MemcpyHtoD(coefBuf, F32Words(coefs)); err != nil {
		t.Fatal(err)
	}
	outBuf, _ := ctx.Malloc(4 * 64)
	// Launch twice: the second launch must reuse the staged constant slot.
	for pass := 0; pass < 2; pass++ {
		if err := ctx.LaunchKernel(k, Dim3{X: 1, Y: 1}, Dim3{X: 64, Y: 1},
			Ptr(coefBuf), Ptr(outBuf)); err != nil {
			t.Fatal(err)
		}
	}
	got := make([]uint32, 64)
	if err := ctx.MemcpyDtoH(got, outBuf); err != nil {
		t.Fatal(err)
	}
	for i, w := range WordsF32(got) {
		if w != coefs[i%4]*2 {
			t.Fatalf("out[%d] = %g, want %g", i, w, coefs[i%4]*2)
		}
	}
}

func TestArgumentValidation(t *testing.T) {
	ctx, err := NewContext(arch.GTX480())
	if err != nil {
		t.Fatal(err)
	}
	mod, _ := ctx.CompileModule("m", []*kir.Kernel{scaleKernel()})
	k, _ := mod.Kernel("scale")
	buf, _ := ctx.Malloc(1024)

	if err := ctx.LaunchKernel(k, Dim3{X: 1, Y: 1}, Dim3{X: 32, Y: 1}, Ptr(buf)); err == nil {
		t.Error("wrong arg count accepted")
	}
	if err := ctx.LaunchKernel(k, Dim3{X: 1, Y: 1}, Dim3{X: 32, Y: 1},
		Ptr(buf), F32(1), F32(1)); err == nil {
		t.Error("scalar passed for pointer accepted")
	}
	if err := ctx.LaunchKernel(k, Dim3{X: 1, Y: 1}, Dim3{X: 32, Y: 1},
		Ptr(buf), Ptr(buf), Ptr(buf)); err == nil {
		t.Error("pointer passed for scalar accepted")
	}
}

func TestMemcpyBounds(t *testing.T) {
	ctx, _ := NewContext(arch.GTX480())
	buf, _ := ctx.Malloc(16)
	if err := ctx.MemcpyHtoD(buf, make([]uint32, 8)); err == nil {
		t.Error("oversized HtoD accepted")
	}
	if err := ctx.MemcpyDtoH(make([]uint32, 8), buf); err == nil {
		t.Error("oversized DtoH accepted")
	}
}

func TestWordConversions(t *testing.T) {
	f := []float32{0, 1.5, -2.25, float32(math.Pi)}
	got := WordsF32(F32Words(f))
	for i := range f {
		if got[i] != f[i] {
			t.Fatalf("round trip failed at %d", i)
		}
	}
}

func TestArgConstructors(t *testing.T) {
	if U32(7).val != 7 || I32(-1).val != 0xffffffff {
		t.Error("integer args wrong")
	}
	if F32(1.0).val != math.Float32bits(1.0) {
		t.Error("float arg wrong")
	}
	p := Ptr(DevicePtr{Addr: 256, Size: 64})
	if !p.isPtr || p.ptr.Addr != 256 {
		t.Error("pointer arg wrong")
	}
}

func TestStreamsAndEvents(t *testing.T) {
	ctx, err := NewContext(arch.GTX480())
	if err != nil {
		t.Fatal(err)
	}
	mod, err := ctx.CompileModule("m", []*kir.Kernel{scaleKernel()})
	if err != nil {
		t.Fatal(err)
	}
	k, _ := mod.Kernel("scale")

	const n = 256
	in := make([]float32, n)
	for i := range in {
		in[i] = 2
	}
	mk := func() (DevicePtr, DevicePtr) {
		a, _ := ctx.Malloc(4 * n)
		b, _ := ctx.Malloc(4 * n)
		return a, b
	}
	in1, out1 := mk()
	in2, out2 := mk()

	s1 := ctx.NewStream()
	s2 := ctx.NewStream()
	start1 := s1.Record()
	if err := s1.MemcpyHtoDAsync(in1, F32Words(in)); err != nil {
		t.Fatal(err)
	}
	if err := s1.LaunchKernel(k, Dim3{X: 1, Y: 1}, Dim3{X: n, Y: 1}, Ptr(in1), Ptr(out1), F32(3)); err != nil {
		t.Fatal(err)
	}
	end1 := s1.Record()
	if err := s2.MemcpyHtoDAsync(in2, F32Words(in)); err != nil {
		t.Fatal(err)
	}
	if err := s2.LaunchKernel(k, Dim3{X: 1, Y: 1}, Dim3{X: n, Y: 1}, Ptr(in2), Ptr(out2), F32(4)); err != nil {
		t.Fatal(err)
	}

	if EventElapsed(start1, end1) <= 0 {
		t.Error("event pair should measure positive time")
	}
	if s1.Elapsed() <= 0 || s2.Elapsed() <= 0 {
		t.Error("streams should accumulate time")
	}

	before := ctx.Elapsed()
	s1.Synchronize()
	s2.Synchronize()
	ctx.Synchronize()
	after := ctx.Elapsed()
	// Overlapped streams: the context advances by the longest stream, not
	// the sum.
	wall := after - before
	if wall <= 0 {
		t.Fatal("Synchronize should advance the context clock")
	}
	longest := s1.Elapsed()
	if s2.Elapsed() > longest {
		longest = s2.Elapsed()
	}
	if wall != longest {
		t.Errorf("context advanced %g, want the longest stream %g", wall, longest)
	}
	if wall >= s1.Elapsed()+s2.Elapsed() {
		t.Error("streams should overlap, not serialise")
	}

	got := make([]uint32, n)
	if err := ctx.MemcpyDtoH(got, out2); err != nil {
		t.Fatal(err)
	}
	for i, w := range WordsF32(got) {
		if w != 8 {
			t.Fatalf("out2[%d] = %g, want 8", i, w)
		}
	}
}

func TestDeviceProperties(t *testing.T) {
	ctx, _ := NewContext(arch.GTX480())
	p := ctx.Properties()
	if p.Name != arch.GTX480().Name || p.WarpSize != 32 || !p.HasL1Cache {
		t.Errorf("properties wrong: %+v", p)
	}
	if p.ClockRateKHz != 1401000 || p.MemoryBusWidthBits != 384 {
		t.Errorf("clock/bus wrong: %+v", p)
	}
	ctx280, _ := NewContext(arch.GTX280())
	if ctx280.Properties().HasL1Cache {
		t.Error("GT200 must not report an L1 cache")
	}
}
