package cuda

import (
	"fmt"

	"gpucmp/internal/perfmodel"
	"gpucmp/internal/ptx"
)

// Stream is an ordered sequence of device work with its own simulated
// clock, mirroring cudaStream_t. Work on different streams of the same
// context may overlap on real hardware; the model accounts each stream's
// time separately and Context.Synchronize folds them together.
type Stream struct {
	ctx     *Context
	elapsed float64 // stream-local simulated time
}

// NewStream creates a stream on the context.
func (c *Context) NewStream() *Stream { return &Stream{ctx: c} }

// LaunchKernel enqueues a kernel on the stream.
func (s *Stream) LaunchKernel(k *ptx.Kernel, grid, block Dim3, args ...Arg) error {
	raw, err := s.ctx.resolveArgs(k, args)
	if err != nil {
		return err
	}
	tr, err := s.ctx.dev.Launch(k, grid, block, raw)
	if err != nil {
		return err
	}
	b := perfmodel.KernelTime(s.ctx.dev.Arch, s.ctx.tc, tr)
	s.ctx.traces = append(s.ctx.traces, tr)
	s.ctx.breakdowns = append(s.ctx.breakdowns, b)
	s.elapsed += b.Total
	s.ctx.kernelTime += b.Total
	return nil
}

// MemcpyHtoDAsync copies host words to the device on this stream.
func (s *Stream) MemcpyHtoDAsync(dst DevicePtr, src []uint32) error {
	if uint32(4*len(src)) > dst.Size {
		return fmt.Errorf("cuda: MemcpyHtoDAsync of %d words overflows allocation of %d bytes", len(src), dst.Size)
	}
	if err := s.ctx.dev.Global.WriteWords(dst.Addr, src); err != nil {
		return err
	}
	s.elapsed += perfmodel.TransferTimeOn(s.ctx.dev.Arch, s.ctx.tc, int64(4*len(src)))
	return nil
}

// Elapsed returns the stream-local simulated seconds.
func (s *Stream) Elapsed() float64 { return s.elapsed }

// Synchronize folds the stream's time into the context clock: streams
// overlap, so the context advances to the longest stream seen so far.
func (s *Stream) Synchronize() {
	if s.elapsed > 0 {
		if s.elapsed > s.ctx.streamHighWater {
			s.ctx.streamHighWater = s.elapsed
		}
	}
}

// Synchronize waits for all streams: the context's end-to-end clock takes
// the longest outstanding stream (concurrent execution), then resets the
// high-water mark.
func (c *Context) Synchronize() {
	c.elapsed += c.streamHighWater
	c.streamHighWater = 0
}

// Event is a point on a stream's timeline, mirroring cudaEvent_t.
type Event struct {
	at float64
}

// Record captures the stream's current simulated time.
func (s *Stream) Record() Event { return Event{at: s.elapsed} }

// EventElapsed returns the seconds between two recorded events (the
// cudaEventElapsedTime of the model, in seconds rather than ms).
func EventElapsed(start, end Event) float64 { return end.at - start.at }
