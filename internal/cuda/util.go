package cuda

import "math"

func floatBits(f float32) uint32 { return math.Float32bits(f) }

// F32Words converts a float slice to raw words for Memcpy.
func F32Words(src []float32) []uint32 {
	out := make([]uint32, len(src))
	for i, f := range src {
		out[i] = math.Float32bits(f)
	}
	return out
}

// WordsF32 converts raw words back to floats.
func WordsF32(src []uint32) []float32 {
	out := make([]float32, len(src))
	for i, w := range src {
		out[i] = math.Float32frombits(w)
	}
	return out
}
