package tune

import (
	"encoding/json"
	"testing"

	"gpucmp/internal/arch"
	"gpucmp/internal/bench"
)

// TestTunePatternParallelMatchesSequential is the determinism gate for the
// concurrent tuner (run under -race in CI): the simulator is a pure
// function of the job and the report sort is a total order, so the
// parallel sweep must reproduce the sequential report point for point.
func TestTunePatternParallelMatchesSequential(t *testing.T) {
	seq, err := TunePattern("opencl", arch.GTX480(), "Reduce", 256)
	if err != nil {
		t.Fatal(err)
	}
	par, err := TunePatternParallel("opencl", arch.GTX480(), "Reduce", 256, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Points) != len(par.Points) {
		t.Fatalf("point counts differ: sequential %d, parallel %d", len(seq.Points), len(par.Points))
	}
	for i := range seq.Points {
		s, p := seq.Points[i], par.Points[i]
		if s.Pattern != p.Pattern || s.Status != p.Status || s.Value != p.Value || s.Raw != p.Raw {
			t.Fatalf("point %d differs: sequential %+v, parallel %+v", i, s, p)
		}
	}
	best, ok := seq.Best()
	if !ok {
		t.Fatal("no OK point in the reduce schedule space")
	}
	if best.Pattern == "" {
		t.Fatal("pattern tuner produced a point without a schedule mangle")
	}
}

// TestTunePatternSweepsWholeSpace: every schedule in the rule space shows
// up exactly once, and at least the canonical one runs OK.
func TestTunePatternSweepsWholeSpace(t *testing.T) {
	rep, err := TunePatternParallel("opencl", arch.GTX480(), "Scan", 512, 8)
	if err != nil {
		t.Fatal(err)
	}
	space := bench.PatternSpace("Scan")
	if len(rep.Points) != len(space) {
		t.Fatalf("report has %d points, schedule space has %d", len(rep.Points), len(space))
	}
	want := map[string]bool{}
	for _, m := range space {
		want[m] = true
	}
	okCount := 0
	for _, p := range rep.Points {
		if !want[p.Pattern] {
			t.Fatalf("point %q not in (or duplicated from) the schedule space", p.Pattern)
		}
		delete(want, p.Pattern)
		if p.Status == "OK" {
			okCount++
		}
	}
	if okCount == 0 {
		t.Fatal("no schedule ran OK")
	}
	if rep.Space != "pattern" {
		t.Fatalf("report space = %q, want pattern", rep.Space)
	}
}

// TestTuneAnyDispatch: pattern-portable benchmarks take the schedule
// space, knob benchmarks keep the knob space, everything else is refused.
func TestTuneAnyDispatch(t *testing.T) {
	rep, err := TuneAny("opencl", arch.GTX480(), "Reduce", 512, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Space != "pattern" {
		t.Fatalf("Reduce tuned in %q space, want pattern", rep.Space)
	}
	rep, err = TuneAny("opencl", arch.GTX480(), "TranP", 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Space != "knobs" {
		t.Fatalf("TranP tuned in %q space, want knobs", rep.Space)
	}
	if _, err := TuneAny("opencl", arch.GTX480(), "FFT", 16, 4); err == nil {
		t.Fatal("FFT has no variant space; TuneAny should refuse")
	}
}

// TestReportJSONGolden pins the machine-readable wire format behind
// `autotune -json`: field names, knob key rendering, omitted zero fields.
func TestReportJSONGolden(t *testing.T) {
	rep := &Report{
		Benchmark: "Sobel",
		Device:    "GeForce GTX480",
		Toolchain: "opencl",
		Metric:    "sec",
		Space:     "pattern",
		Points: []Point{
			{Pattern: "b16.c1.u0.f1.r0.t0.k1", Config: bench.Config{Scale: 2, Pattern: "b16.c1.u0.f1.r0.t0.k1"},
				Value: 4000, Raw: 0.00025, Status: "OK"},
			{Settings: map[Knob]bool{KnobConstant: true}, Config: bench.Config{Scale: 2, UseConstant: true},
				Status: "ABT"},
		},
	}
	got, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	const golden = `{
  "benchmark": "Sobel",
  "device": "GeForce GTX480",
  "toolchain": "opencl",
  "metric": "sec",
  "space": "pattern",
  "points": [
    {
      "pattern": "b16.c1.u0.f1.r0.t0.k1",
      "config": {
        "scale": 2,
        "pattern": "b16.c1.u0.f1.r0.t0.k1"
      },
      "value": 4000,
      "raw": 0.00025,
      "status": "OK"
    },
    {
      "settings": {
        "constant-memory": true
      },
      "config": {
        "scale": 2,
        "use_constant": true
      },
      "status": "ABT"
    }
  ]
}`
	if string(got) != golden {
		t.Fatalf("report JSON drifted from golden form:\n--- got ---\n%s\n--- want ---\n%s", got, golden)
	}

	var back Report
	if err := json.Unmarshal(got, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Points[1].Settings[KnobConstant] {
		t.Fatal("knob map key did not round-trip through its text form")
	}
}
