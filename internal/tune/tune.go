// Package tune implements the auto-tuner the paper names as future work in
// its conclusion: "we would like to develop an auto-tuner to adapt
// general-purpose OpenCL programs to all available specific platforms to
// fully exploit the hardware."
//
// The tuner enumerates the implementation variants a programmer controls in
// step 4 of the fair-comparison pipeline (texture memory, constant memory,
// unroll-pragma placement, warp-oriented kernels), measures every variant
// on the target device, and reports the configuration that maximises the
// benchmark's Table II metric. Because the knobs interact with
// architecture features (texture caches, constant caches, wavefront
// widths), the winning variant differs per device — which is exactly why
// the paper argues portable code needs an auto-tuner.
package tune

import (
	"fmt"
	"sort"

	"gpucmp/internal/arch"
	"gpucmp/internal/bench"
)

// Knob is one tunable implementation choice.
type Knob int

const (
	KnobTexture Knob = iota
	KnobConstant
	KnobUnrollA
	KnobUnrollB
	KnobVectorKernel
	KnobNaiveTranspose
)

// String names the knob.
func (k Knob) String() string {
	switch k {
	case KnobTexture:
		return "texture-memory"
	case KnobConstant:
		return "constant-memory"
	case KnobUnrollA:
		return "unroll@a"
	case KnobUnrollB:
		return "unroll@b"
	case KnobVectorKernel:
		return "warp-per-row"
	case KnobNaiveTranspose:
		return "naive-transpose"
	default:
		return fmt.Sprintf("knob(%d)", int(k))
	}
}

// MarshalText renders the knob by name, so a Point's Settings map JSON-
// encodes with readable keys.
func (k Knob) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText parses a knob name (the inverse of MarshalText).
func (k *Knob) UnmarshalText(text []byte) error {
	for _, c := range []Knob{KnobTexture, KnobConstant, KnobUnrollA, KnobUnrollB, KnobVectorKernel, KnobNaiveTranspose} {
		if c.String() == string(text) {
			*k = c
			return nil
		}
	}
	return fmt.Errorf("tune: unknown knob %q", text)
}

// RelevantKnobs returns the variant dimensions a benchmark actually has.
func RelevantKnobs(benchName string) []Knob {
	switch benchName {
	case "MD":
		return []Knob{KnobTexture}
	case "SPMV":
		return []Knob{KnobTexture, KnobVectorKernel}
	case "Sobel":
		return []Knob{KnobConstant}
	case "FDTD":
		return []Knob{KnobUnrollA, KnobUnrollB}
	case "TranP":
		return []Knob{KnobNaiveTranspose}
	default:
		return nil
	}
}

func applyKnob(cfg *bench.Config, k Knob, on bool) {
	switch k {
	case KnobTexture:
		cfg.UseTexture = on
	case KnobConstant:
		cfg.UseConstant = on
	case KnobUnrollA:
		cfg.UnrollA = on
	case KnobUnrollB:
		cfg.UnrollB = on
	case KnobVectorKernel:
		cfg.VectorSPMV = on
	case KnobNaiveTranspose:
		cfg.NaiveTranspose = on
	}
}

// Point is one evaluated configuration: either a knob assignment (Settings)
// or a pattern schedule (Pattern), never both.
type Point struct {
	Settings map[Knob]bool `json:"settings,omitempty"`
	Pattern  string        `json:"pattern,omitempty"` // schedule mangle (pattern space)
	Config   bench.Config  `json:"config"`
	Value    float64       `json:"value,omitempty"` // Table II metric (normalised so higher is better)
	Raw      float64       `json:"raw,omitempty"`   // the metric as reported
	Status   string        `json:"status"`          // OK / FL / ABT
}

// Label renders the settings compactly.
func (p Point) Label() string {
	if p.Pattern != "" {
		return p.Pattern
	}
	if len(p.Settings) == 0 {
		return "(no knobs)"
	}
	keys := make([]Knob, 0, len(p.Settings))
	for k := range p.Settings {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	s := ""
	for _, k := range keys {
		state := "-"
		if p.Settings[k] {
			state = "+"
		}
		if s != "" {
			s += " "
		}
		s += state + k.String()
	}
	return s
}

// Report is the outcome of one tuning run.
type Report struct {
	Benchmark string  `json:"benchmark"`
	Device    string  `json:"device"`
	Toolchain string  `json:"toolchain"`
	Metric    string  `json:"metric"`
	Space     string  `json:"space"`  // "knobs" or "pattern"
	Points    []Point `json:"points"` // sorted best-first; failed points at the end
}

// Best returns the winning point (the first OK point).
func (r *Report) Best() (Point, bool) {
	for _, p := range r.Points {
		if p.Status == "OK" {
			return p, true
		}
	}
	return Point{}, false
}

// Tune sweeps the benchmark's variant space on one device with the given
// toolchain and returns every measured point, best first. Texture memory is
// skipped as a candidate on devices without a texture cache.
func Tune(toolchain string, a *arch.Device, benchName string, scale int) (*Report, error) {
	spec, err := bench.SpecByName(benchName)
	if err != nil {
		return nil, err
	}
	knobs := RelevantKnobs(benchName)
	rep := &Report{Benchmark: benchName, Device: a.Name, Toolchain: toolchain, Metric: spec.Metric, Space: "knobs"}

	n := 1 << uint(len(knobs))
	for mask := 0; mask < n; mask++ {
		cfg := bench.Config{Scale: scale, UnrollB: true}
		settings := map[Knob]bool{}
		skip := false
		for i, k := range knobs {
			on := mask&(1<<uint(i)) != 0
			if k == KnobTexture && on && !a.HasTextureCache {
				skip = true // no texture path on this device
			}
			settings[k] = on
			applyKnob(&cfg, k, on)
		}
		if skip {
			continue
		}
		d, err := bench.NewDriver(toolchain, a)
		if err != nil {
			return nil, err
		}
		res, err := spec.Run(d, cfg)
		if err != nil {
			return nil, err
		}
		p := Point{Settings: settings, Config: cfg, Status: res.Status(), Raw: res.Value}
		if res.Err == nil {
			p.Value = res.Value
			if spec.LowerIsBetter && res.Value > 0 {
				p.Value = 1 / res.Value
			}
		}
		rep.Points = append(rep.Points, p)
	}
	sort.SliceStable(rep.Points, func(i, j int) bool {
		pi, pj := rep.Points[i], rep.Points[j]
		if (pi.Status == "OK") != (pj.Status == "OK") {
			return pi.Status == "OK"
		}
		return pi.Value > pj.Value
	})
	return rep, nil
}

// TuneEverywhere tunes a benchmark across every device that can run the
// toolchain, returning one report per device — the "adapt to all available
// platforms" loop of the paper's conclusion.
func TuneEverywhere(toolchain string, benchName string, scale int) ([]*Report, error) {
	var out []*Report
	for _, a := range arch.All() {
		if toolchain == "cuda" && a.Vendor != "NVIDIA" {
			continue
		}
		r, err := Tune(toolchain, a, benchName, scale)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
