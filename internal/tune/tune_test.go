package tune

import (
	"testing"

	"gpucmp/internal/arch"
)

func TestRelevantKnobs(t *testing.T) {
	if len(RelevantKnobs("MD")) != 1 || RelevantKnobs("MD")[0] != KnobTexture {
		t.Error("MD should tune texture memory")
	}
	if len(RelevantKnobs("SPMV")) != 2 {
		t.Error("SPMV should tune texture and kernel shape")
	}
	if len(RelevantKnobs("FDTD")) != 2 {
		t.Error("FDTD should tune the two unroll points")
	}
	if RelevantKnobs("Reduce") != nil {
		t.Error("Reduce has no variant knobs")
	}
	if len(RelevantKnobs("TranP")) != 1 {
		t.Error("TranP should tune the shared-memory tile")
	}
}

// TestTuneTranPShapeDependsOnDevice: the tiled transpose wins on GPUs, the
// naive one wins on the implicitly-cached CPU (Section V).
func TestTuneTranPShape(t *testing.T) {
	gpu, err := Tune("opencl", arch.GTX280(), "TranP", 2)
	if err != nil {
		t.Fatal(err)
	}
	best, ok := gpu.Best()
	if !ok || best.Settings[KnobNaiveTranspose] {
		t.Errorf("GPU tuner picked %s, expected the tiled transpose", best.Label())
	}
	cpu, err := Tune("opencl", arch.Intel920(), "TranP", 2)
	if err != nil {
		t.Fatal(err)
	}
	best, ok = cpu.Best()
	if !ok || !best.Settings[KnobNaiveTranspose] {
		t.Errorf("CPU tuner picked %s, expected the naive transpose", best.Label())
	}
}

// TestTuneMDPicksTextureOnGPU: on a GPU with a texture cache the tuner must
// select the texture variant; the CPU device has no texture path so only
// the plain variant is measured.
func TestTuneMDPicksTextureOnGPU(t *testing.T) {
	rep, err := Tune("cuda", arch.GTX280(), "MD", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("want 2 points, got %d", len(rep.Points))
	}
	best, ok := rep.Best()
	if !ok {
		t.Fatal("no OK point")
	}
	if !best.Settings[KnobTexture] {
		t.Errorf("tuner picked %s, expected the texture variant", best.Label())
	}

	cpu, err := Tune("opencl", arch.Intel920(), "MD", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(cpu.Points) != 1 {
		t.Fatalf("CPU should only measure the non-texture variant, got %d points", len(cpu.Points))
	}
	if cpu.Points[0].Settings[KnobTexture] {
		t.Error("CPU point must not use texture memory")
	}
}

// TestTuneSPMVKernelShapeDependsOnDevice: warp-per-row is competitive on
// the GPU but must lose to thread-per-row on the CPU (the Section V
// observation the auto-tuner exists to automate).
func TestTuneSPMVKernelShape(t *testing.T) {
	cpu, err := Tune("opencl", arch.Intel920(), "SPMV", 4)
	if err != nil {
		t.Fatal(err)
	}
	best, ok := cpu.Best()
	if !ok {
		t.Fatal("no OK point on CPU")
	}
	if best.Settings[KnobVectorKernel] {
		t.Errorf("CPU tuner picked %s; warp-per-row should lose on a CPU", best.Label())
	}
}

// TestTuneSobelConstantOnGT200: the constant-memory variant must win on the
// cacheless GT200.
func TestTuneSobelConstantOnGT200(t *testing.T) {
	rep, err := Tune("opencl", arch.GTX280(), "Sobel", 2)
	if err != nil {
		t.Fatal(err)
	}
	best, ok := rep.Best()
	if !ok {
		t.Fatal("no OK point")
	}
	if !best.Settings[KnobConstant] {
		t.Errorf("tuner picked %s, expected the constant-memory variant on GT200", best.Label())
	}
	// Time-valued metric: Value must be inverted so higher is better.
	if best.Value <= 0 || best.Raw <= 0 || best.Value != 1/best.Raw {
		t.Error("seconds metric should be inverted for ranking")
	}
}

// TestTuneEverywhereSkipsCUDAOffNVIDIA.
func TestTuneEverywhere(t *testing.T) {
	reps, err := TuneEverywhere("cuda", "MD", 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 {
		t.Fatalf("CUDA tuning should cover the 2 NVIDIA GPUs, got %d", len(reps))
	}
	reps, err = TuneEverywhere("opencl", "Sobel", 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 5 {
		t.Fatalf("OpenCL tuning should cover all 5 devices, got %d", len(reps))
	}
	for _, r := range reps {
		if _, ok := r.Best(); !ok {
			t.Errorf("%s: no runnable Sobel variant", r.Device)
		}
	}
}

func TestPointLabel(t *testing.T) {
	p := Point{Settings: map[Knob]bool{KnobTexture: true, KnobVectorKernel: false}}
	want := "+texture-memory -warp-per-row"
	if got := p.Label(); got != want {
		t.Errorf("label = %q, want %q", got, want)
	}
	if (Point{}).Label() != "(no knobs)" {
		t.Error("empty label wrong")
	}
}

func TestKnobStrings(t *testing.T) {
	for k := KnobTexture; k <= KnobVectorKernel; k++ {
		if k.String() == "" {
			t.Error("knob without a name")
		}
	}
}
