package tune

// The pattern-schedule tuner: where the knob tuner sweeps the handful of
// step-4 implementation switches a programmer exposed by hand, this one
// sweeps the rewrite-rule space of a pattern program (internal/pattern) —
// block sizes, fusion, tree reduction, tiling, unrolling, coarsening,
// constant-memory coefficient placement. Every candidate is a real
// benchmark run through the full compiler+simulator stack; the perfmodel
// prior only orders the search and breaks ties deterministically.

import (
	"fmt"
	"sort"
	"sync"

	"gpucmp/internal/arch"
	"gpucmp/internal/bench"
	"gpucmp/internal/pattern"
	"gpucmp/internal/perfmodel"
)

// TunePattern sweeps a pattern-portable benchmark's schedule space on one
// device and returns every measured point, best first.
func TunePattern(toolchain string, a *arch.Device, benchName string, scale int) (*Report, error) {
	return tunePattern(toolchain, a, benchName, scale, 1)
}

// TunePatternParallel is TunePattern with concurrent candidate evaluation.
// The simulator is a deterministic function of the job, and the final sort
// is a total order (status, value, then mangle), so the report is
// point-for-point identical to the sequential tuner's.
func TunePatternParallel(toolchain string, a *arch.Device, benchName string, scale, workers int) (*Report, error) {
	if workers < 1 {
		workers = 1
	}
	return tunePattern(toolchain, a, benchName, scale, workers)
}

func tunePattern(toolchain string, a *arch.Device, benchName string, scale, workers int) (*Report, error) {
	spec, err := bench.SpecByName(benchName)
	if err != nil {
		return nil, err
	}
	p, ok := bench.PatternProgram(benchName)
	if !ok {
		return nil, fmt.Errorf("tune: benchmark %q has no pattern program", benchName)
	}
	space := pattern.Space(p)
	// Evaluate likely winners first: prior descending, mangle ascending as
	// the deterministic tie-break.
	sort.SliceStable(space, func(i, j int) bool {
		pi := perfmodel.PatternPrior(a, p.Kind(), space[i])
		pj := perfmodel.PatternPrior(a, p.Kind(), space[j])
		if pi != pj {
			return pi > pj
		}
		return space[i].Mangle() < space[j].Mangle()
	})

	rep := &Report{Benchmark: benchName, Device: a.Name, Toolchain: toolchain, Metric: spec.Metric, Space: "pattern"}
	points := make([]Point, len(space))
	errs := make([]error, len(space))

	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, s := range space {
		wg.Add(1)
		go func(i int, s pattern.Schedule) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			points[i], errs[i] = measurePattern(toolchain, a, spec, scale, s.Mangle())
		}(i, s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	rep.Points = points

	// Total order: OK before failed, then value descending, then mangle
	// ascending — so parallel and sequential runs produce identical reports.
	sort.Slice(rep.Points, func(i, j int) bool {
		pi, pj := rep.Points[i], rep.Points[j]
		if (pi.Status == "OK") != (pj.Status == "OK") {
			return pi.Status == "OK"
		}
		if pi.Value != pj.Value {
			return pi.Value > pj.Value
		}
		return pi.Pattern < pj.Pattern
	})
	return rep, nil
}

// measurePattern runs one schedule candidate on a fresh driver.
func measurePattern(toolchain string, a *arch.Device, spec bench.Spec, scale int, mangle string) (Point, error) {
	cfg := bench.Config{Scale: scale, Pattern: mangle}
	d, err := bench.NewDriver(toolchain, a)
	if err != nil {
		return Point{}, err
	}
	res, err := spec.Run(d, cfg)
	if err != nil {
		return Point{}, err
	}
	pt := Point{Pattern: mangle, Config: cfg, Status: res.Status(), Raw: res.Value}
	if res.Err == nil {
		pt.Value = res.Value
		if spec.LowerIsBetter && res.Value > 0 {
			pt.Value = 1 / res.Value
		}
	}
	return pt, nil
}

// TuneAny tunes whichever variant space a benchmark has: the rewrite-rule
// schedule space for pattern-portable benchmarks, the step-4 knob space
// otherwise.
func TuneAny(toolchain string, a *arch.Device, benchName string, scale, workers int) (*Report, error) {
	if bench.IsPatternBench(benchName) {
		return TunePatternParallel(toolchain, a, benchName, scale, workers)
	}
	if RelevantKnobs(benchName) == nil {
		return nil, fmt.Errorf("tune: benchmark %q has neither variant knobs nor a pattern program", benchName)
	}
	return Tune(toolchain, a, benchName, scale)
}

// TuneAnyEverywhere runs TuneAny on every device that supports the
// toolchain — the "adapt to all available platforms" loop, now covering
// the pattern benchmarks too.
func TuneAnyEverywhere(toolchain, benchName string, scale, workers int) ([]*Report, error) {
	var out []*Report
	for _, a := range arch.All() {
		if toolchain == "cuda" && a.Vendor != "NVIDIA" {
			continue
		}
		r, err := TuneAny(toolchain, a, benchName, scale, workers)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
