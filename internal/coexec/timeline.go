package coexec

// engine models one device's three hardware queues — an upload (h2d) DMA
// engine, the compute engine, and a download (d2h) DMA engine — so the
// report can state both the overlapped makespan and the fully serialised
// one. With a single shared copy engine no overlap is ever possible here
// (the next shard's upload queues behind the previous shard's download,
// which waits on its kernel), so the model follows the dual-copy-engine
// topology async CUDA streams schedule against: shard k+1's input copy
// runs while shard k computes, and shard k's output copy drains while
// shard k+1 computes.
type engine struct {
	h2dT  float64 // upload-engine clock
	compT float64 // compute-engine clock
	d2hT  float64 // download-engine clock
	busy  float64 // serialised sum of all shard costs

	h2d, ker, d2h float64 // per-phase sums, for the device report
}

func (e *engine) add(t Times) {
	e.h2d += t.H2D
	e.ker += t.Kernel
	e.d2h += t.D2H
	h2dDone := e.h2dT + t.H2D
	e.h2dT = h2dDone
	compStart := e.compT
	if h2dDone > compStart {
		compStart = h2dDone
	}
	compDone := compStart + t.Kernel
	e.compT = compDone
	d2hStart := e.d2hT
	if compDone > d2hStart {
		d2hStart = compDone
	}
	e.d2hT = d2hStart + t.D2H
	e.busy += t.Total()
}

// span returns the overlapped timeline length.
func (e *engine) span() float64 {
	s := e.h2dT
	if e.compT > s {
		s = e.compT
	}
	if e.d2hT > s {
		s = e.d2hT
	}
	return s
}
