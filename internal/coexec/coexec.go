package coexec

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"gpucmp/internal/arch"
	"gpucmp/internal/fault"
)

// ErrNoDevices is returned when Run is given an empty device set.
var ErrNoDevices = errors.New("coexec: no devices")

// ShardError is the typed permanent failure for one shard: its retry
// budget ran out on every device it was offered to. It wraps the last
// underlying error, so errors.Is sees fault.ErrTransfer and friends.
type ShardError struct {
	Shard    int
	Device   string
	Attempts int
	Err      error
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("coexec: shard %d failed permanently on %s after %d attempts: %v",
		e.Shard, e.Device, e.Attempts, e.Err)
}

func (e *ShardError) Unwrap() error { return e.Err }

// Options configures one co-execution run.
type Options struct {
	// Devices are the co-executing devices. At least one is required.
	Devices []*arch.Device
	// Toolchains pairs each device with a runtime ("cuda"/"opencl").
	// Empty = ToolchainFor each device (CUDA on NVIDIA, OpenCL elsewhere).
	Toolchains []string
	// ShardsPerDevice scales the shard count: shards = ShardsPerDevice *
	// len(Devices), clamped to the unit count (default 4). More shards
	// than devices is what makes redistribution and load balancing work.
	ShardsPerDevice int
	// Weights skews the static shard assignment: device i gets a share of
	// the shards proportional to Weights[i] (len must match Devices;
	// non-positive entries count as the smallest positive weight). Empty =
	// equal shares. Callers typically weight by transfer-inclusive
	// single-device speed, so the static split finishes together.
	Weights []float64
	// MaxAttempts bounds one shard's dispatch count before the run fails
	// with a ShardError (default 16). Set it above the injector's
	// MaxPerKey plus the device count: transfer faults are capped per
	// shard across devices, and each device can die at most once.
	MaxAttempts int
	// BaseDelay/MaxDelay shape the capped exponential backoff between
	// retries of a failed shard (defaults 200µs / 5ms).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// StragglerAfter is how long a shard may stay in flight on one device
	// before a duplicate is dispatched to the survivors; first completion
	// wins, bit-identically (default 100ms, <0 disables).
	StragglerAfter time.Duration
	// Injector supplies the deterministic per-(seed,device,shard) fault
	// schedule (nil = no faults).
	Injector *fault.Injector
	// Metrics accumulates per-device counters across runs (nil = none).
	Metrics *Metrics
	// Kill maps a device name to a completed-shard count after which the
	// device is deterministically lost — the reproducible mid-run kill
	// the CI smoke and the recovery-overhead benchmark use.
	Kill map[string]int
}

// DeviceReport is one device's share of a finished run.
type DeviceReport struct {
	Device    string `json:"device"`
	Toolchain string `json:"toolchain"`

	Shards          int  `json:"shards"`          // attempts completed here (incl. discarded duplicates)
	Retries         int  `json:"retries"`         // failed attempts retried from here
	Redistributions int  `json:"redistributions"` // shards completed here after first trying elsewhere
	Lost            bool `json:"lost,omitempty"`

	SetupSeconds  float64 `json:"setup_seconds"`
	H2DSeconds    float64 `json:"h2d_seconds"`
	KernelSeconds float64 `json:"kernel_seconds"`
	D2HSeconds    float64 `json:"d2h_seconds"`
	// BusySeconds serialises every phase; SpanSeconds overlaps copies
	// with compute on the two-engine timeline.
	BusySeconds float64 `json:"busy_seconds"`
	SpanSeconds float64 `json:"span_seconds"`
}

// Report describes a finished co-execution run.
type Report struct {
	Workload string         `json:"workload"`
	Units    int            `json:"units"`
	Shards   int            `json:"shards"`
	Devices  []DeviceReport `json:"devices"`

	// Lost names the devices that died mid-run; Degraded marks a run that
	// completed without its full device set — the typed degraded marker
	// the server surfaces.
	Lost          []string `json:"lost,omitempty"`
	Degraded      bool     `json:"degraded,omitempty"`
	DegradedCause string   `json:"degraded_cause,omitempty"`

	Retries         int `json:"retries"`
	Redistributions int `json:"redistributions"`
	Stragglers      int `json:"stragglers"`

	// MakespanSeconds is the simulated end-to-end time with copy/compute
	// overlap; NoOverlapSeconds is the same schedule with every phase
	// serialised per device (the overlap win is the difference).
	MakespanSeconds  float64 `json:"makespan_seconds"`
	NoOverlapSeconds float64 `json:"no_overlap_seconds"`
}

type shardRange struct{ lo, hi int }

// runner is the shared state of one Run call.
type runner struct {
	w      Workload
	opts   Options
	names  []string // unique per-device injector keys ("i:Name")
	tcs    []string
	insts  []Instance
	shards []shardRange

	stop chan struct{} // closed exactly once when the run is over

	mu sync.Mutex
	// queues[i] is device i's backlog. Assignment is static (weighted
	// deal at startup) so the simulated makespan is deterministic: shards
	// move between devices only on faults, device loss and straggler
	// migration — never because of host-scheduler timing.
	queues [][]int
	// wake[i] signals worker i that its queue gained a shard (buffered 1;
	// a pending signal is never lost).
	wake []chan struct{}

	outputs      [][]uint32
	completed    int
	attempts     []int
	firstDev     []int
	inflightAt   []time.Time
	inflightDev  []int
	dups         []int // straggler duplicates dispatched per shard
	alive        []bool
	aliveCount   int
	killArmed    []bool
	completedOn  []int
	retriesOn    []int
	redistOn     []int
	stragglerCnt int
	engines      []engine
	lost         []string
	failure      error
	allDone      chan struct{}
	failed       chan struct{}
}

// Run partitions the workload into shards, co-executes them across the
// devices, and returns the merged output words plus the run report. The
// merged output is bit-identical to Oracle() on any single device, under
// any injected failure schedule, because shards carry no cross-shard
// state and the simulator itself is bit-exact.
//
// Cancellation: when ctx is cancelled, every in-flight simulated kernel
// on every device is killed (sim.Device.Cancel) and Run returns ctx.Err()
// wrapped; no goroutine outlives the call.
func Run(ctx context.Context, w Workload, opts Options) ([]uint32, *Report, error) {
	nd := len(opts.Devices)
	if nd == 0 {
		return nil, nil, ErrNoDevices
	}
	spd := opts.ShardsPerDevice
	if spd <= 0 {
		spd = 4
	}
	nShards := spd * nd
	if nShards > w.Units() {
		nShards = w.Units()
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 16
	}
	if opts.BaseDelay <= 0 {
		opts.BaseDelay = 200 * time.Microsecond
	}
	if opts.MaxDelay <= 0 {
		opts.MaxDelay = 5 * time.Millisecond
	}
	if opts.StragglerAfter == 0 {
		opts.StragglerAfter = 100 * time.Millisecond
	}

	r := &runner{
		w:           w,
		opts:        opts,
		names:       make([]string, nd),
		tcs:         make([]string, nd),
		insts:       make([]Instance, nd),
		shards:      make([]shardRange, nShards),
		queues:      make([][]int, nd),
		wake:        make([]chan struct{}, nd),
		stop:        make(chan struct{}),
		outputs:     make([][]uint32, nShards),
		attempts:    make([]int, nShards),
		firstDev:    make([]int, nShards),
		inflightAt:  make([]time.Time, nShards),
		inflightDev: make([]int, nShards),
		dups:        make([]int, nShards),
		alive:       make([]bool, nd),
		aliveCount:  nd,
		killArmed:   make([]bool, nd),
		completedOn: make([]int, nd),
		retriesOn:   make([]int, nd),
		redistOn:    make([]int, nd),
		engines:     make([]engine, nd),
		allDone:     make(chan struct{}),
		failed:      make(chan struct{}),
	}
	for i, a := range opts.Devices {
		tc := ""
		if i < len(opts.Toolchains) {
			tc = opts.Toolchains[i]
		}
		if tc == "" {
			tc = ToolchainFor(a)
		}
		inst, err := w.NewInstance(tc, a)
		if err != nil {
			return nil, nil, fmt.Errorf("coexec: open %s on %s: %w", w.Name(), a.Name, err)
		}
		r.names[i] = fmt.Sprintf("%d:%s", i, a.Name)
		r.tcs[i] = tc
		r.insts[i] = inst
		r.alive[i] = true
		r.wake[i] = make(chan struct{}, 1)
		_, r.killArmed[i] = opts.Kill[a.Name]
	}
	// Contiguous even split of units into shards.
	per, rem := w.Units()/nShards, w.Units()%nShards
	lo := 0
	for s := range r.shards {
		hi := lo + per
		if s < rem {
			hi++
		}
		r.shards[s] = shardRange{lo, hi}
		r.firstDev[s] = -1
		r.inflightDev[s] = -1
		lo = hi
	}
	// Static weighted assignment: device i gets a contiguous block of
	// shards sized by its weight share (largest-remainder rounding), so
	// which device runs which shard never depends on host timing.
	next := 0
	for i, count := range weightedCounts(nShards, nd, opts.Weights) {
		for k := 0; k < count; k++ {
			r.queues[i] = append(r.queues[i], next)
			next++
		}
	}

	var wg sync.WaitGroup
	for i := 0; i < nd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r.worker(ctx, i)
		}(i)
	}
	if opts.StragglerAfter > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.stragglerWatch()
		}()
	}

	select {
	case <-r.allDone:
	case <-r.failed:
	case <-ctx.Done():
	}
	close(r.stop)
	// Kill in-flight simulated kernels so blocked workers return promptly;
	// the run is over either way.
	for _, inst := range r.insts {
		if dev := inst.SimDevice(); dev != nil {
			dev.Cancel()
		}
	}
	wg.Wait()

	rep := r.report()
	if err := ctx.Err(); err != nil {
		return nil, rep, fmt.Errorf("coexec: run cancelled: %w", err)
	}
	r.mu.Lock()
	failure := r.failure
	r.mu.Unlock()
	if failure != nil {
		return nil, rep, failure
	}

	// Merge checkpointed shard outputs in shard order.
	out := make([]uint32, w.Units()*w.WordsPerUnit())
	for s, sh := range r.shards {
		copy(out[sh.lo*w.WordsPerUnit():], r.outputs[s])
	}
	return out, rep, nil
}

// weightedCounts splits n shards across nd devices proportionally to the
// weights (equal shares when empty), using largest-remainder rounding so
// the counts always sum to n.
func weightedCounts(n, nd int, weights []float64) []int {
	w := make([]float64, nd)
	var sum float64
	minPos := 0.0
	for i := 0; i < nd; i++ {
		if i < len(weights) && weights[i] > 0 {
			w[i] = weights[i]
			if minPos == 0 || w[i] < minPos {
				minPos = w[i]
			}
		}
	}
	for i := range w {
		if w[i] <= 0 {
			if minPos > 0 {
				w[i] = minPos
			} else {
				w[i] = 1
			}
		}
		sum += w[i]
	}
	counts := make([]int, nd)
	type rem struct {
		i    int
		frac float64
	}
	rems := make([]rem, nd)
	assigned := 0
	for i := range w {
		exact := float64(n) * w[i] / sum
		counts[i] = int(exact)
		assigned += counts[i]
		rems[i] = rem{i, exact - float64(counts[i])}
	}
	sort.SliceStable(rems, func(a, b int) bool { return rems[a].frac > rems[b].frac })
	for k := 0; assigned < n; k++ {
		counts[rems[k%nd].i]++
		assigned++
	}
	return counts
}

// worker serially executes shards from device i's own queue until the run
// stops or the device is lost. It never steals: shards arrive only via the
// static assignment, fault redistribution or straggler migration, keeping
// the simulated schedule independent of host timing.
func (r *runner) worker(ctx context.Context, i int) {
	for {
		r.mu.Lock()
		if !r.alive[i] {
			r.mu.Unlock()
			return
		}
		s := -1
		if len(r.queues[i]) > 0 {
			s = r.queues[i][0]
			r.queues[i] = r.queues[i][1:]
		}
		r.mu.Unlock()
		if s < 0 {
			select {
			case <-r.stop:
				return
			case <-r.wake[i]:
				continue
			}
		}
		if !r.process(ctx, i, s) {
			return
		}
	}
}

// process runs one dequeued shard on device i; it returns false when the
// device died and the worker must exit.
func (r *runner) process(ctx context.Context, i, s int) bool {
	name := r.names[i]
	sh := r.shards[s]
	shardKey := fmt.Sprintf("%s/%d", r.w.Name(), s)

	r.mu.Lock()
	if r.outputs[s] != nil {
		r.mu.Unlock()
		return true // duplicate of a checkpointed shard: never recompute
	}
	attempt := r.attempts[s]
	r.attempts[s]++
	if r.firstDev[s] < 0 {
		r.firstDev[s] = i
	}
	r.inflightAt[s] = time.Now()
	r.inflightDev[s] = i

	// Deterministic mid-run kill, armed per device by Options.Kill.
	if r.killArmed[i] && r.completedOn[i] >= r.opts.Kill[r.opts.Devices[i].Name] {
		r.killArmed[i] = false
		if killed := r.loseDeviceLocked(i, s); killed {
			r.mu.Unlock()
			return false
		}
	}
	r.mu.Unlock()

	// Deterministic injected shard fault.
	if f := r.opts.Injector.ShardLaunch(name, shardKey); f != nil {
		switch f.Kind {
		case fault.KindDeviceLost:
			r.mu.Lock()
			killed := r.loseDeviceLocked(i, s)
			r.mu.Unlock()
			if killed {
				return false
			}
			// Survivor guard: the last living device shrugs the fault off —
			// losing it would be process-fatal, outside the recovery model.
		case fault.KindTransferError:
			r.opts.Metrics.addTransfer(name)
			return r.retry(i, s, attempt, f.Err)
		}
	}

	out, times, err := r.insts[i].RunUnits(sh.lo, sh.hi)
	if err != nil {
		select {
		case <-r.stop:
			return false // cancelled or finished; the error is an artifact
		default:
		}
		if ctx.Err() != nil {
			return false
		}
		return r.retry(i, s, attempt, err)
	}

	r.mu.Lock()
	r.inflightAt[s] = time.Time{}
	r.inflightDev[s] = -1
	r.completedOn[i]++
	r.engines[i].add(times)
	if r.outputs[s] == nil {
		r.outputs[s] = out
		r.completed++
		if r.firstDev[s] != i {
			r.redistOn[i]++
			r.opts.Metrics.addRedist(name)
		}
		if r.completed == len(r.shards) {
			close(r.allDone)
		}
	}
	r.mu.Unlock()
	r.opts.Metrics.addShard(name)
	return true
}

// pushLocked appends shard s to device dev's queue and signals its worker.
// Callers must hold r.mu.
func (r *runner) pushLocked(dev, s int) {
	r.queues[dev] = append(r.queues[dev], s)
	select {
	case r.wake[dev] <- struct{}{}:
	default: // a wakeup is already pending
	}
}

// targetLocked picks the alive device with the least weighted backlog —
// queue length divided by the device's speed weight, so a slow device is
// not handed the same share of orphaned work as a fast one — preferring
// any device other than `not` (pass -1 for no preference). Callers must
// hold r.mu. Returns -1 only if nothing is alive (impossible: the survivor
// guard keeps at least one device up).
func (r *runner) targetLocked(not int) int {
	best, bestScore := -1, 0.0
	for i := range r.queues {
		if !r.alive[i] || i == not {
			continue
		}
		w := 1.0
		if i < len(r.opts.Weights) && r.opts.Weights[i] > 0 {
			w = r.opts.Weights[i]
		}
		score := float64(len(r.queues[i])+1) / w
		if best < 0 || score < bestScore {
			best, bestScore = i, score
		}
	}
	if best < 0 && not >= 0 && r.alive[not] {
		best = not // sole survivor: it takes its own retry
	}
	return best
}

// loseDeviceLocked marks device i dead, redistributes its entire backlog
// plus its current shard to the survivors, unless it is the last survivor
// (the guard that keeps every failure schedule completable). Returns
// whether the device actually died.
func (r *runner) loseDeviceLocked(i, s int) bool {
	if r.aliveCount <= 1 || !r.alive[i] {
		return false
	}
	r.alive[i] = false
	r.aliveCount--
	r.lost = append(r.lost, r.opts.Devices[i].Name)
	r.inflightAt[s] = time.Time{}
	r.inflightDev[s] = -1
	r.opts.Metrics.markLost(r.names[i])
	orphans := append([]int{s}, r.queues[i]...)
	r.queues[i] = nil
	for _, o := range orphans {
		// Work the dead device never started still counts as its own for
		// redistribution accounting: completing it elsewhere IS the
		// redistribution the report and /metrics surface.
		if r.firstDev[o] < 0 {
			r.firstDev[o] = i
		}
	}
	// Deal the orphans to the survivors proportionally to their weights —
	// NOT by live queue depth, which reflects how far each worker happens
	// to have drained its backlog at this wall-clock instant and would
	// make the simulated post-loss makespan wobble run to run. The orphan
	// set is deterministic (static queues), so this keeps a killed run's
	// report byte-stable.
	alive := make([]int, 0, len(r.queues))
	weights := make([]float64, 0, len(r.queues))
	for j := range r.queues {
		if r.alive[j] {
			alive = append(alive, j)
			w := 0.0
			if j < len(r.opts.Weights) {
				w = r.opts.Weights[j]
			}
			weights = append(weights, w)
		}
	}
	next := 0
	for k, count := range weightedCounts(len(orphans), len(alive), weights) {
		for c := 0; c < count; c++ {
			r.pushLocked(alive[k], orphans[next])
			next++
		}
	}
	return true
}

// retry backs a failed shard attempt off (capped exponential, interruptible)
// and requeues it for any surviving device; it fails the whole run with a
// typed ShardError once the shard's attempt budget is spent.
func (r *runner) retry(i, s, attempt int, cause error) bool {
	name := r.names[i]
	r.mu.Lock()
	r.inflightAt[s] = time.Time{}
	r.inflightDev[s] = -1
	if r.attempts[s] >= r.opts.MaxAttempts {
		if r.failure == nil {
			r.failure = &ShardError{Shard: s, Device: r.opts.Devices[i].Name, Attempts: r.attempts[s], Err: cause}
			close(r.failed)
		}
		r.mu.Unlock()
		return false
	}
	r.retriesOn[i]++
	r.mu.Unlock()
	r.opts.Metrics.addRetry(name)

	delay := r.opts.BaseDelay << uint(attempt)
	if delay > r.opts.MaxDelay || delay <= 0 {
		delay = r.opts.MaxDelay
	}
	t := time.NewTimer(delay)
	defer t.Stop()
	select {
	case <-t.C:
	case <-r.stop:
		return false
	}
	// Redistribution-by-default: offer the retried shard to the least
	// loaded other device; the failing device takes it back only when it
	// is the sole survivor.
	r.mu.Lock()
	if t := r.targetLocked(i); t >= 0 {
		r.pushLocked(t, s)
	}
	r.mu.Unlock()
	return true
}

// stragglerWatch handles devices that are slow in wall-clock terms: a
// shard stuck in flight longer than StragglerAfter is duplicated onto
// another device (first completion wins; the checkpoint map makes the
// duplicate harmless), and the straggling device's queued-but-unstarted
// backlog is migrated away so one wedged device cannot starve the run.
func (r *runner) stragglerWatch() {
	period := r.opts.StragglerAfter / 4
	if period <= 0 {
		period = time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-r.stop:
			return
		case now := <-tick.C:
			r.mu.Lock()
			for s := range r.shards {
				if r.outputs[s] != nil || r.inflightAt[s].IsZero() {
					continue
				}
				if now.Sub(r.inflightAt[s]) < r.opts.StragglerAfter {
					continue
				}
				if r.dups[s] >= len(r.opts.Devices)-1 {
					continue // every other device already has a copy queued
				}
				dev := r.inflightDev[s]
				t := r.targetLocked(dev)
				if t < 0 || t == dev {
					continue // nowhere else to run it
				}
				r.dups[s]++
				r.stragglerCnt++
				if dev >= 0 {
					r.opts.Metrics.addStraggler(r.names[dev])
					// Migrate the wedged device's unstarted backlog too.
					for _, q := range r.queues[dev] {
						r.pushLocked(r.targetLocked(dev), q)
					}
					r.queues[dev] = nil
				}
				r.pushLocked(t, s)
			}
			r.mu.Unlock()
		}
	}
}

// report assembles the per-device and aggregate view of the run.
func (r *runner) report() *Report {
	r.mu.Lock()
	defer r.mu.Unlock()
	rep := &Report{
		Workload: r.w.Name(),
		Units:    r.w.Units(),
		Shards:   len(r.shards),
		Lost:     append([]string(nil), r.lost...),
	}
	for i, a := range r.opts.Devices {
		e := &r.engines[i]
		setup := r.insts[i].SetupSeconds()
		dr := DeviceReport{
			Device:          a.Name,
			Toolchain:       r.tcs[i],
			Shards:          r.completedOn[i],
			Retries:         r.retriesOn[i],
			Redistributions: r.redistOn[i],
			Lost:            !r.alive[i],
			SetupSeconds:    setup,
			H2DSeconds:      e.h2d,
			KernelSeconds:   e.ker,
			D2HSeconds:      e.d2h,
			BusySeconds:     setup + e.busy,
			SpanSeconds:     setup + e.span(),
		}
		rep.Devices = append(rep.Devices, dr)
		rep.Retries += dr.Retries
		rep.Redistributions += dr.Redistributions
		if dr.SpanSeconds > rep.MakespanSeconds {
			rep.MakespanSeconds = dr.SpanSeconds
		}
		if dr.BusySeconds > rep.NoOverlapSeconds {
			rep.NoOverlapSeconds = dr.BusySeconds
		}
	}
	rep.Stragglers = r.stragglerCnt
	if len(rep.Lost) > 0 {
		rep.Degraded = true
		rep.DegradedCause = "device lost mid-run: " + rep.Lost[0]
	}
	return rep
}
