package coexec

import (
	"fmt"
	"strings"

	"gpucmp/internal/arch"
	"gpucmp/internal/bench"
	"gpucmp/internal/kir"
	"gpucmp/internal/sim"
	"gpucmp/internal/workload"
)

// Named constructs a co-execution workload by wire name at the given
// problem size: "vecadd" (size = unit count), "sobel" (size x size image)
// or "mxm" (size x size matrices). It is the vocabulary POST /coexec and
// cmd/coexecbench share.
func Named(name string, size int) (Workload, error) {
	if size < 1 {
		return nil, fmt.Errorf("coexec: workload size %d: want >= 1", size)
	}
	switch strings.ToLower(name) {
	case "vecadd":
		return VecAdd(size), nil
	case "sobel":
		return SobelRows(size, size), nil
	case "mxm":
		return MxMRows(size), nil
	}
	return nil, fmt.Errorf("coexec: unknown workload %q (want vecadd, sobel or mxm)", name)
}

// NamedWorkloads lists the wire names Named accepts.
func NamedWorkloads() []string { return []string{"vecadd", "sobel", "mxm"} }

// ---------------------------------------------------------------------------
// VecAdd: c[i] = a[i]*1.5 + b[i]. Unit = 256 contiguous elements. The
// transfer-dominated extreme: three words moved per two flops.
// ---------------------------------------------------------------------------

const vecAddUnit = 256

// VecAdd builds the saxpy-style workload with the given unit count.
func VecAdd(units int) Workload { return &vecAdd{units: units} }

type vecAdd struct{ units int }

func (w *vecAdd) Name() string      { return "VecAdd" }
func (w *vecAdd) Units() int        { return w.units }
func (w *vecAdd) WordsPerUnit() int { return vecAddUnit }

func vecAddKernel() *kir.Kernel {
	b := kir.NewKernel("covecadd")
	a := b.GlobalBuffer("a", kir.F32)
	bb := b.GlobalBuffer("b", kir.F32)
	c := b.GlobalBuffer("c", kir.F32)
	lo := b.ScalarParam("lo", kir.U32)
	n := b.ScalarParam("n", kir.U32)
	i := b.Declare("i", b.GlobalIDX())
	b.If(kir.Lt(i, n), func() {
		g := b.Declare("g", kir.Add(i, lo))
		b.Store(c, g, kir.Add(kir.Mul(b.Load(a, g), kir.F(1.5)), b.Load(bb, g)))
	})
	return b.MustBuild()
}

type vecAddInstance struct {
	instance
	w       *vecAdd
	hostA   []uint32
	hostB   []uint32
	a, b, c bench.Buf
}

func (w *vecAdd) NewInstance(toolchain string, dev *arch.Device) (Instance, error) {
	d, err := bench.NewDriver(toolchain, dev)
	if err != nil {
		return nil, err
	}
	mod, err := d.Build(vecAddKernel())
	if err != nil {
		return nil, err
	}
	nElem := w.units * vecAddUnit
	rng := workload.NewRNG(101)
	in := &vecAddInstance{
		instance: instance{d: d, mod: mod},
		w:        w,
		hostA:    f32Words(rng.Floats(nElem, -1, 1)),
		hostB:    f32Words(rng.Floats(nElem, -1, 1)),
	}
	bytes := uint32(4 * nElem)
	for _, p := range []*bench.Buf{&in.a, &in.b, &in.c} {
		if *p, err = d.Alloc(bytes); err != nil {
			return nil, err
		}
	}
	return in, nil
}

func (in *vecAddInstance) RunUnits(lo, hi int) ([]uint32, Times, error) {
	if err := checkRange(in.w, lo, hi); err != nil {
		return nil, Times{}, err
	}
	eLo, eHi := lo*vecAddUnit, hi*vecAddUnit
	n := eHi - eLo
	out := make([]uint32, n)
	t, err := in.splitTimer(
		func() error {
			if err := in.d.Write(subBuf(in.a, eLo, eHi), in.hostA[eLo:eHi]); err != nil {
				return err
			}
			return in.d.Write(subBuf(in.b, eLo, eHi), in.hostB[eLo:eHi])
		},
		func() error {
			grid := sim.Dim3{X: ceilDiv(n, coexecBlock), Y: 1}
			block := sim.Dim3{X: coexecBlock, Y: 1}
			return in.d.Launch(in.mod, "covecadd", grid, block,
				bench.B(in.a), bench.B(in.b), bench.B(in.c),
				bench.V(uint32(eLo)), bench.V(uint32(n)))
		},
		func() error { return in.d.Read(out, subBuf(in.c, eLo, eHi)) },
	)
	if err != nil {
		return nil, t, err
	}
	return out, t, nil
}

// ---------------------------------------------------------------------------
// SobelRows: the paper's Sobel-X filter with unit = one image row. Shards
// write their input rows plus a one-row halo; border rows stay zero, as in
// the single-device benchmark.
// ---------------------------------------------------------------------------

// SobelRows builds the row-sharded Sobel workload on a w x h image.
func SobelRows(w, h int) Workload { return &sobelRows{w: w, h: h} }

type sobelRows struct{ w, h int }

func (s *sobelRows) Name() string      { return "Sobel" }
func (s *sobelRows) Units() int        { return s.h }
func (s *sobelRows) WordsPerUnit() int { return s.w }

func sobelRowKernel() *kir.Kernel {
	b := kir.NewKernel("cosobel")
	img := b.GlobalBuffer("img", kir.F32)
	filt := b.GlobalBuffer("filt", kir.F32)
	out := b.GlobalBuffer("out", kir.F32)
	w := b.ScalarParam("w", kir.U32)
	h := b.ScalarParam("h", kir.U32)
	y0 := b.ScalarParam("y0", kir.U32)

	x := b.Declare("x", b.GlobalIDX())
	y := b.Declare("y", kir.Add(b.GlobalIDY(), y0))
	inside := kir.LAnd(
		kir.LAnd(kir.Ge(x, kir.U(1)), kir.Lt(x, kir.Sub(w, kir.U(1)))),
		kir.LAnd(kir.Ge(y, kir.U(1)), kir.Lt(y, kir.Sub(h, kir.U(1)))))
	b.If(inside, func() {
		sum := b.Declare("sum", kir.F(0))
		b.ForUnroll("fy", kir.U(0), kir.U(3), kir.U(1), kir.UnrollFull, func(fy kir.Expr) {
			b.ForUnroll("fx", kir.U(0), kir.U(3), kir.U(1), kir.UnrollFull, func(fx kir.Expr) {
				row := kir.Sub(kir.Add(y, fy), kir.U(1))
				col := kir.Sub(kir.Add(x, fx), kir.U(1))
				pix := b.Load(img, kir.Add(kir.Mul(row, w), col))
				coef := b.Load(filt, kir.Add(kir.Mul(fy, kir.U(3)), fx))
				b.Assign(sum, kir.Add(sum, kir.Mul(pix, coef)))
			})
		})
		b.Store(out, kir.Add(kir.Mul(y, w), x), sum)
	})
	return b.MustBuild()
}

type sobelInstance struct {
	instance
	w              *sobelRows
	hostImg        []uint32
	img, filt, out bench.Buf
}

func (s *sobelRows) NewInstance(toolchain string, dev *arch.Device) (Instance, error) {
	d, err := bench.NewDriver(toolchain, dev)
	if err != nil {
		return nil, err
	}
	mod, err := d.Build(sobelRowKernel())
	if err != nil {
		return nil, err
	}
	in := &sobelInstance{
		instance: instance{d: d, mod: mod},
		w:        s,
		hostImg:  f32Words(workload.GrayImage(s.w, s.h, 11)),
	}
	if in.img, err = d.Alloc(uint32(4 * s.w * s.h)); err != nil {
		return nil, err
	}
	if in.out, err = d.Alloc(uint32(4 * s.w * s.h)); err != nil {
		return nil, err
	}
	filt, err := d.Alloc(uint32(4 * 9))
	if err != nil {
		return nil, err
	}
	// Broadcast inputs: the 3x3 filter plus the zeroed output plane (border
	// rows are never written by the kernel and must read back as zeros).
	d.ResetTimer()
	if err := d.Write(filt, f32Words([]float32{-1, 0, 1, -2, 0, 2, -1, 0, 1})); err != nil {
		return nil, err
	}
	if err := d.Write(in.out, make([]uint32, s.w*s.h)); err != nil {
		return nil, err
	}
	in.filt = filt
	in.setup = d.Elapsed()
	return in, nil
}

func (in *sobelInstance) RunUnits(lo, hi int) ([]uint32, Times, error) {
	s := in.w
	if err := checkRange(s, lo, hi); err != nil {
		return nil, Times{}, err
	}
	// Input rows with a one-row halo on each side.
	iLo, iHi := lo-1, hi+1
	if iLo < 0 {
		iLo = 0
	}
	if iHi > s.h {
		iHi = s.h
	}
	out := make([]uint32, (hi-lo)*s.w)
	t, err := in.splitTimer(
		func() error {
			return in.d.Write(subBuf(in.img, iLo*s.w, iHi*s.w), in.hostImg[iLo*s.w:iHi*s.w])
		},
		func() error {
			grid := sim.Dim3{X: ceilDiv(s.w, coexecBlock), Y: hi - lo}
			block := sim.Dim3{X: coexecBlock, Y: 1}
			return in.d.Launch(in.mod, "cosobel", grid, block,
				bench.B(in.img), bench.B(in.filt), bench.B(in.out),
				bench.V(uint32(s.w)), bench.V(uint32(s.h)), bench.V(uint32(lo)))
		},
		func() error { return in.d.Read(out, subBuf(in.out, lo*s.w, hi*s.w)) },
	)
	if err != nil {
		return nil, t, err
	}
	return out, t, nil
}

// ---------------------------------------------------------------------------
// MxMRows: naive (shared-memory-free) SGEMM with unit = one row of C. The
// B matrix is broadcast at instance setup; each shard ships its A rows and
// reads back its C rows. k-ascending accumulation keeps the bits identical
// on every device and under every shard split.
// ---------------------------------------------------------------------------

// MxMRows builds the row-sharded matrix-multiply workload (C = A*B, n x n).
func MxMRows(n int) Workload { return &mxmRows{n: n} }

type mxmRows struct{ n int }

func (m *mxmRows) Name() string      { return "MxM" }
func (m *mxmRows) Units() int        { return m.n }
func (m *mxmRows) WordsPerUnit() int { return m.n }

func mxmRowKernel() *kir.Kernel {
	b := kir.NewKernel("comxm")
	a := b.GlobalBuffer("A", kir.F32)
	bb := b.GlobalBuffer("B", kir.F32)
	c := b.GlobalBuffer("C", kir.F32)
	n := b.ScalarParam("n", kir.U32)
	row0 := b.ScalarParam("row0", kir.U32)

	col := b.Declare("col", b.GlobalIDX())
	row := b.Declare("row", kir.Add(b.GlobalIDY(), row0))
	b.If(kir.Lt(col, n), func() {
		acc := b.Declare("acc", kir.F(0))
		b.For("k", kir.U(0), n, kir.U(1), func(k kir.Expr) {
			b.Assign(acc, kir.Add(acc, kir.Mul(
				b.Load(a, kir.Add(kir.Mul(row, n), k)),
				b.Load(bb, kir.Add(kir.Mul(k, n), col)))))
		})
		b.Store(c, kir.Add(kir.Mul(row, n), col), acc)
	})
	return b.MustBuild()
}

type mxmInstance struct {
	instance
	w       *mxmRows
	hostA   []uint32
	a, b, c bench.Buf
}

func (m *mxmRows) NewInstance(toolchain string, dev *arch.Device) (Instance, error) {
	d, err := bench.NewDriver(toolchain, dev)
	if err != nil {
		return nil, err
	}
	mod, err := d.Build(mxmRowKernel())
	if err != nil {
		return nil, err
	}
	rng := workload.NewRNG(41)
	in := &mxmInstance{
		instance: instance{d: d, mod: mod},
		w:        m,
		hostA:    f32Words(rng.Floats(m.n*m.n, -1, 1)),
	}
	hostB := f32Words(rng.Floats(m.n*m.n, -1, 1))
	bytes := uint32(4 * m.n * m.n)
	for _, p := range []*bench.Buf{&in.a, &in.b, &in.c} {
		if *p, err = d.Alloc(bytes); err != nil {
			return nil, err
		}
	}
	// Broadcast input: every shard needs all of B.
	d.ResetTimer()
	if err := d.Write(in.b, hostB); err != nil {
		return nil, err
	}
	in.setup = d.Elapsed()
	return in, nil
}

func (in *mxmInstance) RunUnits(lo, hi int) ([]uint32, Times, error) {
	m := in.w
	if err := checkRange(m, lo, hi); err != nil {
		return nil, Times{}, err
	}
	out := make([]uint32, (hi-lo)*m.n)
	t, err := in.splitTimer(
		func() error {
			return in.d.Write(subBuf(in.a, lo*m.n, hi*m.n), in.hostA[lo*m.n:hi*m.n])
		},
		func() error {
			grid := sim.Dim3{X: ceilDiv(m.n, coexecBlock), Y: hi - lo}
			block := sim.Dim3{X: coexecBlock, Y: 1}
			return in.d.Launch(in.mod, "comxm", grid, block,
				bench.B(in.a), bench.B(in.b), bench.B(in.c),
				bench.V(uint32(m.n)), bench.V(uint32(lo)))
		},
		func() error { return in.d.Read(out, subBuf(in.c, lo*m.n, hi*m.n)) },
	)
	if err != nil {
		return nil, t, err
	}
	return out, t, nil
}
