// Package coexec splits one benchmark launch across several modelled
// devices in the same process — the CUDA+OpenCL co-execution pattern of
// SNIPPETS.md §3 — with transfer-inclusive accounting and fault-tolerant
// shard scheduling. A workload is partitioned into contiguous shards of
// independent units; each device runs shards through its own simulated
// runtime; the merged output is bit-identical to a single-device run
// because the simulator is bit-exact and every unit's output depends only
// on the inputs and a fixed per-unit operation order, never on how the
// units were grouped into shards or which device ran them.
package coexec

import (
	"fmt"
	"math"

	"gpucmp/internal/arch"
	"gpucmp/internal/bench"
	"gpucmp/internal/sim"
)

// Times is the simulated cost of one shard execution, split by engine so
// the copy/compute overlap timeline can be assembled (see timeline.go).
type Times struct {
	H2D    float64 // host->device input copy seconds
	Kernel float64 // compute seconds
	D2H    float64 // device->host output copy seconds
}

// Total returns the no-overlap (serialised) cost.
func (t Times) Total() float64 { return t.H2D + t.Kernel + t.D2H }

// Workload is a partitionable benchmark: Units independent work units,
// each producing WordsPerUnit output words. Kernels must avoid shared
// memory and per-partition accumulation orders so that every modelled
// device (including the Cell/BE with its tiny local store) produces the
// same bits for the same unit.
type Workload interface {
	Name() string
	Units() int
	WordsPerUnit() int
	// NewInstance opens per-device state: a driver on the device, device
	// buffers, the compiled kernel, and any broadcast inputs (charged to
	// the instance's setup time, not to a shard).
	NewInstance(toolchain string, a *arch.Device) (Instance, error)
}

// Instance is one device's view of a workload. It is not safe for
// concurrent use; the co-execution scheduler drives each instance from a
// single worker goroutine.
type Instance interface {
	// RunUnits executes units [lo,hi) and returns their output words
	// (len = (hi-lo)*WordsPerUnit) plus the simulated cost split.
	RunUnits(lo, hi int) ([]uint32, Times, error)
	// SimDevice exposes the simulated device for cancellation.
	SimDevice() *sim.Device
	// SetupSeconds is the one-off simulated cost of opening the instance
	// (broadcast input copies).
	SetupSeconds() float64
}

// ToolchainFor returns the natural toolchain for a device: CUDA on NVIDIA
// hardware, OpenCL everywhere else — the SNIPPETS.md §3 split.
func ToolchainFor(a *arch.Device) string {
	if a.Vendor == "NVIDIA" {
		return "cuda"
	}
	return "opencl"
}

// Oracle runs the whole workload as one shard on one device — the
// single-device reference the chaos suite compares merged outputs against.
func Oracle(w Workload, toolchain string, a *arch.Device) ([]uint32, Times, error) {
	inst, err := w.NewInstance(toolchain, a)
	if err != nil {
		return nil, Times{}, err
	}
	return inst.RunUnits(0, w.Units())
}

// instance is the shared per-device plumbing: a bench.Driver plus timer
// bookkeeping that splits driver-accumulated time into the Times engines.
type instance struct {
	d     bench.Driver
	mod   bench.Module
	setup float64
}

func (in *instance) SimDevice() *sim.Device { return bench.SimDevice(in.d) }
func (in *instance) SetupSeconds() float64  { return in.setup }

// splitTimer runs h2d, kernel and d2h phases and attributes driver time.
func (in *instance) splitTimer(h2d, kernel, d2h func() error) (Times, error) {
	var t Times
	in.d.ResetTimer()
	if err := h2d(); err != nil {
		return t, err
	}
	t.H2D = bench.TransferSeconds(in.d)
	if err := kernel(); err != nil {
		return t, err
	}
	t.Kernel = in.d.KernelTime()
	if err := d2h(); err != nil {
		return t, err
	}
	t.D2H = bench.TransferSeconds(in.d) - t.H2D
	return t, nil
}

// subBuf addresses words [lo,hi) of a buffer of 32-bit words.
func subBuf(b bench.Buf, lo, hi int) bench.Buf {
	return bench.Buf{Addr: b.Addr + uint32(4*lo), Size: uint32(4 * (hi - lo))}
}

func f32Words(f []float32) []uint32 {
	w := make([]uint32, len(f))
	for i, v := range f {
		w[i] = math.Float32bits(v)
	}
	return w
}

// coexecBlock is the launch width every co-execution kernel uses. It is
// deliberately small and one-dimensional in X so the same geometry is
// legal on every modelled device (the Cell/BE caps work-groups at 256 and
// a single resident group per SPE).
const coexecBlock = 64

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// checkRange validates a RunUnits span.
func checkRange(w Workload, lo, hi int) error {
	if lo < 0 || hi > w.Units() || lo >= hi {
		return fmt.Errorf("coexec: %s: bad unit range [%d,%d) of %d", w.Name(), lo, hi, w.Units())
	}
	return nil
}
