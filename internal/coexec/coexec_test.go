package coexec

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"gpucmp/internal/arch"
	"gpucmp/internal/fault"
	"gpucmp/internal/sim"
)

// checkNoGoroutineLeak asserts the goroutine count settles back to (about)
// its pre-test level — the same helper shape the fault chaos suite uses.
func checkNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var now int
	for time.Now().Before(deadline) {
		now = runtime.NumGoroutine()
		if now <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after settling", before, now)
}

// fastOpts keeps retries snappy for tests.
func fastOpts(devs ...*arch.Device) Options {
	return Options{
		Devices:   devs,
		BaseDelay: time.Microsecond,
		MaxDelay:  50 * time.Microsecond,
	}
}

func testWorkloads() []Workload {
	return []Workload{VecAdd(24), SobelRows(64, 48), MxMRows(48)}
}

// TestOracleBitIdenticalAcrossDevices is the foundation the whole package
// rests on: the same workload produces the same bits on every modelled
// device under both toolchains, so shards can move freely.
func TestOracleBitIdenticalAcrossDevices(t *testing.T) {
	for _, w := range testWorkloads() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			t.Parallel()
			ref, _, err := Oracle(w, "cuda", arch.GTX480())
			if err != nil {
				t.Fatalf("oracle on GTX480: %v", err)
			}
			if want := w.Units() * w.WordsPerUnit(); len(ref) != want {
				t.Fatalf("oracle output %d words, want %d", len(ref), want)
			}
			for _, a := range []*arch.Device{arch.GTX280(), arch.HD5870(), arch.Intel920(), arch.CellBE()} {
				got, _, err := Oracle(w, ToolchainFor(a), a)
				if err != nil {
					t.Fatalf("oracle on %s: %v", a.Name, err)
				}
				for i := range ref {
					if got[i] != ref[i] {
						t.Fatalf("%s: word %d differs: %#x vs %#x", a.Name, i, got[i], ref[i])
					}
				}
			}
		})
	}
}

// TestCoexecMatchesOracle: fault-free 2- and 3-device splits merge to the
// oracle bits, and the report's accounting holds together.
func TestCoexecMatchesOracle(t *testing.T) {
	splits := [][]*arch.Device{
		{arch.GTX480(), arch.GTX280()},
		{arch.GTX480(), arch.GTX280(), arch.Intel920()},
	}
	for _, w := range testWorkloads() {
		ref, _, err := Oracle(w, "cuda", arch.GTX480())
		if err != nil {
			t.Fatal(err)
		}
		for _, devs := range splits {
			out, rep, err := Run(context.Background(), w, fastOpts(devs...))
			if err != nil {
				t.Fatalf("%s on %d devices: %v", w.Name(), len(devs), err)
			}
			if len(out) != len(ref) {
				t.Fatalf("%s: merged %d words, want %d", w.Name(), len(out), len(ref))
			}
			for i := range ref {
				if out[i] != ref[i] {
					t.Fatalf("%s on %d devices: word %d differs", w.Name(), len(devs), i)
				}
			}
			var shards int
			for _, d := range rep.Devices {
				shards += d.Shards
				if d.SpanSeconds > d.BusySeconds+1e-15 {
					t.Errorf("%s/%s: overlapped span %g exceeds serial busy %g",
						w.Name(), d.Device, d.SpanSeconds, d.BusySeconds)
				}
			}
			if shards < rep.Shards {
				t.Errorf("%s: device shard counts %d < %d shards", w.Name(), shards, rep.Shards)
			}
			if rep.Degraded || len(rep.Lost) > 0 {
				t.Errorf("%s: fault-free run reports degradation: %+v", w.Name(), rep)
			}
			if rep.MakespanSeconds <= 0 || rep.MakespanSeconds > rep.NoOverlapSeconds+1e-15 {
				t.Errorf("%s: makespan %g vs no-overlap %g implausible",
					w.Name(), rep.MakespanSeconds, rep.NoOverlapSeconds)
			}
		}
	}
}

// TestDeterministicKillRedistributes: a device killed mid-split loses its
// remaining shards to the survivors, the merge stays bit-identical, and
// the run is marked degraded with the dead device named.
func TestDeterministicKillRedistributes(t *testing.T) {
	before := runtime.NumGoroutine()
	// A workload whose shards cost real simulation time, so both workers
	// provably engage before the queue drains (tiny shards let one fast
	// worker swallow the whole queue before the other is scheduled).
	w := MxMRows(96)
	ref, _, err := Oracle(w, "cuda", arch.GTX480())
	if err != nil {
		t.Fatal(err)
	}
	m := NewMetrics()
	opts := fastOpts(arch.GTX480(), arch.GTX280())
	opts.ShardsPerDevice = 8
	opts.Metrics = m
	opts.Kill = map[string]int{"GeForce GTX280": 1} // dies after one shard
	out, rep, err := Run(context.Background(), w, opts)
	if err != nil {
		t.Fatalf("run with kill: %v", err)
	}
	for i := range ref {
		if out[i] != ref[i] {
			t.Fatalf("word %d differs after mid-run kill", i)
		}
	}
	if !rep.Degraded || len(rep.Lost) != 1 || rep.Lost[0] != "GeForce GTX280" {
		t.Fatalf("degraded markers wrong: %+v", rep)
	}
	var killed *DeviceReport
	for i := range rep.Devices {
		if rep.Devices[i].Device == "GeForce GTX280" {
			killed = &rep.Devices[i]
		}
	}
	if killed == nil || !killed.Lost {
		t.Fatalf("killed device not marked lost: %+v", rep.Devices)
	}
	if rep.Redistributions == 0 {
		t.Errorf("dead device's shards were not redistributed: %+v", rep)
	}
	snap := m.Snapshot()
	if snap["1:GeForce GTX280"].Lost != 1 {
		t.Errorf("metrics missed the device loss: %+v", snap)
	}
	if snap["0:GeForce GTX480"].Shards == 0 {
		t.Errorf("survivor did no work: %+v", snap)
	}
	checkNoGoroutineLeak(t, before)
}

// TestPermanentShardFailureIsTyped: with an uncapped 100% transfer-fault
// rate and a tiny attempt budget, the run must fail with a *ShardError
// wrapping fault.ErrTransfer — never an untyped error.
func TestPermanentShardFailureIsTyped(t *testing.T) {
	before := runtime.NumGoroutine()
	w := VecAdd(8)
	opts := fastOpts(arch.GTX480(), arch.GTX280())
	opts.MaxAttempts = 3
	opts.Injector = fault.New(1, fault.Schedule{TransferRate: 1.0}) // MaxPerKey 0 = unlimited
	_, _, err := Run(context.Background(), w, opts)
	var se *ShardError
	if !errors.As(err, &se) {
		t.Fatalf("want *ShardError, got %T: %v", err, err)
	}
	if !errors.Is(err, fault.ErrTransfer) {
		t.Fatalf("ShardError does not wrap fault.ErrTransfer: %v", err)
	}
	checkNoGoroutineLeak(t, before)
}

// TestMaxPerKeyExemptionUnstarvesRecovery: the same schedule capped at
// MaxPerKey=3 must always recover, because the cap is spent per shard
// globally — redistribution to a fresh device cannot re-arm it.
func TestMaxPerKeyExemptionUnstarvesRecovery(t *testing.T) {
	w := VecAdd(16)
	ref, _, err := Oracle(w, "cuda", arch.GTX480())
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(0); seed < 5; seed++ {
		opts := fastOpts(arch.GTX480(), arch.GTX280(), arch.Intel920())
		opts.MaxAttempts = 8 // > MaxPerKey + device count
		opts.Injector = fault.New(seed, fault.Schedule{TransferRate: 1.0, MaxPerKey: 3})
		out, rep, err := Run(context.Background(), w, opts)
		if err != nil {
			t.Fatalf("seed %d: recovery starved: %v", seed, err)
		}
		for i := range ref {
			if out[i] != ref[i] {
				t.Fatalf("seed %d: word %d differs", seed, i)
			}
		}
		if rep.Retries == 0 {
			t.Fatalf("seed %d: 100%% fault rate injected no retries", seed)
		}
	}
}

// stubWorkload exercises scheduler paths (stragglers, cancellation) without
// simulator cost: unit u's output word is u+1, and RunUnits can be delayed
// per device.
type stubWorkload struct {
	units int
	delay map[string]time.Duration // device name -> per-call delay
}

func (s *stubWorkload) Name() string      { return "stub" }
func (s *stubWorkload) Units() int        { return s.units }
func (s *stubWorkload) WordsPerUnit() int { return 1 }
func (s *stubWorkload) NewInstance(tc string, a *arch.Device) (Instance, error) {
	return &stubInstance{w: s, dev: a.Name}, nil
}

type stubInstance struct {
	w   *stubWorkload
	dev string
}

func (in *stubInstance) SimDevice() *sim.Device { return nil }
func (in *stubInstance) SetupSeconds() float64  { return 0 }
func (in *stubInstance) RunUnits(lo, hi int) ([]uint32, Times, error) {
	if d := in.w.delay[in.dev]; d > 0 {
		time.Sleep(d)
	}
	out := make([]uint32, hi-lo)
	for i := range out {
		out[i] = uint32(lo + i + 1)
	}
	return out, Times{H2D: 1e-6, Kernel: 2e-6, D2H: 1e-6}, nil
}

// TestStragglerReassignment: both stub devices are paced so both engage,
// but one holds its shard far past the straggler threshold; the watchdog
// must duplicate that in-flight shard to the fast device (first completion
// wins) and the merged output stays correct.
func TestStragglerReassignment(t *testing.T) {
	before := runtime.NumGoroutine()
	w := &stubWorkload{units: 12, delay: map[string]time.Duration{
		"GeForce GTX480": 2 * time.Millisecond,
		"GeForce GTX280": 250 * time.Millisecond,
	}}
	opts := fastOpts(arch.GTX480(), arch.GTX280())
	opts.StragglerAfter = 20 * time.Millisecond
	opts.ShardsPerDevice = 3
	m := NewMetrics()
	opts.Metrics = m
	out, rep, err := Run(context.Background(), w, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if out[i] != uint32(i+1) {
			t.Fatalf("word %d = %d, want %d", i, out[i], i+1)
		}
	}
	if rep.Stragglers == 0 {
		t.Error("no straggler duplicates dispatched")
	}
	// The duplicate completed on the fast device while the slow one slept,
	// so the fast device's completion count covers all six shards.
	for _, d := range rep.Devices {
		if d.Device == "GeForce GTX480" && d.Shards < 6 {
			t.Errorf("fast device completed %d shards, want all 6 (incl. the duplicate)", d.Shards)
		}
	}
	if snap := m.Snapshot(); snap["1:GeForce GTX280"].Stragglers == 0 {
		t.Errorf("straggler not attributed to the slow device: %+v", snap)
	}
	checkNoGoroutineLeak(t, before)
}

// TestCancellationKillsInFlightShards: cancelling the context mid-run must
// cancel every device's in-flight simulated kernel, return a wrapped
// context error, and leak nothing.
func TestCancellationKillsInFlightShards(t *testing.T) {
	before := runtime.NumGoroutine()
	w := MxMRows(192) // big enough that shards are still in flight when we cancel
	ctx, cancel := context.WithCancel(context.Background())
	opts := fastOpts(arch.GTX480(), arch.GTX280(), arch.Intel920())
	errCh := make(chan error, 1)
	go func() {
		_, _, err := Run(ctx, w, opts)
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
	checkNoGoroutineLeak(t, before)
}

// TestRunValidation covers the trivial error paths.
func TestRunValidation(t *testing.T) {
	if _, _, err := Run(context.Background(), VecAdd(4), Options{}); !errors.Is(err, ErrNoDevices) {
		t.Fatalf("want ErrNoDevices, got %v", err)
	}
	// A CUDA toolchain forced onto an AMD device must surface the open error.
	opts := Options{Devices: []*arch.Device{arch.HD5870()}, Toolchains: []string{"cuda"}}
	if _, _, err := Run(context.Background(), VecAdd(4), opts); err == nil {
		t.Fatal("CUDA on HD5870 must fail to open")
	}
}

// TestToolchainFor pins the SNIPPETS §3 split.
func TestToolchainFor(t *testing.T) {
	if ToolchainFor(arch.GTX480()) != "cuda" || ToolchainFor(arch.Intel920()) != "opencl" {
		t.Fatal("toolchain auto-selection wrong")
	}
}

func ExampleRun() {
	out, rep, err := Run(context.Background(), VecAdd(16),
		Options{Devices: []*arch.Device{arch.GTX480(), arch.Intel920()}})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(len(out) == 16*256, rep.Shards > 1, rep.Degraded)
	// Output: true true false
}
