package coexec

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"gpucmp/internal/arch"
	"gpucmp/internal/fault"
)

// chaosSchedule mixes recoverable transfer faults with device losses at
// rates high enough that most seeds inject something interesting, while
// the MaxPerKey cap plus the survivor guard keep every schedule completable.
var chaosSchedule = fault.Schedule{
	TransferRate:   0.15,
	DeviceLostRate: 0.05,
	MaxPerKey:      3,
}

// TestChaosBitIdentityAcrossSeeds is the acceptance gate of the package:
// for every seed in the sweep, co-execution across three heterogeneous
// devices under the injected fault schedule must produce output words
// bit-identical to the single-device oracle, fail only with typed errors
// (it never does here, by the completion-guarantee arithmetic), and leak
// no goroutines.
func TestChaosBitIdentityAcrossSeeds(t *testing.T) {
	before := runtime.NumGoroutine()
	workloads := []Workload{VecAdd(24), SobelRows(64, 48), MxMRows(48)}
	refs := make(map[string][]uint32, len(workloads))
	for _, w := range workloads {
		ref, _, err := Oracle(w, "cuda", arch.GTX480())
		if err != nil {
			t.Fatal(err)
		}
		refs[w.Name()] = ref
	}

	const seeds = 24 // acceptance floor is 20
	var injected, degraded int
	for seed := uint64(0); seed < seeds; seed++ {
		for _, w := range workloads {
			in := fault.New(seed, chaosSchedule)
			m := NewMetrics()
			opts := Options{
				Devices:   []*arch.Device{arch.GTX480(), arch.GTX280(), arch.Intel920()},
				BaseDelay: time.Microsecond,
				MaxDelay:  50 * time.Microsecond,
				Injector:  in,
				Metrics:   m,
			}
			out, rep, err := Run(context.Background(), w, opts)
			if err != nil {
				// Any failure must be typed; and with MaxAttempts 16 >
				// MaxPerKey 3 + 3 devices, no schedule should exhaust a shard.
				var se *ShardError
				if !errors.As(err, &se) {
					t.Fatalf("seed %d %s: untyped error: %v", seed, w.Name(), err)
				}
				t.Fatalf("seed %d %s: recovery guarantee broken: %v", seed, w.Name(), err)
			}
			ref := refs[w.Name()]
			for i := range ref {
				if out[i] != ref[i] {
					t.Fatalf("seed %d %s: word %d differs from oracle (%#x vs %#x)",
						seed, w.Name(), i, out[i], ref[i])
				}
			}
			counts := in.Counts()
			injected += int(counts[fault.KindTransferError.String()] + counts[fault.KindDeviceLost.String()])
			if rep.Degraded {
				degraded++
				if len(rep.Lost) == 0 || rep.DegradedCause == "" {
					t.Fatalf("seed %d %s: degraded without markers: %+v", seed, w.Name(), rep)
				}
			}
			// Sanity: the metrics and report agree on retries.
			var mr uint64
			for _, c := range m.Snapshot() {
				mr += c.Retries
			}
			if int(mr) != rep.Retries {
				t.Fatalf("seed %d %s: metrics retries %d != report retries %d",
					seed, w.Name(), mr, rep.Retries)
			}
		}
	}
	if injected == 0 {
		t.Fatal("chaos sweep injected no faults — rates or salts are wrong")
	}
	if degraded == 0 {
		t.Error("no seed lost a device — DeviceLostRate too low to exercise recovery")
	}
	t.Logf("chaos sweep: %d seeds x %d workloads, %d faults injected, %d degraded runs",
		seeds, len(workloads), injected, degraded)
	checkNoGoroutineLeak(t, before)
}

// TestChaosDeviceLossBounded: with a 100%% device-lost rate the survivor
// guard must keep exactly one device alive and still complete the run.
func TestChaosDeviceLossBounded(t *testing.T) {
	before := runtime.NumGoroutine()
	w := VecAdd(16)
	ref, _, err := Oracle(w, "cuda", arch.GTX480())
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(0); seed < 5; seed++ {
		in := fault.New(seed, fault.Schedule{DeviceLostRate: 1.0})
		out, rep, err := Run(context.Background(), w, Options{
			Devices:   []*arch.Device{arch.GTX480(), arch.GTX280(), arch.Intel920()},
			BaseDelay: time.Microsecond,
			MaxDelay:  50 * time.Microsecond,
			Injector:  in,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i := range ref {
			if out[i] != ref[i] {
				t.Fatalf("seed %d: word %d differs", seed, i)
			}
		}
		if len(rep.Lost) > 2 {
			t.Fatalf("seed %d: lost %d of 3 devices; survivor guard failed", seed, len(rep.Lost))
		}
	}
	checkNoGoroutineLeak(t, before)
}

// TestChaosDistinctSeedsDistinctSchedules guards against the injector
// collapsing all seeds onto one schedule (which would make the sweep above
// meaningless).
func TestChaosDistinctSeedsDistinctSchedules(t *testing.T) {
	outcomes := map[string]bool{}
	for seed := uint64(0); seed < 8; seed++ {
		in := fault.New(seed, chaosSchedule)
		var sig string
		for attempt := 0; attempt < 6; attempt++ {
			f := in.ShardLaunch("0:dev", "w/0")
			switch {
			case f == nil:
				sig += "."
			case f.Kind == fault.KindTransferError:
				sig += "t"
			default:
				sig += "l"
			}
		}
		outcomes[sig] = true
	}
	if len(outcomes) < 2 {
		t.Fatalf("8 seeds produced %d distinct schedules: %v", len(outcomes), outcomes)
	}
}

func BenchmarkCoexecVecAdd(b *testing.B) {
	w := VecAdd(64)
	opts := Options{Devices: []*arch.Device{arch.GTX480(), arch.GTX280(), arch.Intel920()}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Run(context.Background(), w, opts); err != nil {
			b.Fatal(err)
		}
	}
}
