package coexec

import "sync"

// DeviceCounts is one device's cumulative co-execution counters, exported
// on /metrics by the server.
type DeviceCounts struct {
	Shards          uint64 // shard attempts completed (including discarded duplicates)
	Retries         uint64 // shard attempts retried after an injected/real failure
	Redistributions uint64 // shards completed here after first being tried elsewhere
	TransferErrors  uint64 // injected transfer failures observed
	Stragglers      uint64 // duplicate dispatches due to straggler reassignment
	Lost            uint64 // 1 once the device died mid-run
}

// Metrics aggregates per-device co-execution counters across runs. A nil
// *Metrics is valid and records nothing, so callers can hold one
// unconditionally (the fault.Injector convention).
type Metrics struct {
	mu      sync.Mutex
	devices map[string]*DeviceCounts
}

// NewMetrics returns an empty counter set.
func NewMetrics() *Metrics { return &Metrics{devices: map[string]*DeviceCounts{}} }

func (m *Metrics) bump(device string, f func(*DeviceCounts)) {
	if m == nil {
		return
	}
	m.mu.Lock()
	c := m.devices[device]
	if c == nil {
		c = &DeviceCounts{}
		m.devices[device] = c
	}
	f(c)
	m.mu.Unlock()
}

func (m *Metrics) addShard(device string)    { m.bump(device, func(c *DeviceCounts) { c.Shards++ }) }
func (m *Metrics) addRetry(device string)    { m.bump(device, func(c *DeviceCounts) { c.Retries++ }) }
func (m *Metrics) addRedist(device string)   { m.bump(device, func(c *DeviceCounts) { c.Redistributions++ }) }
func (m *Metrics) addTransfer(device string) { m.bump(device, func(c *DeviceCounts) { c.TransferErrors++ }) }
func (m *Metrics) addStraggler(device string) {
	m.bump(device, func(c *DeviceCounts) { c.Stragglers++ })
}
func (m *Metrics) markLost(device string) { m.bump(device, func(c *DeviceCounts) { c.Lost = 1 }) }

// Snapshot returns a copy of the counters keyed by device name.
func (m *Metrics) Snapshot() map[string]DeviceCounts {
	out := map[string]DeviceCounts{}
	if m == nil {
		return out
	}
	m.mu.Lock()
	for name, c := range m.devices {
		out[name] = *c
	}
	m.mu.Unlock()
	return out
}
