package sim

import (
	"testing"

	"gpucmp/internal/arch"
	"gpucmp/internal/compiler"
	"gpucmp/internal/kir"
)

// TestAggregateNanos is the regression test for the ExecNanos aggregation
// bug under Parallel=true: per-unit busy times used to be summed even when
// the units ran concurrently, overstating the engine's cost by up to the
// compute-unit count. Concurrent units overlap, so the launch contributes
// the critical path (max), not the sum.
func TestAggregateNanos(t *testing.T) {
	per := []int64{5, 3, 9, 1}
	if got := aggregateNanos(per, false); got != 18 {
		t.Errorf("sequential: got %d, want the sum 18", got)
	}
	if got := aggregateNanos(per, true); got != 9 {
		t.Errorf("parallel: got %d, want the critical path 9", got)
	}
	if got := aggregateNanos(nil, true); got != 0 {
		t.Errorf("empty: got %d, want 0", got)
	}
}

// TestExecNanosAccumulates pins the wiring: every launch, on every engine
// and under either parallelism setting, adds a positive contribution to
// the device's cumulative ExecNanos. (The max-vs-sum split itself is
// covered by TestAggregateNanos — on a single-CPU host Launch downgrades
// Parallel, so the parallel aggregation cannot be timed end to end here.)
func TestExecNanosAccumulates(t *testing.T) {
	b := kir.NewKernel("nanos_probe")
	out := b.GlobalBuffer("out", kir.U32)
	b.For("i", kir.U(0), kir.U(64), kir.U(1), func(i kir.Expr) {
		b.Store(out, b.GlobalIDX(), kir.Add(i, b.GlobalIDX()))
	})
	pk := compile(t, b.MustBuild(), compiler.CUDA())

	for _, eng := range []Engine{EngineThreaded, EngineFast, EngineReference} {
		for _, parallel := range []bool{false, true} {
			d := newDev(t, arch.GTX480())
			d.Engine = eng
			d.Reference = eng == EngineReference
			d.Parallel = parallel
			addr := uploadU32(t, d, make([]uint32, 1024))
			last := d.ExecNanos()
			if last != 0 {
				t.Fatalf("%s: fresh device has ExecNanos %d", eng, last)
			}
			for i := 0; i < 2; i++ {
				if _, err := d.Launch(pk, Dim3{X: 16, Y: 1}, Dim3{X: 64, Y: 1}, []uint32{addr}); err != nil {
					t.Fatal(err)
				}
				now := d.ExecNanos()
				if now <= last {
					t.Fatalf("%s parallel=%v: ExecNanos did not grow after launch %d: %d -> %d",
						eng, parallel, i, last, now)
				}
				last = now
			}
		}
	}
}
