package sim

import (
	"fmt"
	"math"
	"math/bits"

	"gpucmp/internal/mem"
	"gpucmp/internal/ptx"
)

// This file is the optimised execution engine: it runs the predecoded
// program from decode.go over the per-CU arena from arena.go. It is
// observationally identical to the reference interpreter in warp.go — same
// results, same traces, same error strings, same watchdog verdicts — and
// that equivalence is pinned by the corpus-replay gate in internal/fuzz.
// Three things make it fast:
//
//  1. The op x type switch runs once per warp instruction (execALUFast)
//     instead of once per lane, and operands are aliased in place instead
//     of copied into scratch arrays.
//  2. Registers carry a per-warp uniformity bit (all 64 lanes hold one
//     value). When a warp executes with its full populated mask and every
//     source operand is uniform, the result is computed once and
//     broadcast; the bit is purely advisory (registers stay fully
//     materialised), so a conservative clear can cost speed but never
//     correctness. Broadcasting may write lanes beyond the populated
//     mask, which the reference leaves untouched — those lanes are
//     unobservable (never active, always masked out of coalescing and
//     guards), which is why traces cannot change.
//  3. Memory accesses with a uniform address short-circuit the coalescing
//     query (one segment, one distinct address, bank factor 1 — exactly
//     what the reference derives per lane) and perform a single backing
//     access; non-uniform accesses classify the warp in one pass through
//     the mem.*Fast routines.
func (cu *cuState) runBlockFast(dk *decodedKernel, prog *tProgram, k *ptx.Kernel, grid, block Dim3, bx, by int) error {
	W := cu.dev.Arch.SIMDWidth
	if W > 64 {
		return fmt.Errorf("sim: SIMD width %d exceeds the 64-lane model limit", W)
	}
	ar := cu.arena
	fb := &ar.blk
	fb.cu = cu
	fb.dk = dk
	fb.prog = prog
	fb.k = k
	fb.grid, fb.block = grid, block
	fb.ctaidX, fb.ctaidY = uint32(bx), uint32(by)
	fb.W = W
	fb.steps = 0
	fb.budget = cu.dev.StepBudget
	fb.abort = cu.abort
	fb.spec[ptx.SrNtidX][0] = uint32(block.X)
	fb.spec[ptx.SrNtidY][0] = uint32(block.Y)
	fb.spec[ptx.SrCtaidX][0] = fb.ctaidX
	fb.spec[ptx.SrCtaidY][0] = fb.ctaidY
	fb.spec[ptx.SrNctaidX][0] = uint32(grid.X)
	fb.spec[ptx.SrNctaidY][0] = uint32(grid.Y)
	fb.spec[ptx.SrWarpSize][0] = uint32(W)

	fb.shared = ar.shared[:(k.SharedBytes+3)/4]
	clear(fb.shared)

	threads := block.Count()
	nwarps := (threads + W - 1) / W
	localWords := (k.LocalBytes + 3) / 4
	regWords := k.NumRegs * W
	uniWords := (k.NumRegs + 63) / 64
	fb.warps = ar.warps[:nwarps]

	for wi := 0; wi < nwarps; wi++ {
		w := &fb.warps[wi]
		w.b = fb
		w.warpBase = wi * W
		w.regs = ar.regs[wi*regWords : (wi+1)*regWords]
		clear(w.regs)
		w.localWords = localWords
		if localWords > 0 {
			w.local = ar.local[wi*localWords*W : (wi+1)*localWords*W]
			clear(w.local)
		} else {
			w.local = nil
		}
		w.uni = ar.uni[wi*uniWords : (wi+1)*uniWords]
		for i := range w.uni {
			w.uni[i] = ^uint64(0) // zero-initialised registers are uniform
		}
		var mask uint64
		uniX, uniY := true, true
		var tx0, ty0 uint32
		for l := 0; l < W; l++ {
			t := w.warpBase + l
			if t >= threads {
				break
			}
			mask |= 1 << uint(l)
			x, y := uint32(t%block.X), uint32(t/block.X)
			w.tidx[l], w.tidy[l] = x, y
			if l == 0 {
				tx0, ty0 = x, y
			} else {
				if x != tx0 {
					uniX = false
				}
				if y != ty0 {
					uniY = false
				}
			}
		}
		w.fullMask = mask
		w.tidUni[0], w.tidUni[1] = uniX, uniY
		w.frames = append(w.frames[:0], frame{pc: 0, mask: mask, reconv: len(dk.ops)})
		w.atBarrier, w.done = false, false
	}

	// The scheduler loop mirrors runBlock: round-robin every live warp to
	// its next barrier or completion, then release the barrier together.
	for {
		remaining := 0
		for wi := range fb.warps {
			w := &fb.warps[wi]
			if w.done {
				continue
			}
			remaining++
			if w.atBarrier {
				continue
			}
			var err error
			if prog != nil {
				err = w.runThreaded()
			} else {
				err = w.run()
			}
			if err != nil {
				return err
			}
		}
		if remaining == 0 {
			return nil
		}
		released := false
		for wi := range fb.warps {
			w := &fb.warps[wi]
			if !w.done && w.atBarrier {
				w.atBarrier = false
				released = true
			}
		}
		if !released {
			allDone := true
			for wi := range fb.warps {
				if !fb.warps[wi].done {
					allDone = false
				}
			}
			if allDone {
				return nil
			}
			return fmt.Errorf("sim: %s: scheduling deadlock in block (%d,%d)", k.Name, bx, by)
		}
	}
}

// Uniform-bit helpers. The invariant is one-directional: a set bit means
// all 64 lanes of the register hold one value; a clear bit means nothing.
func (w *fwarp) getUni(r int32) bool { return w.uni[r>>6]>>(uint(r)&63)&1 != 0 }
func (w *fwarp) setUni(r int32)      { w.uni[r>>6] |= 1 << (uint(r) & 63) }
func (w *fwarp) clearUni(r int32)    { w.uni[r>>6] &^= 1 << (uint(r) & 63) }

// srcv is a resolved source operand: lane l's value is p[l&m], with m = 0
// aliasing a uniform scalar and m = 63 a per-lane vector.
type srcv struct {
	p []uint32
	m int
}

var zeroWord = [1]uint32{}

// resolve views an operand in place — no copying. Uniform registers and
// tids are exposed as scalars so downstream fast paths can detect them
// with a single mask test.
func (w *fwarp) resolve(o *dOperand) srcv {
	switch o.kind {
	case doImm:
		return srcv{p: o.val[:], m: 0}
	case doReg:
		base := int(o.reg) * w.b.W
		s := srcv{p: w.regs[base : base+w.b.W]}
		if !w.getUni(o.reg) {
			s.m = 63
		}
		return s
	case doTidX:
		if w.tidUni[0] {
			return srcv{p: w.tidx[:1], m: 0}
		}
		return srcv{p: w.tidx[:w.b.W], m: 63}
	case doTidY:
		if w.tidUni[1] {
			return srcv{p: w.tidy[:1], m: 0}
		}
		return srcv{p: w.tidy[:w.b.W], m: 63}
	case doSpec:
		return srcv{p: w.b.spec[o.spec][:], m: 0}
	default:
		return srcv{p: zeroWord[:], m: 0}
	}
}

// resolveSrc is resolve plus aliasing protection: a uniform register
// source that is also the destination would be clobbered by lane 0's
// write before later lanes read it (the reference copies operands first),
// so its scalar is snapshotted into the slot's scratch word. Vector
// sources are safe in place: lane l is read before lane l is written.
func (w *fwarp) resolveSrc(o *dOperand, dst int32, buf *[1]uint32) srcv {
	s := w.resolve(o)
	if s.m == 0 && o.kind == doReg && o.reg == dst {
		buf[0] = s.p[0]
		return srcv{p: buf[:], m: 0}
	}
	return s
}

// guardMask applies the decoded guard predicate to the frame mask,
// checking one lane when the predicate register is warp-uniform.
func (w *fwarp) guardMask(d *decodedOp, mask uint64) uint64 {
	W := w.b.W
	base := int(d.guard) * W
	if w.getUni(d.guard) {
		if (w.regs[base] != 0) != d.guardNeg {
			return mask
		}
		return 0
	}
	var out uint64
	for m := mask; m != 0; m &= m - 1 {
		l := bits.TrailingZeros64(m)
		if (w.regs[base+l] != 0) != d.guardNeg {
			out |= 1 << uint(l)
		}
	}
	return out
}

// run executes the warp over the predecoded program until it completes or
// reaches a barrier. Control flow, step accounting and error strings
// mirror warpCtx.run exactly.
func (w *fwarp) run() error {
	fb := w.b
	ops := fb.dk.ops
	cu := fb.cu
	for len(w.frames) > 0 {
		fi := len(w.frames) - 1
		f := w.frames[fi]
		if f.pc >= len(ops) || f.pc == f.reconv || f.mask == 0 {
			w.frames = w.frames[:fi]
			continue
		}
		fb.steps++
		if fb.budget > 0 && fb.steps > fb.budget {
			return fmt.Errorf("sim: %s: block (%d,%d) exceeded the %d warp-instruction step budget: %w",
				fb.k.Name, fb.ctaidX, fb.ctaidY, fb.budget, ErrWatchdog)
		}
		if fb.steps%CheckpointInterval == 0 {
			if cu.dev.cancelled.Load() {
				return fmt.Errorf("sim: %s: cancelled at step %d: %w", fb.k.Name, fb.steps, ErrWatchdog)
			}
			if fb.abort != nil && fb.abort.Load() {
				return errAborted
			}
		}

		d := &ops[f.pc]
		active := f.mask
		if d.guard >= 0 {
			active = w.guardMask(d, f.mask)
		}
		lanes := mem.ActiveLanes(active)

		switch d.kind {
		case dkBra:
			cu.countOp(ptx.OpBra, ptx.SpaceNone, lanes)
			cu.branches++
			taken := active
			if d.guard < 0 {
				taken = f.mask
			}
			switch {
			case taken == f.mask:
				w.frames[fi].pc = int(d.target)
			case taken == 0:
				w.frames[fi].pc = f.pc + 1
			default:
				cu.divergent++
				w.frames[fi].pc = int(d.join)
				w.frames = append(w.frames,
					frame{pc: f.pc + 1, mask: f.mask &^ taken, reconv: int(d.join)},
					frame{pc: int(d.target), mask: taken, reconv: int(d.join)},
				)
			}

		case dkBar:
			cu.countOp(ptx.OpBar, ptx.SpaceNone, lanes)
			cu.barriers++
			w.frames[fi].pc = f.pc + 1
			w.atBarrier = true
			return nil

		case dkRet:
			cu.countOp(ptx.OpRet, ptx.SpaceNone, lanes)
			for i := range w.frames {
				w.frames[i].mask &^= active
			}
			w.frames[fi].pc = f.pc + 1

		case dkMem:
			cu.countOp(d.op, d.space, lanes)
			if active != 0 {
				if err := w.execMemFast(d, active); err != nil {
					in := &fb.k.Instrs[f.pc]
					return fmt.Errorf("sim: %s: pc %d (%s): %w", fb.k.Name, f.pc, in.Mnemonic(), err)
				}
			}
			w.frames[fi].pc = f.pc + 1

		default: // dkALU
			cu.countOp(d.op, ptx.SpaceNone, lanes)
			if active != 0 {
				w.execALUFast(d, active)
			}
			w.frames[fi].pc = f.pc + 1
		}
	}
	w.done = true
	return nil
}

// execALUFast evaluates one ALU instruction. The switch is hoisted out of
// the lane loop; when the warp is fully active and every source is
// uniform, the loop body runs once for lane 0 and the result is broadcast.
// Every arithmetic expression below is textually identical to its
// counterpart in the reference execALU, so both engines compile to the
// same floating-point code.
func (w *fwarp) execALUFast(d *decodedOp, active uint64) {
	W := w.b.W
	a := w.resolveSrc(&d.a, d.dst, &w.sbuf[0])
	var b, c srcv
	if d.nsrc >= 2 {
		b = w.resolveSrc(&d.b, d.dst, &w.sbuf[1])
	}
	if d.nsrc >= 3 {
		c = w.resolveSrc(&d.c, d.dst, &w.sbuf[2])
	}
	dst := w.regs[int(d.dst)*W : int(d.dst)*W+W]

	// The lane loops below walk the set bits of act directly, so sparse
	// masks (a mostly-converged-off branch arm, a guard that disables most
	// of the warp) cost only their active lanes. The uniform case funnels
	// through the same loops with act = 1: one iteration for lane 0, then
	// the broadcast at the bottom fans the value out.
	uniform := active == w.fullMask && a.m|b.m|c.m == 0
	act := active
	if uniform {
		act = 1
	}

	switch d.ex {
	case exMov, exDefault:
		for m := act; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			dst[l] = a.p[l&a.m]
		}
	case exAddF:
		for m := act; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			dst[l] = fbits(f32(a.p[l&a.m]) + f32(b.p[l&b.m]))
		}
	case exAddI:
		for m := act; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			dst[l] = a.p[l&a.m] + b.p[l&b.m]
		}
	case exSubF:
		for m := act; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			dst[l] = fbits(f32(a.p[l&a.m]) - f32(b.p[l&b.m]))
		}
	case exSubI:
		for m := act; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			dst[l] = a.p[l&a.m] - b.p[l&b.m]
		}
	case exMulF:
		for m := act; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			dst[l] = fbits(f32(a.p[l&a.m]) * f32(b.p[l&b.m]))
		}
	case exMulI:
		for m := act; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			dst[l] = a.p[l&a.m] * b.p[l&b.m]
		}
	case exDivF:
		for m := act; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			dst[l] = fbits(f32(a.p[l&a.m]) / f32(b.p[l&b.m]))
		}
	case exDivS:
		for m := act; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			av, bv := a.p[l&a.m], b.p[l&b.m]
			if bv == 0 {
				dst[l] = ^uint32(0)
			} else {
				dst[l] = uint32(int32(av) / int32(bv))
			}
		}
	case exDivU:
		for m := act; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			av, bv := a.p[l&a.m], b.p[l&b.m]
			if bv == 0 {
				dst[l] = ^uint32(0)
			} else {
				dst[l] = av / bv
			}
		}
	case exRemS:
		for m := act; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			av, bv := a.p[l&a.m], b.p[l&b.m]
			if bv == 0 {
				dst[l] = av
			} else {
				dst[l] = uint32(int32(av) % int32(bv))
			}
		}
	case exRemU:
		for m := act; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			av, bv := a.p[l&a.m], b.p[l&b.m]
			if bv == 0 {
				dst[l] = av
			} else {
				dst[l] = av % bv
			}
		}
	case exFmaF:
		for m := act; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			dst[l] = fbits(f32(a.p[l&a.m])*f32(b.p[l&b.m]) + f32(c.p[l&c.m]))
		}
	case exFmaI:
		for m := act; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			dst[l] = a.p[l&a.m]*b.p[l&b.m] + c.p[l&c.m]
		}
	case exNegF:
		for m := act; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			dst[l] = fbits(-f32(a.p[l&a.m]))
		}
	case exNegI:
		for m := act; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			dst[l] = -a.p[l&a.m]
		}
	case exAbsF:
		for m := act; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			dst[l] = fbits(float32(math.Abs(float64(f32(a.p[l&a.m])))))
		}
	case exAbsI:
		for m := act; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			av := a.p[l&a.m]
			if int32(av) < 0 {
				dst[l] = uint32(-int32(av))
			} else {
				dst[l] = av
			}
		}
	case exMinF:
		for m := act; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			dst[l] = fbits(float32(math.Min(float64(f32(a.p[l&a.m])), float64(f32(b.p[l&b.m])))))
		}
	case exMinS:
		for m := act; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			av, bv := a.p[l&a.m], b.p[l&b.m]
			if int32(av) < int32(bv) {
				dst[l] = av
			} else {
				dst[l] = bv
			}
		}
	case exMinU:
		for m := act; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			av, bv := a.p[l&a.m], b.p[l&b.m]
			if av < bv {
				dst[l] = av
			} else {
				dst[l] = bv
			}
		}
	case exMaxF:
		for m := act; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			dst[l] = fbits(float32(math.Max(float64(f32(a.p[l&a.m])), float64(f32(b.p[l&b.m])))))
		}
	case exMaxS:
		for m := act; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			av, bv := a.p[l&a.m], b.p[l&b.m]
			if int32(av) > int32(bv) {
				dst[l] = av
			} else {
				dst[l] = bv
			}
		}
	case exMaxU:
		for m := act; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			av, bv := a.p[l&a.m], b.p[l&b.m]
			if av > bv {
				dst[l] = av
			} else {
				dst[l] = bv
			}
		}
	case exSqrt:
		for m := act; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			dst[l] = fbits(float32(math.Sqrt(float64(f32(a.p[l&a.m])))))
		}
	case exRsqrt:
		for m := act; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			dst[l] = fbits(float32(1 / math.Sqrt(float64(f32(a.p[l&a.m])))))
		}
	case exSin:
		for m := act; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			dst[l] = fbits(float32(math.Sin(float64(f32(a.p[l&a.m])))))
		}
	case exCos:
		for m := act; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			dst[l] = fbits(float32(math.Cos(float64(f32(a.p[l&a.m])))))
		}
	case exEx2:
		for m := act; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			dst[l] = fbits(float32(math.Exp2(float64(f32(a.p[l&a.m])))))
		}
	case exLg2:
		for m := act; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			dst[l] = fbits(float32(math.Log2(float64(f32(a.p[l&a.m])))))
		}
	case exAnd:
		for m := act; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			dst[l] = a.p[l&a.m] & b.p[l&b.m]
		}
	case exOr:
		for m := act; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			dst[l] = a.p[l&a.m] | b.p[l&b.m]
		}
	case exXor:
		for m := act; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			dst[l] = a.p[l&a.m] ^ b.p[l&b.m]
		}
	case exNot:
		for m := act; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			dst[l] = ^a.p[l&a.m]
		}
	case exShl:
		for m := act; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			dst[l] = a.p[l&a.m] << (b.p[l&b.m] & 31)
		}
	case exShrS:
		for m := act; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			dst[l] = uint32(int32(a.p[l&a.m]) >> (b.p[l&b.m] & 31))
		}
	case exShrU:
		for m := act; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			dst[l] = a.p[l&a.m] >> (b.p[l&b.m] & 31)
		}
	case exSetp:
		for m := act; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			dst[l] = boolToU32(compare(d.cmp, d.typ, a.p[l&a.m], b.p[l&b.m]))
		}
	case exSelp:
		for m := act; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			if c.p[l&c.m] != 0 {
				dst[l] = a.p[l&a.m]
			} else {
				dst[l] = b.p[l&b.m]
			}
		}
	case exCvt:
		for m := act; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			dst[l] = convert(d.typ, d.srcTyp, a.p[l&a.m])
		}
	}

	if uniform {
		v := dst[0]
		for l := 1; l < W; l++ {
			dst[l] = v
		}
		w.setUni(d.dst)
	} else {
		w.clearUni(d.dst)
	}
}
