package sim

// Benchmarks of the simulator itself: how many warp-instructions per second
// the interpreter retires. These guard against performance regressions in
// the hot interpretation loop (fetch/dispatch/lane loops).

import (
	"testing"

	"gpucmp/internal/arch"
	"gpucmp/internal/compiler"
	"gpucmp/internal/kir"
)

func simBenchKernel() *kir.Kernel {
	b := kir.NewKernel("spin")
	out := b.GlobalBuffer("out", kir.F32)
	gid := b.Declare("gid", b.GlobalIDX())
	acc := b.Declare("acc", kir.CastTo(kir.F32, gid))
	b.For("i", kir.U(0), kir.U(256), kir.U(1), func(i kir.Expr) {
		b.Assign(acc, kir.Add(kir.Mul(acc, kir.F(1.0001)), kir.F(0.5)))
	})
	b.Store(out, gid, acc)
	return b.MustBuild()
}

func benchInterp(b *testing.B, parallel, reference bool) {
	pk, err := compiler.Compile(simBenchKernel(), compiler.CUDA())
	if err != nil {
		b.Fatal(err)
	}
	dev, err := NewDevice(arch.GTX480())
	if err != nil {
		b.Fatal(err)
	}
	dev.Parallel = parallel
	dev.Reference = reference
	const threads = 64 * 1024
	addr, _ := dev.Global.Alloc(4 * threads)
	b.ReportAllocs()
	b.ResetTimer()
	var warpInstrs int64
	for i := 0; i < b.N; i++ {
		tr, err := dev.Launch(pk, Dim3{X: threads / 256, Y: 1}, Dim3{X: 256, Y: 1}, []uint32{addr})
		if err != nil {
			b.Fatal(err)
		}
		warpInstrs = tr.Dyn.Total
	}
	b.ReportMetric(float64(warpInstrs)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mwarpinstr/s")
	b.ReportMetric(float64(warpInstrs), "warpinstrs")
}

func BenchmarkInterpreterSequential(b *testing.B) { benchInterp(b, false, false) }
func BenchmarkInterpreterParallel(b *testing.B)   { benchInterp(b, true, false) }

// benchInterpEngine pins a specific engine, so the fast-vs-threaded gap is
// measurable on one machine regardless of the process default.
func benchInterpEngine(b *testing.B, eng Engine) {
	pk, err := compiler.Compile(simBenchKernel(), compiler.CUDA())
	if err != nil {
		b.Fatal(err)
	}
	dev, err := NewDevice(arch.GTX480())
	if err != nil {
		b.Fatal(err)
	}
	dev.Parallel = false
	dev.Engine = eng
	const threads = 64 * 1024
	addr, _ := dev.Global.Alloc(4 * threads)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dev.Launch(pk, Dim3{X: threads / 256, Y: 1}, Dim3{X: 256, Y: 1}, []uint32{addr}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInterpreterFastSequential(b *testing.B)     { benchInterpEngine(b, EngineFast) }
func BenchmarkInterpreterThreadedSequential(b *testing.B) { benchInterpEngine(b, EngineThreaded) }

// straightLineKernel is a fully unrolled mad chain — one giant basic block,
// the best case for superinstruction fusion and the shape of the MaxFlops
// paper probe.
func straightLineKernel() *kir.Kernel {
	bb := kir.NewKernel("madchain")
	out := bb.GlobalBuffer("out", kir.F32)
	gid := bb.Declare("gid", bb.GlobalIDX())
	a := bb.Declare("a", kir.Add(kir.CastTo(kir.F32, gid), kir.F(0.5)))
	s := bb.Declare("s", kir.F(1.000001))
	c := bb.Declare("c", kir.F(0.999))
	bb.ForUnroll("r", kir.U(0), kir.U(64), kir.U(1), kir.UnrollFull, func(r kir.Expr) {
		for i := 0; i < 8; i++ {
			bb.Assign(a, kir.Add(kir.Mul(a, s), c))
		}
	})
	bb.Store(out, gid, a)
	return bb.MustBuild()
}

func benchStraightLine(b *testing.B, eng Engine) {
	pk, err := compiler.Compile(straightLineKernel(), compiler.CUDA())
	if err != nil {
		b.Fatal(err)
	}
	dev, err := NewDevice(arch.GTX480())
	if err != nil {
		b.Fatal(err)
	}
	dev.Parallel = false
	dev.Engine = eng
	const threads = 64 * 1024
	addr, _ := dev.Global.Alloc(4 * threads)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dev.Launch(pk, Dim3{X: threads / 256, Y: 1}, Dim3{X: 256, Y: 1}, []uint32{addr}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStraightLineFast(b *testing.B)     { benchStraightLine(b, EngineFast) }
func BenchmarkStraightLineThreaded(b *testing.B) { benchStraightLine(b, EngineThreaded) }

// The Reference variants run the retained pre-optimization engine on the
// same workload, so `go test -bench Interpreter` prints the speedup of the
// predecoded engine directly.
func BenchmarkInterpreterReferenceSequential(b *testing.B) { benchInterp(b, false, true) }
func BenchmarkInterpreterReferenceParallel(b *testing.B)   { benchInterp(b, true, true) }

// benchDivergent measures the engines on a branch-divergent, shared-memory
// workload where the uniform fast path cannot trigger for the divergent
// region — the worst case for the new engine.
func benchDivergent(b *testing.B, reference bool) {
	bb := kir.NewKernel("div")
	in := bb.GlobalBuffer("in", kir.U32)
	out := bb.GlobalBuffer("out", kir.U32)
	tile := bb.SharedArray("tile", kir.U32, 128)
	gid := bb.Declare("gid", bb.GlobalIDX())
	tid := bb.Declare("tid", kir.Bi(kir.TidX))
	v := bb.Declare("v", bb.Load(in, gid))
	bb.For("i", kir.U(0), kir.U(64), kir.U(1), func(i kir.Expr) {
		bb.IfElse(kir.Eq(kir.Rem(kir.Add(tid, i), kir.U(2)), kir.U(0)), func() {
			bb.Assign(v, kir.Add(v, kir.U(3)))
		}, func() {
			bb.Assign(v, kir.Mul(v, kir.U(5)))
		})
		bb.Store(tile, tid, v)
		bb.Barrier()
		bb.Assign(v, kir.Add(v, bb.Load(tile, kir.Rem(kir.Add(tid, kir.U(1)), kir.U(128)))))
		bb.Barrier()
	})
	bb.Store(out, gid, v)
	pk, err := compiler.Compile(bb.MustBuild(), compiler.OpenCL())
	if err != nil {
		b.Fatal(err)
	}
	dev, err := NewDevice(arch.GTX480())
	if err != nil {
		b.Fatal(err)
	}
	dev.Parallel = false
	dev.Reference = reference
	const threads = 16 * 1024
	inAddr, _ := dev.Global.Alloc(4 * threads)
	outAddr, _ := dev.Global.Alloc(4 * threads)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dev.Launch(pk, Dim3{X: threads / 128, Y: 1}, Dim3{X: 128, Y: 1}, []uint32{inAddr, outAddr}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDivergentFast(b *testing.B)      { benchDivergent(b, false) }
func BenchmarkDivergentReference(b *testing.B) { benchDivergent(b, true) }

// BenchmarkLaunchOverhead measures the fixed per-launch cost of the
// simulator (setup, scheduling, trace merge) with a trivial kernel.
func BenchmarkLaunchOverhead(b *testing.B) {
	bb := kir.NewKernel("nop")
	out := bb.GlobalBuffer("out", kir.U32)
	bb.Store(out, bb.GlobalIDX(), kir.U(1))
	pk, err := compiler.Compile(bb.MustBuild(), compiler.OpenCL())
	if err != nil {
		b.Fatal(err)
	}
	dev, _ := NewDevice(arch.GTX280())
	addr, _ := dev.Global.Alloc(4 * 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dev.Launch(pk, Dim3{X: 1, Y: 1}, Dim3{X: 64, Y: 1}, []uint32{addr}); err != nil {
			b.Fatal(err)
		}
	}
}
