package sim

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"gpucmp/internal/arch"
	"gpucmp/internal/compiler"
	"gpucmp/internal/kir"
	"gpucmp/internal/ptx"
)

// newDev builds a GTX480 simulation in deterministic sequential mode.
func newDev(t *testing.T, a *arch.Device) *Device {
	t.Helper()
	d, err := NewDevice(a)
	if err != nil {
		t.Fatalf("NewDevice: %v", err)
	}
	return d
}

func compile(t *testing.T, k *kir.Kernel, p compiler.Personality) *ptx.Kernel {
	t.Helper()
	pk, err := compiler.Compile(k, p)
	if err != nil {
		t.Fatalf("compile %s: %v", k.Name, err)
	}
	return pk
}

func uploadF32(t *testing.T, d *Device, data []float32) uint32 {
	t.Helper()
	addr, err := d.Global.Alloc(uint32(4 * len(data)))
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	words := make([]uint32, len(data))
	for i, f := range data {
		words[i] = math.Float32bits(f)
	}
	if err := d.Global.WriteWords(addr, words); err != nil {
		t.Fatalf("WriteWords: %v", err)
	}
	return addr
}

func downloadF32(t *testing.T, d *Device, addr uint32, n int) []float32 {
	t.Helper()
	words := make([]uint32, n)
	if err := d.Global.ReadWords(addr, words); err != nil {
		t.Fatalf("ReadWords: %v", err)
	}
	out := make([]float32, n)
	for i, w := range words {
		out[i] = math.Float32frombits(w)
	}
	return out
}

func uploadU32(t *testing.T, d *Device, data []uint32) uint32 {
	t.Helper()
	addr, err := d.Global.Alloc(uint32(4 * len(data)))
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if err := d.Global.WriteWords(addr, data); err != nil {
		t.Fatalf("WriteWords: %v", err)
	}
	return addr
}

func vecAddKIR() *kir.Kernel {
	b := kir.NewKernel("vadd")
	a := b.GlobalBuffer("a", kir.F32)
	bb := b.GlobalBuffer("b", kir.F32)
	c := b.GlobalBuffer("c", kir.F32)
	n := b.ScalarParam("n", kir.U32)
	gid := b.Declare("gid", b.GlobalIDX())
	b.If(kir.Lt(gid, n), func() {
		b.Store(c, gid, kir.Add(b.Load(a, gid), b.Load(bb, gid)))
	})
	return b.MustBuild()
}

// TestVecAddBothToolchainsAllDevices checks functional equivalence of the
// two front-ends' code on every modelled device.
func TestVecAddBothToolchainsAllDevices(t *testing.T) {
	const n = 1000 // not a multiple of any warp width: exercises the guard
	av := make([]float32, n)
	bv := make([]float32, n)
	for i := range av {
		av[i] = float32(i) * 0.5
		bv[i] = float32(n - i)
	}
	for _, devArch := range arch.All() {
		for _, pers := range []compiler.Personality{compiler.CUDA(), compiler.OpenCL()} {
			t.Run(devArch.Name+"/"+pers.Name, func(t *testing.T) {
				d := newDev(t, devArch)
				pk := compile(t, vecAddKIR(), pers)
				aAddr := uploadF32(t, d, av)
				bAddr := uploadF32(t, d, bv)
				cAddr := uploadF32(t, d, make([]float32, n))
				block := Dim3{X: 128, Y: 1}
				grid := Dim3{X: (n + 127) / 128, Y: 1}
				tr, err := d.Launch(pk, grid, block, []uint32{aAddr, bAddr, cAddr, n})
				if err != nil {
					t.Fatalf("Launch: %v", err)
				}
				got := downloadF32(t, d, cAddr, n)
				for i := range got {
					want := av[i] + bv[i]
					if got[i] != want {
						t.Fatalf("c[%d] = %g, want %g", i, got[i], want)
					}
				}
				if tr.Dyn.Get(ptx.OpLd, ptx.SpaceGlobal) == 0 {
					t.Error("trace recorded no global loads")
				}
				if tr.Mem.GlobalStoreAccesses == 0 {
					t.Error("trace recorded no global stores")
				}
			})
		}
	}
}

// TestDivergenceNestedIf checks reconvergence with data-dependent nested
// branches against a host reference.
func TestDivergenceNestedIf(t *testing.T) {
	b := kir.NewKernel("div")
	in := b.GlobalBuffer("in", kir.U32)
	out := b.GlobalBuffer("out", kir.U32)
	gid := b.Declare("gid", b.GlobalIDX())
	v := b.Declare("v", b.Load(in, gid))
	r := b.Declare("r", kir.U(0))
	b.IfElse(kir.Eq(kir.Rem(v, kir.U(2)), kir.U(0)),
		func() {
			b.IfElse(kir.Lt(v, kir.U(100)),
				func() { b.Assign(r, kir.Add(v, kir.U(1000))) },
				func() { b.Assign(r, kir.Add(v, kir.U(2000))) })
		},
		func() {
			b.Assign(r, kir.Mul(v, kir.U(3)))
		})
	b.Store(out, gid, r)
	k := b.MustBuild()

	ref := func(v uint32) uint32 {
		if v%2 == 0 {
			if v < 100 {
				return v + 1000
			}
			return v + 2000
		}
		return v * 3
	}

	const n = 256
	input := make([]uint32, n)
	for i := range input {
		input[i] = uint32(i * 37 % 211)
	}
	for _, pers := range []compiler.Personality{compiler.CUDA(), compiler.OpenCL()} {
		d := newDev(t, arch.GTX280())
		pk := compile(t, k, pers)
		inAddr := uploadU32(t, d, input)
		outAddr := uploadU32(t, d, make([]uint32, n))
		if _, err := d.Launch(pk, Dim3{X: 2, Y: 1}, Dim3{X: 128, Y: 1}, []uint32{inAddr, outAddr}); err != nil {
			t.Fatalf("%s launch: %v", pers.Name, err)
		}
		got := make([]uint32, n)
		if err := d.Global.ReadWords(outAddr, got); err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != ref(input[i]) {
				t.Fatalf("%s: out[%d] = %d, want %d", pers.Name, i, got[i], ref(input[i]))
			}
		}
	}
}

// TestDataDependentLoopTrips runs a loop whose trip count varies per lane
// (classic divergence stress: every lane exits at a different iteration).
func TestDataDependentLoopTrips(t *testing.T) {
	b := kir.NewKernel("loopdiv")
	out := b.GlobalBuffer("out", kir.U32)
	gid := b.Declare("gid", b.GlobalIDX())
	acc := b.Declare("acc", kir.U(0))
	b.For("i", kir.U(0), kir.Add(kir.Rem(gid, kir.U(7)), kir.U(1)), kir.U(1), func(i kir.Expr) {
		b.Assign(acc, kir.Add(acc, kir.Add(i, kir.U(1))))
	})
	b.Store(out, gid, acc)
	k := b.MustBuild()

	ref := func(g uint32) uint32 {
		trips := g%7 + 1
		sum := uint32(0)
		for i := uint32(0); i < trips; i++ {
			sum += i + 1
		}
		return sum
	}
	const n = 512
	for _, pers := range []compiler.Personality{compiler.CUDA(), compiler.OpenCL()} {
		d := newDev(t, arch.GTX480())
		pk := compile(t, k, pers)
		outAddr := uploadU32(t, d, make([]uint32, n))
		tr, err := d.Launch(pk, Dim3{X: 4, Y: 1}, Dim3{X: 128, Y: 1}, []uint32{outAddr})
		if err != nil {
			t.Fatalf("%s: %v", pers.Name, err)
		}
		got := make([]uint32, n)
		if err := d.Global.ReadWords(outAddr, got); err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != ref(uint32(i)) {
				t.Fatalf("%s: out[%d] = %d, want %d", pers.Name, i, got[i], ref(uint32(i)))
			}
		}
		if tr.DivergentBranches == 0 {
			t.Errorf("%s: expected divergent branches in the trace", pers.Name)
		}
	}
}

// TestSharedMemoryReduction exercises shared memory, barriers and 2-D ids.
func TestSharedMemoryReduction(t *testing.T) {
	const blockSize = 128
	// Tree reduction: for p = 0..6, stride = 1<<p, pairwise sums, barrier
	// between rounds.
	b := kir.NewKernel("reduce")
	in := b.GlobalBuffer("in", kir.F32)
	out := b.GlobalBuffer("out", kir.F32)
	tile := b.SharedArray("tile", kir.F32, blockSize)
	tid := kir.Bi(kir.TidX)
	gid := b.Declare("gid", b.GlobalIDX())
	b.Store(tile, tid, b.Load(in, gid))
	b.Barrier()
	b.For("p", kir.U(0), kir.U(7), kir.U(1), func(p kir.Expr) {
		stride := kir.Shl(kir.U(1), p)
		b.If(kir.LAnd(
			kir.Eq(kir.Rem(tid, kir.Mul(stride, kir.U(2))), kir.U(0)),
			kir.Lt(kir.Add(tid, stride), kir.U(blockSize))), func() {
			b.Store(tile, tid, kir.Add(b.Load(tile, tid), b.Load(tile, kir.Add(tid, stride))))
		})
		b.Barrier()
	})
	b.If(kir.Eq(tid, kir.U(0)), func() {
		b.Store(out, kir.Bi(kir.CtaidX), b.Load(tile, kir.U(0)))
	})
	k := b.MustBuild()

	const blocks = 8
	input := make([]float32, blocks*blockSize)
	want := make([]float32, blocks)
	for i := range input {
		input[i] = float32(i%13) * 0.25
		want[i/blockSize] += input[i]
	}
	for _, pers := range []compiler.Personality{compiler.CUDA(), compiler.OpenCL()} {
		for _, da := range []*arch.Device{arch.GTX280(), arch.HD5870()} {
			d := newDev(t, da)
			pk := compile(t, k, pers)
			inAddr := uploadF32(t, d, input)
			outAddr := uploadF32(t, d, make([]float32, blocks))
			tr, err := d.Launch(pk, Dim3{X: blocks, Y: 1}, Dim3{X: blockSize, Y: 1}, []uint32{inAddr, outAddr})
			if err != nil {
				t.Fatalf("%s/%s: %v", pers.Name, da.Name, err)
			}
			got := downloadF32(t, d, outAddr, blocks)
			for i := range got {
				if math.Abs(float64(got[i]-want[i])) > 1e-3 {
					t.Fatalf("%s/%s: block %d sum = %g, want %g", pers.Name, da.Name, i, got[i], want[i])
				}
			}
			if tr.Barriers == 0 {
				t.Errorf("%s/%s: no barriers traced", pers.Name, da.Name)
			}
			if tr.Mem.SharedAccesses == 0 {
				t.Errorf("%s/%s: no shared accesses traced", pers.Name, da.Name)
			}
		}
	}
}

// TestAtomicsAccumulate checks global atomics across blocks.
func TestAtomicsAccumulate(t *testing.T) {
	b := kir.NewKernel("atom")
	ctr := b.GlobalBuffer("ctr", kir.U32)
	b.Atomic(ctr, kir.U(0), kir.AtomicAdd, kir.U(1))
	k := b.MustBuild()
	d := newDev(t, arch.GTX480())
	pk := compile(t, k, compiler.CUDA())
	addr := uploadU32(t, d, []uint32{0})
	const total = 64 * 256
	tr, err := d.Launch(pk, Dim3{X: 64, Y: 1}, Dim3{X: 256, Y: 1}, []uint32{addr})
	if err != nil {
		t.Fatal(err)
	}
	var got [1]uint32
	if err := d.Global.ReadWords(addr, got[:]); err != nil {
		t.Fatal(err)
	}
	if got[0] != total {
		t.Errorf("counter = %d, want %d", got[0], total)
	}
	if tr.Mem.AtomicOps != total {
		t.Errorf("AtomicOps = %d, want %d", tr.Mem.AtomicOps, total)
	}
}

// TestConstantAndTexturePaths verifies data correctness through the special
// read paths and that the right counters move.
func TestConstantAndTexturePaths(t *testing.T) {
	b := kir.NewKernel("paths")
	vec := b.TexBuffer("vec", kir.F32)
	filt := b.ConstBuffer("filt", kir.F32)
	out := b.GlobalBuffer("out", kir.F32)
	gid := b.Declare("gid", b.GlobalIDX())
	// Read vec through a wrapped index so many warps touch the same lines
	// and the texture cache sees reuse.
	b.Store(out, gid, kir.Mul(b.Load(vec, kir.Rem(gid, kir.U(32))), b.Load(filt, kir.Rem(gid, kir.U(4)))))
	k := b.MustBuild()

	const n = 256
	vecData := make([]float32, n)
	for i := range vecData {
		vecData[i] = float32(i + 1)
	}
	filtData := []float32{2, 3, 4, 5}

	d := newDev(t, arch.GTX280())
	pk := compile(t, k, compiler.CUDA())
	vecAddr := uploadF32(t, d, vecData)
	outAddr := uploadF32(t, d, make([]float32, n))
	// Constant buffer goes into the constant segment.
	constOff, err := d.ConstAlloc(16)
	if err != nil {
		t.Fatal(err)
	}
	fw := make([]uint32, 4)
	for i, f := range filtData {
		fw[i] = math.Float32bits(f)
	}
	if err := d.ConstWrite(constOff, fw); err != nil {
		t.Fatal(err)
	}
	tr, err := d.Launch(pk, Dim3{X: 2, Y: 1}, Dim3{X: 128, Y: 1}, []uint32{vecAddr, constOff, outAddr})
	if err != nil {
		t.Fatal(err)
	}
	got := downloadF32(t, d, outAddr, n)
	for i := range got {
		want := vecData[i%32] * filtData[i%4]
		if got[i] != want {
			t.Fatalf("out[%d] = %g, want %g", i, got[i], want)
		}
	}
	if tr.Mem.TexAccesses == 0 {
		t.Error("no texture accesses traced")
	}
	if tr.Mem.ConstAccesses == 0 {
		t.Error("no constant accesses traced")
	}
	if tr.Mem.TexHits == 0 {
		t.Error("sequential texture reads should hit the texture cache")
	}
}

// TestLocalMemoryRoundTrip exercises the per-thread local space.
func TestLocalMemoryRoundTrip(t *testing.T) {
	b := kir.NewKernel("localrt")
	out := b.GlobalBuffer("out", kir.U32)
	scr := b.LocalArray("scr", kir.U32, 4)
	gid := b.Declare("gid", b.GlobalIDX())
	b.For("i", kir.U(0), kir.U(4), kir.U(1), func(i kir.Expr) {
		b.Store(scr, i, kir.Add(kir.Mul(gid, kir.U(10)), i))
	})
	acc := b.Declare("acc", kir.U(0))
	b.For("i", kir.U(0), kir.U(4), kir.U(1), func(i kir.Expr) {
		b.Assign(acc, kir.Add(acc, b.Load(scr, i)))
	})
	b.Store(out, gid, acc)
	k := b.MustBuild()

	const n = 128
	for _, pers := range []compiler.Personality{compiler.CUDA(), compiler.OpenCL()} {
		d := newDev(t, arch.GTX280())
		pk := compile(t, k, pers)
		outAddr := uploadU32(t, d, make([]uint32, n))
		if _, err := d.Launch(pk, Dim3{X: 1, Y: 1}, Dim3{X: n, Y: 1}, []uint32{outAddr}); err != nil {
			t.Fatalf("%s: %v", pers.Name, err)
		}
		got := make([]uint32, n)
		if err := d.Global.ReadWords(outAddr, got); err != nil {
			t.Fatal(err)
		}
		for g := range got {
			want := uint32(g)*40 + 6
			if got[g] != want {
				t.Fatalf("%s: out[%d] = %d, want %d", pers.Name, g, got[g], want)
			}
		}
	}
}

// TestLaunchValidation exercises the resource-limit errors behind the
// Table VI "ABT" entries.
func TestLaunchValidation(t *testing.T) {
	d := newDev(t, arch.CellBE())
	k := compile(t, vecAddKIR(), compiler.OpenCL())

	// Work-group too large.
	err := d.CheckLaunch(k, Dim3{X: 1, Y: 1}, Dim3{X: 512, Y: 1})
	if !errors.Is(err, ErrInvalidWorkGroupSize) {
		t.Errorf("oversized work-group: got %v", err)
	}
	// Shared memory over budget.
	big := *k
	big.SharedBytes = 512 * 1024
	if err := d.CheckLaunch(&big, Dim3{X: 1, Y: 1}, Dim3{X: 64, Y: 1}); !errors.Is(err, ErrOutOfResources) {
		t.Errorf("oversized shared: got %v", err)
	}
	// Registers over budget.
	regs := *k
	regs.NumRegs = 100
	if err := d.CheckLaunch(&regs, Dim3{X: 1, Y: 1}, Dim3{X: 256, Y: 1}); !errors.Is(err, ErrOutOfResources) {
		t.Errorf("oversized registers: got %v", err)
	}
	// Bad config.
	if err := d.CheckLaunch(k, Dim3{X: 0, Y: 1}, Dim3{X: 64, Y: 1}); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("zero grid: got %v", err)
	}
	// Wrong argument count.
	if _, err := d.Launch(k, Dim3{X: 1, Y: 1}, Dim3{X: 64, Y: 1}, []uint32{1}); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("bad arg count: got %v", err)
	}
}

// TestOutOfBoundsAccessFails ensures stray addresses surface as errors, not
// corruption.
func TestOutOfBoundsAccessFails(t *testing.T) {
	b := kir.NewKernel("oob")
	out := b.GlobalBuffer("out", kir.U32)
	b.Store(out, kir.U(1<<28), kir.U(1))
	k := b.MustBuild()
	d := newDev(t, arch.CellBE()) // 1 GB: the byte offset 2^30 is out of range
	pk := compile(t, k, compiler.CUDA())
	addr := uploadU32(t, d, make([]uint32, 4))
	if _, err := d.Launch(pk, Dim3{X: 1, Y: 1}, Dim3{X: 1, Y: 1}, []uint32{addr}); err == nil {
		t.Fatal("expected out-of-bounds error")
	}
}

// TestResidentGroupsOccupancy covers the occupancy calculation.
func TestResidentGroupsOccupancy(t *testing.T) {
	d := newDev(t, arch.GTX280())
	k := compile(t, vecAddKIR(), compiler.CUDA())
	want := 8 // MaxGroupsPerUnit and MaxThreadsPerUnit both allow 8
	if lim := arch.GTX280().RegistersPerUnit / (k.NumRegs * 128); lim < want {
		want = lim
	}
	if got := d.ResidentGroups(k, Dim3{X: 128, Y: 1}); got != want {
		t.Errorf("small kernel occupancy = %d, want %d", got, want)
	}
	heavy := *k
	heavy.SharedBytes = 8 * 1024
	if got := d.ResidentGroups(&heavy, Dim3{X: 128, Y: 1}); got != 2 {
		t.Errorf("shared-limited occupancy = %d, want 2", got)
	}
	regs := *k
	regs.NumRegs = 32
	if got := d.ResidentGroups(&regs, Dim3{X: 256, Y: 1}); got != 2 {
		t.Errorf("register-limited occupancy = %d, want 2", got)
	}
}

// TestWarpWidthBuiltin confirms WarpSize reflects the device.
func TestWarpWidthBuiltin(t *testing.T) {
	b := kir.NewKernel("ws")
	out := b.GlobalBuffer("out", kir.U32)
	b.Store(out, b.GlobalIDX(), kir.Bi(kir.WarpSize))
	k := b.MustBuild()
	for _, tc := range []struct {
		a    *arch.Device
		want uint32
	}{{arch.GTX480(), 32}, {arch.HD5870(), 64}, {arch.Intel920(), 64}, {arch.CellBE(), 4}} {
		d := newDev(t, tc.a)
		pk := compile(t, k, compiler.OpenCL())
		addr := uploadU32(t, d, make([]uint32, 64))
		if _, err := d.Launch(pk, Dim3{X: 1, Y: 1}, Dim3{X: 64, Y: 1}, []uint32{addr}); err != nil {
			t.Fatalf("%s: %v", tc.a.Name, err)
		}
		var got [1]uint32
		if err := d.Global.ReadWords(addr, got[:]); err != nil {
			t.Fatal(err)
		}
		if got[0] != tc.want {
			t.Errorf("%s: warpSize = %d, want %d", tc.a.Name, got[0], tc.want)
		}
	}
}

// TestToolchainEquivalenceProperty: for arbitrary small inputs, the CUDA
// and OpenCL compilations of a nontrivial kernel produce identical results.
func TestToolchainEquivalenceProperty(t *testing.T) {
	b := kir.NewKernel("prop")
	in := b.GlobalBuffer("in", kir.U32)
	out := b.GlobalBuffer("out", kir.U32)
	gid := b.Declare("gid", b.GlobalIDX())
	v := b.Declare("v", b.Load(in, gid))
	acc := b.Declare("acc", kir.U(0))
	b.For("i", kir.U(0), kir.Add(kir.And(v, kir.U(3)), kir.U(1)), kir.U(1), func(i kir.Expr) {
		b.Assign(acc, kir.Add(kir.Mul(acc, kir.U(3)), kir.Xor(v, i)))
	})
	b.IfElse(kir.Gt(acc, kir.U(1000)),
		func() { b.Assign(acc, kir.Sub(acc, kir.U(1000))) },
		func() { b.Assign(acc, kir.Add(acc, kir.U(7))) })
	b.Store(out, gid, acc)
	k := b.MustBuild()

	cu := compile(t, k, compiler.CUDA())
	cl := compile(t, k, compiler.OpenCL())

	run := func(pk *ptx.Kernel, input []uint32) []uint32 {
		d, err := NewDevice(arch.GTX480())
		if err != nil {
			t.Fatal(err)
		}
		inAddr, _ := d.Global.Alloc(uint32(4 * len(input)))
		outAddr, _ := d.Global.Alloc(uint32(4 * len(input)))
		if err := d.Global.WriteWords(inAddr, input); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Launch(pk, Dim3{X: 1, Y: 1}, Dim3{X: len(input), Y: 1}, []uint32{inAddr, outAddr}); err != nil {
			t.Fatal(err)
		}
		got := make([]uint32, len(input))
		if err := d.Global.ReadWords(outAddr, got); err != nil {
			t.Fatal(err)
		}
		return got
	}

	f := func(seed [16]uint32) bool {
		input := seed[:]
		a := run(cu, input)
		b := run(cl, input)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestCoalescingCounters: a strided access pattern must cost more global
// transactions than a unit-stride one.
func TestCoalescingCounters(t *testing.T) {
	mk := func(stride uint32) *kir.Kernel {
		b := kir.NewKernel("coal")
		in := b.GlobalBuffer("in", kir.F32)
		out := b.GlobalBuffer("out", kir.F32)
		gid := b.Declare("gid", b.GlobalIDX())
		b.Store(out, gid, b.Load(in, kir.Rem(kir.Mul(gid, kir.U(stride)), kir.U(4096))))
		return b.MustBuild()
	}
	d1 := newDev(t, arch.GTX280())
	d2 := newDev(t, arch.GTX280())
	pk1 := compile(t, mk(1), compiler.CUDA())
	pk2 := compile(t, mk(32), compiler.CUDA())
	in1 := uploadF32(t, d1, make([]float32, 4096))
	out1 := uploadF32(t, d1, make([]float32, 4096))
	in2 := uploadF32(t, d2, make([]float32, 4096))
	out2 := uploadF32(t, d2, make([]float32, 4096))
	tr1, err := d1.Launch(pk1, Dim3{X: 16, Y: 1}, Dim3{X: 256, Y: 1}, []uint32{in1, out1})
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := d2.Launch(pk2, Dim3{X: 16, Y: 1}, Dim3{X: 256, Y: 1}, []uint32{in2, out2})
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Mem.GlobalLoadTrans <= tr1.Mem.GlobalLoadTrans*4 {
		t.Errorf("strided loads should cost far more transactions: stride1=%d stride32=%d",
			tr1.Mem.GlobalLoadTrans, tr2.Mem.GlobalLoadTrans)
	}
}

// TestParallelMatchesSequential: the parallel executor must produce the
// same memory contents and the same aggregate counters as sequential mode.
func TestParallelMatchesSequential(t *testing.T) {
	run := func(parallel bool) (*Trace, []float32) {
		d := newDev(t, arch.GTX480())
		d.Parallel = parallel
		pk := compile(t, vecAddKIR(), compiler.OpenCL())
		const n = 4096
		av := make([]float32, n)
		bv := make([]float32, n)
		for i := range av {
			av[i] = float32(i)
			bv[i] = 2 * float32(i)
		}
		aAddr := uploadF32(t, d, av)
		bAddr := uploadF32(t, d, bv)
		cAddr := uploadF32(t, d, make([]float32, n))
		tr, err := d.Launch(pk, Dim3{X: n / 128, Y: 1}, Dim3{X: 128, Y: 1}, []uint32{aAddr, bAddr, cAddr, n})
		if err != nil {
			t.Fatal(err)
		}
		return tr, downloadF32(t, d, cAddr, n)
	}
	trP, outP := run(true)
	trS, outS := run(false)
	for i := range outP {
		if outP[i] != outS[i] {
			t.Fatalf("results differ at %d", i)
		}
	}
	if trP.Dyn.Total != trS.Dyn.Total || trP.LaneInstrs != trS.LaneInstrs {
		t.Errorf("instruction counts differ: parallel %d/%d sequential %d/%d",
			trP.Dyn.Total, trP.LaneInstrs, trS.Dyn.Total, trS.LaneInstrs)
	}
	if trP.Mem.GlobalLoadTrans != trS.Mem.GlobalLoadTrans {
		t.Errorf("transaction counts differ: %d vs %d", trP.Mem.GlobalLoadTrans, trS.Mem.GlobalLoadTrans)
	}
}

// TestTwoDimensionalIndexing checks tid.y/ctaid.y/ntid.y routing: each
// thread writes its (x,y) coordinate encoded.
func TestTwoDimensionalIndexing(t *testing.T) {
	b := kir.NewKernel("idx2d")
	out := b.GlobalBuffer("out", kir.U32)
	w := b.ScalarParam("w", kir.U32)
	x := b.Declare("x", b.GlobalIDX())
	y := b.Declare("y", b.GlobalIDY())
	b.Store(out, kir.Add(kir.Mul(y, w), x), kir.Or(kir.Shl(y, kir.U(16)), x))
	k := b.MustBuild()

	d := newDev(t, arch.GTX480())
	pk := compile(t, k, compiler.CUDA())
	const W, H = 32, 24
	addr := uploadU32(t, d, make([]uint32, W*H))
	if _, err := d.Launch(pk, Dim3{X: W / 8, Y: H / 8}, Dim3{X: 8, Y: 8}, []uint32{addr, W}); err != nil {
		t.Fatal(err)
	}
	got := make([]uint32, W*H)
	if err := d.Global.ReadWords(addr, got); err != nil {
		t.Fatal(err)
	}
	for y := 0; y < H; y++ {
		for x := 0; x < W; x++ {
			want := uint32(y)<<16 | uint32(x)
			if got[y*W+x] != want {
				t.Fatalf("(%d,%d) = %#x, want %#x", x, y, got[y*W+x], want)
			}
		}
	}
}

// TestGuardedStoreMasksLanes: a CUDA guard-form conditional store must only
// write the lanes whose predicate is true.
func TestGuardedStoreMasksLanes(t *testing.T) {
	b := kir.NewKernel("guards")
	out := b.GlobalBuffer("out", kir.U32)
	gid := b.Declare("gid", b.GlobalIDX())
	b.If(kir.Eq(kir.And(gid, kir.U(1)), kir.U(0)), func() {
		b.Store(out, gid, kir.U(7))
	})
	k := b.MustBuild()
	pk := compile(t, k, compiler.CUDA())
	// The guard form must not branch.
	if pk.StaticStats().Get(ptx.OpBra, ptx.SpaceNone) != 0 {
		t.Fatalf("expected guard form, got branches:\n%s", pk.Disassemble())
	}
	d := newDev(t, arch.GTX280())
	init := make([]uint32, 64)
	for i := range init {
		init[i] = 99
	}
	addr := uploadU32(t, d, init)
	if _, err := d.Launch(pk, Dim3{X: 1, Y: 1}, Dim3{X: 64, Y: 1}, []uint32{addr}); err != nil {
		t.Fatal(err)
	}
	got := make([]uint32, 64)
	if err := d.Global.ReadWords(addr, got); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		want := uint32(99)
		if i%2 == 0 {
			want = 7
		}
		if v != want {
			t.Fatalf("out[%d] = %d, want %d", i, v, want)
		}
	}
}

// TestBarrierOrdersWarps: warp 1 reads what warp 0 wrote before the
// barrier (cross-warp shared-memory communication).
func TestBarrierOrdersWarps(t *testing.T) {
	b := kir.NewKernel("xwarp")
	out := b.GlobalBuffer("out", kir.U32)
	sh := b.SharedArray("sh", kir.U32, 64)
	tid := kir.Bi(kir.TidX)
	// Every thread writes tid*10; after the barrier each thread reads the
	// slot of the thread 32 positions away (the other warp).
	b.Store(sh, tid, kir.Mul(tid, kir.U(10)))
	b.Barrier()
	b.Store(out, b.GlobalIDX(), b.Load(sh, kir.Xor(tid, kir.U(32))))
	k := b.MustBuild()
	d := newDev(t, arch.GTX480())
	pk := compile(t, k, compiler.OpenCL())
	addr := uploadU32(t, d, make([]uint32, 64))
	if _, err := d.Launch(pk, Dim3{X: 1, Y: 1}, Dim3{X: 64, Y: 1}, []uint32{addr}); err != nil {
		t.Fatal(err)
	}
	got := make([]uint32, 64)
	if err := d.Global.ReadWords(addr, got); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if want := uint32(i^32) * 10; v != want {
			t.Fatalf("out[%d] = %d, want %d", i, v, want)
		}
	}
}

func TestDim3Count(t *testing.T) {
	if (Dim3{X: 3, Y: 4}).Count() != 12 {
		t.Error("Dim3.Count wrong")
	}
}

// TestTraceMetadata: launches record kernel, toolchain, device, and warp
// geometry.
func TestTraceMetadata(t *testing.T) {
	d := newDev(t, arch.HD5870())
	pk := compile(t, vecAddKIR(), compiler.OpenCL())
	a := uploadF32(t, d, make([]float32, 256))
	bb := uploadF32(t, d, make([]float32, 256))
	c := uploadF32(t, d, make([]float32, 256))
	tr, err := d.Launch(pk, Dim3{X: 2, Y: 1}, Dim3{X: 128, Y: 1}, []uint32{a, bb, c, 256})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Kernel != "vadd" || tr.Toolchain != "opencl" || tr.Device != arch.HD5870().Name {
		t.Errorf("metadata wrong: %+v", tr)
	}
	if tr.WarpWidth != 64 {
		t.Errorf("warp width = %d, want 64 on the HD5870", tr.WarpWidth)
	}
	if tr.Warps != 2*2 { // 128 threads per block / 64-wide wavefronts
		t.Errorf("warps = %d, want 4", tr.Warps)
	}
	if tr.ResidentGroups < 1 {
		t.Error("occupancy missing")
	}
}

// TestConstSegmentBounds: constant reads beyond the segment fail cleanly.
func TestConstSegmentBounds(t *testing.T) {
	b := kir.NewKernel("coob")
	cb := b.ConstBuffer("c", kir.F32)
	out := b.GlobalBuffer("out", kir.F32)
	b.Store(out, b.GlobalIDX(), b.Load(cb, kir.U(1<<20)))
	k := b.MustBuild()
	d := newDev(t, arch.GTX280())
	pk := compile(t, k, compiler.CUDA())
	outAddr := uploadF32(t, d, make([]float32, 32))
	off, err := d.ConstAlloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Launch(pk, Dim3{X: 1, Y: 1}, Dim3{X: 32, Y: 1}, []uint32{off, outAddr}); err == nil {
		t.Fatal("constant overrun should fail the launch")
	}
}

// TestTextureFallbackWithoutCache: devices without a texture cache serve
// tex fetches through the ordinary global path, functionally identical.
func TestTextureFallbackWithoutCache(t *testing.T) {
	b := kir.NewKernel("texcpu")
	vec := b.TexBuffer("vec", kir.F32)
	out := b.GlobalBuffer("out", kir.F32)
	gid := b.Declare("gid", b.GlobalIDX())
	b.Store(out, gid, kir.Mul(b.Load(vec, gid), kir.F(2)))
	k := b.MustBuild()
	d := newDev(t, arch.Intel920()) // no texture cache
	pk := compile(t, k, compiler.OpenCL())
	in := make([]float32, 64)
	for i := range in {
		in[i] = float32(i)
	}
	inAddr := uploadF32(t, d, in)
	outAddr := uploadF32(t, d, make([]float32, 64))
	tr, err := d.Launch(pk, Dim3{X: 1, Y: 1}, Dim3{X: 64, Y: 1}, []uint32{inAddr, outAddr})
	if err != nil {
		t.Fatal(err)
	}
	got := downloadF32(t, d, outAddr, 64)
	for i := range got {
		if got[i] != in[i]*2 {
			t.Fatalf("out[%d] = %g", i, got[i])
		}
	}
	if tr.Mem.TexAccesses != 0 {
		t.Error("no texture counters should move on a cacheless device")
	}
	if tr.Mem.GlobalLoadAccesses == 0 {
		t.Error("the fetch should route through the global path")
	}
}

// TestConstantSegmentExhaustion: ConstAlloc reports out-of-resources.
func TestConstantSegmentExhaustion(t *testing.T) {
	d := newDev(t, arch.GTX480())
	if _, err := d.ConstAlloc(60 * 1024); err != nil {
		t.Fatalf("first alloc should fit: %v", err)
	}
	if _, err := d.ConstAlloc(8 * 1024); !errors.Is(err, ErrOutOfResources) {
		t.Errorf("exhaustion should wrap ErrOutOfResources, got %v", err)
	}
	d.ConstReset()
	if _, err := d.ConstAlloc(60 * 1024); err != nil {
		t.Errorf("reset should reclaim the segment: %v", err)
	}
}
