package sim

// Tests that drive the simulator with hand-written PTX text through
// ptx.Parse — the assembler path that bypasses the KIR front ends. This
// covers semantics the compilers never emit (early ret, hand-scheduled
// guards) and doubles as an integration test of the disassembly format.

import (
	"testing"

	"gpucmp/internal/arch"
	"gpucmp/internal/ptx"
)

func mustParse(t *testing.T, text string) *ptx.Kernel {
	t.Helper()
	k, err := ptx.Parse(text)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return k
}

// TestHandWrittenKernelExecutes assembles a guarded doubling kernel.
func TestHandWrittenKernelExecutes(t *testing.T) {
	k := mustParse(t, `
.entry double // toolchain=cuda regs=8 shared=0B local=0B
  .param ptr.global data
  .param u32 n
L0  ld.param.u32 %r0, [%r-1+0]
L1  ld.param.u32 %r1, [%r-1+4]
L2  mov.u32 %r2, %ctaid.x
L3  mov.u32 %r3, %ntid.x
L4  mad.u32 %r4, %r2, %r3, 0x0
L5  mov.u32 %r5, %tid.x
L6  add.u32 %r4, %r4, %r5
L7  setp.lt.u32 %p6, %r4, %r1
L8  @!%p6 bra L13, J13
L9  mad.u32 %r7, %r4, 0x4, %r0
L10 ld.global.u32 %r5, [%r7+0]
L11 add.u32 %r5, %r5, %r5
L12 st.global.u32 [%r7+0], %r5
L13 ret
`)
	d := newDev(t, arch.GTX480())
	const n = 100 // partial final warp exercises the guard
	data := make([]uint32, 128)
	for i := range data {
		data[i] = uint32(i + 1)
	}
	addr := uploadU32(t, d, data)
	if _, err := d.Launch(k, Dim3{X: 1, Y: 1}, Dim3{X: 128, Y: 1}, []uint32{addr, n}); err != nil {
		t.Fatal(err)
	}
	got := make([]uint32, 128)
	if err := d.Global.ReadWords(addr, got); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		want := uint32(i + 1)
		if i < n {
			want *= 2
		}
		if got[i] != want {
			t.Fatalf("data[%d] = %d, want %d", i, got[i], want)
		}
	}
}

// TestEarlyRetRetiresLanes: a guarded ret must deactivate only the lanes
// that executed it; the rest of the warp continues.
func TestEarlyRetRetiresLanes(t *testing.T) {
	k := mustParse(t, `
.entry earlyret // toolchain=cuda regs=8 shared=0B local=0B
  .param ptr.global out
L0  ld.param.u32 %r0, [%r-1+0]
L1  mov.u32 %r1, %tid.x
L2  setp.ge.u32 %p2, %r1, 0x10
L3  @%p2 ret
L4  mad.u32 %r3, %r1, 0x4, %r0
L5  st.global.u32 [%r3+0], 0x1
L6  ret
`)
	d := newDev(t, arch.GTX480())
	addr := uploadU32(t, d, make([]uint32, 64))
	if _, err := d.Launch(k, Dim3{X: 1, Y: 1}, Dim3{X: 64, Y: 1}, []uint32{addr}); err != nil {
		t.Fatal(err)
	}
	got := make([]uint32, 64)
	if err := d.Global.ReadWords(addr, got); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		want := uint32(0)
		if i < 16 {
			want = 1
		}
		if v != want {
			t.Fatalf("out[%d] = %d, want %d", i, v, want)
		}
	}
}

// TestSharedBroadcastViaAssembly: uniform-address shared reads broadcast to
// every lane without bank conflicts.
func TestSharedBroadcastViaAssembly(t *testing.T) {
	k := mustParse(t, `
.entry bcast // toolchain=opencl regs=8 shared=16B local=0B
  .param ptr.global out
L0  ld.const.u32 %r0, [%r-1+0]
L1  mov.u32 %r1, %tid.x
L2  setp.eq.u32 %p2, %r1, 0x0
L3  @%p2 st.shared.u32 [0x0+4], 0x2a
L4  bar.sync
L5  ld.shared.u32 %r3, [0x0+4]
L6  mad.u32 %r4, %r1, 0x4, %r0
L7  st.global.u32 [%r4+0], %r3
L8  ret
`)
	d := newDev(t, arch.GTX280())
	addr := uploadU32(t, d, make([]uint32, 64))
	tr, err := d.Launch(k, Dim3{X: 1, Y: 1}, Dim3{X: 64, Y: 1}, []uint32{addr})
	if err != nil {
		t.Fatal(err)
	}
	got := make([]uint32, 64)
	if err := d.Global.ReadWords(addr, got); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 0x2a {
			t.Fatalf("out[%d] = %d, want 42", i, v)
		}
	}
	// The broadcast read must be conflict-free: serialization factor 1.
	if tr.Mem.SharedSerial != tr.Mem.SharedAccesses {
		t.Errorf("broadcast should not serialise: serial %d over %d accesses",
			tr.Mem.SharedSerial, tr.Mem.SharedAccesses)
	}
}
