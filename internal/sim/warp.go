package sim

import (
	"fmt"
	"math"

	"gpucmp/internal/mem"
	"gpucmp/internal/ptx"
)

// frame is one entry of the SIMT reconvergence stack: execute from pc with
// the given lane mask until pc reaches reconv, then pop.
type frame struct {
	pc     int
	mask   uint64
	reconv int
}

// CheckpointInterval is how many warp instructions a work-group executes
// between watchdog checkpoints (cancellation-flag polls). It bounds how
// long a Cancel call can go unobserved: one checkpoint interval per warp.
const CheckpointInterval = 1024

// blockCtx is the shared state of one work-group execution.
type blockCtx struct {
	cu             *cuState
	k              *ptx.Kernel
	grid, block    Dim3
	ctaidX, ctaidY uint32
	shared         []uint32
	W              int

	// steps counts warp instructions executed by this work-group; the
	// watchdog compares it against budget (0 = unbounded). Warps of a block
	// run sequentially, so the count — and therefore the watchdog verdict —
	// is deterministic.
	steps  uint64
	budget uint64
}

// warpCtx is one warp's execution state.
type warpCtx struct {
	b          *blockCtx
	warpBase   int // linear thread index of lane 0
	regs       []uint32
	local      []uint32 // lane-major per-thread local memory
	localWords int
	tid        [2][64]uint32 // per-lane tid.x / tid.y
	frames     []frame
	atBarrier  bool
	done       bool
}

// runBlock executes one work-group to completion on this compute unit.
func (cu *cuState) runBlock(k *ptx.Kernel, grid, block Dim3, bx, by int, args []uint32) error {
	W := cu.dev.Arch.SIMDWidth
	if W > 64 {
		return fmt.Errorf("sim: SIMD width %d exceeds the 64-lane model limit", W)
	}
	b := &blockCtx{
		cu: cu, k: k, grid: grid, block: block,
		ctaidX: uint32(bx), ctaidY: uint32(by),
		shared: make([]uint32, (k.SharedBytes+3)/4),
		W:      W,
		budget: cu.dev.StepBudget,
	}
	threads := block.Count()
	nwarps := (threads + W - 1) / W
	localWords := (k.LocalBytes + 3) / 4

	warps := make([]*warpCtx, nwarps)
	for wi := 0; wi < nwarps; wi++ {
		w := &warpCtx{
			b:          b,
			warpBase:   wi * W,
			regs:       make([]uint32, k.NumRegs*W),
			localWords: localWords,
		}
		if localWords > 0 {
			w.local = make([]uint32, localWords*W)
		}
		var mask uint64
		for l := 0; l < W; l++ {
			t := w.warpBase + l
			if t >= threads {
				break
			}
			mask |= 1 << uint(l)
			w.tid[0][l] = uint32(t % block.X)
			w.tid[1][l] = uint32(t / block.X)
		}
		w.frames = []frame{{pc: 0, mask: mask, reconv: len(k.Instrs)}}
		warps[wi] = w
	}

	for {
		remaining := 0
		for _, w := range warps {
			if w.done {
				continue
			}
			remaining++
			if w.atBarrier {
				continue
			}
			if err := w.run(); err != nil {
				return err
			}
		}
		if remaining == 0 {
			return nil
		}
		// Every live warp has either finished this pass at a barrier or
		// completed; release the barrier.
		released := false
		for _, w := range warps {
			if !w.done && w.atBarrier {
				w.atBarrier = false
				released = true
			}
		}
		if !released {
			allDone := true
			for _, w := range warps {
				if !w.done {
					allDone = false
				}
			}
			if allDone {
				return nil
			}
			return fmt.Errorf("sim: %s: scheduling deadlock in block (%d,%d)", k.Name, bx, by)
		}
	}
}

func f32(v uint32) float32   { return math.Float32frombits(v) }
func fbits(f float32) uint32 { return math.Float32bits(f) }
func boolToU32(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// fetch materialises an operand into per-lane values.
func (w *warpCtx) fetch(o ptx.Operand, dst *[64]uint32) {
	W := w.b.W
	switch {
	case o.IsImm:
		for l := 0; l < W; l++ {
			dst[l] = o.Imm
		}
	case o.IsSpec:
		w.fetchSpecial(o.Spec, dst)
	case o.Reg == ptx.NoReg:
		for l := 0; l < W; l++ {
			dst[l] = 0
		}
	default:
		copy(dst[:W], w.regs[int(o.Reg)*W:int(o.Reg)*W+W])
	}
}

func (w *warpCtx) fetchSpecial(s ptx.SpecialReg, dst *[64]uint32) {
	W := w.b.W
	fill := func(v uint32) {
		for l := 0; l < W; l++ {
			dst[l] = v
		}
	}
	switch s {
	case ptx.SrTidX:
		copy(dst[:W], w.tid[0][:W])
	case ptx.SrTidY:
		copy(dst[:W], w.tid[1][:W])
	case ptx.SrNtidX:
		fill(uint32(w.b.block.X))
	case ptx.SrNtidY:
		fill(uint32(w.b.block.Y))
	case ptx.SrCtaidX:
		fill(w.b.ctaidX)
	case ptx.SrCtaidY:
		fill(w.b.ctaidY)
	case ptx.SrNctaidX:
		fill(uint32(w.b.grid.X))
	case ptx.SrNctaidY:
		fill(uint32(w.b.grid.Y))
	case ptx.SrWarpSize:
		fill(uint32(W))
	default:
		fill(0)
	}
}

// activeUnderGuard applies the instruction's guard predicate to the mask.
func (w *warpCtx) activeUnderGuard(in *ptx.Instruction, mask uint64) uint64 {
	if in.GuardPred == ptx.NoReg {
		return mask
	}
	W := w.b.W
	base := int(in.GuardPred) * W
	var out uint64
	for l := 0; l < W; l++ {
		if mask&(1<<uint(l)) == 0 {
			continue
		}
		p := w.regs[base+l] != 0
		if p != in.GuardNeg {
			out |= 1 << uint(l)
		}
	}
	return out
}

// run executes the warp until it completes or reaches a barrier.
func (w *warpCtx) run() error {
	instrs := w.b.k.Instrs
	cu := w.b.cu
	for len(w.frames) > 0 {
		fi := len(w.frames) - 1
		f := w.frames[fi]
		if f.pc >= len(instrs) || f.pc == f.reconv || f.mask == 0 {
			w.frames = w.frames[:fi]
			continue
		}
		b := w.b
		b.steps++
		if b.budget > 0 && b.steps > b.budget {
			return fmt.Errorf("sim: %s: block (%d,%d) exceeded the %d warp-instruction step budget: %w",
				b.k.Name, b.ctaidX, b.ctaidY, b.budget, ErrWatchdog)
		}
		if b.steps%CheckpointInterval == 0 {
			if cu.dev.cancelled.Load() {
				return fmt.Errorf("sim: %s: cancelled at step %d: %w", b.k.Name, b.steps, ErrWatchdog)
			}
			if cu.abort != nil && cu.abort.Load() {
				return errAborted
			}
		}

		in := &instrs[f.pc]
		active := w.activeUnderGuard(in, f.mask)
		lanes := mem.ActiveLanes(active)

		switch in.Op {
		case ptx.OpBra:
			cu.countOp(ptx.OpBra, ptx.SpaceNone, lanes)
			cu.branches++
			taken := active
			if in.GuardPred == ptx.NoReg {
				taken = f.mask
			}
			switch {
			case taken == f.mask:
				w.frames[fi].pc = in.Target
			case taken == 0:
				w.frames[fi].pc = f.pc + 1
			default:
				cu.divergent++
				w.frames[fi].pc = in.Join
				w.frames = append(w.frames,
					frame{pc: f.pc + 1, mask: f.mask &^ taken, reconv: in.Join},
					frame{pc: in.Target, mask: taken, reconv: in.Join},
				)
			}

		case ptx.OpBar:
			cu.countOp(ptx.OpBar, ptx.SpaceNone, lanes)
			cu.barriers++
			w.frames[fi].pc = f.pc + 1
			w.atBarrier = true
			return nil

		case ptx.OpRet:
			cu.countOp(ptx.OpRet, ptx.SpaceNone, lanes)
			for i := range w.frames {
				w.frames[i].mask &^= active
			}
			w.frames[fi].pc = f.pc + 1

		case ptx.OpLd, ptx.OpSt, ptx.OpTex, ptx.OpAtom:
			cu.countOp(in.Op, in.Space, lanes)
			if active != 0 {
				if err := w.execMem(in, active); err != nil {
					return fmt.Errorf("sim: %s: pc %d (%s): %w", w.b.k.Name, f.pc, in.Mnemonic(), err)
				}
			}
			w.frames[fi].pc = f.pc + 1

		default:
			cu.countOp(in.Op, ptx.SpaceNone, lanes)
			if active != 0 {
				w.execALU(in, active)
			}
			w.frames[fi].pc = f.pc + 1
		}
	}
	w.done = true
	return nil
}

// execALU evaluates an arithmetic/logic/movement instruction over the
// active lanes.
func (w *warpCtx) execALU(in *ptx.Instruction, active uint64) {
	W := w.b.W
	var a, b, c [64]uint32
	w.fetch(in.Src[0], &a)
	switch in.Op {
	case ptx.OpMov, ptx.OpCvt, ptx.OpNeg, ptx.OpAbs, ptx.OpNot,
		ptx.OpSqrt, ptx.OpRsqrt, ptx.OpSin, ptx.OpCos, ptx.OpEx2, ptx.OpLg2:
		// unary
	case ptx.OpFma, ptx.OpMad, ptx.OpSelp:
		w.fetch(in.Src[1], &b)
		w.fetch(in.Src[2], &c)
	default:
		w.fetch(in.Src[1], &b)
	}
	dst := w.regs[int(in.Dst)*W : int(in.Dst)*W+W]
	isF := in.Typ == ptx.F32
	isS := in.Typ == ptx.S32

	for l := 0; l < W; l++ {
		if active&(1<<uint(l)) == 0 {
			continue
		}
		av, bv, cv := a[l], b[l], c[l]
		var r uint32
		switch in.Op {
		case ptx.OpMov:
			r = av
		case ptx.OpAdd:
			if isF {
				r = fbits(f32(av) + f32(bv))
			} else {
				r = av + bv
			}
		case ptx.OpSub:
			if isF {
				r = fbits(f32(av) - f32(bv))
			} else {
				r = av - bv
			}
		case ptx.OpMul:
			if isF {
				r = fbits(f32(av) * f32(bv))
			} else {
				r = av * bv
			}
		case ptx.OpDiv:
			switch {
			case isF:
				r = fbits(f32(av) / f32(bv))
			case bv == 0:
				r = ^uint32(0)
			case isS:
				r = uint32(int32(av) / int32(bv))
			default:
				r = av / bv
			}
		case ptx.OpRem:
			switch {
			case bv == 0:
				r = av
			case isS:
				r = uint32(int32(av) % int32(bv))
			default:
				r = av % bv
			}
		case ptx.OpFma, ptx.OpMad:
			if isF {
				r = fbits(f32(av)*f32(bv) + f32(cv))
			} else {
				r = av*bv + cv
			}
		case ptx.OpNeg:
			if isF {
				r = fbits(-f32(av))
			} else {
				r = -av
			}
		case ptx.OpAbs:
			if isF {
				r = fbits(float32(math.Abs(float64(f32(av)))))
			} else if int32(av) < 0 {
				r = uint32(-int32(av))
			} else {
				r = av
			}
		case ptx.OpMin:
			switch {
			case isF:
				r = fbits(float32(math.Min(float64(f32(av)), float64(f32(bv)))))
			case isS:
				if int32(av) < int32(bv) {
					r = av
				} else {
					r = bv
				}
			default:
				if av < bv {
					r = av
				} else {
					r = bv
				}
			}
		case ptx.OpMax:
			switch {
			case isF:
				r = fbits(float32(math.Max(float64(f32(av)), float64(f32(bv)))))
			case isS:
				if int32(av) > int32(bv) {
					r = av
				} else {
					r = bv
				}
			default:
				if av > bv {
					r = av
				} else {
					r = bv
				}
			}
		case ptx.OpSqrt:
			r = fbits(float32(math.Sqrt(float64(f32(av)))))
		case ptx.OpRsqrt:
			r = fbits(float32(1 / math.Sqrt(float64(f32(av)))))
		case ptx.OpSin:
			r = fbits(float32(math.Sin(float64(f32(av)))))
		case ptx.OpCos:
			r = fbits(float32(math.Cos(float64(f32(av)))))
		case ptx.OpEx2:
			r = fbits(float32(math.Exp2(float64(f32(av)))))
		case ptx.OpLg2:
			r = fbits(float32(math.Log2(float64(f32(av)))))
		case ptx.OpAnd:
			r = av & bv
		case ptx.OpOr:
			r = av | bv
		case ptx.OpXor:
			r = av ^ bv
		case ptx.OpNot:
			r = ^av
		case ptx.OpShl:
			r = av << (bv & 31)
		case ptx.OpShr:
			if isS {
				r = uint32(int32(av) >> (bv & 31))
			} else {
				r = av >> (bv & 31)
			}
		case ptx.OpSetp:
			r = boolToU32(compare(in.Cmp, in.Typ, av, bv))
		case ptx.OpSelp:
			if cv != 0 {
				r = av
			} else {
				r = bv
			}
		case ptx.OpCvt:
			r = convert(in.Typ, in.SrcTyp, av)
		default:
			r = av
		}
		dst[l] = r
	}
}

func compare(cmp ptx.CmpOp, t ptx.ScalarType, a, b uint32) bool {
	switch t {
	case ptx.F32:
		fa, fb := f32(a), f32(b)
		switch cmp {
		case ptx.CmpEQ:
			return fa == fb
		case ptx.CmpNE:
			return fa != fb
		case ptx.CmpLT:
			return fa < fb
		case ptx.CmpLE:
			return fa <= fb
		case ptx.CmpGT:
			return fa > fb
		case ptx.CmpGE:
			return fa >= fb
		}
	case ptx.S32:
		sa, sb := int32(a), int32(b)
		switch cmp {
		case ptx.CmpEQ:
			return sa == sb
		case ptx.CmpNE:
			return sa != sb
		case ptx.CmpLT:
			return sa < sb
		case ptx.CmpLE:
			return sa <= sb
		case ptx.CmpGT:
			return sa > sb
		case ptx.CmpGE:
			return sa >= sb
		}
	default:
		switch cmp {
		case ptx.CmpEQ:
			return a == b
		case ptx.CmpNE:
			return a != b
		case ptx.CmpLT:
			return a < b
		case ptx.CmpLE:
			return a <= b
		case ptx.CmpGT:
			return a > b
		case ptx.CmpGE:
			return a >= b
		}
	}
	return false
}

func convert(to, from ptx.ScalarType, v uint32) uint32 {
	switch {
	case to == from:
		return v
	case to == ptx.F32 && from == ptx.U32:
		return fbits(float32(v))
	case to == ptx.F32 && from == ptx.S32:
		return fbits(float32(int32(v)))
	case to == ptx.U32 && from == ptx.F32:
		return uint32(int64(f32(v)))
	case to == ptx.S32 && from == ptx.F32:
		return uint32(int32(f32(v)))
	default:
		return v
	}
}
