package sim

import (
	"fmt"

	"gpucmp/internal/mem"
	"gpucmp/internal/ptx"
)

// execMem executes a load, store, texture fetch, or atomic over the active
// lanes and records the memory-system activity on the compute unit.
func (w *warpCtx) execMem(in *ptx.Instruction, active uint64) error {
	W := w.b.W
	var addr [64]uint32
	w.fetch(in.Src[0], &addr)
	if in.Off != 0 {
		for l := 0; l < W; l++ {
			addr[l] += uint32(in.Off)
		}
	}
	switch in.Space {
	case ptx.SpaceGlobal:
		if in.Op == ptx.OpAtom {
			return w.atomGlobal(in, active, &addr)
		}
		return w.globalAccess(in, active, &addr)
	case ptx.SpaceTex:
		return w.texLoad(in, active, &addr)
	case ptx.SpaceConst, ptx.SpaceParam:
		return w.constLoad(in, active, &addr)
	case ptx.SpaceShared:
		return w.sharedAccess(in, active, &addr)
	case ptx.SpaceLocal:
		return w.localAccess(in, active, &addr)
	default:
		return fmt.Errorf("unhandled space %v", in.Space)
	}
}

// globalAccess handles ld.global and st.global including the cache
// hierarchy of the device.
func (w *warpCtx) globalAccess(in *ptx.Instruction, active uint64, addr *[64]uint32) error {
	cu := w.b.cu
	W := w.b.W
	seg := uint32(cu.dev.Arch.GlobalSegmentSize)
	var segs [64]uint32
	nseg := mem.CoalesceList(addr[:W], active, seg, segs[:])

	if in.Op == ptx.OpLd {
		cu.mem.GlobalLoadAccesses++
		if cu.l1 != nil {
			for i := 0; i < nseg; i++ {
				if cu.l1.Access(segs[i]) {
					cu.mem.L1Hits++
				} else {
					cu.mem.L1Misses++
					if cu.l2.Access(segs[i]) {
						cu.mem.L2Hits++
					} else {
						cu.mem.L2Misses++
						cu.mem.GlobalLoadTrans++
					}
				}
			}
		} else {
			cu.mem.GlobalLoadTrans += int64(nseg)
		}
		dst := w.regs[int(in.Dst)*W : int(in.Dst)*W+W]
		for l := 0; l < W; l++ {
			if active&(1<<uint(l)) == 0 {
				continue
			}
			v, err := cu.dev.Global.Load(addr[l])
			if err != nil {
				return err
			}
			dst[l] = v
		}
		return nil
	}

	// Store.
	cu.mem.GlobalStoreAccesses++
	if cu.l2 != nil {
		for i := 0; i < nseg; i++ {
			if cu.l2.Access(segs[i]) {
				cu.mem.L2Hits++
			} else {
				cu.mem.L2Misses++
				cu.mem.GlobalStoreTrans++
			}
		}
	} else {
		cu.mem.GlobalStoreTrans += int64(nseg)
	}
	var val [64]uint32
	w.fetch(in.Src[1], &val)
	for l := 0; l < W; l++ {
		if active&(1<<uint(l)) == 0 {
			continue
		}
		if err := cu.dev.Global.Store(addr[l], val[l]); err != nil {
			return err
		}
	}
	return nil
}

// texLoad fetches read-only global data through the texture-cache path.
// Devices without a texture cache degrade to the ordinary global path.
func (w *warpCtx) texLoad(in *ptx.Instruction, active uint64, addr *[64]uint32) error {
	cu := w.b.cu
	if cu.tex == nil {
		ld := *in
		ld.Op = ptx.OpLd
		return w.globalAccess(&ld, active, addr)
	}
	W := w.b.W
	seg := cu.tex.LineBytes()
	var segs [64]uint32
	nseg := mem.CoalesceList(addr[:W], active, seg, segs[:])
	cu.mem.TexAccesses++
	for i := 0; i < nseg; i++ {
		if cu.tex.Access(segs[i]) {
			cu.mem.TexHits++
		} else {
			cu.mem.TexMisses++
			if cu.l2 != nil && cu.l2.Access(segs[i]) {
				cu.mem.L2Hits++
			} else {
				cu.mem.TexTrans++
			}
		}
	}
	dst := w.regs[int(in.Dst)*W : int(in.Dst)*W+W]
	for l := 0; l < W; l++ {
		if active&(1<<uint(l)) == 0 {
			continue
		}
		v, err := cu.dev.Global.Load(addr[l])
		if err != nil {
			return err
		}
		dst[l] = v
	}
	return nil
}

// constLoad reads the constant segment (kernel arguments live in its first
// 256 bytes; constant buffers after them).
func (w *warpCtx) constLoad(in *ptx.Instruction, active uint64, addr *[64]uint32) error {
	cu := w.b.cu
	W := w.b.W
	if in.Space == ptx.SpaceConst {
		cu.mem.ConstAccesses++
		cu.mem.ConstSerial += int64(mem.DistinctAddrs(addr[:W], active))
		if cu.constc != nil {
			var segs [64]uint32
			nseg := mem.CoalesceList(addr[:W], active, cu.constc.LineBytes(), segs[:])
			for i := 0; i < nseg; i++ {
				if !cu.constc.Access(segs[i]) {
					cu.mem.ConstMisses++
				}
			}
		}
	}
	cs := cu.dev.constSeg
	dst := w.regs[int(in.Dst)*W : int(in.Dst)*W+W]
	for l := 0; l < W; l++ {
		if active&(1<<uint(l)) == 0 {
			continue
		}
		i := addr[l] / 4
		if int(i) >= len(cs) {
			return fmt.Errorf("constant access at 0x%x beyond segment", addr[l])
		}
		dst[l] = cs[i]
	}
	return nil
}

func (w *warpCtx) sharedAccess(in *ptx.Instruction, active uint64, addr *[64]uint32) error {
	cu := w.b.cu
	W := w.b.W
	sh := w.b.shared
	cu.mem.SharedAccesses++
	cu.mem.SharedSerial += int64(mem.BankConflictFactor(addr[:W], active, cu.dev.Arch.SharedMemBanks))

	if in.Op == ptx.OpAtom {
		return w.atomShared(in, active, addr)
	}
	if in.Op == ptx.OpLd {
		dst := w.regs[int(in.Dst)*W : int(in.Dst)*W+W]
		for l := 0; l < W; l++ {
			if active&(1<<uint(l)) == 0 {
				continue
			}
			i := addr[l] / 4
			if int(i) >= len(sh) {
				return fmt.Errorf("shared access at 0x%x beyond %d bytes", addr[l], len(sh)*4)
			}
			dst[l] = sh[i]
		}
		return nil
	}
	var val [64]uint32
	w.fetch(in.Src[1], &val)
	for l := 0; l < W; l++ {
		if active&(1<<uint(l)) == 0 {
			continue
		}
		i := addr[l] / 4
		if int(i) >= len(sh) {
			return fmt.Errorf("shared access at 0x%x beyond %d bytes", addr[l], len(sh)*4)
		}
		sh[i] = val[l]
	}
	return nil
}

func (w *warpCtx) localAccess(in *ptx.Instruction, active uint64, addr *[64]uint32) error {
	cu := w.b.cu
	W := w.b.W
	cu.mem.LocalAccesses++
	lanes := mem.ActiveLanes(active)
	seg := cu.dev.Arch.GlobalSegmentSize
	trans := (lanes*4 + seg - 1) / seg
	if cu.l1 != nil {
		// Local memory on cached devices is effectively L1-resident.
		cu.mem.L1Hits += int64(trans)
	} else {
		cu.mem.LocalTrans += int64(trans)
	}

	if in.Op == ptx.OpLd {
		dst := w.regs[int(in.Dst)*W : int(in.Dst)*W+W]
		for l := 0; l < W; l++ {
			if active&(1<<uint(l)) == 0 {
				continue
			}
			i := int(addr[l] / 4)
			if i >= w.localWords {
				return fmt.Errorf("local access at 0x%x beyond %d bytes", addr[l], w.localWords*4)
			}
			dst[l] = w.local[l*w.localWords+i]
		}
		return nil
	}
	var val [64]uint32
	w.fetch(in.Src[1], &val)
	for l := 0; l < W; l++ {
		if active&(1<<uint(l)) == 0 {
			continue
		}
		i := int(addr[l] / 4)
		if i >= w.localWords {
			return fmt.Errorf("local access at 0x%x beyond %d bytes", addr[l], w.localWords*4)
		}
		w.local[l*w.localWords+i] = val[l]
	}
	return nil
}

func applyAtom(op ptx.AtomOp, old, v uint32) uint32 {
	switch op {
	case ptx.AtomAdd:
		return old + v
	case ptx.AtomOr:
		return old | v
	case ptx.AtomAnd:
		return old & v
	case ptx.AtomMax:
		if v > old {
			return v
		}
		return old
	case ptx.AtomMin:
		if v < old {
			return v
		}
		return old
	case ptx.AtomExch:
		return v
	default:
		return old
	}
}

func (w *warpCtx) atomGlobal(in *ptx.Instruction, active uint64, addr *[64]uint32) error {
	cu := w.b.cu
	W := w.b.W
	cu.mem.AtomicOps += int64(mem.ActiveLanes(active))
	cu.mem.GlobalStoreTrans += int64(mem.DistinctAddrs(addr[:W], active))
	var val [64]uint32
	w.fetch(in.Src[1], &val)
	dst := w.regs[int(in.Dst)*W : int(in.Dst)*W+W]
	for l := 0; l < W; l++ {
		if active&(1<<uint(l)) == 0 {
			continue
		}
		old, err := cu.dev.Global.Atomic(addr[l], func(o uint32) uint32 { return applyAtom(in.Atom, o, val[l]) })
		if err != nil {
			return err
		}
		dst[l] = old
	}
	return nil
}

func (w *warpCtx) atomShared(in *ptx.Instruction, active uint64, addr *[64]uint32) error {
	cu := w.b.cu
	W := w.b.W
	sh := w.b.shared
	cu.mem.AtomicOps += int64(mem.ActiveLanes(active))
	var val [64]uint32
	w.fetch(in.Src[1], &val)
	dst := w.regs[int(in.Dst)*W : int(in.Dst)*W+W]
	for l := 0; l < W; l++ {
		if active&(1<<uint(l)) == 0 {
			continue
		}
		i := addr[l] / 4
		if int(i) >= len(sh) {
			return fmt.Errorf("shared atomic at 0x%x beyond %d bytes", addr[l], len(sh)*4)
		}
		old := sh[i]
		sh[i] = applyAtom(in.Atom, old, val[l])
		dst[l] = old
	}
	return nil
}
