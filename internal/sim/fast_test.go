package sim

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"gpucmp/internal/arch"
	"gpucmp/internal/compiler"
	"gpucmp/internal/kir"
)

// cancelProbeKIR builds a kernel where work-group (0,0) fails immediately
// with an out-of-bounds store while every other work-group spins forever.
// With an unbounded step budget the only way Launch can return is sibling
// cancellation: the failing unit's error must trip the shared abort flag
// and reclaim the spinning units at their next checkpoint.
func cancelProbeKIR() *kir.Kernel {
	b := kir.NewKernel("cancel_probe")
	out := b.GlobalBuffer("out", kir.U32)
	b.IfElse(kir.Eq(kir.Bi(kir.CtaidX), kir.U(0)), func() {
		// 4*(1<<26) bytes past the buffer base: beyond any backing store.
		b.Store(out, kir.U(1<<26), kir.U(1))
	}, func() {
		b.For("i", kir.U(0), kir.U(1), kir.U(0), func(i kir.Expr) {
			b.Store(out, kir.U(0), i)
		})
	})
	return b.MustBuild()
}

// TestLaunchErrorCancelsSiblings is the regression test for the parallel
// Launch bug where one compute unit's failure did not stop its siblings:
// a launch whose other work-groups never terminate would hang in wg.Wait
// instead of returning the error. Both engines must observe the abort.
func TestLaunchErrorCancelsSiblings(t *testing.T) {
	pk := compile(t, cancelProbeKIR(), compiler.CUDA())
	for _, eng := range []Engine{EngineThreaded, EngineFast, EngineReference} {
		eng := eng
		t.Run(eng.String(), func(t *testing.T) {
			d := newDev(t, arch.GTX480())
			d.Parallel = true
			d.Engine = eng
			d.Reference = eng == EngineReference
			d.StepBudget = 0 // unbounded: the watchdog cannot save us
			out := uploadU32(t, d, make([]uint32, 64))

			done := make(chan error, 1)
			go func() {
				// One block per compute unit: block 0 fails, all 14 others spin.
				_, err := d.Launch(pk, Dim3{X: d.Arch.ComputeUnits, Y: 1}, Dim3{X: 32, Y: 1}, []uint32{out})
				done <- err
			}()
			select {
			case err := <-done:
				if err == nil {
					t.Fatal("Launch returned nil error for an out-of-bounds store")
				}
				if errors.Is(err, errAborted) {
					t.Fatalf("Launch leaked the internal abort sentinel: %v", err)
				}
			case <-time.After(30 * time.Second):
				t.Fatal("Launch did not return: sibling compute units were not cancelled")
			}
		})
	}
}

// stressKIR exercises every fast path at once: divergent branches, shared
// memory with bank traffic, a barrier, global atomics, and both uniform
// and per-lane addressing.
func stressKIR() *kir.Kernel {
	b := kir.NewKernel("stress")
	in := b.GlobalBuffer("in", kir.U32)
	out := b.GlobalBuffer("out", kir.U32)
	ctr := b.GlobalBuffer("ctr", kir.U32)
	tile := b.SharedArray("tile", kir.U32, 64)
	gid := b.Declare("gid", b.GlobalIDX())
	tid := b.Declare("tid", kir.Bi(kir.TidX))
	v := b.Declare("v", b.Load(in, gid))
	b.Store(tile, tid, v)
	b.Barrier()
	// Divergent half-warp branch: odd lanes read a shuffled slot.
	b.IfElse(kir.Eq(kir.Rem(tid, kir.U(2)), kir.U(0)), func() {
		b.Assign(v, kir.Add(v, b.Load(tile, tid)))
	}, func() {
		b.Assign(v, kir.Add(v, b.Load(tile, kir.Rem(kir.Add(tid, kir.U(7)), kir.U(64)))))
	})
	b.If(kir.Gt(v, kir.U(100)), func() {
		b.Atomic(ctr, kir.U(0), kir.AtomicAdd, kir.U(1))
	})
	b.Store(out, gid, v)
	return b.MustBuild()
}

// TestParallelMatchesSequentialStress pins the bit-identical contract at
// the optimised engines' hot paths under -race: each of fast and threaded,
// sequential and parallel, must produce the same memory image and a
// DeepEqual trace as the sequential reference engine for a kernel with
// divergence, shared memory, barriers and atomics.
func TestParallelMatchesSequentialStress(t *testing.T) {
	const (
		blocks    = 33 // not a multiple of the unit count: uneven tails
		blockSize = 64
		n         = blocks * blockSize
	)
	in := make([]uint32, n)
	for i := range in {
		in[i] = uint32(i*2654435761) % 251
	}
	run := func(parallel bool, eng Engine) (*Trace, []uint32, uint32) {
		d := newDev(t, arch.GTX480())
		d.Parallel = parallel
		d.Engine = eng
		d.Reference = eng == EngineReference
		pk := compile(t, stressKIR(), compiler.OpenCL())
		inAddr := uploadU32(t, d, in)
		outAddr := uploadU32(t, d, make([]uint32, n))
		ctrAddr := uploadU32(t, d, []uint32{0})
		tr, err := d.Launch(pk, Dim3{X: blocks, Y: 1}, Dim3{X: blockSize, Y: 1},
			[]uint32{inAddr, outAddr, ctrAddr})
		if err != nil {
			t.Fatal(err)
		}
		outv := make([]uint32, n)
		if err := d.Global.ReadWords(outAddr, outv); err != nil {
			t.Fatal(err)
		}
		var ctrv [1]uint32
		if err := d.Global.ReadWords(ctrAddr, ctrv[:]); err != nil {
			t.Fatal(err)
		}
		return tr, outv, ctrv[0]
	}
	trRef, outRef, ctrRef := run(false, EngineReference)
	for _, eng := range []Engine{EngineFast, EngineThreaded} {
		for _, parallel := range []bool{false, true} {
			tr, out, ctr := run(parallel, eng)
			label := eng.String()
			if parallel {
				label += "/parallel"
			}
			if !reflect.DeepEqual(out, outRef) || ctr != ctrRef {
				t.Fatalf("%s engine output differs from reference engine", label)
			}
			if !reflect.DeepEqual(tr, trRef) {
				t.Fatalf("%s trace differs:\nref: %s\ngot: %s", label, trRef.Summary(), tr.Summary())
			}
		}
	}
	if trRef.DivergentBranches == 0 || trRef.Mem.AtomicOps == 0 || trRef.Mem.SharedAccesses == 0 {
		t.Fatalf("stress kernel did not exercise the intended paths: %s", trRef.Summary())
	}
}

// TestSteadyStateAllocsPerBlock pins the arena contract: once a device has
// executed a kernel shape once, running more work-groups of it must not
// allocate. The launch itself has fixed per-launch overhead (compute-unit
// statistic shards, the trace), so the test compares a small and a large
// grid and requires the per-extra-block delta to be ~zero.
func TestSteadyStateAllocsPerBlock(t *testing.T) {
	d := newDev(t, arch.GTX480())
	d.Parallel = false // AllocsPerRun needs single-goroutine determinism
	pk := compile(t, stressKIR(), compiler.CUDA())
	const blockSize = 64
	const smallGrid, largeGrid = 2, 130
	maxN := largeGrid * blockSize
	inAddr := uploadU32(t, d, make([]uint32, maxN))
	outAddr := uploadU32(t, d, make([]uint32, maxN))
	ctrAddr := uploadU32(t, d, []uint32{0})
	args := []uint32{inAddr, outAddr, ctrAddr}

	launch := func(grid int) {
		if _, err := d.Launch(pk, Dim3{X: grid, Y: 1}, Dim3{X: blockSize, Y: 1}, args); err != nil {
			t.Fatal(err)
		}
	}
	launch(largeGrid) // warm the decode cache and grow the arenas

	small := testing.AllocsPerRun(10, func() { launch(smallGrid) })
	large := testing.AllocsPerRun(10, func() { launch(largeGrid) })
	perBlock := (large - small) / float64(largeGrid-smallGrid)
	t.Logf("allocs/launch: small=%v large=%v -> %.4f allocs per extra block", small, large, perBlock)
	if perBlock > 0.5 {
		t.Errorf("steady-state allocations scale with grid size: %.2f allocs per work-group", perBlock)
	}
}
