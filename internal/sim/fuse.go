package sim

import (
	"sync"
	"sync/atomic"

	"gpucmp/internal/ptx"
)

// This file builds the threaded engine's fused program: straight-line runs
// of predecoded ALU and memory ops are grouped into superinstruction
// segments that execute under a single dispatch (threaded.go), and hot
// segments are compiled into closure sequences (compile.go). Fusion is a
// pure analysis over []decodedOp — it never changes what executes, only
// how often the interpreter's outer loop runs.

const (
	// compileThreshold is how many times a fused segment must execute on a
	// device before it is compiled into closures. Low enough that every
	// loop body compiles almost immediately; high enough that straight-line
	// prologue code executed once per warp never pays the compile.
	compileThreshold = 8

	// threadedCacheCap bounds the per-device fused-program cache, mirroring
	// the predecode cache's role but with an explicit ceiling because fused
	// programs additionally pin compiled closures.
	threadedCacheCap = 256
)

// tSeg is one fused superinstruction: the ops in [start, end) are all
// straight-line (no branch, barrier or ret, and no branch target inside),
// so a warp that reaches start with some mask executes every op in order
// under that mask. hits counts executions until the segment crosses
// compileThreshold and is compiled; compiled is published with a CAS so
// parallel compute units racing to compile agree on one winner.
type tSeg struct {
	start, end int32
	hits       atomic.Uint32
	compiled   atomic.Pointer[compiledSeg]

	// counts are the segment's dynamic-instruction-mix deltas (dynOps
	// buckets are per warp instruction, so they are mask-independent and
	// exact for any execution of the segment); nUnguarded is how many of
	// its ops have no guard, whose lane-instruction contribution is
	// nUnguarded x ActiveLanes(mask). Together they let both execution
	// paths replace per-op counting with one batched update, with only
	// guarded ops left to account individually.
	counts     []countDelta
	nUnguarded int32
}

// tProgram is the fused form of one decoded kernel on one device. segAt
// maps a pc to the segment starting there (-1 otherwise); the interpreter
// consults it once per dispatch.
type tProgram struct {
	dk    *decodedKernel
	segs  []tSeg
	segAt []int32
}

// threadedCache caches fused programs per kernel, keyed by pointer
// identity like the predecode cache (kernels are immutable and shared).
// It is bounded: at capacity an arbitrary entry is evicted, counted in the
// process-wide engine stats so a fleet can see churn on /metrics.
type threadedCache struct {
	mu sync.Mutex
	m  map[*ptx.Kernel]*tProgram
}

func (c *threadedCache) get(k *ptx.Kernel, dk *decodedKernel) *tProgram {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := c.m[k]; ok {
		return p
	}
	if c.m == nil {
		c.m = make(map[*ptx.Kernel]*tProgram)
	}
	if len(c.m) >= threadedCacheCap {
		for key := range c.m {
			delete(c.m, key)
			engineGlobals.tcacheSize.Add(-1)
			engineGlobals.tcacheEvicts.Add(1)
			break
		}
	}
	p := fuseKernel(dk)
	c.m[k] = p
	engineGlobals.tcacheSize.Add(1)
	return p
}

// fusable reports whether an op may live inside a superinstruction: ALU
// and memory ops qualify (guarded ones included — the guard mask is
// re-derived per op inside the segment); control flow never does.
func fusable(d *decodedOp) bool { return d.kind == dkALU || d.kind == dkMem }

// fuseKernel partitions the program into superinstruction segments. A pc
// is a leader — a position some frame can resume at — if it is the entry,
// a branch target or reconvergence point, or the successor of a branch,
// barrier or ret. Segments are maximal runs of fusable ops that contain no
// leader after their first op, so a warp can never need to enter one in
// the middle; runs of length one stay plain interpreted ops.
func fuseKernel(dk *decodedKernel) *tProgram {
	ops := dk.ops
	n := len(ops)
	leader := make([]bool, n+1)
	leader[0] = true
	for i := range ops {
		switch ops[i].kind {
		case dkBra:
			if t := int(ops[i].target); t >= 0 && t <= n {
				leader[t] = true
			}
			if j := int(ops[i].join); j >= 0 && j <= n {
				leader[j] = true
			}
			leader[i+1] = true
		case dkBar, dkRet:
			leader[i+1] = true
		}
	}
	p := &tProgram{dk: dk, segAt: make([]int32, n)}
	for i := range p.segAt {
		p.segAt[i] = -1
	}
	// Two passes so segs is allocated exactly once: tSeg embeds atomics,
	// which must not be moved by slice growth once handed to the engine.
	nseg := 0
	scan := func(emit func(i, j int)) {
		for i := 0; i < n; {
			if !fusable(&ops[i]) {
				i++
				continue
			}
			j := i + 1
			for j < n && !leader[j] && fusable(&ops[j]) {
				j++
			}
			if j-i >= 2 {
				emit(i, j)
			}
			i = j
		}
	}
	scan(func(i, j int) { nseg++ })
	p.segs = make([]tSeg, 0, nseg)
	scan(func(i, j int) {
		p.segAt[i] = int32(len(p.segs))
		p.segs = p.segs[:len(p.segs)+1]
		s := &p.segs[len(p.segs)-1]
		s.start, s.end = int32(i), int32(j)
		s.counts, s.nUnguarded = segCounts(ops[i:j])
	})
	return p
}

// segCounts precomputes a segment's dynamic-instruction-mix deltas (the
// same dynOps bucket scheme as cuState.countOp) and its unguarded-op
// count.
func segCounts(ops []decodedOp) ([]countDelta, int32) {
	var acc [512]int64 // same shape as cuState.dynOps
	var idxs []int32
	nUnguarded := int32(0)
	for i := range ops {
		d := &ops[i]
		idx := int32(d.op) << 3
		if d.kind == dkMem {
			idx |= int32(d.space)
		}
		if acc[idx] == 0 {
			idxs = append(idxs, idx)
		}
		acc[idx]++
		if d.guard < 0 {
			nUnguarded++
		}
	}
	counts := make([]countDelta, len(idxs))
	for i, idx := range idxs {
		counts[i] = countDelta{idx: idx, n: acc[idx]}
	}
	return counts, nUnguarded
}
