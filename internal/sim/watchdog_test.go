package sim

import (
	"errors"
	"testing"
	"time"

	"gpucmp/internal/arch"
	"gpucmp/internal/compiler"
	"gpucmp/internal/kir"
)

// hangKIR builds a kernel that never terminates: a for loop with step 0
// whose induction variable stays below the limit forever. The store keeps
// the loop alive through the optimiser.
func hangKIR() *kir.Kernel {
	b := kir.NewKernel("hang")
	out := b.GlobalBuffer("out", kir.U32)
	b.For("i", kir.U(0), kir.U(1), kir.U(0), func(i kir.Expr) {
		b.Store(out, kir.U(0), i)
	})
	return b.MustBuild()
}

func TestWatchdogStepBudget(t *testing.T) {
	for _, p := range []compiler.Personality{compiler.CUDA(), compiler.OpenCL()} {
		pk := compile(t, hangKIR(), p)
		d := newDev(t, arch.GTX480())
		d.StepBudget = 50_000
		out := uploadU32(t, d, make([]uint32, 1))
		_, err := d.Launch(pk, Dim3{X: 2, Y: 1}, Dim3{X: 32, Y: 1}, []uint32{out})
		if !errors.Is(err, ErrWatchdog) {
			t.Fatalf("%s: Launch of non-terminating kernel: err = %v, want ErrWatchdog", p.Name, err)
		}
	}
}

func TestWatchdogCancelReclaimsLaunch(t *testing.T) {
	pk := compile(t, hangKIR(), compiler.CUDA())
	d := newDev(t, arch.GTX480())
	d.StepBudget = 0 // unbounded: only Cancel can stop it
	out := uploadU32(t, d, make([]uint32, 1))

	done := make(chan error, 1)
	go func() {
		_, err := d.Launch(pk, Dim3{X: 1, Y: 1}, Dim3{X: 32, Y: 1}, []uint32{out})
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	d.Cancel()
	select {
	case err := <-done:
		if !errors.Is(err, ErrWatchdog) {
			t.Fatalf("cancelled Launch: err = %v, want ErrWatchdog", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Cancel did not reclaim the launch within 10s")
	}
	if !d.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
	// Subsequent launches on a cancelled device fail fast.
	if _, err := d.Launch(pk, Dim3{X: 1, Y: 1}, Dim3{X: 1, Y: 1}, []uint32{out}); !errors.Is(err, ErrWatchdog) {
		t.Fatalf("Launch on cancelled device: err = %v, want ErrWatchdog", err)
	}
}

// TestWatchdogSparesTerminatingKernels checks the default budget is far
// above what a real kernel executes: a vector add must run unharmed.
func TestWatchdogSparesTerminatingKernels(t *testing.T) {
	pk := compile(t, vecAddKIR(), compiler.CUDA())
	d := newDev(t, arch.GTX480())
	if d.StepBudget != DefaultStepBudget {
		t.Fatalf("StepBudget = %d, want DefaultStepBudget", d.StepBudget)
	}
	n := 1024
	a := uploadF32(t, d, make([]float32, n))
	b := uploadF32(t, d, make([]float32, n))
	c := uploadF32(t, d, make([]float32, n))
	if _, err := d.Launch(pk, Dim3{X: 8, Y: 1}, Dim3{X: 128, Y: 1}, []uint32{a, b, c, uint32(n)}); err != nil {
		t.Fatalf("Launch: %v", err)
	}
}
