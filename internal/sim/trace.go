package sim

import (
	"fmt"
	"sync/atomic"

	"gpucmp/internal/mem"
	"gpucmp/internal/ptx"
)

// MemCounters aggregates the memory-system activity of one launch. All
// "Trans" fields are DRAM transactions after any caches; "Accesses" are
// warp-level instructions.
type MemCounters struct {
	GlobalLoadAccesses  int64
	GlobalStoreAccesses int64
	GlobalLoadTrans     int64
	GlobalStoreTrans    int64
	L1Hits, L1Misses    int64
	L2Hits, L2Misses    int64

	TexAccesses int64
	TexHits     int64
	TexMisses   int64
	TexTrans    int64

	ConstAccesses int64
	ConstSerial   int64 // sum of distinct-address factors
	ConstMisses   int64

	SharedAccesses int64
	SharedSerial   int64 // sum of bank-conflict factors

	LocalAccesses int64
	LocalTrans    int64

	AtomicOps int64
}

// TexLineBytes is the texture-cache line (and texture DRAM fetch) size.
const TexLineBytes = 32

// DRAMBytes returns the total DRAM traffic in bytes given the device's
// transaction segment size. Texture misses fetch TexLineBytes-sized lines.
func (m *MemCounters) DRAMBytes(segBytes int) int64 {
	trans := m.GlobalLoadTrans + m.GlobalStoreTrans + m.LocalTrans + m.ConstMisses
	return trans*int64(segBytes) + m.TexTrans*TexLineBytes
}

// Trace is the dynamic execution record of one kernel launch.
type Trace struct {
	Kernel    string
	Toolchain string
	Device    string

	Grid, Block Dim3
	WarpWidth   int
	Warps       int64 // total warps launched

	Dyn        *ptx.Stats // dynamic warp-instruction counts
	LaneInstrs int64      // thread-level instruction count

	Mem MemCounters

	Barriers          int64
	Branches          int64
	DivergentBranches int64

	// ResidentGroups is the occupancy the device achieved for this launch.
	ResidentGroups int
}

// Summary renders the trace as one compact line — the shape the
// differential fuzzer attaches to divergence reports so a failing kernel
// arrives with its dynamic behaviour, not just wrong bytes.
func (t *Trace) Summary() string {
	return fmt.Sprintf(
		"%s/%s on %s: grid %dx%d block %dx%d, %d warp-instrs (%d lane-instrs), "+
			"%d branches (%d divergent), %d barriers, %d gld/%d gst trans, "+
			"%d shared acc (serial %d), %d const acc, %d local trans, %d atomics",
		t.Kernel, t.Toolchain, t.Device,
		t.Grid.X, t.Grid.Y, t.Block.X, t.Block.Y,
		t.Dyn.Total, t.LaneInstrs,
		t.Branches, t.DivergentBranches, t.Barriers,
		t.Mem.GlobalLoadTrans, t.Mem.GlobalStoreTrans,
		t.Mem.SharedAccesses, t.Mem.SharedSerial,
		t.Mem.ConstAccesses, t.Mem.LocalTrans, t.Mem.AtomicOps)
}

func newTrace(k *ptx.Kernel, d *Device, grid, block Dim3) *Trace {
	warpsPerBlock := (block.Count() + d.Arch.SIMDWidth - 1) / d.Arch.SIMDWidth
	return &Trace{
		Kernel:         k.Name,
		Toolchain:      k.Toolchain,
		Device:         d.Arch.Name,
		Grid:           grid,
		Block:          block,
		WarpWidth:      d.Arch.SIMDWidth,
		Warps:          int64(grid.Count()) * int64(warpsPerBlock),
		Dyn:            ptx.NewStats(),
		ResidentGroups: d.ResidentGroups(k, block),
	}
}

func (t *Trace) merge(cu *cuState) {
	for i, n := range cu.dynOps {
		if n == 0 {
			continue
		}
		in := ptx.Instruction{Op: ptx.Opcode(i >> 3), Space: ptx.Space(i & 7)}
		t.Dyn.Count(&in, n)
	}
	t.LaneInstrs += cu.laneInstrs
	t.Barriers += cu.barriers
	t.Branches += cu.branches
	t.DivergentBranches += cu.divergent

	m := &t.Mem
	c := &cu.mem
	m.GlobalLoadAccesses += c.GlobalLoadAccesses
	m.GlobalStoreAccesses += c.GlobalStoreAccesses
	m.GlobalLoadTrans += c.GlobalLoadTrans
	m.GlobalStoreTrans += c.GlobalStoreTrans
	m.L1Hits += c.L1Hits
	m.L1Misses += c.L1Misses
	m.L2Hits += c.L2Hits
	m.L2Misses += c.L2Misses
	m.TexAccesses += c.TexAccesses
	m.TexHits += c.TexHits
	m.TexMisses += c.TexMisses
	m.TexTrans += c.TexTrans
	m.ConstAccesses += c.ConstAccesses
	m.ConstSerial += c.ConstSerial
	m.ConstMisses += c.ConstMisses
	m.SharedAccesses += c.SharedAccesses
	m.SharedSerial += c.SharedSerial
	m.LocalAccesses += c.LocalAccesses
	m.LocalTrans += c.LocalTrans
	m.AtomicOps += c.AtomicOps
}

// cuState is the private execution state of one compute unit: its caches
// and statistic shards. Each compute unit runs on its own goroutine, so no
// locking is needed.
type cuState struct {
	dev   *Device
	index int

	// abort is the shared per-launch kill switch (see Launch); arena is
	// this unit's reusable block-execution state (fast engine only).
	abort *atomic.Bool
	arena *cuArena

	tex    *mem.Cache
	l1     *mem.Cache
	l2     *mem.Cache // this unit's slice of the shared L2
	constc *mem.Cache

	dynOps     [512]int64 // flat [opcode << 3 | space]
	laneInstrs int64
	barriers   int64
	branches   int64
	divergent  int64
	mem        MemCounters

	// Threaded-engine shards: fused-segment dispatches, warp instructions
	// retired inside them, and segments compiled to closures by this unit.
	// Launch folds them into the Device and process-wide stats; they are
	// never part of the Trace (which must stay engine-invariant).
	superRuns     int64
	superOps      int64
	blockCompiles int64
}

func newCUState(d *Device, idx int) *cuState {
	a := d.Arch
	cu := &cuState{dev: d, index: idx}
	seg := uint32(a.GlobalSegmentSize)
	if a.HasTextureCache {
		// The texture path fetches at a finer granularity than the
		// general-purpose path, which is why irregular gathers waste less
		// bandwidth through it (the Fig. 4 mechanism).
		cu.tex = mem.NewCache(12*1024, TexLineBytes)
	}
	if a.HasL1L2 || a.ImplicitlyCached {
		l1Size := uint32(16 * 1024)
		if a.ImplicitlyCached {
			l1Size = 32 * 1024
		}
		cu.l1 = mem.NewCache(l1Size, seg)
		cu.l2 = mem.NewCache(uint32(768*1024/a.ComputeUnits), seg)
	}
	if a.HasConstantCache {
		cu.constc = mem.NewCache(8*1024, seg)
	}
	return cu
}

// reset returns a compute unit to the state a freshly-built one starts in
// — zero counters, cold caches — so the fast engine can reuse units (and
// their cache backing arrays) across launches without changing anything
// observable.
func (cu *cuState) reset() {
	cu.dynOps = [512]int64{}
	cu.laneInstrs, cu.barriers, cu.branches, cu.divergent = 0, 0, 0, 0
	cu.superRuns, cu.superOps, cu.blockCompiles = 0, 0, 0
	cu.mem = MemCounters{}
	for _, c := range []*mem.Cache{cu.tex, cu.l1, cu.l2, cu.constc} {
		if c != nil {
			c.Invalidate()
			c.Hits, c.Misses = 0, 0
		}
	}
}

func (cu *cuState) countOp(op ptx.Opcode, space ptx.Space, lanes int) {
	cu.dynOps[int(op)<<3|int(space)]++
	cu.laneInstrs += int64(lanes)
}
