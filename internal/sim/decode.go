package sim

import (
	"sync"

	"gpucmp/internal/ptx"
)

// This file lowers a ptx.Kernel once per (device, kernel) pair into a
// dense table of decodedOp — the predecoded program the fast interpreter
// in fast.go executes. Decoding resolves everything the reference
// interpreter re-derives on every dynamic instruction: which top-level
// handler runs (branch / barrier / ret / memory / ALU), which memory space
// a load or store dispatches to, the exact op x type execution kind (so
// the inner loop switches once per warp instruction instead of once per
// lane), how many source operands the instruction reads, and each
// operand's kind (zero, immediate, register, tid, or block-constant
// special register).

// Top-level dispatch kinds.
const (
	dkALU uint8 = iota
	dkBra
	dkBar
	dkRet
	dkMem
)

// Memory-space dispatch kinds (resolved from Op x Space at decode time).
const (
	mkBad uint8 = iota
	mkGlobal
	mkAtomGlobal
	mkTex
	mkConst
	mkShared
	mkLocal
)

// execKind is the fully resolved op x type of an ALU instruction; each
// kind has its own tight per-lane loop in execALUFast.
type execKind uint8

const (
	exDefault execKind = iota // unknown op: r = av (mirrors the reference)
	exMov
	exAddF
	exAddI
	exSubF
	exSubI
	exMulF
	exMulI
	exDivF
	exDivS
	exDivU
	exRemS
	exRemU
	exFmaF
	exFmaI
	exNegF
	exNegI
	exAbsF
	exAbsI
	exMinF
	exMinS
	exMinU
	exMaxF
	exMaxS
	exMaxU
	exSqrt
	exRsqrt
	exSin
	exCos
	exEx2
	exLg2
	exAnd
	exOr
	exXor
	exNot
	exShl
	exShrS
	exShrU
	exSetp
	exSelp
	exCvt
)

// Operand kinds.
const (
	doZero uint8 = iota // absent register slot: reads as 0
	doImm
	doReg
	doTidX
	doTidY
	doSpec // block-constant special register (ntid/ctaid/nctaid/warpsize)
)

// dOperand is one decoded source operand. Immediates keep their value in a
// one-element array so the interpreter can alias it as a scalar slice
// without copying.
type dOperand struct {
	kind uint8
	reg  int32
	spec ptx.SpecialReg
	val  [1]uint32
}

// decodedOp is one predecoded instruction. All branch targets, register
// indices and dispatch tags are resolved; the interpreter never touches
// ptx.Instruction on the hot path (only to render a mnemonic when an
// execution error needs wrapping).
type decodedOp struct {
	kind     uint8
	mk       uint8
	ex       execKind
	nsrc     uint8
	guardNeg bool

	op     ptx.Opcode
	space  ptx.Space
	typ    ptx.ScalarType
	srcTyp ptx.ScalarType
	cmp    ptx.CmpOp
	atom   ptx.AtomOp

	guard int32 // -1 = unguarded
	dst   int32
	off   int32

	target, join int32

	a, b, c dOperand
}

// decodedKernel is the predecoded program for one kernel.
type decodedKernel struct {
	ops []decodedOp
}

// decodeCache is the per-device kernel -> decoded-program cache. Kernels
// are immutable once compiled (the compile cache hands out shared
// pointers), so pointer identity is a sound key; keeping the cache on the
// Device bounds its lifetime to the device's.
type decodeCache struct {
	mu sync.Mutex
	m  map[*ptx.Kernel]*decodedKernel
}

func (c *decodeCache) get(k *ptx.Kernel) *decodedKernel {
	c.mu.Lock()
	defer c.mu.Unlock()
	if dk, ok := c.m[k]; ok {
		return dk
	}
	if c.m == nil {
		c.m = make(map[*ptx.Kernel]*decodedKernel)
	}
	dk := decodeKernel(k)
	c.m[k] = dk
	return dk
}

func decodeOperand(o ptx.Operand) dOperand {
	switch {
	case o.IsImm:
		return dOperand{kind: doImm, val: [1]uint32{o.Imm}}
	case o.IsSpec:
		switch o.Spec {
		case ptx.SrTidX:
			return dOperand{kind: doTidX}
		case ptx.SrTidY:
			return dOperand{kind: doTidY}
		case ptx.SrNtidX, ptx.SrNtidY, ptx.SrCtaidX, ptx.SrCtaidY,
			ptx.SrNctaidX, ptx.SrNctaidY, ptx.SrWarpSize:
			return dOperand{kind: doSpec, spec: o.Spec}
		default:
			// The reference fetchSpecial fills 0 for unknown registers.
			return dOperand{kind: doZero}
		}
	case o.Reg == ptx.NoReg:
		return dOperand{kind: doZero}
	default:
		return dOperand{kind: doReg, reg: int32(o.Reg)}
	}
}

// aluKind resolves op x type into an execKind plus the number of source
// operands the reference interpreter fetches for it.
func aluKind(in *ptx.Instruction) (execKind, uint8) {
	isF := in.Typ == ptx.F32
	isS := in.Typ == ptx.S32
	pick2 := func(f, i execKind) (execKind, uint8) {
		if isF {
			return f, 2
		}
		return i, 2
	}
	switch in.Op {
	case ptx.OpMov:
		return exMov, 1
	case ptx.OpAdd:
		return pick2(exAddF, exAddI)
	case ptx.OpSub:
		return pick2(exSubF, exSubI)
	case ptx.OpMul:
		return pick2(exMulF, exMulI)
	case ptx.OpDiv:
		switch {
		case isF:
			return exDivF, 2
		case isS:
			return exDivS, 2
		default:
			return exDivU, 2
		}
	case ptx.OpRem:
		if isS {
			return exRemS, 2
		}
		return exRemU, 2
	case ptx.OpFma, ptx.OpMad:
		if isF {
			return exFmaF, 3
		}
		return exFmaI, 3
	case ptx.OpNeg:
		if isF {
			return exNegF, 1
		}
		return exNegI, 1
	case ptx.OpAbs:
		if isF {
			return exAbsF, 1
		}
		return exAbsI, 1
	case ptx.OpMin:
		switch {
		case isF:
			return exMinF, 2
		case isS:
			return exMinS, 2
		default:
			return exMinU, 2
		}
	case ptx.OpMax:
		switch {
		case isF:
			return exMaxF, 2
		case isS:
			return exMaxS, 2
		default:
			return exMaxU, 2
		}
	case ptx.OpSqrt:
		return exSqrt, 1
	case ptx.OpRsqrt:
		return exRsqrt, 1
	case ptx.OpSin:
		return exSin, 1
	case ptx.OpCos:
		return exCos, 1
	case ptx.OpEx2:
		return exEx2, 1
	case ptx.OpLg2:
		return exLg2, 1
	case ptx.OpAnd:
		return exAnd, 2
	case ptx.OpOr:
		return exOr, 2
	case ptx.OpXor:
		return exXor, 2
	case ptx.OpNot:
		return exNot, 1
	case ptx.OpShl:
		return exShl, 2
	case ptx.OpShr:
		if isS {
			return exShrS, 2
		}
		return exShrU, 2
	case ptx.OpSetp:
		return exSetp, 2
	case ptx.OpSelp:
		return exSelp, 3
	case ptx.OpCvt:
		return exCvt, 1
	default:
		return exDefault, 2
	}
}

func decodeKernel(k *ptx.Kernel) *decodedKernel {
	ops := make([]decodedOp, len(k.Instrs))
	for i := range k.Instrs {
		in := &k.Instrs[i]
		d := &ops[i]
		d.op = in.Op
		d.space = in.Space
		d.typ, d.srcTyp = in.Typ, in.SrcTyp
		d.cmp, d.atom = in.Cmp, in.Atom
		d.guard = int32(in.GuardPred)
		d.guardNeg = in.GuardNeg
		d.dst = int32(in.Dst)
		d.off = in.Off
		d.target, d.join = int32(in.Target), int32(in.Join)

		switch in.Op {
		case ptx.OpBra:
			d.kind = dkBra
		case ptx.OpBar:
			d.kind = dkBar
		case ptx.OpRet:
			d.kind = dkRet
		case ptx.OpLd, ptx.OpSt, ptx.OpTex, ptx.OpAtom:
			d.kind = dkMem
			d.a = decodeOperand(in.Src[0])
			d.b = decodeOperand(in.Src[1])
			switch in.Space {
			case ptx.SpaceGlobal:
				if in.Op == ptx.OpAtom {
					d.mk = mkAtomGlobal
				} else {
					d.mk = mkGlobal
				}
			case ptx.SpaceTex:
				d.mk = mkTex
			case ptx.SpaceConst, ptx.SpaceParam:
				d.mk = mkConst
			case ptx.SpaceShared:
				d.mk = mkShared
			case ptx.SpaceLocal:
				d.mk = mkLocal
			default:
				d.mk = mkBad
			}
		default:
			d.kind = dkALU
			d.ex, d.nsrc = aluKind(in)
			d.a = decodeOperand(in.Src[0])
			if d.nsrc >= 2 {
				d.b = decodeOperand(in.Src[1])
			}
			if d.nsrc >= 3 {
				d.c = decodeOperand(in.Src[2])
			}
		}
	}
	return &decodedKernel{ops: ops}
}
