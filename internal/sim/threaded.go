package sim

import (
	"fmt"

	"gpucmp/internal/mem"
	"gpucmp/internal/ptx"
)

// The threaded engine: runThreaded is run() from fast.go plus
// superinstruction dispatch. When a frame's pc sits on a fused segment the
// warp executes the whole segment under one dispatch — one frame lookup,
// one bulk steps update, one pc store — instead of once per op. Hot
// segments additionally execute through compiled closures (compile.go).
//
// Watchdog accounting stays exact: steps advances by the segment length in
// one add, but a segment that would cross the step budget or a
// CheckpointInterval boundary is executed op by op through runSegSlow,
// which reproduces the per-instruction budget check, cancellation poll and
// error strings of run() verbatim. ErrWatchdog therefore fires on exactly
// the same dynamic instruction as the fast and reference engines — the
// property the corpus hang-replay gate in internal/fuzz pins.
func (w *fwarp) runThreaded() error {
	fb := w.b
	ops := fb.dk.ops
	prog := fb.prog
	segAt := prog.segAt
	cu := fb.cu
	fullW := ^uint64(0) >> (64 - uint(fb.W))
	for len(w.frames) > 0 {
		fi := len(w.frames) - 1
		f := w.frames[fi]
		if f.pc >= len(ops) || f.pc == f.reconv || f.mask == 0 {
			w.frames = w.frames[:fi]
			continue
		}

		if si := segAt[f.pc]; si >= 0 {
			seg := &prog.segs[si]
			n := uint64(seg.end - seg.start)
			slow := fb.budget > 0 && fb.steps+n > fb.budget
			if !slow && fb.steps/CheckpointInterval != (fb.steps+n)/CheckpointInterval {
				// The bulk range crosses a checkpoint. Poll the flags now:
				// when neither is raised the in-segment poll would have been
				// a no-op and the bulk path is indistinguishable; when one
				// is, replay op by op so the verdict lands on the exact
				// boundary step with the exact error string.
				slow = cu.dev.cancelled.Load() || fb.abort != nil && fb.abort.Load()
			}
			if slow {
				// The bulk range would hit the budget (or a raised flag):
				// take the exact per-op path for this one dispatch.
				if err := w.runSegSlow(seg, f.mask); err != nil {
					return err
				}
			} else {
				fb.steps += n
				var err error
				if f.mask == fullW && f.mask == w.fullMask {
					// Compiled code only handles the full-width fully-active
					// shape, so the hotness counter and the compiled pointer
					// are only consulted here: tail warps and diverged masks
					// stay interpreted and pay no compile-machinery overhead
					// (a segment only ever dispatched divergent never
					// compiles at all).
					cs := seg.compiled.Load()
					if cs == nil && seg.hits.Add(1) == compileThreshold {
						fresh := compileSeg(fb.dk, seg, fb.W)
						if seg.compiled.CompareAndSwap(nil, fresh) {
							cu.blockCompiles++
						}
						cs = seg.compiled.Load()
					}
					if cs != nil {
						err = cs.exec(w, cu, f.mask)
					} else {
						err = w.runSegInterp(seg, f.mask)
					}
				} else {
					err = w.runSegInterp(seg, f.mask)
				}
				if err != nil {
					return err
				}
				cu.superRuns++
				cu.superOps += int64(n)
			}
			w.frames[fi].pc = int(seg.end)
			continue
		}

		fb.steps++
		if fb.budget > 0 && fb.steps > fb.budget {
			return fmt.Errorf("sim: %s: block (%d,%d) exceeded the %d warp-instruction step budget: %w",
				fb.k.Name, fb.ctaidX, fb.ctaidY, fb.budget, ErrWatchdog)
		}
		if fb.steps%CheckpointInterval == 0 {
			if cu.dev.cancelled.Load() {
				return fmt.Errorf("sim: %s: cancelled at step %d: %w", fb.k.Name, fb.steps, ErrWatchdog)
			}
			if fb.abort != nil && fb.abort.Load() {
				return errAborted
			}
		}

		d := &ops[f.pc]
		active := f.mask
		if d.guard >= 0 {
			active = w.guardMask(d, f.mask)
		}
		lanes := mem.ActiveLanes(active)

		switch d.kind {
		case dkBra:
			cu.countOp(ptx.OpBra, ptx.SpaceNone, lanes)
			cu.branches++
			taken := active
			if d.guard < 0 {
				taken = f.mask
			}
			switch {
			case taken == f.mask:
				w.frames[fi].pc = int(d.target)
			case taken == 0:
				w.frames[fi].pc = f.pc + 1
			default:
				cu.divergent++
				w.frames[fi].pc = int(d.join)
				w.frames = append(w.frames,
					frame{pc: f.pc + 1, mask: f.mask &^ taken, reconv: int(d.join)},
					frame{pc: int(d.target), mask: taken, reconv: int(d.join)},
				)
			}

		case dkBar:
			cu.countOp(ptx.OpBar, ptx.SpaceNone, lanes)
			cu.barriers++
			w.frames[fi].pc = f.pc + 1
			w.atBarrier = true
			return nil

		case dkRet:
			cu.countOp(ptx.OpRet, ptx.SpaceNone, lanes)
			for i := range w.frames {
				w.frames[i].mask &^= active
			}
			w.frames[fi].pc = f.pc + 1

		case dkMem:
			cu.countOp(d.op, d.space, lanes)
			if active != 0 {
				if err := w.execMemFast(d, active); err != nil {
					in := &fb.k.Instrs[f.pc]
					return fmt.Errorf("sim: %s: pc %d (%s): %w", fb.k.Name, f.pc, in.Mnemonic(), err)
				}
			}
			w.frames[fi].pc = f.pc + 1

		default: // dkALU
			cu.countOp(d.op, ptx.SpaceNone, lanes)
			if active != 0 {
				w.execALUFast(d, active)
			}
			w.frames[fi].pc = f.pc + 1
		}
	}
	w.done = true
	return nil
}

// runSegInterp executes one fused segment under a constant frame mask with
// the per-op watchdog work already paid in bulk by the caller. Execution
// and guard handling are op-for-op identical to run(); counting is batched
// — the dynamic-mix deltas are per warp instruction and therefore
// mask-independent (tSeg.counts), and the lane-instruction total of the
// unguarded ops is nUnguarded x ActiveLanes(mask) — so only guarded ops
// still account lanes individually.
func (w *fwarp) runSegInterp(seg *tSeg, mask uint64) error {
	fb := w.b
	ops := fb.dk.ops
	cu := fb.cu
	for _, cd := range seg.counts {
		cu.dynOps[cd.idx] += cd.n
	}
	lanes := mem.ActiveLanes(mask)
	cu.laneInstrs += int64(seg.nUnguarded) * int64(lanes)
	// The branchless full-width guard evaluation beats the sparse bit-walk
	// once the mask is reasonably dense; below that the walk's early exit
	// wins.
	denseGuards := lanes*2 >= w.b.W
	for pc := int(seg.start); pc < int(seg.end); pc++ {
		d := &ops[pc]
		active := mask
		if d.guard >= 0 {
			if denseGuards {
				active = w.guardMaskVec(d, mask)
			} else {
				active = w.guardMask(d, mask)
			}
			cu.laneInstrs += int64(mem.ActiveLanes(active))
		}
		if d.kind == dkMem {
			if active != 0 {
				if err := w.execMemFast(d, active); err != nil {
					in := &fb.k.Instrs[pc]
					return fmt.Errorf("sim: %s: pc %d (%s): %w", fb.k.Name, pc, in.Mnemonic(), err)
				}
			}
		} else if active != 0 {
			w.execALUFast(d, active)
		}
	}
	return nil
}

// runSegSlow is the exact-watchdog fallback: the segment's ops execute one
// at a time with the same steps/budget/checkpoint sequence as run(), so a
// budget kill or cancellation lands on the same dynamic instruction with
// the same error string it would under the other engines.
func (w *fwarp) runSegSlow(seg *tSeg, mask uint64) error {
	fb := w.b
	ops := fb.dk.ops
	cu := fb.cu
	for pc := int(seg.start); pc < int(seg.end); pc++ {
		fb.steps++
		if fb.budget > 0 && fb.steps > fb.budget {
			return fmt.Errorf("sim: %s: block (%d,%d) exceeded the %d warp-instruction step budget: %w",
				fb.k.Name, fb.ctaidX, fb.ctaidY, fb.budget, ErrWatchdog)
		}
		if fb.steps%CheckpointInterval == 0 {
			if cu.dev.cancelled.Load() {
				return fmt.Errorf("sim: %s: cancelled at step %d: %w", fb.k.Name, fb.steps, ErrWatchdog)
			}
			if fb.abort != nil && fb.abort.Load() {
				return errAborted
			}
		}
		d := &ops[pc]
		active := mask
		if d.guard >= 0 {
			active = w.guardMask(d, mask)
		}
		if d.kind == dkMem {
			cu.countOp(d.op, d.space, mem.ActiveLanes(active))
			if active != 0 {
				if err := w.execMemFast(d, active); err != nil {
					in := &fb.k.Instrs[pc]
					return fmt.Errorf("sim: %s: pc %d (%s): %w", fb.k.Name, pc, in.Mnemonic(), err)
				}
			}
		} else {
			cu.countOp(d.op, ptx.SpaceNone, mem.ActiveLanes(active))
			if active != 0 {
				w.execALUFast(d, active)
			}
		}
	}
	return nil
}
