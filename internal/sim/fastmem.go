package sim

import (
	"fmt"
	"math/bits"

	"gpucmp/internal/mem"
	"gpucmp/internal/ptx"
)

// Fast-engine memory path. Counter accounting, cache-walk order, bounds
// checks and error strings mirror memops.go exactly. The structural
// difference is how the warp's address pattern is classified: a uniform
// base register short-circuits the whole derivation (one segment, one
// distinct address, bank factor 1 — what the reference computes lane by
// lane for an all-equal pattern), and non-uniform patterns go through the
// single-pass mem.*Fast routines, which are bit-identical drop-ins for
// the reference ones.

// execMemFast dispatches on the decoded memory-space tag.
func (w *fwarp) execMemFast(d *decodedOp, active uint64) error {
	switch d.mk {
	case mkGlobal:
		return w.fglobal(d, active, d.op == ptx.OpLd)
	case mkAtomGlobal:
		return w.fatomGlobal(d, active)
	case mkTex:
		return w.ftex(d, active)
	case mkConst:
		return w.fconst(d, active)
	case mkShared:
		return w.fshared(d, active)
	case mkLocal:
		return w.flocal(d, active)
	default:
		return fmt.Errorf("unhandled space %v", d.space)
	}
}

// resolveAddr computes the per-lane byte addresses of a memory access.
// When the base operand is uniform it returns the single address with
// ok=true; otherwise it fills addrBuf for all W lanes (like the
// reference, which adds the offset unconditionally) and returns ok=false.
func (w *fwarp) resolveAddr(d *decodedOp) (uint32, bool) {
	a := w.resolve(&d.a)
	if a.m == 0 {
		return a.p[0] + uint32(d.off), true
	}
	W := w.b.W
	off := uint32(d.off)
	for l := 0; l < W; l++ {
		w.addrBuf[l] = a.p[l] + off
	}
	return 0, false
}

// segBase maps an address to its segment base the way mem.CoalesceList
// does (segBytes 0 defaults to 64).
func segBase(addr, segBytes uint32) uint32 {
	if segBytes == 0 {
		segBytes = 64
	}
	return addr / segBytes * segBytes
}

// writeLanes stores one loaded value into the destination register across
// the active lanes, maintaining the uniformity bit: a full-warp broadcast
// leaves the register uniform.
func (w *fwarp) writeLanes(dst int32, active uint64, v uint32) {
	W := w.b.W
	out := w.regs[int(dst)*W : int(dst)*W+W]
	if active == w.fullMask {
		for l := 0; l < W; l++ {
			out[l] = v
		}
		w.setUni(dst)
		return
	}
	for m := active; m != 0; m &= m - 1 {
		out[bits.TrailingZeros64(m)] = v
	}
	w.clearUni(dst)
}

// lastLane returns the highest set lane of a non-zero mask — the lane
// whose value survives when every active lane stores to one address
// (the reference stores lane by lane, so the last write wins).
func lastLane(active uint64) int { return 63 - bits.LeadingZeros64(active) }

func (w *fwarp) fglobal(d *decodedOp, active uint64, isLoad bool) error {
	cu := w.b.cu
	W := w.b.W
	seg := uint32(cu.dev.Arch.GlobalSegmentSize)
	uaddr, uni := w.resolveAddr(d)
	var segs [64]uint32
	nseg := 1
	if uni {
		segs[0] = segBase(uaddr, seg)
	} else {
		nseg = mem.CoalesceListFast(w.addrBuf[:W], active, seg, segs[:])
	}

	if isLoad {
		cu.mem.GlobalLoadAccesses++
		if cu.l1 != nil {
			for i := 0; i < nseg; i++ {
				if cu.l1.Access(segs[i]) {
					cu.mem.L1Hits++
				} else {
					cu.mem.L1Misses++
					if cu.l2.Access(segs[i]) {
						cu.mem.L2Hits++
					} else {
						cu.mem.L2Misses++
						cu.mem.GlobalLoadTrans++
					}
				}
			}
		} else {
			cu.mem.GlobalLoadTrans += int64(nseg)
		}
		if uni {
			v, err := cu.dev.Global.Load(uaddr)
			if err != nil {
				return err
			}
			w.writeLanes(d.dst, active, v)
			return nil
		}
		dst := w.regs[int(d.dst)*W : int(d.dst)*W+W]
		w.clearUni(d.dst)
		for mm := active; mm != 0; mm &= mm - 1 {
			l := bits.TrailingZeros64(mm)
			v, err := cu.dev.Global.Load(w.addrBuf[l])
			if err != nil {
				return err
			}
			dst[l] = v
		}
		return nil
	}

	// Store.
	cu.mem.GlobalStoreAccesses++
	if cu.l2 != nil {
		for i := 0; i < nseg; i++ {
			if cu.l2.Access(segs[i]) {
				cu.mem.L2Hits++
			} else {
				cu.mem.L2Misses++
				cu.mem.GlobalStoreTrans++
			}
		}
	} else {
		cu.mem.GlobalStoreTrans += int64(nseg)
	}
	v := w.resolve(&d.b)
	if uni {
		// Every active lane stores to one address; the last write wins and
		// any bounds error is the same for every lane.
		return cu.dev.Global.Store(uaddr, v.p[lastLane(active)&v.m])
	}
	for mm := active; mm != 0; mm &= mm - 1 {
		l := bits.TrailingZeros64(mm)
		if err := cu.dev.Global.Store(w.addrBuf[l], v.p[l&v.m]); err != nil {
			return err
		}
	}
	return nil
}

func (w *fwarp) ftex(d *decodedOp, active uint64) error {
	cu := w.b.cu
	if cu.tex == nil {
		// Devices without a texture cache degrade to the global load path.
		return w.fglobal(d, active, true)
	}
	W := w.b.W
	seg := cu.tex.LineBytes()
	uaddr, uni := w.resolveAddr(d)
	var segs [64]uint32
	nseg := 1
	if uni {
		segs[0] = segBase(uaddr, seg)
	} else {
		nseg = mem.CoalesceListFast(w.addrBuf[:W], active, seg, segs[:])
	}
	cu.mem.TexAccesses++
	for i := 0; i < nseg; i++ {
		if cu.tex.Access(segs[i]) {
			cu.mem.TexHits++
		} else {
			cu.mem.TexMisses++
			if cu.l2 != nil && cu.l2.Access(segs[i]) {
				cu.mem.L2Hits++
			} else {
				cu.mem.TexTrans++
			}
		}
	}
	if uni {
		v, err := cu.dev.Global.Load(uaddr)
		if err != nil {
			return err
		}
		w.writeLanes(d.dst, active, v)
		return nil
	}
	dst := w.regs[int(d.dst)*W : int(d.dst)*W+W]
	w.clearUni(d.dst)
	for mm := active; mm != 0; mm &= mm - 1 {
		l := bits.TrailingZeros64(mm)
		v, err := cu.dev.Global.Load(w.addrBuf[l])
		if err != nil {
			return err
		}
		dst[l] = v
	}
	return nil
}

func (w *fwarp) fconst(d *decodedOp, active uint64) error {
	cu := w.b.cu
	W := w.b.W
	uaddr, uni := w.resolveAddr(d)
	if d.space == ptx.SpaceConst {
		cu.mem.ConstAccesses++
		if uni {
			cu.mem.ConstSerial++ // one distinct address: broadcast
		} else {
			cu.mem.ConstSerial += int64(mem.DistinctAddrsFast(w.addrBuf[:W], active))
		}
		if cu.constc != nil {
			if uni {
				if !cu.constc.Access(segBase(uaddr, cu.constc.LineBytes())) {
					cu.mem.ConstMisses++
				}
			} else {
				var segs [64]uint32
				nseg := mem.CoalesceListFast(w.addrBuf[:W], active, cu.constc.LineBytes(), segs[:])
				for i := 0; i < nseg; i++ {
					if !cu.constc.Access(segs[i]) {
						cu.mem.ConstMisses++
					}
				}
			}
		}
	}
	cs := cu.dev.constSeg
	if uni {
		i := uaddr / 4
		if int(i) >= len(cs) {
			return fmt.Errorf("constant access at 0x%x beyond segment", uaddr)
		}
		w.writeLanes(d.dst, active, cs[i])
		return nil
	}
	dst := w.regs[int(d.dst)*W : int(d.dst)*W+W]
	w.clearUni(d.dst)
	for mm := active; mm != 0; mm &= mm - 1 {
		l := bits.TrailingZeros64(mm)
		i := w.addrBuf[l] / 4
		if int(i) >= len(cs) {
			return fmt.Errorf("constant access at 0x%x beyond segment", w.addrBuf[l])
		}
		dst[l] = cs[i]
	}
	return nil
}

func (w *fwarp) fshared(d *decodedOp, active uint64) error {
	cu := w.b.cu
	W := w.b.W
	sh := w.b.shared
	uaddr, uni := w.resolveAddr(d)
	cu.mem.SharedAccesses++
	if uni {
		cu.mem.SharedSerial++ // all-equal addresses broadcast: factor 1
	} else {
		cu.mem.SharedSerial += int64(mem.BankConflictFactorFast(w.addrBuf[:W], active, cu.dev.Arch.SharedMemBanks))
	}

	if d.op == ptx.OpAtom {
		if uni {
			for l := 0; l < W; l++ {
				w.addrBuf[l] = uaddr
			}
		}
		return w.fatomShared(d, active)
	}
	if d.op == ptx.OpLd {
		if uni {
			i := uaddr / 4
			if int(i) >= len(sh) {
				return fmt.Errorf("shared access at 0x%x beyond %d bytes", uaddr, len(sh)*4)
			}
			w.writeLanes(d.dst, active, sh[i])
			return nil
		}
		dst := w.regs[int(d.dst)*W : int(d.dst)*W+W]
		w.clearUni(d.dst)
		for mm := active; mm != 0; mm &= mm - 1 {
			l := bits.TrailingZeros64(mm)
			i := w.addrBuf[l] / 4
			if int(i) >= len(sh) {
				return fmt.Errorf("shared access at 0x%x beyond %d bytes", w.addrBuf[l], len(sh)*4)
			}
			dst[l] = sh[i]
		}
		return nil
	}
	v := w.resolve(&d.b)
	if uni {
		i := uaddr / 4
		if int(i) >= len(sh) {
			return fmt.Errorf("shared access at 0x%x beyond %d bytes", uaddr, len(sh)*4)
		}
		sh[i] = v.p[lastLane(active)&v.m]
		return nil
	}
	for mm := active; mm != 0; mm &= mm - 1 {
		l := bits.TrailingZeros64(mm)
		i := w.addrBuf[l] / 4
		if int(i) >= len(sh) {
			return fmt.Errorf("shared access at 0x%x beyond %d bytes", w.addrBuf[l], len(sh)*4)
		}
		sh[i] = v.p[l&v.m]
	}
	return nil
}

func (w *fwarp) flocal(d *decodedOp, active uint64) error {
	cu := w.b.cu
	W := w.b.W
	cu.mem.LocalAccesses++
	lanes := mem.ActiveLanes(active)
	seg := cu.dev.Arch.GlobalSegmentSize
	trans := (lanes*4 + seg - 1) / seg
	if cu.l1 != nil {
		cu.mem.L1Hits += int64(trans)
	} else {
		cu.mem.LocalTrans += int64(trans)
	}

	// Local memory is lane-major: equal addresses still hit per-lane slots,
	// so there is no uniform data path — materialise the addresses and run
	// the per-lane loop.
	uaddr, uni := w.resolveAddr(d)
	if uni {
		for l := 0; l < W; l++ {
			w.addrBuf[l] = uaddr
		}
	}
	if d.op == ptx.OpLd {
		dst := w.regs[int(d.dst)*W : int(d.dst)*W+W]
		w.clearUni(d.dst)
		for mm := active; mm != 0; mm &= mm - 1 {
			l := bits.TrailingZeros64(mm)
			i := int(w.addrBuf[l] / 4)
			if i >= w.localWords {
				return fmt.Errorf("local access at 0x%x beyond %d bytes", w.addrBuf[l], w.localWords*4)
			}
			dst[l] = w.local[l*w.localWords+i]
		}
		return nil
	}
	v := w.resolve(&d.b)
	for mm := active; mm != 0; mm &= mm - 1 {
		l := bits.TrailingZeros64(mm)
		i := int(w.addrBuf[l] / 4)
		if i >= w.localWords {
			return fmt.Errorf("local access at 0x%x beyond %d bytes", w.addrBuf[l], w.localWords*4)
		}
		w.local[l*w.localWords+i] = v.p[l&v.m]
	}
	return nil
}

// materialiseVal snapshots the value operand into valBuf for the active
// lanes — atomics write the destination register while reading the value,
// so an in-place alias of the register file would see lane 0's old value
// overwritten before later lanes read (the reference copies operands up
// front). Inactive lanes are never read back, so they stay stale.
func (w *fwarp) materialiseVal(d *decodedOp, active uint64) {
	v := w.resolve(&d.b)
	for m := active; m != 0; m &= m - 1 {
		l := bits.TrailingZeros64(m)
		w.valBuf[l] = v.p[l&v.m]
	}
}

func (w *fwarp) fatomGlobal(d *decodedOp, active uint64) error {
	cu := w.b.cu
	W := w.b.W
	cu.mem.AtomicOps += int64(mem.ActiveLanes(active))
	uaddr, uni := w.resolveAddr(d)
	if uni {
		cu.mem.GlobalStoreTrans++ // one distinct address
		for l := 0; l < W; l++ {
			w.addrBuf[l] = uaddr
		}
	} else {
		cu.mem.GlobalStoreTrans += int64(mem.DistinctAddrsFast(w.addrBuf[:W], active))
	}
	w.materialiseVal(d, active)
	dst := w.regs[int(d.dst)*W : int(d.dst)*W+W]
	w.clearUni(d.dst)
	for mm := active; mm != 0; mm &= mm - 1 {
		l := bits.TrailingZeros64(mm)
		old, err := cu.dev.Global.Atomic(w.addrBuf[l], func(o uint32) uint32 { return applyAtom(d.atom, o, w.valBuf[l]) })
		if err != nil {
			return err
		}
		dst[l] = old
	}
	return nil
}

// fatomShared runs after fshared has recorded the access counters and
// materialised addrBuf.
func (w *fwarp) fatomShared(d *decodedOp, active uint64) error {
	cu := w.b.cu
	W := w.b.W
	sh := w.b.shared
	cu.mem.AtomicOps += int64(mem.ActiveLanes(active))
	w.materialiseVal(d, active)
	dst := w.regs[int(d.dst)*W : int(d.dst)*W+W]
	w.clearUni(d.dst)
	for mm := active; mm != 0; mm &= mm - 1 {
		l := bits.TrailingZeros64(mm)
		i := w.addrBuf[l] / 4
		if int(i) >= len(sh) {
			return fmt.Errorf("shared atomic at 0x%x beyond %d bytes", w.addrBuf[l], len(sh)*4)
		}
		old := sh[i]
		sh[i] = applyAtom(d.atom, old, w.valBuf[l])
		dst[l] = old
	}
	return nil
}
