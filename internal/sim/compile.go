package sim

import (
	"fmt"

	"gpucmp/internal/mem"
	"gpucmp/internal/ptx"
)

// The block compiler: a hot fused segment is lowered once per (kernel,
// device) into a compact micro-op array that a single switch-threaded
// executor runs when the warp is fully populated and fully active — the
// dominant shape in every benchmark. The lowering wins over the generic
// interpreter in four ways:
//
//  1. Operand resolution happens at compile time: register bases are
//     precomputed, immediates captured (float immediates pre-converted),
//     and the resolveSrc aliasing machinery disappears — per-lane loops
//     read lane l before writing lane l, so in-place views are safe.
//  2. Instruction counting is batched: the segment's dynOps deltas are
//     aggregated at compile time and applied with a handful of adds, and
//     laneInstrs advances once per segment instead of once per op.
//  3. The vector loops are plain counted loops over [0, W) — no lane
//     bitmask walking — written so the bounds checker can hoist.
//  4. Chained f32 fma pairs (the matmul accumulate pattern) run as one
//     loop that forwards the intermediate through a register instead of
//     round-tripping it through the destination vector.
//
// Execution shapes outside an arm's fast path (uniform sources, guarded
// ops, tid/spec operands, exotic kinds) fall back to execALUFast, so the
// arithmetic either is textually identical to the fast engine or reads
// identical values lane by lane — which keeps the engines bit-identical.
// Uniformity bookkeeping can be conservatively weaker here (a vector arm
// clears the destination's uniform bit where the fast engine may have set
// it); the bit is advisory, so that can cost speed but never results.
//
// Partially-masked executions never reach the compiled path at all:
// runThreaded interprets those through runSegInterp.

// uKind discriminates the executor's switch arms. The RR/RI suffix is the
// operand shape (register-register vs register-immediate).
type uKind uint8

const (
	uALUFull uKind = iota // any unguarded ALU op via execALUFast
	uALUGuard             // guarded ALU op: guard mask + count fixup
	uMemFull              // unguarded memory op via execMemFast
	uMemGuard             // guarded memory op

	// Specialised memory arms (compilemem.go): register-addressed,
	// unguarded shared/global accesses with full-mask classification.
	uLdShared
	uStShared
	uLdGlobal
	uStGlobal

	uMovR

	uAddIRR
	uAddIRI
	uSubIRR
	uSubIRI
	uMulIRR
	uMulIRI
	uAndRR
	uAndRI
	uOrRR
	uOrRI
	uXorRR
	uXorRI
	uShlRR
	uShlRI
	uShrSRR
	uShrSRI
	uShrURR
	uShrURI

	uAddFRR
	uAddFRI
	uSubFRR
	uSubFRI
	uMulFRR
	uMulFRI
	uDivFRR
	uDivFRI

	uFmaFRRR
	uFmaIRRR
	uFmaIRIR

	uSetpRR
	uSetpRI
	uSelpRRR
	uCvtR

	uFmaFPair // two chained f32 fmas fused into one loop
)

// microOp is one lowered op (or fused pair). Bases are precomputed
// register-file offsets (reg * W); reg indices are kept for the uniform
// bit tests; d points back at the decoded op for the fallback paths.
type microOp struct {
	kind uKind

	dBase, aBase, bBase, cBase int
	dReg, aReg, bReg, cReg     int32

	imm  uint32
	immF float32
	off  uint32 // static byte offset of a memory access

	// Second op of a fused pair.
	d2Base, a2Base, b2Base int
	d2Reg, a2Reg, b2Reg    int32

	d  *decodedOp
	d2 *decodedOp
	pc int32 // for memory error wrapping
}

// countDelta is one aggregated dynOps increment for a segment execution.
type countDelta struct {
	idx int32
	n   int64
}

// compiledSeg is a compiled superinstruction.
type compiledSeg struct {
	uops     []microOp
	counts   []countDelta
	laneBase int64 // warp width x op count: laneInstrs per full execution
	W        int
}

// compileSeg lowers one fused segment. W is the device SIMD width — fixed
// for the (kernel, device) cache this program lives in.
func compileSeg(dk *decodedKernel, seg *tSeg, W int) *compiledSeg {
	// The dynamic-mix deltas were precomputed at fuse time (tSeg.counts —
	// mask-independent, shared with the interpreted path); only the
	// lane-instruction base depends on W.
	cs := &compiledSeg{W: W, counts: seg.counts}
	cs.laneBase = int64(seg.end-seg.start) * int64(W)
	for pc := int(seg.start); pc < int(seg.end); {
		if pc+1 < int(seg.end) {
			if u, ok := lowerFMAPair(dk, pc, W); ok {
				cs.uops = append(cs.uops, u)
				pc += 2
				continue
			}
		}
		cs.uops = append(cs.uops, lowerOp(dk, pc, W))
		pc++
	}
	return cs
}

func lowerOp(dk *decodedKernel, pc, W int) microOp {
	d := &dk.ops[pc]
	u := microOp{d: d, pc: int32(pc)}
	u.dBase, u.dReg = int(d.dst)*W, d.dst

	if d.kind == dkMem {
		if d.guard >= 0 {
			u.kind = uMemGuard
			return u
		}
		u.kind = uMemFull
		a, aok := lowerOperand(&d.a, W)
		if !aok || !a.isReg {
			return u
		}
		u.aBase, u.aReg = a.base, a.reg
		u.off = uint32(d.off)
		switch {
		case d.mk == mkShared && d.op == ptx.OpLd:
			u.kind = uLdShared
		case d.mk == mkShared && d.op == ptx.OpSt:
			if b, bok := lowerOperand(&d.b, W); bok {
				u.kind = uStShared
				if b.isReg {
					u.bBase, u.bReg = b.base, b.reg
				} else {
					u.bReg, u.imm = -1, b.imm
				}
			}
		case d.mk == mkGlobal && d.op == ptx.OpLd:
			u.kind = uLdGlobal
		case d.mk == mkGlobal && d.op == ptx.OpSt:
			if b, bok := lowerOperand(&d.b, W); bok && b.isReg {
				u.kind = uStGlobal
				u.bBase, u.bReg = b.base, b.reg
			}
		}
		return u
	}
	if d.guard >= 0 {
		u.kind = uALUGuard
		return u
	}
	u.kind = uALUFull // default until a specialised arm matches

	a, aok := lowerOperand(&d.a, W)
	b, bok := lowerOperand(&d.b, W)
	c, cok := lowerOperand(&d.c, W)

	setRR := func(k uKind) {
		u.kind = k
		u.aBase, u.aReg = a.base, a.reg
		u.bBase, u.bReg = b.base, b.reg
	}
	setRI := func(k uKind, iv uint32) {
		u.kind = k
		u.aBase, u.aReg = a.base, a.reg
		u.bReg = -1
		u.imm, u.immF = iv, f32(iv)
	}
	// Normalise commutative binary ops so an immediate sits on the right.
	normalise := func() {
		if !a.isReg && b.isReg {
			a, b = b, a
		}
	}

	bin := func(rr, ri uKind, commutative bool) {
		if !aok || !bok {
			return
		}
		if commutative {
			normalise()
		}
		if !a.isReg {
			return
		}
		if b.isReg {
			setRR(rr)
		} else {
			setRI(ri, b.imm)
		}
	}

	switch d.ex {
	case exMov:
		if aok && a.isReg {
			u.kind = uMovR
			u.aBase, u.aReg = a.base, a.reg
		}
	case exAddI:
		bin(uAddIRR, uAddIRI, true)
	case exSubI:
		bin(uSubIRR, uSubIRI, false)
	case exMulI:
		bin(uMulIRR, uMulIRI, true)
	case exAnd:
		bin(uAndRR, uAndRI, true)
	case exOr:
		bin(uOrRR, uOrRI, true)
	case exXor:
		bin(uXorRR, uXorRI, true)
	case exShl:
		bin(uShlRR, uShlRI, false)
	case exShrS:
		bin(uShrSRR, uShrSRI, false)
	case exShrU:
		bin(uShrURR, uShrURI, false)
	case exAddF:
		bin(uAddFRR, uAddFRI, true)
	case exSubF:
		bin(uSubFRR, uSubFRI, false)
	case exMulF:
		bin(uMulFRR, uMulFRI, true)
	case exDivF:
		bin(uDivFRR, uDivFRI, false)
	case exSetp:
		bin(uSetpRR, uSetpRI, false)
	case exFmaF:
		if aok && bok && cok && a.isReg && b.isReg && c.isReg {
			u.kind = uFmaFRRR
			u.aBase, u.aReg = a.base, a.reg
			u.bBase, u.bReg = b.base, b.reg
			u.cBase, u.cReg = c.base, c.reg
		}
	case exFmaI:
		if aok && bok && cok && a.isReg && c.isReg {
			if b.isReg {
				u.kind = uFmaIRRR
				u.aBase, u.aReg = a.base, a.reg
				u.bBase, u.bReg = b.base, b.reg
				u.cBase, u.cReg = c.base, c.reg
			} else {
				u.kind = uFmaIRIR
				u.aBase, u.aReg = a.base, a.reg
				u.bReg = -1
				u.imm = b.imm
				u.cBase, u.cReg = c.base, c.reg
			}
		}
	case exSelp:
		if aok && bok && cok && a.isReg && b.isReg && c.isReg {
			u.kind = uSelpRRR
			u.aBase, u.aReg = a.base, a.reg
			u.bBase, u.bReg = b.base, b.reg
			u.cBase, u.cReg = c.base, c.reg
		}
	case exCvt:
		if aok && a.isReg {
			u.kind = uCvtR
			u.aBase, u.aReg = a.base, a.reg
		}
	}
	return u
}

type lOperand struct {
	isReg bool
	reg   int32
	base  int
	imm   uint32
}

func lowerOperand(o *dOperand, W int) (lOperand, bool) {
	switch o.kind {
	case doReg:
		return lOperand{isReg: true, reg: o.reg, base: int(o.reg) * W}, true
	case doImm:
		return lOperand{reg: -1, imm: o.val[0]}, true
	}
	return lOperand{}, false
}

// lowerFMAPair fuses the accumulate chain "d1 = a1*b1 + c1; d2 = a2*b2 +
// d1" (both f32 fma/mad, unguarded, all-register operands, d1 feeding
// only the addend of the second op). d1 is still stored — it is
// observable — but the second op reads the forwarded value instead of
// reloading and re-converting it.
func lowerFMAPair(dk *decodedKernel, pc, W int) (microOp, bool) {
	d1, d2 := &dk.ops[pc], &dk.ops[pc+1]
	if d1.kind != dkALU || d2.kind != dkALU || d1.ex != exFmaF || d2.ex != exFmaF {
		return microOp{}, false
	}
	if d1.guard >= 0 || d2.guard >= 0 {
		return microOp{}, false
	}
	for _, o := range []*dOperand{&d1.a, &d1.b, &d1.c, &d2.a, &d2.b, &d2.c} {
		if o.kind != doReg {
			return microOp{}, false
		}
	}
	if d2.c.reg != d1.dst || d2.a.reg == d1.dst || d2.b.reg == d1.dst {
		return microOp{}, false
	}
	return microOp{
		kind: uFmaFPair,
		d:    d1, d2: d2, pc: int32(pc),
		dBase: int(d1.dst) * W, dReg: d1.dst,
		aBase: int(d1.a.reg) * W, aReg: d1.a.reg,
		bBase: int(d1.b.reg) * W, bReg: d1.b.reg,
		cBase: int(d1.c.reg) * W, cReg: d1.c.reg,
		d2Base: int(d2.dst) * W, d2Reg: d2.dst,
		a2Base: int(d2.a.reg) * W, a2Reg: d2.a.reg,
		b2Base: int(d2.b.reg) * W, b2Reg: d2.b.reg,
	}, true
}

// uni2 / uni3 report whether every register source is warp-uniform
// (immediates, reg index -1, are uniform by construction).
func (w *fwarp) uni2(a, b int32) bool {
	return w.getUni(a) && (b < 0 || w.getUni(b))
}
func (w *fwarp) uni3(a, b, c int32) bool {
	return w.getUni(a) && (b < 0 || w.getUni(b)) && w.getUni(c)
}

// exec runs the compiled segment. The caller guarantees mask covers every
// populated lane of a full-width warp (mask == fullLaneMask(W) ==
// w.fullMask); partially-masked executions take the interpreted path
// instead. Arithmetic in the vector arms is expression-identical to
// execALUFast with every operand viewed as a vector — sound because
// registers are always fully materialised (a uniform register holds the
// same value in all W lanes).
func (cs *compiledSeg) exec(w *fwarp, cu *cuState, mask uint64) error {
	for _, cd := range cs.counts {
		cu.dynOps[cd.idx] += cd.n
	}
	cu.laneInstrs += cs.laneBase
	W := cs.W
	regs := w.regs
	for i := range cs.uops {
		u := &cs.uops[i]

		switch u.kind {
		case uALUFull:
			w.execALUFast(u.d, mask)
			continue
		case uALUGuard:
			active := w.guardMaskVec(u.d, mask)
			cu.laneInstrs += int64(mem.ActiveLanes(active)) - int64(W)
			if active != 0 {
				w.execALUFast(u.d, active)
			}
			continue
		case uMemFull:
			if err := w.execMemFast(u.d, mask); err != nil {
				return w.wrapMemErr(u.pc, err)
			}
			continue
		case uMemGuard:
			active := w.guardMaskVec(u.d, mask)
			cu.laneInstrs += int64(mem.ActiveLanes(active)) - int64(W)
			if active != 0 {
				if err := w.execMemFast(u.d, active); err != nil {
					return w.wrapMemErr(u.pc, err)
				}
			}
			continue
		case uLdShared:
			if err := w.ldSharedFull(u); err != nil {
				return w.wrapMemErr(u.pc, err)
			}
			continue
		case uStShared:
			if err := w.stSharedFull(u); err != nil {
				return w.wrapMemErr(u.pc, err)
			}
			continue
		case uLdGlobal:
			if err := w.ldGlobalFull(u); err != nil {
				return w.wrapMemErr(u.pc, err)
			}
			continue
		case uStGlobal:
			if err := w.stGlobalFull(u); err != nil {
				return w.wrapMemErr(u.pc, err)
			}
			continue
		case uFmaFPair:
			if w.uni3(u.aReg, u.bReg, u.cReg) || w.uni2(u.a2Reg, u.b2Reg) {
				// Either op would take the broadcast path: run them apart.
				w.execALUFast(u.d, mask)
				w.execALUFast(u.d2, mask)
				continue
			}
			dst := regs[u.dBase : u.dBase+W]
			a1 := regs[u.aBase : u.aBase+W][:len(dst)]
			b1 := regs[u.bBase : u.bBase+W][:len(dst)]
			c1 := regs[u.cBase : u.cBase+W][:len(dst)]
			a2 := regs[u.a2Base : u.a2Base+W][:len(dst)]
			b2 := regs[u.b2Base : u.b2Base+W][:len(dst)]
			d2 := regs[u.d2Base : u.d2Base+W][:len(dst)]
			for l := range dst {
				r1 := fbits(f32(a1[l])*f32(b1[l]) + f32(c1[l]))
				dst[l] = r1
				d2[l] = fbits(f32(a2[l])*f32(b2[l]) + f32(r1))
			}
			w.clearUni(u.dReg)
			w.clearUni(u.d2Reg)
			continue
		}

		// Specialised single-op arms: all-uniform sources take the fast
		// engine's compute-once-broadcast path (which also sets the
		// destination's uniform bit exactly as it would have).
		switch u.kind {
		case uMovR, uCvtR:
			if w.getUni(u.aReg) {
				w.execALUFast(u.d, mask)
				continue
			}
		case uFmaFRRR, uFmaIRRR, uSelpRRR:
			if w.uni3(u.aReg, u.bReg, u.cReg) {
				w.execALUFast(u.d, mask)
				continue
			}
		case uFmaIRIR:
			if w.uni2(u.aReg, u.cReg) {
				w.execALUFast(u.d, mask)
				continue
			}
		default:
			if w.uni2(u.aReg, u.bReg) {
				w.execALUFast(u.d, mask)
				continue
			}
		}

		dst := regs[u.dBase : u.dBase+W]
		av := regs[u.aBase : u.aBase+W][:len(dst)]
		switch u.kind {
		case uMovR:
			copy(dst, av)
		case uAddIRR:
			bv := regs[u.bBase : u.bBase+W][:len(dst)]
			for l := range dst {
				dst[l] = av[l] + bv[l]
			}
		case uAddIRI:
			iv := u.imm
			for l := range dst {
				dst[l] = av[l] + iv
			}
		case uSubIRR:
			bv := regs[u.bBase : u.bBase+W][:len(dst)]
			for l := range dst {
				dst[l] = av[l] - bv[l]
			}
		case uSubIRI:
			iv := u.imm
			for l := range dst {
				dst[l] = av[l] - iv
			}
		case uMulIRR:
			bv := regs[u.bBase : u.bBase+W][:len(dst)]
			for l := range dst {
				dst[l] = av[l] * bv[l]
			}
		case uMulIRI:
			iv := u.imm
			for l := range dst {
				dst[l] = av[l] * iv
			}
		case uAndRR:
			bv := regs[u.bBase : u.bBase+W][:len(dst)]
			for l := range dst {
				dst[l] = av[l] & bv[l]
			}
		case uAndRI:
			iv := u.imm
			for l := range dst {
				dst[l] = av[l] & iv
			}
		case uOrRR:
			bv := regs[u.bBase : u.bBase+W][:len(dst)]
			for l := range dst {
				dst[l] = av[l] | bv[l]
			}
		case uOrRI:
			iv := u.imm
			for l := range dst {
				dst[l] = av[l] | iv
			}
		case uXorRR:
			bv := regs[u.bBase : u.bBase+W][:len(dst)]
			for l := range dst {
				dst[l] = av[l] ^ bv[l]
			}
		case uXorRI:
			iv := u.imm
			for l := range dst {
				dst[l] = av[l] ^ iv
			}
		case uShlRR:
			bv := regs[u.bBase : u.bBase+W][:len(dst)]
			for l := range dst {
				dst[l] = av[l] << (bv[l] & 31)
			}
		case uShlRI:
			s := u.imm & 31
			for l := range dst {
				dst[l] = av[l] << s
			}
		case uShrSRR:
			bv := regs[u.bBase : u.bBase+W][:len(dst)]
			for l := range dst {
				dst[l] = uint32(int32(av[l]) >> (bv[l] & 31))
			}
		case uShrSRI:
			s := u.imm & 31
			for l := range dst {
				dst[l] = uint32(int32(av[l]) >> s)
			}
		case uShrURR:
			bv := regs[u.bBase : u.bBase+W][:len(dst)]
			for l := range dst {
				dst[l] = av[l] >> (bv[l] & 31)
			}
		case uShrURI:
			s := u.imm & 31
			for l := range dst {
				dst[l] = av[l] >> s
			}
		case uAddFRR:
			bv := regs[u.bBase : u.bBase+W][:len(dst)]
			for l := range dst {
				dst[l] = fbits(f32(av[l]) + f32(bv[l]))
			}
		case uAddFRI:
			fv := u.immF
			for l := range dst {
				dst[l] = fbits(f32(av[l]) + fv)
			}
		case uSubFRR:
			bv := regs[u.bBase : u.bBase+W][:len(dst)]
			for l := range dst {
				dst[l] = fbits(f32(av[l]) - f32(bv[l]))
			}
		case uSubFRI:
			fv := u.immF
			for l := range dst {
				dst[l] = fbits(f32(av[l]) - fv)
			}
		case uMulFRR:
			bv := regs[u.bBase : u.bBase+W][:len(dst)]
			for l := range dst {
				dst[l] = fbits(f32(av[l]) * f32(bv[l]))
			}
		case uMulFRI:
			fv := u.immF
			for l := range dst {
				dst[l] = fbits(f32(av[l]) * fv)
			}
		case uDivFRR:
			bv := regs[u.bBase : u.bBase+W][:len(dst)]
			for l := range dst {
				dst[l] = fbits(f32(av[l]) / f32(bv[l]))
			}
		case uDivFRI:
			fv := u.immF
			for l := range dst {
				dst[l] = fbits(f32(av[l]) / fv)
			}
		case uFmaFRRR:
			bv := regs[u.bBase : u.bBase+W][:len(dst)]
			cv := regs[u.cBase : u.cBase+W][:len(dst)]
			for l := range dst {
				dst[l] = fbits(f32(av[l])*f32(bv[l]) + f32(cv[l]))
			}
		case uFmaIRRR:
			bv := regs[u.bBase : u.bBase+W][:len(dst)]
			cv := regs[u.cBase : u.cBase+W][:len(dst)]
			for l := range dst {
				dst[l] = av[l]*bv[l] + cv[l]
			}
		case uFmaIRIR:
			iv := u.imm
			cv := regs[u.cBase : u.cBase+W][:len(dst)]
			for l := range dst {
				dst[l] = av[l]*iv + cv[l]
			}
		case uSetpRR:
			bv := regs[u.bBase : u.bBase+W][:len(dst)]
			cmp, typ := u.d.cmp, u.d.typ
			if typ == ptx.F32 {
				for l := range dst {
					dst[l] = boolToU32(compare(cmp, typ, av[l], bv[l]))
				}
				break
			}
			// Integer compares hoist the (type, op) dispatch out of the lane
			// loop: signed order is unsigned order with the sign bit flipped,
			// and every non-F32/S32 type compares unsigned (exactly compare's
			// default arm).
			var flip uint32
			if typ == ptx.S32 {
				flip = 1 << 31
			}
			switch cmp {
			case ptx.CmpEQ:
				for l := range dst {
					dst[l] = boolToU32(av[l] == bv[l])
				}
			case ptx.CmpNE:
				for l := range dst {
					dst[l] = boolToU32(av[l] != bv[l])
				}
			case ptx.CmpLT:
				for l := range dst {
					dst[l] = boolToU32(av[l]^flip < bv[l]^flip)
				}
			case ptx.CmpLE:
				for l := range dst {
					dst[l] = boolToU32(av[l]^flip <= bv[l]^flip)
				}
			case ptx.CmpGT:
				for l := range dst {
					dst[l] = boolToU32(av[l]^flip > bv[l]^flip)
				}
			case ptx.CmpGE:
				for l := range dst {
					dst[l] = boolToU32(av[l]^flip >= bv[l]^flip)
				}
			}
		case uSetpRI:
			iv := u.imm
			cmp, typ := u.d.cmp, u.d.typ
			if typ == ptx.F32 {
				for l := range dst {
					dst[l] = boolToU32(compare(cmp, typ, av[l], iv))
				}
				break
			}
			var flip uint32
			if typ == ptx.S32 {
				flip = 1 << 31
			}
			fiv := iv ^ flip
			switch cmp {
			case ptx.CmpEQ:
				for l := range dst {
					dst[l] = boolToU32(av[l] == iv)
				}
			case ptx.CmpNE:
				for l := range dst {
					dst[l] = boolToU32(av[l] != iv)
				}
			case ptx.CmpLT:
				for l := range dst {
					dst[l] = boolToU32(av[l]^flip < fiv)
				}
			case ptx.CmpLE:
				for l := range dst {
					dst[l] = boolToU32(av[l]^flip <= fiv)
				}
			case ptx.CmpGT:
				for l := range dst {
					dst[l] = boolToU32(av[l]^flip > fiv)
				}
			case ptx.CmpGE:
				for l := range dst {
					dst[l] = boolToU32(av[l]^flip >= fiv)
				}
			}
		case uSelpRRR:
			bv := regs[u.bBase : u.bBase+W][:len(dst)]
			cv := regs[u.cBase : u.cBase+W][:len(dst)]
			for l := range dst {
				if cv[l] != 0 {
					dst[l] = av[l]
				} else {
					dst[l] = bv[l]
				}
			}
		case uCvtR:
			to, from := u.d.typ, u.d.srcTyp
			for l := range dst {
				dst[l] = convert(to, from, av[l])
			}
		}
		w.clearUni(u.dReg)
	}
	return nil
}

func (w *fwarp) wrapMemErr(pc int32, err error) error {
	in := &w.b.k.Instrs[pc]
	return fmt.Errorf("sim: %s: pc %d (%s): %w", w.b.k.Name, pc, in.Mnemonic(), err)
}
