package sim

import (
	"sync/atomic"

	"gpucmp/internal/ptx"
)

// cuArena is the reusable block-execution arena of one compute unit. The
// reference interpreter allocates registers, shared memory, local memory
// and warp contexts afresh for every work-group; the arena keeps one
// high-water-mark backing for each and recycles it across the
// b += numCU block loop (and across launches on the same device), so a
// steady-state work-group performs no heap allocations at all. Arenas
// live on the Device, one per compute-unit index; a Device never runs two
// launches concurrently, and parallel compute units each own their index,
// so no locking is needed.
type cuArena struct {
	shared []uint32
	regs   []uint32 // all warps' registers, warp-major
	local  []uint32 // all warps' lane-major local memory, warp-major
	uni    []uint64 // all warps' uniform-register bitsets, warp-major
	warps  []fwarp
	blk    fblock
}

// fblock is the fast engine's per-work-group shared state (the counterpart
// of blockCtx). It is embedded in the arena and re-initialised per block.
type fblock struct {
	cu             *cuState
	dk             *decodedKernel
	prog           *tProgram // fused program; nil when the plain fast engine runs
	k              *ptx.Kernel
	grid, block    Dim3
	ctaidX, ctaidY uint32
	shared         []uint32
	W              int

	steps  uint64
	budget uint64
	abort  *atomic.Bool

	// spec holds the block-constant special-register values, indexed by
	// ptx.SpecialReg, as one-element arrays the interpreter aliases as
	// uniform scalar operands. The tid slots are unused (tids are per-lane
	// and live on the warp).
	spec [ptx.SrWarpSize + 1][1]uint32

	warps []fwarp
}

// fwarp is the fast engine's per-warp state (the counterpart of warpCtx),
// recycled from the arena across blocks.
type fwarp struct {
	b          *fblock
	warpBase   int
	regs       []uint32
	local      []uint32
	localWords int
	uni        []uint64 // one bit per register: all 64 lanes hold one value

	tidx, tidy [64]uint32
	tidUni     [2]bool
	fullMask   uint64 // populated-lane mask of this warp

	frames    []frame
	atBarrier bool
	done      bool

	// Scratch buffers for the memory path: per-lane addresses and the
	// materialised value operand of atomics.
	addrBuf [64]uint32
	valBuf  [64]uint32
	// Per-slot scalar scratch used to break dst aliasing of uniform
	// register sources (see resolveSrc).
	sbuf [3][1]uint32
}

func growU32(s []uint32, n int) []uint32 {
	if cap(s) < n {
		return make([]uint32, n)
	}
	return s[:n]
}

func growU64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

// ensure sizes the arena for one kernel/block shape, growing backings as
// needed. Existing fwarp entries keep their frame-stack capacity.
func (a *cuArena) ensure(k *ptx.Kernel, block Dim3, w int) {
	threads := block.Count()
	nwarps := (threads + w - 1) / w
	a.shared = growU32(a.shared, (k.SharedBytes+3)/4)
	a.regs = growU32(a.regs, nwarps*k.NumRegs*w)
	a.local = growU32(a.local, nwarps*((k.LocalBytes+3)/4)*w)
	a.uni = growU64(a.uni, nwarps*((k.NumRegs+63)/64))
	if cap(a.warps) < nwarps {
		nw := make([]fwarp, nwarps)
		copy(nw, a.warps)
		a.warps = nw
	} else {
		a.warps = a.warps[:nwarps]
	}
}
