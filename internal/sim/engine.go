package sim

import "sync/atomic"

// Engine selects the interpreter implementation a Device uses. All engines
// are observationally identical — same results, traces, error strings and
// watchdog verdicts — which the full-corpus equivalence gate in
// internal/fuzz pins. They differ only in host-side speed:
//
//   - EngineReference is the pre-optimization interpreter (warp.go), kept
//     as the bit-identity oracle and the speedup baseline.
//   - EngineFast adds predecoding, per-CU arenas and uniformity tracking
//     (fast.go) — the PR 5 engine.
//   - EngineThreaded goes past predecode to threaded code: straight-line
//     op sequences are fused into superinstructions with a single dispatch
//     (fuse.go), and hot fused blocks are compiled into specialised Go
//     closures over the arena state (compile.go).
type Engine uint8

const (
	EngineThreaded Engine = iota // default: fused + block-compiled
	EngineFast
	EngineReference
)

func (e Engine) String() string {
	switch e {
	case EngineFast:
		return "fast"
	case EngineReference:
		return "reference"
	default:
		return "threaded"
	}
}

// ParseEngine maps the CLI spelling to an Engine.
func ParseEngine(s string) (Engine, bool) {
	switch s {
	case "threaded":
		return EngineThreaded, true
	case "fast":
		return EngineFast, true
	case "reference":
		return EngineReference, true
	}
	return EngineThreaded, false
}

// defaultEngine is the engine NewDevice installs; settable process-wide so
// a daemon can A/B engines live (gpucmpd -sim-engine).
var defaultEngine atomic.Uint32

// SetDefaultEngine changes the engine future NewDevice calls install.
// Existing devices are unaffected.
func SetDefaultEngine(e Engine) { defaultEngine.Store(uint32(e)) }

// DefaultEngine returns the engine NewDevice currently installs.
func DefaultEngine() Engine { return Engine(defaultEngine.Load()) }

// engine returns the effective engine of the device: the legacy Reference
// switch (kept because the oracle role predates the Engine knob) wins over
// the Engine field.
func (d *Device) engine() Engine {
	if d.Reference {
		return EngineReference
	}
	return d.Engine
}

// EngineStats is a snapshot of the process-wide interpreter counters. The
// superinstruction and block-compile numbers exist so the fusion layer is
// observable (simbench hit rates, /metrics) without touching the Trace,
// which must stay bit-identical across engines.
type EngineStats struct {
	// SuperinstrHits counts fused-segment executions (one hit = one
	// dispatch covering SuperinstrOps/SuperinstrHits ops on average).
	SuperinstrHits int64 `json:"superinstr_hits"`
	// SuperinstrOps counts warp instructions retired inside fused segments.
	SuperinstrOps int64 `json:"superinstr_ops"`
	// BlockCompiles counts fused segments compiled into closures after
	// crossing the hotness threshold.
	BlockCompiles int64 `json:"block_compiles"`
	// ThreadedCacheSize / ThreadedCacheEvictions describe the per-device
	// (kernel, device) threaded-program caches, summed over live devices.
	ThreadedCacheSize      int64 `json:"threaded_cache_size"`
	ThreadedCacheEvictions int64 `json:"threaded_cache_evictions"`

	// Per-engine retirement counters: warp and lane instructions executed
	// by completed launches, keyed by engine name.
	WarpInstrs map[string]int64 `json:"warp_instrs"`
	LaneInstrs map[string]int64 `json:"lane_instrs"`
}

// engineGlobals holds the process-wide atomic counters behind EngineStats.
var engineGlobals struct {
	superHits     atomic.Int64
	superOps      atomic.Int64
	blockCompiles atomic.Int64
	tcacheSize    atomic.Int64
	tcacheEvicts  atomic.Int64

	warpInstrs [3]atomic.Int64 // indexed by Engine
	laneInstrs [3]atomic.Int64
}

// GlobalEngineStats snapshots the process-wide interpreter counters.
func GlobalEngineStats() EngineStats {
	g := &engineGlobals
	s := EngineStats{
		SuperinstrHits:         g.superHits.Load(),
		SuperinstrOps:          g.superOps.Load(),
		BlockCompiles:          g.blockCompiles.Load(),
		ThreadedCacheSize:      g.tcacheSize.Load(),
		ThreadedCacheEvictions: g.tcacheEvicts.Load(),
		WarpInstrs:             map[string]int64{},
		LaneInstrs:             map[string]int64{},
	}
	for e := EngineThreaded; e <= EngineReference; e++ {
		if n := g.warpInstrs[e].Load(); n != 0 {
			s.WarpInstrs[e.String()] = n
		}
		if n := g.laneInstrs[e].Load(); n != 0 {
			s.LaneInstrs[e.String()] = n
		}
	}
	return s
}

// DeviceEngineStats reports this device's own fusion counters (superinstr
// hits / ops covered / block compiles) accumulated since creation —
// simbench uses the per-cell deltas for hit rates.
func (d *Device) DeviceEngineStats() (hits, ops, compiles int64) {
	return d.superHits.Load(), d.superOps.Load(), d.blockCompiles.Load()
}
