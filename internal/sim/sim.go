// Package sim is the SIMT execution engine: it interprets ptx kernels over
// a modelled device, warp by warp, with full divergence/reconvergence
// semantics, barriers, and a memory system routed through internal/mem.
// A launch produces both functional results (in device memory) and a
// dynamic Trace (instruction and memory-transaction counts) that the
// performance model converts into time.
package sim

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gpucmp/internal/arch"
	"gpucmp/internal/mem"
	"gpucmp/internal/ptx"
)

// Launch-validation errors, mapped by the runtimes onto their own error
// codes (CL_OUT_OF_RESOURCES and friends).
var (
	ErrOutOfResources       = errors.New("out of resources")
	ErrInvalidWorkGroupSize = errors.New("invalid work-group size")
	ErrInvalidConfig        = errors.New("invalid launch configuration")
)

// ErrWatchdog is returned when a kernel is killed mid-execution: either a
// work-group exceeded the device's step budget (the display-watchdog kill
// of 2010-era driver stacks) or the host cancelled the launch through
// Device.Cancel. Errors returned from Launch wrap this sentinel, so
// callers can errors.Is against it.
var ErrWatchdog = errors.New("watchdog killed the kernel")

// errAborted is the internal sentinel a compute unit returns when it stops
// because a sibling unit already failed the launch. It never escapes
// Launch: the sibling's real error is what the caller sees.
var errAborted = errors.New("sim: launch aborted after sibling failure")

// DefaultStepBudget is the per-work-group warp-instruction budget NewDevice
// installs. It is orders of magnitude above what any modelled benchmark
// executes in one work-group, so well-behaved kernels never see it, while a
// runaway (non-terminating) kernel is killed deterministically instead of
// hanging the simulator.
const DefaultStepBudget = 1 << 26

// Dim3 is a 2-D launch dimension (the benchmarks never need Z).
type Dim3 struct{ X, Y int }

// Count returns X*Y.
func (d Dim3) Count() int { return d.X * d.Y }

// constSegBytes is the size of the constant segment; the first
// paramAreaBytes of it mirror the kernel arguments (OpenCL-style front-ends
// read arguments from there).
const (
	constSegBytes  = 64 * 1024
	paramAreaBytes = 256
)

// Device is one simulated processor: the architecture description, its
// global memory, its constant segment, and per-compute-unit cache state.
type Device struct {
	Arch   *arch.Device
	Global *mem.Memory

	constSeg []uint32
	constBrk uint32

	// Parallel controls whether compute units run on separate goroutines.
	Parallel bool

	// Engine selects the interpreter implementation (threaded, fast or
	// reference); NewDevice installs the process default (DefaultEngine).
	Engine Engine

	// StepBudget bounds the warp instructions one work-group may execute
	// before the launch is killed with ErrWatchdog (0 = unbounded). The
	// budget is per work-group, so the verdict is independent of grid size
	// and of how blocks are scheduled across compute units.
	StepBudget uint64

	// Reference selects the pre-optimization interpreter (warp.go) instead
	// of the predecoded fast engine (fast.go). Both produce bit-identical
	// results and traces; the reference engine exists as the equivalence
	// oracle and the speedup baseline for simbench.
	Reference bool

	// cancelled is the host-side kill switch, set by Cancel and polled at
	// watchdog checkpoints inside the warp interpreter loop.
	cancelled atomic.Bool

	// dec caches predecoded programs per kernel; tcache the fused threaded
	// programs built on top of them; arenas hold each compute unit's
	// reusable block-execution state and cus the reusable per-unit
	// cache/counter shards (fast/threaded engines only — the reference
	// engine builds fresh state per launch, as the pre-optimization code
	// did).
	dec    decodeCache
	tcache threadedCache
	arenas []*cuArena
	cus    []*cuState

	// execNanos accumulates the interpreter's own execution cost,
	// excluding host-side compile and staging. Under Parallel it is the
	// critical path — the maximum busy time across the concurrently
	// running compute units, not their sum — so it is the number a
	// wall-clock comparison of engines wants (cmd/simbench).
	execNanos atomic.Int64

	// superHits/superOps/blockCompiles are this device's fusion counters
	// (see DeviceEngineStats); process-wide totals live in engineGlobals.
	superHits     atomic.Int64
	superOps      atomic.Int64
	blockCompiles atomic.Int64
}

// ExecNanos returns the cumulative nanoseconds this device's compute units
// have spent executing launches: the sum of per-unit busy time for
// sequential launches, the critical path (maximum per-unit busy time) when
// the units ran on goroutines.
func (d *Device) ExecNanos() int64 { return d.execNanos.Load() }

// aggregateNanos folds per-compute-unit busy times into the launch's
// ExecNanos contribution: concurrent units overlap, so only the slowest
// one's time is wall-clock (critical path); sequential units add up.
func aggregateNanos(per []int64, parallel bool) int64 {
	var agg int64
	for _, n := range per {
		if parallel {
			if n > agg {
				agg = n
			}
		} else {
			agg += n
		}
	}
	return agg
}

// Cancel asynchronously kills any in-flight or future launch on the device:
// the warp loops observe the flag at their next checkpoint (every
// CheckpointInterval warp instructions) and abort with ErrWatchdog. It is
// the mechanism a scheduler's job timeout uses to reclaim a worker from a
// runaway kernel instead of leaking it.
func (d *Device) Cancel() { d.cancelled.Store(true) }

// Cancelled reports whether Cancel has been called.
func (d *Device) Cancelled() bool { return d.cancelled.Load() }

// DefaultBackingBytes caps the host allocation backing a simulated device's
// global memory. The modelled capacity (Table IV) can reach 6 GB, far more
// than any benchmark here touches; the backing store is what the simulator
// actually commits.
const DefaultBackingBytes = 128 << 20

// NewDevice builds a simulated device with the default backing store.
func NewDevice(a *arch.Device) (*Device, error) {
	return NewDeviceWithMemory(a, DefaultBackingBytes)
}

// NewDeviceWithMemory builds a simulated device whose global memory is
// backed by at most backingBytes of host memory (clamped to the device's
// modelled capacity).
func NewDeviceWithMemory(a *arch.Device, backingBytes uint32) (*Device, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	capacity := uint64(a.MemoryGB * float64(1<<30))
	if uint64(backingBytes) > capacity {
		backingBytes = uint32(capacity)
	}
	return &Device{
		Arch:       a,
		Global:     mem.NewMemory(backingBytes),
		constSeg:   make([]uint32, constSegBytes/4),
		constBrk:   paramAreaBytes,
		Parallel:   true,
		Engine:     DefaultEngine(),
		StepBudget: DefaultStepBudget,
	}, nil
}

// ConstAlloc reserves n bytes in the constant segment and returns its byte
// offset (the value passed as the kernel argument for a constant buffer).
func (d *Device) ConstAlloc(n uint32) (uint32, error) {
	base := (d.constBrk + 255) &^ uint32(255)
	if base+n > constSegBytes {
		return 0, fmt.Errorf("sim: constant segment exhausted: %w", ErrOutOfResources)
	}
	d.constBrk = base + n
	return base, nil
}

// ConstWrite copies words into the constant segment.
func (d *Device) ConstWrite(off uint32, src []uint32) error {
	if off%4 != 0 || int(off/4)+len(src) > len(d.constSeg) {
		return fmt.Errorf("sim: constant write out of range")
	}
	copy(d.constSeg[off/4:], src)
	return nil
}

// ConstReset discards constant-segment allocations (not the param area).
func (d *Device) ConstReset() { d.constBrk = paramAreaBytes }

// CheckLaunch validates a launch configuration against device limits; the
// returned error wraps one of the sentinel errors above.
func (d *Device) CheckLaunch(k *ptx.Kernel, grid, block Dim3) error {
	a := d.Arch
	if grid.X <= 0 || grid.Y <= 0 || block.X <= 0 || block.Y <= 0 {
		return fmt.Errorf("sim: %s: grid %v block %v: %w", k.Name, grid, block, ErrInvalidConfig)
	}
	threads := block.Count()
	if threads > a.MaxWorkGroupSize {
		return fmt.Errorf("sim: %s: work-group size %d exceeds device maximum %d: %w",
			k.Name, threads, a.MaxWorkGroupSize, ErrInvalidWorkGroupSize)
	}
	if k.SharedBytes > a.SharedMemPerUnit {
		return fmt.Errorf("sim: %s: %d bytes of shared memory exceed the %d per compute unit: %w",
			k.Name, k.SharedBytes, a.SharedMemPerUnit, ErrOutOfResources)
	}
	if k.NumRegs*threads > a.RegistersPerUnit {
		return fmt.Errorf("sim: %s: %d registers x %d threads exceed the %d per compute unit: %w",
			k.Name, k.NumRegs, threads, a.RegistersPerUnit, ErrOutOfResources)
	}
	// On unified-local-store machines (Cell/BE SPEs) the shared memory and
	// every work-item's local memory share one on-chip store; kernels whose
	// combined footprint does not fit abort with CL_OUT_OF_RESOURCES — the
	// Table VI "ABT" mechanism.
	if a.UnifiedLocalStore && k.SharedBytes+k.LocalBytes*threads > a.SharedMemPerUnit {
		return fmt.Errorf("sim: %s: %d shared + %d local x %d threads bytes exceed the %d-byte local store: %w",
			k.Name, k.SharedBytes, k.LocalBytes, threads, a.SharedMemPerUnit, ErrOutOfResources)
	}
	return nil
}

// ResidentGroups returns how many work-groups of the kernel fit on one
// compute unit simultaneously (the occupancy input of the performance
// model).
func (d *Device) ResidentGroups(k *ptx.Kernel, block Dim3) int {
	a := d.Arch
	threads := block.Count()
	if threads == 0 {
		return 0
	}
	n := a.MaxGroupsPerUnit
	if lim := a.MaxThreadsPerUnit / threads; lim < n {
		n = lim
	}
	if k.SharedBytes > 0 {
		if lim := a.SharedMemPerUnit / k.SharedBytes; lim < n {
			n = lim
		}
	}
	if k.NumRegs > 0 {
		if lim := a.RegistersPerUnit / (k.NumRegs * threads); lim < n {
			n = lim
		}
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Launch executes the kernel over the grid and returns the dynamic trace.
// args must supply one 32-bit value per kernel parameter (buffer base
// addresses for pointers, raw values for scalars).
func (d *Device) Launch(k *ptx.Kernel, grid, block Dim3, args []uint32) (*Trace, error) {
	if d.cancelled.Load() {
		return nil, fmt.Errorf("sim: %s: launch on cancelled device: %w", k.Name, ErrWatchdog)
	}
	if err := d.CheckLaunch(k, grid, block); err != nil {
		return nil, err
	}
	if len(args) != len(k.Params) {
		return nil, fmt.Errorf("sim: %s: %d arguments for %d parameters: %w",
			k.Name, len(args), len(k.Params), ErrInvalidConfig)
	}
	if 4*len(args) > paramAreaBytes {
		return nil, fmt.Errorf("sim: %s: too many parameters: %w", k.Name, ErrInvalidConfig)
	}
	// Mirror arguments into the param area of the constant segment.
	copy(d.constSeg[:len(args)], args)

	numCU := d.Arch.ComputeUnits
	eng := d.engine()
	useFast := eng != EngineReference
	var dk *decodedKernel
	var prog *tProgram
	if useFast {
		dk = d.dec.get(k)
		if eng == EngineThreaded {
			prog = d.tcache.get(k, dk)
		}
		for len(d.arenas) < numCU {
			d.arenas = append(d.arenas, &cuArena{})
		}
		for len(d.cus) < numCU {
			d.cus = append(d.cus, newCUState(d, len(d.cus)))
		}
	}
	// abort is the per-launch kill switch: the first compute unit to fail
	// trips it, and sibling units observe it between blocks and at watchdog
	// checkpoints instead of running the rest of the grid to completion.
	abort := new(atomic.Bool)
	cus := make([]*cuState, numCU)
	for i := range cus {
		if useFast {
			cus[i] = d.cus[i]
			cus[i].reset()
			ar := d.arenas[i]
			ar.ensure(k, block, d.Arch.SIMDWidth)
			cus[i].arena = ar
		} else {
			cus[i] = newCUState(d, i)
		}
		cus[i].abort = abort
	}
	totalBlocks := grid.Count()

	// Per-unit busy time feeds the ExecNanos aggregation below: the static
	// b += numCU block partition (no work stealing) keeps each unit's
	// workload — and therefore the simulated results — byte-deterministic,
	// and lets the critical path be read off as max-per-unit time.
	perNanos := make([]int64, numCU)
	runCU := func(ci int, cu *cuState) error {
		t0 := time.Now()
		defer func() { perNanos[ci] = time.Since(t0).Nanoseconds() }()
		for b := cu.index; b < totalBlocks; b += numCU {
			if abort.Load() {
				return errAborted
			}
			bx := b % grid.X
			by := b / grid.X
			var err error
			if useFast {
				err = cu.runBlockFast(dk, prog, k, grid, block, bx, by)
			} else {
				err = cu.runBlock(k, grid, block, bx, by, args)
			}
			if err != nil {
				abort.Store(true)
				return err
			}
		}
		return nil
	}

	usedParallel := d.Parallel && runtime.NumCPU() > 1 && totalBlocks > 1
	var launchErr error
	if usedParallel {
		var wg sync.WaitGroup
		errs := make([]error, numCU)
		for i := range cus {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				errs[i] = runCU(i, cus[i])
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil && !errors.Is(err, errAborted) {
				launchErr = err
				break
			}
		}
		if launchErr == nil {
			for _, err := range errs {
				if err != nil {
					launchErr = err
					break
				}
			}
		}
	} else {
		for i := range cus {
			if err := runCU(i, cus[i]); err != nil {
				launchErr = err
				break
			}
		}
	}
	d.execNanos.Add(aggregateNanos(perNanos, usedParallel))
	if useFast {
		var hits, ops, compiles int64
		for _, cu := range cus {
			hits += cu.superRuns
			ops += cu.superOps
			compiles += cu.blockCompiles
		}
		if hits != 0 || compiles != 0 {
			d.superHits.Add(hits)
			d.superOps.Add(ops)
			d.blockCompiles.Add(compiles)
			engineGlobals.superHits.Add(hits)
			engineGlobals.superOps.Add(ops)
			engineGlobals.blockCompiles.Add(compiles)
		}
	}
	if launchErr != nil {
		return nil, launchErr
	}

	tr := newTrace(k, d, grid, block)
	for _, cu := range cus {
		tr.merge(cu)
	}
	engineGlobals.warpInstrs[eng].Add(tr.Dyn.Total)
	engineGlobals.laneInstrs[eng].Add(tr.LaneInstrs)
	return tr, nil
}
