package sim

import (
	"fmt"

	"gpucmp/internal/mem"
)

// Memory arms of the block-compiled executor. Like the ALU arms these only
// run for a fully-active, full-width warp, which licenses three shortcuts
// over execMemFast: operand resolution is precomputed (register base +
// static offset — no resolve/srcv machinery), the address pattern is
// classified with the mask-free mem.*Full routines, and the per-lane
// load/store loop is a plain pass in lane order (one bulk Gather/Scatter
// call for global memory) instead of a bit-mask walk of per-word calls.
//
// Counter accounting, walk order, bounds checks and error strings mirror
// fastmem.go line for line — the full-corpus equivalence gate in
// internal/fuzz holds traces and error strings bit-identical across
// engines, so any divergence here is a test failure, not a tuning knob.

// guardMaskVec is guardMask with the lane walk replaced by a branchless
// full-width pass; compiled guard arms use it because they always hold a
// full warp mask, where the sparse bit-walk has no advantage.
func (w *fwarp) guardMaskVec(d *decodedOp, mask uint64) uint64 {
	base := int(d.guard) * w.b.W
	if w.getUni(d.guard) {
		if (w.regs[base] != 0) != d.guardNeg {
			return mask
		}
		return 0
	}
	gv := w.regs[base : base+w.b.W]
	var out uint64
	for l, v := range gv {
		out |= uint64((v|-v)>>31) << uint(l)
	}
	if d.guardNeg {
		out = ^out
	}
	return out & mask
}

// fillAddrs materialises the warp's byte addresses for a register-based
// access with a static offset.
func (w *fwarp) fillAddrs(av []uint32, off uint32) []uint32 {
	addrs := w.addrBuf[:len(av)]
	for l, a := range av {
		addrs[l] = a + off
	}
	return addrs
}

func (w *fwarp) ldSharedFull(u *microOp) error {
	cu := w.b.cu
	W := w.b.W
	sh := w.b.shared
	av := w.regs[u.aBase : u.aBase+W]
	cu.mem.SharedAccesses++
	if w.getUni(u.aReg) {
		cu.mem.SharedSerial++ // all-equal addresses broadcast: factor 1
		a := av[0] + u.off
		i := a / 4
		if int(i) >= len(sh) {
			return fmt.Errorf("shared access at 0x%x beyond %d bytes", a, len(sh)*4)
		}
		w.writeLanes(u.dReg, w.fullMask, sh[i])
		return nil
	}
	addrs := w.fillAddrs(av, u.off)
	cu.mem.SharedSerial += int64(mem.BankConflictFactorFull(addrs, cu.dev.Arch.SharedMemBanks))
	dst := w.regs[u.dBase : u.dBase+W]
	w.clearUni(u.dReg)
	for l, a := range addrs {
		i := a / 4
		if int(i) >= len(sh) {
			return fmt.Errorf("shared access at 0x%x beyond %d bytes", a, len(sh)*4)
		}
		dst[l] = sh[i]
	}
	return nil
}

func (w *fwarp) stSharedFull(u *microOp) error {
	cu := w.b.cu
	W := w.b.W
	sh := w.b.shared
	av := w.regs[u.aBase : u.aBase+W]
	cu.mem.SharedAccesses++
	if w.getUni(u.aReg) {
		cu.mem.SharedSerial++
		a := av[0] + u.off
		i := a / 4
		if int(i) >= len(sh) {
			return fmt.Errorf("shared access at 0x%x beyond %d bytes", a, len(sh)*4)
		}
		// Every lane stores to one address: the last lane's write wins.
		if u.bReg >= 0 {
			sh[i] = w.regs[u.bBase+W-1]
		} else {
			sh[i] = u.imm
		}
		return nil
	}
	addrs := w.fillAddrs(av, u.off)
	cu.mem.SharedSerial += int64(mem.BankConflictFactorFull(addrs, cu.dev.Arch.SharedMemBanks))
	if u.bReg >= 0 {
		bv := w.regs[u.bBase : u.bBase+W]
		for l, a := range addrs {
			i := a / 4
			if int(i) >= len(sh) {
				return fmt.Errorf("shared access at 0x%x beyond %d bytes", a, len(sh)*4)
			}
			sh[i] = bv[l]
		}
		return nil
	}
	for _, a := range addrs {
		i := a / 4
		if int(i) >= len(sh) {
			return fmt.Errorf("shared access at 0x%x beyond %d bytes", a, len(sh)*4)
		}
		sh[i] = u.imm
	}
	return nil
}

func (w *fwarp) ldGlobalFull(u *microOp) error {
	cu := w.b.cu
	W := w.b.W
	seg := uint32(cu.dev.Arch.GlobalSegmentSize)
	av := w.regs[u.aBase : u.aBase+W]
	var segs [64]uint32
	nseg := 1
	uni := w.getUni(u.aReg)
	var uaddr uint32
	var addrs []uint32
	if uni {
		uaddr = av[0] + u.off
		segs[0] = segBase(uaddr, seg)
	} else {
		addrs = w.fillAddrs(av, u.off)
		nseg = mem.CoalesceListFull(addrs, seg, segs[:])
	}
	cu.mem.GlobalLoadAccesses++
	if cu.l1 != nil {
		for i := 0; i < nseg; i++ {
			if cu.l1.Access(segs[i]) {
				cu.mem.L1Hits++
			} else {
				cu.mem.L1Misses++
				if cu.l2.Access(segs[i]) {
					cu.mem.L2Hits++
				} else {
					cu.mem.L2Misses++
					cu.mem.GlobalLoadTrans++
				}
			}
		}
	} else {
		cu.mem.GlobalLoadTrans += int64(nseg)
	}
	if uni {
		v, err := cu.dev.Global.Load(uaddr)
		if err != nil {
			return err
		}
		w.writeLanes(u.dReg, w.fullMask, v)
		return nil
	}
	dst := w.regs[u.dBase : u.dBase+W]
	w.clearUni(u.dReg)
	return cu.dev.Global.Gather(addrs, dst)
}

func (w *fwarp) stGlobalFull(u *microOp) error {
	cu := w.b.cu
	W := w.b.W
	seg := uint32(cu.dev.Arch.GlobalSegmentSize)
	av := w.regs[u.aBase : u.aBase+W]
	var segs [64]uint32
	nseg := 1
	uni := w.getUni(u.aReg)
	var uaddr uint32
	var addrs []uint32
	if uni {
		uaddr = av[0] + u.off
		segs[0] = segBase(uaddr, seg)
	} else {
		addrs = w.fillAddrs(av, u.off)
		nseg = mem.CoalesceListFull(addrs, seg, segs[:])
	}
	cu.mem.GlobalStoreAccesses++
	if cu.l2 != nil {
		for i := 0; i < nseg; i++ {
			if cu.l2.Access(segs[i]) {
				cu.mem.L2Hits++
			} else {
				cu.mem.L2Misses++
				cu.mem.GlobalStoreTrans++
			}
		}
	} else {
		cu.mem.GlobalStoreTrans += int64(nseg)
	}
	if uni {
		// One destination address: the last lane's value wins.
		return cu.dev.Global.Store(uaddr, w.regs[u.bBase+W-1])
	}
	return cu.dev.Global.Scatter(addrs, w.regs[u.bBase:u.bBase+W])
}
