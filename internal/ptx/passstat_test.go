package ptx

import (
	"strings"
	"testing"
)

func TestPassStatChanged(t *testing.T) {
	if (PassStat{Pass: "dce", InstrsBefore: 5, InstrsAfter: 5, RegsBefore: 3, RegsAfter: 3}).Changed() {
		t.Error("no-op stat reported as changed")
	}
	cases := []PassStat{
		{InstrsBefore: 5, InstrsAfter: 4},
		{RegsBefore: 3, RegsAfter: 2},
		{Rewritten: 1},
		{Removed: 1},
		{Fused: 1},
	}
	for i, c := range cases {
		if !c.Changed() {
			t.Errorf("case %d: %+v should report changed", i, c)
		}
	}
}

func TestUsedRegs(t *testing.T) {
	k := &Kernel{Name: "u", NumRegs: 100} // high-water mark deliberately inflated
	add := NewInstruction(OpAdd)
	add.Typ = U32
	add.Dst = 1
	add.Src[0] = R(2)
	add.Src[1] = ImmU(7) // immediates don't count
	g := NewInstruction(OpMov)
	g.Typ = U32
	g.Dst = 1 // repeat: counted once
	g.Src[0] = Sp(SrTidX)
	g.GuardPred = 3 // guards count
	ret := NewInstruction(OpRet)
	k.Instrs = []Instruction{add, g, ret}
	if got := k.UsedRegs(); got != 3 { // r1, r2, p3
		t.Errorf("UsedRegs = %d, want 3", got)
	}
	if got := (&Kernel{}).UsedRegs(); got != 0 {
		t.Errorf("empty kernel UsedRegs = %d, want 0", got)
	}
}

func TestDiffTable(t *testing.T) {
	before, after := NewStats(), NewStats()
	ld := NewInstruction(OpLd)
	ld.Space = SpaceGlobal
	mov := NewInstruction(OpMov)
	add := NewInstruction(OpAdd)
	// before: 2 mov, 1 add, 1 ld.global; after: 1 add, 1 ld.global.
	before.Count(&mov, 2)
	before.Count(&add, 1)
	before.Count(&ld, 1)
	after.Count(&add, 1)
	after.Count(&ld, 1)

	out := DiffTable(before, after)
	if !strings.Contains(out, "mov") {
		t.Errorf("changed row missing:\n%s", out)
	}
	if strings.Contains(out, "add") || strings.Contains(out, "ld.global") {
		t.Errorf("unchanged rows should be omitted:\n%s", out)
	}
	if !strings.Contains(out, "(-2)") {
		t.Errorf("delta missing:\n%s", out)
	}
	if !strings.Contains(out, "TOTAL") {
		t.Errorf("TOTAL row missing:\n%s", out)
	}

	if got := DiffTable(before, before); got != "  (no change)\n" {
		t.Errorf("identical censuses: %q", got)
	}
}

func TestRemarkString(t *testing.T) {
	r := Remark{Phase: "frontend", Message: "fully unrolled loop i by 8 trips"}
	if got := r.String(); got != "frontend: fully unrolled loop i by 8 trips" {
		t.Errorf("Remark.String = %q", got)
	}
}
