package ptx

import (
	"fmt"
	"strings"
)

// ScalarType is the operand interpretation of an instruction. All registers
// are 32-bit slots; the type decides how their bit patterns are combined.
type ScalarType int

const (
	B32  ScalarType = iota // raw bits
	U32                    // unsigned integer
	S32                    // signed integer
	F32                    // IEEE-754 single precision
	Pred                   // predicate (0 or 1)
)

// String returns the PTX type suffix.
func (t ScalarType) String() string {
	switch t {
	case B32:
		return "b32"
	case U32:
		return "u32"
	case S32:
		return "s32"
	case F32:
		return "f32"
	case Pred:
		return "pred"
	default:
		return fmt.Sprintf("type(%d)", int(t))
	}
}

// Space is a PTX state space for loads, stores and atomics.
type Space int

const (
	SpaceNone   Space = iota
	SpaceParam        // kernel parameter bank (CUDA style)
	SpaceConst        // constant memory
	SpaceGlobal       // device global memory
	SpaceShared       // per-block shared (OpenCL: local) memory
	SpaceLocal        // per-thread local (spill) memory
	SpaceTex          // texture path (reads only, through the texture cache)
)

// String returns the PTX space suffix.
func (s Space) String() string {
	switch s {
	case SpaceNone:
		return ""
	case SpaceParam:
		return "param"
	case SpaceConst:
		return "const"
	case SpaceGlobal:
		return "global"
	case SpaceShared:
		return "shared"
	case SpaceLocal:
		return "local"
	case SpaceTex:
		return "tex"
	default:
		return fmt.Sprintf("space(%d)", int(s))
	}
}

// Reg is a virtual register index. NoReg marks an absent register operand.
type Reg int32

// NoReg marks an unused register slot (e.g. no guard predicate).
const NoReg Reg = -1

// Operand is a register, a 32-bit immediate (raw bit pattern), or a
// read-only special register.
type Operand struct {
	IsImm  bool
	IsSpec bool
	Reg    Reg
	Imm    uint32
	Spec   SpecialReg
}

// Sp returns a special-register operand.
func Sp(s SpecialReg) Operand { return Operand{IsSpec: true, Spec: s} }

// R returns a register operand.
func R(r Reg) Operand { return Operand{Reg: r} }

// ImmU returns an unsigned-integer immediate operand.
func ImmU(v uint32) Operand { return Operand{IsImm: true, Imm: v} }

// ImmI returns a signed-integer immediate operand.
func ImmI(v int32) Operand { return Operand{IsImm: true, Imm: uint32(v)} }

// String renders the operand as PTX text.
func (o Operand) String() string {
	switch {
	case o.IsImm:
		return fmt.Sprintf("0x%x", o.Imm)
	case o.IsSpec:
		return o.Spec.String()
	default:
		return fmt.Sprintf("%%r%d", o.Reg)
	}
}

// Instruction is one virtual-ISA instruction. Loads and stores address
// memory as Src[0] (base register, a byte address) plus Off. Branches carry
// a Target pc and the Join pc (the immediate post-dominator) used by the
// SIMT reconvergence stack.
type Instruction struct {
	Op     Opcode
	Typ    ScalarType
	SrcTyp ScalarType // cvt only: source interpretation
	Cmp    CmpOp      // setp only
	Atom   AtomOp     // atom only

	Dst Reg
	Src [3]Operand

	Space Space // ld/st/atom/tex
	Off   int32 // byte offset for ld/st/atom

	Target int // bra: target pc
	Join   int // bra: reconvergence pc

	// Guard predicate: when GuardPred != NoReg the instruction only
	// executes in lanes where the predicate (xor GuardNeg) is true.
	GuardPred Reg
	GuardNeg  bool
}

// NewInstruction returns an instruction with no guard predicate.
func NewInstruction(op Opcode) Instruction {
	return Instruction{Op: op, Dst: NoReg, GuardPred: NoReg,
		Src: [3]Operand{{Reg: NoReg}, {Reg: NoReg}, {Reg: NoReg}}}
}

// IsMemory reports whether the instruction touches a memory space.
func (in *Instruction) IsMemory() bool {
	switch in.Op {
	case OpLd, OpSt, OpTex, OpAtom:
		return true
	}
	return false
}

// Mnemonic returns the dotted PTX-style mnemonic, e.g. "ld.global.f32".
func (in *Instruction) Mnemonic() string {
	var b strings.Builder
	b.WriteString(in.Op.String())
	switch in.Op {
	case OpLd, OpSt:
		b.WriteByte('.')
		b.WriteString(in.Space.String())
	case OpTex:
		b.WriteString(".1d")
	case OpAtom:
		b.WriteByte('.')
		b.WriteString(in.Space.String())
		b.WriteByte('.')
		b.WriteString(in.Atom.String())
	case OpSetp:
		b.WriteByte('.')
		b.WriteString(in.Cmp.String())
	case OpBar:
		b.WriteString(".sync")
	}
	switch in.Op {
	case OpBra, OpBar, OpRet:
	case OpCvt:
		b.WriteByte('.')
		b.WriteString(in.Typ.String())
		b.WriteByte('.')
		b.WriteString(in.SrcTyp.String())
	default:
		b.WriteByte('.')
		b.WriteString(in.Typ.String())
	}
	return b.String()
}

// String renders the instruction as one line of PTX-like assembly.
func (in *Instruction) String() string {
	var b strings.Builder
	if in.GuardPred != NoReg {
		if in.GuardNeg {
			fmt.Fprintf(&b, "@!%%p%d ", in.GuardPred)
		} else {
			fmt.Fprintf(&b, "@%%p%d ", in.GuardPred)
		}
	}
	b.WriteString(in.Mnemonic())
	switch in.Op {
	case OpBra:
		fmt.Fprintf(&b, " L%d, J%d", in.Target, in.Join)
	case OpBar, OpRet:
	case OpLd, OpTex:
		fmt.Fprintf(&b, " %%r%d, [%s+%d]", in.Dst, in.Src[0], in.Off)
	case OpSt:
		fmt.Fprintf(&b, " [%s+%d], %s", in.Src[0], in.Off, in.Src[1])
	case OpAtom:
		fmt.Fprintf(&b, " %%r%d, [%s+%d], %s", in.Dst, in.Src[0], in.Off, in.Src[1])
	case OpSetp:
		fmt.Fprintf(&b, " %%p%d, %s, %s", in.Dst, in.Src[0], in.Src[1])
	case OpSelp:
		fmt.Fprintf(&b, " %%r%d, %s, %s, %%p%d", in.Dst, in.Src[0], in.Src[1], in.Src[2].Reg)
	default:
		fmt.Fprintf(&b, " %%r%d", in.Dst)
		for _, s := range in.Src {
			if !s.IsImm && s.Reg == NoReg {
				break
			}
			b.WriteString(", ")
			b.WriteString(s.String())
		}
	}
	return b.String()
}
