package ptx

import (
	"fmt"
	"sort"
	"strings"
)

// PassStat records what one back-end pass did to one kernel: the
// instruction and live-register counts on both sides of the pass plus the
// pass-specific work counters. The compiler pipeline attaches one entry
// per executed pass to Kernel.PassStats, in execution order, so any layer
// holding a compiled kernel (the scheduler, the HTTP service, cmd/ptxstat)
// can report per-pass deltas without recompiling.
type PassStat struct {
	Pass         string `json:"pass"`
	InstrsBefore int    `json:"instrs_before"`
	InstrsAfter  int    `json:"instrs_after"`
	RegsBefore   int    `json:"regs_before"` // distinct registers referenced
	RegsAfter    int    `json:"regs_after"`

	// Work counters; a pass fills only the ones that describe it.
	Removed   int `json:"removed,omitempty"`   // instructions deleted
	Rewritten int `json:"rewritten,omitempty"` // operands forwarded / rewritten
	Fused     int `json:"fused,omitempty"`     // instruction pairs combined
}

// Changed reports whether the pass altered the kernel at all.
func (s PassStat) Changed() bool {
	return s.InstrsBefore != s.InstrsAfter || s.RegsBefore != s.RegsAfter ||
		s.Removed != 0 || s.Rewritten != 0 || s.Fused != 0
}

// String renders one pass-stat line.
func (s PassStat) String() string {
	return fmt.Sprintf("%-12s instrs %d->%d regs %d->%d removed=%d rewritten=%d fused=%d",
		s.Pass, s.InstrsBefore, s.InstrsAfter, s.RegsBefore, s.RegsAfter,
		s.Removed, s.Rewritten, s.Fused)
}

// Remark is one structured compiler observation: "fully unrolled loop i by
// 8", "CSE evicted r12", "spill inserted for unroll copy 3". Phase is
// "frontend" for code-generation remarks or the back-end pass name.
type Remark struct {
	Phase   string `json:"phase"`
	Message string `json:"message"`
}

// String renders the remark as "phase: message".
func (r Remark) String() string { return r.Phase + ": " + r.Message }

// UsedRegs counts the distinct registers the kernel's instructions
// reference (destinations, sources and guard predicates). Passes do not
// renumber registers, so this — not NumRegs, which is the allocator's
// high-water mark — is the quantity that shrinks when dead code goes away.
func (k *Kernel) UsedRegs() int {
	seen := make(map[Reg]bool)
	mark := func(r Reg) {
		if r != NoReg {
			seen[r] = true
		}
	}
	for i := range k.Instrs {
		in := &k.Instrs[i]
		mark(in.Dst)
		mark(in.GuardPred)
		for _, s := range in.Src {
			if !s.IsImm && !s.IsSpec {
				mark(s.Reg)
			}
		}
	}
	return len(seen)
}

// DiffTable renders the instruction-mix rows on which two censuses differ,
// one "<label>  before -> after  (delta)" line per changed row, sorted by
// class then label. Identical mixes render as a single "(no change)" line.
func DiffTable(before, after *Stats) string {
	keys := make(map[OpKey]bool)
	for k := range before.ByOp {
		keys[k] = true
	}
	for k := range after.ByOp {
		keys[k] = true
	}
	var changed []OpKey
	for k := range keys {
		if before.ByOp[k] != after.ByOp[k] {
			changed = append(changed, k)
		}
	}
	if len(changed) == 0 {
		return "  (no change)\n"
	}
	sort.Slice(changed, func(i, j int) bool {
		ci, cj := ClassOf(changed[i].Op), ClassOf(changed[j].Op)
		if ci != cj {
			return ci < cj
		}
		return changed[i].String() < changed[j].String()
	})
	var b strings.Builder
	for _, k := range changed {
		l, r := before.ByOp[k], after.ByOp[k]
		fmt.Fprintf(&b, "  %-14s %5d -> %-5d (%+d)\n", k.String(), l, r, r-l)
	}
	fmt.Fprintf(&b, "  %-14s %5d -> %-5d (%+d)\n", "TOTAL", before.Total, after.Total, after.Total-before.Total)
	return b.String()
}
