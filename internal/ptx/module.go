package ptx

import (
	"fmt"
	"strings"
)

// Param describes one kernel parameter. Pointer parameters carry the state
// space their pointee lives in (global, constant, or texture); value
// parameters are 32-bit scalars.
type Param struct {
	Name    string
	Pointer bool
	Space   Space // for pointers: SpaceGlobal, SpaceConst or SpaceTex
	Type    ScalarType
}

// Kernel is one compiled entry point.
type Kernel struct {
	Name      string
	Toolchain string // "cuda" or "opencl": which front-end produced it
	Params    []Param
	Instrs    []Instruction

	// Resource footprint, filled in by the compiler; the runtimes check it
	// against device limits (the Table VI CL_OUT_OF_RESOURCES path) and the
	// performance model derives occupancy from it.
	// FrontEndStats is a static instruction census taken before the
	// back-end optimiser ran — the "PTX text" view that the paper's
	// Table V tabulates. Instrs holds the post-back-end code the
	// simulator executes.
	FrontEndStats *Stats

	// PassStats records, in execution order, what each back-end pass did
	// to this kernel; Remarks is the compiler's observation stream from
	// the front-end and the passes. Both are immutable once Compile
	// returns, like the rest of the kernel.
	PassStats []PassStat `json:"pass_stats,omitempty"`
	Remarks   []Remark   `json:"remarks,omitempty"`

	NumRegs     int // 32-bit registers per thread (includes predicates)
	SharedBytes int // static shared memory per work-group
	LocalBytes  int // per-thread local (spill) memory
	ConstBytes  int // constant-bank bytes used for parameters

	// WarpWidthAssumption is non-zero when the kernel source bakes in a
	// hardware warp width (the RdxS implementation assumes 32). Running on
	// a device with a different SIMD width produces wrong results rather
	// than an error — the Table VI "FL" entries.
	WarpWidthAssumption int
}

// Validate checks structural invariants: branch targets in range, register
// indices within NumRegs, and parameter references in range.
func (k *Kernel) Validate() error {
	n := len(k.Instrs)
	checkReg := func(r Reg, pc int, what string) error {
		if r == NoReg {
			return nil
		}
		if r < 0 || int(r) >= k.NumRegs {
			return fmt.Errorf("ptx: %s: pc %d: %s register %d out of range [0,%d)", k.Name, pc, what, r, k.NumRegs)
		}
		return nil
	}
	for pc := range k.Instrs {
		in := &k.Instrs[pc]
		if in.Op <= OpInvalid || in.Op >= numOpcodes {
			return fmt.Errorf("ptx: %s: pc %d: invalid opcode", k.Name, pc)
		}
		if in.Op == OpBra {
			if in.Target < 0 || in.Target > n {
				return fmt.Errorf("ptx: %s: pc %d: branch target %d out of range", k.Name, pc, in.Target)
			}
			if in.Join < 0 || in.Join > n {
				return fmt.Errorf("ptx: %s: pc %d: join %d out of range", k.Name, pc, in.Join)
			}
		}
		if err := checkReg(in.Dst, pc, "dst"); err != nil {
			return err
		}
		if err := checkReg(in.GuardPred, pc, "guard"); err != nil {
			return err
		}
		for i, s := range in.Src {
			if !s.IsImm && !s.IsSpec {
				if err := checkReg(s.Reg, pc, fmt.Sprintf("src%d", i)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Disassemble renders the kernel as PTX-like text, one instruction per line
// with pc labels, as consumed by cmd/ptxstat for side-by-side inspection.
func (k *Kernel) Disassemble() string {
	var b strings.Builder
	fmt.Fprintf(&b, ".entry %s  // toolchain=%s regs=%d shared=%dB local=%dB\n",
		k.Name, k.Toolchain, k.NumRegs, k.SharedBytes, k.LocalBytes)
	for _, p := range k.Params {
		kind := p.Type.String()
		if p.Pointer {
			kind = "ptr." + p.Space.String()
		}
		fmt.Fprintf(&b, "  .param %s %s\n", kind, p.Name)
	}
	for pc := range k.Instrs {
		fmt.Fprintf(&b, "L%-4d %s\n", pc, k.Instrs[pc].String())
	}
	return b.String()
}

// StaticStats counts the kernel's instructions per opcode/class without
// executing it — this is exactly what the paper's Table V tabulates for the
// FFT "forward" kernel.
func (k *Kernel) StaticStats() *Stats {
	s := NewStats()
	for pc := range k.Instrs {
		s.Count(&k.Instrs[pc], 1)
	}
	return s
}

// Module is a set of kernels produced by one front-end from one source
// program, mirroring a CUDA module / OpenCL program object.
type Module struct {
	Name    string
	Kernels map[string]*Kernel
}

// NewModule returns an empty module.
func NewModule(name string) *Module {
	return &Module{Name: name, Kernels: make(map[string]*Kernel)}
}

// Add inserts a kernel, replacing any previous kernel of the same name.
func (m *Module) Add(k *Kernel) { m.Kernels[k.Name] = k }

// Kernel returns the named kernel or an error.
func (m *Module) Kernel(name string) (*Kernel, error) {
	k, ok := m.Kernels[name]
	if !ok {
		return nil, fmt.Errorf("ptx: module %s has no kernel %q", m.Name, name)
	}
	return k, nil
}
