package ptx

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads the textual form produced by Kernel.Disassemble back into a
// Kernel, making the disassembly a lossless serialisation format for
// compiled kernels. Parse(k.Disassemble()) yields a kernel that validates
// and executes identically (round-trip tested in parse_test.go).
func Parse(text string) (*Kernel, error) {
	k := &Kernel{}
	sawEntry := false
	for ln, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, ".entry"):
			if err := parseEntry(k, line); err != nil {
				return nil, fmt.Errorf("ptx: line %d: %w", ln+1, err)
			}
			sawEntry = true
		case strings.HasPrefix(line, ".param"):
			if err := parseParam(k, line); err != nil {
				return nil, fmt.Errorf("ptx: line %d: %w", ln+1, err)
			}
		default:
			if !sawEntry {
				return nil, fmt.Errorf("ptx: line %d: instruction before .entry", ln+1)
			}
			in, err := parseInstr(line)
			if err != nil {
				return nil, fmt.Errorf("ptx: line %d: %w", ln+1, err)
			}
			k.Instrs = append(k.Instrs, in)
		}
	}
	if !sawEntry {
		return nil, fmt.Errorf("ptx: no .entry directive")
	}
	if err := k.Validate(); err != nil {
		return nil, err
	}
	return k, nil
}

// parseEntry handles:
//
//	.entry name  // toolchain=cuda regs=31 shared=0B local=0B
func parseEntry(k *Kernel, line string) error {
	rest := strings.TrimSpace(strings.TrimPrefix(line, ".entry"))
	name, meta, _ := strings.Cut(rest, "//")
	k.Name = strings.TrimSpace(name)
	if k.Name == "" {
		return fmt.Errorf("entry without a name")
	}
	for _, f := range strings.Fields(meta) {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			continue
		}
		val = strings.TrimSuffix(val, "B")
		switch key {
		case "toolchain":
			k.Toolchain = val
		case "regs":
			n, err := strconv.Atoi(val)
			if err != nil {
				return fmt.Errorf("bad regs %q", val)
			}
			k.NumRegs = n
		case "shared":
			n, err := strconv.Atoi(val)
			if err != nil {
				return fmt.Errorf("bad shared %q", val)
			}
			k.SharedBytes = n
		case "local":
			n, err := strconv.Atoi(val)
			if err != nil {
				return fmt.Errorf("bad local %q", val)
			}
			k.LocalBytes = n
		}
	}
	return nil
}

// parseParam handles ".param ptr.global out" and ".param u32 n".
func parseParam(k *Kernel, line string) error {
	fields := strings.Fields(line)
	if len(fields) != 3 {
		return fmt.Errorf("malformed .param %q", line)
	}
	kind, name := fields[1], fields[2]
	p := Param{Name: name}
	if space, ok := strings.CutPrefix(kind, "ptr."); ok {
		p.Pointer = true
		sp, err := parseSpace(space)
		if err != nil {
			return err
		}
		p.Space = sp
	} else {
		t, err := parseType(kind)
		if err != nil {
			return err
		}
		p.Type = t
	}
	k.Params = append(k.Params, p)
	return nil
}

func parseSpace(s string) (Space, error) {
	for sp := SpaceParam; sp <= SpaceTex; sp++ {
		if sp.String() == s {
			return sp, nil
		}
	}
	return 0, fmt.Errorf("unknown space %q", s)
}

func parseType(s string) (ScalarType, error) {
	for t := B32; t <= Pred; t++ {
		if t.String() == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("unknown type %q", s)
}

func parseCmp(s string) (CmpOp, error) {
	for c := CmpEQ; c <= CmpGE; c++ {
		if c.String() == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("unknown comparison %q", s)
}

func parseAtomOp(s string) (AtomOp, error) {
	for a := AtomAdd; a <= AtomCAS; a++ {
		if a.String() == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("unknown atomic op %q", s)
}

func parseReg(tok string) (Reg, error) {
	tok = strings.TrimSpace(tok)
	if len(tok) < 3 || tok[0] != '%' || (tok[1] != 'r' && tok[1] != 'p') {
		return NoReg, fmt.Errorf("bad register %q", tok)
	}
	n, err := strconv.Atoi(tok[2:])
	if err != nil {
		return NoReg, fmt.Errorf("bad register %q", tok)
	}
	return Reg(n), nil
}

func parseOperand(tok string) (Operand, error) {
	tok = strings.TrimSpace(tok)
	switch {
	case strings.HasPrefix(tok, "0x"):
		v, err := strconv.ParseUint(tok[2:], 16, 32)
		if err != nil {
			return Operand{}, fmt.Errorf("bad immediate %q", tok)
		}
		return ImmU(uint32(v)), nil
	case strings.HasPrefix(tok, "%r") || strings.HasPrefix(tok, "%p"):
		r, err := parseReg(tok)
		if err != nil {
			return Operand{}, err
		}
		return R(r), nil
	default:
		for sr := SrTidX; sr <= SrWarpSize; sr++ {
			if sr.String() == tok {
				return Sp(sr), nil
			}
		}
		return Operand{}, fmt.Errorf("bad operand %q", tok)
	}
}

// parseAddr handles "[%r3+8]" and "[0x40+0]".
func parseAddr(tok string) (Operand, int32, error) {
	tok = strings.TrimSpace(tok)
	if !strings.HasPrefix(tok, "[") || !strings.HasSuffix(tok, "]") {
		return Operand{}, 0, fmt.Errorf("bad address %q", tok)
	}
	inner := tok[1 : len(tok)-1]
	i := strings.LastIndex(inner, "+")
	if i < 0 {
		return Operand{}, 0, fmt.Errorf("bad address %q", tok)
	}
	base := inner[:i]
	off, err := strconv.ParseInt(inner[i+1:], 10, 32)
	if err != nil {
		return Operand{}, 0, fmt.Errorf("bad offset in %q", tok)
	}
	var op Operand
	if base == "%r-1" { // absent base register (parameter loads)
		op = Operand{Reg: NoReg}
	} else {
		op, err = parseOperand(base)
		if err != nil {
			return Operand{}, 0, err
		}
	}
	return op, int32(off), nil
}

func parseInstr(line string) (Instruction, error) {
	// Strip the "L12" pc label.
	if strings.HasPrefix(line, "L") {
		if i := strings.IndexAny(line, " \t"); i > 0 {
			if _, err := strconv.Atoi(line[1:i]); err == nil {
				line = strings.TrimSpace(line[i:])
			}
		}
	}
	in := NewInstruction(OpInvalid)

	// Guard prefix.
	if strings.HasPrefix(line, "@") {
		tok, rest, ok := strings.Cut(line, " ")
		if !ok {
			return in, fmt.Errorf("guard without instruction in %q", line)
		}
		g := tok[1:]
		if strings.HasPrefix(g, "!") {
			in.GuardNeg = true
			g = g[1:]
		}
		r, err := parseReg(g)
		if err != nil {
			return in, err
		}
		in.GuardPred = r
		line = strings.TrimSpace(rest)
	}

	mnemonic, operands, _ := strings.Cut(line, " ")
	parts := strings.Split(mnemonic, ".")
	opName := parts[0]
	var op Opcode
	for o := OpInvalid + 1; o < numOpcodes; o++ {
		if o.String() == opName {
			op = o
			break
		}
	}
	if op == OpInvalid {
		return in, fmt.Errorf("unknown opcode %q", opName)
	}
	in.Op = op

	// Decode the mnemonic suffixes.
	var err error
	switch op {
	case OpLd, OpSt:
		if len(parts) != 3 {
			return in, fmt.Errorf("malformed %q", mnemonic)
		}
		if in.Space, err = parseSpace(parts[1]); err != nil {
			return in, err
		}
		if in.Typ, err = parseType(parts[2]); err != nil {
			return in, err
		}
	case OpTex:
		if len(parts) != 3 || parts[1] != "1d" {
			return in, fmt.Errorf("malformed %q", mnemonic)
		}
		in.Space = SpaceTex
		if in.Typ, err = parseType(parts[2]); err != nil {
			return in, err
		}
	case OpAtom:
		if len(parts) != 4 {
			return in, fmt.Errorf("malformed %q", mnemonic)
		}
		if in.Space, err = parseSpace(parts[1]); err != nil {
			return in, err
		}
		if in.Atom, err = parseAtomOp(parts[2]); err != nil {
			return in, err
		}
		if in.Typ, err = parseType(parts[3]); err != nil {
			return in, err
		}
	case OpSetp:
		if len(parts) != 3 {
			return in, fmt.Errorf("malformed %q", mnemonic)
		}
		if in.Cmp, err = parseCmp(parts[1]); err != nil {
			return in, err
		}
		if in.Typ, err = parseType(parts[2]); err != nil {
			return in, err
		}
	case OpBar:
		if mnemonic != "bar.sync" {
			return in, fmt.Errorf("malformed %q", mnemonic)
		}
	case OpBra, OpRet:
		if len(parts) != 1 {
			return in, fmt.Errorf("malformed %q", mnemonic)
		}
	case OpCvt:
		if len(parts) != 3 {
			return in, fmt.Errorf("malformed %q", mnemonic)
		}
		if in.Typ, err = parseType(parts[1]); err != nil {
			return in, err
		}
		if in.SrcTyp, err = parseType(parts[2]); err != nil {
			return in, err
		}
	default:
		if len(parts) != 2 {
			return in, fmt.Errorf("malformed %q", mnemonic)
		}
		if in.Typ, err = parseType(parts[1]); err != nil {
			return in, err
		}
	}

	// Decode the operand list.
	ops := splitOperands(operands)
	switch op {
	case OpBar, OpRet:
		if len(ops) != 0 {
			return in, fmt.Errorf("%s takes no operands", opName)
		}
	case OpBra:
		if len(ops) != 2 || !strings.HasPrefix(ops[0], "L") || !strings.HasPrefix(ops[1], "J") {
			return in, fmt.Errorf("malformed branch %q", operands)
		}
		if in.Target, err = strconv.Atoi(ops[0][1:]); err != nil {
			return in, fmt.Errorf("bad target %q", ops[0])
		}
		if in.Join, err = strconv.Atoi(ops[1][1:]); err != nil {
			return in, fmt.Errorf("bad join %q", ops[1])
		}
	case OpLd, OpTex:
		if len(ops) != 2 {
			return in, fmt.Errorf("ld needs dst, [addr]")
		}
		if in.Dst, err = parseReg(ops[0]); err != nil {
			return in, err
		}
		if in.Src[0], in.Off, err = parseAddr(ops[1]); err != nil {
			return in, err
		}
	case OpSt:
		if len(ops) != 2 {
			return in, fmt.Errorf("st needs [addr], src")
		}
		if in.Src[0], in.Off, err = parseAddr(ops[0]); err != nil {
			return in, err
		}
		if in.Src[1], err = parseOperand(ops[1]); err != nil {
			return in, err
		}
	case OpAtom:
		if len(ops) != 3 {
			return in, fmt.Errorf("atom needs dst, [addr], src")
		}
		if in.Dst, err = parseReg(ops[0]); err != nil {
			return in, err
		}
		if in.Src[0], in.Off, err = parseAddr(ops[1]); err != nil {
			return in, err
		}
		if in.Src[1], err = parseOperand(ops[2]); err != nil {
			return in, err
		}
	default:
		if len(ops) < 1 {
			return in, fmt.Errorf("%s needs a destination", opName)
		}
		if in.Dst, err = parseReg(ops[0]); err != nil {
			return in, err
		}
		for i, tok := range ops[1:] {
			if i >= 3 {
				return in, fmt.Errorf("too many operands in %q", operands)
			}
			if in.Src[i], err = parseOperand(tok); err != nil {
				return in, err
			}
		}
	}
	return in, nil
}

func splitOperands(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}
