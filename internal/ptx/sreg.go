package ptx

import "fmt"

// SpecialReg is a read-only per-thread hardware register, read via mov
// (PTX: "mov.u32 %r1, %tid.x").
type SpecialReg int

const (
	SrTidX SpecialReg = iota
	SrTidY
	SrNtidX
	SrNtidY
	SrCtaidX
	SrCtaidY
	SrNctaidX
	SrNctaidY
	SrWarpSize
)

// String returns the PTX special-register name.
func (s SpecialReg) String() string {
	switch s {
	case SrTidX:
		return "%tid.x"
	case SrTidY:
		return "%tid.y"
	case SrNtidX:
		return "%ntid.x"
	case SrNtidY:
		return "%ntid.y"
	case SrCtaidX:
		return "%ctaid.x"
	case SrCtaidY:
		return "%ctaid.y"
	case SrNctaidX:
		return "%nctaid.x"
	case SrNctaidY:
		return "%nctaid.y"
	case SrWarpSize:
		return "WARP_SZ"
	default:
		return fmt.Sprintf("%%sreg(%d)", int(s))
	}
}
