package ptx

import (
	"strings"
	"testing"
)

func roundTripKernel() *Kernel {
	k := &Kernel{Name: "rt", Toolchain: "cuda", NumRegs: 12, SharedBytes: 64, LocalBytes: 16}
	k.Params = []Param{
		{Name: "out", Pointer: true, Space: SpaceGlobal},
		{Name: "vec", Pointer: true, Space: SpaceTex},
		{Name: "coef", Pointer: true, Space: SpaceConst},
		{Name: "n", Type: U32},
	}
	mk := func(op Opcode, f func(*Instruction)) Instruction {
		in := NewInstruction(op)
		f(&in)
		return in
	}
	k.Instrs = []Instruction{
		mk(OpLd, func(i *Instruction) { i.Space = SpaceParam; i.Typ = U32; i.Dst = 0; i.Off = 0 }),
		mk(OpMov, func(i *Instruction) { i.Typ = U32; i.Dst = 1; i.Src[0] = Sp(SrTidX) }),
		mk(OpMad, func(i *Instruction) {
			i.Typ = U32
			i.Dst = 2
			i.Src[0] = R(1)
			i.Src[1] = ImmU(4)
			i.Src[2] = R(0)
		}),
		mk(OpSetp, func(i *Instruction) { i.Cmp = CmpLT; i.Typ = U32; i.Dst = 3; i.Src[0] = R(1); i.Src[1] = ImmU(64) }),
		mk(OpBra, func(i *Instruction) { i.GuardPred = 3; i.GuardNeg = true; i.Target = 9; i.Join = 9 }),
		mk(OpTex, func(i *Instruction) { i.Space = SpaceTex; i.Typ = F32; i.Dst = 4; i.Src[0] = R(2); i.Off = 8 }),
		mk(OpCvt, func(i *Instruction) { i.Typ = F32; i.SrcTyp = S32; i.Dst = 5; i.Src[0] = R(1) }),
		mk(OpSelp, func(i *Instruction) {
			i.Typ = F32
			i.Dst = 6
			i.Src[0] = R(4)
			i.Src[1] = R(5)
			i.Src[2] = R(3)
		}),
		mk(OpSt, func(i *Instruction) { i.Space = SpaceGlobal; i.Typ = F32; i.Src[0] = R(2); i.Src[1] = R(6); i.Off = -4 }),
		mk(OpAtom, func(i *Instruction) {
			i.Space = SpaceGlobal
			i.Atom = AtomAdd
			i.Typ = U32
			i.Dst = 7
			i.Src[0] = R(2)
			i.Src[1] = ImmU(1)
		}),
		mk(OpBar, func(i *Instruction) {}),
		mk(OpRet, func(i *Instruction) {}),
	}
	return k
}

// TestParseRoundTrip: Disassemble then Parse must reproduce the kernel
// exactly (fixpoint of the textual form).
func TestParseRoundTrip(t *testing.T) {
	k := roundTripKernel()
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
	text := k.Disassemble()
	parsed, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse: %v\n%s", err, text)
	}
	if parsed.Name != k.Name || parsed.Toolchain != k.Toolchain ||
		parsed.NumRegs != k.NumRegs || parsed.SharedBytes != k.SharedBytes ||
		parsed.LocalBytes != k.LocalBytes {
		t.Errorf("header fields lost: %+v", parsed)
	}
	if len(parsed.Params) != len(k.Params) {
		t.Fatalf("params: %d vs %d", len(parsed.Params), len(k.Params))
	}
	for i := range k.Params {
		if parsed.Params[i] != k.Params[i] {
			t.Errorf("param %d: %+v vs %+v", i, parsed.Params[i], k.Params[i])
		}
	}
	again := parsed.Disassemble()
	if again != text {
		t.Errorf("disassembly not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s", text, again)
	}
	if len(parsed.Instrs) != len(k.Instrs) {
		t.Fatalf("instr count: %d vs %d", len(parsed.Instrs), len(k.Instrs))
	}
	for i := range k.Instrs {
		if parsed.Instrs[i] != k.Instrs[i] {
			t.Errorf("instr %d: %+v vs %+v", i, parsed.Instrs[i], k.Instrs[i])
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"no entry", "L0 ret"},
		{"bad opcode", ".entry k // regs=1\nL0 zorp.u32 %r0"},
		{"bad register", ".entry k // regs=1\nL0 mov.u32 %q0, 0x1"},
		{"bad branch", ".entry k // regs=1\nL0 bra nowhere"},
		{"bad space", ".entry k // regs=1\nL0 ld.banana.u32 %r0, [%r0+0]"},
		{"bad param", ".entry k // regs=1\n.param whatsit"},
		{"bad immediate", ".entry k // regs=1\nL0 mov.u32 %r0, 0xZZ"},
		{"bar with operands", ".entry k // regs=2\nL0 bar.sync %r0"},
		{"out of range reg", ".entry k // regs=1\nL0 mov.u32 %r9, 0x1"},
	}
	for _, tc := range cases {
		if _, err := Parse(tc.text); err == nil {
			t.Errorf("%s: Parse accepted %q", tc.name, tc.text)
		}
	}
}

func TestParseAcceptsWhitespaceAndMeta(t *testing.T) {
	text := `
.entry tiny  // toolchain=opencl regs=3 shared=0B local=0B
  .param ptr.global out
  .param u32 n

L0    ld.const.u32 %r0, [%r-1+4]
L1    add.u32 %r1, %r0, 0x7
L2    ret
`
	k, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if k.Toolchain != "opencl" || len(k.Instrs) != 3 || len(k.Params) != 2 {
		t.Errorf("parsed kernel wrong: %+v", k)
	}
	if !strings.Contains(k.Disassemble(), "ld.const.u32") {
		t.Error("const load lost")
	}
}

// FuzzParse ensures the parser never panics on arbitrary input, and that
// anything it accepts reaches the format -> parse -> format fixpoint: the
// first disassembly must parse back to a structurally identical kernel
// whose own disassembly is byte-for-byte the same text.
func FuzzParse(f *testing.F) {
	f.Add(roundTripKernel().Disassemble())
	f.Add(".entry k // regs=4\nL0 add.u32 %r0, %r1, 0x2\nL1 ret")
	f.Add(".entry x // regs=2\n.param u32 n\nL0 bra L1, J1\nL1 ret")
	f.Add(".entry f // toolchain=cuda regs=3 shared=128B local=0B\n" +
		".param ptr.global out\n.param ptr.const coef\n.param f32 alpha\n" +
		"L0 ld.shared.f32 %r0, [%r1+8]\nL1 fma.f32 %r2, %r0, %r0, %r0\nL2 ret")
	f.Add(".entry g // regs=2\nL0 setp.lt.s32 %p1, %r0, 0x10\n" +
		"L1 @%p1 st.global.u32 [%r0+0], %r1\nL2 bar.sync\nL3 ret")
	f.Add(".entry h // regs=8\nL0 atom.shared.max.u32 %r3, [%r1+4], %r2\n" +
		"L1 cvt.f32.s32 %r4, %r3\nL2 rsqrt.f32 %r5, %r4\nL3 ret")
	f.Fuzz(func(t *testing.T, text string) {
		k, err := Parse(text)
		if err != nil {
			return
		}
		first := k.Disassemble()
		again, err := Parse(first)
		if err != nil {
			t.Fatalf("accepted kernel failed round trip: %v\n%s", err, first)
		}
		second := again.Disassemble()
		if first != second {
			t.Fatalf("disassembly is not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s",
				first, second)
		}
		if again.Name != k.Name || again.Toolchain != k.Toolchain ||
			again.NumRegs != k.NumRegs || again.SharedBytes != k.SharedBytes ||
			again.LocalBytes != k.LocalBytes {
			t.Fatalf("round trip changed header: %+v vs %+v", again, k)
		}
		if len(again.Params) != len(k.Params) {
			t.Fatalf("round trip changed param count: %d vs %d", len(again.Params), len(k.Params))
		}
		for i := range k.Params {
			if again.Params[i] != k.Params[i] {
				t.Fatalf("round trip changed param %d: %+v vs %+v", i, again.Params[i], k.Params[i])
			}
		}
		if len(again.Instrs) != len(k.Instrs) {
			t.Fatalf("round trip changed instruction count")
		}
		for i := range k.Instrs {
			if again.Instrs[i] != k.Instrs[i] {
				t.Fatalf("round trip changed instr %d: %+v vs %+v", i, again.Instrs[i], k.Instrs[i])
			}
		}
	})
}
