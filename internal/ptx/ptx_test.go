package ptx

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestClassOfCoversAllOpcodes(t *testing.T) {
	for op := OpInvalid + 1; op < numOpcodes; op++ {
		c := ClassOf(op)
		if c < 0 || c >= NumClasses {
			t.Errorf("ClassOf(%v) = %v out of range", op, c)
		}
	}
}

func TestClassOfMatchesTableVGrouping(t *testing.T) {
	cases := map[Opcode]Class{
		OpAdd: ClassArithmetic, OpSub: ClassArithmetic, OpMul: ClassArithmetic,
		OpDiv: ClassArithmetic, OpFma: ClassArithmetic, OpMad: ClassArithmetic,
		OpNeg: ClassArithmetic,
		OpAnd: ClassLogicShift, OpOr: ClassLogicShift, OpNot: ClassLogicShift,
		OpXor: ClassLogicShift, OpShl: ClassLogicShift, OpShr: ClassLogicShift,
		OpCvt: ClassDataMovement, OpMov: ClassDataMovement,
		OpLd: ClassDataMovement, OpSt: ClassDataMovement, OpTex: ClassDataMovement,
		OpSetp: ClassFlowControl, OpSelp: ClassFlowControl, OpBra: ClassFlowControl,
		OpBar: ClassSync,
	}
	for op, want := range cases {
		if got := ClassOf(op); got != want {
			t.Errorf("ClassOf(%v) = %v, want %v", op, got, want)
		}
	}
}

func TestMnemonics(t *testing.T) {
	ld := NewInstruction(OpLd)
	ld.Space = SpaceGlobal
	ld.Typ = F32
	if got := ld.Mnemonic(); got != "ld.global.f32" {
		t.Errorf("mnemonic = %q", got)
	}
	st := NewInstruction(OpSt)
	st.Space = SpaceShared
	st.Typ = U32
	if got := st.Mnemonic(); got != "st.shared.u32" {
		t.Errorf("mnemonic = %q", got)
	}
	bar := NewInstruction(OpBar)
	if got := bar.Mnemonic(); got != "bar.sync" {
		t.Errorf("mnemonic = %q", got)
	}
	setp := NewInstruction(OpSetp)
	setp.Cmp = CmpLT
	setp.Typ = S32
	if got := setp.Mnemonic(); got != "setp.lt.s32" {
		t.Errorf("mnemonic = %q", got)
	}
	atom := NewInstruction(OpAtom)
	atom.Space = SpaceGlobal
	atom.Atom = AtomAdd
	atom.Typ = U32
	if got := atom.Mnemonic(); got != "atom.global.add.u32" {
		t.Errorf("mnemonic = %q", got)
	}
}

func TestInstructionStringGuard(t *testing.T) {
	in := NewInstruction(OpBra)
	in.Target = 7
	in.GuardPred = 3
	in.GuardNeg = true
	s := in.String()
	if !strings.HasPrefix(s, "@!%p3 ") || !strings.Contains(s, "L7") {
		t.Errorf("guarded branch rendered as %q", s)
	}
}

func buildTestKernel() *Kernel {
	k := &Kernel{Name: "k", Toolchain: "cuda", NumRegs: 8}
	add := NewInstruction(OpAdd)
	add.Typ = U32
	add.Dst = 0
	add.Src[0] = R(1)
	add.Src[1] = ImmU(4)
	ld := NewInstruction(OpLd)
	ld.Space = SpaceGlobal
	ld.Typ = F32
	ld.Dst = 2
	ld.Src[0] = R(0)
	bra := NewInstruction(OpBra)
	bra.Target = 0
	bra.Join = 3
	k.Instrs = []Instruction{add, ld, bra}
	return k
}

func TestKernelValidate(t *testing.T) {
	k := buildTestKernel()
	if err := k.Validate(); err != nil {
		t.Fatalf("valid kernel rejected: %v", err)
	}
	bad := buildTestKernel()
	bad.Instrs[0].Dst = 100
	if bad.Validate() == nil {
		t.Error("out-of-range dst accepted")
	}
	bad2 := buildTestKernel()
	bad2.Instrs[2].Target = 99
	if bad2.Validate() == nil {
		t.Error("out-of-range branch target accepted")
	}
	bad3 := buildTestKernel()
	bad3.Instrs[1].Src[0] = R(-2)
	if bad3.Validate() == nil {
		t.Error("negative src register accepted")
	}
}

func TestStaticStats(t *testing.T) {
	k := buildTestKernel()
	s := k.StaticStats()
	if s.Total != 3 {
		t.Fatalf("total = %d, want 3", s.Total)
	}
	if s.Get(OpAdd, SpaceNone) != 1 || s.Get(OpLd, SpaceGlobal) != 1 || s.Get(OpBra, SpaceNone) != 1 {
		t.Errorf("per-op counts wrong: %+v", s.ByOp)
	}
	if s.Class(ClassArithmetic) != 1 || s.Class(ClassDataMovement) != 1 || s.Class(ClassFlowControl) != 1 {
		t.Errorf("class counts wrong: %+v", s.ByClass)
	}
}

func TestStatsMergePreservesTotals(t *testing.T) {
	// Property: merging two stats objects yields class counts equal to the
	// sum, and total equal to the sum of totals, for arbitrary op mixes.
	f := func(adds, lds, bars uint8) bool {
		a, b := NewStats(), NewStats()
		add := NewInstruction(OpAdd)
		ld := NewInstruction(OpLd)
		ld.Space = SpaceGlobal
		bar := NewInstruction(OpBar)
		a.Count(&add, int64(adds))
		b.Count(&ld, int64(lds))
		b.Count(&bar, int64(bars))
		a.Merge(b)
		return a.Total == int64(adds)+int64(lds)+int64(bars) &&
			a.Class(ClassArithmetic) == int64(adds) &&
			a.Class(ClassDataMovement) == int64(lds) &&
			a.Class(ClassSync) == int64(bars)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRowsSortedByClass(t *testing.T) {
	s := NewStats()
	bar := NewInstruction(OpBar)
	add := NewInstruction(OpAdd)
	shl := NewInstruction(OpShl)
	s.Count(&bar, 1)
	s.Count(&add, 2)
	s.Count(&shl, 3)
	rows := s.Rows()
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	if rows[0].Key.Op != OpAdd || rows[1].Key.Op != OpShl || rows[2].Key.Op != OpBar {
		t.Errorf("rows out of class order: %v", rows)
	}
}

func TestCompareTableLayout(t *testing.T) {
	a, b := NewStats(), NewStats()
	add := NewInstruction(OpAdd)
	a.Count(&add, 93)
	b.Count(&add, 191)
	out := CompareTable("CUDA", a, "OpenCL", b)
	for _, want := range []string{"Arithmetic", "add", "93", "191", "SUB-TOTAL", "TOTAL"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestModuleLookup(t *testing.T) {
	m := NewModule("fft")
	m.Add(buildTestKernel())
	if _, err := m.Kernel("k"); err != nil {
		t.Errorf("lookup failed: %v", err)
	}
	if _, err := m.Kernel("nope"); err == nil {
		t.Error("missing kernel lookup should fail")
	}
}

func TestDisassembleContainsHeaderAndParams(t *testing.T) {
	k := buildTestKernel()
	k.Params = []Param{{Name: "out", Pointer: true, Space: SpaceGlobal}, {Name: "n", Type: U32}}
	text := k.Disassemble()
	for _, want := range []string{".entry k", "toolchain=cuda", ".param ptr.global out", ".param u32 n", "ld.global.f32"} {
		if !strings.Contains(text, want) {
			t.Errorf("disassembly missing %q:\n%s", want, text)
		}
	}
}

func TestOperandString(t *testing.T) {
	if got := ImmU(16).String(); got != "0x10" {
		t.Errorf("imm operand = %q", got)
	}
	if got := R(5).String(); false {
		_ = got
	}
	if got := (Operand{Reg: 5}).String(); got != "%r5" {
		t.Errorf("reg operand = %q", got)
	}
}
