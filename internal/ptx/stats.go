package ptx

import (
	"fmt"
	"sort"
	"strings"
)

// OpKey identifies a Table V row: an opcode, split by state space for loads
// and stores (ld.global and st.shared are separate rows in the paper).
type OpKey struct {
	Op    Opcode
	Space Space
}

// String returns the row label ("ld.global", "add", ...).
func (k OpKey) String() string {
	if k.Op == OpLd || k.Op == OpSt || k.Op == OpAtom {
		return k.Op.String() + "." + k.Space.String()
	}
	return k.Op.String()
}

// Stats accumulates instruction counts per row and per Table V class. It is
// used both statically (counting a kernel's instructions once each) and
// dynamically (counting executed warp-instructions during simulation).
type Stats struct {
	ByOp    map[OpKey]int64
	ByClass [NumClasses]int64
	Total   int64
}

// NewStats returns an empty counter.
func NewStats() *Stats { return &Stats{ByOp: make(map[OpKey]int64)} }

// Count adds n occurrences of the instruction.
func (s *Stats) Count(in *Instruction, n int64) {
	key := OpKey{Op: in.Op}
	switch in.Op {
	case OpLd, OpSt, OpAtom:
		key.Space = in.Space
	}
	s.ByOp[key] += n
	s.ByClass[ClassOf(in.Op)] += n
	s.Total += n
}

// Merge adds other's counts into s.
func (s *Stats) Merge(other *Stats) {
	for k, v := range other.ByOp {
		s.ByOp[k] += v
	}
	for c := range other.ByClass {
		s.ByClass[c] += other.ByClass[c]
	}
	s.Total += other.Total
}

// Get returns the count for an opcode row (space only meaningful for ld/st).
func (s *Stats) Get(op Opcode, space Space) int64 {
	key := OpKey{Op: op}
	switch op {
	case OpLd, OpSt, OpAtom:
		key.Space = space
	}
	return s.ByOp[key]
}

// Class returns the count of one Table V class.
func (s *Stats) Class(c Class) int64 { return s.ByClass[c] }

// Rows returns the populated rows sorted by class then label, convenient
// for rendering a Table V-style report.
func (s *Stats) Rows() []StatRow {
	rows := make([]StatRow, 0, len(s.ByOp))
	for k, v := range s.ByOp {
		rows = append(rows, StatRow{Key: k, Class: ClassOf(k.Op), Count: v})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Class != rows[j].Class {
			return rows[i].Class < rows[j].Class
		}
		return rows[i].Key.String() < rows[j].Key.String()
	})
	return rows
}

// StatRow is one row of a rendered statistics table.
type StatRow struct {
	Key   OpKey
	Class Class
	Count int64
}

// CompareTable renders two Stats side by side in the layout of the paper's
// Table V ("Statistic for PTX instructions"), with per-class sub-totals.
func CompareTable(leftName string, left *Stats, rightName string, right *Stats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %-14s %10s %10s\n", "Class", "Instruction", leftName, rightName)

	// Union of keys, grouped by class.
	keys := make(map[OpKey]bool)
	for k := range left.ByOp {
		keys[k] = true
	}
	for k := range right.ByOp {
		keys[k] = true
	}
	byClass := make(map[Class][]OpKey)
	for k := range keys {
		c := ClassOf(k.Op)
		byClass[c] = append(byClass[c], k)
	}
	for c := Class(0); c < NumClasses; c++ {
		ks := byClass[c]
		sort.Slice(ks, func(i, j int) bool { return ks[i].String() < ks[j].String() })
		for i, k := range ks {
			label := ""
			if i == 0 {
				label = c.String()
			}
			fmt.Fprintf(&b, "%-16s %-14s %10d %10d\n", label, k.String(), left.ByOp[k], right.ByOp[k])
		}
		if len(ks) > 0 {
			fmt.Fprintf(&b, "%-16s %-14s %10d %10d\n", "", "SUB-TOTAL", left.ByClass[c], right.ByClass[c])
		}
	}
	fmt.Fprintf(&b, "%-16s %-14s %10d %10d\n", "", "TOTAL", left.Total, right.Total)
	return b.String()
}
