// Package ptx defines the PTX-like virtual instruction set the simulator
// executes. It mirrors the subset of NVIDIA's PTX ISA that the paper's
// Table V accounts for: arithmetic, logic/shift, data movement (including
// loads and stores qualified by memory space), flow control, and
// synchronization. Kernels in this ISA are produced by the two front-ends
// in internal/compiler from a shared kernel IR, interpreted functionally by
// internal/sim, and statically/dynamically counted to regenerate Table V.
package ptx

import "fmt"

// Opcode enumerates the virtual ISA.
type Opcode int

const (
	OpInvalid Opcode = iota

	// Arithmetic.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpFma
	OpMad
	OpNeg
	OpAbs
	OpMin
	OpMax
	OpSqrt
	OpRsqrt
	OpSin
	OpCos
	OpEx2
	OpLg2

	// Logic and shift.
	OpAnd
	OpOr
	OpNot
	OpXor
	OpShl
	OpShr

	// Data movement.
	OpMov
	OpCvt
	OpLd
	OpSt
	OpTex // texture fetch: a global read through the texture cache path

	// Flow control.
	OpSetp
	OpSelp
	OpBra
	OpRet

	// Synchronization and atomics.
	OpBar
	OpAtom

	numOpcodes
)

var opNames = [...]string{
	OpInvalid: "invalid",
	OpAdd:     "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpFma: "fma", OpMad: "mad", OpNeg: "neg", OpAbs: "abs",
	OpMin: "min", OpMax: "max", OpSqrt: "sqrt", OpRsqrt: "rsqrt",
	OpSin: "sin", OpCos: "cos", OpEx2: "ex2", OpLg2: "lg2",
	OpAnd: "and", OpOr: "or", OpNot: "not", OpXor: "xor",
	OpShl: "shl", OpShr: "shr",
	OpMov: "mov", OpCvt: "cvt", OpLd: "ld", OpSt: "st", OpTex: "tex",
	OpSetp: "setp", OpSelp: "selp", OpBra: "bra", OpRet: "ret",
	OpBar: "bar", OpAtom: "atom",
}

// String returns the PTX mnemonic.
func (o Opcode) String() string {
	if o > OpInvalid && int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Class is the Table V instruction category.
type Class int

const (
	// ClassArithmetic covers add/sub/mul/div/fma/mad/neg and the
	// transcendental helpers.
	ClassArithmetic Class = iota
	// ClassLogicShift covers and/or/not/xor/shl/shr.
	ClassLogicShift
	// ClassDataMovement covers cvt/mov and every load/store variant.
	ClassDataMovement
	// ClassFlowControl covers setp/selp/bra/ret.
	ClassFlowControl
	// ClassSync covers bar and atomics.
	ClassSync

	NumClasses
)

// String returns the Table V row-group name.
func (c Class) String() string {
	switch c {
	case ClassArithmetic:
		return "Arithmetic"
	case ClassLogicShift:
		return "Logic/Shift"
	case ClassDataMovement:
		return "Data Movement"
	case ClassFlowControl:
		return "Flow Control"
	case ClassSync:
		return "Synchronization"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// ClassOf maps an opcode onto its Table V category.
func ClassOf(op Opcode) Class {
	switch op {
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpFma, OpMad, OpNeg, OpAbs,
		OpMin, OpMax, OpSqrt, OpRsqrt, OpSin, OpCos, OpEx2, OpLg2:
		return ClassArithmetic
	case OpAnd, OpOr, OpNot, OpXor, OpShl, OpShr:
		return ClassLogicShift
	case OpMov, OpCvt, OpLd, OpSt, OpTex:
		return ClassDataMovement
	case OpSetp, OpSelp, OpBra, OpRet:
		return ClassFlowControl
	case OpBar, OpAtom:
		return ClassSync
	default:
		return ClassDataMovement
	}
}

// CmpOp is the comparison operator carried by setp.
type CmpOp int

const (
	CmpEQ CmpOp = iota
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

// String returns the PTX comparison suffix.
func (c CmpOp) String() string {
	switch c {
	case CmpEQ:
		return "eq"
	case CmpNE:
		return "ne"
	case CmpLT:
		return "lt"
	case CmpLE:
		return "le"
	case CmpGT:
		return "gt"
	case CmpGE:
		return "ge"
	default:
		return fmt.Sprintf("cmp(%d)", int(c))
	}
}

// AtomOp is the read-modify-write operation carried by atom.
type AtomOp int

const (
	AtomAdd AtomOp = iota
	AtomOr
	AtomAnd
	AtomMax
	AtomMin
	AtomExch
	AtomCAS
)

// String returns the PTX atom suffix.
func (a AtomOp) String() string {
	switch a {
	case AtomAdd:
		return "add"
	case AtomOr:
		return "or"
	case AtomAnd:
		return "and"
	case AtomMax:
		return "max"
	case AtomMin:
		return "min"
	case AtomExch:
		return "exch"
	case AtomCAS:
		return "cas"
	default:
		return fmt.Sprintf("atom(%d)", int(a))
	}
}
