package mem

// Cache is a direct-mapped cache model used for the texture cache, the
// constant cache, and the Fermi L1/L2 hierarchy. Only tags are tracked —
// data always comes from backing memory — because the model only needs hit
// and miss counts.
type Cache struct {
	lineBytes uint32
	sets      uint32
	tags      []uint32
	valid     []bool

	Hits   int64
	Misses int64
}

// NewCache builds a cache of sizeBytes capacity with lineBytes lines.
func NewCache(sizeBytes, lineBytes uint32) *Cache {
	if lineBytes == 0 {
		lineBytes = 64
	}
	sets := sizeBytes / lineBytes
	if sets == 0 {
		sets = 1
	}
	return &Cache{
		lineBytes: lineBytes,
		sets:      sets,
		tags:      make([]uint32, sets),
		valid:     make([]bool, sets),
	}
}

// LineBytes returns the line size.
func (c *Cache) LineBytes() uint32 { return c.lineBytes }

// Access looks up the byte address, fills the line on miss, and reports
// whether it hit.
func (c *Cache) Access(addr uint32) bool {
	line := addr / c.lineBytes
	set := line % c.sets
	if c.valid[set] && c.tags[set] == line {
		c.Hits++
		return true
	}
	c.valid[set] = true
	c.tags[set] = line
	c.Misses++
	return false
}

// Invalidate clears all lines (used between kernel launches for caches
// that are not coherent with global stores, like the texture cache).
func (c *Cache) Invalidate() {
	for i := range c.valid {
		c.valid[i] = false
	}
}

// HitRate returns hits/(hits+misses), or 0 with no accesses.
func (c *Cache) HitRate() float64 {
	t := c.Hits + c.Misses
	if t == 0 {
		return 0
	}
	return float64(c.Hits) / float64(t)
}
