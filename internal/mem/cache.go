package mem

import "math/bits"

// Cache is a direct-mapped cache model used for the texture cache, the
// constant cache, and the Fermi L1/L2 hierarchy. Only tags are tracked —
// data always comes from backing memory — because the model only needs hit
// and miss counts.
type Cache struct {
	lineBytes uint32
	sets      uint32

	// lineShift/setMask replace the division and modulo in Access when the
	// line size and set count are powers of two (they are for every modelled
	// cache except the per-unit L2 slice); lineShift < 0 disables them.
	lineShift int8
	setPow2   bool

	tags  []uint32
	valid []bool

	Hits   int64
	Misses int64
}

// NewCache builds a cache of sizeBytes capacity with lineBytes lines.
func NewCache(sizeBytes, lineBytes uint32) *Cache {
	if lineBytes == 0 {
		lineBytes = 64
	}
	sets := sizeBytes / lineBytes
	if sets == 0 {
		sets = 1
	}
	c := &Cache{
		lineBytes: lineBytes,
		sets:      sets,
		lineShift: -1,
		tags:      make([]uint32, sets),
		valid:     make([]bool, sets),
	}
	if lineBytes&(lineBytes-1) == 0 {
		c.lineShift = int8(bits.TrailingZeros32(lineBytes))
	}
	c.setPow2 = sets&(sets-1) == 0
	return c
}

// LineBytes returns the line size.
func (c *Cache) LineBytes() uint32 { return c.lineBytes }

// Access looks up the byte address, fills the line on miss, and reports
// whether it hit.
func (c *Cache) Access(addr uint32) bool {
	var line uint32
	if c.lineShift >= 0 {
		line = addr >> uint(c.lineShift)
	} else {
		line = addr / c.lineBytes
	}
	var set uint32
	if c.setPow2 {
		set = line & (c.sets - 1)
	} else {
		set = line % c.sets
	}
	if c.valid[set] && c.tags[set] == line {
		c.Hits++
		return true
	}
	c.valid[set] = true
	c.tags[set] = line
	c.Misses++
	return false
}

// Invalidate clears all lines (used between kernel launches for caches
// that are not coherent with global stores, like the texture cache).
func (c *Cache) Invalidate() {
	for i := range c.valid {
		c.valid[i] = false
	}
}

// HitRate returns hits/(hits+misses), or 0 with no accesses.
func (c *Cache) HitRate() float64 {
	t := c.Hits + c.Misses
	if t == 0 {
		return 0
	}
	return float64(c.Hits) / float64(t)
}
