// Package mem models the device memory system: flat global memory with a
// bump allocator, the constant segment, direct-mapped caches (texture,
// constant, Fermi L1/L2), per-warp coalescing analysis, and shared-memory
// bank-conflict accounting. The SIMT engine in internal/sim routes every
// access through these mechanisms, so cache hit rates and transaction
// counts emerge from the actual access streams of each benchmark rather
// than from fixed per-benchmark constants.
package mem

import (
	"fmt"
	"sync/atomic"
)

// WordBytes is the access granularity of the model: every value is a
// 32-bit word and addresses are byte addresses aligned to 4.
const WordBytes = 4

// Memory is a flat byte-addressed global memory backed by 32-bit words.
// Concurrent access from different compute-unit goroutines is safe only on
// disjoint words or through the Atomic methods.
type Memory struct {
	words []uint32
	brk   uint32
}

// NewMemory returns a memory of the given byte capacity (rounded down to a
// whole word).
func NewMemory(bytes uint32) *Memory {
	return &Memory{words: make([]uint32, bytes/WordBytes)}
}

// Size returns the capacity in bytes.
func (m *Memory) Size() uint32 { return uint32(len(m.words)) * WordBytes }

// Alloc reserves n bytes (rounded up to words, 256-byte aligned like real
// device allocators) and returns the base byte address.
func (m *Memory) Alloc(n uint32) (uint32, error) {
	const align = 256
	base := (m.brk + align - 1) &^ uint32(align-1)
	if n > m.Size() || base > m.Size()-n {
		return 0, fmt.Errorf("mem: out of device memory (%d bytes requested, %d in use)", n, m.brk)
	}
	m.brk = base + n
	return base, nil
}

// Reset discards all allocations.
func (m *Memory) Reset() { m.brk = 0 }

// InUse returns the number of allocated bytes.
func (m *Memory) InUse() uint32 { return m.brk }

func (m *Memory) check(addr uint32) (int, error) {
	if addr%WordBytes != 0 {
		return 0, fmt.Errorf("mem: unaligned access at 0x%x", addr)
	}
	i := int(addr / WordBytes)
	if i >= len(m.words) {
		return 0, fmt.Errorf("mem: access at 0x%x beyond device memory (%d bytes)", addr, m.Size())
	}
	return i, nil
}

// Load reads the word at the byte address.
func (m *Memory) Load(addr uint32) (uint32, error) {
	i, err := m.check(addr)
	if err != nil {
		return 0, err
	}
	return m.words[i], nil
}

// Store writes the word at the byte address.
func (m *Memory) Store(addr uint32, v uint32) error {
	i, err := m.check(addr)
	if err != nil {
		return err
	}
	m.words[i] = v
	return nil
}

// Atomic applies f atomically to the word at addr and returns the old
// value. It is implemented with a CAS loop so arbitrary read-modify-write
// operations compose with concurrent compute units.
func (m *Memory) Atomic(addr uint32, f func(old uint32) uint32) (uint32, error) {
	i, err := m.check(addr)
	if err != nil {
		return 0, err
	}
	p := &m.words[i]
	for {
		old := atomic.LoadUint32(p)
		if atomic.CompareAndSwapUint32(p, old, f(old)) {
			return old, nil
		}
	}
}

// Gather loads the word at addrs[l] into dst[l] for every l, lane 0
// upward — the order (and therefore the error surfaced when several lanes
// are out of range) matches a per-lane Load loop exactly. It exists for
// the fully-active warp accesses of the block-compiled engine, where one
// bounds-checked pass replaces len(addrs) Load calls.
func (m *Memory) Gather(addrs []uint32, dst []uint32) error {
	words := m.words
	for l, a := range addrs {
		i := int(a / WordBytes)
		if a%WordBytes != 0 || i >= len(words) {
			_, err := m.check(a)
			return err
		}
		dst[l] = words[i]
	}
	return nil
}

// Scatter stores src[l] to addrs[l] for every l, lane 0 upward; on lane
// collisions the highest lane wins, exactly like a per-lane Store loop.
func (m *Memory) Scatter(addrs []uint32, src []uint32) error {
	words := m.words
	for l, a := range addrs {
		i := int(a / WordBytes)
		if a%WordBytes != 0 || i >= len(words) {
			_, err := m.check(a)
			return err
		}
		words[i] = src[l]
	}
	return nil
}
func (m *Memory) WriteWords(addr uint32, src []uint32) error {
	i, err := m.check(addr)
	if err != nil {
		return err
	}
	if i+len(src) > len(m.words) {
		return fmt.Errorf("mem: write of %d words at 0x%x overruns device memory", len(src), addr)
	}
	copy(m.words[i:], src)
	return nil
}

// ReadWords copies device words into dst starting at addr.
func (m *Memory) ReadWords(addr uint32, dst []uint32) error {
	i, err := m.check(addr)
	if err != nil {
		return err
	}
	if i+len(dst) > len(m.words) {
		return fmt.Errorf("mem: read of %d words at 0x%x overruns device memory", len(dst), addr)
	}
	copy(dst, m.words[i:i+len(dst)])
	return nil
}
