package mem

import "testing"

// lanes builds a per-lane address slice: addr(lane) for lanes 0..n-1.
func lanes(n int, addr func(lane int) uint32) []uint32 {
	a := make([]uint32, n)
	for i := range a {
		a[i] = addr(i)
	}
	return a
}

func fullMask(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (1 << uint(n)) - 1
}

// TestCoalesceSegments covers the access shapes the paper's memory model
// distinguishes: unit-stride, strided, misaligned, broadcast and fully
// scattered, at both warp-32 and wavefront-64.
func TestCoalesceSegments(t *testing.T) {
	cases := []struct {
		name     string
		addrs    []uint32
		mask     uint64
		segBytes uint32
		want     int
	}{
		{"coalesced-warp32-128B", lanes(32, func(l int) uint32 { return uint32(l) * 4 }), fullMask(32), 128, 1},
		{"coalesced-warp32-64B", lanes(32, func(l int) uint32 { return uint32(l) * 4 }), fullMask(32), 64, 2},
		{"coalesced-wave64-128B", lanes(64, func(l int) uint32 { return uint32(l) * 4 }), fullMask(64), 128, 2},
		{"coalesced-wave64-64B", lanes(64, func(l int) uint32 { return uint32(l) * 4 }), fullMask(64), 64, 4},
		// Stride 2 words: the warp spans twice the bytes, twice the segments.
		{"stride2-warp32", lanes(32, func(l int) uint32 { return uint32(l) * 8 }), fullMask(32), 128, 2},
		{"stride2-wave64", lanes(64, func(l int) uint32 { return uint32(l) * 8 }), fullMask(64), 128, 4},
		// Stride >= segment size: every lane its own segment.
		{"stride-seg-warp32", lanes(32, func(l int) uint32 { return uint32(l) * 128 }), fullMask(32), 128, 32},
		{"stride-seg-wave64", lanes(64, func(l int) uint32 { return uint32(l) * 128 }), fullMask(64), 128, 64},
		// Misaligned unit stride: straddles one extra segment boundary.
		{"misaligned-warp32", lanes(32, func(l int) uint32 { return 4 + uint32(l)*4 }), fullMask(32), 128, 2},
		{"misaligned-wave64", lanes(64, func(l int) uint32 { return 60 + uint32(l)*4 }), fullMask(64), 128, 3},
		// Broadcast: all lanes read one word -> one transaction.
		{"broadcast-warp32", lanes(32, func(l int) uint32 { return 512 }), fullMask(32), 128, 1},
		{"broadcast-wave64", lanes(64, func(l int) uint32 { return 512 }), fullMask(64), 128, 1},
		// Partially-masked warp: inactive lanes cost nothing.
		{"half-masked", lanes(32, func(l int) uint32 { return uint32(l) * 128 }), 0x0000ffff, 128, 16},
		{"single-lane", lanes(32, func(l int) uint32 { return uint32(l) * 4 }), 1 << 31, 128, 1},
		{"empty-mask", lanes(32, func(l int) uint32 { return uint32(l) * 4 }), 0, 128, 0},
		// segBytes 0 falls back to 64-byte segments.
		{"default-seg", lanes(32, func(l int) uint32 { return uint32(l) * 4 }), fullMask(32), 0, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := CoalesceSegments(tc.addrs, tc.mask, tc.segBytes); got != tc.want {
				t.Errorf("CoalesceSegments = %d, want %d", got, tc.want)
			}
			// CoalesceList must agree on the count and return distinct,
			// segment-aligned bases.
			out := make([]uint32, len(tc.addrs))
			n := CoalesceList(tc.addrs, tc.mask, tc.segBytes, out)
			if n != tc.want {
				t.Errorf("CoalesceList = %d, want %d", n, tc.want)
			}
			seg := tc.segBytes
			if seg == 0 {
				seg = 64
			}
			seen := map[uint32]bool{}
			for i := 0; i < n; i++ {
				if out[i]%seg != 0 {
					t.Errorf("base %#x not aligned to %d", out[i], seg)
				}
				if seen[out[i]] {
					t.Errorf("duplicate base %#x", out[i])
				}
				seen[out[i]] = true
			}
		})
	}
}

// TestDistinctAddrs: the constant-cache serialization factor is the number
// of distinct words requested, regardless of their spread.
func TestDistinctAddrs(t *testing.T) {
	cases := []struct {
		name  string
		addrs []uint32
		mask  uint64
		want  int
	}{
		{"broadcast-warp32", lanes(32, func(l int) uint32 { return 64 }), fullMask(32), 1},
		{"broadcast-wave64", lanes(64, func(l int) uint32 { return 64 }), fullMask(64), 1},
		{"all-distinct-warp32", lanes(32, func(l int) uint32 { return uint32(l) * 4 }), fullMask(32), 32},
		{"all-distinct-wave64", lanes(64, func(l int) uint32 { return uint32(l) * 4 }), fullMask(64), 64},
		{"pairwise", lanes(32, func(l int) uint32 { return uint32(l/2) * 4 }), fullMask(32), 16},
		{"masked-distinct", lanes(32, func(l int) uint32 { return uint32(l) * 4 }), 0x000000ff, 8},
		{"empty", lanes(32, func(l int) uint32 { return uint32(l) * 4 }), 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := DistinctAddrs(tc.addrs, tc.mask); got != tc.want {
				t.Errorf("DistinctAddrs = %d, want %d", got, tc.want)
			}
		})
	}
}

// TestBankConflictFactor covers the classic shared-memory patterns:
// conflict-free unit stride, 2-way and full conflicts from power-of-two
// strides, broadcast (same address never conflicts), and the 16-bank
// half-warp geometry of the GTX 280 generation next to 32 banks.
func TestBankConflictFactor(t *testing.T) {
	cases := []struct {
		name  string
		addrs []uint32
		mask  uint64
		banks int
		want  int
	}{
		{"unit-stride-32banks", lanes(32, func(l int) uint32 { return uint32(l) * 4 }), fullMask(32), 32, 1},
		{"unit-stride-16banks", lanes(32, func(l int) uint32 { return uint32(l) * 4 }), fullMask(32), 16, 2},
		{"stride2-32banks", lanes(32, func(l int) uint32 { return uint32(l) * 8 }), fullMask(32), 32, 2},
		{"stride16-32banks", lanes(32, func(l int) uint32 { return uint32(l) * 64 }), fullMask(32), 32, 16},
		{"stride32-32banks", lanes(32, func(l int) uint32 { return uint32(l) * 128 }), fullMask(32), 32, 32},
		{"broadcast", lanes(32, func(l int) uint32 { return 4 }), fullMask(32), 32, 1},
		// Same bank, same address -> broadcast; same bank, different
		// address -> serialized. Lanes 0/1 read word 0, lanes 2/3 word 32
		// (bank 0 again with 32 banks): factor 2, not 4.
		{"broadcast-plus-conflict", []uint32{0, 0, 128, 128}, fullMask(4), 32, 2},
		{"wave64-unit-stride-32banks", lanes(64, func(l int) uint32 { return uint32(l) * 4 }), fullMask(64), 32, 2},
		{"masked-no-conflict", lanes(32, func(l int) uint32 { return uint32(l) * 64 }), 0x3, 32, 1},
		{"single-bank-arg", lanes(32, func(l int) uint32 { return uint32(l) * 4 }), fullMask(32), 1, 1},
		{"empty-mask", lanes(32, func(l int) uint32 { return uint32(l) * 4 }), 0, 32, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := BankConflictFactor(tc.addrs, tc.mask, tc.banks); got != tc.want {
				t.Errorf("BankConflictFactor = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestActiveLanes(t *testing.T) {
	cases := []struct {
		mask uint64
		want int
	}{
		{0, 0},
		{1, 1},
		{fullMask(32), 32},
		{^uint64(0), 64},
		{0xaaaaaaaaaaaaaaaa, 32},
	}
	for _, tc := range cases {
		if got := ActiveLanes(tc.mask); got != tc.want {
			t.Errorf("ActiveLanes(%#x) = %d, want %d", tc.mask, got, tc.want)
		}
	}
}
