package mem

import "math/bits"

// CoalesceSegments returns the number of distinct memory segments of
// segBytes touched by the active lanes of one warp access — the number of
// global-memory transactions the access costs. Perfectly coalesced
// accesses by a 32-lane warp of 4-byte words with 128-byte segments cost
// one transaction; fully scattered accesses cost one per lane.
func CoalesceSegments(addrs []uint32, mask uint64, segBytes uint32) int {
	if segBytes == 0 {
		segBytes = 64
	}
	// Warps have at most 64 lanes; a tiny linear set dedup is faster than
	// a map at this scale.
	var segs [64]uint32
	n := 0
	for lane := 0; lane < len(addrs); lane++ {
		if mask&(1<<uint(lane)) == 0 {
			continue
		}
		s := addrs[lane] / segBytes
		found := false
		for i := 0; i < n; i++ {
			if segs[i] == s {
				found = true
				break
			}
		}
		if !found {
			segs[n] = s
			n++
		}
	}
	return n
}

// CoalesceList writes the distinct segment base addresses touched by the
// active lanes into out and returns how many there are. out must have room
// for one entry per lane.
func CoalesceList(addrs []uint32, mask uint64, segBytes uint32, out []uint32) int {
	if segBytes == 0 {
		segBytes = 64
	}
	n := 0
	for lane := 0; lane < len(addrs); lane++ {
		if mask&(1<<uint(lane)) == 0 {
			continue
		}
		s := (addrs[lane] / segBytes) * segBytes
		found := false
		for i := 0; i < n; i++ {
			if out[i] == s {
				found = true
				break
			}
		}
		if !found {
			out[n] = s
			n++
		}
	}
	return n
}

// DistinctAddrs returns the number of distinct word addresses among active
// lanes. The constant cache serves one distinct address per cycle
// (broadcast), so this is the serialization factor of a constant load.
func DistinctAddrs(addrs []uint32, mask uint64) int {
	var seen [64]uint32
	n := 0
	for lane := 0; lane < len(addrs); lane++ {
		if mask&(1<<uint(lane)) == 0 {
			continue
		}
		a := addrs[lane]
		found := false
		for i := 0; i < n; i++ {
			if seen[i] == a {
				found = true
				break
			}
		}
		if !found {
			seen[n] = a
			n++
		}
	}
	return n
}

// BankConflictFactor returns the shared-memory serialization factor of one
// warp access: the maximum number of distinct addresses mapping to the
// same bank. A conflict-free or broadcast access returns 1. banks must be
// a power of two.
func BankConflictFactor(addrs []uint32, mask uint64, banks int) int {
	if banks <= 1 {
		return 1
	}
	var addrCount [64]uint32 // distinct addresses seen
	var bankHits [64]int     // conflicts per bank
	na := 0
	maxHits := 0
	for lane := 0; lane < len(addrs); lane++ {
		if mask&(1<<uint(lane)) == 0 {
			continue
		}
		a := addrs[lane]
		dup := false
		for i := 0; i < na; i++ {
			if addrCount[i] == a {
				dup = true
				break
			}
		}
		if dup {
			continue // same-address lanes broadcast without conflict
		}
		addrCount[na] = a
		na++
		b := (a / WordBytes) % uint32(banks)
		bankHits[b]++
		if bankHits[b] > maxHits {
			maxHits = bankHits[b]
		}
	}
	if maxHits == 0 {
		return 1
	}
	return maxHits
}

// ActiveLanes counts the set bits of a lane mask.
func ActiveLanes(mask uint64) int { return bits.OnesCount64(mask) }
