package mem

import (
	"math/rand"
	"testing"
)

// randCase builds one random warp access: addresses, an active mask, and a
// segment size, drawn to cover broadcasts, strides, duplicates, descending
// runs and fully scattered patterns.
func randCase(r *rand.Rand) (addrs []uint32, mask uint64, seg uint32) {
	w := []int{1, 4, 16, 32, 64}[r.Intn(5)]
	addrs = make([]uint32, w)
	seg = []uint32{0, 4, 32, 64, 128}[r.Intn(5)]
	base := uint32(r.Intn(1 << 16) * 4)
	switch r.Intn(8) {
	case 6: // periodic row repeats (a 2-D block's row-local index)
		pl := r.Intn(w) + 1
		run := make([]uint32, pl)
		a := base
		for i := range run {
			a += uint32(r.Intn(3)) * 4
			run[i] = a
		}
		for i := range addrs {
			addrs[i] = run[i%pl]
		}
	case 7: // near-periodic with one corrupted element
		pl := r.Intn(w)/2 + 1
		for i := range addrs {
			addrs[i] = base + uint32(i%pl)*4
		}
		addrs[r.Intn(w)] = base + uint32(r.Intn(4*w))*4
	case 0: // broadcast
		for i := range addrs {
			addrs[i] = base
		}
	case 1: // stride-1 words
		for i := range addrs {
			addrs[i] = base + uint32(i)*4
		}
	case 2: // stride-k
		k := uint32(r.Intn(8)+1) * 4
		for i := range addrs {
			addrs[i] = base + uint32(i)*k
		}
	case 3: // descending
		for i := range addrs {
			addrs[i] = base + uint32(w-i)*4
		}
	case 4: // scattered
		for i := range addrs {
			addrs[i] = uint32(r.Intn(1<<18)) * 4
		}
	default: // runs with duplicates
		a := base
		for i := range addrs {
			if r.Intn(3) == 0 {
				a += uint32(r.Intn(3)) * 4
			}
			addrs[i] = a
		}
	}
	switch r.Intn(3) {
	case 0:
		mask = ^uint64(0) >> uint(64-w)
	case 1:
		mask = r.Uint64() & (^uint64(0) >> uint(64-w))
	default:
		mask = 0
	}
	return addrs, mask, seg
}

// TestFastVariantsMatchReference pins the *Fast classification routines to
// the exact reference behaviour over a large random sample: same counts,
// and for the segment list the same contents in the same order (the cache
// models replay that list, so order is observable).
func TestFastVariantsMatchReference(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		addrs, mask, seg := randCase(r)

		var refList, fastList [64]uint32
		nr := CoalesceList(addrs, mask, seg, refList[:])
		nf := CoalesceListFast(addrs, mask, seg, fastList[:])
		if nr != nf {
			t.Fatalf("case %d: CoalesceListFast count %d, reference %d (addrs=%v mask=%#x seg=%d)",
				i, nf, nr, addrs, mask, seg)
		}
		for j := 0; j < nr; j++ {
			if refList[j] != fastList[j] {
				t.Fatalf("case %d: segment %d: fast %#x, reference %#x (addrs=%v mask=%#x seg=%d)",
					i, j, fastList[j], refList[j], addrs, mask, seg)
			}
		}

		if got, want := CoalesceSegmentsFast(addrs, mask, seg), CoalesceSegments(addrs, mask, seg); got != want {
			t.Fatalf("case %d: CoalesceSegmentsFast %d, reference %d", i, got, want)
		}
		if got, want := DistinctAddrsFast(addrs, mask), DistinctAddrs(addrs, mask); got != want {
			t.Fatalf("case %d: DistinctAddrsFast %d, reference %d (addrs=%v mask=%#x)", i, got, want, addrs, mask)
		}
		for _, banks := range []int{1, 16, 32} {
			if got, want := BankConflictFactorFast(addrs, mask, banks), BankConflictFactor(addrs, mask, banks); got != want {
				t.Fatalf("case %d: BankConflictFactorFast(banks=%d) %d, reference %d (addrs=%v mask=%#x)",
					i, banks, got, want, addrs, mask)
			}
		}
	}
}

// TestFullVariantsMatchReference pins the mask-free *Full specialisations
// (used by the threaded engine's block-compiled memory arms, which only
// execute fully-active full-width warps) to the masked reference routines
// called with an all-lanes mask, over the same random pattern mix.
func TestFullVariantsMatchReference(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 20000; i++ {
		addrs, _, seg := randCase(r)
		full := ^uint64(0) >> uint(64-len(addrs))

		var refList, fullList [64]uint32
		nr := CoalesceList(addrs, full, seg, refList[:])
		nf := CoalesceListFull(addrs, seg, fullList[:])
		if nr != nf {
			t.Fatalf("case %d: CoalesceListFull count %d, reference %d (addrs=%v seg=%d)",
				i, nf, nr, addrs, seg)
		}
		for j := 0; j < nr; j++ {
			if refList[j] != fullList[j] {
				t.Fatalf("case %d: segment %d: full %#x, reference %#x (addrs=%v seg=%d)",
					i, j, fullList[j], refList[j], addrs, seg)
			}
		}

		if got, want := DistinctAddrsFull(addrs), DistinctAddrs(addrs, full); got != want {
			t.Fatalf("case %d: DistinctAddrsFull %d, reference %d (addrs=%v)", i, got, want, addrs)
		}
		for _, banks := range []int{1, 16, 32} {
			if got, want := BankConflictFactorFull(addrs, banks), BankConflictFactor(addrs, full, banks); got != want {
				t.Fatalf("case %d: BankConflictFactorFull(banks=%d) %d, reference %d (addrs=%v)",
					i, banks, got, want, addrs)
			}
		}
	}
}

func benchAddrs(pattern string) ([]uint32, uint64) {
	var a [32]uint32
	switch pattern {
	case "broadcast":
		for i := range a {
			a[i] = 4096
		}
	case "stride1":
		for i := range a {
			a[i] = uint32(i) * 4
		}
	default: // scattered
		r := rand.New(rand.NewSource(7))
		for i := range a {
			a[i] = uint32(r.Intn(1<<18)) * 4
		}
	}
	return a[:], (1 << 32) - 1
}

func BenchmarkCoalesceListReference(b *testing.B) {
	for _, p := range []string{"broadcast", "stride1", "scattered"} {
		addrs, mask := benchAddrs(p)
		b.Run(p, func(b *testing.B) {
			var out [64]uint32
			for i := 0; i < b.N; i++ {
				CoalesceList(addrs, mask, 128, out[:])
			}
		})
	}
}

func BenchmarkCoalesceListFast(b *testing.B) {
	for _, p := range []string{"broadcast", "stride1", "scattered"} {
		addrs, mask := benchAddrs(p)
		b.Run(p, func(b *testing.B) {
			var out [64]uint32
			for i := 0; i < b.N; i++ {
				CoalesceListFast(addrs, mask, 128, out[:])
			}
		})
	}
}

func BenchmarkBankConflictFactorFast(b *testing.B) {
	for _, p := range []string{"broadcast", "stride1", "scattered"} {
		addrs, mask := benchAddrs(p)
		b.Run(p, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				BankConflictFactorFast(addrs, mask, 16)
			}
		})
	}
}
