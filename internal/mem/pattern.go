package mem

import "math/bits"

// Batched warp-access classification. The reference coalescing routines in
// coalesce.go dedup with an O(lanes^2) linear-set scan per access; at one
// global access per handful of warp instructions that scan dominates the
// memory-system accounting. Almost every access a real kernel issues is
// either a broadcast (every lane reads the same address) or a monotone
// sweep (addresses non-decreasing in lane order: the coalesced stride-1 /
// stride-k patterns), and for those one forward pass classifies the whole
// warp. The *Fast variants below take that single pass and fall back to
// the exact reference routine for irregular patterns, so they are
// bit-identical drop-ins: same counts, and for CoalesceListFast the same
// segment list in the same first-touch order (cache models are order-
// sensitive, so the order is part of the contract).
//
// The reference routines are deliberately left untouched: they are the
// pre-optimization baseline the simulator's equivalence gate and simbench
// speedup numbers are measured against.

// dedupTable is an exact first-touch dedup for up to 64 values: a 128-slot
// open-addressed table that lives entirely on the caller's stack. At most
// 64 insertions against 128 slots keeps probe chains short, and the
// occupancy bitmap (rather than a sentinel value) makes every 32-bit value
// insertable. It is what makes the irregular-pattern path O(lanes) instead
// of the reference routines' O(lanes^2) linear-set scan, with identical
// results: the table only answers membership, so first-touch order is
// preserved.
type dedupTable struct {
	slots [128]uint32
	used  [2]uint64
}

// insert adds v and reports whether it was new.
func (t *dedupTable) insert(v uint32) bool {
	h := (v * 2654435761) >> 25 // top 7 bits: 0..127
	for {
		bit := uint64(1) << (h & 63)
		if t.used[h>>6]&bit == 0 {
			t.used[h>>6] |= bit
			t.slots[h] = v
			return true
		}
		if t.slots[h] == v {
			return false
		}
		h = (h + 1) & 127
	}
}

// CoalesceListFast is CoalesceList with a single-pass fast path for
// monotone address patterns. Output (count, contents and order of out) is
// identical to CoalesceList for every input.
func CoalesceListFast(addrs []uint32, mask uint64, segBytes uint32, out []uint32) int {
	if segBytes == 0 {
		segBytes = 64
	}
	if len(addrs) > 64 || segBytes&(segBytes-1) != 0 {
		return CoalesceList(addrs, mask, segBytes, out)
	}
	segMask := segBytes - 1 // segBytes is a power of two on every modelled device
	n := 0
	var last uint32
	for lane := 0; lane < len(addrs); lane++ {
		if mask&(1<<uint(lane)) == 0 {
			continue
		}
		s := addrs[lane] &^ segMask
		if n > 0 {
			if s == last {
				continue
			}
			if s < last {
				// Non-monotone in segment space (which implies non-monotone
				// addresses): a segment may repeat non-adjacently, which the
				// running dedup above cannot see. Redo with an exact hashed
				// first-touch dedup.
				var t dedupTable
				n = 0
				for l := 0; l < len(addrs); l++ {
					if mask&(1<<uint(l)) == 0 {
						continue
					}
					ps := addrs[l] &^ segMask
					if t.insert(ps) {
						out[n] = ps
						n++
					}
				}
				return n
			}
		}
		out[n] = s
		n++
		last = s
	}
	return n
}

// CoalesceSegmentsFast is CoalesceSegments with the same monotone fast
// path as CoalesceListFast.
func CoalesceSegmentsFast(addrs []uint32, mask uint64, segBytes uint32) int {
	if segBytes == 0 {
		segBytes = 64
	}
	if len(addrs) > 64 || segBytes&(segBytes-1) != 0 {
		return CoalesceSegments(addrs, mask, segBytes)
	}
	segShift := uint(bits.TrailingZeros32(segBytes))
	n := 0
	var last uint32
	for lane := 0; lane < len(addrs); lane++ {
		if mask&(1<<uint(lane)) == 0 {
			continue
		}
		s := addrs[lane] >> segShift
		if n > 0 {
			if s == last {
				continue
			}
			if s < last {
				var t dedupTable
				n = 0
				for l := 0; l < len(addrs); l++ {
					if mask&(1<<uint(l)) == 0 {
						continue
					}
					if t.insert(addrs[l] >> segShift) {
						n++
					}
				}
				return n
			}
		}
		n++
		last = s
	}
	return n
}

// DistinctAddrsFast is DistinctAddrs with a single-pass fast path for
// monotone (non-decreasing) address sequences; a monotone sequence can
// only repeat a value adjacently, so counting value changes is exact.
func DistinctAddrsFast(addrs []uint32, mask uint64) int {
	if len(addrs) > 64 {
		return DistinctAddrs(addrs, mask)
	}
	n := 0
	var last uint32
	for lane := 0; lane < len(addrs); lane++ {
		if mask&(1<<uint(lane)) == 0 {
			continue
		}
		a := addrs[lane]
		if n > 0 {
			if a == last {
				continue
			}
			if a < last {
				var t dedupTable
				n = 0
				for l := 0; l < len(addrs); l++ {
					if mask&(1<<uint(l)) == 0 {
						continue
					}
					if t.insert(addrs[l]) {
						n++
					}
				}
				return n
			}
		}
		n++
		last = a
	}
	return n
}

// classifyRuns collects the active addresses into buf and classifies the
// sequence in the same pass. It returns the active-lane count n and a
// prefix length p such that buf[:p] is non-decreasing and buf[i] ==
// buf[i-p] for every i in [p, n): p == n means the whole sequence is
// non-decreasing, and p == 0 flags an irregular sequence the caller must
// hand to the exact reference routine. Either way the distinct address
// set of the warp is exactly the distinct set of the non-decreasing
// prefix buf[:p].
//
// These two shapes cover essentially every shared/constant access a 2-D
// kernel issues. A warp spanning r rows of a 2-D block sees either one
// monotone sweep, or r row-offset monotone runs that chain into one
// non-decreasing sequence (row-major indexing), or r identical copies of
// the first run (a row-local index like tile[k][tx], identical for every
// row in the warp) — the periodic case.
func classifyRuns(addrs []uint32, mask uint64, buf *[64]uint32) (n, p int) {
	irregular := false
	for lane := 0; lane < len(addrs); lane++ {
		if mask&(1<<uint(lane)) == 0 {
			continue
		}
		a := addrs[lane]
		if !irregular {
			if p == 0 && n > 0 && a < buf[n-1] {
				// First descent: the only remaining exact shape is that the
				// rest repeats buf[:n] verbatim, so the period is n.
				p = n
			}
			if p > 0 && a != buf[n-p] {
				irregular = true
			}
		}
		// Keep gathering even once irregular: callers' hashed-dedup paths
		// need every active address in buf.
		buf[n] = a
		n++
	}
	if irregular {
		return n, 0
	}
	if p == 0 {
		p = n
	}
	return n, p
}

// dedupNonDecreasing removes adjacent duplicates from a non-decreasing
// slice in place and returns the distinct count — exact, because a
// non-decreasing sequence can only repeat a value adjacently.
func dedupNonDecreasing(buf []uint32) int {
	d := 0
	for i := 0; i < len(buf); i++ {
		if d == 0 || buf[i] != buf[d-1] {
			buf[d] = buf[i]
			d++
		}
	}
	return d
}

// Full-mask variants. The block-compiled segments of the threaded engine
// (internal/sim/compile.go) only execute when every lane of a full-width
// warp is active, so their memory arms classify with these specialisations:
// the same single pass as the *Fast routines but without the per-lane mask
// test and branch. Each is bit-identical to its masked sibling called with
// a mask covering all len(addrs) lanes.

// classifyRunsFull is classifyRuns for a fully-active warp.
func classifyRunsFull(addrs []uint32, buf *[64]uint32) (n, p int) {
	irregular := false
	for _, a := range addrs {
		if !irregular {
			if p == 0 && n > 0 && a < buf[n-1] {
				p = n
			}
			if p > 0 && a != buf[n-p] {
				irregular = true
			}
		}
		buf[n] = a
		n++
	}
	if irregular {
		return n, 0
	}
	if p == 0 {
		p = n
	}
	return n, p
}

// BankConflictFactorFull is BankConflictFactorFast for a fully-active warp.
func BankConflictFactorFull(addrs []uint32, banks int) int {
	if banks <= 1 {
		return 1
	}
	if len(addrs) > 64 || banks > 64 {
		return BankConflictFactor(addrs, ^uint64(0)>>(64-uint(len(addrs))), banks)
	}
	var buf [64]uint32
	n, p := classifyRunsFull(addrs, &buf)
	if n == 0 {
		return 1
	}
	var hits [64]uint8
	max := uint8(0)
	count := func(a uint32) {
		b := (a / WordBytes) % uint32(banks)
		hits[b]++
		if hits[b] > max {
			max = hits[b]
		}
	}
	if p > 0 {
		d := dedupNonDecreasing(buf[:p])
		for i := 0; i < d; i++ {
			count(buf[i])
		}
	} else {
		var t dedupTable
		for i := 0; i < n; i++ {
			if t.insert(buf[i]) {
				count(buf[i])
			}
		}
	}
	if max <= 1 {
		return 1
	}
	return int(max)
}

// CoalesceListFull is CoalesceListFast for a fully-active warp.
func CoalesceListFull(addrs []uint32, segBytes uint32, out []uint32) int {
	if segBytes == 0 {
		segBytes = 64
	}
	if len(addrs) > 64 || segBytes&(segBytes-1) != 0 {
		return CoalesceList(addrs, ^uint64(0)>>(64-uint(len(addrs))), segBytes, out)
	}
	segMask := segBytes - 1
	n := 0
	var last uint32
	for lane := 0; lane < len(addrs); lane++ {
		s := addrs[lane] &^ segMask
		if n > 0 {
			if s == last {
				continue
			}
			if s < last {
				var t dedupTable
				n = 0
				for _, a := range addrs {
					ps := a &^ segMask
					if t.insert(ps) {
						out[n] = ps
						n++
					}
				}
				return n
			}
		}
		out[n] = s
		n++
		last = s
	}
	return n
}

// DistinctAddrsFull is DistinctAddrsFast for a fully-active warp.
func DistinctAddrsFull(addrs []uint32) int {
	if len(addrs) > 64 {
		return DistinctAddrs(addrs, ^uint64(0))
	}
	n := 0
	var last uint32
	for lane := 0; lane < len(addrs); lane++ {
		a := addrs[lane]
		if n > 0 {
			if a == last {
				continue
			}
			if a < last {
				var t dedupTable
				n = 0
				for _, v := range addrs {
					if t.insert(v) {
						n++
					}
				}
				return n
			}
		}
		n++
		last = a
	}
	return n
}

// BankConflictFactorFast is BankConflictFactor with a single-pass exact
// computation for the overwhelmingly common shared-memory shapes —
// broadcasts, non-decreasing sweeps and periodic row repeats (see
// classifyRuns) — and a hashed-dedup path for irregular gathers. The
// result is identical to the reference for every input.
func BankConflictFactorFast(addrs []uint32, mask uint64, banks int) int {
	if banks <= 1 {
		return 1
	}
	if len(addrs) > 64 || banks > 64 {
		return BankConflictFactor(addrs, mask, banks)
	}
	var buf [64]uint32
	n, p := classifyRuns(addrs, mask, &buf)
	if n == 0 {
		return 1
	}
	var hits [64]uint8
	max := uint8(0)
	count := func(a uint32) {
		b := (a / WordBytes) % uint32(banks)
		hits[b]++
		if hits[b] > max {
			max = hits[b]
		}
	}
	if p > 0 {
		// buf[:p] is non-decreasing and the rest repeats it exactly, so the
		// warp's distinct address set is that of buf[:p].
		d := dedupNonDecreasing(buf[:p])
		for i := 0; i < d; i++ {
			count(buf[i])
		}
	} else {
		var t dedupTable
		for i := 0; i < n; i++ {
			if t.insert(buf[i]) {
				count(buf[i])
			}
		}
	}
	if max <= 1 {
		return 1
	}
	return int(max)
}
