package mem

import (
	"testing"
	"testing/quick"
)

func TestAllocAlignmentAndExhaustion(t *testing.T) {
	m := NewMemory(4096)
	a, err := m.Alloc(100)
	if err != nil || a%256 != 0 {
		t.Fatalf("first alloc: %v, addr %d", err, a)
	}
	b, err := m.Alloc(100)
	if err != nil || b%256 != 0 || b <= a {
		t.Fatalf("second alloc: %v, addr %d", err, b)
	}
	if _, err := m.Alloc(1 << 20); err == nil {
		t.Error("oversized alloc should fail")
	}
	m.Reset()
	if m.InUse() != 0 {
		t.Error("Reset should clear usage")
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	m := NewMemory(1024)
	if err := m.Store(16, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	v, err := m.Load(16)
	if err != nil || v != 0xdeadbeef {
		t.Fatalf("Load = %x, %v", v, err)
	}
	if _, err := m.Load(2); err == nil {
		t.Error("unaligned load should fail")
	}
	if err := m.Store(4096, 1); err == nil {
		t.Error("out-of-range store should fail")
	}
}

func TestWriteReadWords(t *testing.T) {
	m := NewMemory(1024)
	src := []uint32{1, 2, 3, 4}
	if err := m.WriteWords(8, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]uint32, 4)
	if err := m.ReadWords(8, dst); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("round trip failed at %d", i)
		}
	}
	if err := m.WriteWords(1020, src); err == nil {
		t.Error("overrunning write should fail")
	}
}

func TestAtomicRMW(t *testing.T) {
	m := NewMemory(64)
	old, err := m.Atomic(0, func(o uint32) uint32 { return o + 5 })
	if err != nil || old != 0 {
		t.Fatalf("atomic: old=%d err=%v", old, err)
	}
	v, _ := m.Load(0)
	if v != 5 {
		t.Errorf("after atomic add: %d, want 5", v)
	}
}

func TestCoalesceSegments(t *testing.T) {
	// 32 lanes, unit stride, 4-byte words, 64-byte segments => 2 segments.
	addrs := make([]uint32, 32)
	for i := range addrs {
		addrs[i] = uint32(i * 4)
	}
	full := ^uint64(0) >> 32
	if got := CoalesceSegments(addrs, full, 64); got != 2 {
		t.Errorf("unit stride: %d segments, want 2", got)
	}
	// Stride 64 bytes: every lane its own segment.
	for i := range addrs {
		addrs[i] = uint32(i * 64)
	}
	if got := CoalesceSegments(addrs, full, 64); got != 32 {
		t.Errorf("stride 64: %d segments, want 32", got)
	}
	// Same address in all lanes: one segment.
	for i := range addrs {
		addrs[i] = 128
	}
	if got := CoalesceSegments(addrs, full, 64); got != 1 {
		t.Errorf("broadcast: %d segments, want 1", got)
	}
	// Mask limits participation.
	for i := range addrs {
		addrs[i] = uint32(i * 64)
	}
	if got := CoalesceSegments(addrs, 0b11, 64); got != 2 {
		t.Errorf("masked: %d segments, want 2", got)
	}
	if got := CoalesceSegments(addrs, 0, 64); got != 0 {
		t.Errorf("empty mask: %d segments, want 0", got)
	}
}

func TestCoalesceListMatchesCount(t *testing.T) {
	f := func(raw [32]uint16, mask uint64) bool {
		addrs := make([]uint32, 32)
		for i, r := range raw {
			addrs[i] = uint32(r) * 4
		}
		var out [64]uint32
		n := CoalesceList(addrs, mask, 64, out[:])
		return n == CoalesceSegments(addrs, mask, 64)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBankConflicts(t *testing.T) {
	addrs := make([]uint32, 32)
	full := ^uint64(0) >> 32
	// Unit stride over 16 banks: conflict-free (factor 1 per bank pair? two
	// lanes share each bank => factor 2 on 16 banks).
	for i := range addrs {
		addrs[i] = uint32(i * 4)
	}
	if got := BankConflictFactor(addrs, full, 32); got != 1 {
		t.Errorf("unit stride, 32 banks: factor %d, want 1", got)
	}
	if got := BankConflictFactor(addrs, full, 16); got != 2 {
		t.Errorf("unit stride, 16 banks: factor %d, want 2", got)
	}
	// Stride of one full bank cycle: all lanes hit bank 0.
	for i := range addrs {
		addrs[i] = uint32(i * 32 * 4)
	}
	if got := BankConflictFactor(addrs, full, 32); got != 32 {
		t.Errorf("all same bank: factor %d, want 32", got)
	}
	// Broadcast: all the same address is conflict-free.
	for i := range addrs {
		addrs[i] = 64
	}
	if got := BankConflictFactor(addrs, full, 32); got != 1 {
		t.Errorf("broadcast: factor %d, want 1", got)
	}
}

func TestDistinctAddrs(t *testing.T) {
	addrs := []uint32{0, 0, 4, 8, 4, 0}
	if got := DistinctAddrs(addrs, 0b111111); got != 3 {
		t.Errorf("distinct = %d, want 3", got)
	}
	if got := DistinctAddrs(addrs, 0b000011); got != 1 {
		t.Errorf("masked distinct = %d, want 1", got)
	}
}

func TestCacheBasics(t *testing.T) {
	c := NewCache(1024, 64)
	if c.Access(0) {
		t.Error("cold access should miss")
	}
	if !c.Access(4) {
		t.Error("same-line access should hit")
	}
	// 1024/64 = 16 sets; address 1024 maps onto set 0 again -> evicts.
	c.Access(1024)
	if c.Access(0) {
		t.Error("evicted line should miss")
	}
	if c.Hits != 1 || c.Misses != 3 {
		t.Errorf("hits/misses = %d/%d, want 1/3", c.Hits, c.Misses)
	}
	if r := c.HitRate(); r != 0.25 {
		t.Errorf("hit rate = %g, want 0.25", r)
	}
	c.Invalidate()
	if c.Access(1024) {
		t.Error("access after invalidate should miss")
	}
}

func TestActiveLanes(t *testing.T) {
	if ActiveLanes(0) != 0 || ActiveLanes(0b1011) != 3 {
		t.Error("ActiveLanes wrong")
	}
}
