package mem

import (
	"testing"
	"testing/quick"
)

func TestAllocAlignmentAndExhaustion(t *testing.T) {
	m := NewMemory(4096)
	a, err := m.Alloc(100)
	if err != nil || a%256 != 0 {
		t.Fatalf("first alloc: %v, addr %d", err, a)
	}
	b, err := m.Alloc(100)
	if err != nil || b%256 != 0 || b <= a {
		t.Fatalf("second alloc: %v, addr %d", err, b)
	}
	if _, err := m.Alloc(1 << 20); err == nil {
		t.Error("oversized alloc should fail")
	}
	m.Reset()
	if m.InUse() != 0 {
		t.Error("Reset should clear usage")
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	m := NewMemory(1024)
	if err := m.Store(16, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	v, err := m.Load(16)
	if err != nil || v != 0xdeadbeef {
		t.Fatalf("Load = %x, %v", v, err)
	}
	if _, err := m.Load(2); err == nil {
		t.Error("unaligned load should fail")
	}
	if err := m.Store(4096, 1); err == nil {
		t.Error("out-of-range store should fail")
	}
}

func TestWriteReadWords(t *testing.T) {
	m := NewMemory(1024)
	src := []uint32{1, 2, 3, 4}
	if err := m.WriteWords(8, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]uint32, 4)
	if err := m.ReadWords(8, dst); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("round trip failed at %d", i)
		}
	}
	if err := m.WriteWords(1020, src); err == nil {
		t.Error("overrunning write should fail")
	}
}

func TestAtomicRMW(t *testing.T) {
	m := NewMemory(64)
	old, err := m.Atomic(0, func(o uint32) uint32 { return o + 5 })
	if err != nil || old != 0 {
		t.Fatalf("atomic: old=%d err=%v", old, err)
	}
	v, _ := m.Load(0)
	if v != 5 {
		t.Errorf("after atomic add: %d, want 5", v)
	}
}

// TestGatherScatterMatchPerLane pins the bulk warp accessors to a
// per-lane Load/Store loop: same values, same lane (0-upward) walk order,
// therefore the same surfaced error and the same partial side effects
// when a mid-warp lane faults, and last-lane-wins on scatter collisions.
func TestGatherScatterMatchPerLane(t *testing.T) {
	m := NewMemory(256)
	addrs := []uint32{0, 8, 8, 4, 252}
	src := []uint32{10, 20, 30, 40, 50}
	if err := m.Scatter(addrs, src); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Load(8); v != 30 {
		t.Errorf("scatter collision: got %d at 0x8, want the higher lane's 30", v)
	}
	dst := make([]uint32, len(addrs))
	if err := m.Gather(addrs, dst); err != nil {
		t.Fatal(err)
	}
	want := []uint32{10, 30, 30, 40, 50}
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("gather lane %d: got %d, want %d", i, dst[i], want[i])
		}
	}

	// Faulting lanes: the first bad lane's error must be byte-identical to
	// the per-lane path's, and scatter must keep the stores issued before
	// the fault, exactly like a per-lane loop.
	for _, bad := range []struct {
		addr uint32
		name string
	}{{2, "unaligned"}, {1 << 20, "out of range"}} {
		m2 := NewMemory(256)
		faulty := []uint32{0, 4, bad.addr, 8}
		_, wantErr := m2.Load(bad.addr)
		if wantErr == nil {
			t.Fatalf("%s probe did not fault", bad.name)
		}
		if err := m2.Gather(faulty, make([]uint32, 4)); err == nil || err.Error() != wantErr.Error() {
			t.Errorf("%s gather error: got %v, want %v", bad.name, err, wantErr)
		}
		err := m2.Scatter(faulty, []uint32{1, 2, 3, 4})
		if err == nil || err.Error() != wantErr.Error() {
			t.Errorf("%s scatter error: got %v, want %v", bad.name, err, wantErr)
		}
		if v, _ := m2.Load(4); v != 2 {
			t.Errorf("%s scatter: store before the faulting lane lost (got %d, want 2)", bad.name, v)
		}
		if v, _ := m2.Load(8); v != 0 {
			t.Errorf("%s scatter: store after the faulting lane happened (got %d, want 0)", bad.name, v)
		}
	}
}

// The access-pattern tables for CoalesceSegments, CoalesceList,
// DistinctAddrs, BankConflictFactor and ActiveLanes live in
// coalesce_test.go; here only the property-based cross-check remains.
func TestCoalesceListMatchesCount(t *testing.T) {
	f := func(raw [32]uint16, mask uint64) bool {
		addrs := make([]uint32, 32)
		for i, r := range raw {
			addrs[i] = uint32(r) * 4
		}
		var out [64]uint32
		n := CoalesceList(addrs, mask, 64, out[:])
		return n == CoalesceSegments(addrs, mask, 64)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCacheBasics(t *testing.T) {
	c := NewCache(1024, 64)
	if c.Access(0) {
		t.Error("cold access should miss")
	}
	if !c.Access(4) {
		t.Error("same-line access should hit")
	}
	// 1024/64 = 16 sets; address 1024 maps onto set 0 again -> evicts.
	c.Access(1024)
	if c.Access(0) {
		t.Error("evicted line should miss")
	}
	if c.Hits != 1 || c.Misses != 3 {
		t.Errorf("hits/misses = %d/%d, want 1/3", c.Hits, c.Misses)
	}
	if r := c.HitRate(); r != 0.25 {
		t.Errorf("hit rate = %g, want 0.25", r)
	}
	c.Invalidate()
	if c.Access(1024) {
		t.Error("access after invalidate should miss")
	}
}
