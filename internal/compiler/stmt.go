package compiler

import (
	"gpucmp/internal/kir"
	"gpucmp/internal/ptx"
)

// block lowers a statement list inside its own variable scope.
func (g *gen) block(stmts []kir.Stmt) {
	type saved struct {
		name string
		reg  ptx.Reg
		t    kir.Type
		had  bool
	}
	var declared []saved
	for _, s := range stmts {
		if g.err != nil {
			return
		}
		switch s := s.(type) {
		case *kir.DeclStmt:
			old, had := g.vars[s.Name]
			oldT := g.varTypes[s.Name]
			declared = append(declared, saved{s.Name, old, oldT, had})
			g.declare(s.Name, s.T, s.Init)
		case *kir.AssignStmt:
			g.assign(s.Name, s.Value)
		case *kir.StoreStmt:
			g.store(s)
		case *kir.AtomicStmt:
			g.atomic(s)
		case *kir.IfStmt:
			g.ifStmt(s)
		case *kir.ForStmt:
			g.forStmt(s)
		case *kir.BarrierStmt:
			g.emit(ptx.NewInstruction(ptx.OpBar))
		default:
			g.errf("unknown statement %T", s)
		}
	}
	// Close the scope: release registers of variables declared here.
	for i := len(declared) - 1; i >= 0; i-- {
		d := declared[i]
		if r, ok := g.vars[d.name]; ok {
			g.release(r)
		}
		if d.had {
			g.vars[d.name] = d.reg
			g.varTypes[d.name] = d.t
		} else {
			delete(g.vars, d.name)
			delete(g.varTypes, d.name)
		}
	}
}

// declare binds a new variable register and initialises it.
func (g *gen) declare(name string, t kir.Type, init kir.Expr) {
	r := g.alloc()
	g.vars[name] = r
	g.varTypes[name] = t
	g.initInto(r, t, init)
}

// initInto materialises init into register r, honouring the personality's
// copy style.
func (g *gen) initInto(r ptx.Reg, t kir.Type, init kir.Expr) {
	if g.p.MovCopies {
		v := g.lower(init, ptx.NoReg)
		mov := ptx.NewInstruction(ptx.OpMov)
		mov.Typ = scalarType(t)
		mov.Dst = r
		mov.Src[0] = v.op
		g.emit(mov)
		g.releaseVal(v)
		return
	}
	v := g.lower(init, r)
	if !v.op.IsImm && !v.op.IsSpec && v.op.Reg == r {
		return // produced in place
	}
	mov := ptx.NewInstruction(ptx.OpMov)
	mov.Typ = scalarType(t)
	mov.Dst = r
	mov.Src[0] = v.op
	g.emit(mov)
	g.releaseVal(v)
}

func (g *gen) assign(name string, val kir.Expr) {
	r, ok := g.vars[name]
	if !ok {
		g.errf("assignment to unbound variable %q", name)
		return
	}
	g.initInto(r, g.varTypes[name], val)
}

func (g *gen) store(s *kir.StoreStmt) {
	v := g.lower(s.Value, ptx.NoReg)
	if v.op.IsSpec {
		v = g.movToReg(v)
	}
	addr, off, space := g.address(s.Buf, s.Index)
	elem, _ := g.k.ElemType(s.Buf)
	st := ptx.NewInstruction(ptx.OpSt)
	st.Space = space
	st.Typ = scalarType(elem)
	st.Src[0] = addr.op
	st.Src[1] = v.op
	st.Off = off
	g.emit(st)
	g.releaseVal(addr)
	g.releaseVal(v)
}

func (g *gen) atomic(s *kir.AtomicStmt) {
	v := g.lower(s.Value, ptx.NoReg)
	addr, off, space := g.address(s.Buf, s.Index)
	at := ptx.NewInstruction(ptx.OpAtom)
	at.Space = space
	at.Typ = ptx.U32
	switch s.Op {
	case kir.AtomicAdd:
		at.Atom = ptx.AtomAdd
	case kir.AtomicOr:
		at.Atom = ptx.AtomOr
	case kir.AtomicMax:
		at.Atom = ptx.AtomMax
	case kir.AtomicExch:
		at.Atom = ptx.AtomExch
	}
	d := g.alloc()
	at.Dst = d
	at.Src[0] = addr.op
	at.Src[1] = v.op
	at.Off = off
	g.emit(at)
	g.releaseVal(addr)
	g.releaseVal(v)
	if s.Result != "" {
		r, ok := g.vars[s.Result]
		if !ok {
			g.errf("atomic result variable %q unbound", s.Result)
			return
		}
		mov := ptx.NewInstruction(ptx.OpMov)
		mov.Typ = ptx.U32
		mov.Dst = r
		mov.Src[0] = ptx.R(d)
		g.emit(mov)
	}
	g.release(d)
}

// ---- if lowering ----

// pureAssignBody reports whether stmts are only scalar assignments with
// load-free right-hand sides — the shape the OpenCL front-end if-converts
// into setp+selp chains.
func pureAssignBody(stmts []kir.Stmt) bool {
	for _, s := range stmts {
		a, ok := s.(*kir.AssignStmt)
		if !ok {
			return false
		}
		if !pureExpr(a.Value) {
			return false
		}
	}
	return true
}

func pureExpr(e kir.Expr) bool {
	switch e := e.(type) {
	case *kir.Load:
		return false
	case *kir.Bin:
		return pureExpr(e.L) && pureExpr(e.R)
	case *kir.Un:
		return pureExpr(e.X)
	case *kir.Sel:
		return pureExpr(e.Cond) && pureExpr(e.A) && pureExpr(e.B)
	case *kir.Cast:
		return pureExpr(e.X)
	default:
		return true
	}
}

// simpleBody reports whether stmts contain no nested control flow, barriers
// or atomics — the shape the CUDA front-end predicates with guard bits.
func simpleBody(stmts []kir.Stmt) bool {
	for _, s := range stmts {
		switch s.(type) {
		case *kir.IfStmt, *kir.ForStmt, *kir.BarrierStmt, *kir.AtomicStmt:
			return false
		}
	}
	return true
}

func (g *gen) ifStmt(s *kir.IfStmt) {
	pv := g.lower(s.Cond, ptx.NoReg)
	if pv.op.IsImm || pv.op.IsSpec {
		pv = g.movToReg(pv)
	}
	pred := pv.op.Reg

	// OpenCL personality: if-convert pure single-armed conditionals.
	if g.p.SelpPureIf && len(s.Else) == 0 && len(s.Then) <= g.p.MaxSelpAssigns && pureAssignBody(s.Then) {
		g.rem.Addf(PhaseFrontEnd, "if-converted %d assignment(s) into setp+selp chain", len(s.Then))
		g.depth++
		for _, st := range s.Then {
			a := st.(*kir.AssignStmt)
			r, ok := g.vars[a.Name]
			if !ok {
				g.errf("assignment to unbound variable %q", a.Name)
				return
			}
			nv := g.lower(a.Value, ptx.NoReg)
			sel := ptx.NewInstruction(ptx.OpSelp)
			sel.Typ = scalarType(g.varTypes[a.Name])
			sel.Dst = r
			sel.Src[0] = nv.op
			sel.Src[1] = ptx.R(r)
			sel.Src[2] = ptx.R(pred)
			g.emit(sel)
			g.releaseVal(nv)
		}
		g.depth--
		g.dropCSEDeeperThan(g.depth)
		g.releaseVal(pv)
		return
	}

	// CUDA personality: guard small branch-free bodies with the predicate.
	if g.p.GuardSmallIf && len(s.Else) == 0 && simpleBody(s.Then) &&
		kir.CountNodes(s.Then) <= g.p.MaxGuardInstrs*3 && g.guard == ptx.NoReg {
		g.rem.Addf(PhaseFrontEnd, "predicated %d-node if-body with guard p%d (no branch emitted)",
			kir.CountNodes(s.Then), pred)
		g.depth++
		g.guard = pred
		g.guardNeg = false
		g.block(s.Then)
		g.guard = ptx.NoReg
		g.depth--
		g.dropCSEDeeperThan(g.depth)
		g.releaseVal(pv)
		return
	}

	// General branch form.
	br := ptx.NewInstruction(ptx.OpBra)
	br.GuardPred = pred
	br.GuardNeg = true
	braIdx := g.emit(br)

	g.depth++
	g.block(s.Then)
	g.depth--
	g.dropCSEDeeperThan(g.depth)

	if len(s.Else) == 0 {
		join := len(g.out)
		g.out[braIdx].Target = join
		g.out[braIdx].Join = join
	} else {
		skip := ptx.NewInstruction(ptx.OpBra)
		skipIdx := g.emit(skip)
		elseStart := len(g.out)
		g.out[braIdx].Target = elseStart

		g.depth++
		g.block(s.Else)
		g.depth--
		g.dropCSEDeeperThan(g.depth)

		join := len(g.out)
		g.out[braIdx].Join = join
		g.out[skipIdx].Target = join
		g.out[skipIdx].Join = join
	}
	g.releaseVal(pv)
}

// ---- for lowering and unrolling ----

// bodyMutatesLimit reports whether the loop body assigns any variable the
// limit (or step) expression reads.
func bodyMutatesLimit(s *kir.ForStmt) bool {
	// Memory-dependent bounds are conservatively treated as mutable.
	if hasLoad(s.Limit) || hasLoad(s.Step) {
		return true
	}
	reads := map[string]bool{}
	kir.ReadVars(s.Limit, reads)
	kir.ReadVars(s.Step, reads)
	for name := range reads {
		if kir.AssignsVar(s.Body, name) {
			return true
		}
	}
	return false
}

func hasLoad(e kir.Expr) bool {
	switch e := e.(type) {
	case nil:
		return false
	case *kir.Load:
		return true
	case *kir.Bin:
		return hasLoad(e.L) || hasLoad(e.R)
	case *kir.Un:
		return hasLoad(e.X)
	case *kir.Sel:
		return hasLoad(e.Cond) || hasLoad(e.A) || hasLoad(e.B)
	case *kir.Cast:
		return hasLoad(e.X)
	default:
		return false
	}
}

func constVal(e kir.Expr) (int64, bool) {
	if c, ok := e.(*kir.ConstInt); ok {
		return c.V, true
	}
	return 0, false
}

func (g *gen) forStmt(s *kir.ForStmt) {
	init, initConst := constVal(s.Init)
	limit, limitConst := constVal(s.Limit)
	step, stepConst := constVal(s.Step)
	bodyAssignsVar := kir.AssignsVar(s.Body, s.Var)

	trips := int64(-1)
	if initConst && limitConst && stepConst && step > 0 && !bodyAssignsVar {
		if limit <= init {
			trips = 0
		} else {
			trips = (limit - init + step - 1) / step
		}
	}

	// Full unrolling: requested by pragma, or automatic (CUDA) for small
	// constant-trip loops.
	if trips >= 0 {
		wantFull := g.p.HonorUnrollPragma && (s.Unroll == kir.UnrollFull || int64(s.Unroll) >= trips && s.Unroll > 0)
		autoFull := g.p.AutoUnrollTrips > 0 && trips <= int64(g.p.AutoUnrollTrips) &&
			trips*int64(kir.CountNodes(s.Body)) <= int64(g.p.AutoUnrollMaxNodes)
		if wantFull || autoFull {
			how := "by pragma"
			if !wantFull {
				how = "automatically"
			}
			g.rem.Addf(PhaseFrontEnd, "fully unrolled loop over %s by %d trip(s) %s", s.Var, trips, how)
			for t := int64(0); t < trips; t++ {
				iv := &kir.ConstInt{T: s.T, V: init + t*step}
				g.block(kir.SubstVar(s.Body, s.Var, iv))
			}
			return
		}
	}

	// Partial unrolling by pragma factor N (runtime or constant bounds,
	// constant positive step, no assignment to the loop variable, and a
	// limit expression the body cannot mutate — otherwise a group of N
	// copies could overrun where the rolled loop would have stopped).
	if g.p.HonorUnrollPragma && s.Unroll > 1 && stepConst && step > 0 && !bodyAssignsVar &&
		!bodyMutatesLimit(s) {
		g.partialUnroll(s, step)
		return
	}

	// Rolled loop.
	r := g.alloc()
	g.vars[s.Var] = r
	g.varTypes[s.Var] = s.T
	g.initInto(r, s.T, s.Init)
	g.rolledLoop(s.Var, s.T,
		&kir.Bin{Op: kir.OpLt, L: &kir.VarRef{Name: s.Var, T: s.T}, R: s.Limit},
		s.Body, s.Step)
	delete(g.vars, s.Var)
	delete(g.varTypes, s.Var)
	g.release(r)
}

// partialUnroll lowers `for v := init; v < limit; v += step` with pragma
// factor n into a main loop processing n iterations per trip plus a
// remainder loop.
func (g *gen) partialUnroll(s *kir.ForStmt, step int64) {
	n := int64(s.Unroll)
	g.rem.Addf(PhaseFrontEnd, "partially unrolled loop over %s by pragma factor %d", s.Var, n)
	r := g.alloc()
	g.vars[s.Var] = r
	g.varTypes[s.Var] = s.T
	g.initInto(r, s.T, s.Init)

	vref := &kir.VarRef{Name: s.Var, T: s.T}

	// Main loop: while v + (n-1)*step < limit, run n substituted copies.
	mainBody := make([]kir.Stmt, 0, int(n)*len(s.Body))
	for k := int64(0); k < n; k++ {
		var iv kir.Expr = vref
		if k > 0 {
			iv = &kir.Bin{Op: kir.OpAdd, L: kir.CloneExpr(vref), R: &kir.ConstInt{T: s.T, V: k * step}}
		}
		mainBody = append(mainBody, kir.SubstVar(s.Body, s.Var, iv)...)
	}
	mainCond := &kir.Bin{Op: kir.OpLt,
		L: &kir.Bin{Op: kir.OpAdd, L: kir.CloneExpr(vref), R: &kir.ConstInt{T: s.T, V: (n - 1) * step}},
		R: s.Limit}
	if g.p.SpillOnUnroll && g.p.SpillsPerCopy > 0 {
		// Spill volume tracks the replicated live set: bigger bodies
		// spill more per copy.
		perCopy := kir.CountNodes(s.Body) / 8
		if perCopy < g.p.SpillsPerCopy {
			perCopy = g.p.SpillsPerCopy
		}
		g.rolledLoopSpilled(s.Var, s.T, mainCond, mainBody, &kir.ConstInt{T: s.T, V: n * step}, int(n), perCopy)
	} else {
		g.rolledLoop(s.Var, s.T, mainCond, mainBody, &kir.ConstInt{T: s.T, V: n * step})
	}

	// Remainder loop.
	remCond := &kir.Bin{Op: kir.OpLt, L: kir.CloneExpr(vref), R: kir.CloneExpr(s.Limit)}
	g.rolledLoop(s.Var, s.T, remCond, s.Body, s.Step)

	delete(g.vars, s.Var)
	delete(g.varTypes, s.Var)
	g.release(r)
}

// rolledLoopSpilled emits the main loop of a register-pressure-naive
// partial unroll: the replicated body runs with SpillsPerCopy*copies
// spill/reload round trips through per-thread local memory appended, the
// register traffic a naive unroller generates when the live set of the
// replicated copies no longer fits the register file.
func (g *gen) rolledLoopSpilled(varName string, t kir.Type, cond kir.Expr, body []kir.Stmt, step kir.Expr, copies, perCopy int) {
	spills := perCopy * (copies - 1)
	if spills <= 0 {
		g.rolledLoop(varName, t, cond, body, step)
		return
	}
	// Reserve local slots for the spilled values.
	spillOff := int32(g.localBytes)
	g.localBytes += spills * 4
	for c := 1; c < copies; c++ {
		g.rem.Addf(PhaseFrontEnd, "spill inserted for unroll copy %d (%d round trip(s) through local memory)",
			c, perCopy)
	}

	g.enterLoop()
	head := len(g.out)
	pv := g.lower(cond, ptx.NoReg)
	if pv.op.IsImm || pv.op.IsSpec {
		pv = g.movToReg(pv)
	}
	exitBr := ptx.NewInstruction(ptx.OpBra)
	exitBr.GuardPred = pv.op.Reg
	exitBr.GuardNeg = true
	exitIdx := g.emit(exitBr)
	g.releaseVal(pv)

	g.depth++
	g.block(body)

	// Spill/reload round trips on the loop variable's register.
	r := g.vars[varName]
	for i := 0; i < spills; i++ {
		st := ptx.NewInstruction(ptx.OpSt)
		st.Space = ptx.SpaceLocal
		st.Typ = ptx.U32
		st.Src[0] = ptx.ImmU(0)
		st.Src[1] = ptx.R(r)
		st.Off = spillOff + int32(4*i)
		g.emit(st)
		ld := ptx.NewInstruction(ptx.OpLd)
		ld.Space = ptx.SpaceLocal
		ld.Typ = ptx.U32
		ld.Dst = r
		ld.Src[0] = ptx.ImmU(0)
		ld.Off = spillOff + int32(4*i)
		g.emit(ld)
	}

	sv := g.lower(step, ptx.NoReg)
	add := ptx.NewInstruction(ptx.OpAdd)
	add.Typ = scalarType(t)
	add.Dst = r
	add.Src[0] = ptx.R(r)
	add.Src[1] = sv.op
	g.emit(add)
	g.releaseVal(sv)

	back := ptx.NewInstruction(ptx.OpBra)
	back.Target = head
	backIdx := g.emit(back)
	g.depth--
	g.dropCSEDeeperThan(g.depth)

	exit := len(g.out)
	g.out[exitIdx].Target = exit
	g.out[exitIdx].Join = exit
	g.out[backIdx].Join = exit
	g.exitLoop()
}

// rolledLoop emits head/test/body/step/back-edge for an already-bound loop
// variable.
func (g *gen) rolledLoop(varName string, t kir.Type, cond kir.Expr, body []kir.Stmt, step kir.Expr) {
	g.enterLoop()
	head := len(g.out)
	pv := g.lower(cond, ptx.NoReg)
	if pv.op.IsImm || pv.op.IsSpec {
		pv = g.movToReg(pv)
	}
	exitBr := ptx.NewInstruction(ptx.OpBra)
	exitBr.GuardPred = pv.op.Reg
	exitBr.GuardNeg = true
	exitIdx := g.emit(exitBr)
	g.releaseVal(pv)

	g.depth++
	g.block(body)

	// v += step
	r := g.vars[varName]
	sv := g.lower(step, ptx.NoReg)
	add := ptx.NewInstruction(ptx.OpAdd)
	add.Typ = scalarType(t)
	add.Dst = r
	add.Src[0] = ptx.R(r)
	add.Src[1] = sv.op
	g.emit(add)
	g.releaseVal(sv)

	back := ptx.NewInstruction(ptx.OpBra)
	back.Target = head
	backIdx := g.emit(back)
	g.depth--
	g.dropCSEDeeperThan(g.depth)

	exit := len(g.out)
	g.out[exitIdx].Target = exit
	g.out[exitIdx].Join = exit
	g.out[backIdx].Join = exit
	g.exitLoop()
}
