package compiler

import (
	"testing"

	"gpucmp/internal/kir"
	"gpucmp/internal/ptx"
)

func vecAddKernel(t *testing.T) *kir.Kernel {
	t.Helper()
	b := kir.NewKernel("vadd")
	a := b.GlobalBuffer("a", kir.F32)
	bb := b.GlobalBuffer("b", kir.F32)
	c := b.GlobalBuffer("c", kir.F32)
	n := b.ScalarParam("n", kir.U32)
	gid := b.Declare("gid", b.GlobalIDX())
	b.If(kir.Lt(gid, n), func() {
		b.Store(c, gid, kir.Add(b.Load(a, gid), b.Load(bb, gid)))
	})
	k, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return k
}

func compileBoth(t *testing.T, k *kir.Kernel) (cu, cl *ptx.Kernel) {
	t.Helper()
	var err error
	cu, err = Compile(k, CUDA())
	if err != nil {
		t.Fatalf("CUDA compile: %v", err)
	}
	cl, err = Compile(k, OpenCL())
	if err != nil {
		t.Fatalf("OpenCL compile: %v", err)
	}
	return cu, cl
}

func TestCompileVecAddBothPersonalities(t *testing.T) {
	cu, cl := compileBoth(t, vecAddKernel(t))
	if cu.Toolchain != "cuda" || cl.Toolchain != "opencl" {
		t.Errorf("toolchain tags: %q, %q", cu.Toolchain, cl.Toolchain)
	}
	if err := cu.Validate(); err != nil {
		t.Errorf("CUDA kernel invalid: %v", err)
	}
	if err := cl.Validate(); err != nil {
		t.Errorf("OpenCL kernel invalid: %v", err)
	}
	// Both load and store global memory the same number of times — the
	// paper's key Table V observation ("all time-consuming instructions
	// such as ld.global and st.global are exactly the same").
	cs, ls := cu.StaticStats(), cl.StaticStats()
	if cs.Get(ptx.OpLd, ptx.SpaceGlobal) != ls.Get(ptx.OpLd, ptx.SpaceGlobal) {
		t.Errorf("ld.global differs: %d vs %d",
			cs.Get(ptx.OpLd, ptx.SpaceGlobal), ls.Get(ptx.OpLd, ptx.SpaceGlobal))
	}
	if cs.Get(ptx.OpSt, ptx.SpaceGlobal) != ls.Get(ptx.OpSt, ptx.SpaceGlobal) {
		t.Errorf("st.global differs: %d vs %d",
			cs.Get(ptx.OpSt, ptx.SpaceGlobal), ls.Get(ptx.OpSt, ptx.SpaceGlobal))
	}
}

func TestParamSpacePersonalities(t *testing.T) {
	cu, cl := compileBoth(t, vecAddKernel(t))
	cs, ls := cu.StaticStats(), cl.StaticStats()
	if cs.Get(ptx.OpLd, ptx.SpaceParam) == 0 {
		t.Error("CUDA kernel should load parameters from the param space")
	}
	if cs.Get(ptx.OpLd, ptx.SpaceConst) != 0 {
		t.Error("CUDA kernel should not use ld.const for parameters")
	}
	if ls.Get(ptx.OpLd, ptx.SpaceConst) == 0 {
		t.Error("OpenCL kernel should load parameters from the constant bank")
	}
	if ls.Get(ptx.OpLd, ptx.SpaceParam) != 0 {
		t.Error("OpenCL kernel should not use ld.param")
	}
}

func TestStrengthReductionOnlyOpenCL(t *testing.T) {
	b := kir.NewKernel("sr")
	out := b.GlobalBuffer("out", kir.U32)
	gid := b.Declare("gid", b.GlobalIDX())
	v := b.Declare("v", kir.Mul(gid, kir.U(8)))
	w := b.Declare("w", kir.Rem(v, kir.U(16)))
	b.Store(out, gid, kir.Add(v, w))
	k, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	cu, cl := compileBoth(t, k)
	cs, ls := cu.StaticStats(), cl.StaticStats()
	if ls.Get(ptx.OpShl, ptx.SpaceNone) == 0 {
		t.Error("OpenCL should strength-reduce mul-by-8 into shl")
	}
	if ls.Get(ptx.OpRem, ptx.SpaceNone) != 0 {
		t.Error("OpenCL should strength-reduce rem-by-16 into and")
	}
	if ls.Get(ptx.OpAnd, ptx.SpaceNone) == 0 {
		t.Error("OpenCL should emit and for rem-by-16")
	}
	if cs.Get(ptx.OpRem, ptx.SpaceNone) == 0 {
		t.Error("CUDA should keep the rem instruction")
	}
}

func TestCSEDeduplicates(t *testing.T) {
	// The same addressing expression appears twice; both front-ends carry
	// value-numbering CSE, so the second occurrence must reuse the first
	// (CUDA simply has the wider register window).
	b := kir.NewKernel("cse")
	in := b.GlobalBuffer("in", kir.F32)
	out := b.GlobalBuffer("out", kir.F32)
	gid := b.Declare("gid", b.GlobalIDX())
	idx := kir.Add(kir.Mul(gid, kir.U(3)), kir.U(1))
	x := b.Declare("x", b.Load(in, idx))
	y := b.Declare("y", kir.Mul(b.Load(in, kir.Add(kir.Mul(gid, kir.U(3)), kir.U(1))), x))
	b.Store(out, gid, y)
	k, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	count := func(pk *ptx.Kernel) int64 {
		return pk.FrontEndStats.Class(ptx.ClassArithmetic) +
			pk.FrontEndStats.Class(ptx.ClassLogicShift)
	}
	cu, cl := compileBoth(t, k)
	noCSE := CUDA()
	noCSE.CSE = false
	base, err := Compile(k, noCSE)
	if err != nil {
		t.Fatal(err)
	}
	if count(cu) >= count(base) {
		t.Errorf("CUDA CSE should shrink arithmetic: %d vs %d without CSE", count(cu), count(base))
	}
	if count(cl) >= count(base)+2 {
		t.Errorf("OpenCL CSE should roughly match: %d vs %d without CSE", count(cl), count(base))
	}
	if CUDA().MaxCSERegs <= OpenCL().MaxCSERegs {
		t.Error("NVOPENCC should have the wider CSE register window")
	}
}

func TestIfLoweringStyles(t *testing.T) {
	// Pure scalar if: CUDA guards (or branches), OpenCL if-converts to selp.
	b := kir.NewKernel("sel")
	out := b.GlobalBuffer("out", kir.U32)
	gid := b.Declare("gid", b.GlobalIDX())
	v := b.Declare("v", kir.U(0))
	b.If(kir.Lt(gid, kir.U(128)), func() {
		b.Assign(v, kir.Add(gid, kir.U(7)))
	})
	b.Store(out, gid, v)
	k, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	cu, cl := compileBoth(t, k)
	if cl.StaticStats().Get(ptx.OpSelp, ptx.SpaceNone) == 0 {
		t.Error("OpenCL should if-convert the pure conditional into selp")
	}
	if cl.StaticStats().Get(ptx.OpBra, ptx.SpaceNone) != 0 {
		t.Error("OpenCL pure conditional should not branch")
	}
	if cu.StaticStats().Get(ptx.OpBra, ptx.SpaceNone) != 0 {
		t.Error("CUDA small conditional should be guard-predicated, not branched")
	}
	// The CUDA version must carry guard predicates on the then-body.
	guarded := 0
	for i := range cu.Instrs {
		if cu.Instrs[i].GuardPred != ptx.NoReg && cu.Instrs[i].Op != ptx.OpBra {
			guarded++
		}
	}
	if guarded == 0 {
		t.Error("CUDA guard-form produced no guarded instructions")
	}
}

func TestIfWithStoreBranchesOnOpenCL(t *testing.T) {
	// A store is not if-convertible; OpenCL must fall back to a branch,
	// CUDA can still guard it.
	cu, cl := compileBoth(t, vecAddKernel(t))
	if cl.StaticStats().Get(ptx.OpBra, ptx.SpaceNone) == 0 {
		t.Error("OpenCL guarded store should use a branch")
	}
	if cu.StaticStats().Get(ptx.OpBra, ptx.SpaceNone) != 0 {
		t.Error("CUDA should predicate the guarded store without a branch")
	}
}

func TestAutoUnrollCUDAOnly(t *testing.T) {
	// A 6-trip loop: within NVOPENCC's auto-unroll range (8) but beyond
	// the OpenCL front-end's (4).
	b := kir.NewKernel("unr")
	out := b.GlobalBuffer("out", kir.F32)
	acc := b.Declare("acc", kir.F(0))
	b.For("i", kir.U(0), kir.U(6), kir.U(1), func(i kir.Expr) {
		b.Assign(acc, kir.Add(acc, kir.CastTo(kir.F32, i)))
	})
	b.Store(out, b.GlobalIDX(), acc)
	k, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	cu, cl := compileBoth(t, k)
	if cu.StaticStats().Get(ptx.OpBra, ptx.SpaceNone) != 0 {
		t.Error("CUDA should fully unroll the 4-trip constant loop")
	}
	if cl.StaticStats().Get(ptx.OpBra, ptx.SpaceNone) == 0 {
		t.Error("OpenCL without pragma should keep the loop rolled")
	}
	if cl.StaticStats().Get(ptx.OpSetp, ptx.SpaceNone) == 0 {
		t.Error("OpenCL rolled loop needs a setp condition")
	}
}

func TestPragmaUnrollHonoredByBoth(t *testing.T) {
	mk := func() *kir.Kernel {
		b := kir.NewKernel("punr")
		out := b.GlobalBuffer("out", kir.F32)
		acc := b.Declare("acc", kir.F(0))
		b.ForUnroll("i", kir.U(0), kir.U(16), kir.U(1), kir.UnrollFull, func(i kir.Expr) {
			b.Assign(acc, kir.Add(acc, kir.F(1)))
		})
		b.Store(out, b.GlobalIDX(), acc)
		return b.MustBuild()
	}
	cu, cl := compileBoth(t, mk())
	if cu.StaticStats().Get(ptx.OpBra, ptx.SpaceNone) != 0 {
		t.Error("CUDA should honour full-unroll pragma")
	}
	if cl.StaticStats().Get(ptx.OpBra, ptx.SpaceNone) != 0 {
		t.Error("OpenCL should honour full-unroll pragma")
	}
}

func TestPartialUnrollRuntimeLimit(t *testing.T) {
	// A runtime-bounded loop with pragma 4: body appears 4+1 times (main
	// copies + remainder), with two rolled loops.
	mk := func(unroll int) *kir.Kernel {
		b := kir.NewKernel("rt")
		in := b.GlobalBuffer("in", kir.F32)
		out := b.GlobalBuffer("out", kir.F32)
		n := b.ScalarParam("n", kir.U32)
		acc := b.Declare("acc", kir.F(0))
		b.ForUnroll("i", kir.U(0), n, kir.U(1), unroll, func(i kir.Expr) {
			b.Assign(acc, kir.Add(acc, b.Load(in, i)))
		})
		b.Store(out, b.GlobalIDX(), acc)
		return b.MustBuild()
	}
	plain, err := Compile(mk(0), CUDA())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	unrolled, err := Compile(mk(4), CUDA())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	pl := plain.StaticStats().Get(ptx.OpLd, ptx.SpaceGlobal)
	ul := unrolled.StaticStats().Get(ptx.OpLd, ptx.SpaceGlobal)
	if pl != 1 || ul != 5 {
		t.Errorf("global loads: plain=%d (want 1), unrolled=%d (want 5)", pl, ul)
	}
	if got := unrolled.StaticStats().Get(ptx.OpBra, ptx.SpaceNone); got < 4 {
		t.Errorf("partial unroll should keep two rolled loops, got %d branches", got)
	}
}

func TestDeadCodeElimination(t *testing.T) {
	k := &ptx.Kernel{Name: "d", Toolchain: "cuda", NumRegs: 4}
	add := ptx.NewInstruction(ptx.OpAdd)
	add.Typ = ptx.U32
	add.Dst = 0
	add.Src[0] = ptx.ImmU(1)
	add.Src[1] = ptx.ImmU(2)
	dead := ptx.NewInstruction(ptx.OpMul) // feeds only another dead instr
	dead.Typ = ptx.U32
	dead.Dst = 1
	dead.Src[0] = ptx.R(0)
	dead.Src[1] = ptx.ImmU(3)
	dead2 := ptx.NewInstruction(ptx.OpAdd)
	dead2.Typ = ptx.U32
	dead2.Dst = 2
	dead2.Src[0] = ptx.R(1)
	dead2.Src[1] = ptx.ImmU(1)
	st := ptx.NewInstruction(ptx.OpSt)
	st.Space = ptx.SpaceGlobal
	st.Typ = ptx.U32
	st.Src[0] = ptx.R(0)
	st.Src[1] = ptx.R(0)
	ret := ptx.NewInstruction(ptx.OpRet)
	k.Instrs = []ptx.Instruction{add, dead, dead2, st, ret}
	Optimize(k)
	if len(k.Instrs) != 3 {
		t.Fatalf("DCE left %d instructions, want 3:\n%s", len(k.Instrs), k.Disassemble())
	}
}

func TestMadFusion(t *testing.T) {
	k := &ptx.Kernel{Name: "f", Toolchain: "opencl", NumRegs: 8}
	mul := ptx.NewInstruction(ptx.OpMul)
	mul.Typ = ptx.F32
	mul.Dst = 2
	mul.Src[0] = ptx.R(0)
	mul.Src[1] = ptx.R(1)
	add := ptx.NewInstruction(ptx.OpAdd)
	add.Typ = ptx.F32
	add.Dst = 3
	add.Src[0] = ptx.R(2)
	add.Src[1] = ptx.R(4)
	st := ptx.NewInstruction(ptx.OpSt)
	st.Space = ptx.SpaceGlobal
	st.Typ = ptx.F32
	st.Src[0] = ptx.R(5)
	st.Src[1] = ptx.R(3)
	ret := ptx.NewInstruction(ptx.OpRet)
	k.Instrs = []ptx.Instruction{mul, add, st, ret}
	Optimize(k)
	s := k.StaticStats()
	if s.Get(ptx.OpFma, ptx.SpaceNone) != 1 {
		t.Errorf("expected one fused fma:\n%s", k.Disassemble())
	}
	if s.Get(ptx.OpMul, ptx.SpaceNone) != 0 {
		t.Errorf("mul should be fused away:\n%s", k.Disassemble())
	}
}

func TestSharedAndLocalFootprints(t *testing.T) {
	b := kir.NewKernel("foot")
	in := b.GlobalBuffer("in", kir.F32)
	out := b.GlobalBuffer("out", kir.F32)
	tile := b.SharedArray("tile", kir.F32, 272)
	scr := b.LocalArray("scr", kir.F32, 8)
	gid := b.Declare("gid", b.GlobalIDX())
	b.Store(tile, kir.Bi(kir.TidX), b.Load(in, gid))
	b.Barrier()
	b.Store(scr, kir.U(0), b.Load(tile, kir.Bi(kir.TidX)))
	b.Store(out, gid, b.Load(scr, kir.U(0)))
	k := b.MustBuild()
	cu, cl := compileBoth(t, k)
	for _, pk := range []*ptx.Kernel{cu, cl} {
		if pk.SharedBytes != 272*4 {
			t.Errorf("%s SharedBytes = %d, want %d", pk.Toolchain, pk.SharedBytes, 272*4)
		}
		if pk.LocalBytes != 8*4 {
			t.Errorf("%s LocalBytes = %d, want %d", pk.Toolchain, pk.LocalBytes, 8*4)
		}
		s := pk.StaticStats()
		if s.Get(ptx.OpSt, ptx.SpaceShared) == 0 || s.Get(ptx.OpLd, ptx.SpaceShared) == 0 {
			t.Errorf("%s missing shared traffic", pk.Toolchain)
		}
		if s.Get(ptx.OpSt, ptx.SpaceLocal) == 0 || s.Get(ptx.OpLd, ptx.SpaceLocal) == 0 {
			t.Errorf("%s missing local traffic", pk.Toolchain)
		}
		if s.Get(ptx.OpBar, ptx.SpaceNone) != 1 {
			t.Errorf("%s barrier count wrong", pk.Toolchain)
		}
	}
}

func TestTextureAndConstantSpaces(t *testing.T) {
	b := kir.NewKernel("spaces")
	vec := b.TexBuffer("vec", kir.F32)
	filt := b.ConstBuffer("filt", kir.F32)
	out := b.GlobalBuffer("out", kir.F32)
	gid := b.Declare("gid", b.GlobalIDX())
	b.Store(out, gid, kir.Mul(b.Load(vec, gid), b.Load(filt, kir.U(0))))
	k := b.MustBuild()
	cu, cl := compileBoth(t, k)
	for _, pk := range []*ptx.Kernel{cu, cl} {
		s := pk.StaticStats()
		if s.Get(ptx.OpTex, ptx.SpaceNone) == 0 {
			t.Errorf("%s missing texture fetch", pk.Toolchain)
		}
		if s.Get(ptx.OpLd, ptx.SpaceConst) == 0 {
			t.Errorf("%s missing constant load", pk.Toolchain)
		}
	}
	if cu.Params[0].Space != ptx.SpaceTex || cu.Params[1].Space != ptx.SpaceConst {
		t.Error("parameter spaces not propagated")
	}
}

func TestMovHeavyCUDA(t *testing.T) {
	// CUDA's MovCopies style must produce strictly more movs than OpenCL
	// for the same kernel (the paper's 687-vs-88 contrast, in miniature).
	b := kir.NewKernel("movs")
	out := b.GlobalBuffer("out", kir.U32)
	gid := b.Declare("gid", b.GlobalIDX())
	a := b.Declare("a", kir.Add(gid, kir.U(1)))
	c := b.Declare("c", kir.Add(a, kir.U(2)))
	d := b.Declare("d", kir.Add(c, kir.U(3)))
	b.Store(out, gid, d)
	k := b.MustBuild()
	cu, cl := compileBoth(t, k)
	// The mov-heavy style shows in the front-end PTX (Table V view); the
	// back end's copy propagation then removes it from the executed code.
	cm := cu.FrontEndStats.Get(ptx.OpMov, ptx.SpaceNone)
	lm := cl.FrontEndStats.Get(ptx.OpMov, ptx.SpaceNone)
	if cm <= lm {
		t.Errorf("CUDA front-end movs (%d) should exceed OpenCL movs (%d)", cm, lm)
	}
	cmPost := cu.StaticStats().Get(ptx.OpMov, ptx.SpaceNone)
	if cmPost >= cm {
		t.Errorf("copy propagation should remove movs: %d -> %d", cm, cmPost)
	}
}

func TestCompileModule(t *testing.T) {
	k := vecAddKernel(t)
	m, err := CompileModule("m", []*kir.Kernel{k}, CUDA())
	if err != nil {
		t.Fatalf("CompileModule: %v", err)
	}
	if _, err := m.Kernel("vadd"); err != nil {
		t.Errorf("module lookup: %v", err)
	}
}

func TestRegisterCountsReasonable(t *testing.T) {
	cu, cl := compileBoth(t, vecAddKernel(t))
	if cu.NumRegs <= 0 || cu.NumRegs > 64 {
		t.Errorf("CUDA NumRegs = %d, want (0,64]", cu.NumRegs)
	}
	if cl.NumRegs <= 0 || cl.NumRegs > 64 {
		t.Errorf("OpenCL NumRegs = %d, want (0,64]", cl.NumRegs)
	}
}
