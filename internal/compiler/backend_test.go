package compiler

import (
	"testing"

	"gpucmp/internal/ptx"
)

// Helpers for hand-assembling small PTX fixtures.

func movRR(dst, src ptx.Reg) ptx.Instruction {
	in := ptx.NewInstruction(ptx.OpMov)
	in.Typ = ptx.U32
	in.Dst = dst
	in.Src[0] = ptx.R(src)
	return in
}

func movRI(dst ptx.Reg, v uint32) ptx.Instruction {
	in := ptx.NewInstruction(ptx.OpMov)
	in.Typ = ptx.U32
	in.Dst = dst
	in.Src[0] = ptx.ImmU(v)
	return in
}

func addRRR(dst, a, b ptx.Reg) ptx.Instruction {
	in := ptx.NewInstruction(ptx.OpAdd)
	in.Typ = ptx.U32
	in.Dst = dst
	in.Src[0] = ptx.R(a)
	in.Src[1] = ptx.R(b)
	return in
}

func stG(addr, val ptx.Reg) ptx.Instruction {
	in := ptx.NewInstruction(ptx.OpSt)
	in.Space = ptx.SpaceGlobal
	in.Typ = ptx.U32
	in.Src[0] = ptx.R(addr)
	in.Src[1] = ptx.R(val)
	return in
}

func retI() ptx.Instruction { return ptx.NewInstruction(ptx.OpRet) }

// TestCopyPropWithinBlock is the baseline: inside one basic block a mov's
// source is forwarded into later uses.
func TestCopyPropWithinBlock(t *testing.T) {
	k := &ptx.Kernel{Name: "cp", Toolchain: "cuda", NumRegs: 8}
	k.Instrs = []ptx.Instruction{
		movRR(1, 0),   // r1 = r0
		addRRR(2, 1, 1), // r2 = r1 + r1 — both slots forward to r0
		stG(3, 2),
		retI(),
	}
	if got := copyPropagate(k); got != 2 {
		t.Fatalf("rewrote %d operands, want 2:\n%s", got, k.Disassemble())
	}
	add := k.Instrs[1]
	if add.Src[0].Reg != 0 || add.Src[1].Reg != 0 {
		t.Errorf("add sources not forwarded to r0:\n%s", k.Disassemble())
	}
}

// TestCopyPropStopsAtBranchTarget: an instruction that is a branch target
// starts a new basic block, so copies recorded before it must not be
// forwarded into it — on some path the mov may never have executed.
func TestCopyPropStopsAtBranchTarget(t *testing.T) {
	k := &ptx.Kernel{Name: "bb", Toolchain: "cuda", NumRegs: 8}
	setp := ptx.NewInstruction(ptx.OpSetp)
	setp.Typ = ptx.U32
	setp.Dst = 5
	setp.Src[0] = ptx.R(4)
	setp.Src[1] = ptx.ImmU(0)
	bra := ptx.NewInstruction(ptx.OpBra)
	bra.GuardPred = 5
	bra.Target = 3 // jump over the mov, straight to the add
	bra.Join = 3
	k.Instrs = []ptx.Instruction{
		setp,
		bra,
		movRR(1, 0),   // only executed on the fall-through path
		addRRR(2, 1, 1), // branch target: must keep reading r1
		stG(3, 2),
		retI(),
	}
	if got := copyPropagate(k); got != 0 {
		t.Fatalf("rewrote %d operands across a block boundary, want 0:\n%s", got, k.Disassemble())
	}
	add := k.Instrs[3]
	if add.Src[0].Reg != 1 || add.Src[1].Reg != 1 {
		t.Errorf("add sources must remain r1 at a branch target:\n%s", k.Disassemble())
	}
}

// TestCopyPropStopsAfterBranch: the instruction after a bra is a new leader
// even when it is not itself a target, because the bra may or may not be
// taken per lane.
func TestCopyPropStopsAfterBranch(t *testing.T) {
	k := &ptx.Kernel{Name: "ab", Toolchain: "cuda", NumRegs: 8}
	bra := ptx.NewInstruction(ptx.OpBra)
	bra.GuardPred = 5
	bra.Target = 4
	bra.Join = 4
	k.Instrs = []ptx.Instruction{
		movRR(1, 0), // r1 = r0, recorded in block 0
		bra,
		addRRR(2, 1, 1), // new block: copy table cleared
		stG(3, 2),
		retI(),
	}
	if got := copyPropagate(k); got != 0 {
		t.Fatalf("rewrote %d operands after a branch, want 0:\n%s", got, k.Disassemble())
	}
}

// TestCopyPropJoinIsLeader: the reconvergence point (Join) starts a block
// too, even when it differs from Target.
func TestCopyPropJoinIsLeader(t *testing.T) {
	k := &ptx.Kernel{Name: "jl", Toolchain: "cuda", NumRegs: 8}
	bra := ptx.NewInstruction(ptx.OpBra)
	bra.GuardPred = 5
	bra.Target = 3
	bra.Join = 4 // distinct join point
	k.Instrs = []ptx.Instruction{
		bra,
		movRR(1, 0), // fall-through block
		addRRR(2, 1, 1), // same block: forwarded
		movRI(6, 9),     // Target block: leader (clears table)
		addRRR(7, 1, 1), // Join block: leader again — r1 must survive
		stG(3, 7),
		retI(),
	}
	if got := copyPropagate(k); got != 2 {
		t.Fatalf("rewrote %d operands, want 2 (only inside the fall-through block):\n%s",
			got, k.Disassemble())
	}
	if k.Instrs[2].Src[0].Reg != 0 {
		t.Errorf("in-block use not forwarded:\n%s", k.Disassemble())
	}
	if k.Instrs[4].Src[0].Reg != 1 {
		t.Errorf("use in the join block must keep r1:\n%s", k.Disassemble())
	}
}

// TestCopyPropInvalidatedByRedefinition: redefining either side of a
// recorded copy kills it.
func TestCopyPropInvalidatedByRedefinition(t *testing.T) {
	// Case 1: the destination is redefined. The stale r1->r0 copy must die;
	// the fresh r1->42 copy is the one that may be forwarded.
	k := &ptx.Kernel{Name: "rd", Toolchain: "cuda", NumRegs: 8}
	k.Instrs = []ptx.Instruction{
		movRR(1, 0),
		movRI(1, 42), // r1 redefined: r1->r0 must die, r1->42 recorded
		addRRR(2, 1, 1),
		stG(3, 2),
		retI(),
	}
	copyPropagate(k)
	add := k.Instrs[2]
	if !add.Src[0].IsImm && add.Src[0].Reg == 0 {
		t.Errorf("stale copy r1->r0 used after destination redefinition:\n%s", k.Disassemble())
	}
	if !add.Src[0].IsImm || add.Src[0].Imm != 42 {
		t.Errorf("fresh copy r1->42 not forwarded:\n%s", k.Disassemble())
	}

	// Case 2: the source is redefined.
	k2 := &ptx.Kernel{Name: "rs", Toolchain: "cuda", NumRegs: 8}
	k2.Instrs = []ptx.Instruction{
		movRR(1, 0),
		movRI(0, 42), // r0 redefined: forwarding r1->r0 now wrong
		addRRR(2, 1, 1),
		stG(3, 2),
		retI(),
	}
	copyPropagate(k2)
	if k2.Instrs[2].Src[0].Reg != 1 {
		t.Errorf("stale copy used after source redefinition:\n%s", k2.Disassemble())
	}
}

// TestCopyPropSelpPredicateSlot: selp's third operand is architecturally a
// predicate register; an immediate copy must not be forwarded into it, but
// a register-to-register copy may.
func TestCopyPropSelpPredicateSlot(t *testing.T) {
	mkSelp := func(pred ptx.Reg) ptx.Instruction {
		in := ptx.NewInstruction(ptx.OpSelp)
		in.Typ = ptx.U32
		in.Dst = 2
		in.Src[0] = ptx.ImmU(1)
		in.Src[1] = ptx.ImmU(0)
		in.Src[2] = ptx.R(pred)
		return in
	}

	// Immediate copy: must NOT enter the predicate slot.
	k := &ptx.Kernel{Name: "sp", Toolchain: "opencl", NumRegs: 8}
	k.Instrs = []ptx.Instruction{
		movRI(4, 1), // r4 = imm 1
		mkSelp(4),
		stG(3, 2),
		retI(),
	}
	copyPropagate(k)
	selp := k.Instrs[1]
	if selp.Src[2].IsImm {
		t.Errorf("immediate forwarded into selp predicate slot:\n%s", k.Disassemble())
	}
	if selp.Src[2].Reg != 4 {
		t.Errorf("selp predicate changed to r%d, want r4:\n%s", selp.Src[2].Reg, k.Disassemble())
	}

	// Register copy: fine to forward.
	k2 := &ptx.Kernel{Name: "sr", Toolchain: "opencl", NumRegs: 8}
	k2.Instrs = []ptx.Instruction{
		movRR(4, 5), // r4 = r5
		mkSelp(4),
		stG(3, 2),
		retI(),
	}
	copyPropagate(k2)
	if got := k2.Instrs[1].Src[2].Reg; got != 5 {
		t.Errorf("register copy not forwarded into selp predicate: r%d, want r5:\n%s",
			got, k2.Disassemble())
	}
}

// TestCopyPropSkipsGuardedMov: a predicated mov only writes active lanes,
// so it is not a full copy and must not be recorded — but it still kills
// any previous copy of its destination.
func TestCopyPropSkipsGuardedMov(t *testing.T) {
	k := &ptx.Kernel{Name: "gm", Toolchain: "cuda", NumRegs: 8}
	gmov := movRR(1, 0)
	gmov.GuardPred = 6
	k.Instrs = []ptx.Instruction{
		movRR(1, 4), // full copy r1=r4
		gmov,        // partial overwrite: r1 no longer equals r4 everywhere
		addRRR(2, 1, 1),
		stG(3, 2),
		retI(),
	}
	copyPropagate(k)
	add := k.Instrs[2]
	if add.Src[0].Reg != 1 || add.Src[1].Reg != 1 {
		t.Errorf("guarded mov treated as a full copy:\n%s", k.Disassemble())
	}
}

// TestCopyPropRewritesGuards: guard predicates are uses too; a copy of a
// predicate register is forwarded into the guard slot.
func TestCopyPropRewritesGuards(t *testing.T) {
	k := &ptx.Kernel{Name: "gp", Toolchain: "cuda", NumRegs: 8}
	guarded := addRRR(2, 3, 3)
	guarded.GuardPred = 1
	k.Instrs = []ptx.Instruction{
		movRR(1, 0), // r1 = r0 (predicate copy)
		guarded,     // @p1 add — guard should become p0
		stG(3, 2),
		retI(),
	}
	if got := copyPropagate(k); got != 1 {
		t.Fatalf("rewrote %d operands, want 1 (the guard):\n%s", got, k.Disassemble())
	}
	if k.Instrs[1].GuardPred != 0 {
		t.Errorf("guard not forwarded: p%d, want p0:\n%s", k.Instrs[1].GuardPred, k.Disassemble())
	}
}

// TestCopyPropChainThenDCE: the canonical pipeline interaction — copy-prop
// makes the movs dead, dce deletes them, and the paper's "mov-heavy PTX is
// free after the back-end" claim holds.
func TestCopyPropChainThenDCE(t *testing.T) {
	k := &ptx.Kernel{Name: "ch", Toolchain: "cuda", NumRegs: 8}
	k.Instrs = []ptx.Instruction{
		movRR(1, 0),
		movRR(2, 1), // chain: r2 = r1 = r0
		addRRR(3, 2, 2),
		stG(4, 3),
		retI(),
	}
	Optimize(k)
	if n := len(k.Instrs); n != 3 {
		t.Errorf("mov chain not fully eliminated, %d instrs left:\n%s", n, k.Disassemble())
	}
	if got := k.Instrs[0].Src[0].Reg; k.Instrs[0].Op != ptx.OpAdd || got != 0 {
		t.Errorf("chained copy not fully forwarded to r0:\n%s", k.Disassemble())
	}
}
