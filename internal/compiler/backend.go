package compiler

import "gpucmp/internal/ptx"

// copyPropagate forwards register-to-register mov sources into later uses
// within each basic block, after which dead-code elimination removes the
// movs themselves. This models the register-allocation phase of the real
// back end: the mov-heavy PTX that NVOPENCC emits (Table V) does not cost
// issue slots in the final machine code. It returns the number of operands
// (sources and guard predicates) rewritten.
func copyPropagate(k *ptx.Kernel) int {
	n := len(k.Instrs)
	if n == 0 {
		return 0
	}
	// Basic-block boundaries: branch targets and instructions after
	// branches end the propagation window.
	leader := make([]bool, n+1)
	for i := range k.Instrs {
		if k.Instrs[i].Op == ptx.OpBra {
			leader[k.Instrs[i].Target] = true
			leader[k.Instrs[i].Join] = true
			if i+1 <= n {
				leader[i+1] = true
			}
		}
	}
	copies := make(map[ptx.Reg]ptx.Operand)
	invalidate := func(r ptx.Reg) {
		delete(copies, r)
		for dst, src := range copies {
			if !src.IsImm && !src.IsSpec && src.Reg == r {
				delete(copies, dst)
			}
		}
	}
	rewritten := 0
	for i := range k.Instrs {
		if leader[i] {
			copies = make(map[ptx.Reg]ptx.Operand)
		}
		in := &k.Instrs[i]
		// Rewrite sources through known copies.
		for s := range in.Src {
			op := in.Src[s]
			if !op.IsImm && !op.IsSpec && op.Reg != ptx.NoReg {
				if src, ok := copies[op.Reg]; ok {
					// selp's predicate slot must stay a register.
					if in.Op == ptx.OpSelp && s == 2 && (src.IsImm || src.IsSpec) {
						continue
					}
					in.Src[s] = src
					rewritten++
				}
			}
		}
		if in.GuardPred != ptx.NoReg {
			if src, ok := copies[in.GuardPred]; ok && !src.IsImm && !src.IsSpec {
				in.GuardPred = src.Reg
				rewritten++
			}
		}
		if in.Dst != ptx.NoReg {
			invalidate(in.Dst)
			// A guarded mov only overwrites active lanes; it is not a
			// full copy, so do not propagate it.
			if in.Op == ptx.OpMov && in.GuardPred == ptx.NoReg {
				copies[in.Dst] = in.Src[0]
			}
		}
	}
	return rewritten
}

// hasSideEffect reports whether an instruction must be preserved regardless
// of whether its destination is read.
func hasSideEffect(in *ptx.Instruction) bool {
	switch in.Op {
	case ptx.OpSt, ptx.OpBra, ptx.OpBar, ptx.OpRet, ptx.OpAtom:
		return true
	}
	return false
}

func readsOf(in *ptx.Instruction, mark func(ptx.Reg)) {
	for _, s := range in.Src {
		if !s.IsImm && !s.IsSpec && s.Reg != ptx.NoReg {
			mark(s.Reg)
		}
	}
	if in.GuardPred != ptx.NoReg {
		mark(in.GuardPred)
	}
}

// deadCodeEliminate removes side-effect-free instructions whose destination
// register is never read anywhere in the kernel, iterating to a fixpoint,
// then compacts the instruction stream and remaps branch targets. It
// returns the number of instructions removed.
func deadCodeEliminate(k *ptx.Kernel) int {
	n := len(k.Instrs)
	dead := make([]bool, n)
	for {
		used := make([]bool, k.NumRegs)
		for i := range k.Instrs {
			if dead[i] {
				continue
			}
			readsOf(&k.Instrs[i], func(r ptx.Reg) {
				if int(r) < len(used) {
					used[r] = true
				}
			})
		}
		changed := false
		for i := range k.Instrs {
			in := &k.Instrs[i]
			if dead[i] || hasSideEffect(in) || in.Dst == ptx.NoReg {
				continue
			}
			if int(in.Dst) < len(used) && !used[in.Dst] {
				dead[i] = true
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return compact(k, dead)
}

// compact removes instructions marked dead and remaps Target/Join indices.
// A target pointing at a removed instruction is redirected to the next kept
// one (or the end). It returns the number of instructions removed.
func compact(k *ptx.Kernel, dead []bool) int {
	n := len(k.Instrs)
	// newIndex[i] = number of kept instructions strictly before i.
	newIndex := make([]int, n+1)
	cnt := 0
	for i := 0; i < n; i++ {
		newIndex[i] = cnt
		if !dead[i] {
			cnt++
		}
	}
	newIndex[n] = cnt

	out := make([]ptx.Instruction, 0, cnt)
	for i := 0; i < n; i++ {
		if dead[i] {
			continue
		}
		in := k.Instrs[i]
		if in.Op == ptx.OpBra {
			in.Target = newIndex[in.Target]
			in.Join = newIndex[in.Join]
		}
		out = append(out, in)
	}
	removed := len(k.Instrs) - len(out)
	k.Instrs = out
	return removed
}

// fuseMulAdd rewrites adjacent mul+add pairs into a single mad (integer) or
// fma (float) when the intermediate register has exactly one use, the pair
// is not split by a branch target, and both carry the same guard. It
// returns the number of pairs fused.
func fuseMulAdd(k *ptx.Kernel) int {
	n := len(k.Instrs)
	if n == 0 {
		return 0
	}
	isTarget := make([]bool, n+1)
	for i := range k.Instrs {
		in := &k.Instrs[i]
		if in.Op == ptx.OpBra {
			isTarget[in.Target] = true
			isTarget[in.Join] = true
		}
	}
	// deadAfter reports whether register t has no further uses after
	// instruction j before being redefined. Registers are recycled, so
	// liveness must be scanned per definition; a basic-block boundary
	// before the redefinition is treated conservatively as live.
	deadAfter := func(t ptx.Reg, j int) bool {
		for p := j + 1; p < n; p++ {
			if isTarget[p] || k.Instrs[p].Op == ptx.OpBra {
				return false
			}
			used := false
			readsOf(&k.Instrs[p], func(r ptx.Reg) {
				if r == t {
					used = true
				}
			})
			if used {
				return false
			}
			if k.Instrs[p].Dst == t {
				return true
			}
		}
		return true
	}

	dead := make([]bool, n)
	for i := 0; i+1 < n; i++ {
		mul := &k.Instrs[i]
		add := &k.Instrs[i+1]
		if mul.Op != ptx.OpMul || add.Op != ptx.OpAdd || isTarget[i+1] {
			continue
		}
		if mul.Typ != add.Typ || mul.GuardPred != add.GuardPred || mul.GuardNeg != add.GuardNeg {
			continue
		}
		t := mul.Dst
		if t == ptx.NoReg || !deadAfter(t, i+1) {
			continue
		}
		var other ptx.Operand
		if !add.Src[0].IsImm && !add.Src[0].IsSpec && add.Src[0].Reg == t {
			other = add.Src[1]
		} else if !add.Src[1].IsImm && !add.Src[1].IsSpec && add.Src[1].Reg == t {
			other = add.Src[0]
		} else {
			continue
		}
		// The accumulator operand must not be the intermediate itself.
		if !other.IsImm && !other.IsSpec && other.Reg == t {
			continue
		}
		op := ptx.OpMad
		if mul.Typ == ptx.F32 {
			op = ptx.OpFma
		}
		fused := *add
		fused.Op = op
		fused.Src[0] = mul.Src[0]
		fused.Src[1] = mul.Src[1]
		fused.Src[2] = other
		k.Instrs[i+1] = fused
		dead[i] = true
	}
	return compact(k, dead)
}
