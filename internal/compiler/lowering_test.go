package compiler

import (
	"testing"

	"gpucmp/internal/arch"
	"gpucmp/internal/kir"
	"gpucmp/internal/ptx"
	"gpucmp/internal/sim"
)

// TestAtomicLowering compiles and executes atomics with a result binding.
func TestAtomicLowering(t *testing.T) {
	b := kir.NewKernel("ticket")
	ctr := b.GlobalBuffer("ctr", kir.U32)
	out := b.GlobalBuffer("out", kir.U32)
	gid := b.Declare("gid", b.GlobalIDX())
	old := b.Declare("old", kir.U(0))
	b.AtomicResult(ctr, kir.U(0), kir.AtomicAdd, kir.U(1), old)
	b.Store(out, gid, old)
	k := b.MustBuild()

	for _, p := range []Personality{CUDA(), OpenCL()} {
		pk, err := Compile(k, p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if pk.StaticStats().Get(ptx.OpAtom, ptx.SpaceGlobal) != 1 {
			t.Fatalf("%s: expected one global atomic:\n%s", p.Name, pk.Disassemble())
		}
		dev, err := sim.NewDevice(arch.GTX480())
		if err != nil {
			t.Fatal(err)
		}
		ctrAddr, _ := dev.Global.Alloc(4)
		outAddr, _ := dev.Global.Alloc(4 * 64)
		if _, err := dev.Launch(pk, sim.Dim3{X: 1, Y: 1}, sim.Dim3{X: 64, Y: 1},
			[]uint32{ctrAddr, outAddr}); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		// Every thread must have received a distinct ticket in [0, 64).
		got := make([]uint32, 64)
		if err := dev.Global.ReadWords(outAddr, got); err != nil {
			t.Fatal(err)
		}
		seen := map[uint32]bool{}
		for _, v := range got {
			if v >= 64 || seen[v] {
				t.Fatalf("%s: tickets not a permutation: %v", p.Name, got)
			}
			seen[v] = true
		}
	}
}

// TestUncachedParamPersonality keeps the reload-per-use argument style
// working (a valid configuration even though neither stock personality
// uses it any more).
func TestUncachedParamPersonality(t *testing.T) {
	p := OpenCL()
	p.CacheParams = false
	b := kir.NewKernel("u")
	out := b.GlobalBuffer("out", kir.U32)
	n := b.ScalarParam("n", kir.U32)
	gid := b.Declare("gid", b.GlobalIDX())
	b.Store(out, gid, kir.Add(kir.Add(n, n), n))
	k := b.MustBuild()
	pk, err := Compile(k, p)
	if err != nil {
		t.Fatal(err)
	}
	// n is referenced three times -> at least three constant-bank loads
	// beyond the pointer parameter (CSE may not cache loads it reloads).
	if got := pk.FrontEndStats.Get(ptx.OpLd, ptx.SpaceConst); got < 2 {
		t.Errorf("expected per-use ld.const, got %d:\n%s", got, pk.Disassemble())
	}
	dev, _ := sim.NewDevice(arch.GTX480())
	addr, _ := dev.Global.Alloc(4 * 32)
	if _, err := dev.Launch(pk, sim.Dim3{X: 1, Y: 1}, sim.Dim3{X: 32, Y: 1}, []uint32{addr, 5}); err != nil {
		t.Fatal(err)
	}
	var got [1]uint32
	if err := dev.Global.ReadWords(addr, got[:]); err != nil {
		t.Fatal(err)
	}
	if got[0] != 15 {
		t.Errorf("out = %d, want 15", got[0])
	}
}

// TestConstantFolding covers the folding table.
func TestConstantFolding(t *testing.T) {
	cases := []struct {
		op   kir.BinOp
		a, b uint32
		want uint32
		ok   bool
	}{
		{kir.OpAdd, 3, 4, 7, true},
		{kir.OpSub, 3, 4, 0xffffffff, true},
		{kir.OpMul, 5, 6, 30, true},
		{kir.OpDiv, 20, 4, 5, true},
		{kir.OpDiv, 20, 0, 0, false},
		{kir.OpRem, 20, 6, 2, true},
		{kir.OpRem, 20, 0, 0, false},
		{kir.OpAnd, 0xff, 0x0f, 0x0f, true},
		{kir.OpOr, 0xf0, 0x0f, 0xff, true},
		{kir.OpXor, 0xff, 0x0f, 0xf0, true},
		{kir.OpShl, 1, 4, 16, true},
		{kir.OpShr, 16, 4, 1, true},
		{kir.OpMin, 3, 9, 3, true},
		{kir.OpMax, 3, 9, 9, true},
	}
	for _, tc := range cases {
		got, ok := foldConst(tc.op, &kir.ConstInt{T: kir.U32, V: int64(tc.a)}, &kir.ConstInt{T: kir.U32, V: int64(tc.b)})
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("fold %v(%d,%d) = %d,%v; want %d,%v", tc.op, tc.a, tc.b, got, ok, tc.want, tc.ok)
		}
	}
	// Signed cases.
	if v, ok := foldConst(kir.OpDiv, &kir.ConstInt{T: kir.I32, V: -20}, &kir.ConstInt{T: kir.I32, V: 4}); !ok || int32(v) != -5 {
		t.Errorf("signed div = %d, %v", int32(v), ok)
	}
	if v, ok := foldConst(kir.OpShr, &kir.ConstInt{T: kir.I32, V: -16}, &kir.ConstInt{T: kir.I32, V: 2}); !ok || int32(v) != -4 {
		t.Errorf("arithmetic shift = %d, %v", int32(v), ok)
	}
	if v, ok := foldConst(kir.OpMin, &kir.ConstInt{T: kir.I32, V: -3}, &kir.ConstInt{T: kir.I32, V: 2}); !ok || int32(v) != -3 {
		t.Errorf("signed min = %d, %v", int32(v), ok)
	}
	if v, ok := foldConst(kir.OpMax, &kir.ConstInt{T: kir.I32, V: -3}, &kir.ConstInt{T: kir.I32, V: 2}); !ok || int32(v) != 2 {
		t.Errorf("signed max = %d, %v", int32(v), ok)
	}
}

// TestHasLoadAndMutatesLimit covers the unroll-safety analysis.
func TestHasLoadAndMutatesLimit(t *testing.T) {
	ld := &kir.Load{Buf: "x", Index: kir.U(0), T: kir.U32}
	if !hasLoad(kir.Add(kir.U(1), ld)) {
		t.Error("load under add not detected")
	}
	if !hasLoad(kir.Select(kir.Lt(kir.U(0), kir.U(1)), ld, kir.U(0))) {
		t.Error("load under select not detected")
	}
	if !hasLoad(kir.CastTo(kir.F32, ld)) || !hasLoad(kir.Neg(ld)) {
		t.Error("load under cast/unary not detected")
	}
	if hasLoad(kir.Add(kir.U(1), kir.U(2))) {
		t.Error("false positive")
	}

	body := []kir.Stmt{&kir.AssignStmt{Name: "lim", Value: kir.U(0)}}
	s := &kir.ForStmt{Var: "i", T: kir.U32, Init: kir.U(0),
		Limit: &kir.VarRef{Name: "lim", T: kir.U32}, Step: kir.U(1), Body: body}
	if !bodyMutatesLimit(s) {
		t.Error("limit mutation not detected")
	}
	s.Limit = kir.U(10)
	if bodyMutatesLimit(s) {
		t.Error("false mutation positive")
	}
	s.Limit = ld
	if !bodyMutatesLimit(s) {
		t.Error("memory-dependent limit should be treated as mutable")
	}
}

// TestMovToRegViaImmediateSelect exercises the predicate-materialisation
// path (select with a literal condition survives constant folding of the
// comparison only when the condition is opaque).
func TestMovToRegViaImmediateSelect(t *testing.T) {
	b := kir.NewKernel("selimm")
	out := b.GlobalBuffer("out", kir.U32)
	n := b.ScalarParam("n", kir.U32)
	gid := b.Declare("gid", b.GlobalIDX())
	// The condition lowers to a setp register; exercise selp both ways.
	v := kir.Select(kir.Gt(n, kir.U(10)), kir.U(111), kir.U(222))
	b.Store(out, gid, v)
	k := b.MustBuild()
	for _, p := range []Personality{CUDA(), OpenCL()} {
		pk, err := Compile(k, p)
		if err != nil {
			t.Fatal(err)
		}
		dev, _ := sim.NewDevice(arch.GTX480())
		addr, _ := dev.Global.Alloc(4 * 32)
		for _, tc := range []struct{ n, want uint32 }{{5, 222}, {50, 111}} {
			if _, err := dev.Launch(pk, sim.Dim3{X: 1, Y: 1}, sim.Dim3{X: 32, Y: 1}, []uint32{addr, tc.n}); err != nil {
				t.Fatal(err)
			}
			var got [1]uint32
			if err := dev.Global.ReadWords(addr, got[:]); err != nil {
				t.Fatal(err)
			}
			if got[0] != tc.want {
				t.Errorf("%s: n=%d -> %d, want %d", p.Name, tc.n, got[0], tc.want)
			}
		}
	}
}
