package compiler

import (
	"fmt"
	"strings"

	"gpucmp/internal/ptx"
)

// Pass is one named unit of the shared second-stage compiler (PTXAS in the
// paper's development flow, step 6). Each pass is individually runnable,
// reports what it did through Counters, and can be left out of a Pipeline
// — which is what turns the paper's Section-V "port the optimisation
// across and re-measure" experiments into an API, and what lets the fuzz
// oracle pin a miscompile to one pass by rerunning with each disabled.
type Pass struct {
	Name        string
	Description string
	// Run transforms the kernel in place and reports its work counters.
	// rem may be nil.
	Run func(k *ptx.Kernel, rem *Remarks) Counters
}

// Counters is the pass-specific work tally a Pass reports; the pipeline
// driver wraps it with before/after instruction and register counts into a
// ptx.PassStat.
type Counters struct {
	Removed   int // instructions deleted
	Rewritten int // operands forwarded / instructions rewritten
	Fused     int // instruction pairs combined
}

// The three back-end passes, in their canonical order.
const (
	PassCopyProp = "copy-prop"
	PassDCE      = "dce"
	PassMadFuse  = "mad-fuse"
)

// CopyPropagationPass forwards register-to-register movs into later uses
// within each basic block.
func CopyPropagationPass() Pass {
	return Pass{
		Name:        PassCopyProp,
		Description: "forward mov sources into later uses within each basic block",
		Run: func(k *ptx.Kernel, rem *Remarks) Counters {
			n := copyPropagate(k)
			if n > 0 {
				rem.Addf(PassCopyProp, "forwarded %d mov source(s) into later uses", n)
			}
			return Counters{Rewritten: n}
		},
	}
}

// DeadCodeEliminationPass removes side-effect-free instructions whose
// results are never read, iterating to a fixpoint.
func DeadCodeEliminationPass() Pass {
	return Pass{
		Name:        PassDCE,
		Description: "remove side-effect-free instructions whose results are never read",
		Run: func(k *ptx.Kernel, rem *Remarks) Counters {
			n := deadCodeEliminate(k)
			if n > 0 {
				rem.Addf(PassDCE, "removed %d dead instruction(s)", n)
			}
			return Counters{Removed: n}
		},
	}
}

// MulAddFusionPass rewrites adjacent mul+add pairs into mad/fma.
func MulAddFusionPass() Pass {
	return Pass{
		Name:        PassMadFuse,
		Description: "fuse adjacent mul+add pairs into a single mad/fma",
		Run: func(k *ptx.Kernel, rem *Remarks) Counters {
			n := fuseMulAdd(k)
			if n > 0 {
				rem.Addf(PassMadFuse, "fused %d mul+add pair(s) into mad/fma", n)
			}
			return Counters{Fused: n, Removed: n}
		},
	}
}

// DefaultPasses returns the standard back-end pipeline in order:
// copy propagation, dead-code elimination, mul+add fusion.
func DefaultPasses() []Pass {
	return []Pass{CopyPropagationPass(), DeadCodeEliminationPass(), MulAddFusionPass()}
}

// DefaultPassNames returns the names of the standard pipeline, in order.
func DefaultPassNames() []string { return PassNames(DefaultPasses()) }

// PassNames extracts the name list of a pipeline.
func PassNames(ps []Pass) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}

// PassesByName resolves names against the standard pass registry,
// preserving the requested order (which is also the execution order).
func PassesByName(names []string) ([]Pass, error) {
	reg := make(map[string]Pass)
	for _, p := range DefaultPasses() {
		reg[p.Name] = p
	}
	out := make([]Pass, 0, len(names))
	for _, n := range names {
		p, ok := reg[n]
		if !ok {
			return nil, fmt.Errorf("compiler: unknown pass %q (known: %s)",
				n, strings.Join(DefaultPassNames(), ", "))
		}
		out = append(out, p)
	}
	return out, nil
}

// WithoutPass returns the pipeline minus every pass of the given name.
func WithoutPass(ps []Pass, name string) []Pass {
	out := make([]Pass, 0, len(ps))
	for _, p := range ps {
		if p.Name != name {
			out = append(out, p)
		}
	}
	return out
}

// Pipeline runs an ordered list of passes over one kernel. In Debug mode
// the kernel's structural invariants are re-validated after every pass, so
// a pass that corrupts branch targets or register numbering is caught at
// its own doorstep instead of surfacing as a simulator fault three layers
// later.
type Pipeline struct {
	Passes []Pass
	Debug  bool
	// Observer, when set, receives the full before/after instruction
	// census of every pass (used by cmd/ptxstat's per-pass mode). It runs
	// on the compiling goroutine.
	Observer func(pass Pass, before, after *ptx.Stats)
}

// Run executes the pipeline over k, attaching nothing: the per-pass stats
// are returned and the caller decides where they live (Compile puts them
// on the kernel). The only error source is Debug-mode validation.
func (pl Pipeline) Run(k *ptx.Kernel, rem *Remarks) ([]ptx.PassStat, error) {
	stats := make([]ptx.PassStat, 0, len(pl.Passes))
	for _, p := range pl.Passes {
		var before *ptx.Stats
		if pl.Observer != nil {
			before = k.StaticStats()
		}
		st := ptx.PassStat{
			Pass:         p.Name,
			InstrsBefore: len(k.Instrs),
			RegsBefore:   k.UsedRegs(),
		}
		c := p.Run(k, rem)
		st.InstrsAfter = len(k.Instrs)
		st.RegsAfter = k.UsedRegs()
		st.Removed, st.Rewritten, st.Fused = c.Removed, c.Rewritten, c.Fused
		stats = append(stats, st)
		if pl.Observer != nil {
			pl.Observer(p, before, k.StaticStats())
		}
		if pl.Debug {
			if err := k.Validate(); err != nil {
				return stats, fmt.Errorf("compiler: pass %q broke kernel invariants: %w", p.Name, err)
			}
		}
	}
	return stats, nil
}

// Optimize is the shared second-stage compiler with the default pipeline:
// copy propagation, dead-code elimination, then mul+add fusion into
// mad/fma. Both toolchains run it, mirroring the paper's observation that
// the back-end is common while the front-ends differ. The per-pass stats
// are recorded on the kernel.
func Optimize(k *ptx.Kernel) {
	stats, _ := Pipeline{Passes: DefaultPasses()}.Run(k, nil) // no Debug: cannot error
	k.PassStats = stats
}
