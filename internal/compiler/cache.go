package compiler

import (
	"fmt"
	"sync"

	"gpucmp/internal/kir"
	"gpucmp/internal/ptx"
)

// The compile cache memoises KIR→PTX lowering per kernel×personality, so a
// kernel is compiled once per front-end instead of once per launch. The
// paper's workload is a matrix of repeated identical configurations — every
// figure regenerates the same dozen kernels hundreds of times — and under
// the concurrent scheduler the same kernel is requested from many workers
// at once, so the cache both deduplicates the work (each key is compiled
// exactly once, concurrent requesters wait for the first) and shares the
// result.
//
// Sharing is sound because a *ptx.Kernel is immutable once Compile returns:
// the simulator and both runtimes only read Instrs/Params/footprints.
// The key is the kernel's canonical source form (kir.Format, which includes
// unroll pragmas) plus the warp-width assumption plus every personality
// field, so distinct Config-driven kernel variants never collide.

type compileKey struct {
	personality string
	source      string
}

type compileEntry struct {
	once sync.Once
	k    *ptx.Kernel
	err  error
}

var (
	compileMu    sync.Mutex
	compileCache = make(map[compileKey]*compileEntry)
	compileHits  uint64
	compileMiss  uint64
)

func keyFor(k *kir.Kernel, p Personality) compileKey {
	return compileKey{
		// Personality is a flat struct of scalars; %+v is a total encoding.
		personality: fmt.Sprintf("%+v", p),
		source:      fmt.Sprintf("warp=%d\n%s", k.WarpWidthAssumption, kir.Format(k)),
	}
}

// CompileCached is Compile behind the process-wide compile cache.
func CompileCached(k *kir.Kernel, p Personality) (*ptx.Kernel, error) {
	key := keyFor(k, p)
	compileMu.Lock()
	e, ok := compileCache[key]
	if !ok {
		e = &compileEntry{}
		compileCache[key] = e
		compileMiss++
	} else {
		compileHits++
	}
	compileMu.Unlock()
	e.once.Do(func() { e.k, e.err = Compile(k, p) })
	return e.k, e.err
}

// CompileModuleCached lowers several kernels into one fresh module, each
// kernel served from the compile cache.
func CompileModuleCached(name string, kernels []*kir.Kernel, p Personality) (*ptx.Module, error) {
	m := ptx.NewModule(name)
	for _, k := range kernels {
		pk, err := CompileCached(k, p)
		if err != nil {
			return nil, err
		}
		m.Add(pk)
	}
	return m, nil
}

// CompileCacheStats returns the hit/miss counters (for /metrics).
func CompileCacheStats() (hits, misses uint64) {
	compileMu.Lock()
	defer compileMu.Unlock()
	return compileHits, compileMiss
}

// ResetCompileCache empties the cache and zeroes the counters (tests).
func ResetCompileCache() {
	compileMu.Lock()
	defer compileMu.Unlock()
	compileCache = make(map[compileKey]*compileEntry)
	compileHits, compileMiss = 0, 0
}
