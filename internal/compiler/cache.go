package compiler

import (
	"fmt"
	"strings"
	"sync"

	"gpucmp/internal/kir"
	"gpucmp/internal/ptx"
)

// The compile cache memoises KIR→PTX lowering per kernel×personality, so a
// kernel is compiled once per front-end instead of once per launch. The
// paper's workload is a matrix of repeated identical configurations — every
// figure regenerates the same dozen kernels hundreds of times — and under
// the concurrent scheduler the same kernel is requested from many workers
// at once, so the cache both deduplicates the work (each key is compiled
// exactly once, concurrent requesters wait for the first) and shares the
// result.
//
// Sharing is sound because a *ptx.Kernel is immutable once Compile returns:
// the simulator and both runtimes only read Instrs/Params/footprints
// (including the attached PassStats and Remarks).
// The key is the kernel's canonical source form (kir.Format, which includes
// unroll pragmas) plus the warp-width assumption plus the full compile
// configuration — every personality field by name (Personality.Canonical)
// and the back-end pass pipeline — so distinct kernel variants, ablated
// personalities and reduced pipelines never collide.

type compileKey struct {
	config string
	source string
}

type compileEntry struct {
	once sync.Once
	k    *ptx.Kernel
	err  error
}

var (
	compileMu    sync.Mutex
	compileCache = make(map[compileKey]*compileEntry)
	compileHits  uint64
	compileMiss  uint64
)

// CanonicalKey renders the cacheable identity of a Config: the canonical
// personality encoding, the ordered pass-name list, and the debug flag.
// Pass identity is the name — a custom Pass that shadows a standard name
// with different behaviour must not be used with the cached entry points.
func (c Config) CanonicalKey() string {
	return fmt.Sprintf("%s|passes=%s|debug=%t",
		c.Personality.Canonical(), strings.Join(PassNames(c.passes()), ","), c.Debug)
}

func keyFor(k *kir.Kernel, cfg Config) compileKey {
	return compileKey{
		config: cfg.CanonicalKey(),
		source: fmt.Sprintf("warp=%d\n%s", k.WarpWidthAssumption, kir.Format(k)),
	}
}

// CompileCached is Compile behind the process-wide compile cache.
func CompileCached(k *kir.Kernel, p Personality) (*ptx.Kernel, error) {
	return CompileCachedConfig(k, Config{Personality: p})
}

// CompileCachedConfig is CompileWithConfig behind the process-wide compile
// cache. Observed compiles are refused: the observer would only fire on
// the miss, making instrumentation appear and vanish with cache state.
func CompileCachedConfig(k *kir.Kernel, cfg Config) (*ptx.Kernel, error) {
	if cfg.Observer != nil {
		return nil, fmt.Errorf("compiler: CompileCachedConfig: Observer is not cacheable; use CompileWithConfig")
	}
	key := keyFor(k, cfg)
	compileMu.Lock()
	e, ok := compileCache[key]
	if !ok {
		e = &compileEntry{}
		compileCache[key] = e
		compileMiss++
	} else {
		compileHits++
	}
	compileMu.Unlock()
	e.once.Do(func() { e.k, e.err = CompileWithConfig(k, cfg) })
	return e.k, e.err
}

// CompileModuleCached lowers several kernels into one fresh module, each
// kernel served from the compile cache.
func CompileModuleCached(name string, kernels []*kir.Kernel, p Personality) (*ptx.Module, error) {
	m := ptx.NewModule(name)
	for _, k := range kernels {
		pk, err := CompileCached(k, p)
		if err != nil {
			return nil, err
		}
		m.Add(pk)
	}
	return m, nil
}

// CompileCacheStats returns the hit/miss counters (for /metrics).
func CompileCacheStats() (hits, misses uint64) {
	compileMu.Lock()
	defer compileMu.Unlock()
	return compileHits, compileMiss
}

// ResetCompileCache empties the cache and zeroes the counters (tests).
func ResetCompileCache() {
	compileMu.Lock()
	defer compileMu.Unlock()
	compileCache = make(map[compileKey]*compileEntry)
	compileHits, compileMiss = 0, 0
}
