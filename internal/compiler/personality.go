// Package compiler lowers kernels from the kernel IR (internal/kir) to the
// PTX-like ISA (internal/ptx). One shared lowering core is parameterised by
// a Personality that captures how the paper's two first-stage compilers
// differ (Section IV-B4 and Table V):
//
//   - NVOPENCC (the CUDA front-end, mature): caches kernel parameters in
//     registers at entry, performs value-numbering CSE, predicates small
//     if-bodies with guard predicates instead of branching, automatically
//     and fully unrolls small constant-trip loops, and moves named values
//     through explicit register copies — producing the mov-heavy,
//     control-flow-free PTX the paper measured.
//
//   - The OpenCL front-end (younger): keeps kernel arguments in the
//     constant bank and reloads them at each use, performs no CSE (every
//     addressing expression is recomputed), strength-reduces
//     multiplications/divisions/remainders by powers of two into
//     shifts and masks, if-converts pure conditionals into setp+selp
//     chains, and only unrolls loops when the source carries a pragma —
//     producing the shift/flow-control-heavy PTX the paper measured.
//
// The shared back-end (PTXAS in the paper's step 6) runs dead-code
// elimination and mul+add fusion on both toolchains' output.
package compiler

import (
	"fmt"

	"gpucmp/internal/ptx"
)

// Personality captures one front-end's code-generation behaviour.
type Personality struct {
	// Name tags generated kernels ("cuda" or "opencl").
	Name string

	// ParamSpace is where kernel arguments live: ptx.SpaceParam for CUDA,
	// ptx.SpaceConst for OpenCL.
	ParamSpace ptx.Space

	// CacheParams loads every argument once at kernel entry into a pinned
	// register. Both front-ends do this; they differ in the space the
	// arguments are fetched from (ParamSpace).
	CacheParams bool

	// CSE enables value-numbering common-subexpression elimination.
	CSE bool

	// MaxCSERegs bounds how many registers live CSE entries may pin at
	// once; the oldest entries are evicted (rematerialised on reuse) once
	// the bound is hit, modelling register-pressure-aware CSE.
	MaxCSERegs int

	// StrengthReduce rewrites mul/div/rem by powers of two into
	// shl/shr/and.
	StrengthReduce bool

	// MovCopies binds named variables by copying through an explicit mov
	// (the register-allocation style visible in NVOPENCC output).
	MovCopies bool

	// GuardSmallIf predicates small branch-free if-bodies with a guard
	// predicate (no bra emitted). MaxGuardInstrs bounds the body size.
	GuardSmallIf   bool
	MaxGuardInstrs int

	// SelpPureIf converts if-bodies consisting only of scalar assignments
	// into setp+selp chains. MaxSelpAssigns bounds the number of
	// assignments converted.
	SelpPureIf     bool
	MaxSelpAssigns int

	// AutoUnrollTrips fully unrolls constant-trip loops without a pragma
	// when the trip count is at most this value and the unrolled body
	// size estimate stays below AutoUnrollMaxNodes. Zero disables.
	AutoUnrollTrips    int
	AutoUnrollMaxNodes int

	// HonorUnrollPragma applies "#pragma unroll N" from the source.
	HonorUnrollPragma bool

	// SpillOnUnroll models a register-pressure-naive unroller: every
	// replicated copy of a pragma-unrolled body spills and reloads
	// through per-thread local memory. This is the mechanism behind the
	// paper's Fig. 7 observation that adding "#pragma unroll" at FDTD's
	// point a makes the OpenCL build collapse to half of CUDA's speed.
	SpillOnUnroll bool
	SpillsPerCopy int
}

// Canonical renders every Personality field explicitly, by name, in
// declaration order. It is the personality half of the compile-cache key:
// unlike a %+v dump its shape does not shift when fields are reordered,
// and TestCanonicalCoversEveryField fails the build if a newly added field
// is missing here (which would silently alias cache entries).
func (p Personality) Canonical() string {
	return fmt.Sprintf("name=%s paramSpace=%d cacheParams=%t cse=%t maxCSERegs=%d"+
		" strengthReduce=%t movCopies=%t guardSmallIf=%t maxGuardInstrs=%d"+
		" selpPureIf=%t maxSelpAssigns=%d autoUnrollTrips=%d autoUnrollMaxNodes=%d"+
		" honorUnrollPragma=%t spillOnUnroll=%t spillsPerCopy=%d",
		p.Name, p.ParamSpace, p.CacheParams, p.CSE, p.MaxCSERegs,
		p.StrengthReduce, p.MovCopies, p.GuardSmallIf, p.MaxGuardInstrs,
		p.SelpPureIf, p.MaxSelpAssigns, p.AutoUnrollTrips, p.AutoUnrollMaxNodes,
		p.HonorUnrollPragma, p.SpillOnUnroll, p.SpillsPerCopy)
}

// CUDA returns the NVOPENCC personality.
func CUDA() Personality {
	return Personality{
		Name:               "cuda",
		ParamSpace:         ptx.SpaceParam,
		CacheParams:        true,
		CSE:                true,
		MaxCSERegs:         20,
		StrengthReduce:     false,
		MovCopies:          true,
		GuardSmallIf:       true,
		MaxGuardInstrs:     8,
		AutoUnrollTrips:    8,
		AutoUnrollMaxNodes: 1024,
		HonorUnrollPragma:  true,
	}
}

// OpenCL returns the OpenCL front-end personality.
func OpenCL() Personality {
	return Personality{
		Name:               "opencl",
		ParamSpace:         ptx.SpaceConst,
		CacheParams:        true,
		CSE:                true,
		MaxCSERegs:         10, // a narrower window than NVOPENCC's
		StrengthReduce:     true,
		AutoUnrollTrips:    4, // less aggressive than NVOPENCC's 8
		AutoUnrollMaxNodes: 256,
		MovCopies:          false,
		SpillOnUnroll:      true,
		SpillsPerCopy:      3,
		SelpPureIf:         true,
		MaxSelpAssigns:     4,
		HonorUnrollPragma:  true,
	}
}
