package compiler

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"gpucmp/internal/ptx"
)

// TestCanonicalCoversEveryField mutates each Personality field in turn via
// reflection and checks the canonical encoding changes. A field missing
// from Canonical() would silently alias compile-cache entries for
// personalities that differ only in that field.
func TestCanonicalCoversEveryField(t *testing.T) {
	typ := reflect.TypeOf(Personality{})
	base := Personality{}.Canonical()
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		v := reflect.New(typ).Elem()
		fv := v.Field(i)
		switch fv.Kind() {
		case reflect.Bool:
			fv.SetBool(true)
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			fv.SetInt(7)
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			fv.SetUint(7)
		case reflect.String:
			fv.SetString("probe")
		default:
			t.Fatalf("field %s has kind %s; teach this test how to probe it", f.Name, fv.Kind())
		}
		got := v.Interface().(Personality).Canonical()
		if got == base {
			t.Errorf("Canonical() does not cover field %s: changing it leaves the key at %q",
				f.Name, base)
		}
	}
}

func TestCanonicalKeyCoversPipelineConfig(t *testing.T) {
	base := Config{Personality: OpenCL()}
	if a, b := base.CanonicalKey(), (Config{Personality: CUDA()}).CanonicalKey(); a == b {
		t.Error("different personalities share a key")
	}
	reduced := Config{Personality: OpenCL(), Passes: WithoutPass(DefaultPasses(), PassDCE)}
	if base.CanonicalKey() == reduced.CanonicalKey() {
		t.Error("reduced pass pipeline shares a key with the default pipeline")
	}
	dbg := Config{Personality: OpenCL(), Debug: true}
	if base.CanonicalKey() == dbg.CanonicalKey() {
		t.Error("debug mode shares a key with release mode")
	}
	// The key is explicit, not a struct dump: every personality field name
	// appears, so a reordering of fields cannot silently change the key.
	key := base.CanonicalKey()
	for _, frag := range []string{"name=", "paramSpace=", "passes=", "debug="} {
		if !strings.Contains(key, frag) {
			t.Errorf("canonical key missing %q: %s", frag, key)
		}
	}
}

func TestCompileCachedConfigRejectsObserver(t *testing.T) {
	k := vecAddKernel(t)
	bad := Config{Personality: CUDA()}
	bad.Observer = func(p Pass, before, after *ptx.Stats) {}
	if _, err := CompileCachedConfig(k, bad); err == nil {
		t.Fatal("cached compile accepted an Observer")
	}
}

// TestCachedConfigDistinguishesPipelines: the same kernel compiled under
// the default and a reduced pipeline must come back different through the
// cache (distinct keys), and repeated compiles must share (hits recorded).
func TestCachedConfigDistinguishesPipelines(t *testing.T) {
	ResetCompileCache()
	defer ResetCompileCache()
	k := loopyKernel(t)
	full, err := CompileCachedConfig(k, Config{Personality: CUDA()})
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := CompileCachedConfig(k, Config{
		Personality: CUDA(), Passes: WithoutPass(DefaultPasses(), PassDCE)})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Instrs) == len(reduced.Instrs) {
		t.Error("default and reduced pipelines produced same-size kernels; keys may alias")
	}
	again, err := CompileCachedConfig(k, Config{Personality: CUDA()})
	if err != nil {
		t.Fatal(err)
	}
	if again != full {
		t.Error("identical config did not share the cached kernel")
	}
	hits, misses := CompileCacheStats()
	if hits != 1 || misses != 2 {
		t.Errorf("cache counters hits=%d misses=%d, want 1/2", hits, misses)
	}
}

// TestConcurrentCompilesAreBitIdentical is the determinism acceptance
// criterion: many goroutines compiling the same kernel under the same
// config (bypassing the cache, so each run is a real compile) must produce
// byte-for-byte identical PTX, remarks and pass stats. Run with -race.
func TestConcurrentCompilesAreBitIdentical(t *testing.T) {
	kernels := []string{"loopy", "vadd"}
	for _, which := range kernels {
		which := which
		t.Run(which, func(t *testing.T) {
			var src = vecAddKernel(t)
			if which == "loopy" {
				src = loopyKernel(t)
			}
			for _, cfg := range []Config{
				{Personality: CUDA()},
				{Personality: OpenCL()},
				{Personality: OpenCL(), Passes: WithoutPass(DefaultPasses(), PassMadFuse)},
				{Personality: CUDA(), Debug: true},
			} {
				cfg := cfg
				const workers = 8
				outs := make([]string, workers)
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					w := w
					wg.Add(1)
					go func() {
						defer wg.Done()
						pk, err := CompileWithConfig(src, cfg)
						if err != nil {
							outs[w] = "error: " + err.Error()
							return
						}
						var b strings.Builder
						b.WriteString(pk.Disassemble())
						for _, r := range pk.Remarks {
							b.WriteString(r.String())
							b.WriteByte('\n')
						}
						for _, s := range pk.PassStats {
							b.WriteString(s.String())
							b.WriteByte('\n')
						}
						outs[w] = b.String()
					}()
				}
				wg.Wait()
				for w := 1; w < workers; w++ {
					if outs[w] != outs[0] {
						t.Fatalf("config %s: concurrent compile %d differs from compile 0:\n--- 0:\n%s\n--- %d:\n%s",
							cfg.CanonicalKey(), w, outs[0], w, outs[w])
					}
				}
				if strings.HasPrefix(outs[0], "error:") {
					t.Fatalf("config %s: %s", cfg.CanonicalKey(), outs[0])
				}
			}
		})
	}
}
