package compiler

import (
	"testing"
)

// TestGapKnobsConvergeToCUDA is the end state of the Section-V study at the
// codegen level: the OpenCL personality with every gap knob applied
// generates instruction-identical PTX to the CUDA personality — the whole
// front-end gap is the sum of the named knobs, with nothing left over.
func TestGapKnobsConvergeToCUDA(t *testing.T) {
	ported := OpenCL()
	for _, kn := range GapKnobs() {
		if kn.Name == "" || kn.Description == "" || kn.Apply == nil {
			t.Fatalf("malformed knob: %+v", kn)
		}
		kn.Apply(&ported)
	}
	for _, name := range []string{"vadd", "loopy"} {
		k := vecAddKernel(t)
		if name == "loopy" {
			k = loopyKernel(t)
		}
		cu, err := Compile(k, CUDA())
		if err != nil {
			t.Fatal(err)
		}
		cl, err := Compile(k, ported)
		if err != nil {
			t.Fatal(err)
		}
		if cl.Toolchain != "opencl" {
			t.Errorf("%s: ported build should keep its toolchain tag, got %q", name, cl.Toolchain)
		}
		// Compare the instruction streams, not the headers: the toolchain
		// tag legitimately differs.
		stripHeader := func(s string) string {
			for i := 0; i < len(s); i++ {
				if s[i] == '\n' {
					return s[i+1:]
				}
			}
			return s
		}
		ad, bd := stripHeader(cu.Disassemble()), stripHeader(cl.Disassemble())
		if ad != bd {
			t.Errorf("%s: fully ported OpenCL build differs from CUDA:\n--- cuda:\n%s\n--- ported:\n%s",
				name, cu.Disassemble(), cl.Disassemble())
		}
	}
}

// TestEachGapKnobMoves: every gap knob individually changes the canonical
// personality encoding — no knob is a no-op against the OpenCL base.
func TestEachGapKnobMoves(t *testing.T) {
	base := OpenCL().Canonical()
	for _, kn := range GapKnobs() {
		p := OpenCL()
		kn.Apply(&p)
		if p.Canonical() == base {
			t.Errorf("gap knob %q does not change the OpenCL personality", kn.Name)
		}
	}
}

// TestEachFeatureKnobDisables: every feature knob individually changes the
// CUDA or OpenCL personality it applies to (each disables something that
// at least one personality enables).
func TestEachFeatureKnobDisables(t *testing.T) {
	cu, cl := CUDA().Canonical(), OpenCL().Canonical()
	for _, kn := range FeatureKnobs() {
		a, b := CUDA(), OpenCL()
		kn.Apply(&a)
		kn.Apply(&b)
		if a.Canonical() == cu && b.Canonical() == cl {
			t.Errorf("feature knob %q is a no-op on both personalities", kn.Name)
		}
	}
}

// TestKnobNamesUnique: knob names are identifiers in reports and bisection
// output; collisions would make those ambiguous.
func TestKnobNamesUnique(t *testing.T) {
	for _, set := range [][]Knob{GapKnobs(), FeatureKnobs()} {
		seen := map[string]bool{}
		for _, kn := range set {
			if seen[kn.Name] {
				t.Errorf("duplicate knob name %q", kn.Name)
			}
			seen[kn.Name] = true
		}
	}
}
